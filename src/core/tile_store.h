#ifndef HDMAP_CORE_TILE_STORE_H_
#define HDMAP_CORE_TILE_STORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/result.h"
#include "core/hd_map.h"
#include "core/pinned_bytes.h"
#include "core/tile_view.h"

// Which encoder Build/PutTile use when Options::format is left at its
// default. CMake sets this from -DHDMAP_FORMAT_V3=ON/OFF (the OFF preset
// is the escape hatch while v3 soaks); both encoders are always compiled
// and both decoders always accept either format.
#ifndef HDMAP_FORMAT_V3_DEFAULT
#define HDMAP_FORMAT_V3_DEFAULT 1
#endif

namespace hdmap {

/// Serialization format for tiles written by Build/RebuildTiles/PutTile.
/// Reads are format-agnostic: DeserializeMap dispatches on the payload
/// magic, so a store can hold a mix (e.g. right after a format rollout).
enum class TileFormat {
  /// v1 streaming encoding (core/serialization.h): decode-everything.
  kLegacyV1,
  /// v3 offset-table layout (core/tile_view.h): the framed bytes are the
  /// queryable representation; GetTileView serves them without decoding.
  kFlatV3,
};

/// Tile coordinate in a uniform square tiling of the plane.
struct TileId {
  int32_t x = 0;
  int32_t y = 0;

  /// Morton (Z-order) code; the storage key. Interleaves offset-biased
  /// coordinates so nearby tiles get nearby keys.
  uint64_t Morton() const;

  friend bool operator==(const TileId& a, const TileId& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator<(const TileId& a, const TileId& b) {
    return a.Morton() < b.Morton();
  }
};

/// Serving counters for the deserialized-tile cache. Hits mean LoadTile /
/// LoadRegion skipped DeserializeMap entirely.
struct TileStoreStats {
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_evictions = 0;
};

/// Post-stitch integrity findings from LoadRegion. A regulatory element is
/// stitched into the region whenever any tile carrying one of its lanelets
/// is loaded, so elements near the region boundary may reference lanelets
/// that lie outside the queried box; those references are reported here
/// rather than silently kept dangling.
struct RegionReport {
  /// (regulatory element id, unresolvable lanelet id) pairs.
  std::vector<std::pair<ElementId, ElementId>> unresolved_regulatory_refs;
  /// Tiles that failed checksum/decode and were quarantined out of the
  /// stitch (partial mode only; in strict mode the load fails instead).
  /// Sorted by Morton key, i.e. deterministic across thread counts.
  std::vector<TileId> corrupt_tiles;
};

/// How LoadRegion treats a tile that fails checksum/decode.
enum class RegionReadMode {
  /// Serve what survives: quarantine the corrupt tile (skip it, count it
  /// in RegionReport::corrupt_tiles, never retry it into the cache) and
  /// stitch the rest. The production default — one bad tile must not
  /// take down a whole region.
  kAllowPartial,
  /// Fail the whole load with the tile's decode error.
  kStrict,
};

/// Keyed collection of serialized map tiles (the unit of distribution and
/// incremental update in production HD-map services; enables the
/// partitioned update workloads of Pannen et al. [44] and Qi et al. [47]).
///
/// Serving hot path: deserialized tiles are kept in a bounded LRU cache,
/// so repeated LoadTile/LoadRegion calls over hot tiles skip
/// DeserializeMap. Build and LoadRegion fan work out across threads; the
/// serialized output of Build is byte-identical regardless of thread
/// count (element-to-tile assignment is sequential and deterministic,
/// only the per-tile serialization is parallel).
///
/// Corruption resilience: tile payloads travel inside a CRC32 frame
/// (core/wire_frame.h), so a truncated or bit-flipped blob fails decode
/// with kDataLoss instead of producing a silently wrong tile. A failed
/// tile is quarantined (fail-fast on later loads, never cached) until its
/// bytes are replaced; LoadRegion can stitch around it (kAllowPartial).
///
/// Thread safety: concurrent const calls (LoadTile/LoadRegion/TilesInBox)
/// are safe with respect to the cache and quarantine set. Per-tile
/// replacement (PutTile/PutRawTile) is additionally safe against
/// concurrent readers: blob access is guarded by a shared mutex, and a
/// store-wide mutation generation keeps a reader that raced an old blob
/// from installing a stale cache entry or quarantine verdict over the new
/// bytes — the ingestion path can repair a quarantined tile while other
/// threads keep serving. Wholesale mutations (Build/RebuildTiles) and
/// copies still require external serialization against readers and other
/// writers.
class TileStore {
 public:
  /// Construction knobs. New knobs land here so signatures don't churn.
  struct Options {
    /// Edge length of one square tile, meters.
    double tile_size_m = 256.0;
    /// Max deserialized tiles kept in the LRU cache; 0 disables caching.
    size_t cache_capacity = 256;
    /// When set, cache hit/miss/eviction counters are additionally
    /// exported through this registry ("tile_store.cache_*"). Counters
    /// are cumulative across stores sharing a registry — copies of a
    /// store (e.g. successive MapSnapshot versions) keep feeding the same
    /// series. The registry must outlive the store.
    MetricsRegistry* metrics = nullptr;
    /// When set, every tile load passes through this injector at site
    /// "tile_store.load" (see common/fault_injection.h), so tests and
    /// benches can corrupt serialized tiles on demand with reproducible
    /// seeds. Must outlive the store; null disables injection.
    FaultInjector* fault_injector = nullptr;
    /// Encoder used for tiles this store serializes itself. Defaults to
    /// the build-wide choice (-DHDMAP_FORMAT_V3).
    TileFormat format = HDMAP_FORMAT_V3_DEFAULT ? TileFormat::kFlatV3
                                                : TileFormat::kLegacyV1;
  };

  /// FaultInjector site name instrumenting LoadTile/LoadRegion blob reads.
  static constexpr const char* kLoadFaultSite = "tile_store.load";

  /// Any single box (element bounding box in Build, query box in
  /// TilesInBox/LoadRegion) may cover at most this many tiles; larger
  /// boxes — usually a degenerate Aabb from a bad sensor fix — are
  /// rejected with kInvalidArgument instead of exploding memory.
  static constexpr int64_t kMaxTilesPerBox = 1 << 16;

  TileStore() : TileStore(Options{}) {}
  explicit TileStore(const Options& options);

  /// Copies configuration and serialized tiles; the copy starts with a
  /// cold cache and zeroed stats (but keeps the metrics binding). This is
  /// the copy-on-write step of snapshot publishing: tile bytes are
  /// immutable and reference-counted (PinnedBytes), so the copy shares
  /// them without duplicating a byte.
  TileStore(const TileStore& other);
  TileStore& operator=(const TileStore& other);

  double tile_size() const { return tile_size_; }
  size_t NumTiles() const { return tiles_.size(); }

  /// Total serialized bytes across tiles.
  size_t TotalBytes() const;

  TileId TileAt(const Vec2& p) const;

  /// Splits `map` into tiles: each element is assigned to every tile its
  /// bounding box intersects (border elements are duplicated, as in
  /// production tiling; a regulatory element rides with *every* lanelet
  /// it references). Per-tile serialization is spread over `num_threads`
  /// threads (0 = hardware concurrency). Replaces previous content and
  /// drops the cache. Fails with kInvalidArgument when an element's box
  /// covers more than kMaxTilesPerBox tiles.
  Status Build(const HdMap& map, size_t num_threads = 0);

  /// Re-derives only the given tiles from `map`, leaving every other
  /// tile's serialized bytes untouched: the incremental-update half of
  /// Build for a patch whose touched-tile set is known. A requested tile
  /// that ends up with no content is erased; every requested tile's cache
  /// entry is invalidated. Postcondition: if `tiles` covers every tile
  /// whose content changed, the store is byte-identical to a full
  /// Build(map).
  Status RebuildTiles(const HdMap& map, const std::vector<TileId>& tiles,
                      size_t num_threads = 0);

  /// Replaces one tile's payload with the serialization of `tile_map`
  /// and invalidates that tile's cache and quarantine entries.
  void PutTile(const TileId& id, const HdMap& tile_map);

  /// Installs `bytes` verbatim as tile `id`'s payload — the ingestion
  /// path for tiles received over the wire from another store or service.
  /// Nothing is validated here; corruption surfaces as kDataLoss when the
  /// tile is first loaded (frame checksum). Invalidates the tile's cache
  /// and quarantine entries.
  void PutRawTile(const TileId& id, std::string bytes);

  /// Same as PutRawTile but zero-copy: `bytes` may be backed by an
  /// external owner (e.g. an mmap'd checkpoint), and the store pins it
  /// rather than copying it onto the heap.
  void PutPinnedTile(const TileId& id, PinnedBytes bytes);

  /// Deserializes a tile (or copies it out of the cache); kNotFound for
  /// absent tiles.
  Result<HdMap> LoadTile(const TileId& id) const;

  /// Zero-copy read of one v3 tile: validates the framed bytes once per
  /// payload generation (CRC + structural pass, cached like decoded
  /// tiles) and returns in-place accessors over them — no allocation, no
  /// decode. The returned view stays valid for its own lifetime even if
  /// the tile is replaced or the store destroyed (the PinnedTileView
  /// holds the pin). kNotFound for absent tiles, kDataLoss (and
  /// quarantine, exactly like LoadTile) for corrupt ones, and
  /// kFailedPrecondition for tiles stored in the legacy v1 format —
  /// fall back to LoadTile for those.
  Result<PinnedTileView> GetTileView(const TileId& id) const;

  /// The tile's serialized framed bytes, pinned — the serve-verbatim
  /// path (a network reply can hold the span with no copy and no lock).
  /// kNotFound for absent tiles. Thread-safe against Put*.
  Result<PinnedBytes> RawTileBytes(const TileId& id) const;

  /// Every tile id in the tiling intersecting `box`, present in the store
  /// or not (the touched-tile enumeration for incremental updates).
  /// kInvalidArgument when the box covers more than kMaxTilesPerBox tiles.
  Result<std::vector<TileId>> TileCoverage(const Aabb& box) const;

  /// Tile ids intersecting the query box (present tiles only).
  /// kInvalidArgument when the box covers more than kMaxTilesPerBox tiles.
  Result<std::vector<TileId>> TilesInBox(const Aabb& box) const;

  /// Every tile id present in the store, in Morton order.
  std::vector<TileId> AllTiles() const;

  /// Loads and stitches all tiles intersecting `box` into one map
  /// (duplicated border elements are inserted once). Tiles deserialize
  /// concurrently on `num_threads` threads (0 = hardware concurrency);
  /// stitching is sequential in tile order, so the result is
  /// deterministic. When `report` is non-null it receives post-stitch
  /// referential-integrity findings and the quarantined-tile list (see
  /// RegionReport). `mode` selects degraded-mode behaviour for tiles
  /// that fail checksum/decode: kAllowPartial (default) stitches the
  /// survivors and reports the corrupt tiles, kStrict fails the load.
  Result<HdMap> LoadRegion(
      const Aabb& box, RegionReport* report = nullptr,
      size_t num_threads = 0,
      RegionReadMode mode = RegionReadMode::kAllowPartial) const;

  /// Loads and stitches every tile in the store — the recovery path's
  /// whole-map read, with no query box and hence no kMaxTilesPerBox cap.
  /// Always strict: any tile failing checksum/decode fails the whole
  /// load (a recovered snapshot must be fully intact before it serves).
  Result<HdMap> LoadAll(size_t num_threads = 0) const;

  /// Tiles currently quarantined after a failed checksum/decode. A
  /// quarantined tile is reported instead of retried until its bytes are
  /// replaced (Build/RebuildTiles/PutTile/PutRawTile).
  size_t NumQuarantined() const;

  /// Snapshot of the cache counters (thread-safe).
  TileStoreStats stats() const;
  void ResetStats();

  size_t cache_capacity() const { return cache_capacity_; }
  TileFormat format() const { return format_; }

  /// Copy of every serialized blob, keyed by Morton code — byte-equality
  /// checks in tests/benches and other whole-store sweeps. Thread-safe
  /// (unlike the raw_tiles() reference accessor it replaces); prefer
  /// RawTileBytes for single tiles — it pins instead of copying.
  std::map<uint64_t, std::string> RawTilesCopy() const;

 private:
  /// Validated [lo, hi] tile range covered by `box`. Computes the tile
  /// indices in floating point first, rejecting coordinates whose tile
  /// index is not representable as int32 (the double->int32 cast in a
  /// plain TileAt call would be UB for e.g. a bad sensor fix at 1e18 m)
  /// and boxes spanning more than kMaxTilesPerBox tiles — each axis is
  /// checked before the spans are multiplied, so the product cannot
  /// overflow.
  Result<std::pair<TileId, TileId>> TileRangeForBox(const Aabb& box) const;

  /// The deterministic element->tile assignment phase of Build. When
  /// `only` is non-null, assignment is restricted to those Morton keys
  /// (the RebuildTiles path). Fails with kInvalidArgument on an oversized
  /// element box.
  Status AssignTiles(const HdMap& map,
                     const std::map<uint64_t, TileId>* only,
                     std::map<uint64_t, HdMap>* tile_maps,
                     std::map<uint64_t, TileId>* ids) const;

  /// Serializes one tile's map in the store's configured format.
  std::string EncodeBlob(const HdMap& tile_map) const;

  /// Cache-aware tile load; returns a shared snapshot that must only be
  /// read (never queried through the lazy-index API concurrently). A
  /// kDataLoss decode failure quarantines the tile: later loads fail fast
  /// without re-decoding until the tile's bytes are replaced.
  Result<std::shared_ptr<const HdMap>> LoadTileShared(uint64_t key) const;

  /// Loads `tile_list` concurrently and stitches the survivors in tile
  /// order (deterministic): the shared body of LoadRegion and LoadAll.
  Result<HdMap> StitchTiles(const std::vector<TileId>& tile_list,
                            RegionReport* report, size_t num_threads,
                            RegionReadMode mode) const;

  std::shared_ptr<const HdMap> CacheLookup(uint64_t key) const;
  /// Installs a decode outcome (cache entry on success, quarantine on
  /// kDataLoss) observed at mutation generation `gen`; dropped when a
  /// Put* replaced the bytes since, so a racing reader cannot poison the
  /// new payload's state with the old payload's verdict.
  void CacheInsert(uint64_t key, std::shared_ptr<const HdMap> map,
                   uint64_t gen) const;
  void Quarantine(uint64_t key, uint64_t gen) const;
  /// Drops one tile's derived load state: cache entry and quarantine.
  void CacheErase(uint64_t key);
  /// Drops all derived load state: cache and quarantine set.
  void CacheClear();
  bool IsQuarantined(uint64_t key) const;

  double tile_size_;
  TileFormat format_;
  // Blob map, guarded by tiles_mu_ for per-tile replacement vs reads
  // (wholesale Build/assignment still needs external serialization).
  // Blobs are immutable PinnedBytes: replacing a tile swaps the map
  // entry while readers holding the old pin keep a valid buffer.
  mutable std::shared_mutex tiles_mu_;
  std::map<uint64_t, PinnedBytes> tiles_;   // Morton key -> framed blob.
  std::map<uint64_t, TileId> tile_ids_;     // Morton key -> coordinates.
  // Bumped (under cache_mu_) by every mutation that replaces tile bytes;
  // lets in-flight loads detect that their verdict is stale.
  mutable std::atomic<uint64_t> mutation_gen_{0};

  // Bounded LRU cache of deserialized tiles, keyed by Morton code.
  // lru_ front = most recently used; entries hold their lru_ iterator.
  size_t cache_capacity_;
  mutable std::mutex cache_mu_;
  mutable std::list<uint64_t> lru_;
  mutable std::unordered_map<
      uint64_t, std::pair<std::shared_ptr<const HdMap>,
                          std::list<uint64_t>::iterator>>
      cache_;
  mutable TileStoreStats stats_;

  // Tiles whose payload failed checksum/decode, keyed by Morton code;
  // guarded by cache_mu_ (set during const loads, hence mutable).
  mutable std::set<uint64_t> quarantined_;

  // Validated-once views of v3 tiles, keyed by Morton code; guarded by
  // cache_mu_ and invalidated with the decoded cache (CacheErase /
  // CacheClear). Entries are tiny (a pin plus section pointers) and
  // bounded by the tile count, so no LRU. The pinned bytes are the
  // store's own blobs — pinning them costs nothing extra.
  mutable std::unordered_map<uint64_t, PinnedTileView> view_cache_;

  // Optional registry export of the cache counters (null when unbound).
  Counter* hits_exported_ = nullptr;
  Counter* misses_exported_ = nullptr;
  Counter* evictions_exported_ = nullptr;

  // Optional fault-injection seam for tile loads (null when disabled).
  FaultInjector* faults_ = nullptr;
};

}  // namespace hdmap

#endif  // HDMAP_CORE_TILE_STORE_H_
