#ifndef HDMAP_STORAGE_SNAPSHOT_STORE_H_
#define HDMAP_STORAGE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "core/hd_map.h"
#include "core/pinned_bytes.h"
#include "core/tile_store.h"
#include "core/tile_view.h"
#include "storage/fs_util.h"

namespace hdmap {

/// One checkpoint loaded back from disk and fully validated: every tile
/// decoded through its wire frame and stitched into a query-able map.
/// The TileStore's blobs are mmap-backed (zero-copy recovery): the pages
/// stay valid even if the checkpoint directory is retention-deleted
/// later (see MmapFile).
struct RecoveredSnapshot {
  uint64_t version = 0;
  /// Wall-clock publish stamp persisted in the manifest (survives
  /// restarts, unlike the in-process steady-clock publish time).
  int64_t published_unix_ms = 0;
  TileStore tiles;
  HdMap map;  ///< Stitched from `tiles`; indexes not yet built.
};

/// One checkpoint generation opened for zero-copy reads: every tile's
/// wire frame is mmap'd and CRC-verified exactly once, at open; View()
/// then serves in-place accessors with no further hashing, decoding, or
/// copying (FrameChecksum::kTrust). Tiles pin their mappings, so a
/// MappedCheckpoint — and any PinnedBytes or view taken from it — stays
/// valid after the store swaps snapshots or retention deletes the
/// checkpoint directory from disk. That is the generation-pinning
/// contract: readers never synchronize with the writer.
struct MappedCheckpoint {
  uint64_t version = 0;
  int64_t published_unix_ms = 0;
  double tile_size_m = 0.0;
  /// Morton key -> framed tile bytes, backed by the mmap'd files.
  std::map<uint64_t, PinnedBytes> tiles;
  /// Morton key -> tile coordinates (from the manifest).
  std::map<uint64_t, TileId> tile_ids;

  /// Zero-copy view of one tile. kNotFound for unknown keys,
  /// kFailedPrecondition for tiles checkpointed in the legacy v1 format
  /// (materialize those via DeserializeMap on the pinned bytes).
  Result<PinnedTileView> View(uint64_t morton) const;
};

/// Persists published map versions as checkpoint directories:
///
///   <data_dir>/checkpoints/v<version>/
///     <morton>.tile   one wire-framed blob per tile (CRC inside frame)
///     manifest.bin    framed manifest: version, wall-clock stamp,
///                     tile size, per-tile (morton, x, y, byte length)
///
/// Crash safety: a checkpoint is written into a `.tmp-...` sibling, every
/// file fsynced (per FsyncMode), then atomically renamed into place and
/// the parent directory fsynced. A crash at any point leaves either the
/// complete previous state or a `.tmp` leftover that the next write
/// sweeps away — never a half-visible checkpoint. Corruption that lands
/// anyway (torn manifest, scribbled or missing tile file) is detected at
/// load time: the manifest frame CRC, per-tile recorded lengths, and each
/// tile's own frame CRC must all agree before a checkpoint is served.
///
/// Determinism: the bytes written for a given (tiles, version, stamp) are
/// identical regardless of thread count or platform — tile blobs are the
/// TileStore's deterministic serialization and the manifest iterates them
/// in Morton order.
///
/// Thread safety: none. Callers (MapService) serialize checkpoint writes
/// behind their publish lock.
class SnapshotStore {
 public:
  struct Options {
    /// Root of the on-disk layout; created on first write.
    std::string data_dir;
    FsyncMode fsync = FsyncMode::kAlways;
    /// Keep the newest K checkpoints; older ones are removed after each
    /// successful write. Minimum 1 (the just-written checkpoint).
    size_t retention = 2;
    /// Optional export of checkpoint counters/latency ("storage.*").
    /// Must outlive the store.
    MetricsRegistry* metrics = nullptr;
    /// Optional fault seam (sites below). Must outlive the store.
    FaultInjector* fault_injector = nullptr;
  };

  /// Data-plane faults here corrupt tile bytes as they are written;
  /// kFailStatus fails the whole checkpoint before anything is written.
  static constexpr const char* kWriteFaultSite = "snapshot_store.write";
  /// Data-plane faults here corrupt the manifest bytes as written.
  static constexpr const char* kManifestFaultSite = "snapshot_store.manifest";

  explicit SnapshotStore(Options options);

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Persists `tiles` as checkpoint `version` (temp dir + fsync + atomic
  /// rename), then applies retention. On failure the previous on-disk
  /// state is untouched.
  Status WriteCheckpoint(const TileStore& tiles, uint64_t version,
                         int64_t published_unix_ms);

  /// Checkpoint versions present on disk (valid or not), ascending.
  std::vector<uint64_t> ListCheckpoints() const;

  /// Loads and fully validates one checkpoint: manifest frame, per-tile
  /// recorded lengths, and every tile's own frame/decode must pass.
  /// kDataLoss on any mismatch. `tile_options` seeds the returned
  /// TileStore's serving knobs (cache size, metrics, fault injector); the
  /// tile size always comes from the manifest.
  Result<RecoveredSnapshot> LoadCheckpoint(
      uint64_t version, const TileStore::Options& tile_options) const;

  /// Walks checkpoints newest-first and returns the first that validates,
  /// counting the newer-but-invalid ones into `*checkpoints_skipped`
  /// (and the "storage.checkpoints_invalid" counter). kNotFound when no
  /// valid checkpoint exists.
  Result<RecoveredSnapshot> LoadNewestValid(
      const TileStore::Options& tile_options,
      size_t* checkpoints_skipped) const;

  /// Opens one checkpoint generation for zero-copy serving: mmaps every
  /// tile file and verifies its frame CRC (and recorded length) once,
  /// here. kDataLoss on any mismatch — an OpenMapped success carries the
  /// same integrity guarantee as LoadCheckpoint, minus the full decode.
  Result<MappedCheckpoint> OpenMapped(uint64_t version) const;

  std::string CheckpointDir(uint64_t version) const;

  const Options& options() const { return options_; }

 private:
  std::string CheckpointsRoot() const;
  /// Removes checkpoints beyond Options::retention and any `.tmp`
  /// leftovers from crashed writes. Best-effort.
  void ApplyRetention() const;

  Options options_;
  Counter* writes_ = nullptr;
  Counter* write_failures_ = nullptr;
  Counter* tiles_written_ = nullptr;
  Counter* invalid_at_load_ = nullptr;
  Gauge* last_bytes_ = nullptr;
  LatencyHistogram* lat_write_ = nullptr;
};

}  // namespace hdmap

#endif  // HDMAP_STORAGE_SNAPSHOT_STORE_H_
