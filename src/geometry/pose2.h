#ifndef HDMAP_GEOMETRY_POSE2_H_
#define HDMAP_GEOMETRY_POSE2_H_

#include <ostream>

#include "common/units.h"
#include "geometry/vec2.h"

namespace hdmap {

/// SE(2) rigid transform / vehicle pose: translation plus heading.
/// Heading is radians counter-clockwise from +x, wrapped to (-pi, pi].
struct Pose2 {
  Vec2 translation;
  double heading = 0.0;

  constexpr Pose2() = default;
  Pose2(Vec2 t, double h) : translation(t), heading(WrapAngle(h)) {}
  Pose2(double x, double y, double h)
      : translation(x, y), heading(WrapAngle(h)) {}

  static constexpr Pose2 Identity() { return Pose2{}; }

  /// Maps a point from this pose's local frame into the parent frame.
  Vec2 TransformPoint(const Vec2& local) const {
    return translation + local.Rotated(heading);
  }

  /// Maps a parent-frame point into this pose's local frame.
  Vec2 InverseTransformPoint(const Vec2& world) const {
    return (world - translation).Rotated(-heading);
  }

  /// Composition: (*this) ∘ other (apply `other` in this pose's frame).
  Pose2 Compose(const Pose2& other) const {
    return Pose2(TransformPoint(other.translation),
                 heading + other.heading);
  }

  Pose2 Inverse() const {
    return Pose2((-translation).Rotated(-heading), -heading);
  }

  /// Relative pose taking this pose to `other`: this ∘ result == other.
  Pose2 RelativeTo(const Pose2& other) const {
    return other.Inverse().Compose(*this);
  }

  /// Unit heading direction.
  Vec2 Direction() const {
    return {std::cos(heading), std::sin(heading)};
  }
};

inline std::ostream& operator<<(std::ostream& os, const Pose2& p) {
  return os << "[t=" << p.translation << ", h=" << p.heading << "]";
}

}  // namespace hdmap

#endif  // HDMAP_GEOMETRY_POSE2_H_
