#include "atv/occupancy_grid.h"

#include <algorithm>
#include <cmath>

namespace hdmap {

namespace {
constexpr double kLogOddsFree = -0.4;
constexpr double kLogOddsHit = 0.85;
constexpr double kLogOddsClamp = 6.0;
}  // namespace

OccupancyGrid::OccupancyGrid(const Aabb& extent, double resolution)
    : origin_(extent.min),
      resolution_(resolution),
      width_(std::max(1, static_cast<int>(std::ceil(extent.Width() /
                                                    resolution)))),
      height_(std::max(1, static_cast<int>(std::ceil(extent.Height() /
                                                     resolution)))),
      log_odds_(static_cast<size_t>(width_) * static_cast<size_t>(height_),
                0.0f) {}

double OccupancyGrid::LogOddsAt(int cx, int cy) const {
  if (!InBounds(cx, cy)) return 0.0;
  return log_odds_[static_cast<size_t>(cy) * static_cast<size_t>(width_) +
                   static_cast<size_t>(cx)];
}

void OccupancyGrid::AddLogOdds(int cx, int cy, double delta) {
  if (!InBounds(cx, cy)) return;
  float& cell =
      log_odds_[static_cast<size_t>(cy) * static_cast<size_t>(width_) +
                static_cast<size_t>(cx)];
  cell = static_cast<float>(std::clamp(
      static_cast<double>(cell) + delta, -kLogOddsClamp, kLogOddsClamp));
}

double OccupancyGrid::OccupancyAt(const Vec2& p) const {
  int cx = 0, cy = 0;
  WorldToCell(p, &cx, &cy);
  double lo = LogOddsAt(cx, cy);
  return 1.0 / (1.0 + std::exp(-lo));
}

void OccupancyGrid::IntegrateRay(const Vec2& origin, const Vec2& endpoint,
                                 bool hit) {
  double length = origin.DistanceTo(endpoint);
  int steps = std::max(1, static_cast<int>(length / (resolution_ * 0.9)));
  for (int i = 0; i < steps; ++i) {
    Vec2 p = Lerp(origin, endpoint,
                  static_cast<double>(i) / static_cast<double>(steps));
    int cx = 0, cy = 0;
    WorldToCell(p, &cx, &cy);
    AddLogOdds(cx, cy, kLogOddsFree);
  }
  if (hit) {
    int cx = 0, cy = 0;
    WorldToCell(endpoint, &cx, &cy);
    AddLogOdds(cx, cy, kLogOddsHit - kLogOddsFree);
  }
}

size_t OccupancyGrid::NumOccupied(double threshold) const {
  double lo_threshold = std::log(threshold / (1.0 - threshold));
  size_t n = 0;
  for (float lo : log_odds_) {
    if (lo > lo_threshold) ++n;
  }
  return n;
}

}  // namespace hdmap
