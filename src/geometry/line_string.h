#ifndef HDMAP_GEOMETRY_LINE_STRING_H_
#define HDMAP_GEOMETRY_LINE_STRING_H_

#include <cstddef>
#include <vector>

#include "geometry/aabb.h"
#include "geometry/vec2.h"

namespace hdmap {

/// Result of projecting a point onto a LineString.
struct LineStringProjection {
  double arc_length = 0.0;      ///< s-coordinate of the foot point.
  double signed_offset = 0.0;   ///< Lateral d: >0 left of travel direction.
  Vec2 point;                   ///< The foot point itself.
  size_t segment_index = 0;     ///< Segment containing the foot point.
  double distance = 0.0;        ///< |signed_offset|.
};

/// Polyline in the plane with arc-length parameterization. The workhorse
/// geometry for lane boundaries, centerlines and trajectories.
class LineString {
 public:
  LineString() = default;
  explicit LineString(std::vector<Vec2> points);

  const std::vector<Vec2>& points() const { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const Vec2& operator[](size_t i) const { return points_[i]; }
  const Vec2& front() const { return points_.front(); }
  const Vec2& back() const { return points_.back(); }

  void Append(const Vec2& p);

  /// Total arc length.
  double Length() const;

  /// Cumulative arc length up to vertex i (0 for i==0).
  double ArcLengthAt(size_t i) const;

  /// Point at arc length s (clamped to [0, Length()]).
  Vec2 PointAt(double s) const;

  /// Unit tangent (travel direction) at arc length s.
  Vec2 TangentAt(double s) const;

  /// Heading (radians) at arc length s.
  double HeadingAt(double s) const;

  /// Signed curvature at arc length s, estimated from neighboring
  /// vertices (1/m; >0 curving left). 0 for lines with < 3 points.
  double CurvatureAt(double s) const;

  /// Closest-point projection of p. Requires at least 2 points.
  LineStringProjection Project(const Vec2& p) const;

  /// Distance from p to the polyline.
  double DistanceTo(const Vec2& p) const;

  /// Evenly respaced copy with approximately `spacing` meters between
  /// consecutive points (endpoints preserved).
  LineString Resampled(double spacing) const;

  /// Douglas-Peucker simplification with the given tolerance (meters).
  LineString Simplified(double tolerance) const;

  /// Copy laterally offset by d (d>0 to the left of travel direction).
  /// Uses per-vertex normal offsetting (suitable for the gentle curvature
  /// of road geometry).
  LineString Offset(double d) const;

  /// Reversed copy.
  LineString Reversed() const;

  Aabb BoundingBox() const;

 private:
  void RebuildArcLengths();
  /// Index of the segment containing arc length s and local remainder.
  size_t SegmentIndexAt(double s, double* remainder) const;

  std::vector<Vec2> points_;
  std::vector<double> cumulative_;  // cumulative_[i] = arc length at vertex i
};

}  // namespace hdmap

#endif  // HDMAP_GEOMETRY_LINE_STRING_H_
