// Loopback tests of the framed-TCP tile server: every test drives the
// real socket path (epoll IO thread, worker pool, admission control)
// through NetClient against a server on 127.0.0.1.
#include "net/tile_server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/trace.h"
#include "core/map_patch.h"
#include "core/serialization.h"
#include "core/tile_view.h"
#include "core/wire_frame.h"
#include "net/protocol.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

MapService::Options SmallTileOptions() {
  MapService::Options opt;
  opt.tile_store.tile_size_m = 100.0;
  return opt;
}

ElementId FirstLandmarkId(const HdMap& map) {
  EXPECT_FALSE(map.landmarks().empty());
  return map.landmarks().begin()->first;
}

/// Service + started server + one connected client.
struct Harness {
  explicit Harness(TileServer::Options server_options = {},
                   MapService::Options service_options = SmallTileOptions(),
                   double road_length = 500.0)
      : service(std::move(service_options)) {
    EXPECT_TRUE(service.Init(StraightRoad(road_length)).ok());
    server = std::make_unique<TileServer>(service, std::move(server_options));
    EXPECT_TRUE(server->Start().ok());
    EXPECT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  }

  MapService service;
  std::unique_ptr<TileServer> server;
  NetClient client;
};

TEST(NetProtocolTest, RequestFrameRoundtrip) {
  NetRequest request;
  request.type = NetRequestType::kGetRegion;
  request.request_id = 42;
  request.have_version = 7;
  request.box = Aabb{{-1.5, 2.5}, {100.0, 200.0}};
  std::string frame = EncodeRequestFrame(request);

  size_t frame_size = 0;
  std::string_view body;
  ASSERT_EQ(ExtractFrame(frame, kNetRequestMagic, kMaxNetRequestBody,
                         &frame_size, &body),
            FrameParse::kFrame);
  EXPECT_EQ(frame_size, frame.size());
  uint32_t crc = 0;
  std::memcpy(&crc, frame.data() + 8, sizeof(crc));
  auto decoded = DecodeRequestBody(body, crc);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, NetRequestType::kGetRegion);
  EXPECT_EQ(decoded->request_id, 42u);
  EXPECT_EQ(decoded->have_version, 7u);
  EXPECT_EQ(decoded->box.min.x, -1.5);
  EXPECT_EQ(decoded->box.max.y, 200.0);

  // A flipped body bit fails the CRC, not the framing.
  std::string corrupt = frame;
  corrupt[kNetFrameHeaderSize + 3] ^= 0x10;
  ASSERT_EQ(ExtractFrame(corrupt, kNetRequestMagic, kMaxNetRequestBody,
                         &frame_size, &body),
            FrameParse::kFrame);
  EXPECT_EQ(DecodeRequestBody(body, crc).status().code(),
            StatusCode::kDataLoss);
}

TEST(NetProtocolTest, PartialAndViolatingBuffers) {
  std::string frame = EncodeRequestFrame(NetRequest{});
  size_t frame_size = 0;
  std::string_view body;
  for (size_t n = 0; n < frame.size(); ++n) {
    EXPECT_EQ(ExtractFrame(std::string_view(frame).substr(0, n),
                           kNetRequestMagic, kMaxNetRequestBody, &frame_size,
                           &body),
              FrameParse::kNeedMore);
  }
  EXPECT_EQ(ExtractFrame("GARBAGEGARBAGE", kNetRequestMagic,
                         kMaxNetRequestBody, &frame_size, &body),
            FrameParse::kViolation);
  // Oversized body length claim.
  std::string oversized = frame;
  uint32_t huge = 1u << 24;
  std::memcpy(&oversized[4], &huge, sizeof(huge));
  EXPECT_EQ(ExtractFrame(oversized, kNetRequestMagic, kMaxNetRequestBody,
                         &frame_size, &body),
            FrameParse::kViolation);
}

TEST(NetProtocolTest, TraceFieldsRoundTripAndStayV1CompatibleWhenAbsent) {
  NetRequest request;
  request.type = NetRequestType::kGetTile;
  request.request_id = 11;
  request.tile = TileId{3, -2};

  // Untraced: the encoding is byte-identical to protocol v1 — no flag
  // bit, no trace block, old peers parse it unchanged.
  std::string plain = EncodeRequestFrame(request);
  EXPECT_EQ(plain[kNetFrameHeaderSize] & kNetTraceFlag, 0);

  // Traced: the type byte carries the flag, the block rides after
  // have_version, and every field round-trips.
  request.trace_id = 0xAABBCCDDEEFF0011ull;
  request.parent_span_id = 0x1122334455667788ull;
  request.trace_sampled = true;
  std::string traced = EncodeRequestFrame(request);
  EXPECT_NE(traced[kNetFrameHeaderSize] & kNetTraceFlag, 0);
  EXPECT_EQ(traced.size(), plain.size() + kNetTraceBlockSize);

  size_t frame_size = 0;
  std::string_view body;
  ASSERT_EQ(ExtractFrame(traced, kNetRequestMagic, kMaxNetRequestBody,
                         &frame_size, &body),
            FrameParse::kFrame);
  uint32_t crc = 0;
  std::memcpy(&crc, traced.data() + 8, sizeof(crc));
  auto decoded = DecodeRequestBody(body, crc);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, NetRequestType::kGetTile);
  EXPECT_EQ(decoded->trace_id, 0xAABBCCDDEEFF0011ull);
  EXPECT_EQ(decoded->parent_span_id, 0x1122334455667788ull);
  EXPECT_TRUE(decoded->trace_sampled);
  EXPECT_EQ(decoded->tile, (TileId{3, -2}));

  // An unsampled context round-trips the flag bit too.
  request.trace_sampled = false;
  std::string unsampled = EncodeRequestFrame(request);
  ASSERT_EQ(ExtractFrame(unsampled, kNetRequestMagic, kMaxNetRequestBody,
                         &frame_size, &body),
            FrameParse::kFrame);
  std::memcpy(&crc, unsampled.data() + 8, sizeof(crc));
  decoded = DecodeRequestBody(body, crc);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->trace_sampled);
}

TEST(NetProtocolTest, TracedReplicationPayloadSurvivesRoundTrip) {
  NetRequest request;
  request.type = NetRequestType::kReplicate;
  request.request_id = 5;
  request.payload = std::string("batch-bytes\x00with-nul", 20);
  request.trace_id = 77;
  request.parent_span_id = 78;
  std::string frame = EncodeRequestFrame(request);

  size_t frame_size = 0;
  std::string_view body;
  ASSERT_EQ(ExtractFrame(frame, kNetRequestMagic, kMaxNetRequestBody,
                         &frame_size, &body),
            FrameParse::kFrame);
  uint32_t crc = 0;
  std::memcpy(&crc, frame.data() + 8, sizeof(crc));
  auto decoded = DecodeRequestBody(body, crc);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->payload, request.payload);
  EXPECT_EQ(decoded->trace_id, 77u);
}

TEST(NetProtocolTest, StatsRequestRoundTripAndFormatValidation) {
  NetRequest request;
  request.type = NetRequestType::kStats;
  request.request_id = 9;
  request.stats_format = NetStatsFormat::kPrometheus;
  request.stats_max_events = 128;
  std::string frame = EncodeRequestFrame(request);

  size_t frame_size = 0;
  std::string_view body;
  ASSERT_EQ(ExtractFrame(frame, kNetRequestMagic, kMaxNetRequestBody,
                         &frame_size, &body),
            FrameParse::kFrame);
  uint32_t crc = 0;
  std::memcpy(&crc, frame.data() + 8, sizeof(crc));
  auto decoded = DecodeRequestBody(body, crc);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, NetRequestType::kStats);
  EXPECT_EQ(decoded->stats_format, NetStatsFormat::kPrometheus);
  EXPECT_EQ(decoded->stats_max_events, 128u);

  // An out-of-range format byte is a typed decode error, not UB.
  std::string bad = frame;
  bad[kNetFrameHeaderSize + 1 + 8 + 8] = 7;
  ASSERT_EQ(ExtractFrame(bad, kNetRequestMagic, kMaxNetRequestBody,
                         &frame_size, &body),
            FrameParse::kFrame);
  uint32_t bad_crc = Crc32(body);
  EXPECT_EQ(DecodeRequestBody(body, bad_crc).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NetProtocolTest, DeltaPayloadRoundtrip) {
  std::vector<std::string> patches = {"alpha", std::string(1000, 'x'), ""};
  std::string payload = EncodeDeltaPayload(patches);
  auto decoded = DecodeDeltaPayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, patches);
  EXPECT_EQ(DecodeDeltaPayload(payload.substr(0, payload.size() - 1))
                .status()
                .code(),
            StatusCode::kDataLoss);
}

TEST(NetServerTest, PingReportsVersion) {
  Harness h;
  auto response = h.client.Ping();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, NetResponseCode::kOk);
  EXPECT_EQ(response->version, 1u);
  EXPECT_TRUE(response->payload.empty());
}

TEST(NetServerTest, GetTileServesVerbatimStoreBytes) {
  Harness h;
  auto snap = h.service.snapshot();
  auto raw = snap->tiles.RawTilesCopy();
  ASSERT_FALSE(raw.empty());
  const auto& [key, blob] = *raw.begin();
  TileId id = snap->tiles.AllTiles().front();
  ASSERT_EQ(id.Morton(), key);

  auto response = h.client.GetTile(id);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, NetResponseCode::kOk);
  EXPECT_EQ(response->version, 1u);
  // Zero re-encode: the payload is the store blob, byte for byte, and
  // still carries its embedded frame CRC.
  EXPECT_EQ(response->payload, blob);
  EXPECT_TRUE(DeserializeMap(response->payload).ok());

  // A missing tile is a typed error, and the connection survives it.
  auto missing = h.client.GetTile(TileId{1000, 1000});
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->code, NetResponseCode::kError);
  EXPECT_EQ(missing->status, StatusCode::kNotFound);
  EXPECT_TRUE(h.client.Ping().ok());
}

TEST(NetServerTest, GetRegionRoundtrips) {
  Harness h;
  Aabb box = h.service.snapshot()->map.BoundingBox();
  auto response = h.client.GetRegion(box);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->code, NetResponseCode::kOk);
  auto region = DeserializeMap(response->payload);
  ASSERT_TRUE(region.ok());
  auto local = h.service.GetRegion(box);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(SerializeMap(*region), SerializeMap(*local));
}

TEST(NetServerTest, CoalescingCollapsesIdenticalConcurrentRegions) {
  TileServer::Options options;
  options.worker_threads = 4;
  options.handler_delay_ms_for_test = 150;
  Harness h(options);
  Aabb box = h.service.snapshot()->map.BoundingBox();

  uint64_t computations_before =
      h.server->metrics().GetCounter("net.computations")->value();

  // Pipeline K identical unconditional fetches; the delay keeps the first
  // computation in flight while the rest arrive and park as waiters.
  constexpr int kDuplicates = 4;
  for (int i = 0; i < kDuplicates; ++i) {
    NetRequest request;
    request.type = NetRequestType::kGetRegion;
    request.request_id = 100 + static_cast<uint64_t>(i);
    request.box = box;
    ASSERT_TRUE(h.client.Send(request).ok());
  }
  std::vector<NetResponse> responses;
  std::set<uint64_t> ids;
  for (int i = 0; i < kDuplicates; ++i) {
    auto response = h.client.ReadResponse();
    ASSERT_TRUE(response.ok());
    responses.push_back(*response);
    ids.insert(response->request_id);
  }
  // Every duplicate got its own response (correct request_id pairing)...
  EXPECT_EQ(ids.size(), static_cast<size_t>(kDuplicates));
  // ...with byte-identical payloads...
  for (const NetResponse& response : responses) {
    EXPECT_EQ(response.code, NetResponseCode::kOk);
    EXPECT_EQ(response.payload, responses.front().payload);
  }
  // ...from exactly one computation.
  EXPECT_EQ(
      h.server->metrics().GetCounter("net.computations")->value() -
          computations_before,
      1u);
  EXPECT_EQ(h.server->metrics().GetCounter("net.coalesced")->value(),
            static_cast<uint64_t>(kDuplicates - 1));
}

TEST(NetServerTest, BusyWhenGlobalQueueFull) {
  TileServer::Options options;
  options.worker_threads = 1;
  options.max_pending_requests = 2;
  options.handler_delay_ms_for_test = 300;
  Harness h(options);

  // Distinct tiles (no coalescing): the IO thread admits two and must
  // shed the rest with typed BUSY responses while the slow worker holds
  // the queue.
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    NetRequest request;
    request.type = NetRequestType::kGetTile;
    request.request_id = static_cast<uint64_t>(i);
    request.tile = TileId{i, 0};
    ASSERT_TRUE(h.client.Send(request).ok());
  }
  int busy = 0;
  int served = 0;
  for (int i = 0; i < kRequests; ++i) {
    auto response = h.client.ReadResponse();
    ASSERT_TRUE(response.ok());
    if (response->code == NetResponseCode::kBusy) {
      ++busy;
    } else {
      ++served;
    }
  }
  EXPECT_EQ(busy, kRequests - 2);
  EXPECT_EQ(served, 2);
  EXPECT_EQ(h.server->metrics().GetCounter("net.busy_rejected")->value(),
            static_cast<uint64_t>(busy));
  // BUSY rejections are explainable from the event log.
  bool saw_event = false;
  for (const EventLog::Event& event : h.server->RecentEvents()) {
    if (event.type == EventLog::Type::kBusyRejected) saw_event = true;
  }
  EXPECT_TRUE(saw_event);
  // The server recovers once the backlog drains.
  auto after = h.client.Ping();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->code, NetResponseCode::kOk);
}

TEST(NetServerTest, BusyAtPerConnectionCap) {
  TileServer::Options options;
  options.worker_threads = 1;
  options.max_pending_requests = 100;
  options.max_inflight_per_connection = 1;
  options.handler_delay_ms_for_test = 200;
  Harness h(options);

  for (int i = 0; i < 3; ++i) {
    NetRequest request;
    request.type = NetRequestType::kGetTile;
    request.request_id = static_cast<uint64_t>(i);
    request.tile = TileId{i, 0};
    ASSERT_TRUE(h.client.Send(request).ok());
  }
  int busy = 0;
  for (int i = 0; i < 3; ++i) {
    auto response = h.client.ReadResponse();
    ASSERT_TRUE(response.ok());
    if (response->code == NetResponseCode::kBusy) ++busy;
  }
  EXPECT_EQ(busy, 2);

  // A second connection is not throttled by the first one's cap.
  NetClient other;
  ASSERT_TRUE(other.Connect("127.0.0.1", h.server->port()).ok());
  auto response = other.Ping();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, NetResponseCode::kOk);
}

TEST(NetServerTest, ConditionalFetchNotModified) {
  Harness h;
  auto response =
      h.client.GetRegion(h.service.snapshot()->map.BoundingBox(), 1);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, NetResponseCode::kNotModified);
  EXPECT_EQ(response->version, 1u);
  EXPECT_TRUE(response->payload.empty());

  auto tile_response =
      h.client.GetTile(h.service.snapshot()->tiles.AllTiles().front(), 1);
  ASSERT_TRUE(tile_response.ok());
  EXPECT_EQ(tile_response->code, NetResponseCode::kNotModified);
}

TEST(NetServerTest, ConditionalFetchDeltaMatchesLocalApply) {
  Harness h;
  Aabb box = h.service.snapshot()->map.BoundingBox();

  // Client syncs fully at version 1.
  auto full = h.client.GetRegion(box);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->code, NetResponseCode::kOk);
  auto local = DeserializeMap(full->payload);
  ASSERT_TRUE(local.ok());

  // Server publishes version 2 (small in-tile move: the delta is tiny).
  ElementId sign = FirstLandmarkId(h.service.snapshot()->map);
  MapPatch patch;
  patch.moved_landmarks.push_back(
      {sign,
       h.service.snapshot()->map.FindLandmark(sign)->position +
           Vec3{0.5, 0.5, 0.0}});
  ASSERT_TRUE(h.service.ApplyPatch(patch).ok());
  ASSERT_EQ(h.service.version(), 2u);

  // "I have v1" now yields a delta reaching v2, far smaller than the
  // full region payload.
  auto delta_response = h.client.GetRegion(box, 1);
  ASSERT_TRUE(delta_response.ok());
  ASSERT_EQ(delta_response->code, NetResponseCode::kDelta);
  EXPECT_EQ(delta_response->version, 2u);
  EXPECT_LT(delta_response->payload.size(), full->payload.size() / 10);

  auto framed_patches = DecodeDeltaPayload(delta_response->payload);
  ASSERT_TRUE(framed_patches.ok());
  ASSERT_EQ(framed_patches->size(), 1u);
  auto wire_patch = DeserializePatch(framed_patches->front());
  ASSERT_TRUE(wire_patch.ok());
  ASSERT_TRUE(ApplyPatch(*wire_patch, &local.value()).ok());

  // The locally patched map matches a fresh full fetch of version 2 —
  // byte-identical once re-encoded in whichever region format the
  // server's store uses (v3 by default, v1 under -DHDMAP_FORMAT_V3=OFF).
  auto fresh = h.client.GetRegion(box);
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->code, NetResponseCode::kOk);
  std::string reencoded =
      h.service.snapshot()->tiles.format() == TileFormat::kFlatV3
          ? EncodeTileV3(*local)
          : SerializeMap(*local);
  EXPECT_EQ(reencoded, fresh->payload);
  EXPECT_EQ(local->FindLandmark(sign)->position,
            h.service.snapshot()->map.FindLandmark(sign)->position);
}

TEST(NetServerTest, DeltaFallsBackToFullPastHistory) {
  MapService::Options service_options = SmallTileOptions();
  service_options.publish_history = 1;
  Harness h({}, service_options);
  ElementId sign = FirstLandmarkId(h.service.snapshot()->map);
  for (int i = 0; i < 3; ++i) {
    MapPatch patch;
    patch.moved_landmarks.push_back(
        {sign,
         h.service.snapshot()->map.FindLandmark(sign)->position +
             Vec3{0.1, 0.0, 0.0}});
    ASSERT_TRUE(h.service.ApplyPatch(patch).ok());
  }
  ASSERT_EQ(h.service.version(), 4u);

  // v1 -> v4 needs three publishes of history but only one is retained:
  // the server answers with a full fetch instead of a broken chain.
  auto response =
      h.client.GetRegion(h.service.snapshot()->map.BoundingBox(), 1);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, NetResponseCode::kOk);
  EXPECT_TRUE(DeserializeMap(response->payload).ok());

  // The still-retained last step serves as a delta.
  auto recent =
      h.client.GetRegion(h.service.snapshot()->map.BoundingBox(), 3);
  ASSERT_TRUE(recent.ok());
  EXPECT_EQ(recent->code, NetResponseCode::kDelta);
}

TEST(NetServerTest, CorruptRequestBodyRejectedConnectionSurvives) {
  Harness h;
  // Valid framing, damaged body: flip one bit past the header.
  NetRequest request;
  request.type = NetRequestType::kPing;
  request.request_id = 9;
  std::string frame = EncodeRequestFrame(request);
  frame[kNetFrameHeaderSize + 2] ^= 0x04;
  ASSERT_TRUE(h.client.SendRaw(frame).ok());
  auto response = h.client.ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, NetResponseCode::kError);
  EXPECT_EQ(response->status, StatusCode::kDataLoss);
  EXPECT_GE(h.server->metrics().GetCounter("net.malformed_requests")->value(),
            1u);
  // The stream is still framed: the next request is served normally.
  auto after = h.client.Ping();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->code, NetResponseCode::kOk);
}

TEST(NetServerTest, RecvFaultInjectionRejectsWithoutKillingConnection) {
  FaultInjector faults(1234);
  faults.AddPolicy({TileServer::kRecvFaultSite, FaultKind::kBitFlip, 1.0});
  TileServer::Options options;
  options.fault_injector = &faults;
  Harness h(options);

  // Every request body is corrupted after framing: typed kDataLoss
  // errors, connection intact.
  for (int i = 0; i < 3; ++i) {
    auto response = h.client.Ping();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, NetResponseCode::kError);
    EXPECT_EQ(response->status, StatusCode::kDataLoss);
  }
  EXPECT_EQ(faults.InjectedCount(TileServer::kRecvFaultSite), 3u);

  faults.ClearPolicies();
  auto response = h.client.Ping();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, NetResponseCode::kOk);
}

TEST(NetServerTest, GarbageStreamClosesConnection) {
  Harness h;
  ASSERT_TRUE(h.client.SendRaw(std::string(64, 'Z')).ok());
  // Framing is unrecoverable: the server drops the connection.
  EXPECT_FALSE(h.client.ReadResponse().ok());
  // New connections still serve.
  NetClient fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", h.server->port()).ok());
  EXPECT_TRUE(fresh.Ping().ok());
}

TEST(NetServerTest, RequestTraceIsOneTreeRootedAtNetClientCall) {
  TraceRecorder& recorder = TraceRecorder::Global();
  TraceRecorder::Options trace_options;
  trace_options.enabled = true;
  trace_options.sample_every_n = 1;
  recorder.Configure(trace_options);

  {
    Harness h;
    auto response =
        h.client.GetRegion(h.service.snapshot()->map.BoundingBox());
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, NetResponseCode::kOk);
  }

  // The client call is the cross-process root; its context travels in
  // the request frame, so the server-side net.request joins the SAME
  // trace as a child instead of rooting a second one.
  uint64_t client_trace = 0;
  uint64_t client_span = 0;
  for (const TraceEvent& event : recorder.Snapshot()) {
    if (std::string_view(event.name) == "net_client.call" &&
        event.parent_span_id == 0) {
      client_trace = event.trace_id;
      client_span = event.span_id;
    }
  }
  ASSERT_NE(client_trace, 0u);
  uint64_t net_span = 0;
  for (const TraceEvent& event : recorder.Snapshot()) {
    if (std::string_view(event.name) == "net.request" &&
        event.trace_id == client_trace &&
        event.parent_span_id == client_span) {
      net_span = event.span_id;
    }
  }
  ASSERT_NE(net_span, 0u);
  // And the service endpoint's span hangs under net.request: one
  // request, one tree, three layers, two processes' worth of spans.
  bool service_child = false;
  for (const TraceEvent& event : recorder.Snapshot()) {
    if (std::string_view(event.name) == "map_service.get_region" &&
        event.trace_id == client_trace && event.parent_span_id == net_span) {
      service_child = true;
    }
  }
  EXPECT_TRUE(service_child);
  recorder.Configure(TraceRecorder::Options{});  // Back to disabled.
}

TEST(NetServerTest, TracePropagationOffKeepsServerTraceSeparate) {
  TraceRecorder& recorder = TraceRecorder::Global();
  TraceRecorder::Options trace_options;
  trace_options.enabled = true;
  trace_options.sample_every_n = 1;
  recorder.Configure(trace_options);

  {
    Harness h;
    h.client.set_propagate_trace(false);
    ASSERT_TRUE(h.client.Ping().ok());
  }

  // With propagation off the frame carries no trace block, so the server
  // roots its own trace — disjoint from the client's.
  uint64_t client_trace = 0;
  for (const TraceEvent& event : recorder.Snapshot()) {
    if (std::string_view(event.name) == "net_client.call") {
      client_trace = event.trace_id;
    }
  }
  ASSERT_NE(client_trace, 0u);
  bool server_rooted_fresh = false;
  for (const TraceEvent& event : recorder.Snapshot()) {
    if (std::string_view(event.name) == "net.request") {
      EXPECT_NE(event.trace_id, client_trace);
      if (event.parent_span_id == 0) server_rooted_fresh = true;
    }
  }
  EXPECT_TRUE(server_rooted_fresh);
  recorder.Configure(TraceRecorder::Options{});
}

TEST(NetServerTest, KStatsServesJsonDocument) {
  Harness h;
  ASSERT_TRUE(h.client.Ping().ok());  // Tick at least one counter.
  auto response = h.client.FetchStats();
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->code, NetResponseCode::kOk);
  const std::string& doc = response->payload;
  EXPECT_NE(doc.find("\"node\":{\"label\":\"hdmap\""), std::string::npos);
  EXPECT_NE(doc.find("\"health\":\"SERVING\""), std::string::npos);
  // No replication callback configured: the document says so typed-ly.
  EXPECT_NE(doc.find("\"replication\":null"), std::string::npos);
  EXPECT_NE(doc.find("\"events\":["), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(doc.find("net.requests"), std::string::npos);
}

TEST(NetServerTest, KStatsServesPrometheusExposition) {
  Harness h;
  ASSERT_TRUE(h.client.Ping().ok());
  auto response = h.client.FetchStats(NetStatsFormat::kPrometheus);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->code, NetResponseCode::kOk);
  EXPECT_NE(response->payload.find("# HELP hdmap_"), std::string::npos);
  EXPECT_NE(response->payload.find("# TYPE hdmap_net_requests_total counter"),
            std::string::npos);
}

TEST(NetServerTest, SlowRpcWatchdogForceRecordsTrace) {
  TraceRecorder& recorder = TraceRecorder::Global();
  TraceRecorder::Options trace_options;
  trace_options.enabled = true;
  trace_options.sample_every_n = 0;  // Unsampled: only forced spans record.
  trace_options.slow_threshold_s = 0.0;
  recorder.Configure(trace_options);

  EventLog watchdog_log(16);
  {
    TileServer::Options options;
    options.handler_delay_ms_for_test = 20;  // Applies on the fetch path.
    Harness h(options);
    h.client.set_slow_rpc_watchdog(/*budget_s=*/0.001, &watchdog_log);
    TileId id = h.service.snapshot()->tiles.AllTiles().front();
    auto response = h.client.GetTile(id);
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->code, NetResponseCode::kOk);
  }

  // The budget was blown, so the watchdog appended a SLOW_REQUEST event
  // carrying the call's trace id — and force-recorded the span despite
  // sampling being off, so the id resolves in the ring.
  std::vector<EventLog::Event> events = watchdog_log.Recent();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventLog::Type::kSlowRequest);
  ASSERT_NE(events[0].trace_id, 0u);
  bool span_recorded = false;
  for (const TraceEvent& event : recorder.Snapshot()) {
    if (std::string_view(event.name) == "net_client.call" &&
        event.trace_id == events[0].trace_id) {
      span_recorded = true;
    }
  }
  EXPECT_TRUE(span_recorded);
  recorder.Configure(TraceRecorder::Options{});
}

TEST(NetServerTest, StopDrainsAdmittedRequests) {
  TileServer::Options options;
  options.worker_threads = 2;
  options.handler_delay_ms_for_test = 100;
  auto h = std::make_unique<Harness>(options);
  NetRequest request;
  request.type = NetRequestType::kGetTile;
  request.request_id = 7;
  request.tile = h->service.snapshot()->tiles.AllTiles().front();
  ASSERT_TRUE(h->client.Send(request).ok());
  // Wait for admission (the request counter ticks at execution start),
  // then stop while the handler is still inside its test delay: the
  // worker pool drains its queue, so the admitted request still gets its
  // response.
  Counter* requests = h->server->metrics().GetCounter("net.requests");
  for (int i = 0; i < 500 && requests->value() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(requests->value(), 1u);
  h->server->Stop();
  auto response = h->client.ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->request_id, 7u);
  EXPECT_EQ(response->code, NetResponseCode::kOk);
}

}  // namespace
}  // namespace hdmap
