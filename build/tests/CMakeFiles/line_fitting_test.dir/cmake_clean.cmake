file(REMOVE_RECURSE
  "CMakeFiles/line_fitting_test.dir/line_fitting_test.cc.o"
  "CMakeFiles/line_fitting_test.dir/line_fitting_test.cc.o.d"
  "line_fitting_test"
  "line_fitting_test.pdb"
  "line_fitting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line_fitting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
