// fleet_map_update: the §II-B maintenance loop end to end. The world
// drifts away from the published map; a fleet of vehicles detects the
// differences while driving (SLAMCU), roadside MEC units condense the
// crowd evidence (Qi et al.), and the confirmed changes are published
// through a MapService as one new snapshot version — which is then
// re-verified against the world.

#include <cstdio>

#include "core/map_patch.h"
#include "maintenance/crowd_sensing.h"
#include "maintenance/slamcu.h"
#include "service/map_service.h"
#include "sim/change_injector.h"
#include "sim/road_network_generator.h"
#include "sim/sensors.h"

int main() {
  using namespace hdmap;
  Rng rng(99);

  // Published map vs drifted world.
  HighwayOptions opt;
  opt.length = 8000.0;
  opt.sign_spacing = 100.0;
  auto built = GenerateHighway(opt, rng);
  if (!built.ok()) return 1;
  HdMap published = *built;
  HdMap world = *built;
  ChangeInjectorOptions copt;
  copt.landmark_add_prob = 0.08;
  copt.landmark_remove_prob = 0.08;
  copt.landmark_move_prob = 0.04;
  auto events = InjectChanges(copt, &world, rng);
  std::printf("world drifted: %zu ground-truth changes injected\n",
              events.size());

  // Fleet passes: each vehicle runs SLAMCU against the published map and
  // uploads its confirmed evidence to the RSU layer.
  LandmarkDetector::Options det_opt;
  det_opt.detection_prob = 0.9;
  det_opt.clutter_rate = 0.05;
  LandmarkDetector detector(det_opt);
  CrowdSensingAggregator::Options agg_opt;
  agg_opt.min_reports = 3;
  CrowdSensingAggregator rsu_layer(agg_opt);

  // Forward chain of the corridor.
  std::vector<const Lanelet*> chain;
  for (const auto& [id, ll] : world.lanelets()) {
    if (ll.predecessors.empty() && !ll.successors.empty()) {
      const Lanelet* cur = &ll;
      while (cur != nullptr) {
        chain.push_back(cur);
        cur = cur->successors.empty()
                  ? nullptr
                  : world.FindLanelet(cur->successors.front());
      }
      break;
    }
  }

  const int kFleetSize = 6;
  for (int vehicle = 0; vehicle < kFleetSize; ++vehicle) {
    Rng vrng = rng.Fork();
    Slamcu slamcu(&published, {});
    for (const Lanelet* lane : chain) {
      for (double s = 0.0; s < lane->Length(); s += 8.0) {
        Pose2 truth(lane->centerline.PointAt(s),
                    lane->centerline.HeadingAt(s));
        Pose2 estimated(truth.translation + Vec2{vrng.Normal(0.0, 0.3),
                                                 vrng.Normal(0.0, 0.3)},
                        truth.heading);
        slamcu.ProcessFrame(estimated, detector.Detect(world, truth, vrng));
      }
    }
    // Upload this vehicle's confirmed evidence.
    for (const auto& track : slamcu.ConfirmedAdditions()) {
      rsu_layer.Ingest({track.mean, true, kInvalidId, 64});
    }
    for (ElementId id : slamcu.ConfirmedRemovals()) {
      const Landmark* lm = published.FindLandmark(id);
      if (lm != nullptr) {
        rsu_layer.Ingest({lm->position.xy(), false, id, 64});
      }
    }
  }

  // Central aggregation -> map patch.
  auto aggregate = rsu_layer.Aggregate();
  std::printf("crowd sensing: %zu RSUs, %zu confirmed changes; upload "
              "%zu B condensed vs %zu B raw (%.0fx saving)\n",
              aggregate.num_rsus, aggregate.confirmed.size(),
              aggregate.condensed_upload_bytes, aggregate.raw_upload_bytes,
              static_cast<double>(aggregate.raw_upload_bytes) /
                  std::max<size_t>(1, aggregate.condensed_upload_bytes));

  MapPatch patch;
  ElementId next_id = 2000000;
  for (const ChangeObservation& change : aggregate.confirmed) {
    if (change.is_addition) {
      Landmark lm;
      lm.id = next_id++;
      lm.type = LandmarkType::kTrafficSign;
      lm.subtype = "fleet_detected";
      lm.position = Vec3(change.position, 2.2);
      patch.added_landmarks.push_back(std::move(lm));
    } else {
      patch.removed_landmarks.push_back(change.map_id);
    }
  }
  // Publish through the serving stack: fleet readers keep loading the old
  // snapshot until the patch lands as one atomic version swap.
  MapService service;
  if (!service.Init(published).ok()) return 1;
  Status applied = service.ApplyPatch(patch);
  std::printf("patch: %zu changes published as version %llu (%s), "
              "publish p50 %.2f ms\n",
              patch.NumChanges(),
              static_cast<unsigned long long>(service.version()),
              applied.ToString().c_str(),
              service.metrics()
                      .GetLatency("map_service.publish")
                      ->ApproxPercentileSeconds(50) *
                  1e3);
  published = service.snapshot()->map;

  // Re-verification: how many of the injected changes did the loop
  // actually capture in the published map?
  int captured = 0, total = 0;
  for (const auto& ev : events) {
    if (ev.type == ChangeType::kLandmarkAdded) {
      ++total;
      for (ElementId id : published.LandmarksNear(ev.new_position.xy(), 2.0)) {
        if (published.FindLandmark(id)->subtype == "fleet_detected") {
          ++captured;
          break;
        }
      }
    } else if (ev.type == ChangeType::kLandmarkRemoved) {
      ++total;
      if (published.FindLandmark(ev.element_id) == nullptr) ++captured;
    }
  }
  std::printf("verification: %d of %d injected add/remove changes now "
              "reflected in the published map\n",
              captured, total);
  return 0;
}
