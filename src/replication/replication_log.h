#ifndef HDMAP_REPLICATION_REPLICATION_LOG_H_
#define HDMAP_REPLICATION_REPLICATION_LOG_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "replication/wire.h"
#include "storage/patch_wal.h"

namespace hdmap {

/// In-memory, bounded tail of a node's replication stream — the shipping
/// buffer the WalShipper reads and followers mirror. It is the tailing
/// interface over the durable PatchWal: on a leader every StagePatch
/// appends the same framed patch bytes to both (the WAL first — the
/// ack-before-durable rule holds for replication too), publishes append a
/// marker record, and `InitFromWal` bootstraps the tail from a WAL's
/// surviving records after a cold start.
///
/// Seqs are 1-based and contiguous. The log is bounded: `TrimToCapacity`
/// drops the oldest records but never past the caller's floor (the
/// staged-but-unpublished tail, which a catch-up snapshot cannot carry).
/// A follower whose position predates `start_seq()` is served a snapshot
/// instead (kCatchUp).
///
/// Thread-safe; every method takes an internal mutex.
class ReplicationLog {
 public:
  explicit ReplicationLog(size_t capacity = 4096);

  /// Appends a record authored by this node (leader path) and stamps the
  /// next seq, which is returned.
  uint64_t Append(ReplRecordKind kind, uint64_t term, uint64_t version,
                  std::string payload);

  /// Appends a record received from a leader (follower mirror path),
  /// preserving its seq/term. The seq must be exactly end_seq() + 1.
  Status AppendReplicated(const ReplRecord& record);

  /// Bootstraps the tail from a PatchWal's surviving records (cold
  /// start): each replayed WAL record becomes a kPatch record under
  /// `term`, starting at seq `first_seq`. The log must be empty. Returns
  /// the number of records loaded.
  Result<size_t> InitFromWal(const PatchWal& wal, uint64_t term,
                             uint64_t first_seq);

  /// Records with seq in [from_seq, end], capped at `max_records` and
  /// roughly `max_bytes` (always at least one when available). Returns
  /// kOutOfRange when from_seq predates start_seq() — the reader needs a
  /// catch-up snapshot. An empty vector means the reader is caught up.
  Result<std::vector<ReplRecord>> ReadFrom(uint64_t from_seq,
                                           size_t max_records,
                                           size_t max_bytes) const;

  /// Drops records from the front while over capacity, but never a
  /// record with seq >= keep_from_seq.
  void TrimToCapacity(uint64_t keep_from_seq);

  /// Empties the log and stamps the next append `next_seq` (catch-up
  /// install: the snapshot subsumes everything before it).
  void ResetTo(uint64_t next_seq);

  /// Seq of the oldest retained record; end_seq() + 1 when empty.
  uint64_t start_seq() const;
  /// Seq of the newest record ever appended (survives trims); 0 when
  /// nothing was ever appended.
  uint64_t end_seq() const;
  size_t size() const;

  /// Milliseconds since the record at `next_seq` (a follower's next
  /// expected position) was appended here — the replication lag in time
  /// units, from the leader's clock. 0 when the follower is caught up
  /// (next_seq past the end) or the record was already trimmed (age is
  /// then unknowable; the record count still shows the lag).
  double OldestPendingAgeMs(uint64_t next_seq) const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t next_seq_ = 1;
  std::deque<ReplRecord> records_;
  /// Append instants, parallel to records_ (stamps_[i] is records_[i]'s);
  /// feeds OldestPendingAgeMs. Kept out of ReplRecord: the stamp is
  /// shipper-side bookkeeping, not wire state.
  std::deque<std::chrono::steady_clock::time_point> stamps_;
};

}  // namespace hdmap

#endif  // HDMAP_REPLICATION_REPLICATION_LOG_H_
