#ifndef HDMAP_PLANNING_SPEED_PROFILE_H_
#define HDMAP_PLANNING_SPEED_PROFILE_H_

#include <vector>

#include "common/result.h"
#include "core/hd_map.h"

namespace hdmap {

/// Why the profile is constrained at a station.
enum class SpeedConstraintCause {
  kSpeedLimit = 0,
  kStopSign = 1,
  kTrafficLight = 2,
  kRouteEnd = 3,
};

/// One constraint extracted from the map along a route.
struct SpeedConstraint {
  double station = 0.0;     ///< Meters from the route start.
  double max_speed = 0.0;   ///< 0 for mandatory stops.
  SpeedConstraintCause cause = SpeedConstraintCause::kSpeedLimit;
};

/// One sample of the generated drivable profile.
struct SpeedSample {
  double station = 0.0;
  double speed = 0.0;
};

struct SpeedProfileOptions {
  double station_step = 5.0;
  double max_accel = 1.5;   ///< m/s^2.
  double max_decel = 2.5;
  double initial_speed = 0.0;
  /// Treat traffic lights as mandatory stops (worst case) when true;
  /// otherwise they are ignored (green-wave assumption).
  bool stop_at_lights = true;
};

/// Extracts the speed constraints of a lanelet route from the map's
/// regulatory layer: effective speed limits per lanelet, stop signs and
/// (optionally) traffic lights as zero-speed points at the lanelet end,
/// and a stop at the route end.
Result<std::vector<SpeedConstraint>> ExtractRouteConstraints(
    const HdMap& map, const std::vector<ElementId>& route,
    const SpeedProfileOptions& options = {});

/// Generates the drivable velocity profile for the constraints: the
/// classic forward (acceleration-limited) / backward (deceleration-
/// limited) pass over v^2, honoring every constraint exactly. This is
/// the "machine-readable route" of §III-3 made executable.
std::vector<SpeedSample> GenerateSpeedProfile(
    const std::vector<SpeedConstraint>& constraints, double route_length,
    const SpeedProfileOptions& options = {});

}  // namespace hdmap

#endif  // HDMAP_PLANNING_SPEED_PROFILE_H_
