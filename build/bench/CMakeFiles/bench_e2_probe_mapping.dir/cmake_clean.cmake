file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_probe_mapping.dir/bench_e2_probe_mapping.cc.o"
  "CMakeFiles/bench_e2_probe_mapping.dir/bench_e2_probe_mapping.cc.o.d"
  "bench_e2_probe_mapping"
  "bench_e2_probe_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_probe_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
