#ifndef HDMAP_CORE_TILE_STORE_H_
#define HDMAP_CORE_TILE_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/hd_map.h"

namespace hdmap {

/// Tile coordinate in a uniform square tiling of the plane.
struct TileId {
  int32_t x = 0;
  int32_t y = 0;

  /// Morton (Z-order) code; the storage key. Interleaves offset-biased
  /// coordinates so nearby tiles get nearby keys.
  uint64_t Morton() const;

  friend bool operator==(const TileId& a, const TileId& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator<(const TileId& a, const TileId& b) {
    return a.Morton() < b.Morton();
  }
};

/// Keyed collection of serialized map tiles (the unit of distribution and
/// incremental update in production HD-map services; enables the
/// partitioned update workloads of Pannen et al. [44] and Qi et al. [47]).
class TileStore {
 public:
  explicit TileStore(double tile_size_m = 256.0)
      : tile_size_(tile_size_m) {}

  double tile_size() const { return tile_size_; }
  size_t NumTiles() const { return tiles_.size(); }

  /// Total serialized bytes across tiles.
  size_t TotalBytes() const;

  TileId TileAt(const Vec2& p) const;

  /// Splits `map` into tiles: each element is assigned to every tile its
  /// bounding box intersects (border elements are duplicated, as in
  /// production tiling).
  void Build(const HdMap& map);

  /// Replaces one tile's payload with the serialization of `tile_map`.
  void PutTile(const TileId& id, const HdMap& tile_map);

  /// Deserializes a tile; kNotFound for absent tiles.
  Result<HdMap> LoadTile(const TileId& id) const;

  /// Tile ids intersecting the query box (present tiles only).
  std::vector<TileId> TilesInBox(const Aabb& box) const;

  /// Loads and stitches all tiles intersecting `box` into one map
  /// (duplicated border elements are inserted once).
  Result<HdMap> LoadRegion(const Aabb& box) const;

  const std::map<uint64_t, std::string>& raw_tiles() const { return tiles_; }

 private:
  double tile_size_;
  std::map<uint64_t, std::string> tiles_;   // Morton key -> blob.
  std::map<uint64_t, TileId> tile_ids_;     // Morton key -> coordinates.
};

}  // namespace hdmap

#endif  // HDMAP_CORE_TILE_STORE_H_
