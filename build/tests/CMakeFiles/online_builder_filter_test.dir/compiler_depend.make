# Empty compiler generated dependencies file for online_builder_filter_test.
# This may be replaced when dependencies are built.
