#ifndef HDMAP_STORAGE_FS_UTIL_H_
#define HDMAP_STORAGE_FS_UTIL_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace hdmap {

/// When the durability layer calls fsync. Checkpoint/WAL *content* is
/// identical either way; the mode only controls whether an acknowledged
/// write is guaranteed to survive a power loss (kAlways) or merely a
/// process crash (kNever — the bytes sit in the page cache).
enum class FsyncMode {
  kAlways,  ///< fsync every durable write before acknowledging it.
  kNever,   ///< Skip fsync (tests/benches; still crash-consistent).
};

/// Writes `bytes` to `path` (create/truncate), fsyncing per `mode` before
/// close. Not atomic on its own — checkpoint atomicity comes from writing
/// into a temp directory and renaming it into place.
Status WriteFileRaw(const std::string& path, std::string_view bytes,
                    FsyncMode mode);

/// Reads the whole file at `path`. kNotFound when it does not exist.
Result<std::string> ReadFileRaw(const std::string& path);

/// fsyncs a directory so a rename/create/unlink inside it is durable.
/// No-op under FsyncMode::kNever.
Status FsyncDir(const std::string& path, FsyncMode mode);

}  // namespace hdmap

#endif  // HDMAP_STORAGE_FS_UTIL_H_
