#include "maintenance/raster_diff.h"

#include <algorithm>

namespace hdmap {

std::vector<RasterChangeRegion> RasterChangeDetector::Detect(
    const SemanticRaster& map_raster, const SemanticRaster& observed) const {
  std::vector<RasterChangeRegion> regions;
  if (map_raster.width() != observed.width() ||
      map_raster.height() != observed.height()) {
    RasterChangeRegion whole;
    whole.region =
        Aabb(map_raster.origin(),
             map_raster.origin() +
                 Vec2{map_raster.width() * map_raster.resolution(),
                      map_raster.height() * map_raster.resolution()});
    whole.score = 1.0;
    regions.push_back(whole);
    return regions;
  }

  int w = options_.window_cells;
  for (int wy = 0; wy < map_raster.height(); wy += w) {
    for (int wx = 0; wx < map_raster.width(); wx += w) {
      int x_end = std::min(map_raster.width(), wx + w);
      int y_end = std::min(map_raster.height(), wy + w);
      int content = 0;
      int differing = 0;
      uint8_t map_only = 0;
      uint8_t world_only = 0;
      for (int cy = wy; cy < y_end; ++cy) {
        for (int cx = wx; cx < x_end; ++cx) {
          uint8_t a = map_raster.At(cx, cy);
          uint8_t b = observed.At(cx, cy);
          if (a == 0 && b == 0) continue;
          ++content;
          if (a != b) {
            ++differing;
            map_only |= static_cast<uint8_t>(a & ~b);
            world_only |= static_cast<uint8_t>(b & ~a);
          }
        }
      }
      if (content < options_.min_content_cells) continue;
      double score = static_cast<double>(differing) / content;
      if (score < options_.score_threshold) continue;
      RasterChangeRegion region;
      region.region =
          Aabb(map_raster.CellCenter(wx, wy) -
                   Vec2{map_raster.resolution() / 2,
                        map_raster.resolution() / 2},
               map_raster.CellCenter(x_end - 1, y_end - 1) +
                   Vec2{map_raster.resolution() / 2,
                        map_raster.resolution() / 2});
      region.score = score;
      region.map_only = map_only;
      region.world_only = world_only;
      regions.push_back(region);
    }
  }
  std::sort(regions.begin(), regions.end(),
            [](const RasterChangeRegion& a, const RasterChangeRegion& b) {
              return a.score > b.score;
            });
  return regions;
}

}  // namespace hdmap
