#ifndef HDMAP_LOCALIZATION_COOPERATIVE_LOCALIZATION_H_
#define HDMAP_LOCALIZATION_COOPERATIVE_LOCALIZATION_H_

#include <vector>

#include "core/hd_map.h"
#include "geometry/vec2.h"

namespace hdmap {

/// 2x2 symmetric covariance (position only).
struct Cov2 {
  double xx = 1.0;
  double xy = 0.0;
  double yy = 1.0;

  double Trace() const { return xx + yy; }
  Cov2 Scaled(double s) const { return {xx * s, xy * s, yy * s}; }
};

/// A vehicle's shareable position belief — the position entry of the
/// local dynamic map (LDM) vehicles exchange in Hery et al. [55].
struct PositionBelief {
  Vec2 mean;
  Cov2 cov;
};

/// Covariance intersection fusion of two beliefs with UNKNOWN
/// cross-correlation (the core consistency tool of [55]: naive Kalman
/// fusion of exchanged LDM entries double-counts shared information;
/// CI stays consistent for any correlation). Omega is chosen by a trace
/// minimization line search.
PositionBelief CovarianceIntersect(const PositionBelief& a,
                                   const PositionBelief& b);

/// Decentralized cooperative localizer for one vehicle:
///  * GNSS fixes carry an unknown slowly varying bias;
///  * the bias estimator compares fixes against georeferenced HD-map
///    features the vehicle ranges to, and subtracts the estimated bias;
///  * beliefs exchanged with partner vehicles (relative position known
///    from V2V ranging) are fused with covariance intersection.
class CooperativeLocalizer {
 public:
  struct Options {
    double gnss_sigma = 2.0;
    /// Smoothing factor of the recursive bias estimate.
    double bias_gain = 0.15;
    /// Sigma of a map-feature range-derived position residual.
    double feature_sigma = 0.5;
    /// Sigma of the V2V relative-position measurement.
    double relative_sigma = 0.3;
  };

  CooperativeLocalizer(const HdMap* map, const Options& options);

  /// GNSS update (bias-corrected).
  void UpdateGnss(const Vec2& fix);

  /// Map-feature update: the vehicle measured its position relative to a
  /// georeferenced landmark (e.g., from LiDAR ranging). Also feeds the
  /// GNSS bias estimator.
  void UpdateMapFeature(ElementId landmark_id,
                        const Vec2& measured_offset_from_landmark);

  /// Cooperative update: partner vehicle's shared belief plus the
  /// measured relative position (partner - self). Fused with CI.
  void UpdatePartner(const PositionBelief& partner_belief,
                     const Vec2& relative_position);

  const PositionBelief& belief() const { return belief_; }
  const Vec2& estimated_gnss_bias() const { return gnss_bias_; }

  /// Consistency check: squared Mahalanobis distance of the true
  /// position under the current belief (should be chi2-2 distributed
  /// for a consistent estimator).
  double MahalanobisSq(const Vec2& true_position) const;

 private:
  void FuseIndependent(const Vec2& z, double sigma);

  const HdMap* map_;
  Options options_;
  PositionBelief belief_;
  Vec2 gnss_bias_;
  bool initialized_ = false;
};

}  // namespace hdmap

#endif  // HDMAP_LOCALIZATION_COOPERATIVE_LOCALIZATION_H_
