// Quickstart: build an HD map, query it, route on it, and ship it.
//
// This walks the core public API end to end in ~80 lines:
//   1. generate a ground-truth town map (or build your own via HdMap);
//   2. spatial queries: lane matching, landmarks, speed limits;
//   3. lane-level routing;
//   4. serialization: full, compact, raster and tiles;
//   5. zero-copy tile reads through the span-based view API.

#include <cstdio>

#include "core/raster_layer.h"
#include "core/serialization.h"
#include "core/tile_store.h"
#include "planning/route_planner.h"
#include "sim/road_network_generator.h"

int main() {
  using namespace hdmap;

  // 1. A 4x4-block town with traffic lights, crosswalks and signs.
  Rng rng(7);
  TownOptions options;
  options.grid_rows = 4;
  options.grid_cols = 4;
  options.lanes_per_direction = 2;
  Result<HdMap> town = GenerateTown(options, rng);
  if (!town.ok()) {
    std::printf("generation failed: %s\n", town.status().ToString().c_str());
    return 1;
  }
  HdMap map = std::move(town).value();
  std::printf("built a town: %zu lanelets, %zu landmarks, %zu line "
              "features, %zu regulatory elements\n",
              map.lanelets().size(), map.landmarks().size(),
              map.line_features().size(), map.regulatory_elements().size());
  Status valid = map.Validate();
  std::printf("referential integrity: %s\n", valid.ToString().c_str());

  // 2. Spatial queries.
  Vec2 somewhere{200.0, 150.0};
  Result<LaneMatch> match = map.MatchToLane(somewhere);
  if (match.ok()) {
    std::printf("(%.0f, %.0f) matches lanelet %lld at s=%.1f m, "
                "offset %.2f m; speed limit %.1f m/s\n",
                somewhere.x, somewhere.y,
                static_cast<long long>(match->lanelet_id),
                match->arc_length, match->signed_offset,
                map.EffectiveSpeedLimit(match->lanelet_id));
  }
  std::printf("%zu landmarks within 80 m of that point\n",
              map.LandmarksNear(somewhere, 80.0).size());

  // 3. Lane-level routing across the town.
  RoutingGraph graph = RoutingGraph::Build(map);
  ElementId from = map.MatchToLane({10.0, 0.0})->lanelet_id;
  ElementId to = map.MatchToLane({440.0, 440.0}, 30.0)->lanelet_id;
  Result<Route> route = PlanRoute(graph, from, to, RouteAlgorithm::kAStar);
  if (route.ok()) {
    std::printf("route: %zu lanelets, %.0f s travel time, %d lane "
                "changes (%zu nodes expanded)\n",
                route->lanelets.size(), route->cost_seconds,
                route->lane_changes, route->nodes_expanded);
  } else {
    std::printf("routing failed: %s\n", route.status().ToString().c_str());
  }

  // 4. Ship it: full binary, compact vector map, semantic raster, tiles.
  std::string full = SerializeMap(map);
  std::string compact = SerializeCompactMap(map);
  SemanticRaster raster = RasterizeMap(map, 0.5);
  TileStore tiles(TileStore::Options{.tile_size_m = 256.0});
  tiles.Build(map);
  std::printf("storage: full %zu KB | compact %zu KB | raster (RLE) "
              "%zu KB | %zu tiles\n",
              full.size() / 1024, compact.size() / 1024,
              raster.SerializeRle().size() / 1024, tiles.NumTiles());

  // Round-trip sanity.
  Result<HdMap> restored = DeserializeMap(full);
  std::printf("round-trip: %s (%zu elements)\n",
              restored.ok() ? "OK" : restored.status().ToString().c_str(),
              restored.ok() ? restored->NumElements() : 0);

  // 5. Zero-copy reads: GetTileView validates a tile's offset tables once
  // and then serves geometry straight out of the stored bytes — no
  // per-request decode. The returned view pins its bytes, so it stays
  // valid even if the store replaces the tile (or is destroyed).
  TileId tile_id = tiles.TileAt(somewhere);
  Result<PinnedTileView> view = tiles.GetTileView(tile_id);
  if (view.ok() && view->view.num_lanelets() > 0) {
    LaneletView lane = view->view.lanelet(0);
    Vec2 start = lane.centerline().front();
    std::printf("view API: tile (%d, %d) holds %zu elements; lanelet %lld "
                "starts at (%.0f, %.0f) — read in place, zero decode\n",
                tile_id.x, tile_id.y, view->view.NumElements(),
                static_cast<long long>(lane.id()), start.x, start.y);
  }
  return 0;
}
