file(REMOVE_RECURSE
  "CMakeFiles/relocalization_scan_matcher_test.dir/relocalization_scan_matcher_test.cc.o"
  "CMakeFiles/relocalization_scan_matcher_test.dir/relocalization_scan_matcher_test.cc.o.d"
  "relocalization_scan_matcher_test"
  "relocalization_scan_matcher_test.pdb"
  "relocalization_scan_matcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relocalization_scan_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
