file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_pcc.dir/bench_e5_pcc.cc.o"
  "CMakeFiles/bench_e5_pcc.dir/bench_e5_pcc.cc.o.d"
  "bench_e5_pcc"
  "bench_e5_pcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_pcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
