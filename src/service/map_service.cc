#include "service/map_service.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "core/serialization.h"

namespace hdmap {

namespace {

/// "tile (3,-1) tile (4,-1) ... (+2 more)" — bounded tile list for event
/// detail strings.
std::string FormatTileList(const std::vector<TileId>& tiles) {
  constexpr size_t kMaxListed = 4;
  std::string out;
  char buf[48];
  for (size_t i = 0; i < tiles.size() && i < kMaxListed; ++i) {
    std::snprintf(buf, sizeof(buf), "%stile (%d,%d)", i == 0 ? "" : " ",
                  tiles[i].x, tiles[i].y);
    out += buf;
  }
  if (tiles.size() > kMaxListed) {
    std::snprintf(buf, sizeof(buf), " (+%zu more)", tiles.size() - kMaxListed);
    out += buf;
  }
  return out;
}

int64_t WallClockUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Steady-clock publish instant consistent with a wall-clock stamp taken
/// (possibly a process lifetime) earlier: recovery back-dates the
/// in-process age math so SnapshotAgeSeconds stays continuous across the
/// restart.
std::chrono::steady_clock::time_point BackdatedPublishTime(
    int64_t published_unix_ms) {
  int64_t age_ms = std::max<int64_t>(0, WallClockUnixMs() - published_unix_ms);
  return std::chrono::steady_clock::now() - std::chrono::milliseconds(age_ms);
}

}  // namespace

MapService::MapService(Options options) : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  // Snapshots' tile caches export through the service registry unless the
  // caller routed them elsewhere.
  if (options_.tile_store.metrics == nullptr) {
    options_.tile_store.metrics = metrics_;
  }
  // Likewise the fault seam: one injector covers both the publish site and
  // the tile-load site unless the caller split them.
  faults_ = options_.fault_injector;
  if (options_.tile_store.fault_injector == nullptr) {
    options_.tile_store.fault_injector = faults_;
  }
  // Per-site injected counts export through the service registry, so
  // benches read injected-vs-detected from one place.
  if (faults_ != nullptr) faults_->BindMetrics(metrics_);
  if (!options_.durability.data_dir.empty()) {
    SnapshotStore::Options store_opts;
    store_opts.data_dir = options_.durability.data_dir;
    store_opts.fsync = options_.durability.fsync;
    store_opts.retention = options_.durability.retention;
    store_opts.metrics = metrics_;
    store_opts.fault_injector = faults_;
    snapshot_store_ = std::make_unique<SnapshotStore>(store_opts);
    PatchWal::Options wal_opts;
    wal_opts.path = options_.durability.data_dir + "/wal/patches.wal";
    wal_opts.fsync = options_.durability.fsync;
    wal_opts.metrics = metrics_;
    wal_opts.fault_injector = faults_;
    wal_ = std::make_unique<PatchWal>(wal_opts);
  }
  lat_get_region_ = metrics_->GetLatency("map_service.get_region");
  lat_get_tile_ = metrics_->GetLatency("map_service.get_tile");
  lat_match_ = metrics_->GetLatency("map_service.match_to_lane");
  lat_route_ = metrics_->GetLatency("map_service.route");
  lat_publish_ = metrics_->GetLatency("map_service.publish");
  requests_ = metrics_->GetCounter("map_service.requests");
  errors_ = metrics_->GetCounter("map_service.errors");
  for (size_t i = 1; i < errors_by_code_.size(); ++i) {
    errors_by_code_[i] = metrics_->GetCounter(
        "map_service.errors{" +
        std::string(StatusCodeToString(static_cast<StatusCode>(i))) + "}");
  }
  regions_degraded_ = metrics_->GetCounter("map_service.regions_degraded");
  patches_published_ = metrics_->GetCounter("map_service.patches_published");
  changes_published_ = metrics_->GetCounter("map_service.changes_published");
  version_gauge_ = metrics_->GetGauge("map_service.snapshot_version");
  age_gauge_ = metrics_->GetGauge("map_service.snapshot_age_seconds");
  staged_gauge_ = metrics_->GetGauge("map_service.staged_patches");
  recoveries_ = metrics_->GetCounter("storage.recoveries");
  wal_replayed_ = metrics_->GetCounter("wal.replayed_records");
  wal_replay_apply_failures_ =
      metrics_->GetCounter("wal.replay_apply_failures");
  lat_recover_ = metrics_->GetLatency("storage.recover");
  published_unix_ms_gauge_ =
      metrics_->GetGauge("map_service.published_unix_ms");
  events_.set_capacity(options_.event_log_capacity);

  metrics_->SetHelp("map_service.requests",
                    "Reader requests received across all endpoints");
  metrics_->SetHelp("map_service.errors",
                    "Requests and writer operations that returned non-OK");
  metrics_->SetHelp("map_service.regions_degraded",
                    "GetRegion calls served around corrupt tiles");
  metrics_->SetHelp("map_service.get_region",
                    "GetRegion end-to-end request latency");
  metrics_->SetHelp("map_service.publish", "Publish (copy-on-write) latency");
  metrics_->SetHelp("map_service.snapshot_age_seconds",
                    "Seconds since the serving snapshot published");
  metrics_->SetHelp("tile_store.cache_hits",
                    "Decoded-tile cache hits on the serving snapshot");
  metrics_->SetHelp("wal.appends", "Durable patch write-ahead-log appends");
  metrics_->SetHelp("storage.checkpoint_write",
                    "Full snapshot checkpoint write latency");
}

Status MapService::Init(HdMap initial_map) {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  TraceSpan span("map_service.init", TraceSpan::kRoot);
  // Existing durable state outranks the bootstrap map: a restarted
  // service resumes where the fleet left it rather than regressing to a
  // caller-provided (possibly stale) map.
  bool durable_state_lost = false;
  if (durable() && !snapshot_store_->ListCheckpoints().empty()) {
    Status recovered = RecoverLocked();
    // kNotFound means checkpoints exist but none validates: the durable
    // state is beyond recovery, so fall through and bootstrap fresh from
    // `initial_map` rather than refusing to serve at all. The loss is
    // recorded after Install so Health() reports kDegraded.
    if (recovered.code() != StatusCode::kNotFound) return recovered;
    durable_state_lost = true;
  }
  auto snap = std::make_shared<MapSnapshot>();
  snap->tiles = TileStore(options_.tile_store);
  HDMAP_RETURN_IF_ERROR(
      snap->tiles.Build(initial_map, options_.publish_threads));
  snap->map = std::move(initial_map);
  snap->map.BuildIndexes();
  snap->routing = std::make_shared<const RoutingGraph>(
      RoutingGraph::Build(snap->map, options_.lane_change_penalty_s));
  auto old = snapshot();
  snap->version = old == nullptr ? 1 : old->version + 1;
  snap->publish_time = std::chrono::steady_clock::now();
  snap->published_unix_ms = WallClockUnixMs();
  Install(snap);
  {
    // A wholesale re-init is not patch-reachable from any prior version:
    // the delta chain restarts here.
    std::lock_guard<std::mutex> lock(history_mu_);
    history_.clear();
  }
  bool wal_unreadable = false;
  if (durable_state_lost) {
    span.SetStatus(StatusCode::kDataLoss);
    RecordError(StatusCode::kDataLoss);
    events_.Append(EventLog::Type::kCheckpointFallback, span.trace_id(),
                   "no checkpoint validated; bootstrapped from initial map",
                   StatusCode::kDataLoss);
    // The WAL may still hold intact acked records, but they were staged
    // against state lost with the checkpoints and cannot apply to the
    // bootstrap map. Count each one as lost and set the bytes aside
    // (patches.wal.lost) for offline salvage, rather than letting the
    // bootstrap checkpoint's WAL trim erase them silently.
    auto orphaned = wal_->Replay();
    if (orphaned.ok()) {
      size_t lost = orphaned->records.size() + orphaned->skipped_records;
      for (size_t i = 0; i < lost; ++i) RecordError(StatusCode::kDataLoss);
      if (lost > 0) {
        events_.Append(EventLog::Type::kWalDataLoss, span.trace_id(),
                       std::to_string(lost) +
                           " WAL record(s) orphaned by checkpoint loss; "
                           "archived as patches.wal.lost",
                       StatusCode::kDataLoss);
        Status archived = wal_->Archive();
        if (!archived.ok()) {
          // Could not set the records aside; keep the file as-is (and
          // skip the bootstrap checkpoint whose trim would replace it).
          RecordError(archived.code());
          wal_unreadable = true;
        }
      }
    } else {
      // The WAL file itself was unreadable (an I/O error, not content
      // damage). Leave it in place — a retry after the fault clears may
      // still recover it — which also rules out the bootstrap
      // checkpoint, whose WAL trim would replace the file.
      RecordError(orphaned.status().code());
      wal_unreadable = true;
    }
  }
  if (durable() && !wal_unreadable) {
    // Bootstrap checkpoint: a crash right after Init already recovers.
    Status ck = CheckpointLocked(*snap);
    if (ck.ok()) publishes_since_checkpoint_ = 0;
  }
  return Status::Ok();
}

Status MapService::InstallReplicatedSnapshot(
    uint64_t version, int64_t published_unix_ms, double tile_size_m,
    std::vector<std::pair<TileId, std::string>> tiles) {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  TraceSpan span("map_service.install_replicated", TraceSpan::kRoot);
  if (tile_size_m != options_.tile_store.tile_size_m) {
    span.SetStatus(StatusCode::kInvalidArgument);
    RecordError(StatusCode::kInvalidArgument);
    return Status::InvalidArgument(
        "shipped snapshot tiling " + std::to_string(tile_size_m) +
        "m does not match this service's " +
        std::to_string(options_.tile_store.tile_size_m) + "m");
  }
  auto snap = std::make_shared<MapSnapshot>();
  snap->tiles = TileStore(options_.tile_store);
  for (auto& [id, bytes] : tiles) {
    snap->tiles.PutRawTile(id, std::move(bytes));
  }
  // Strict whole-map stitch: every shipped tile must validate before any
  // of this state serves. On failure nothing is installed — the previous
  // snapshot (however stale) beats a corrupt one.
  auto stitched = snap->tiles.LoadAll(options_.publish_threads);
  if (!stitched.ok()) {
    span.SetStatus(stitched.status().code());
    RecordError(stitched.status().code());
    return stitched.status();
  }
  snap->map = *std::move(stitched);
  snap->map.BuildIndexes();
  snap->routing = std::make_shared<const RoutingGraph>(
      RoutingGraph::Build(snap->map, options_.lane_change_penalty_s));
  snap->version = version;
  snap->published_unix_ms = published_unix_ms;
  snap->publish_time = BackdatedPublishTime(published_unix_ms);
  Install(snap);
  DiscardStagedPatches();
  {
    // The install is not patch-reachable from any locally served
    // version: the delta chain restarts here.
    std::lock_guard<std::mutex> lock(history_mu_);
    history_.clear();
  }
  events_.Append(EventLog::Type::kReplicaCatchUp, span.trace_id(),
                 "installed replicated snapshot version " +
                     std::to_string(version) + " (" +
                     std::to_string(snap->tiles.NumTiles()) + " tiles)");
  if (durable()) {
    // Cover the install across a crash; the trim also drops WAL records
    // for the staged patches discarded above. Failure is non-fatal — the
    // snapshot serves from memory either way.
    Status ck = CheckpointLocked(*snap);
    if (ck.ok()) publishes_since_checkpoint_ = 0;
  }
  return Status::Ok();
}

Status MapService::StagePatch(MapPatch patch) {
  TraceSpan span("map_service.stage_patch", TraceSpan::kRoot);
  // Shared: concurrent stagers overlap (their WAL appends group-commit
  // under one fsync); only the checkpoint trim excludes them.
  std::shared_lock<std::shared_mutex> flow_lock(stage_flow_mu_);
  if (wal_ != nullptr) {
    // Write-ahead: the patch is only acknowledged (and only enters the
    // staged queue) once its WAL record is durable. Deliberately outside
    // staged_mu_ — holding the queue lock across the fsync would
    // serialize every concurrent ack behind ~one fsync each.
    Status appended = wal_->Append(patch, version());
    if (!appended.ok()) {
      span.SetStatus(appended.code());
      RecordError(appended.code());
      return appended;
    }
  }
  std::lock_guard<std::mutex> lock(staged_mu_);
  staged_.push_back(std::move(patch));
  staged_gauge_->Set(static_cast<double>(staged_.size()));
  return Status::Ok();
}

size_t MapService::NumStagedPatches() const {
  std::lock_guard<std::mutex> lock(staged_mu_);
  return staged_.size();
}

void MapService::DiscardStagedPatches() {
  std::lock_guard<std::mutex> lock(staged_mu_);
  staged_.clear();
  staged_gauge_->Set(0.0);
}

Result<std::vector<TileId>> MapService::TouchedTiles(
    const MapPatch& patch, const HdMap& map, const TileStore& tiles) const {
  std::vector<Aabb> boxes;
  // A missing id yields no box here; ApplyPatch fails on it later and the
  // publish aborts before the touched set is ever used.
  auto old_landmark_box = [&](ElementId id) {
    const Landmark* lm = map.FindLandmark(id);
    if (lm != nullptr) boxes.push_back(Aabb::FromPoint(lm->position.xy()));
  };
  auto lanelet_box = [&](ElementId id) {
    const Lanelet* ll = map.FindLanelet(id);
    if (ll != nullptr) boxes.push_back(ll->centerline.BoundingBox());
  };
  // A regulatory element is serialized into every tile of every lanelet
  // it references, so changing one touches all those lanelets' tiles.
  auto regulatory_boxes = [&](const RegulatoryElement& reg) {
    for (ElementId ll_id : reg.lanelet_ids) lanelet_box(ll_id);
  };

  for (const Landmark& lm : patch.added_landmarks) {
    boxes.push_back(Aabb::FromPoint(lm.position.xy()));
  }
  for (ElementId id : patch.removed_landmarks) old_landmark_box(id);
  for (const MapPatch::Move& mv : patch.moved_landmarks) {
    old_landmark_box(mv.id);
    boxes.push_back(Aabb::FromPoint(mv.new_position.xy()));
  }
  for (const LineFeature& lf : patch.updated_line_features) {
    const LineFeature* old = map.FindLineFeature(lf.id);
    if (old != nullptr) boxes.push_back(old->geometry.BoundingBox());
    boxes.push_back(lf.geometry.BoundingBox());
  }
  for (const Lanelet& ll : patch.updated_lanelets) {
    lanelet_box(ll.id);
    boxes.push_back(ll.centerline.BoundingBox());
  }
  for (ElementId id : patch.removed_lanelets) lanelet_box(id);
  for (const RegulatoryElement& reg : patch.updated_regulatory_elements) {
    const RegulatoryElement* old = map.FindRegulatoryElement(reg.id);
    if (old != nullptr) regulatory_boxes(*old);
    regulatory_boxes(reg);
  }
  for (ElementId id : patch.removed_regulatory_elements) {
    const RegulatoryElement* old = map.FindRegulatoryElement(id);
    if (old != nullptr) regulatory_boxes(*old);
  }

  std::map<uint64_t, TileId> touched;
  for (const Aabb& box : boxes) {
    auto coverage = tiles.TileCoverage(box);
    if (!coverage.ok()) {
      return Status::InvalidArgument("patch " + coverage.status().message());
    }
    for (const TileId& t : *coverage) touched.emplace(t.Morton(), t);
  }
  std::vector<TileId> out;
  out.reserve(touched.size());
  for (const auto& [key, t] : touched) {
    (void)key;
    out.push_back(t);
  }
  return out;
}

Status MapService::Publish() {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  TraceSpan span("map_service.publish", TraceSpan::kRoot);
  auto old = snapshot();
  if (old == nullptr) {
    span.SetStatus(StatusCode::kFailedPrecondition);
    return Status::FailedPrecondition("MapService::Init has not run");
  }
  std::vector<MapPatch> staged;
  {
    // Copied, not moved: a failed publish leaves the queue intact.
    std::lock_guard<std::mutex> lock(staged_mu_);
    staged = staged_;
  }
  if (staged.empty()) return Status::Ok();
  ScopedTimer publish_timer(lat_publish_);

  // Apply every staged patch to a private copy, accumulating the touched
  // tiles per patch against the state that patch actually sees (a later
  // patch may move what an earlier one added).
  HdMap new_map = old->map;
  std::map<uint64_t, TileId> touched;
  bool relational_changed = false;
  size_t num_changes = 0;
  for (const MapPatch& patch : staged) {
    HDMAP_ASSIGN_OR_RETURN(std::vector<TileId> patch_tiles,
                           TouchedTiles(patch, new_map, old->tiles));
    for (const TileId& t : patch_tiles) touched.emplace(t.Morton(), t);
    HDMAP_RETURN_IF_ERROR(hdmap::ApplyPatch(patch, &new_map));
    relational_changed = relational_changed ||
                         !patch.updated_lanelets.empty() ||
                         !patch.removed_lanelets.empty() ||
                         !patch.updated_regulatory_elements.empty() ||
                         !patch.removed_regulatory_elements.empty();
    num_changes += patch.NumChanges();
  }

  auto snap = std::make_shared<MapSnapshot>();
  // Copy-on-write: the copy shares no cache with the served store, and
  // only the touched tiles get re-serialized from the patched map.
  snap->tiles = old->tiles;
  std::vector<TileId> touched_list;
  touched_list.reserve(touched.size());
  for (const auto& [key, t] : touched) {
    (void)key;
    touched_list.push_back(t);
  }
  HDMAP_RETURN_IF_ERROR(snap->tiles.RebuildTiles(new_map, touched_list,
                                                 options_.publish_threads));
  // Fault seam: an injected failure here aborts like any real publish
  // error — the previous snapshot keeps serving and the staged queue
  // stays intact.
  if (faults_ != nullptr) {
    Status injected = faults_->MaybeFail(kPublishFaultSite);
    if (!injected.ok()) {
      // MaybeFail only ever fails by injecting, so this is known-synthetic.
      span.SetStatus(injected.code());
      events_.Append(EventLog::Type::kInjectedFault, span.trace_id(),
                     std::string("publish aborted by injected fault at ") +
                         kPublishFaultSite,
                     injected.code());
      return injected;
    }
  }
  snap->map = std::move(new_map);
  snap->map.BuildIndexes();
  // Landmark/marking-level patches don't alter lane topology or rules, so
  // the routing graph is shared with the previous version.
  snap->routing = relational_changed
                      ? std::make_shared<const RoutingGraph>(RoutingGraph::Build(
                            snap->map, options_.lane_change_penalty_s))
                      : old->routing;
  snap->version = old->version + 1;
  snap->publish_time = std::chrono::steady_clock::now();
  snap->published_unix_ms = WallClockUnixMs();
  Install(snap);

  {
    // Remove exactly the patches that went out; anything staged while the
    // publish ran stays queued for the next one.
    std::lock_guard<std::mutex> lock(staged_mu_);
    staged_.erase(staged_.begin(),
                  staged_.begin() + static_cast<ptrdiff_t>(staged.size()));
    staged_gauge_->Set(static_cast<double>(staged_.size()));
  }
  patches_published_->Increment(staged.size());
  changes_published_->Increment(num_changes);

  if (options_.publish_history > 0) {
    // Retain this publish's patches (serialized once, shared by every
    // later delta response) so clients at version-1 can catch up with a
    // patch stream instead of a full refetch.
    PublishRecord record;
    record.version = snap->version;
    record.patches.reserve(staged.size());
    for (const MapPatch& patch : staged) {
      record.patches.push_back(SerializePatch(patch));
    }
    std::lock_guard<std::mutex> lock(history_mu_);
    history_.push_back(std::move(record));
    while (history_.size() > options_.publish_history) history_.pop_front();
  }

  if (durable()) {
    ++publishes_since_checkpoint_;
    if (publishes_since_checkpoint_ >=
        options_.durability.checkpoint_every_n_publishes) {
      // A checkpoint failure does not fail the publish: the new version
      // serves from memory and the WAL still covers every acked patch
      // since the last checkpoint that did land.
      Status ck = CheckpointLocked(*snap);
      if (ck.ok()) publishes_since_checkpoint_ = 0;
    }
  }
  return Status::Ok();
}

Status MapService::ApplyPatch(MapPatch patch) {
  HDMAP_RETURN_IF_ERROR(StagePatch(std::move(patch)));
  return Publish();
}

Status MapService::CheckpointLocked(const MapSnapshot& snap) {
  Status written = snapshot_store_->WriteCheckpoint(snap.tiles, snap.version,
                                                    snap.published_unix_ms);
  if (!written.ok()) {
    RecordError(written.code());
    return written;
  }
  // The checkpoint now covers every record the WAL held for published
  // patches; atomically rewrite it down to the patches still waiting in
  // the queue (staged during or after this publish), so nothing acked is
  // ever outside (checkpoint ∪ WAL). The rewrite lands via temp-file +
  // rename: a crash or I/O error mid-trim leaves the old log — a
  // superset of what is needed — instead of losing acked records.
  //
  // Exclusive fence vs StagePatch: a stager between its WAL append and
  // its queue push has a durable record this trim's staged_ snapshot
  // cannot see; trimming then would erase an acked patch. Holding
  // stage_flow_mu_ exclusive waits those stagers out (and also satisfies
  // PatchWal's requirement that Rewrite never race an Append).
  std::unique_lock<std::shared_mutex> flow_lock(stage_flow_mu_);
  std::lock_guard<std::mutex> lock(staged_mu_);
  Status rewritten = wal_->Rewrite(staged_, snap.version);
  if (!rewritten.ok()) {
    RecordError(rewritten.code());
    return rewritten;
  }
  return Status::Ok();
}

Status MapService::Recover() {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  TraceSpan span("map_service.recover", TraceSpan::kRoot);
  return RecoverLocked();
}

Status MapService::RecoverLocked() {
  if (!durable()) {
    return Status::FailedPrecondition(
        "MapService durability is disabled (empty data_dir)");
  }
  // Child span: nests under Init's or Recover's root, so a cold recovery
  // renders as one flame graph (checkpoint load, WAL replay, rebuild).
  TraceSpan span("storage.recover");
  ScopedTimer timer(lat_recover_);
  size_t checkpoints_skipped = 0;
  HDMAP_ASSIGN_OR_RETURN(
      RecoveredSnapshot recovered,
      snapshot_store_->LoadNewestValid(options_.tile_store,
                                       &checkpoints_skipped));

  // Replay the WAL tail past the checkpoint. Records are tolerated
  // failures two ways: torn/corrupt records are skipped by Replay
  // itself, and an intact record whose patch no longer applies (it
  // depended on state lost with a newer, now-corrupt checkpoint) is
  // skipped here.
  size_t wal_skipped = 0;
  size_t applied = 0;
  uint64_t max_hint = 0;
  HdMap map = std::move(recovered.map);
  auto replay = wal_->Replay();
  bool wal_readable = replay.ok();
  if (wal_readable) {
    wal_skipped = replay->skipped_records;
    for (PatchWal::ReplayedRecord& record : replay->records) {
      // All-or-nothing per record: a patch staged against state lost
      // with a skipped newer checkpoint may fail partway through
      // ApplyPatch, so it is applied to a scratch copy — either the
      // whole record lands or none of it does, never a half-applied
      // combination that no version ever served.
      HdMap trial = map;
      Status patched = hdmap::ApplyPatch(record.patch, &trial);
      if (!patched.ok()) {
        ++wal_skipped;
        wal_replay_apply_failures_->Increment();
        continue;
      }
      map = std::move(trial);
      ++applied;
      max_hint = std::max(max_hint, record.version_hint);
    }
  } else {
    // An unreadable WAL (I/O error, not content damage) degrades to
    // checkpoint-only recovery.
    ++wal_skipped;
  }

  auto snap = std::make_shared<MapSnapshot>();
  if (applied == 0) {
    // Bit-exact restore of the checkpoint, warm tiles included.
    snap->tiles = std::move(recovered.tiles);
    snap->version = recovered.version;
    snap->published_unix_ms = recovered.published_unix_ms;
  } else {
    // Replayed patches fold into one recovered publish. A full rebuild
    // equals the incremental path byte-for-byte (RebuildTiles
    // postcondition) without needing per-patch touched-tile bookkeeping
    // against a moving map.
    snap->tiles = std::move(recovered.tiles);  // Keeps manifest tile size.
    HDMAP_RETURN_IF_ERROR(snap->tiles.Build(map, options_.publish_threads));
    snap->version = std::max(recovered.version, max_hint) + 1;
    snap->published_unix_ms = WallClockUnixMs();
  }
  snap->publish_time = BackdatedPublishTime(snap->published_unix_ms);
  snap->map = std::move(map);
  snap->map.BuildIndexes();
  snap->routing = std::make_shared<const RoutingGraph>(
      RoutingGraph::Build(snap->map, options_.lane_change_penalty_s));
  Install(snap);
  {
    // The recovered version was rebuilt from disk; clients holding
    // pre-crash versions cannot be patched across the restart boundary.
    std::lock_guard<std::mutex> lock(history_mu_);
    history_.clear();
  }
  recoveries_->Increment();
  wal_replayed_->Increment(applied);

  // Degradation accounting lands *after* Install re-baselined Health, so
  // a recovery that skipped anything serves kDegraded until the next
  // clean publish replaces the survivors' bytes.
  for (size_t i = 0; i < checkpoints_skipped + wal_skipped; ++i) {
    RecordError(StatusCode::kDataLoss);
  }
  if (checkpoints_skipped > 0) {
    events_.Append(EventLog::Type::kCheckpointFallback, span.trace_id(),
                   "fell back past " + std::to_string(checkpoints_skipped) +
                       " invalid checkpoint(s)",
                   StatusCode::kDataLoss);
  }
  if (wal_skipped > 0) {
    events_.Append(EventLog::Type::kWalDataLoss, span.trace_id(),
                   std::to_string(wal_skipped) +
                       " WAL record(s) skipped during replay" +
                       (wal_readable ? "" : " (log unreadable)"),
                   StatusCode::kDataLoss);
  }
  if (checkpoints_skipped + wal_skipped > 0) {
    span.SetStatus(StatusCode::kDataLoss);
  }
  events_.Append(EventLog::Type::kRecoverySummary, span.trace_id(),
                 "recovered version " + std::to_string(snap->version) +
                     ": replayed " + std::to_string(applied) +
                     " WAL record(s), skipped " +
                     std::to_string(checkpoints_skipped) +
                     " checkpoint(s) and " + std::to_string(wal_skipped) +
                     " WAL record(s)");

  // Re-protect: fold the replayed WAL into a checkpoint of the recovered
  // state, so the next crash replays nothing. Failure is non-fatal — the
  // old checkpoint plus the existing WAL still cover everything. Skipped
  // when the WAL was unreadable (a transient I/O error, not content
  // damage): the checkpoint's WAL trim would destroy records a retry
  // might still recover.
  if (wal_readable && (applied > 0 || wal_skipped > 0)) {
    Status ck = CheckpointLocked(*snap);
    if (ck.ok()) publishes_since_checkpoint_ = 0;
  }
  return Status::Ok();
}

void MapService::Install(std::shared_ptr<const MapSnapshot> snap) {
  version_gauge_->Set(static_cast<double>(snap->version));
  age_gauge_->Set(0.0);
  published_unix_ms_gauge_->Set(static_cast<double>(snap->published_unix_ms));
  snapshot_.store(std::move(snap));
  // The new snapshot carries freshly (re)built tiles, so prior data-loss
  // events say nothing about it: re-baseline Health to kServing.
  health_baseline_.store(DegradationEvents(), std::memory_order_relaxed);
}

void MapService::RecordError(StatusCode code) const {
  errors_->Increment();
  auto i = static_cast<size_t>(code);
  if (i > 0 && i < errors_by_code_.size()) errors_by_code_[i]->Increment();
}

void MapService::FinishRequest(TraceSpan& span, const char* endpoint,
                               std::chrono::steady_clock::time_point start,
                               StatusCode code) const {
  span.SetStatus(code);
  if (options_.slow_request_threshold_s <= 0.0) return;
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  if (elapsed <= options_.slow_request_threshold_s) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), " took %.1f ms (threshold %.1f ms)",
                elapsed * 1e3, options_.slow_request_threshold_s * 1e3);
  events_.Append(EventLog::Type::kSlowRequest, span.trace_id(),
                 std::string(endpoint) + buf, code);
}

uint64_t MapService::DegradationEvents() const {
  return errors_by_code_[static_cast<size_t>(StatusCode::kDataLoss)]->value() +
         regions_degraded_->value();
}

ServiceHealth MapService::Health() const {
  return DegradationEvents() >
                 health_baseline_.load(std::memory_order_relaxed)
             ? ServiceHealth::kDegraded
             : ServiceHealth::kServing;
}

std::string_view ServiceHealthToString(ServiceHealth health) {
  switch (health) {
    case ServiceHealth::kServing:
      return "SERVING";
    case ServiceHealth::kDegraded:
      return "DEGRADED";
  }
  return "UNKNOWN";
}

Result<std::vector<std::string>> MapService::PatchesSince(
    uint64_t from_version, uint64_t* reached_version) const {
  auto snap = snapshot();
  if (snap == nullptr) {
    return Status::FailedPrecondition("MapService::Init has not run");
  }
  uint64_t current = snap->version;
  if (reached_version != nullptr) *reached_version = current;
  if (from_version > current) {
    return Status::NotFound("client version " + std::to_string(from_version) +
                            " is ahead of served version " +
                            std::to_string(current));
  }
  if (from_version == current) return std::vector<std::string>{};
  std::lock_guard<std::mutex> lock(history_mu_);
  // The chain must cover every version in (from_version, current]
  // contiguously; Init/Recover clear it, publishes append, so any gap
  // means "history does not reach back that far".
  std::vector<std::string> out;
  uint64_t next_needed = from_version + 1;
  for (const PublishRecord& record : history_) {
    if (record.version < next_needed) continue;
    if (record.version > next_needed) break;  // Gap: chain broken.
    for (const std::string& patch : record.patches) out.push_back(patch);
    ++next_needed;
    // A publish may land between the snapshot read above and the history
    // walk; stop at `current` so the delta matches the version the caller
    // was told it would reach.
    if (next_needed > current) break;
  }
  if (next_needed <= current) {
    return Status::NotFound(
        "publish history no longer reaches back to version " +
        std::to_string(from_version));
  }
  return out;
}

std::shared_ptr<const MapSnapshot> MapService::snapshot() const {
  return snapshot_.load();
}

uint64_t MapService::version() const {
  auto snap = snapshot();
  return snap == nullptr ? 0 : snap->version;
}

double MapService::SnapshotAgeSeconds() const {
  auto snap = snapshot();
  if (snap == nullptr) return 0.0;
  double age = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - snap->publish_time)
                   .count();
  age_gauge_->Set(age);
  return age;
}

Result<HdMap> MapService::GetRegion(const Aabb& box,
                                    RegionReport* report) const {
  requests_->Increment();
  TraceSpan span("map_service.get_region", TraceSpan::kRoot);
  auto start = std::chrono::steady_clock::now();
  ScopedTimer timer(lat_get_region_);
  auto snap = snapshot();
  if (snap == nullptr) {
    RecordError(StatusCode::kFailedPrecondition);
    FinishRequest(span, "map_service.get_region", start,
                  StatusCode::kFailedPrecondition);
    return Status::FailedPrecondition("MapService::Init has not run");
  }
  // Degradation is observed through the report even when the caller
  // didn't ask for one.
  RegionReport local_report;
  RegionReport* rep = report != nullptr ? report : &local_report;
  auto region = snap->tiles.LoadRegion(
      box, rep, options_.read_threads,
      options_.strict_reads ? RegionReadMode::kStrict
                            : RegionReadMode::kAllowPartial);
  StatusCode code = StatusCode::kOk;
  if (!region.ok()) {
    code = region.status().code();
    RecordError(code);
  } else if (!rep->corrupt_tiles.empty()) {
    // Served, but with holes: not an error, yet Health() must see it. The
    // span is annotated kDataLoss (forcing it into the trace ring even in
    // unsampled traces) and the event explains the matching
    // regions_degraded increment with this request's trace id.
    regions_degraded_->Increment();
    code = StatusCode::kDataLoss;
    events_.Append(EventLog::Type::kQuarantinedTile, span.trace_id(),
                   "get_region served degraded around " +
                       std::to_string(rep->corrupt_tiles.size()) +
                       " corrupt tile(s): " +
                       FormatTileList(rep->corrupt_tiles),
                   StatusCode::kDataLoss);
  }
  FinishRequest(span, "map_service.get_region", start, code);
  return region;
}

Result<HdMap> MapService::GetTile(const TileId& id) const {
  requests_->Increment();
  TraceSpan span("map_service.get_tile", TraceSpan::kRoot);
  auto start = std::chrono::steady_clock::now();
  ScopedTimer timer(lat_get_tile_);
  auto snap = snapshot();
  if (snap == nullptr) {
    RecordError(StatusCode::kFailedPrecondition);
    FinishRequest(span, "map_service.get_tile", start,
                  StatusCode::kFailedPrecondition);
    return Status::FailedPrecondition("MapService::Init has not run");
  }
  auto tile = snap->tiles.LoadTile(id);
  if (!tile.ok()) RecordError(tile.status().code());
  FinishRequest(span, "map_service.get_tile", start,
                tile.ok() ? StatusCode::kOk : tile.status().code());
  return tile;
}

Result<VersionedTileView> MapService::GetTileView(const TileId& id) const {
  requests_->Increment();
  TraceSpan span("map_service.get_tile_view", TraceSpan::kRoot);
  auto start = std::chrono::steady_clock::now();
  ScopedTimer timer(lat_get_tile_);
  auto snap = snapshot();
  if (snap == nullptr) {
    RecordError(StatusCode::kFailedPrecondition);
    FinishRequest(span, "map_service.get_tile_view", start,
                  StatusCode::kFailedPrecondition);
    return Status::FailedPrecondition("MapService::Init has not run");
  }
  // The view pins the tile bytes itself, so it remains valid even after
  // `snap` dies with this frame and a later publish drops the store.
  auto view = snap->tiles.GetTileView(id);
  StatusCode code = view.ok() ? StatusCode::kOk : view.status().code();
  if (!view.ok()) RecordError(code);
  FinishRequest(span, "map_service.get_tile_view", start, code);
  if (!view.ok()) return view.status();
  return VersionedTileView{snap->version, *std::move(view)};
}

Result<LaneMatch> MapService::MatchToLane(const Vec2& position,
                                          double max_distance) const {
  requests_->Increment();
  TraceSpan span("map_service.match_to_lane", TraceSpan::kRoot);
  auto start = std::chrono::steady_clock::now();
  ScopedTimer timer(lat_match_);
  auto snap = snapshot();
  if (snap == nullptr) {
    RecordError(StatusCode::kFailedPrecondition);
    FinishRequest(span, "map_service.match_to_lane", start,
                  StatusCode::kFailedPrecondition);
    return Status::FailedPrecondition("MapService::Init has not run");
  }
  auto match = snap->map.MatchToLane(position, max_distance);
  if (!match.ok()) RecordError(match.status().code());
  FinishRequest(span, "map_service.match_to_lane", start,
                match.ok() ? StatusCode::kOk : match.status().code());
  return match;
}

Result<Route> MapService::Route(ElementId from, ElementId to,
                                RouteAlgorithm algorithm) const {
  requests_->Increment();
  TraceSpan span("map_service.route", TraceSpan::kRoot);
  auto start = std::chrono::steady_clock::now();
  ScopedTimer timer(lat_route_);
  auto snap = snapshot();
  if (snap == nullptr) {
    RecordError(StatusCode::kFailedPrecondition);
    FinishRequest(span, "map_service.route", start,
                  StatusCode::kFailedPrecondition);
    return Status::FailedPrecondition("MapService::Init has not run");
  }
  auto route = PlanRoute(*snap->routing, from, to, algorithm);
  if (!route.ok()) RecordError(route.status().code());
  FinishRequest(span, "map_service.route", start,
                route.ok() ? StatusCode::kOk : route.status().code());
  return route;
}

}  // namespace hdmap
