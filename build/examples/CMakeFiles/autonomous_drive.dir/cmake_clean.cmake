file(REMOVE_RECURSE
  "CMakeFiles/autonomous_drive.dir/autonomous_drive.cpp.o"
  "CMakeFiles/autonomous_drive.dir/autonomous_drive.cpp.o.d"
  "autonomous_drive"
  "autonomous_drive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonomous_drive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
