#include "localization/marking_localizer.h"

#include <algorithm>
#include <cmath>

namespace hdmap {

MarkingLocalizer::MarkingLocalizer(const HdMap* map, const Options& options)
    : map_(map), options_(options), filter_(options.filter) {}

void MarkingLocalizer::Init(const Pose2& initial, double position_spread,
                            double heading_spread, Rng& rng) {
  filter_.Init(initial, position_spread, heading_spread, rng);
}

void MarkingLocalizer::Predict(double distance, double heading_change,
                               Rng& rng) {
  filter_.Predict(distance, heading_change, rng);
}

void MarkingLocalizer::Update(const std::vector<MarkingPoint>& scan,
                              Rng& rng) {
  // 1) Segment: keep paint-like returns.
  std::vector<Vec2> paint;
  for (const MarkingPoint& p : scan) {
    if (p.intensity >= options_.intensity_threshold) {
      paint.push_back(p.position_vehicle);
    }
  }
  if (paint.empty()) return;
  // Subsample deterministically for update cost control.
  if (static_cast<int>(paint.size()) > options_.max_points_per_update) {
    size_t stride = paint.size() /
                    static_cast<size_t>(options_.max_points_per_update);
    std::vector<Vec2> sub;
    for (size_t i = 0; i < paint.size(); i += std::max<size_t>(1, stride)) {
      sub.push_back(paint[i]);
    }
    paint = std::move(sub);
  }

  // 2) Gather candidate map markings near the current estimate.
  Pose2 estimate = filter_.Estimate();
  std::vector<const LineFeature*> candidates;
  for (ElementId id : map_->LineFeaturesInBox(Aabb::FromPoint(
           estimate.translation, options_.map_query_radius))) {
    const LineFeature* lf = map_->FindLineFeature(id);
    if (lf == nullptr) continue;
    if (lf->type == LineType::kSolidLaneMarking ||
        lf->type == LineType::kDashedLaneMarking ||
        lf->type == LineType::kStopLine) {
      candidates.push_back(lf);
    }
  }
  if (candidates.empty()) return;

  auto residual = [&](const Vec2& world) {
    double best = options_.matching_sigma * 6.0;  // Saturated residual.
    for (const LineFeature* lf : candidates) {
      best = std::min(best, lf->geometry.DistanceTo(world));
      if (best < 1e-3) break;
    }
    return best;
  };

  // 3) Particle weighting: product of per-point Gaussians (in log space).
  double inv_two_sigma2 =
      1.0 / (2.0 * options_.matching_sigma * options_.matching_sigma);
  filter_.Update(
      [&](const Pose2& pose) {
        double log_l = 0.0;
        for (const Vec2& p : paint) {
          double r = residual(pose.TransformPoint(p));
          log_l += -r * r * inv_two_sigma2;
        }
        // Average rather than sum keeps the peakiness independent of the
        // number of points, which stabilizes the filter.
        return std::exp(log_l / static_cast<double>(paint.size()));
      },
      rng);

  // 4) Health metrics at the posterior estimate.
  Pose2 post = filter_.Estimate();
  int inliers = 0;
  double residual_sum = 0.0;
  for (const Vec2& p : paint) {
    double r = residual(post.TransformPoint(p));
    residual_sum += r;
    if (r <= 2.0 * options_.matching_sigma) ++inliers;
  }
  last_inlier_ratio_ =
      static_cast<double>(inliers) / static_cast<double>(paint.size());
  last_mean_residual_ = residual_sum / static_cast<double>(paint.size());
}

}  // namespace hdmap
