# Empty compiler generated dependencies file for hdmap_creation.
# This may be replaced when dependencies are built.
