#include "planning/speed_profile.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace hdmap {

Result<std::vector<SpeedConstraint>> ExtractRouteConstraints(
    const HdMap& map, const std::vector<ElementId>& route,
    const SpeedProfileOptions& options) {
  if (route.empty()) return Status::InvalidArgument("empty route");
  std::vector<SpeedConstraint> constraints;
  double station = 0.0;
  for (ElementId id : route) {
    const Lanelet* ll = map.FindLanelet(id);
    if (ll == nullptr) {
      return Status::NotFound("route lanelet " + std::to_string(id));
    }
    constraints.push_back(
        {station, map.EffectiveSpeedLimit(id),
         SpeedConstraintCause::kSpeedLimit});
    for (ElementId reg_id : ll->regulatory_ids) {
      const RegulatoryElement* reg = map.FindRegulatoryElement(reg_id);
      if (reg == nullptr) continue;
      if (reg->type == RegulatoryType::kStop) {
        constraints.push_back({station + ll->Length(), 0.0,
                               SpeedConstraintCause::kStopSign});
      } else if (reg->type == RegulatoryType::kTrafficLight &&
                 options.stop_at_lights) {
        constraints.push_back({station + ll->Length(), 0.0,
                               SpeedConstraintCause::kTrafficLight});
      }
    }
    station += ll->Length();
  }
  constraints.push_back({station, 0.0, SpeedConstraintCause::kRouteEnd});
  return constraints;
}

std::vector<SpeedSample> GenerateSpeedProfile(
    const std::vector<SpeedConstraint>& constraints, double route_length,
    const SpeedProfileOptions& options) {
  std::vector<SpeedSample> profile;
  if (route_length <= 0.0 || options.station_step <= 0.0) return profile;
  size_t n = static_cast<size_t>(route_length / options.station_step) + 1;
  double ds = options.station_step;

  // 1. Upper envelope from the constraints: each limit applies from its
  // station until the next limit; stops pin single stations to zero.
  std::vector<double> cap(n, 1e9);
  std::vector<SpeedConstraint> limits, stops;
  for (const SpeedConstraint& c : constraints) {
    if (c.max_speed <= 0.0) {
      stops.push_back(c);
    } else {
      limits.push_back(c);
    }
  }
  std::sort(limits.begin(), limits.end(),
            [](const SpeedConstraint& a, const SpeedConstraint& b) {
              return a.station < b.station;
            });
  for (size_t i = 0; i < n; ++i) {
    double s = static_cast<double>(i) * ds;
    for (const SpeedConstraint& c : limits) {
      if (c.station <= s + 1e-9) {
        cap[i] = c.max_speed;  // Later limits override earlier ones.
      }
    }
  }
  for (const SpeedConstraint& c : stops) {
    size_t idx = static_cast<size_t>(
        std::clamp(c.station / ds, 0.0, static_cast<double>(n - 1)) + 0.5);
    cap[std::min(idx, n - 1)] = 0.0;
  }

  // 2. Forward pass: v_{i+1}^2 <= v_i^2 + 2 a ds.
  std::vector<double> v2(n);
  v2[0] = std::min(options.initial_speed, cap[0]);
  v2[0] *= v2[0];
  for (size_t i = 1; i < n; ++i) {
    double reachable = v2[i - 1] + 2.0 * options.max_accel * ds;
    double limit = cap[i] * cap[i];
    v2[i] = std::min(reachable, limit);
  }
  // 3. Backward pass: v_i^2 <= v_{i+1}^2 + 2 b ds.
  for (size_t i = n - 1; i-- > 0;) {
    double allowed = v2[i + 1] + 2.0 * options.max_decel * ds;
    v2[i] = std::min(v2[i], allowed);
  }

  profile.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    profile.push_back({static_cast<double>(i) * ds,
                       std::sqrt(std::max(0.0, v2[i]))});
  }
  return profile;
}

}  // namespace hdmap
