#include "geometry/line_fitting.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace hdmap {

std::optional<Line> FitLineLeastSquares(const std::vector<Vec2>& points) {
  if (points.size() < 2) return std::nullopt;
  Vec2 mean;
  for (const Vec2& p : points) mean += p;
  mean = mean / static_cast<double>(points.size());
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (const Vec2& p : points) {
    Vec2 d = p - mean;
    sxx += d.x * d.x;
    sxy += d.x * d.y;
    syy += d.y * d.y;
  }
  // Smallest eigenvector of the covariance matrix is the line normal.
  double trace = sxx + syy;
  double det = sxx * syy - sxy * sxy;
  double disc = std::sqrt(std::max(0.0, trace * trace / 4.0 - det));
  double lambda_min = trace / 2.0 - disc;
  Vec2 normal;
  if (std::abs(sxy) > 1e-12) {
    normal = Vec2{lambda_min - syy, sxy}.Normalized();
  } else {
    normal = sxx <= syy ? Vec2{1.0, 0.0} : Vec2{0.0, 1.0};
  }
  if (normal.SquaredNorm() < 0.5) return std::nullopt;
  Line line;
  line.normal = normal;
  line.offset = normal.Dot(mean);
  return line;
}

std::optional<RansacLineResult> FitLineRansac(const std::vector<Vec2>& points,
                                              const RansacOptions& options,
                                              Rng& rng) {
  if (static_cast<int>(points.size()) < std::max(2, options.min_inliers)) {
    return std::nullopt;
  }
  int n = static_cast<int>(points.size());
  std::vector<int> best_inliers;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    int i = rng.UniformInt(0, n - 1);
    int j = rng.UniformInt(0, n - 1);
    if (i == j) continue;
    Vec2 dir = points[static_cast<size_t>(j)] - points[static_cast<size_t>(i)];
    if (dir.SquaredNorm() < 1e-12) continue;
    Line candidate;
    candidate.normal = dir.Normalized().Perp();
    candidate.offset = candidate.normal.Dot(points[static_cast<size_t>(i)]);
    std::vector<int> inliers;
    for (int k = 0; k < n; ++k) {
      if (candidate.DistanceTo(points[static_cast<size_t>(k)]) <=
          options.inlier_threshold) {
        inliers.push_back(k);
      }
    }
    if (inliers.size() > best_inliers.size()) {
      best_inliers = std::move(inliers);
    }
  }
  if (static_cast<int>(best_inliers.size()) < options.min_inliers) {
    return std::nullopt;
  }
  // Refine on the inlier set.
  std::vector<Vec2> inlier_points;
  inlier_points.reserve(best_inliers.size());
  for (int idx : best_inliers) {
    inlier_points.push_back(points[static_cast<size_t>(idx)]);
  }
  auto refined = FitLineLeastSquares(inlier_points);
  RansacLineResult result;
  if (refined.has_value()) {
    result.line = *refined;
  }
  result.inliers = std::move(best_inliers);
  return result;
}

std::vector<HoughPeak> HoughLines(const std::vector<Vec2>& points,
                                  const HoughOptions& options) {
  std::vector<HoughPeak> peaks;
  if (points.empty()) return peaks;

  double max_rho = 0.0;
  for (const Vec2& p : points) max_rho = std::max(max_rho, p.Norm());
  max_rho += options.rho_resolution;

  int num_theta = std::max(
      1, static_cast<int>(std::numbers::pi / options.theta_resolution));
  int num_rho =
      std::max(1, static_cast<int>(2.0 * max_rho / options.rho_resolution));
  std::vector<int> acc(static_cast<size_t>(num_theta) *
                           static_cast<size_t>(num_rho),
                       0);

  auto acc_at = [&](int t, int r) -> int& {
    return acc[static_cast<size_t>(t) * static_cast<size_t>(num_rho) +
               static_cast<size_t>(r)];
  };

  for (const Vec2& p : points) {
    for (int t = 0; t < num_theta; ++t) {
      double theta = (t + 0.5) * options.theta_resolution;
      double rho = p.x * std::cos(theta) + p.y * std::sin(theta);
      int r = static_cast<int>((rho + max_rho) / options.rho_resolution);
      if (r >= 0 && r < num_rho) ++acc_at(t, r);
    }
  }

  // Collect candidate cells above the vote threshold, strongest first.
  struct Cell {
    int votes;
    int t;
    int r;
  };
  std::vector<Cell> candidates;
  for (int t = 0; t < num_theta; ++t) {
    for (int r = 0; r < num_rho; ++r) {
      int v = acc_at(t, r);
      if (v >= options.min_votes) candidates.push_back({v, t, r});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Cell& a, const Cell& b) { return a.votes > b.votes; });

  std::vector<Cell> accepted;
  for (const Cell& c : candidates) {
    if (static_cast<int>(accepted.size()) >= options.max_peaks) break;
    bool suppressed = false;
    for (const Cell& a : accepted) {
      int dt = std::abs(a.t - c.t);
      dt = std::min(dt, num_theta - dt);  // Theta wraps at pi.
      if (dt <= options.suppression_radius &&
          std::abs(a.r - c.r) <= options.suppression_radius) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) accepted.push_back(c);
  }

  peaks.reserve(accepted.size());
  for (const Cell& c : accepted) {
    HoughPeak peak;
    peak.theta = (c.t + 0.5) * options.theta_resolution;
    peak.rho = (c.r + 0.5) * options.rho_resolution - max_rho;
    peak.votes = c.votes;
    peaks.push_back(peak);
  }
  return peaks;
}

}  // namespace hdmap
