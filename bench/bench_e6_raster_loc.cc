// E6 — HDMI-Loc (Jeong et al. [23]): bitwise particle-filter
// localization on an 8-bit semantic raster map. Paper: 0.3 m median
// error over an 11 km drive, with large storage savings from the raster
// representation.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "core/raster_layer.h"
#include "core/serialization.h"
#include "localization/raster_localizer.h"
#include "sim/road_network_generator.h"

namespace hdmap {
namespace {

int Run() {
  bench::PrintHeader("E6",
                     "HDMI-Loc bitwise raster localization [23]",
                     "0.3 m median error over an 11 km drive; compact "
                     "raster replaces the vector map online");

  Rng rng(1101);
  HighwayOptions opt;
  opt.length = 11000.0;
  opt.curve_amplitude = 0.0;  // Keep the raster bounding box compact.
  opt.sign_spacing = 120.0;
  auto hw = GenerateHighway(opt, rng);
  if (!hw.ok()) return 1;

  const double kResolution = 0.25;
  SemanticRaster raster = RasterizeMap(*hw, kResolution);
  std::string raster_rle = raster.SerializeRle();
  std::string vector_blob = SerializeMap(*hw);

  // Drive the forward chain.
  std::vector<const Lanelet*> chain;
  for (const auto& [id, ll] : hw->lanelets()) {
    if (ll.predecessors.empty() && !ll.successors.empty()) {
      const Lanelet* cur = &ll;
      while (cur != nullptr) {
        chain.push_back(cur);
        cur = cur->successors.empty()
                  ? nullptr
                  : hw->FindLanelet(cur->successors.front());
      }
      break;
    }
  }
  if (chain.empty()) return 1;

  RasterLocalizer::Options lopt;
  lopt.filter.num_particles = 180;
  lopt.filter.position_noise = 0.03;
  // Wide enough to see the roadside signs that break the dash-pattern
  // ambiguity along the corridor.
  lopt.patch_half_extent = 14.0;
  RasterLocalizer localizer(&raster, lopt);

  Pose2 truth(chain[0]->centerline.PointAt(0.0),
              chain[0]->centerline.HeadingAt(0.0));
  localizer.Init(Pose2(truth.translation + Vec2{0.8, -0.5}, truth.heading),
                 1.0, 0.03, rng);

  std::vector<double> errors;
  double driven = 0.0;
  bench::Timer timer;
  const double kStep = 10.0;
  for (const Lanelet* lane : chain) {
    for (double s = 0.0; s < lane->Length(); s += kStep) {
      Pose2 next(lane->centerline.PointAt(s),
                 lane->centerline.HeadingAt(s));
      double dist = next.translation.DistanceTo(truth.translation);
      if (dist < 0.5) continue;
      double dh = AngleDiff(next.heading, truth.heading);
      localizer.Predict(dist, dh, rng);
      truth = next;
      driven += dist;
      SemanticRaster patch = BuildObservedPatch(
          raster, truth, lopt.patch_half_extent, kResolution, 0.15, 0.002,
          rng);
      localizer.Update(patch, rng);
      if (driven > 100.0) {
        errors.push_back(
            localizer.Estimate().translation.DistanceTo(truth.translation));
      }
    }
  }

  bench::PrintRow("drive length (km)", "11",
                  bench::Fmt("%.1f", driven / 1000.0));
  bench::PrintRow("median position error (m)", "0.3",
                  bench::Fmt("%.2f", Median(errors)));
  bench::PrintRow("95th percentile error (m)", "(sub-meter)",
                  bench::Fmt("%.2f", Percentile(errors, 95.0)));
  bench::PrintRow("raster map size (RLE, MB)", "(small)",
                  bench::Fmt("%.2f", raster_rle.size() / 1e6));
  bench::PrintRow("full vector+survey map size (MB)", "(large)",
                  bench::Fmt("%.2f", vector_blob.size() / 1e6));
  std::printf("  raster: %dx%d cells at %.2f m; runtime %.1f s for %zu "
              "updates\n\n",
              raster.width(), raster.height(), kResolution,
              timer.Seconds(), errors.size());
  return Median(errors) < 1.0 ? 0 : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
