#ifndef HDMAP_CREATION_LIDAR_PIPELINE_H_
#define HDMAP_CREATION_LIDAR_PIPELINE_H_

#include <vector>

#include "core/hd_map.h"
#include "geometry/line_string.h"
#include "geometry/pose2.h"
#include "sim/sensors.h"

namespace hdmap {

/// One georeferenced LiDAR scan of a mobile mapping run.
struct GeoScan {
  Pose2 pose;  ///< Estimated scanner pose when the scan was taken.
  std::vector<MarkingPoint> points;  ///< Vehicle-frame returns.
};

/// Automated vector road-structure mapping from multibeam LiDAR
/// (Zhao et al. [32]), following the paper's five steps:
///   1. aggregate scans into a georeferenced point cloud;
///   2. project to a 2-D occupancy/intensity grid;
///   3. remove ground returns (intensity filtering);
///   4. extract road boundaries/markings from the grid;
///   5. refine with a probabilistic fusion over repeated passes.
class LidarMapper {
 public:
  struct Options {
    double grid_resolution = 0.25;   ///< Meters per cell.
    double intensity_threshold = 0.5;
    /// Cells observed marking-like at least this fraction of visits
    /// survive step 5.
    double fusion_min_ratio = 0.5;
    int min_cell_hits = 2;
    /// Extracted polylines shorter than this are discarded, meters.
    double min_boundary_length = 5.0;
    /// Gap tolerance when chaining cells into polylines, meters.
    double chain_radius = 0.9;
  };

  explicit LidarMapper(const Options& options) : options_(options) {}

  /// Runs the pipeline over all scans; returns extracted boundary/marking
  /// polylines in the world frame.
  std::vector<LineString> ExtractBoundaries(
      const std::vector<GeoScan>& scans) const;

 private:
  Options options_;
};

/// Mean absolute distance from sampled points of each extracted polyline
/// to the nearest true marking/edge feature of the map: the pipeline's
/// mapping error.
double BoundaryExtractionError(const std::vector<LineString>& extracted,
                               const HdMap& truth);

}  // namespace hdmap

#endif  // HDMAP_CREATION_LIDAR_PIPELINE_H_
