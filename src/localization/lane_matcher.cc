#include "localization/lane_matcher.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace hdmap {

LaneMatcher::LaneMatcher(const HdMap* map, const Options& options)
    : map_(map), options_(options) {}

LaneMatcher::MatchResult LaneMatcher::Step(const Vec2& position_fix,
                                           double heading,
                                           double distance_traveled) {
  // 1) Gather candidates near the fix.
  std::vector<ElementId> candidates = map_->LaneletsInBox(
      Aabb::FromPoint(position_fix, options_.candidate_radius));

  // 2) Prior: propagate the previous belief along topology. A lane keeps
  // its mass; a fraction leaks to successors proportional to distance
  // traveled, and a small amount to lane-change neighbors.
  std::map<ElementId, double> prior;
  if (belief_.empty()) {
    for (ElementId id : candidates) prior[id] = 1.0;
  } else {
    for (const auto& [id, p] : belief_) {
      const Lanelet* ll = map_->FindLanelet(id);
      if (ll == nullptr) continue;
      double leak = std::min(
          0.9, distance_traveled / std::max(10.0, ll->Length()));
      prior[id] += p * (1.0 - leak);
      if (!ll->successors.empty()) {
        double share = p * leak * 0.9 /
                       static_cast<double>(ll->successors.size());
        for (ElementId succ : ll->successors) prior[succ] += share;
      }
      if (ll->left_neighbor != kInvalidId) {
        prior[ll->left_neighbor] += p * leak * 0.05;
      }
      if (ll->right_neighbor != kInvalidId) {
        prior[ll->right_neighbor] += p * leak * 0.05;
      }
    }
    // Seed any new candidate with a small floor so recovery is possible.
    for (ElementId id : candidates) prior[id] += 1e-3;
  }

  // 3) Likelihood from the fix: lateral offset + heading agreement.
  std::map<ElementId, double> posterior;
  double best_prob = 0.0;
  MatchResult result;
  double total = 0.0;
  for (const auto& [id, p] : prior) {
    const Lanelet* ll = map_->FindLanelet(id);
    if (ll == nullptr) continue;
    LineStringProjection proj = ll->centerline.Project(position_fix);
    // Discard candidates projecting beyond the lane ends by a margin.
    double lateral = proj.distance;
    if (lateral > 4.0 * options_.lateral_sigma) continue;
    double dh = AngleDiff(heading, ll->centerline.HeadingAt(proj.arc_length));
    double l = std::exp(-0.5 * (lateral * lateral) /
                        (options_.lateral_sigma * options_.lateral_sigma)) *
               std::exp(-0.5 * (dh * dh) /
                        (options_.heading_sigma * options_.heading_sigma));
    double post = p * std::max(l, 1e-9);
    posterior[id] = post;
    total += post;
  }
  if (total <= 0.0) {
    // Lost: reset and report no integrity.
    belief_.clear();
    return result;
  }
  for (auto& [id, p] : posterior) p /= total;
  belief_ = posterior;

  for (const auto& [id, p] : posterior) {
    if (p > best_prob) {
      best_prob = p;
      result.lanelet_id = id;
      result.probability = p;
      const Lanelet* ll = map_->FindLanelet(id);
      result.arc_length = ll->centerline.Project(position_fix).arc_length;
    }
  }
  result.has_integrity = best_prob >= options_.integrity_threshold;
  return result;
}

}  // namespace hdmap
