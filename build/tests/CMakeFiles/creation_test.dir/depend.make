# Empty dependencies file for creation_test.
# This may be replaced when dependencies are built.
