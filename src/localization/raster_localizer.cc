#include "localization/raster_localizer.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hdmap {

SemanticRaster BuildObservedPatch(const SemanticRaster& world_raster,
                                  const Pose2& true_pose,
                                  double half_extent, double resolution,
                                  double dropout_prob, double noise_prob,
                                  Rng& rng) {
  SemanticRaster patch(
      Aabb({-half_extent, -half_extent}, {half_extent, half_extent}),
      resolution);
  for (int cy = 0; cy < patch.height(); ++cy) {
    for (int cx = 0; cx < patch.width(); ++cx) {
      Vec2 world = true_pose.TransformPoint(patch.CellCenter(cx, cy));
      uint8_t bits = world_raster.Sample(world);
      if (bits != 0 && !rng.Bernoulli(dropout_prob)) {
        patch.Set(cx, cy, bits);
      } else if (bits == 0 && rng.Bernoulli(noise_prob)) {
        patch.Set(cx, cy, kRasterLaneMarking);  // Spurious paint return.
      }
    }
  }
  return patch;
}

RasterLocalizer::RasterLocalizer(const SemanticRaster* map_raster,
                                 const Options& options)
    : map_raster_(map_raster), options_(options), filter_(options.filter) {}

void RasterLocalizer::Init(const Pose2& initial, double position_spread,
                           double heading_spread, Rng& rng) {
  filter_.Init(initial, position_spread, heading_spread, rng);
}

void RasterLocalizer::Predict(double distance, double heading_change,
                              Rng& rng) {
  filter_.Predict(distance, heading_change, rng);
}

void RasterLocalizer::Update(const SemanticRaster& observed_patch,
                             Rng& rng) {
  // Extract the observation's occupied cells once; scoring each particle
  // then touches only those cells.
  std::vector<SemanticRaster::OccupiedCell> observed =
      observed_patch.OccupiedCells();
  if (observed.empty()) return;
  // Normalize the bitwise score into a likelihood: scores are shifted by
  // the best particle's score to avoid underflow, then exponentiated.
  const auto& particles = filter_.particles();
  std::vector<double> scores;
  scores.reserve(particles.size());
  double best = -1e18;
  for (const auto& p : particles) {
    double s = map_raster_->MatchScoreSparse(observed, p.pose);
    scores.push_back(s);
    best = std::max(best, s);
  }
  size_t idx = 0;
  double occupied = static_cast<double>(observed.size());
  filter_.Update(
      [&](const Pose2&) {
        // Temperature scaled by patch size so the weighting stays stable
        // across patch densities.
        double s = scores[idx++];
        return std::exp((s - best) /
                        (options_.score_temperature * occupied));
      },
      rng);
}

}  // namespace hdmap
