#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace hdmap {
namespace {

TraceRecorder::Options EnabledOptions(size_t capacity = 8192,
                                      uint32_t sample_every_n = 1,
                                      double slow_threshold_s = 0.25) {
  TraceRecorder::Options opts;
  opts.enabled = true;
  opts.capacity = capacity;
  opts.sample_every_n = sample_every_n;
  opts.slow_threshold_s = slow_threshold_s;
  return opts;
}

TEST(TraceSpanTest, DisabledRecorderMakesSpansInert) {
  TraceRecorder recorder;  // Default options: disabled.
  {
    TraceSpan root("request", TraceSpan::kRoot, &recorder);
    EXPECT_FALSE(root.active());
    EXPECT_EQ(root.trace_id(), 0u);
    TraceSpan child("step", &recorder);
    EXPECT_FALSE(child.active());
  }
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceSpanTest, ChildWithoutAmbientContextIsInert) {
  TraceRecorder recorder(EnabledOptions());
  TraceSpan orphan("library.helper", &recorder);
  EXPECT_FALSE(orphan.active());
  EXPECT_EQ(orphan.trace_id(), 0u);
}

TEST(TraceSpanTest, RootAndChildShareTraceAndNest) {
  TraceRecorder recorder(EnabledOptions());
  uint64_t root_trace = 0;
  uint64_t root_span = 0;
  {
    TraceSpan root("map_service.get_region", TraceSpan::kRoot, &recorder);
    ASSERT_TRUE(root.active());
    root_trace = root.trace_id();
    root_span = root.span_id();
    EXPECT_EQ(CurrentTraceId(), root_trace);
    {
      TraceSpan child("tile_store.decode", &recorder);
      ASSERT_TRUE(child.active());
      EXPECT_EQ(child.trace_id(), root_trace);
      EXPECT_NE(child.span_id(), root_span);
    }
    // Child restored the context to the root span.
    EXPECT_EQ(CurrentTraceId(), root_trace);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);

  std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot sorts by start time: root first, child second.
  EXPECT_STREQ(events[0].name, "map_service.get_region");
  EXPECT_STREQ(events[1].name, "tile_store.decode");
  EXPECT_EQ(events[0].trace_id, events[1].trace_id);
  EXPECT_EQ(events[0].parent_span_id, 0u);
  EXPECT_EQ(events[1].parent_span_id, events[0].span_id);
  EXPECT_LE(events[1].duration_ns, events[0].duration_ns);
}

TEST(TraceSpanTest, SamplingOneInNKeepsErrorAndSlowSpans) {
  // sample_every_n = 0: head sampling off entirely.
  TraceRecorder recorder(EnabledOptions(8192, 0));
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("request", TraceSpan::kRoot, &recorder);
    EXPECT_TRUE(span.active());   // Traced (ids flow to children)...
    EXPECT_FALSE(span.sampled()); // ...but not head-sampled.
  }
  EXPECT_TRUE(recorder.Snapshot().empty());

  // An error span records even though its trace is unsampled.
  {
    TraceSpan span("request", TraceSpan::kRoot, &recorder);
    span.SetStatus(StatusCode::kDataLoss);
  }
  std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].status, StatusCode::kDataLoss);
  EXPECT_FALSE(events[0].sampled);
}

TEST(TraceSpanTest, ErrorChildRecordsAloneInUnsampledTrace) {
  TraceRecorder recorder(EnabledOptions(8192, 0));
  {
    TraceSpan root("request", TraceSpan::kRoot, &recorder);
    TraceSpan child("tile_store.decode", &recorder);
    child.SetStatus(StatusCode::kDataLoss);
  }
  std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "tile_store.decode");
}

TEST(TraceSpanTest, NonForcedErrorRecordsOnlyWhenSampled) {
  TraceRecorder recorder(EnabledOptions(8192, 0));
  {
    // Unsampled trace + force=false: status annotated but not recorded.
    TraceSpan span("tile_store.load", TraceSpan::kRoot, &recorder);
    span.SetStatus(StatusCode::kDataLoss, /*force=*/false);
  }
  EXPECT_TRUE(recorder.Snapshot().empty());

  recorder.Configure(EnabledOptions(8192, 1));
  {
    // Sampled trace: the non-forced error span records like any other.
    TraceSpan span("tile_store.load", TraceSpan::kRoot, &recorder);
    span.SetStatus(StatusCode::kDataLoss, /*force=*/false);
  }
  std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].status, StatusCode::kDataLoss);
}

TEST(TraceSpanTest, OneInTwoSamplingRecordsHalfTheTraces) {
  TraceRecorder recorder(EnabledOptions(8192, 2));
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("request", TraceSpan::kRoot, &recorder);
  }
  EXPECT_EQ(recorder.Snapshot().size(), 5u);
}

TEST(TraceSpanTest, SlowSpanRecordsAndIsFlagged) {
  TraceRecorder recorder(EnabledOptions(8192, 0, 1e-9));
  {
    TraceSpan span("request", TraceSpan::kRoot, &recorder);
    // Any real work exceeds a 1 ns threshold.
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].slow);
}

TEST(TraceSpanTest, EndIsIdempotent) {
  TraceRecorder recorder(EnabledOptions());
  TraceSpan span("request", TraceSpan::kRoot, &recorder);
  span.End();
  span.End();  // Destructor will be a third call.
  EXPECT_EQ(recorder.recorded(), 1u);
}

TEST(TraceContextTest, ScopePropagatesAcrossThreads) {
  TraceRecorder recorder(EnabledOptions());
  TraceSpan root("request", TraceSpan::kRoot, &recorder);
  TraceContext ctx = CurrentTraceContext();
  uint64_t seen_trace = 0;
  std::thread worker([&] {
    EXPECT_EQ(CurrentTraceId(), 0u);  // Fresh thread: no ambient trace.
    TraceContextScope scope(ctx);
    TraceSpan child("worker.step", &recorder);
    seen_trace = child.trace_id();
  });
  worker.join();
  EXPECT_EQ(seen_trace, root.trace_id());
}

TEST(TraceContextTest, ParallelForCarriesContextIntoWorkers) {
  TraceRecorder recorder(EnabledOptions());
  TraceSpan root("tile_store.load_region", TraceSpan::kRoot, &recorder);
  constexpr size_t kN = 64;
  std::vector<uint64_t> trace_ids(kN, 0);
  ParallelFor(kN, [&](size_t i) {
    TraceSpan span("tile_store.decode", &recorder);
    trace_ids[i] = span.trace_id();
  }, 4);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(trace_ids[i], root.trace_id()) << "iteration " << i;
  }
  root.End();
  // Every span shares the trace and the decode spans all parent on root.
  std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), kN + 1);
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.trace_id, root.trace_id());
    if (std::string(e.name) == "tile_store.decode") {
      EXPECT_EQ(e.parent_span_id, root.span_id());
    }
  }
}

TEST(TraceContextTest, ThreadPoolSubmitCarriesContext) {
  TraceRecorder recorder(EnabledOptions());
  ThreadPool pool(2);
  TraceSpan root("request", TraceSpan::kRoot, &recorder);
  std::atomic<uint64_t> seen{0};
  pool.Submit([&] { seen.store(CurrentTraceId()); });
  pool.Wait();
  EXPECT_EQ(seen.load(), root.trace_id());
}

TEST(TraceRecorderTest, RingWrapsAndCountsDrops) {
  // Tiny capacity: 16 total = 2 per stripe. Record from this one thread
  // (one stripe) until it wraps.
  TraceRecorder recorder(EnabledOptions(16));
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("request", TraceSpan::kRoot, &recorder);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 8u);
  std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // The survivors are the newest two, in start order.
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  uint64_t max_trace = 0;
  for (const TraceEvent& e : recorder.Snapshot()) {
    max_trace = std::max(max_trace, e.trace_id);
  }
  EXPECT_EQ(events[1].trace_id, max_trace);
}

TEST(TraceRecorderTest, ConcurrentWritersWrapCleanly) {
  // 8 writer threads hammering a deliberately tiny ring: exercises stripe
  // locking and overwrite-on-wrap under contention (the TSan build of this
  // test is the race check the PR requires).
  TraceRecorder recorder(EnabledOptions(64));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span("request", TraceSpan::kRoot, &recorder);
        TraceSpan child("step", &recorder);
      }
    });
  }
  // Concurrent readers while writers run.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      std::vector<TraceEvent> events = recorder.Snapshot();
      EXPECT_LE(events.size(), 64u);
      (void)recorder.ExportChromeTraceJson();
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread * 2);
  EXPECT_EQ(recorder.recorded() - recorder.dropped(),
            recorder.Snapshot().size());
  // Every buffered event is well-formed (non-empty literal name).
  for (const TraceEvent& e : recorder.Snapshot()) {
    EXPECT_TRUE(std::string(e.name) == "request" ||
                std::string(e.name) == "step");
    EXPECT_NE(e.trace_id, 0u);
  }
}

TEST(TraceRecorderTest, ChromeTraceJsonShape) {
  TraceRecorder recorder(EnabledOptions());
  {
    TraceSpan root("map_service.get_region", TraceSpan::kRoot, &recorder);
    TraceSpan child("tile_store.decode", &recorder);
    child.SetStatus(StatusCode::kDataLoss);
  }
  std::string json = recorder.ExportChromeTraceJson();
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"map_service.get_region\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tile_store.decode\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"DATA_LOSS\""), std::string::npos);
  // Braces balance (cheap well-formedness check; Perfetto is the real
  // consumer).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceRecorderTest, ConfigureResetsRing) {
  TraceRecorder recorder(EnabledOptions());
  { TraceSpan span("request", TraceSpan::kRoot, &recorder); }
  EXPECT_EQ(recorder.Snapshot().size(), 1u);
  recorder.Configure(EnabledOptions(32));
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.options().capacity, 32u);
}

TEST(TraceRecorderTest, ExportCarriesProcessIdAndWallAnchor) {
  TraceRecorder recorder(EnabledOptions());
  EXPECT_GT(recorder.wall_anchor_us(), 0);
  { TraceSpan span("net.request", TraceSpan::kRoot, &recorder); }
  std::string json = recorder.ExportChromeTraceJson(7, "node-7");
  // The process-name metadata record labels the track, and every event
  // carries the export's pid — what makes multi-node merges readable.
  EXPECT_NE(json.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":7,"
                      "\"args\":{\"name\":\"node-7\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"net.request\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":7,"), std::string::npos);
  // Anchored timestamps are wall-clock microseconds: far from zero.
  EXPECT_EQ(json.find("\"ts\":0.0"), std::string::npos);
  // The no-argument overload defaults to pid 1 / "hdmap" (the v1 shape).
  std::string legacy = recorder.ExportChromeTraceJson();
  EXPECT_NE(legacy.find("\"args\":{\"name\":\"hdmap\"}"), std::string::npos);
}

TEST(TraceSpanTest, ForceRecordOverridesSampling) {
  TraceRecorder::Options options;
  options.enabled = true;
  options.sample_every_n = 0;  // Nothing records by default.
  options.slow_threshold_s = 0.0;
  TraceRecorder recorder(options);
  {
    TraceSpan dropped("request", TraceSpan::kRoot, &recorder);
  }
  EXPECT_TRUE(recorder.Snapshot().empty());
  uint64_t forced_trace = 0;
  {
    TraceSpan forced("request", TraceSpan::kRoot, &recorder);
    forced.ForceRecord();
    forced_trace = forced.trace_id();
  }
  ASSERT_NE(forced_trace, 0u);
  std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, forced_trace);
  EXPECT_FALSE(events[0].sampled);
}

}  // namespace
}  // namespace hdmap
