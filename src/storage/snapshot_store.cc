#include "storage/snapshot_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/trace.h"
#include "storage/mmap_file.h"
#include "core/binary_io.h"
#include "core/wire_frame.h"

namespace hdmap {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kManifestFormatVersion = 1;
constexpr const char* kManifestFile = "manifest.bin";

std::string VersionDirName(uint64_t version) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "v%020llu",
                static_cast<unsigned long long>(version));
  return buf;
}

std::string TileFileName(uint64_t morton) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx.tile",
                static_cast<unsigned long long>(morton));
  return buf;
}

/// Inverse of VersionDirName; false for anything else (tmp dirs, junk).
bool ParseVersionDirName(const std::string& name, uint64_t* version) {
  if (name.size() != 21 || name[0] != 'v') return false;
  uint64_t v = 0;
  for (size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *version = v;
  return true;
}

struct ManifestEntry {
  uint64_t morton = 0;
  TileId id;
  uint64_t size = 0;
};

struct Manifest {
  uint64_t version = 0;
  int64_t published_unix_ms = 0;
  double tile_size_m = 0.0;
  std::vector<ManifestEntry> entries;
};

Result<Manifest> ParseManifest(std::string_view framed) {
  HDMAP_ASSIGN_OR_RETURN(std::string_view payload, UnwrapFrame(framed));
  BufferReader reader(payload);
  uint32_t format = reader.ReadU32();
  if (reader.ok() && format != kManifestFormatVersion) {
    return Status::DataLoss("unsupported manifest format " +
                            std::to_string(format));
  }
  Manifest m;
  m.version = reader.ReadU64();
  m.published_unix_ms = reader.ReadI64();
  m.tile_size_m = reader.ReadF64();
  uint64_t count = reader.ReadU64();
  // 24 bytes per entry (morton + x + y + size).
  if (!reader.CheckCount(count, 24)) return reader.status();
  m.entries.reserve(count);
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    ManifestEntry e;
    e.morton = reader.ReadU64();
    e.id.x = reader.ReadI32();
    e.id.y = reader.ReadI32();
    e.size = reader.ReadU64();
    m.entries.push_back(e);
  }
  HDMAP_RETURN_IF_ERROR(reader.status());
  return m;
}

}  // namespace

SnapshotStore::SnapshotStore(Options options) : options_(std::move(options)) {
  if (options_.retention == 0) options_.retention = 1;
  if (options_.metrics != nullptr) {
    writes_ = options_.metrics->GetCounter("storage.checkpoint_writes");
    write_failures_ =
        options_.metrics->GetCounter("storage.checkpoint_failures");
    tiles_written_ = options_.metrics->GetCounter("storage.checkpoint_tiles");
    invalid_at_load_ =
        options_.metrics->GetCounter("storage.checkpoints_invalid");
    last_bytes_ = options_.metrics->GetGauge("storage.checkpoint_bytes");
    lat_write_ = options_.metrics->GetLatency("storage.checkpoint_write");
  }
}

std::string SnapshotStore::CheckpointsRoot() const {
  return options_.data_dir + "/checkpoints";
}

std::string SnapshotStore::CheckpointDir(uint64_t version) const {
  return CheckpointsRoot() + "/" + VersionDirName(version);
}

Status SnapshotStore::WriteCheckpoint(const TileStore& tiles,
                                      uint64_t version,
                                      int64_t published_unix_ms) {
  if (options_.data_dir.empty()) {
    return Status::FailedPrecondition("SnapshotStore has no data_dir");
  }
  TraceSpan span("storage.checkpoint_write");
  ScopedTimer timer(lat_write_);
  Status result = [&]() -> Status {
    FaultInjector* faults = options_.fault_injector;
    if (faults != nullptr) {
      HDMAP_RETURN_IF_ERROR(faults->MaybeFail(kWriteFaultSite));
    }
    std::error_code ec;
    fs::create_directories(CheckpointsRoot(), ec);
    if (ec) {
      return Status::Internal("create " + CheckpointsRoot() + ": " +
                              ec.message());
    }
    const std::string tmp_dir =
        CheckpointsRoot() + "/.tmp-" + VersionDirName(version);
    fs::remove_all(tmp_dir, ec);  // Leftover from a crashed write.
    fs::create_directory(tmp_dir, ec);
    if (ec) {
      return Status::Internal("create " + tmp_dir + ": " + ec.message());
    }

    // Tiles first, manifest last: a checkpoint without a readable
    // manifest is invalid by construction, so a crash inside this loop
    // can never produce a directory that validates.
    BufferWriter manifest;
    manifest.WriteU32(kManifestFormatVersion);
    manifest.WriteU64(version);
    manifest.WriteI64(published_unix_ms);
    manifest.WriteF64(tiles.tile_size());
    size_t total_bytes = 0;
    std::vector<TileId> ids = tiles.AllTiles();
    manifest.WriteU64(ids.size());
    for (const TileId& id : ids) {
      uint64_t morton = id.Morton();
      HDMAP_ASSIGN_OR_RETURN(PinnedBytes blob, tiles.RawTileBytes(id));
      manifest.WriteU64(morton);
      manifest.WriteI32(id.x);
      manifest.WriteI32(id.y);
      // The manifest records the intended length; an injected or real
      // torn tile write then disagrees with it and fails validation.
      manifest.WriteU64(blob.size());
      std::string_view bytes = blob.view();
      std::string corrupted;
      if (faults != nullptr &&
          faults->MaybeCorrupt(kWriteFaultSite, bytes, &corrupted)) {
        bytes = corrupted;
      }
      {
        TraceSpan tile_span("storage.checkpoint_tile_write");
        Status written = WriteFileRaw(
            tmp_dir + "/" + TileFileName(morton), bytes, options_.fsync);
        if (!written.ok()) {
          tile_span.SetStatus(written.code());
          return written;
        }
      }
      total_bytes += bytes.size();
      if (tiles_written_ != nullptr) tiles_written_->Increment();
    }

    std::string framed = WrapFrame(manifest.buffer());
    std::string_view manifest_bytes = framed;
    std::string corrupted;
    if (faults != nullptr &&
        faults->MaybeCorrupt(kManifestFaultSite, manifest_bytes,
                             &corrupted)) {
      manifest_bytes = corrupted;
    }
    {
      TraceSpan manifest_span("storage.manifest_write");
      Status written = WriteFileRaw(tmp_dir + "/" + kManifestFile,
                                    manifest_bytes, options_.fsync);
      if (!written.ok()) {
        manifest_span.SetStatus(written.code());
        return written;
      }
      total_bytes += manifest_bytes.size();
      Status synced = FsyncDir(tmp_dir, options_.fsync);
      if (!synced.ok()) {
        manifest_span.SetStatus(synced.code());
        return synced;
      }
    }

    // The commit point: everything is durable in the temp dir, flip it
    // visible with one rename.
    const std::string final_dir = CheckpointDir(version);
    fs::remove_all(final_dir, ec);  // Re-checkpoint of the same version.
    fs::rename(tmp_dir, final_dir, ec);
    if (ec) {
      return Status::Internal("rename " + tmp_dir + " -> " + final_dir +
                              ": " + ec.message());
    }
    HDMAP_RETURN_IF_ERROR(FsyncDir(CheckpointsRoot(), options_.fsync));
    if (last_bytes_ != nullptr) {
      last_bytes_->Set(static_cast<double>(total_bytes));
    }
    return Status::Ok();
  }();
  if (!result.ok()) {
    span.SetStatus(result.code());
    if (write_failures_ != nullptr) write_failures_->Increment();
    return result;
  }
  if (writes_ != nullptr) writes_->Increment();
  ApplyRetention();
  return Status::Ok();
}

std::vector<uint64_t> SnapshotStore::ListCheckpoints() const {
  std::vector<uint64_t> versions;
  std::error_code ec;
  fs::directory_iterator it(CheckpointsRoot(), ec);
  if (ec) return versions;
  for (const auto& entry : it) {
    uint64_t v = 0;
    if (entry.is_directory() &&
        ParseVersionDirName(entry.path().filename().string(), &v)) {
      versions.push_back(v);
    }
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

void SnapshotStore::ApplyRetention() const {
  std::error_code ec;
  // Sweep crashed writes' leftovers.
  fs::directory_iterator it(CheckpointsRoot(), ec);
  if (ec) return;
  for (const auto& entry : it) {
    std::string name = entry.path().filename().string();
    if (name.rfind(".tmp-", 0) == 0) fs::remove_all(entry.path(), ec);
  }
  std::vector<uint64_t> versions = ListCheckpoints();
  if (versions.size() <= options_.retention) return;
  size_t excess = versions.size() - options_.retention;
  for (size_t i = 0; i < excess; ++i) {
    fs::remove_all(CheckpointDir(versions[i]), ec);
  }
  (void)FsyncDir(CheckpointsRoot(), options_.fsync);
}

Result<RecoveredSnapshot> SnapshotStore::LoadCheckpoint(
    uint64_t version, const TileStore::Options& tile_options) const {
  TraceSpan span("storage.checkpoint_load");
  const std::string dir = CheckpointDir(version);
  HDMAP_ASSIGN_OR_RETURN(std::string framed,
                         ReadFileRaw(dir + "/" + kManifestFile));
  HDMAP_ASSIGN_OR_RETURN(Manifest manifest, ParseManifest(framed));
  if (manifest.version != version) {
    return Status::DataLoss("manifest in " + dir + " claims version " +
                            std::to_string(manifest.version));
  }
  TileStore::Options opts = tile_options;
  opts.tile_size_m = manifest.tile_size_m;
  RecoveredSnapshot out;
  out.version = manifest.version;
  out.published_unix_ms = manifest.published_unix_ms;
  out.tiles = TileStore(opts);
  for (const ManifestEntry& e : manifest.entries) {
    // Zero-copy recovery: the tile file is mmap'd and pinned into the
    // store instead of being copied onto the heap. The mapping outlives
    // retention-deletes of this checkpoint (POSIX unlink semantics), so
    // the recovered store needs no further relationship with the dir.
    HDMAP_ASSIGN_OR_RETURN(std::shared_ptr<MmapFile> file,
                           MmapFile::Open(dir + "/" + TileFileName(e.morton)));
    if (file->size() != e.size) {
      return Status::DataLoss(
          "tile " + TileFileName(e.morton) + " in " + dir + " is " +
          std::to_string(file->size()) + " bytes, manifest says " +
          std::to_string(e.size));
    }
    PinnedBytes blob =
        PinnedBytes::FromOwner(file, file->data(), file->size());
    out.tiles.PutPinnedTile(e.id, std::move(blob));
  }
  // Full validation + stitch: every tile must pass its frame CRC and
  // decode before the checkpoint is considered servable.
  HDMAP_ASSIGN_OR_RETURN(out.map, out.tiles.LoadAll());
  return out;
}

Result<MappedCheckpoint> SnapshotStore::OpenMapped(uint64_t version) const {
  TraceSpan span("storage.checkpoint_open_mapped");
  const std::string dir = CheckpointDir(version);
  HDMAP_ASSIGN_OR_RETURN(std::string framed,
                         ReadFileRaw(dir + "/" + kManifestFile));
  HDMAP_ASSIGN_OR_RETURN(Manifest manifest, ParseManifest(framed));
  if (manifest.version != version) {
    return Status::DataLoss("manifest in " + dir + " claims version " +
                            std::to_string(manifest.version));
  }
  MappedCheckpoint out;
  out.version = manifest.version;
  out.published_unix_ms = manifest.published_unix_ms;
  out.tile_size_m = manifest.tile_size_m;
  for (const ManifestEntry& e : manifest.entries) {
    HDMAP_ASSIGN_OR_RETURN(std::shared_ptr<MmapFile> file,
                           MmapFile::Open(dir + "/" + TileFileName(e.morton)));
    if (file->size() != e.size) {
      return Status::DataLoss(
          "tile " + TileFileName(e.morton) + " in " + dir + " is " +
          std::to_string(file->size()) + " bytes, manifest says " +
          std::to_string(e.size));
    }
    // The once-per-generation CRC check. Views over this tile use
    // FrameChecksum::kTrust from here on: the mapping is private and the
    // file only ever replaced wholesale, so the verified bytes cannot
    // change underneath the views.
    HDMAP_RETURN_IF_ERROR(UnwrapFrame(file->view()).status());
    out.tiles.emplace(
        e.morton, PinnedBytes::FromOwner(file, file->data(), file->size()));
    out.tile_ids.emplace(e.morton, e.id);
  }
  return out;
}

Result<PinnedTileView> MappedCheckpoint::View(uint64_t morton) const {
  auto it = tiles.find(morton);
  if (it == tiles.end()) {
    return Status::NotFound("tile key " + std::to_string(morton) +
                            " not in checkpoint v" + std::to_string(version));
  }
  if (!IsTileV3(it->second.view())) {
    return Status::FailedPrecondition(
        "tile key " + std::to_string(morton) +
        " is not in the v3 flat format; DeserializeMap its bytes instead");
  }
  HDMAP_ASSIGN_OR_RETURN(
      TileView view,
      TileView::Create(it->second.span(), FrameChecksum::kTrust));
  return PinnedTileView{it->second, view};
}

Result<RecoveredSnapshot> SnapshotStore::LoadNewestValid(
    const TileStore::Options& tile_options,
    size_t* checkpoints_skipped) const {
  if (checkpoints_skipped != nullptr) *checkpoints_skipped = 0;
  std::vector<uint64_t> versions = ListCheckpoints();
  Status last_error =
      Status::NotFound("no checkpoints under " + CheckpointsRoot());
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    auto loaded = LoadCheckpoint(*it, tile_options);
    if (loaded.ok()) return loaded;
    last_error = loaded.status();
    if (checkpoints_skipped != nullptr) ++(*checkpoints_skipped);
    if (invalid_at_load_ != nullptr) invalid_at_load_->Increment();
  }
  if (versions.empty()) return last_error;
  return Status(StatusCode::kNotFound,
                "no valid checkpoint among " +
                    std::to_string(versions.size()) + " on disk (last: " +
                    last_error.ToString() + ")");
}

}  // namespace hdmap
