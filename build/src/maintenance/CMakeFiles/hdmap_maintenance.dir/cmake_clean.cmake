file(REMOVE_RECURSE
  "CMakeFiles/hdmap_maintenance.dir/change_detector.cc.o"
  "CMakeFiles/hdmap_maintenance.dir/change_detector.cc.o.d"
  "CMakeFiles/hdmap_maintenance.dir/crowd_sensing.cc.o"
  "CMakeFiles/hdmap_maintenance.dir/crowd_sensing.cc.o.d"
  "CMakeFiles/hdmap_maintenance.dir/incremental_fusion.cc.o"
  "CMakeFiles/hdmap_maintenance.dir/incremental_fusion.cc.o.d"
  "CMakeFiles/hdmap_maintenance.dir/raster_diff.cc.o"
  "CMakeFiles/hdmap_maintenance.dir/raster_diff.cc.o.d"
  "CMakeFiles/hdmap_maintenance.dir/slamcu.cc.o"
  "CMakeFiles/hdmap_maintenance.dir/slamcu.cc.o.d"
  "libhdmap_maintenance.a"
  "libhdmap_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmap_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
