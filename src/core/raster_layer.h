#ifndef HDMAP_CORE_RASTER_LAYER_H_
#define HDMAP_CORE_RASTER_LAYER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/hd_map.h"
#include "geometry/pose2.h"

namespace hdmap {

/// Semantic class bits of a raster cell (HDMI-Loc [23]: the vector map as
/// a top-view 8-bit image where each bit labels one element class).
enum RasterClass : uint8_t {
  kRasterLaneMarking = 1u << 0,
  kRasterRoadEdge = 1u << 1,
  kRasterStopLine = 1u << 2,
  kRasterCrosswalk = 1u << 3,
  kRasterSign = 1u << 4,
  kRasterLight = 1u << 5,
  kRasterCenterline = 1u << 6,
  kRasterIntersection = 1u << 7,
};

/// Top-view 8-bit semantic raster of an HD map region. Each cell is a
/// bitmask of RasterClass. Supports bitwise matching for raster-based
/// localization and change detection.
class SemanticRaster {
 public:
  SemanticRaster() = default;
  /// Creates an empty raster covering `extent` at `resolution` m/cell.
  SemanticRaster(const Aabb& extent, double resolution);

  int width() const { return width_; }
  int height() const { return height_; }
  double resolution() const { return resolution_; }
  const Vec2& origin() const { return origin_; }
  size_t SizeBytes() const { return cells_.size(); }

  bool InBounds(int cx, int cy) const {
    return cx >= 0 && cx < width_ && cy >= 0 && cy < height_;
  }

  uint8_t At(int cx, int cy) const {
    return InBounds(cx, cy)
               ? cells_[static_cast<size_t>(cy) * static_cast<size_t>(width_) +
                        static_cast<size_t>(cx)]
               : 0;
  }

  void Set(int cx, int cy, uint8_t bits) {
    if (!InBounds(cx, cy)) return;
    cells_[static_cast<size_t>(cy) * static_cast<size_t>(width_) +
           static_cast<size_t>(cx)] |= bits;
  }

  /// Cell coordinates of a world point (may be out of bounds).
  void WorldToCell(const Vec2& p, int* cx, int* cy) const {
    *cx = static_cast<int>((p.x - origin_.x) / resolution_);
    *cy = static_cast<int>((p.y - origin_.y) / resolution_);
  }

  Vec2 CellCenter(int cx, int cy) const {
    return {origin_.x + (cx + 0.5) * resolution_,
            origin_.y + (cy + 0.5) * resolution_};
  }

  /// Bitmask at a world position (0 outside).
  uint8_t Sample(const Vec2& p) const {
    int cx = 0, cy = 0;
    WorldToCell(p, &cx, &cy);
    return At(cx, cy);
  }

  /// Draws a polyline with the given class bits (anti-gap stepping at
  /// half-cell granularity).
  void DrawLineString(const LineString& ls, uint8_t bits);

  /// Draws a dashed polyline (dash_len on, gap_len off). Preserving the
  /// dash pattern matters: the gaps are what give raster localization
  /// longitudinal texture.
  void DrawDashedLineString(const LineString& ls, uint8_t bits,
                            double dash_len = 3.0, double gap_len = 3.0);

  /// Fills a polygon with the given class bits.
  void DrawPolygon(const Polygon& poly, uint8_t bits);

  /// Stamps a point landmark as a small disc of radius meters.
  void DrawDisc(const Vec2& center, double radius, uint8_t bits);

  /// One non-empty cell of a raster, in the raster's local metric frame.
  struct OccupiedCell {
    Vec2 center;
    uint8_t bits = 0;
  };

  /// All non-empty cells with their local-frame centers. Extracting this
  /// once lets particle filters score many poses without rescanning the
  /// empty cells (the dominant cost for sparse patches).
  std::vector<OccupiedCell> OccupiedCells() const;

  /// Bitwise match score of a pre-extracted observation (local-frame
  /// occupied cells) under candidate pose `patch_origin_pose`. Identical
  /// semantics to MatchScore.
  double MatchScoreSparse(const std::vector<OccupiedCell>& observed,
                          const Pose2& patch_origin_pose) const;

  /// Bitwise match score between an observation patch and this raster
  /// under candidate pose `patch_origin_pose` (patch cells are in the
  /// patch's local frame): counts cells whose class bits overlap
  /// (observed AND map != 0) minus a small penalty for observed classes
  /// missing from the map. The HDMI-Loc bitwise particle-filter score.
  double MatchScore(const SemanticRaster& patch,
                    const Pose2& patch_origin_pose) const;

  /// Fraction of non-empty cells in `other` (same geometry) whose bits
  /// differ from this raster; inputs with different shapes return 1.0.
  /// Diff-Net [46]-style raster change score.
  double DiffFraction(const SemanticRaster& other) const;

  /// Run-length-encoded serialization (what a map tile service would
  /// ship). Much smaller than raw for sparse rasters.
  std::string SerializeRle() const;

  /// Number of non-empty cells.
  size_t NumOccupied() const;

 private:
  Vec2 origin_;
  double resolution_ = 0.1;
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> cells_;
};

/// Rasterizes every physical and relational element class of `map` over
/// its bounding box (expanded by margin).
SemanticRaster RasterizeMap(const HdMap& map, double resolution,
                            double margin = 5.0);

/// Rasterizes over an explicit extent. Required when two maps must be
/// compared cell-for-cell (change detection): both rasters must share
/// the same grid even if their content extents differ.
SemanticRaster RasterizeMapInExtent(const HdMap& map, double resolution,
                                    const Aabb& extent);

}  // namespace hdmap

#endif  // HDMAP_CORE_RASTER_LAYER_H_
