#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"
#include "creation/aerial_fusion.h"
#include "creation/crowd_mapper.h"
#include "creation/lane_learner.h"
#include "creation/lidar_pipeline.h"
#include "sim/sensors.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

/// Builds crowd traversals over the straight road: vehicles with biased
/// GPS poses detecting roadside signs.
std::vector<CrowdTraversal> MakeTraversals(const HdMap& map, int count,
                                           double gps_noise,
                                           double gps_bias, Rng& rng) {
  std::vector<CrowdTraversal> traversals;
  LandmarkDetector::Options det_opt;
  det_opt.detection_prob = 0.9;
  det_opt.clutter_rate = 0.02;
  LandmarkDetector detector(det_opt);
  for (int t = 0; t < count; ++t) {
    GpsSensor gps({gps_noise, gps_bias, 0.0}, rng);
    CrowdTraversal trav;
    for (double x = 5.0; x < 995.0; x += 10.0) {
      Pose2 truth(x, -1.75, 0.0);
      Pose2 estimated(gps.Measure(truth.translation, rng), 0.0);
      trav.estimated_poses.push_back(estimated);
      trav.detections.push_back(detector.Detect(map, truth, rng));
    }
    traversals.push_back(std::move(trav));
  }
  return traversals;
}

TEST(CrowdMapperTest, ReconstructsLandmarks) {
  HdMap map = StraightRoad();
  Rng rng(31);
  auto traversals = MakeTraversals(map, 20, 0.8, 0.8, rng);
  CrowdMapper mapper({});
  auto landmarks = mapper.Map(traversals);
  // Most of the 16 signs should be reconstructed.
  EXPECT_GE(landmarks.size(), 12u);
  auto errors = ScoreMappedLandmarks(landmarks, map);
  EXPECT_LT(Mean(errors), 0.8);
}

TEST(CrowdMapperTest, CorrectiveFeedbackImprovesAccuracy) {
  HdMap map = StraightRoad();
  Rng rng_a(32), rng_b(32);
  auto traversals_a = MakeTraversals(map, 15, 0.6, 1.2, rng_a);
  auto traversals_b = MakeTraversals(map, 15, 0.6, 1.2, rng_b);

  CrowdMapper::Options no_feedback;
  no_feedback.feedback_iterations = 0;
  CrowdMapper::Options with_feedback;
  with_feedback.feedback_iterations = 3;

  auto raw = CrowdMapper(no_feedback).Map(traversals_a);
  auto refined = CrowdMapper(with_feedback).Map(traversals_b);
  double raw_err = Mean(ScoreMappedLandmarks(raw, map));
  double refined_err = Mean(ScoreMappedLandmarks(refined, map));
  EXPECT_LT(refined_err, raw_err);
}

TEST(CrowdMapperTest, EmptyInputYieldsNothing) {
  CrowdMapper mapper({});
  EXPECT_TRUE(mapper.Map({}).empty());
}

TEST(LidarMapperTest, ExtractsRoadBoundaries) {
  HdMap map = StraightRoad();
  Rng rng(33);
  MarkingScanner::Options scan_opt;
  scan_opt.road_surface_points = 60;
  MarkingScanner scanner(scan_opt);
  std::vector<GeoScan> scans;
  for (double x = 10.0; x < 400.0; x += 5.0) {
    GeoScan scan;
    scan.pose = Pose2(x + rng.Normal(0.0, 0.05),
                      -1.75 + rng.Normal(0.0, 0.05), 0.0);
    Pose2 truth(x, -1.75, 0.0);
    scan.points = scanner.Scan(map, truth, rng);
    scans.push_back(std::move(scan));
  }
  LidarMapper mapper({});
  auto boundaries = mapper.ExtractBoundaries(scans);
  ASSERT_GE(boundaries.size(), 1u);
  double total_length = 0.0;
  for (const auto& b : boundaries) total_length += b.Length();
  EXPECT_GT(total_length, 200.0);  // Covered a good part of the drive.
  EXPECT_LT(BoundaryExtractionError(boundaries, map), 0.5);
}

TEST(LidarMapperTest, EmptyScansYieldNothing) {
  LidarMapper mapper({});
  EXPECT_TRUE(mapper.ExtractBoundaries({}).empty());
}

TEST(LaneLearnerTest, SmoothTrackReducesNoise) {
  Rng rng(34);
  LaneObservationTrack track;
  track.offsets.resize(100);
  for (size_t i = 0; i < track.offsets.size(); ++i) {
    track.offsets[i] = 1.75 + rng.Normal(0.0, 0.5);
  }
  LaneLearner learner({});
  auto smoothed = learner.SmoothTrack(track);
  RunningStats raw_err, smooth_err;
  for (size_t i = 0; i < track.offsets.size(); ++i) {
    raw_err.Add(std::abs(track.offsets[i] - 1.75));
    smooth_err.Add(std::abs(smoothed[i] - 1.75));
  }
  EXPECT_LT(smooth_err.mean(), raw_err.mean());
}

TEST(LaneLearnerTest, HandlesMissingDetections) {
  LaneObservationTrack track;
  double nan = std::numeric_limits<double>::quiet_NaN();
  track.offsets = {nan, 1.0, nan, nan, 1.2, 1.1, nan};
  LaneLearner learner({});
  auto smoothed = learner.SmoothTrack(track);
  ASSERT_EQ(smoothed.size(), track.offsets.size());
  for (size_t i = 1; i < smoothed.size(); ++i) {
    EXPECT_FALSE(std::isnan(smoothed[i])) << i;
    EXPECT_NEAR(smoothed[i], 1.1, 0.5);
  }
}

TEST(LaneLearnerTest, LearnsGeometryFromManyTracks) {
  Rng rng(35);
  // True lane marking at offset 1.75 with a bump between stations 40-60.
  auto true_offset = [](size_t i) {
    if (i >= 40 && i < 60) return 1.75 + 0.8;
    return 1.75;
  };
  std::vector<LaneObservationTrack> tracks;
  for (int t = 0; t < 12; ++t) {
    LaneObservationTrack track;
    track.offsets.resize(100);
    for (size_t i = 0; i < 100; ++i) {
      if (rng.Bernoulli(0.15)) {
        track.offsets[i] = std::numeric_limits<double>::quiet_NaN();
      } else {
        track.offsets[i] = true_offset(i) + rng.Normal(0.0, 0.4);
      }
    }
    tracks.push_back(std::move(track));
  }
  LaneLearner learner({});
  auto learned = learner.LearnOffsets(tracks);
  ASSERT_EQ(learned.size(), 100u);
  RunningStats err;
  for (size_t i = 5; i < 95; ++i) {
    ASSERT_FALSE(std::isnan(learned[i])) << i;
    err.Add(std::abs(learned[i] - true_offset(i)));
  }
  EXPECT_LT(err.mean(), 0.25);
  // The bump is actually recovered (not smoothed away).
  EXPECT_GT(learned[50], 2.1);
  EXPECT_LT(learned[20], 2.1);

  // Geometry realization follows the reference.
  LineString ref({{0, 0}, {500, 0}});
  LineString geometry = learner.RealizeGeometry(ref, learned, 5.0);
  EXPECT_GT(geometry.size(), 50u);
  EXPECT_NEAR(geometry[10].y, learned[10], 1e-9);
}

TEST(LaneLearnerTest, InsufficientCoverageGivesNan) {
  std::vector<LaneObservationTrack> tracks(2);
  tracks[0].offsets.assign(10, 1.0);
  tracks[1].offsets.assign(10, 1.1);
  LaneLearner::Options opt;
  opt.min_tracks = 3;
  LaneLearner learner(opt);
  auto learned = learner.LearnOffsets(tracks);
  for (double v : learned) EXPECT_TRUE(std::isnan(v));
}

TEST(AerialFusionTest, FusionBeatsBothBaselines) {
  HdMap map = StraightRoad();
  Rng rng(36);
  const Lanelet& lane = map.lanelets().begin()->second;

  // Aerial estimate with a known lateral georeferencing error.
  AerialRoadEstimate aerial =
      DecodeAerialWithOffset(lane, 0.5, {0.8, -1.6});
  double aerial_err = CenterlineError(aerial.centerline, lane.centerline);
  EXPECT_GT(aerial_err, 1.0);  // The lateral geo error is visible.

  // Ground observations from several GPS+IMU vehicles: each has its own
  // constant bias, which averages out across the crowd.
  std::vector<GroundObservation> ground;
  for (int vehicle = 0; vehicle < 6; ++vehicle) {
    GpsSensor gps({1.2, 1.0, 0.0}, rng);
    for (double s = 0.0; s < lane.centerline.Length(); s += 8.0) {
      Vec2 truth = lane.centerline.PointAt(s);
      GroundObservation obs;
      obs.estimated_pose = Pose2(gps.Measure(truth, rng), 0.0);
      obs.detected_center_offset = rng.Normal(0.0, 0.1);
      ground.push_back(obs);
    }
  }
  LineString poses_only = MapFromPosesOnly(ground);
  double poses_err = CenterlineError(poses_only, lane.centerline);

  LineString fused = FuseAerialAndGround(aerial, ground);
  double fused_err = CenterlineError(fused, lane.centerline);

  EXPECT_LT(fused_err, poses_err);
  EXPECT_LT(fused_err, aerial_err);
  EXPECT_LT(fused_err, 0.8);
}

}  // namespace
}  // namespace hdmap
