file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_slamcu.dir/bench_fig2_slamcu.cc.o"
  "CMakeFiles/bench_fig2_slamcu.dir/bench_fig2_slamcu.cc.o.d"
  "bench_fig2_slamcu"
  "bench_fig2_slamcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_slamcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
