# Empty dependencies file for bench_e1_crowdsourced_creation.
# This may be replaced when dependencies are built.
