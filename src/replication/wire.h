#ifndef HDMAP_REPLICATION_WIRE_H_
#define HDMAP_REPLICATION_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/tile_store.h"

namespace hdmap {

/// Payload formats of the replication plane (net/protocol.h routes them:
/// kReplicate carries a ReplShipBatch and acks with a ReplAck; kCatchUp
/// carries a ReplCatchUp and acks the same way). All integers are
/// little-endian, strings are u32-length-prefixed, and the whole payload
/// rides inside a request/response frame whose CRC covers it — so a torn
/// or bit-flipped shipment either fails the frame CRC or fails these
/// decoders' bounds/validity checks, and the follower nacks instead of
/// applying garbage.

/// What one replication log record carries.
enum class ReplRecordKind : uint8_t {
  /// One staged patch; payload is the framed SerializePatch bytes (the
  /// exact WAL payload), applied on the follower via StagePatch.
  kPatch = 0,
  /// A publish marker: "publish everything staged, reaching `version`".
  /// Payload is empty; the follower runs its own Publish and checks it
  /// lands on the same version (byte-determinism makes the result
  /// tile-identical to the leader's).
  kPublish = 1,
};

/// One record of a node's ReplicationLog — the shipped unit.
struct ReplRecord {
  /// 1-based, contiguous per log; the follower position and ack unit.
  uint64_t seq = 0;
  /// Leader term that created the record (fencing bookkeeping).
  uint64_t term = 0;
  ReplRecordKind kind = ReplRecordKind::kPatch;
  /// kPatch: snapshot version current when the patch was staged (the
  /// WAL's version_hint). kPublish: the version the publish produces.
  uint64_t version = 0;
  std::string payload;

  size_t WireSize() const { return 8 + 8 + 1 + 8 + 4 + payload.size(); }
};

/// Leader -> follower: a batch of log records. An empty batch is a
/// heartbeat (it still carries the term and the leader's log end, so a
/// follower can see its lag and the leader stays visibly alive).
struct ReplShipBatch {
  /// The shipping leader's current term; a follower on a higher term
  /// rejects the whole batch (kReplAckStaleTerm) — the fencing rule that
  /// keeps a deposed leader's late records out.
  uint64_t term = 0;
  /// Leader log end at send time.
  uint64_t leader_end_seq = 0;
  std::vector<ReplRecord> records;
};

/// ReplAck::flags bits.
/// The sender's term is older than the follower's: the sender was
/// deposed and must step down; nothing was applied.
inline constexpr uint8_t kReplAckStaleTerm = 0x1;
/// The follower cannot reach the leader's state by log records alone
/// (its position was trimmed, or a publish marker missed its version):
/// send a kCatchUp snapshot.
inline constexpr uint8_t kReplAckNeedCatchUp = 0x2;

/// Follower -> leader: the response payload to kReplicate and kCatchUp.
struct ReplAck {
  uint64_t term = 0;      ///< Follower's current term.
  uint64_t next_seq = 0;  ///< Next record the follower will accept.
  uint64_t version = 0;   ///< Follower's served snapshot version.
  uint8_t flags = 0;
};

/// Leader -> follower: a full snapshot for catch-up. Installing it puts
/// the follower at exactly (`version`, position `resume_seq`): records
/// with seq > resume_seq still apply on top (they are the leader's
/// staged-but-unpublished tail, which a snapshot cannot carry).
struct ReplCatchUp {
  uint64_t term = 0;
  uint64_t resume_seq = 0;
  uint64_t version = 0;
  int64_t published_unix_ms = 0;
  double tile_size_m = 0.0;
  /// Serialized (framed) tile blobs — byte-identical to the leader's
  /// store, so the follower's state is byte-identical after install.
  std::vector<std::pair<TileId, std::string>> tiles;
};

std::string EncodeShipBatch(const ReplShipBatch& batch);
Result<ReplShipBatch> DecodeShipBatch(std::string_view payload);

std::string EncodeAck(const ReplAck& ack);
Result<ReplAck> DecodeAck(std::string_view payload);

std::string EncodeCatchUp(const ReplCatchUp& snapshot);
Result<ReplCatchUp> DecodeCatchUp(std::string_view payload);

}  // namespace hdmap

#endif  // HDMAP_REPLICATION_WIRE_H_
