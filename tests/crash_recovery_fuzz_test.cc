// Seeded crash-recovery fuzzing over the durability layer. Each iteration
// runs a writer MapService with randomized fault injection at the storage
// seams (torn checkpoint/manifest/WAL writes, failed appends), "kills" it
// (destruction — only the data_dir survives), optionally inflicts
// post-mortem damage (truncated WAL tail, scribbled or deleted checkpoint
// files — the crash-mid-write kill points), then recovers twice with a
// clean service. The invariants under test:
//
//   1. Recovery never crashes and never serves a torn snapshot: a strict
//      whole-map read of the recovered state always decodes.
//   2. Anything recovery skipped is reported: skipped checkpoints/records
//      imply Health() == kDegraded; zero skips imply kServing.
//   3. Checkpoint + recovery is deterministic: a second recovery of the
//      same data_dir lands on byte-identical tiles at the same version.
//   4. On a fault-free, damage-free run, the recovered state equals the
//      writer's final acked state exactly (published patches plus
//      acked-but-unpublished staged patches).
//
// Iteration count comes from HDMAP_FUZZ_ITERS; the default keeps tier-1
// fast and the tier-2 `crash_recovery_fuzz` registration re-runs the
// binary at full size (see tests/CMakeLists.txt), ideally under
// -DHDMAP_SANITIZE=address,undefined.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/map_patch.h"
#include "core/serialization.h"
#include "service/map_service.h"
#include "storage/patch_wal.h"
#include "storage/snapshot_store.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSeed = 0xD15C0;

size_t FuzzIters() {
  const char* env = std::getenv("HDMAP_FUZZ_ITERS");
  if (env != nullptr) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 25;  // Tier-1 smoke size.
}

class ScopedDataDir {
 public:
  explicit ScopedDataDir(size_t iter) {
    path_ = fs::path(::testing::TempDir()) /
            ("hdmap_crash_fuzz_" + std::to_string(::getpid()) + "_" +
             std::to_string(iter));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedDataDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

MapService::Options ServiceOptions(const std::string& data_dir,
                                   FaultInjector* faults, Rng& rng) {
  MapService::Options opt;
  opt.tile_store.tile_size_m = 100.0;
  opt.fault_injector = faults;
  opt.durability.data_dir = data_dir;
  opt.durability.fsync = FsyncMode::kNever;  // Speed; same code paths.
  opt.durability.checkpoint_every_n_publishes =
      static_cast<uint32_t>(rng.UniformInt(1, 3));
  opt.durability.retention = static_cast<size_t>(rng.UniformInt(1, 3));
  return opt;
}

/// Arms data-plane corruption at the storage write seams and control-plane
/// failures at the WAL append seam. Returns true when any policy was
/// armed. kFailStatus is never armed at the checkpoint seam on purpose:
/// a failed (as opposed to silently corrupted) checkpoint is already
/// covered by unit tests, and keeping the bootstrap checkpoint on disk
/// lets every iteration exercise the recovery path proper.
bool ArmRandomFaults(FaultInjector* faults, Rng& rng) {
  bool armed = false;
  const FaultKind data_kinds[] = {FaultKind::kTornWrite, FaultKind::kBitFlip,
                                  FaultKind::kTruncate};
  for (const char* site :
       {SnapshotStore::kWriteFaultSite, SnapshotStore::kManifestFaultSite,
        PatchWal::kAppendFaultSite}) {
    if (!rng.Bernoulli(0.4)) continue;
    FaultKind kind = data_kinds[rng.UniformInt(0, 2)];
    faults->AddPolicy({site, kind, 0.2 + 0.6 * rng.Uniform()});
    armed = true;
  }
  if (rng.Bernoulli(0.2)) {
    faults->AddPolicy({PatchWal::kAppendFaultSite, FaultKind::kFailStatus,
                       0.3, StatusCode::kInternal});
    armed = true;
  }
  return armed;
}

/// Crash-mid-write kill points applied after the writer died: damage the
/// surviving files directly. Returns true when anything was touched.
bool InflictPostMortemDamage(const fs::path& data_dir, Rng& rng) {
  bool damaged = false;
  fs::path wal = data_dir / "wal" / "patches.wal";
  std::error_code ec;
  if (rng.Bernoulli(0.3) && fs::exists(wal, ec) &&
      fs::file_size(wal, ec) > 1) {
    uint64_t size = fs::file_size(wal);
    fs::resize_file(wal, size - (1 + rng.NextU32() % (size / 2)));
    damaged = true;
  }
  fs::path checkpoints = data_dir / "checkpoints";
  if (fs::exists(checkpoints, ec)) {
    std::vector<fs::path> files;
    for (const auto& entry :
         fs::recursive_directory_iterator(checkpoints)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    if (!files.empty() && rng.Bernoulli(0.3)) {
      const fs::path& victim = files[rng.NextU32() % files.size()];
      if (rng.Bernoulli(0.5)) {
        fs::remove(victim, ec);
      } else {
        std::fstream f(victim,
                       std::ios::in | std::ios::out | std::ios::binary);
        uint64_t size = fs::file_size(victim, ec);
        if (f.good() && size > 0) {
          f.seekp(static_cast<std::streamoff>(rng.NextU32() % size));
          char c = static_cast<char>(rng.NextU32());
          f.write(&c, 1);
        }
      }
      damaged = true;
    }
  }
  return damaged;
}

uint64_t SkippedDuringRecovery(const MapService& service) {
  return service.metrics().GetCounter("storage.checkpoints_invalid")->value() +
         service.metrics().GetCounter("wal.replay_skipped")->value() +
         service.metrics().GetCounter("wal.replay_apply_failures")->value() +
         service.metrics()
             .GetCounter("map_service.errors{DATA_LOSS}")
             ->value();
}

TEST(CrashRecoveryFuzzTest, RecoveryInvariantsHoldUnderRandomFaults) {
  size_t iters = FuzzIters();
  size_t clean_iters = 0;
  for (size_t iter = 0; iter < iters; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    Rng rng(kSeed + iter);
    ScopedDataDir dir(iter);
    FaultInjector faults(kSeed ^ (iter * 2654435761u));
    // Roughly a third of iterations run fault-free so the exact-equality
    // property (invariant 4) gets real coverage.
    bool armed = iter % 3 != 0 && ArmRandomFaults(&faults, rng);

    // --- Phase A: writer lifetime, killed by destruction. ---
    uint64_t writer_version = 0;
    HdMap expected_map;  // Final acked state (published + staged).
    {
      MapService service(ServiceOptions(dir.str(), &faults, rng));
      ASSERT_TRUE(service.Init(StraightRoad(200.0)).ok());
      ElementId sign = service.snapshot()->map.landmarks().begin()->first;
      int rounds = rng.UniformInt(0, 4);
      std::vector<MapPatch> staged_acked;
      for (int r = 0; r < rounds; ++r) {
        MapPatch patch;
        patch.moved_landmarks.push_back(
            {sign, Vec3{10.0 * r, rng.Uniform() * 5.0, 2.0}});
        if (rng.Bernoulli(0.3)) {
          Landmark extra;
          extra.id = 50000 + iter * 100 + r;
          extra.position = {5.0 + r, -4.0, 1.0};
          patch.added_landmarks.push_back(extra);
        }
        // A rejected ack (injected WAL failure) is the caller's problem;
        // only acked patches enter the expectation.
        if (!service.StagePatch(patch).ok()) continue;
        staged_acked.push_back(patch);
        if (rng.Bernoulli(0.6)) {
          if (service.Publish().ok()) staged_acked.clear();
        }
      }
      writer_version = service.version();
      expected_map = service.snapshot()->map;
      for (const MapPatch& patch : staged_acked) {
        ASSERT_TRUE(ApplyPatch(patch, &expected_map).ok());
      }
    }

    // --- Kill points: damage what survived the crash. ---
    bool damaged = InflictPostMortemDamage(dir.path(), rng);
    bool dirty = armed && faults.TotalInjected() > 0;

    // --- Phase B: clean recovery (twice, for determinism). ---
    MapService::Options clean = ServiceOptions(dir.str(), nullptr, rng);
    clean.strict_reads = true;
    MapService recovered(clean);
    ASSERT_TRUE(recovered.Init(StraightRoad(200.0)).ok());
    ASSERT_NE(recovered.snapshot(), nullptr);
    EXPECT_GE(recovered.version(), 1u);

    // Invariant 1: whatever was recovered serves fully intact — a strict
    // read over the whole map must decode every tile.
    auto region =
        recovered.GetRegion(recovered.snapshot()->map.BoundingBox());
    ASSERT_TRUE(region.ok()) << region.status().ToString();

    // Invariant 2: skips are reported, silence means clean.
    uint64_t skipped = SkippedDuringRecovery(recovered);
    EXPECT_EQ(recovered.Health(), skipped > 0 ? ServiceHealth::kDegraded
                                              : ServiceHealth::kServing);
    if (!dirty && !damaged) {
      EXPECT_EQ(skipped, 0u);
      // Invariant 4: nothing acked may be missing or extra.
      EXPECT_GE(recovered.version(), writer_version);
      EXPECT_EQ(SerializeMap(recovered.snapshot()->map),
                SerializeMap(expected_map));
      ++clean_iters;
    }

    // Invariant 3: recovery is deterministic/idempotent — a second
    // recovery (after the first re-checkpointed) lands byte-identical.
    MapService recovered2(ServiceOptions(dir.str(), nullptr, rng));
    ASSERT_TRUE(recovered2.Init(StraightRoad(200.0)).ok());
    EXPECT_EQ(recovered2.version(), recovered.version());
    EXPECT_EQ(recovered2.snapshot()->tiles.RawTilesCopy(),
              recovered.snapshot()->tiles.RawTilesCopy());
  }
  // The exact-equality property must have actually run.
  EXPECT_GT(clean_iters, 0u);
}

}  // namespace
}  // namespace hdmap
