#include "maintenance/slamcu.h"

#include <algorithm>
#include <cmath>

namespace hdmap {

Slamcu::Slamcu(const HdMap* map, const Options& options)
    : map_(map), options_(options) {}

void Slamcu::ProcessFrame(const Pose2& estimated_pose,
                          const std::vector<LandmarkDetection>& detections) {
  double r2 = options_.measurement_sigma * options_.measurement_sigma;

  // Track which in-FOV map features were seen this frame.
  std::map<ElementId, bool> seen;
  for (ElementId id : map_->LandmarksNear(estimated_pose.translation,
                                          options_.fov_range)) {
    const Landmark* lm = map_->FindLandmark(id);
    if (lm == nullptr) continue;
    Vec2 local = estimated_pose.InverseTransformPoint(lm->position.xy());
    if (local.Norm() > options_.fov_range || local.Norm() < 1.0) continue;
    if (std::abs(local.Angle()) > options_.fov_rad / 2.0) continue;
    seen[id] = false;
  }

  for (const LandmarkDetection& det : detections) {
    Vec2 world = estimated_pose.TransformPoint(det.position_vehicle);

    // 1) Does it match an existing map feature?
    const Landmark* matched = nullptr;
    double best_d = options_.association_radius;
    for (ElementId id :
         map_->LandmarksNear(world, options_.association_radius)) {
      const Landmark* lm = map_->FindLandmark(id);
      if (lm == nullptr || lm->type != det.type) continue;
      double d = lm->position.xy().DistanceTo(world);
      if (d < best_d) {
        best_d = d;
        matched = lm;
      }
    }
    if (matched != nullptr) {
      seen[matched->id] = true;
      // Displacement evidence: fuse into a move track when beyond the
      // move threshold.
      if (best_d > options_.move_threshold) {
        Track& track = move_tracks_[matched->id];
        if (track.hits == 0) {
          track.mean = world;
          track.variance = r2;
          track.type = det.type;
          track.map_id = matched->id;
          track.hits = 1;
        } else {
          double k = track.variance / (track.variance + r2);
          track.mean = track.mean + (world - track.mean) * k;
          track.variance *= (1.0 - k);
          ++track.hits;
        }
      }
      continue;
    }

    // 2) New-feature candidate: recursive Bayesian position estimate
    // (the DBN inference of [41] reduced to its Kalman form).
    Track* nearest = nullptr;
    double nearest_d = options_.association_radius;
    for (Track& track : addition_tracks_) {
      if (track.type != det.type) continue;
      double d = track.mean.DistanceTo(world);
      if (d < nearest_d) {
        nearest_d = d;
        nearest = &track;
      }
    }
    if (nearest == nullptr) {
      Track track;
      track.mean = world;
      track.variance = r2;
      track.hits = 1;
      track.type = det.type;
      addition_tracks_.push_back(track);
    } else {
      double k = nearest->variance / (nearest->variance + r2);
      nearest->mean = nearest->mean + (world - nearest->mean) * k;
      nearest->variance *= (1.0 - k);
      ++nearest->hits;
    }
  }

  // 3) Miss accounting for removal evidence.
  for (const auto& [id, was_seen] : seen) {
    if (was_seen) {
      miss_counts_[id] = std::max(0, miss_counts_[id] - 1);
    } else {
      ++miss_counts_[id];
    }
  }
}

std::vector<Slamcu::Track> Slamcu::ConfirmedAdditions() const {
  std::vector<Track> out;
  for (const Track& t : addition_tracks_) {
    if (t.hits >= options_.add_confirmations) out.push_back(t);
  }
  return out;
}

std::vector<ElementId> Slamcu::ConfirmedRemovals() const {
  std::vector<ElementId> out;
  for (const auto& [id, misses] : miss_counts_) {
    if (misses >= options_.remove_confirmations) out.push_back(id);
  }
  return out;
}

std::vector<Slamcu::Track> Slamcu::ConfirmedMoves() const {
  std::vector<Track> out;
  for (const auto& [id, t] : move_tracks_) {
    if (t.hits >= options_.add_confirmations) out.push_back(t);
  }
  return out;
}

MapPatch Slamcu::BuildPatch() const {
  MapPatch patch;
  for (const Track& t : ConfirmedAdditions()) {
    Landmark lm;
    lm.id = next_new_id_++;
    lm.type = t.type;
    lm.position = Vec3(t.mean, 2.2);
    lm.subtype = "slamcu_detected";
    patch.added_landmarks.push_back(std::move(lm));
  }
  for (ElementId id : ConfirmedRemovals()) {
    patch.removed_landmarks.push_back(id);
  }
  for (const Track& t : ConfirmedMoves()) {
    patch.moved_landmarks.push_back({t.map_id, Vec3(t.mean, 2.2)});
  }
  return patch;
}

}  // namespace hdmap
