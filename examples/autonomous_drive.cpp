// autonomous_drive: the full §III application stack on one simulated
// drive — route planning, EKF map localization, lane matching with
// integrity, 6-DoF pose completion, and Frenet local planning around an
// obstacle. The "automated software driver" the paper's introduction
// motivates.

#include <cstdio>

#include "common/statistics.h"
#include "localization/ekf_localizer.h"
#include "localization/lane_matcher.h"
#include "planning/frenet_planner.h"
#include "planning/route_planner.h"
#include "pose/pose_estimator.h"
#include "sim/road_network_generator.h"
#include "sim/sensors.h"
#include "sim/trajectory.h"

int main() {
  using namespace hdmap;
  Rng rng(42);

  // The world: a hilly town (elevation exercises 6-DoF completion).
  TownOptions topt;
  topt.grid_rows = 4;
  topt.grid_cols = 4;
  topt.elevation_amplitude = 6.0;
  auto town = GenerateTown(topt, rng);
  if (!town.ok()) return 1;
  const HdMap& map = *town;

  // 1. Global route across the town.
  RoutingGraph graph = RoutingGraph::Build(map);
  ElementId from = map.MatchToLane({20.0, -1.75}, 10.0)->lanelet_id;
  ElementId to = map.MatchToLane({430.0, 448.0}, 15.0)->lanelet_id;
  auto route = PlanRoute(graph, from, to, RouteAlgorithm::kBhps);
  if (!route.ok()) {
    std::printf("no route: %s\n", route.status().ToString().c_str());
    return 1;
  }
  std::printf("route: %zu lanelets, %.0f s nominal\n",
              route->lanelets.size(), route->cost_seconds);

  // 2. Drive it with sensors + EKF localization + lane matching.
  auto trajectory = DriveRoute(map, route->lanelets, {});
  if (!trajectory.ok()) {
    std::printf("drive failed: %s\n",
                trajectory.status().ToString().c_str());
    return 1;
  }
  GpsSensor gps({1.5, 1.0, 0.005}, rng);
  OdometrySensor odo({});
  LandmarkDetector detector({});
  EkfLocalizer ekf(&map, {});
  LaneMatcher matcher(&map, {});
  ekf.Init((*trajectory)[0].pose, 0.5, 0.02);

  RunningStats gps_err, ekf_err;
  int integrity_steps = 0, matched_lane_ok = 0, total_steps = 0;
  for (size_t i = 1; i < trajectory->size(); ++i) {
    const TimedPose& prev = (*trajectory)[i - 1];
    const TimedPose& cur = (*trajectory)[i];
    auto delta = odo.Measure(prev.pose, cur.pose, rng);
    ekf.Predict(delta.distance, delta.heading_change);
    Vec2 fix = gps.Measure(cur.pose.translation, rng);
    ekf.UpdateGps(fix);
    ekf.UpdateLandmarks(detector.Detect(map, cur.pose, rng));
    auto lane = matcher.Step(ekf.estimate().translation,
                             ekf.estimate().heading, delta.distance);
    ++total_steps;
    gps_err.Add(fix.DistanceTo(cur.pose.translation));
    ekf_err.Add(
        ekf.estimate().translation.DistanceTo(cur.pose.translation));
    if (lane.has_integrity) ++integrity_steps;
    if (lane.lanelet_id == cur.lanelet_id) ++matched_lane_ok;
  }
  std::printf("localization: GPS %.2f m -> EKF %.2f m mean error over "
              "%d steps\n",
              gps_err.mean(), ekf_err.mean(), total_steps);
  std::printf("lane matching: correct lane %.1f%% of steps, integrity "
              "flag on %.1f%%\n",
              100.0 * matched_lane_ok / total_steps,
              100.0 * integrity_steps / total_steps);

  // 3. 6-DoF completion at the final pose (HD map supplies z/pitch/roll).
  Pose3 full_pose = CompleteTo6Dof(map, ekf.estimate());
  std::printf("6-DoF pose: z=%.2f m, pitch=%.4f rad, roll=%.4f rad\n",
              full_pose.translation.z, full_pose.pitch, full_pose.roll);

  // 4. Local planning: a parked obstacle blocks the current lane.
  const Lanelet* lane = map.FindLanelet((*trajectory).back().lanelet_id);
  Obstacle parked{lane->centerline.PointAt(
                      std::min(lane->Length() - 5.0, 25.0)),
                  1.0};
  FrenetPlanner planner({});
  auto plan = planner.Plan(lane->centerline, 0.0, 0.0, {parked});
  if (plan.has_value()) {
    const CandidatePath& chosen = (*plan)[0];
    std::printf("local plan: %zu candidates, chose lateral offset "
                "%.1f m (clearance %.1f m, max curvature %.3f)\n",
                plan->size(), chosen.end_offset,
                chosen.geometry.DistanceTo(parked.position),
                chosen.max_curvature);
  } else {
    std::printf("local plan: lane fully blocked, requesting lane change\n");
  }
  return 0;
}
