file(REMOVE_RECURSE
  "CMakeFiles/hdmap_geometry.dir/kd_tree.cc.o"
  "CMakeFiles/hdmap_geometry.dir/kd_tree.cc.o.d"
  "CMakeFiles/hdmap_geometry.dir/line_fitting.cc.o"
  "CMakeFiles/hdmap_geometry.dir/line_fitting.cc.o.d"
  "CMakeFiles/hdmap_geometry.dir/line_string.cc.o"
  "CMakeFiles/hdmap_geometry.dir/line_string.cc.o.d"
  "CMakeFiles/hdmap_geometry.dir/polygon.cc.o"
  "CMakeFiles/hdmap_geometry.dir/polygon.cc.o.d"
  "CMakeFiles/hdmap_geometry.dir/r_tree.cc.o"
  "CMakeFiles/hdmap_geometry.dir/r_tree.cc.o.d"
  "libhdmap_geometry.a"
  "libhdmap_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmap_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
