// E11 — Tas et al. [10, 11]: HD-map updates for autonomous transfer
// vehicles in smart factories. Paper: comparing the valid HD map with a
// virtual map built from visual sensors reliably identifies new and
// missing safety signs.

#include <cstdio>
#include <numbers>

#include "atv/factory_world.h"
#include "atv/occupancy_grid.h"
#include "atv/sign_update.h"
#include "bench/bench_util.h"
#include "common/statistics.h"
#include "sim/sensors.h"

namespace hdmap {
namespace {

int Run() {
  bench::PrintHeader("E11", "ATV sign updates in a smart factory [10,11]",
                     "new/missing safety signs detected by valid-vs-virtual "
                     "map comparison");

  Rng rng(1601);
  FactoryOptions fopt;
  fopt.width = 100.0;
  fopt.rack_rows = 4;
  fopt.depth = 60.0;
  auto factory = GenerateFactory(fopt, rng);
  if (!factory.ok()) return 1;

  HdMap valid_map = factory->sign_map;
  HdMap world = factory->sign_map;
  // The floor changed: 3 signs removed, 3 added.
  std::vector<ElementId> ids;
  for (const auto& [id, lm] : world.landmarks()) ids.push_back(id);
  int removed = 0;
  for (size_t i = 0; i < ids.size() && removed < 3; i += 5) {
    if (world.RemoveLandmark(ids[i]).ok()) ++removed;
  }
  std::vector<Vec2> added_positions = {{25.0, 4.0}, {60.0, 26.0},
                                       {80.0, 48.0}};
  ElementId next_id = 90000;
  for (const Vec2& p : added_positions) {
    Landmark lm;
    lm.id = next_id++;
    lm.type = LandmarkType::kTrafficSign;
    lm.subtype = "new_safety_sign";
    lm.position = Vec3(p, 2.0);
    (void)world.AddLandmark(std::move(lm));
  }

  // SLAM substrate: the ATV also maintains an occupancy grid of the
  // floor while patrolling (the "improved grid map" of [10]).
  OccupancyGrid grid(factory->extent, 0.25);

  LandmarkDetector::Options det_opt;
  det_opt.max_range = 14.0;
  det_opt.fov_rad = 2.0 * std::numbers::pi;
  det_opt.detection_prob = 0.85;
  det_opt.clutter_rate = 0.05;
  LandmarkDetector detector(det_opt);

  std::printf("  patrol sweep (precision/recall of the change report):\n");
  std::printf("    %-8s %-14s %-14s %-14s %-14s\n", "passes", "new found",
              "new precision", "missing found", "missing prec.");
  int final_ok = 0;
  for (int passes : {1, 2, 4}) {
    AtvSignUpdater updater(&valid_map, {});
    Rng patrol_rng(1700 + passes);
    for (int pass = 0; pass < passes; ++pass) {
      for (const LineString& aisle : factory->aisles) {
        for (double s = 0.0; s < aisle.Length(); s += 2.5) {
          Pose2 pose(aisle.PointAt(s), aisle.HeadingAt(s));
          updater.ProcessFrame(pose,
                               detector.Detect(world, pose, patrol_rng));
          // Grid SLAM rays (72-beam scanner).
          for (int beam = 0; beam < 72; beam += 6) {
            double angle = 2.0 * std::numbers::pi * beam / 72;
            Vec2 dir{std::cos(angle), std::sin(angle)};
            double range =
                CastRay(factory->walls, pose.translation, dir, 25.0);
            grid.IntegrateRay(pose.translation,
                              pose.translation + dir * range,
                              range < 25.0);
          }
        }
      }
    }
    auto report = updater.BuildReport();
    int new_correct = 0;
    for (const Landmark& lm : report.new_signs) {
      for (const Vec2& truth : added_positions) {
        if (lm.position.xy().DistanceTo(truth) < 1.5) {
          ++new_correct;
          break;
        }
      }
    }
    int missing_correct = 0;
    for (ElementId id : report.missing_signs) {
      if (world.FindLandmark(id) == nullptr &&
          valid_map.FindLandmark(id) != nullptr) {
        ++missing_correct;
      }
    }
    double new_prec = report.new_signs.empty()
                          ? 0.0
                          : static_cast<double>(new_correct) /
                                report.new_signs.size();
    double missing_prec = report.missing_signs.empty()
                              ? 0.0
                              : static_cast<double>(missing_correct) /
                                    report.missing_signs.size();
    std::printf("    %-8d %d/3%10s %-14.2f %d/3%10s %-14.2f\n", passes,
                new_correct, "", new_prec, missing_correct, "",
                missing_prec);
    if (passes == 4) {
      final_ok = (new_correct >= 2 && missing_correct >= 2) ? 1 : 0;
    }
  }
  bench::PrintRow("4-pass report finds most changes", "reliable",
                  final_ok ? "yes" : "NO");
  std::printf("  occupancy grid mapped %zu occupied cells while "
              "patrolling\n\n",
              grid.NumOccupied());
  return final_ok ? 0 : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
