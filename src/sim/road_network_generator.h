#ifndef HDMAP_SIM_ROAD_NETWORK_GENERATOR_H_
#define HDMAP_SIM_ROAD_NETWORK_GENERATOR_H_

#include "common/result.h"
#include "common/rng.h"
#include "core/hd_map.h"

namespace hdmap {

/// Options for the procedural town generator. The generated map is the
/// *ground truth* world that sensor models observe and against which every
/// accuracy experiment is scored (substitute for real survey data, see
/// DESIGN.md §4).
struct TownOptions {
  int grid_rows = 4;           ///< Intersection rows.
  int grid_cols = 4;           ///< Intersection columns.
  double block_size = 150.0;   ///< Meters between intersections.
  int lanes_per_direction = 1;
  double lane_width = 3.5;
  double speed_limit_mps = 13.89;  // 50 km/h.
  /// Spacing of roadside speed-limit/advertisement signs along blocks.
  double sign_spacing = 60.0;
  bool traffic_lights = true;
  bool crosswalks = true;
  /// Sinusoidal terrain amplitude (m); 0 for a flat town.
  double elevation_amplitude = 0.0;
  /// Centerline sampling step (m).
  double centerline_step = 5.0;
};

/// Generates a Manhattan-grid town with full physical, relational and
/// topological layers: lane boundaries (solid edges, dashed separators),
/// lanelets with symmetric successor/predecessor links, lane bundles
/// (HiDAM node-edge skeleton), traffic lights, stop lines, crosswalks and
/// roadside signs.
Result<HdMap> GenerateTown(const TownOptions& options, Rng& rng);

/// Options for the highway generator (long corridor workloads: SLAMCU's
/// 20 km sign study, HDMI-Loc's 11 km drive, PCC's 370 km route).
struct HighwayOptions {
  double length = 20000.0;  ///< Meters.
  int lanes_per_direction = 2;
  double lane_width = 3.75;
  double speed_limit_mps = 27.78;  // 100 km/h.
  double sign_spacing = 250.0;     ///< Roadside sign spacing.
  /// Gentle horizontal curvature: heading oscillation amplitude (rad).
  double curve_amplitude = 0.15;
  double curve_wavelength = 2000.0;  ///< Meters.
  /// Rolling-hill elevation amplitude (m) and wavelength (m); drives the
  /// PCC fuel-saving experiment.
  double hill_amplitude = 0.0;
  double hill_wavelength = 3000.0;
  double centerline_step = 10.0;
  /// Segment length per lanelet (the map is chunked for tiling/routing).
  double segment_length = 500.0;
};

/// Generates a divided highway with per-direction lanes, road-edge and
/// marking features, periodic roadside signs and an elevation profile.
Result<HdMap> GenerateHighway(const HighwayOptions& options, Rng& rng);

/// Attaches a dense synthetic survey point cloud to every line feature
/// (points per meter controls the payload that makes conventional HD maps
/// heavy; Pannen et al. [44] report ~10 MB/mile).
void AttachSurveyPayload(HdMap* map, double points_per_meter, Rng& rng);

}  // namespace hdmap

#endif  // HDMAP_SIM_ROAD_NETWORK_GENERATOR_H_
