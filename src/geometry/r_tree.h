#ifndef HDMAP_GEOMETRY_R_TREE_H_
#define HDMAP_GEOMETRY_R_TREE_H_

#include <cstdint>
#include <vector>

#include "geometry/aabb.h"

namespace hdmap {

/// Static R-tree over (AABB, id) pairs built with Sort-Tile-Recursive (STR)
/// bulk loading. Backs range queries over map elements (lanelets, areas).
class RTree {
 public:
  struct Entry {
    Aabb box;
    int64_t id = 0;
  };

  RTree() = default;
  explicit RTree(std::vector<Entry> entries, int node_capacity = 8);

  size_t size() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }

  /// Ids of all entries whose box intersects `query`.
  std::vector<int64_t> Query(const Aabb& query) const;

  /// Ids of all entries whose box contains the point.
  std::vector<int64_t> QueryPoint(const Vec2& p) const;

 private:
  struct Node {
    Aabb box;
    int64_t id = 0;       // Valid for leaves.
    bool leaf = false;
    int first_child = -1;
    int num_children = 0;
  };

  void QueryImpl(int node, const Aabb& q, std::vector<int64_t>& out) const;

  std::vector<Node> nodes_;
  std::vector<int> children_;  // Flattened child-index storage.
  int root_ = -1;
  size_t num_entries_ = 0;
};

}  // namespace hdmap

#endif  // HDMAP_GEOMETRY_R_TREE_H_
