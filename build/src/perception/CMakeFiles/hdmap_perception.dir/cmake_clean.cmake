file(REMOVE_RECURSE
  "CMakeFiles/hdmap_perception.dir/cooperative.cc.o"
  "CMakeFiles/hdmap_perception.dir/cooperative.cc.o.d"
  "CMakeFiles/hdmap_perception.dir/object_detector.cc.o"
  "CMakeFiles/hdmap_perception.dir/object_detector.cc.o.d"
  "CMakeFiles/hdmap_perception.dir/traffic_light_recognition.cc.o"
  "CMakeFiles/hdmap_perception.dir/traffic_light_recognition.cc.o.d"
  "libhdmap_perception.a"
  "libhdmap_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmap_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
