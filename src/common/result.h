#ifndef HDMAP_COMMON_RESULT_H_
#define HDMAP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hdmap {

/// Result<T> holds either a value of type T or a non-OK Status, in the
/// style of arrow::Result / absl::StatusOr. Accessing the value of a
/// failed Result is a programming error (checked by assert in debug).
template <typename T>
class Result {
 public:
  /// Implicit from value (the common, successful path).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  /// Implicit from error status. Must not be OK: an OK status carries no
  /// value and would leave the Result in a meaningless state.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this Result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ is set.
};

}  // namespace hdmap

/// Evaluates `rexpr` (a Result<T>); on failure returns its Status from the
/// enclosing function, otherwise moves the value into `lhs`.
#define HDMAP_ASSIGN_OR_RETURN(lhs, rexpr)               \
  HDMAP_ASSIGN_OR_RETURN_IMPL_(                          \
      HDMAP_RESULT_CONCAT_(result_, __LINE__), lhs, rexpr)

#define HDMAP_RESULT_CONCAT_INNER_(a, b) a##b
#define HDMAP_RESULT_CONCAT_(a, b) HDMAP_RESULT_CONCAT_INNER_(a, b)

#define HDMAP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#endif  // HDMAP_COMMON_RESULT_H_
