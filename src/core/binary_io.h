#ifndef HDMAP_CORE_BINARY_IO_H_
#define HDMAP_CORE_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace hdmap {

/// Append-only little-endian binary writer used by map serialization.
class BufferWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI16(int16_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteString(std::string_view s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    buffer_.append(s.data(), s.size());
  }

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  void WriteRaw(const void* data, size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }
  std::string buffer_;
};

/// Sequential reader over a serialized buffer. All reads are
/// bounds-checked; the first failure latches and subsequent reads return
/// zero values, so callers may batch reads and check status() once.
class BufferReader {
 public:
  explicit BufferReader(std::string_view data) : data_(data) {}

  uint8_t ReadU8() {
    uint8_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  uint32_t ReadU32() {
    uint32_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  uint64_t ReadU64() {
    uint64_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  int64_t ReadI64() {
    int64_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  int32_t ReadI32() {
    int32_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  int16_t ReadI16() {
    int16_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  double ReadF64() {
    double v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  float ReadF32() {
    float v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  std::string ReadString() {
    uint32_t n = ReadU32();
    // A prior latched error must not yield a partial (zero-length) string
    // that looks successfully read; stay failed and return nothing.
    if (!status_.ok() || n > remaining()) {
      Fail();
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// Advances past `n` bytes without decoding them; latches kDataLoss
  /// (without advancing) when fewer than `n` bytes remain.
  void Skip(size_t n) {
    if (!status_.ok() || n > remaining()) {
      Fail();
      return;
    }
    pos_ += n;
  }

  /// Bytes left to read; 0 once an error has latched.
  size_t remaining() const {
    return status_.ok() ? data_.size() - pos_ : 0;
  }

  /// Validates a wire-supplied element count before the caller reserves
  /// or loops: even at `min_element_size` bytes each, `claimed` elements
  /// must fit in the remaining buffer. On failure latches kDataLoss and
  /// returns false — a single flipped count byte then costs one status
  /// check instead of a multi-gigabyte reserve-and-spin.
  bool CheckCount(uint64_t claimed, size_t min_element_size) {
    if (!status_.ok()) return false;
    // Division form: immune to overflow for any claimed/element size.
    if (min_element_size != 0 &&
        claimed > remaining() / min_element_size) {
      status_ = Status::DataLoss(
          "claimed count " + std::to_string(claimed) + " x " +
          std::to_string(min_element_size) + "B exceeds the " +
          std::to_string(remaining()) + " bytes remaining at offset " +
          std::to_string(pos_));
      return false;
    }
    return true;
  }

  bool AtEnd() const { return pos_ >= data_.size(); }
  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

 private:
  void ReadRaw(void* out, size_t n) {
    if (!status_.ok() || pos_ + n > data_.size()) {
      Fail();
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }
  void Fail() {
    if (status_.ok()) {
      status_ = Status::DataLoss("truncated buffer at offset " +
                                 std::to_string(pos_));
    }
  }

  std::string_view data_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace hdmap

#endif  // HDMAP_CORE_BINARY_IO_H_
