#ifndef HDMAP_ATV_SIGN_UPDATE_H_
#define HDMAP_ATV_SIGN_UPDATE_H_

#include <vector>

#include "atv/factory_world.h"
#include "core/feature_layer.h"
#include "core/map_patch.h"
#include "sim/sensors.h"

namespace hdmap {

/// Indoor HD-map sign-update framework (Tas et al. [11]): the ATV patrols
/// the aisles with visual SLAM + sign detection, accumulates a *virtual*
/// HD map of observed signs, and compares it against the *valid* HD map
/// to detect new and missing signs. Confirmed differences are batched
/// into a map update.
class AtvSignUpdater {
 public:
  struct Options {
    /// A virtual-map sign counts once observed this many times.
    int min_observations = 3;
    /// Association radius between virtual and valid signs.
    double match_radius = 2.0;
    /// Valid-map signs passed (within detector range of the path) this
    /// many times without a matching observation are reported missing.
    int min_missed_passes = 3;
    double detector_range = 15.0;
  };

  AtvSignUpdater(const HdMap* valid_map, const Options& options);

  /// Processes one patrol frame: the ATV's estimated pose and the sign
  /// detections of the frame.
  void ProcessFrame(const Pose2& pose,
                    const std::vector<LandmarkDetection>& detections);

  struct Report {
    std::vector<Landmark> new_signs;       ///< In world, not in map.
    std::vector<ElementId> missing_signs;  ///< In map, not in world.
    MapPatch AsPatch() const;
  };

  /// Compares the virtual map built so far against the valid HD map.
  Report BuildReport() const;

  const FeatureLayer& virtual_map() const { return virtual_map_; }

 private:
  const HdMap* valid_map_;
  Options options_;
  FeatureLayer virtual_map_{"atv_virtual"};
  IdAllocator virtual_ids_{5000000};
  std::map<ElementId, int> pass_counts_;     ///< Valid sign in range.
  std::map<ElementId, int> observed_counts_; ///< Valid sign matched.
};

}  // namespace hdmap

#endif  // HDMAP_ATV_SIGN_UPDATE_H_
