file(REMOVE_RECURSE
  "libhdmap_pose.a"
)
