file(REMOVE_RECURSE
  "CMakeFiles/localization_test.dir/localization_test.cc.o"
  "CMakeFiles/localization_test.dir/localization_test.cc.o.d"
  "localization_test"
  "localization_test.pdb"
  "localization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
