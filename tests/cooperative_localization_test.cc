#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"
#include "localization/cooperative_localization.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

TEST(CovarianceIntersectTest, FusedCovarianceNoLargerThanInputs) {
  PositionBelief a{{0, 0}, {4.0, 0.0, 1.0}};
  PositionBelief b{{1, 1}, {1.0, 0.0, 4.0}};
  PositionBelief fused = CovarianceIntersect(a, b);
  EXPECT_LE(fused.cov.Trace(), a.cov.Trace() + 1e-9);
  EXPECT_LE(fused.cov.Trace(), b.cov.Trace() + 1e-9);
  // Mean lies between the inputs.
  EXPECT_GE(fused.mean.x, -0.1);
  EXPECT_LE(fused.mean.x, 1.1);
}

TEST(CovarianceIntersectTest, IdenticalInputsAreIdempotentInMean) {
  PositionBelief a{{3, -2}, {2.0, 0.3, 1.5}};
  PositionBelief fused = CovarianceIntersect(a, a);
  EXPECT_NEAR(fused.mean.x, 3.0, 1e-9);
  EXPECT_NEAR(fused.mean.y, -2.0, 1e-9);
  // CI of identical information must not claim extra confidence.
  EXPECT_GE(fused.cov.Trace(), a.cov.Trace() - 1e-9);
}

TEST(CooperativeLocalizerTest, BiasEstimatorConvergesWithMapFeatures) {
  HdMap map = StraightRoad();
  Rng rng(11);
  CooperativeLocalizer loc(&map, {});
  Vec2 truth{300.0, -1.75};
  Vec2 true_bias{1.8, -1.2};
  ElementId nearest_sign = map.LandmarksNear(truth, 100.0).front();
  const Landmark* sign = map.FindLandmark(nearest_sign);
  for (int step = 0; step < 60; ++step) {
    loc.UpdateGnss(truth + true_bias +
                   Vec2{rng.Normal(0.0, 0.8), rng.Normal(0.0, 0.8)});
    loc.UpdateMapFeature(nearest_sign,
                         truth - sign->position.xy() +
                             Vec2{rng.Normal(0.0, 0.2),
                                  rng.Normal(0.0, 0.2)});
  }
  EXPECT_LT(loc.estimated_gnss_bias().DistanceTo(true_bias), 1.0);
  EXPECT_LT(loc.belief().mean.DistanceTo(truth), 0.5);
}

TEST(CooperativeLocalizerTest, PartnerExchangeImprovesWeakVehicle) {
  HdMap map = StraightRoad();
  Rng rng(12);
  RunningStats solo_err, coop_err;
  for (int run = 0; run < 20; ++run) {
    // Vehicle A is feature-rich (good); vehicle B only has coarse GNSS.
    CooperativeLocalizer a(&map, {});
    CooperativeLocalizer b_solo(&map, {});
    CooperativeLocalizer b_coop(&map, {});
    Vec2 truth_a{200.0, -1.75};
    Vec2 truth_b{230.0, -1.75};
    ElementId sign_id = map.LandmarksNear(truth_a, 100.0).front();
    const Landmark* sign = map.FindLandmark(sign_id);
    for (int step = 0; step < 15; ++step) {
      a.UpdateGnss(truth_a +
                   Vec2{rng.Normal(0.0, 2.0), rng.Normal(0.0, 2.0)});
      a.UpdateMapFeature(sign_id, truth_a - sign->position.xy() +
                                      Vec2{rng.Normal(0.0, 0.2),
                                           rng.Normal(0.0, 0.2)});
      Vec2 coarse = truth_b +
                    Vec2{rng.Normal(0.0, 3.0), rng.Normal(0.0, 3.0)};
      b_solo.UpdateGnss(coarse);
      b_coop.UpdateGnss(coarse);
      // V2V: B measures the relative position of A precisely.
      Vec2 relative = (truth_a - truth_b) +
                      Vec2{rng.Normal(0.0, 0.2), rng.Normal(0.0, 0.2)};
      b_coop.UpdatePartner(a.belief(), relative);
    }
    solo_err.Add(b_solo.belief().mean.DistanceTo(truth_b));
    coop_err.Add(b_coop.belief().mean.DistanceTo(truth_b));
  }
  EXPECT_LT(coop_err.mean(), solo_err.mean());
}

TEST(CooperativeLocalizerTest, CiStaysConsistentUnderEchoLoops) {
  // Two vehicles repeatedly exchange beliefs (information echo). With CI
  // the claimed covariance must remain consistent: the Mahalanobis
  // distance of the truth stays chi2-like (not exploding).
  HdMap map = StraightRoad();
  Rng rng(13);
  int consistent = 0, total = 0;
  for (int run = 0; run < 15; ++run) {
    CooperativeLocalizer a(&map, {});
    CooperativeLocalizer b(&map, {});
    Vec2 truth_a{100.0, -1.75};
    Vec2 truth_b{130.0, -1.75};
    a.UpdateGnss(truth_a + Vec2{rng.Normal(0.0, 2.0),
                                rng.Normal(0.0, 2.0)});
    b.UpdateGnss(truth_b + Vec2{rng.Normal(0.0, 2.0),
                                rng.Normal(0.0, 2.0)});
    // Echo the same information back and forth many times.
    for (int ping = 0; ping < 10; ++ping) {
      Vec2 rel_ab = truth_a - truth_b;
      b.UpdatePartner(a.belief(), rel_ab);
      a.UpdatePartner(b.belief(), -rel_ab);
    }
    ++total;
    // 99.9% chi2(2) bound ~ 13.8; allow margin.
    if (a.MahalanobisSq(truth_a) < 20.0) ++consistent;
  }
  EXPECT_GE(consistent, total - 2);
}

}  // namespace
}  // namespace hdmap
