file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_raster_loc.dir/bench_e6_raster_loc.cc.o"
  "CMakeFiles/bench_e6_raster_loc.dir/bench_e6_raster_loc.cc.o.d"
  "bench_e6_raster_loc"
  "bench_e6_raster_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_raster_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
