#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/raster_layer.h"
#include "core/serialization.h"
#include "core/tile_store.h"
#include "core/wire_frame.h"
#include "sim/road_network_generator.h"

namespace hdmap {
namespace {

HdMap SmallTown() {
  Rng rng(11);
  TownOptions opt;
  opt.grid_rows = 2;
  opt.grid_cols = 3;
  opt.block_size = 120.0;
  auto town = GenerateTown(opt, rng);
  EXPECT_TRUE(town.ok()) << town.status().ToString();
  return std::move(town).value();
}

TEST(SerializationTest, FullRoundTripPreservesEverything) {
  HdMap map = SmallTown();
  std::string blob = SerializeMap(map);
  EXPECT_GT(blob.size(), 1000u);
  auto restored = DeserializeMap(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->landmarks().size(), map.landmarks().size());
  EXPECT_EQ(restored->line_features().size(), map.line_features().size());
  EXPECT_EQ(restored->area_features().size(), map.area_features().size());
  EXPECT_EQ(restored->lanelets().size(), map.lanelets().size());
  EXPECT_EQ(restored->regulatory_elements().size(),
            map.regulatory_elements().size());
  EXPECT_EQ(restored->lane_bundles().size(), map.lane_bundles().size());
  EXPECT_EQ(restored->map_nodes().size(), map.map_nodes().size());
  EXPECT_TRUE(restored->Validate().ok()) << restored->Validate().ToString();
  // Geometry is preserved exactly.
  for (const auto& [id, ll] : map.lanelets()) {
    const Lanelet* rll = restored->FindLanelet(id);
    ASSERT_NE(rll, nullptr);
    ASSERT_EQ(rll->centerline.size(), ll.centerline.size());
    EXPECT_EQ(rll->centerline.front(), ll.centerline.front());
    EXPECT_EQ(rll->centerline.back(), ll.centerline.back());
    EXPECT_EQ(rll->successors, ll.successors);
  }
  // Second serialization is byte-identical (deterministic iteration).
  EXPECT_EQ(SerializeMap(*restored), blob);
}

TEST(SerializationTest, SurveyPayloadRoundTrips) {
  HdMap map = SmallTown();
  Rng rng(5);
  AttachSurveyPayload(&map, 20.0, rng);
  size_t total_points = 0;
  for (const auto& [id, lf] : map.line_features()) {
    total_points += lf.survey_points.size();
  }
  EXPECT_GT(total_points, 1000u);
  std::string blob = SerializeMap(map);
  auto restored = DeserializeMap(blob);
  ASSERT_TRUE(restored.ok());
  size_t restored_points = 0;
  for (const auto& [id, lf] : restored->line_features()) {
    restored_points += lf.survey_points.size();
  }
  EXPECT_EQ(restored_points, total_points);
}

TEST(SerializationTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeMap("not a map").ok());
  EXPECT_FALSE(DeserializeMap("").ok());
  EXPECT_FALSE(DeserializeCompactMap("junk").ok());
}

TEST(SerializationTest, RejectsTruncated) {
  HdMap map = SmallTown();
  std::string blob = SerializeMap(map);
  std::string truncated = blob.substr(0, blob.size() / 2);
  EXPECT_FALSE(DeserializeMap(truncated).ok());
}

TEST(WireFrameTest, Crc32MatchesKnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Incremental == one-shot.
  EXPECT_EQ(Crc32("6789", Crc32("12345")), Crc32("123456789"));
}

TEST(WireFrameTest, WrapUnwrapRoundTrips) {
  std::string framed = WrapFrame("payload bytes");
  EXPECT_EQ(framed.size(), 13u + kWireFrameHeaderSize);
  EXPECT_TRUE(IsFramed(framed));
  auto payload = UnwrapFrame(framed);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(*payload, "payload bytes");
  // Framing is deterministic.
  EXPECT_EQ(WrapFrame("payload bytes"), framed);
}

TEST(WireFrameTest, DetectsEveryHeaderAndPayloadDefect) {
  std::string framed = WrapFrame("some payload");
  // Flip one payload bit: CRC mismatch.
  std::string bad = framed;
  bad[kWireFrameHeaderSize + 3] ^= 0x10;
  EXPECT_EQ(UnwrapFrame(bad).status().code(), StatusCode::kDataLoss);
  // Truncate: length mismatch.
  EXPECT_EQ(UnwrapFrame(std::string_view(framed).substr(0, framed.size() - 1))
                .status()
                .code(),
            StatusCode::kDataLoss);
  // Extend: length mismatch.
  EXPECT_FALSE(UnwrapFrame(framed + "x").ok());
  // Shorter than a header at all.
  EXPECT_FALSE(UnwrapFrame("tiny").ok());
  // Corrupt magic is simply not a frame.
  bad = framed;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(IsFramed(bad));
  EXPECT_FALSE(UnwrapFrame(bad).ok());
}

TEST(SerializationTest, FramedBlobsDetectCorruptionAnywhere) {
  HdMap map = SmallTown();
  std::string blob = SerializeMap(map);
  ASSERT_TRUE(IsFramed(blob));
  // A single flipped bit anywhere in the body must surface as kDataLoss
  // (header defects may also report other frame errors; sample a spread
  // of offsets rather than all of them to keep the test fast).
  for (size_t pos = kWireFrameHeaderSize; pos < blob.size();
       pos += blob.size() / 37 + 1) {
    std::string bad = blob;
    bad[pos] ^= 0x01;
    auto r = DeserializeMap(bad);
    ASSERT_FALSE(r.ok()) << "flip at " << pos << " went undetected";
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  }
}

TEST(SerializationTest, LegacyUnframedBlobsStillDeserialize) {
  HdMap map = SmallTown();
  // The bytes after the frame header are exactly the pre-framing wire
  // format, so stripping the header reconstructs a v1/v2 legacy blob.
  std::string full = SerializeMap(map);
  auto from_legacy = DeserializeMap(
      std::string_view(full).substr(kWireFrameHeaderSize));
  ASSERT_TRUE(from_legacy.ok()) << from_legacy.status().ToString();
  EXPECT_EQ(from_legacy->lanelets().size(), map.lanelets().size());

  std::string compact = SerializeCompactMap(map);
  auto compact_legacy = DeserializeCompactMap(
      std::string_view(compact).substr(kWireFrameHeaderSize));
  ASSERT_TRUE(compact_legacy.ok()) << compact_legacy.status().ToString();
  EXPECT_EQ(compact_legacy->lanelets().size(), map.lanelets().size());

  MapPatch patch;
  Landmark lm;
  lm.id = 4242;
  lm.type = LandmarkType::kTrafficSign;
  lm.position = {1.0, 2.0, 3.0};
  patch.added_landmarks.push_back(lm);
  std::string pblob = SerializePatch(patch);
  auto patch_legacy = DeserializePatch(
      std::string_view(pblob).substr(kWireFrameHeaderSize));
  ASSERT_TRUE(patch_legacy.ok()) << patch_legacy.status().ToString();
  EXPECT_EQ(patch_legacy->added_landmarks.size(), 1u);
  EXPECT_EQ(patch_legacy->added_landmarks[0].id, 4242u);
}

TEST(SerializationTest, InflatedCountsFailWithoutHugeAllocation) {
  HdMap map = SmallTown();
  std::string blob = SerializeMap(map);
  // Overwrite the first count field (just past the frame header and the
  // payload magic+version) with a ludicrous value. The count guard must
  // reject it against the remaining bytes instead of trusting it.
  std::string bad = blob.substr(kWireFrameHeaderSize);  // Legacy path:
  // no CRC to catch the edit, so the guard is load-bearing here.
  ASSERT_GT(bad.size(), 12u);
  bad[8] = static_cast<char>(0xFF);
  bad[9] = static_cast<char>(0xFF);
  bad[10] = static_cast<char>(0xFF);
  bad[11] = static_cast<char>(0xFF);
  auto r = DeserializeMap(bad);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(SerializationTest, CompactIsSmallAndAccurate) {
  HdMap map = SmallTown();
  Rng rng(5);
  AttachSurveyPayload(&map, 50.0, rng);
  std::string full = SerializeMap(map);
  std::string compact = SerializeCompactMap(map);
  EXPECT_LT(compact.size() * 10, full.size());

  auto restored = DeserializeCompactMap(compact);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->lanelets().size(), map.lanelets().size());
  EXPECT_EQ(restored->landmarks().size(), map.landmarks().size());
  // Centerline endpoints are reconstructed to within the quantum plus
  // simplification tolerance.
  for (const auto& [id, ll] : map.lanelets()) {
    const Lanelet* rll = restored->FindLanelet(id);
    ASSERT_NE(rll, nullptr);
    EXPECT_LT(rll->centerline.front().DistanceTo(ll.centerline.front()),
              0.1);
    EXPECT_LT(rll->centerline.back().DistanceTo(ll.centerline.back()), 0.1);
    // Interior shape preserved within tolerance.
    double len = ll.centerline.Length();
    for (double s = 0.0; s < len; s += 10.0) {
      EXPECT_LT(rll->centerline.DistanceTo(ll.centerline.PointAt(s)), 0.15);
    }
  }
  // Topology preserved (successors and symmetric predecessors).
  for (const auto& [id, ll] : map.lanelets()) {
    EXPECT_EQ(restored->FindLanelet(id)->successors, ll.successors);
  }
  EXPECT_TRUE(restored->Validate().ok()) << restored->Validate().ToString();
}

TEST(TileStoreTest, BuildLoadStitch) {
  HdMap map = SmallTown();
  TileStore store(TileStore::Options{.tile_size_m = 128.0});
  ASSERT_TRUE(store.Build(map).ok());
  EXPECT_GT(store.NumTiles(), 1u);
  EXPECT_GT(store.TotalBytes(), 0u);

  // Every lanelet must be found in the tile covering its start point.
  for (const auto& [id, ll] : map.lanelets()) {
    TileId tile = store.TileAt(ll.centerline.front());
    auto loaded = store.LoadTile(tile);
    ASSERT_TRUE(loaded.ok());
    EXPECT_NE(loaded->FindLanelet(id), nullptr);
  }

  // Region stitching returns every element intersecting the region.
  Aabb region = map.BoundingBox();
  auto stitched = store.LoadRegion(region);
  ASSERT_TRUE(stitched.ok());
  EXPECT_EQ(stitched->lanelets().size(), map.lanelets().size());
  EXPECT_EQ(stitched->landmarks().size(), map.landmarks().size());
}

TEST(TileStoreTest, MissingTileIsNotFound) {
  TileStore store(TileStore::Options{.tile_size_m = 100.0});
  EXPECT_EQ(store.LoadTile({55, 55}).status().code(), StatusCode::kNotFound);
}

TEST(TileStoreTest, MortonIsUniqueAndLocal) {
  TileId a{0, 0}, b{1, 0}, c{0, 1}, d{-1, -1};
  EXPECT_NE(a.Morton(), b.Morton());
  EXPECT_NE(a.Morton(), c.Morton());
  EXPECT_NE(a.Morton(), d.Morton());
  EXPECT_NE(b.Morton(), c.Morton());
}

TEST(RasterTest, RasterizeAndSample) {
  HdMap map = SmallTown();
  SemanticRaster raster = RasterizeMap(map, 0.5);
  EXPECT_GT(raster.NumOccupied(), 100u);

  // A lane centerline point must carry the centerline bit.
  const Lanelet& ll = map.lanelets().begin()->second;
  Vec2 mid = ll.centerline.PointAt(ll.centerline.Length() / 2);
  EXPECT_NE(raster.Sample(mid) & kRasterCenterline, 0);

  // A sign position must carry the sign bit.
  for (const auto& [id, lm] : map.landmarks()) {
    if (lm.type == LandmarkType::kTrafficSign) {
      EXPECT_NE(raster.Sample(lm.position.xy()) & kRasterSign, 0);
      break;
    }
  }
}

TEST(RasterTest, MatchScorePeaksAtTruePose) {
  HdMap map = SmallTown();
  SemanticRaster map_raster = RasterizeMap(map, 0.25);

  // Build an observation patch: rasterize a small window around a pose on
  // the road, in the patch's local frame.
  const Lanelet& ll = map.lanelets().begin()->second;
  Vec2 center = ll.centerline.PointAt(20.0);
  double heading = ll.centerline.HeadingAt(20.0);
  Pose2 true_pose(center, heading);

  SemanticRaster patch(Aabb({-15, -15}, {15, 15}), 0.25);
  for (int cy = 0; cy < patch.height(); ++cy) {
    for (int cx = 0; cx < patch.width(); ++cx) {
      Vec2 world = true_pose.TransformPoint(patch.CellCenter(cx, cy));
      uint8_t bits = map_raster.Sample(world);
      if (bits != 0) patch.Set(cx, cy, bits);
    }
  }
  double true_score = map_raster.MatchScore(patch, true_pose);
  Pose2 shifted(center + Vec2{2.0, 1.0}, heading + 0.05);
  double shifted_score = map_raster.MatchScore(patch, shifted);
  EXPECT_GT(true_score, shifted_score);
  EXPECT_GT(true_score, 0.0);
}

TEST(RasterTest, DiffFractionDetectsChange) {
  HdMap map = SmallTown();
  SemanticRaster a = RasterizeMap(map, 0.5);
  EXPECT_EQ(a.DiffFraction(a), 0.0);

  // Remove a couple of landmarks: the raster changes a little.
  HdMap changed = map;
  std::vector<ElementId> ids;
  for (const auto& [id, lm] : changed.landmarks()) ids.push_back(id);
  ASSERT_GE(ids.size(), 2u);
  ASSERT_TRUE(changed.RemoveLandmark(ids[0]).ok());
  ASSERT_TRUE(changed.RemoveLandmark(ids[1]).ok());
  SemanticRaster b = RasterizeMap(changed, 0.5);
  if (a.width() == b.width() && a.height() == b.height()) {
    double diff = a.DiffFraction(b);
    EXPECT_GT(diff, 0.0);
    EXPECT_LT(diff, 0.2);
  }
}

TEST(RasterTest, RleSerializationIsCompact) {
  HdMap map = SmallTown();
  SemanticRaster raster = RasterizeMap(map, 0.5);
  std::string rle = raster.SerializeRle();
  EXPECT_LT(rle.size(), raster.SizeBytes());
  EXPECT_GT(rle.size(), 0u);
}

}  // namespace
}  // namespace hdmap
