#ifndef HDMAP_PLANNING_PCC_H_
#define HDMAP_PLANNING_PCC_H_

#include <vector>

#include "common/result.h"
#include "core/hd_map.h"

namespace hdmap {

/// Road grade as a function of distance along a route.
struct SlopeProfile {
  double station_step = 50.0;    ///< Meters between samples.
  std::vector<double> grades;    ///< dz/ds at each station.

  double Length() const {
    return static_cast<double>(grades.size()) * station_step;
  }
};

/// Samples the grade profile of a lanelet route from the HD map's
/// elevation data (the map input that enables PCC, Chu et al. [61]).
Result<SlopeProfile> BuildSlopeProfile(const HdMap& map,
                                       const std::vector<ElementId>& route,
                                       double station_step = 50.0);

/// Physics-based longitudinal fuel model (rolling + aerodynamic + grade
/// resistance with a Willans-line engine): the standard PCC evaluation
/// surrogate for a real powertrain (DESIGN.md §4).
struct FuelModel {
  double mass_kg = 1800.0;
  double rolling_coeff = 0.009;
  double drag_area = 0.72;        ///< Cd * A, m^2.
  double air_density = 1.2;      ///< kg/m^3.
  /// Willans line: fuel power = idle + engine power / efficiency;
  /// grams per joule of brake energy.
  double grams_per_joule = 7.3e-5;  ///< ~ 1/ (43.5 MJ/kg * 0.315 eff).
  double idle_grams_per_s = 0.25;
  /// Fraction of braking energy recoverable (0 = conventional car).
  double regen_fraction = 0.0;

  /// Traction force (N) needed at speed v (m/s), acceleration a, grade g.
  double TractionForce(double v, double a, double grade) const;
  /// Fuel mass flow (g/s) for the given operating point.
  double FuelRate(double v, double a, double grade) const;
};

/// One step of an executed speed plan.
struct SpeedPlanStep {
  double station = 0.0;
  double speed = 0.0;   ///< m/s entering the station.
  double fuel_g = 0.0;  ///< Fuel burned over the step.
  double time_s = 0.0;
};

struct PccResult {
  std::vector<SpeedPlanStep> plan;
  double total_fuel_g = 0.0;
  double total_time_s = 0.0;
};

/// Constant-set-speed cruise (factory ACC baseline in [61]): holds
/// `set_speed` exactly, paying whatever fuel the grade demands.
PccResult SimulateConstantSpeed(const SlopeProfile& profile,
                                const FuelModel& model, double set_speed);

struct PccOptions {
  double set_speed = 22.2;      ///< m/s (80 km/h).
  double speed_band = 0.10;     ///< Allowed deviation: +-10% of set speed.
  int speed_levels = 21;        ///< Discretization of the band.
  double max_accel = 0.6;       ///< m/s^2.
  double max_decel = 0.8;       ///< m/s^2.
};

/// Predictive cruise control: dynamic-programming speed-profile
/// optimization over the HD-map slope profile, minimizing fuel within a
/// speed band around the set speed (Chu et al. [61] shift-map MPC,
/// reformulated as DP over the spatial horizon).
PccResult OptimizePcc(const SlopeProfile& profile, const FuelModel& model,
                      const PccOptions& options);

}  // namespace hdmap

#endif  // HDMAP_PLANNING_PCC_H_
