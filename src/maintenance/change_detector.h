#ifndef HDMAP_MAINTENANCE_CHANGE_DETECTOR_H_
#define HDMAP_MAINTENANCE_CHANGE_DETECTOR_H_

#include <array>
#include <vector>

#include "common/statistics.h"

namespace hdmap {

/// Localization-health features of one traversal over one road section —
/// what the boosted particle-filter change detector of Pannen et al.
/// [42, 44] extracts from FCD: when the map disagrees with the world,
/// map-relative localization degrades in characteristic ways.
struct SectionFeatures {
  double inlier_ratio = 1.0;      ///< Marking points matching the map.
  double mean_residual = 0.0;     ///< Mean marking-to-map distance.
  double filter_spread = 0.0;     ///< Particle spread (belief health).
  double gps_disagreement = 0.0;  ///< |PF estimate - GPS| average.

  std::array<double, 4> AsArray() const {
    return {inlier_ratio, mean_residual, filter_spread, gps_disagreement};
  }
};

/// A labeled example for training: features + whether the section truly
/// changed.
struct LabeledSection {
  SectionFeatures features;
  bool changed = false;
};

/// AdaBoost over decision stumps — the "boosted" classifier of [42].
class BoostedStumpClassifier {
 public:
  struct Stump {
    int feature = 0;
    double threshold = 0.0;
    /// +1: predict changed when feature > threshold; -1: inverted.
    int polarity = 1;
    double alpha = 0.0;  ///< Vote weight.
  };

  /// Trains `num_rounds` stumps on the labeled set.
  void Train(const std::vector<LabeledSection>& data, int num_rounds = 20);

  /// Boosted score; > 0 means "changed".
  double Score(const SectionFeatures& features) const;
  bool Predict(const SectionFeatures& features) const {
    return Score(features) > 0.0;
  }

  const std::vector<Stump>& stumps() const { return stumps_; }

 private:
  std::vector<Stump> stumps_;
};

/// Multi-traversal aggregation (the key result of [44]: aggregating the
/// per-traversal classifier scores across many traversals of the same
/// section boosts sensitivity/specificity far beyond single-traversal
/// classification). Returns the changed/unchanged decision from the mean
/// boosted score of all traversals over a section.
bool ClassifySectionMultiTraversal(
    const BoostedStumpClassifier& classifier,
    const std::vector<SectionFeatures>& traversals,
    double decision_threshold = 0.0);

}  // namespace hdmap

#endif  // HDMAP_MAINTENANCE_CHANGE_DETECTOR_H_
