#include "atv/scan_matcher.h"

#include <algorithm>

namespace hdmap {

double GridScanMatcher::Score(const OccupancyGrid& grid, const Pose2& pose,
                              const std::vector<Vec2>& hit_points) const {
  if (hit_points.empty()) return 0.0;
  // Neighborhood-max lookup widens the score basin beyond the (thin)
  // occupied wall cells so hill climbing has a gradient to follow from
  // sub-meter initial errors. Nearer matches still score higher via the
  // distance falloff.
  double res = grid.resolution();
  double total = 0.0;
  for (const Vec2& p : hit_points) {
    Vec2 world = pose.TransformPoint(p);
    double best = 0.0;
    for (int dy = -2; dy <= 2; ++dy) {
      for (int dx = -2; dx <= 2; ++dx) {
        double occ = grid.OccupancyAt(world + Vec2{dx * res, dy * res});
        if (occ < options_.occupied_threshold) continue;
        double falloff =
            1.0 / (1.0 + 0.5 * (std::abs(dx) + std::abs(dy)));
        best = std::max(best, occ * falloff);
      }
    }
    total += best;
  }
  return total / static_cast<double>(hit_points.size());
}

GridScanMatcher::MatchResult GridScanMatcher::Refine(
    const OccupancyGrid& grid, const Pose2& predicted,
    const std::vector<Vec2>& hit_points) const {
  MatchResult best;
  best.pose = predicted;
  best.score = Score(grid, predicted, hit_points);

  double step = options_.initial_step;
  double heading_step = options_.initial_heading_step;
  for (int level = 0; level <= options_.halvings; ++level) {
    bool improved = true;
    while (improved) {
      improved = false;
      Pose2 center = best.pose;
      for (double dx : {-step, 0.0, step}) {
        for (double dy : {-step, 0.0, step}) {
          for (double dh : {-heading_step, 0.0, heading_step}) {
            if (dx == 0.0 && dy == 0.0 && dh == 0.0) continue;
            Pose2 candidate(center.translation + Vec2{dx, dy},
                            center.heading + dh);
            double s = Score(grid, candidate, hit_points);
            if (s > best.score + 1e-9) {
              best.score = s;
              best.pose = candidate;
              improved = true;
            }
          }
        }
      }
    }
    step /= 2.0;
    heading_step /= 2.0;
  }
  return best;
}

}  // namespace hdmap
