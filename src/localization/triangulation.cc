#include "localization/triangulation.h"

#include <cmath>
#include <limits>

namespace hdmap {

namespace {

/// Solves the 2x2 normal equations A x = b; false when near-singular.
bool Solve2x2(double a00, double a01, double a11, double b0, double b1,
              Vec2* x) {
  double det = a00 * a11 - a01 * a01;
  if (std::abs(det) < 1e-9) return false;
  x->x = (a11 * b0 - a01 * b1) / det;
  x->y = (a00 * b1 - a01 * b0) / det;
  return true;
}

}  // namespace

Result<Vec2> TriangulatePosition(
    const std::vector<RangeObservation>& observations) {
  if (observations.size() < 3) {
    return Status::InvalidArgument("need at least 3 range observations");
  }
  // Linearize by subtracting the first equation: standard multilateration.
  const Vec2& p0 = observations[0].landmark_world;
  double r0 = observations[0].range;
  double a00 = 0.0, a01 = 0.0, a11 = 0.0, b0 = 0.0, b1 = 0.0;
  for (size_t i = 1; i < observations.size(); ++i) {
    const Vec2& pi = observations[i].landmark_world;
    double ri = observations[i].range;
    double ax = 2.0 * (pi.x - p0.x);
    double ay = 2.0 * (pi.y - p0.y);
    double rhs = (r0 * r0 - ri * ri) + (pi.SquaredNorm() - p0.SquaredNorm());
    a00 += ax * ax;
    a01 += ax * ay;
    a11 += ay * ay;
    b0 += ax * rhs;
    b1 += ay * rhs;
  }
  Vec2 solution;
  if (!Solve2x2(a00, a01, a11, b0, b1, &solution)) {
    return Status::FailedPrecondition("degenerate landmark geometry");
  }
  // One Gauss-Newton refinement step on the nonlinear residuals.
  for (int iter = 0; iter < 5; ++iter) {
    double h00 = 0.0, h01 = 0.0, h11 = 0.0, g0 = 0.0, g1 = 0.0;
    for (const RangeObservation& obs : observations) {
      Vec2 d = solution - obs.landmark_world;
      double dist = d.Norm();
      if (dist < 1e-6) continue;
      double res = dist - obs.range;
      Vec2 j = d / dist;
      h00 += j.x * j.x;
      h01 += j.x * j.y;
      h11 += j.y * j.y;
      g0 += j.x * res;
      g1 += j.y * res;
    }
    Vec2 step;
    if (!Solve2x2(h00, h01, h11, g0, g1, &step)) break;
    solution -= step;
    if (step.Norm() < 1e-6) break;
  }
  return solution;
}

double PredictedPositionSigma(const Vec2& vehicle,
                              const std::vector<Vec2>& landmarks,
                              double range_sigma,
                              double range_noise_growth) {
  if (landmarks.size() < 3) {
    return std::numeric_limits<double>::infinity();
  }
  // Weighted information matrix J^T W J, W_i = 1/sigma_i^2.
  double h00 = 0.0, h01 = 0.0, h11 = 0.0;
  for (const Vec2& lm : landmarks) {
    Vec2 d = vehicle - lm;
    double dist = d.Norm();
    if (dist < 1e-6) continue;
    double sigma_i = range_sigma * (1.0 + range_noise_growth * dist);
    double w = 1.0 / (sigma_i * sigma_i);
    Vec2 j = d / dist;
    h00 += w * j.x * j.x;
    h01 += w * j.x * j.y;
    h11 += w * j.y * j.y;
  }
  double det = h00 * h11 - h01 * h01;
  if (det < 1e-9) return std::numeric_limits<double>::infinity();
  // Covariance = (J^T W J)^-1; report sqrt of its trace (DRMS).
  double trace_inv = (h00 + h11) / det;
  return std::sqrt(trace_inv);
}

}  // namespace hdmap
