# Empty dependencies file for hdmap_pose.
# This may be replaced when dependencies are built.
