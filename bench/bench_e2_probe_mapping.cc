// E2 — Massow et al. [28]: deriving HD maps from vehicular probe data.
// Paper: GPS-only probes reach ~2.4 m accuracy; adding in-vehicle sensor
// data improves to ~1.9 m.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "creation/crowd_mapper.h"
#include "sim/road_network_generator.h"
#include "sim/sensors.h"

namespace hdmap {
namespace {

struct ProbeConfig {
  const char* name;
  double gps_noise;
  double gps_bias;
  double range_noise_frac;
  bool feedback;
};

double RunConfig(const HdMap& map, const Lanelet& lane,
                 const ProbeConfig& config, Rng& rng) {
  LandmarkDetector::Options det_opt;
  det_opt.detection_prob = 0.8;
  det_opt.clutter_rate = 0.05;
  det_opt.range_noise_frac = config.range_noise_frac;
  det_opt.bearing_noise_sigma = 0.02;
  LandmarkDetector detector(det_opt);

  std::vector<CrowdTraversal> traversals;
  for (int t = 0; t < 10; ++t) {
    GpsSensor gps({config.gps_noise, config.gps_bias, 0.0}, rng);
    CrowdTraversal trav;
    for (double s = 0.0; s < lane.Length(); s += 10.0) {
      Pose2 truth(lane.centerline.PointAt(s), lane.centerline.HeadingAt(s));
      trav.estimated_poses.push_back(
          Pose2(gps.Measure(truth.translation, rng), truth.heading));
      trav.detections.push_back(detector.Detect(map, truth, rng));
    }
    traversals.push_back(std::move(trav));
  }
  CrowdMapper::Options mopt;
  mopt.feedback_iterations = config.feedback ? 3 : 0;
  mopt.cluster_radius = 3.5;
  auto mapped = CrowdMapper(mopt).Map(traversals);
  return Mean(ScoreMappedLandmarks(mapped, map));
}

int Run() {
  bench::PrintHeader("E2", "HD maps from vehicular probe data [28]",
                     "GPS-only ~2.4 m vs probe+sensor fusion ~1.9 m");

  Rng rng(501);
  HighwayOptions opt;
  opt.length = 5000.0;
  opt.sign_spacing = 100.0;
  auto hw = GenerateHighway(opt, rng);
  if (!hw.ok()) return 1;
  const Lanelet* lane = nullptr;
  for (const auto& [id, ll] : hw->lanelets()) {
    if (ll.predecessors.empty() && !ll.successors.empty()) {
      lane = &ll;
      break;
    }
  }
  if (lane == nullptr) return 1;

  // GPS-only: raw fixes, coarse detections, no corrective refinement —
  // the "limited probe data" pipeline of [28].
  ProbeConfig gps_only{"gps_only", 2.2, 1.8, 0.05, false};
  // With sensors: odometry smoothing tightens the track (lower effective
  // noise), richer detections, and the corrective-feedback loop runs.
  ProbeConfig with_sensors{"with_sensors", 1.2, 1.0, 0.02, true};

  RunningStats gps_errs, sensor_errs;
  for (int rep = 0; rep < 5; ++rep) {
    Rng rep_rng(600 + rep);
    gps_errs.Add(RunConfig(*hw, *lane, gps_only, rep_rng));
    Rng rep_rng2(700 + rep);
    sensor_errs.Add(RunConfig(*hw, *lane, with_sensors, rep_rng2));
  }

  bench::PrintRow("GPS-only probe map accuracy (m)", "2.4",
                  bench::Fmt("%.2f", gps_errs.mean()));
  bench::PrintRow("probe + vehicle sensors accuracy (m)", "1.9",
                  bench::Fmt("%.2f", sensor_errs.mean()));
  bench::PrintRow("sensor-fusion improvement", "~1.26x",
                  bench::Fmt("%.2fx", gps_errs.mean() /
                                          std::max(1e-9,
                                                   sensor_errs.mean())));
  std::printf("\n");
  return sensor_errs.mean() < gps_errs.mean() ? 0 : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
