#ifndef HDMAP_BENCH_BENCH_UTIL_H_
#define HDMAP_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

namespace hdmap::bench {

/// Prints the standard experiment header used by every bench binary.
inline void PrintHeader(const std::string& id, const std::string& title,
                        const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================\n");
}

/// One "claimed vs measured" row.
inline void PrintRow(const std::string& metric, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-44s  paper: %-18s  measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hdmap::bench

#endif  // HDMAP_BENCH_BENCH_UTIL_H_
