
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bundle_graph.cc" "src/core/CMakeFiles/hdmap_core.dir/bundle_graph.cc.o" "gcc" "src/core/CMakeFiles/hdmap_core.dir/bundle_graph.cc.o.d"
  "/root/repo/src/core/feature_layer.cc" "src/core/CMakeFiles/hdmap_core.dir/feature_layer.cc.o" "gcc" "src/core/CMakeFiles/hdmap_core.dir/feature_layer.cc.o.d"
  "/root/repo/src/core/hd_map.cc" "src/core/CMakeFiles/hdmap_core.dir/hd_map.cc.o" "gcc" "src/core/CMakeFiles/hdmap_core.dir/hd_map.cc.o.d"
  "/root/repo/src/core/map_patch.cc" "src/core/CMakeFiles/hdmap_core.dir/map_patch.cc.o" "gcc" "src/core/CMakeFiles/hdmap_core.dir/map_patch.cc.o.d"
  "/root/repo/src/core/raster_filter.cc" "src/core/CMakeFiles/hdmap_core.dir/raster_filter.cc.o" "gcc" "src/core/CMakeFiles/hdmap_core.dir/raster_filter.cc.o.d"
  "/root/repo/src/core/raster_layer.cc" "src/core/CMakeFiles/hdmap_core.dir/raster_layer.cc.o" "gcc" "src/core/CMakeFiles/hdmap_core.dir/raster_layer.cc.o.d"
  "/root/repo/src/core/routing_graph.cc" "src/core/CMakeFiles/hdmap_core.dir/routing_graph.cc.o" "gcc" "src/core/CMakeFiles/hdmap_core.dir/routing_graph.cc.o.d"
  "/root/repo/src/core/serialization.cc" "src/core/CMakeFiles/hdmap_core.dir/serialization.cc.o" "gcc" "src/core/CMakeFiles/hdmap_core.dir/serialization.cc.o.d"
  "/root/repo/src/core/tile_store.cc" "src/core/CMakeFiles/hdmap_core.dir/tile_store.cc.o" "gcc" "src/core/CMakeFiles/hdmap_core.dir/tile_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/hdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
