file(REMOVE_RECURSE
  "CMakeFiles/online_builder_filter_test.dir/online_builder_filter_test.cc.o"
  "CMakeFiles/online_builder_filter_test.dir/online_builder_filter_test.cc.o.d"
  "online_builder_filter_test"
  "online_builder_filter_test.pdb"
  "online_builder_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_builder_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
