#include "core/wire_frame.h"

#include <array>
#include <cstring>

namespace hdmap {

namespace {

// "HDFR" little-endian: distinct from every legacy payload magic
// ("HDMF"/"HDMC"/"HDMP"), so framed and bare buffers are unambiguous.
constexpr uint32_t kFrameMagic = 0x52464448;

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = MakeCrcTable();

uint32_t ReadHeaderU32(std::string_view data, size_t offset) {
  uint32_t v = 0;
  std::memcpy(&v, data.data() + offset, sizeof(v));
  return v;
}

void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t crc) {
  crc = ~crc;
  for (unsigned char byte : data) {
    crc = kCrcTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

bool IsFramed(std::string_view data) {
  return data.size() >= sizeof(uint32_t) &&
         ReadHeaderU32(data, 0) == kFrameMagic;
}

std::string WrapFrame(std::string_view payload) {
  std::string out;
  out.reserve(kWireFrameHeaderSize + payload.size());
  AppendU32(out, kFrameMagic);
  AppendU32(out, kWireFrameVersion);
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU32(out, Crc32(payload));
  out.append(payload.data(), payload.size());
  return out;
}

Result<std::string_view> UnwrapFrame(std::string_view data) {
  if (data.size() < kWireFrameHeaderSize) {
    return Status::DataLoss("frame truncated: " +
                            std::to_string(data.size()) +
                            " bytes, header needs " +
                            std::to_string(kWireFrameHeaderSize));
  }
  if (ReadHeaderU32(data, 0) != kFrameMagic) {
    return Status::DataLoss("bad frame magic");
  }
  uint32_t version = ReadHeaderU32(data, 4);
  if (version != kWireFrameVersion) {
    return Status::DataLoss("unsupported frame version " +
                            std::to_string(version));
  }
  uint32_t length = ReadHeaderU32(data, 8);
  if (length != data.size() - kWireFrameHeaderSize) {
    return Status::DataLoss(
        "frame length mismatch: header claims " + std::to_string(length) +
        " payload bytes, buffer carries " +
        std::to_string(data.size() - kWireFrameHeaderSize));
  }
  std::string_view payload = data.substr(kWireFrameHeaderSize);
  uint32_t expected_crc = ReadHeaderU32(data, 12);
  uint32_t actual_crc = Crc32(payload);
  if (actual_crc != expected_crc) {
    return Status::DataLoss("frame checksum mismatch (payload corrupted)");
  }
  return payload;
}

}  // namespace hdmap
