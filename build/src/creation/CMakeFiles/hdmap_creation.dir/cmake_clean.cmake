file(REMOVE_RECURSE
  "CMakeFiles/hdmap_creation.dir/aerial_fusion.cc.o"
  "CMakeFiles/hdmap_creation.dir/aerial_fusion.cc.o.d"
  "CMakeFiles/hdmap_creation.dir/crowd_mapper.cc.o"
  "CMakeFiles/hdmap_creation.dir/crowd_mapper.cc.o.d"
  "CMakeFiles/hdmap_creation.dir/lane_learner.cc.o"
  "CMakeFiles/hdmap_creation.dir/lane_learner.cc.o.d"
  "CMakeFiles/hdmap_creation.dir/lidar_pipeline.cc.o"
  "CMakeFiles/hdmap_creation.dir/lidar_pipeline.cc.o.d"
  "CMakeFiles/hdmap_creation.dir/map_generator.cc.o"
  "CMakeFiles/hdmap_creation.dir/map_generator.cc.o.d"
  "CMakeFiles/hdmap_creation.dir/online_map_builder.cc.o"
  "CMakeFiles/hdmap_creation.dir/online_map_builder.cc.o.d"
  "libhdmap_creation.a"
  "libhdmap_creation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmap_creation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
