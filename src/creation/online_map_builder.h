#ifndef HDMAP_CREATION_ONLINE_MAP_BUILDER_H_
#define HDMAP_CREATION_ONLINE_MAP_BUILDER_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/raster_layer.h"
#include "geometry/pose2.h"
#include "sim/sensors.h"

namespace hdmap {

/// On-the-fly local semantic map construction from onboard sensors
/// (HDMapNet [25]: fuse camera/LiDAR streams into a local semantic map
/// instead of relying on a pre-built one). Accumulates per-frame
/// marking returns and landmark detections into an ego-centric rolling
/// semantic raster with per-cell evidence counting.
class OnlineMapBuilder {
 public:
  struct Options {
    double extent = 60.0;       ///< Half-extent of the built map, m.
    double resolution = 0.5;
    /// Evidence needed before a cell's class is emitted.
    int min_evidence = 2;
    double intensity_threshold = 0.5;
  };

  explicit OnlineMapBuilder(const Options& options);

  /// Integrates one frame taken at `pose` (world frame anchors the
  /// rolling map; HDMapNet's ego-frame map is the same content).
  void IntegrateFrame(const Pose2& pose,
                      const std::vector<MarkingPoint>& scan,
                      const std::vector<LandmarkDetection>& detections);

  /// The semantic map built so far: cells with enough evidence, rendered
  /// into a SemanticRaster over the observed region.
  SemanticRaster Build() const;

  /// Intersection-over-union of the built map against a ground-truth
  /// raster (per-class bits collapsed to occupancy) — the segmentation
  /// metric HDMapNet reports.
  static double Iou(const SemanticRaster& built,
                    const SemanticRaster& truth);

  size_t num_frames() const { return num_frames_; }

 private:
  struct CellEvidence {
    int marking = 0;
    int road_edge = 0;
    int sign = 0;
    int light = 0;
  };
  /// Keyed by quantized world cell.
  std::map<std::pair<int, int>, CellEvidence> evidence_;
  Options options_;
  Aabb observed_;
  size_t num_frames_ = 0;
};

}  // namespace hdmap

#endif  // HDMAP_CREATION_ONLINE_MAP_BUILDER_H_
