file(REMOVE_RECURSE
  "CMakeFiles/atv_test.dir/atv_test.cc.o"
  "CMakeFiles/atv_test.dir/atv_test.cc.o.d"
  "atv_test"
  "atv_test.pdb"
  "atv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
