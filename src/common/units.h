#ifndef HDMAP_COMMON_UNITS_H_
#define HDMAP_COMMON_UNITS_H_

#include <cmath>
#include <numbers>

namespace hdmap {

inline constexpr double kMetersPerMile = 1609.344;
inline constexpr double kMetersPerKilometer = 1000.0;
inline constexpr double kGravity = 9.80665;  // m/s^2

constexpr double DegToRad(double deg) {
  return deg * std::numbers::pi / 180.0;
}
constexpr double RadToDeg(double rad) {
  return rad * 180.0 / std::numbers::pi;
}
constexpr double KphToMps(double kph) { return kph / 3.6; }
constexpr double MpsToKph(double mps) { return mps * 3.6; }

/// Wraps an angle to (-pi, pi].
inline double WrapAngle(double rad) {
  const double two_pi = 2.0 * std::numbers::pi;
  double x = std::fmod(rad + std::numbers::pi, two_pi);
  if (x <= 0.0) x += two_pi;
  return x - std::numbers::pi;
}

/// Shortest signed angular difference a - b, wrapped to (-pi, pi].
inline double AngleDiff(double a, double b) { return WrapAngle(a - b); }

}  // namespace hdmap

#endif  // HDMAP_COMMON_UNITS_H_
