#include "creation/crowd_mapper.h"

#include <algorithm>
#include <cmath>

#include "geometry/grid_index.h"

namespace hdmap {

namespace {

/// A world-frame observation tagged with its source traversal.
struct WorldObservation {
  Vec2 world;
  LandmarkType type;
  int traversal = 0;
  int pose_index = 0;
};

/// Greedy grid clustering (DBSCAN-lite): groups observations within
/// `radius` of a growing cluster.
std::vector<std::vector<int>> Cluster(
    const std::vector<WorldObservation>& observations, double radius,
    int min_size) {
  std::vector<std::vector<int>> clusters;
  GridIndex index(radius);
  for (size_t i = 0; i < observations.size(); ++i) {
    index.Insert(observations[i].world, static_cast<int64_t>(i));
  }
  std::vector<bool> assigned(observations.size(), false);
  for (size_t seed = 0; seed < observations.size(); ++seed) {
    if (assigned[seed]) continue;
    std::vector<int> cluster;
    std::vector<size_t> frontier{seed};
    assigned[seed] = true;
    while (!frontier.empty()) {
      size_t cur = frontier.back();
      frontier.pop_back();
      cluster.push_back(static_cast<int>(cur));
      for (const auto& item :
           index.RadiusSearch(observations[cur].world, radius)) {
        size_t other = static_cast<size_t>(item.id);
        if (assigned[other]) continue;
        if (observations[other].type != observations[cur].type) continue;
        assigned[other] = true;
        frontier.push_back(other);
      }
    }
    if (static_cast<int>(cluster.size()) >= min_size) {
      clusters.push_back(std::move(cluster));
    }
  }
  return clusters;
}

Vec2 ClusterMean(const std::vector<WorldObservation>& observations,
                 const std::vector<int>& cluster) {
  Vec2 mean;
  for (int idx : cluster) {
    mean += observations[static_cast<size_t>(idx)].world;
  }
  return mean / static_cast<double>(cluster.size());
}

}  // namespace

std::vector<MappedLandmark> CrowdMapper::Map(
    const std::vector<CrowdTraversal>& traversals) const {
  // Per-traversal corrective bias, refined across feedback iterations.
  std::vector<Vec2> bias(traversals.size());

  std::vector<MappedLandmark> landmarks;
  for (int iter = 0; iter <= options_.feedback_iterations; ++iter) {
    // 1) Project detections into the world with the current bias.
    std::vector<WorldObservation> observations;
    for (size_t t = 0; t < traversals.size(); ++t) {
      const CrowdTraversal& trav = traversals[t];
      for (size_t i = 0; i < trav.estimated_poses.size(); ++i) {
        const Pose2& pose = trav.estimated_poses[i];
        for (const LandmarkDetection& det : trav.detections[i]) {
          WorldObservation obs;
          obs.world = pose.TransformPoint(det.position_vehicle) - bias[t];
          obs.type = det.type;
          obs.traversal = static_cast<int>(t);
          obs.pose_index = static_cast<int>(i);
          observations.push_back(obs);
        }
      }
    }

    // 2) Cluster and 3) triangulate.
    auto clusters = Cluster(observations, options_.cluster_radius,
                            options_.min_cluster_size);
    landmarks.clear();
    landmarks.reserve(clusters.size());
    for (const auto& cluster : clusters) {
      MappedLandmark lm;
      lm.position = ClusterMean(observations, cluster);
      lm.type = observations[static_cast<size_t>(cluster.front())].type;
      lm.support = static_cast<int>(cluster.size());
      landmarks.push_back(lm);
    }
    if (iter == options_.feedback_iterations) break;

    // 4) Corrective feedback: each traversal's mean residual against the
    // current landmark estimates becomes its bias correction.
    std::vector<Vec2> residual_sum(traversals.size());
    std::vector<int> residual_count(traversals.size(), 0);
    GridIndex landmark_index(options_.cluster_radius * 2);
    for (size_t li = 0; li < landmarks.size(); ++li) {
      landmark_index.Insert(landmarks[li].position,
                            static_cast<int64_t>(li));
    }
    for (const WorldObservation& obs : observations) {
      // Nearest current landmark of the same type.
      double best_d = options_.outlier_distance;
      const MappedLandmark* best = nullptr;
      for (const auto& item : landmark_index.RadiusSearch(
               obs.world, options_.outlier_distance)) {
        const MappedLandmark& lm = landmarks[static_cast<size_t>(item.id)];
        if (lm.type != obs.type) continue;
        double d = lm.position.DistanceTo(obs.world);
        if (d < best_d) {
          best_d = d;
          best = &lm;
        }
      }
      if (best == nullptr) continue;
      residual_sum[static_cast<size_t>(obs.traversal)] +=
          obs.world - best->position;
      ++residual_count[static_cast<size_t>(obs.traversal)];
    }
    for (size_t t = 0; t < traversals.size(); ++t) {
      if (residual_count[t] >= 3) {
        bias[t] += residual_sum[t] / static_cast<double>(residual_count[t]);
      }
    }
  }
  return landmarks;
}

std::vector<double> ScoreMappedLandmarks(
    const std::vector<MappedLandmark>& mapped, const HdMap& truth,
    double match_radius, double unmatched_penalty) {
  std::vector<double> errors;
  errors.reserve(mapped.size());
  for (const MappedLandmark& lm : mapped) {
    double best = unmatched_penalty;
    for (ElementId id : truth.LandmarksNear(lm.position, match_radius)) {
      const Landmark* true_lm = truth.FindLandmark(id);
      if (true_lm == nullptr || true_lm->type != lm.type) continue;
      best = std::min(best, true_lm->position.xy().DistanceTo(lm.position));
    }
    errors.push_back(best);
  }
  return errors;
}

}  // namespace hdmap
