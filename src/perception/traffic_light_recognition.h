#ifndef HDMAP_PERCEPTION_TRAFFIC_LIGHT_RECOGNITION_H_
#define HDMAP_PERCEPTION_TRAFFIC_LIGHT_RECOGNITION_H_

#include <deque>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/hd_map.h"
#include "geometry/pose2.h"

namespace hdmap {

enum class LightState {
  kUnknown = 0,
  kRed = 1,
  kYellow = 2,
  kGreen = 3,
};

/// Ground-truth signal program: a fixed red/green/yellow cycle per light,
/// phase-shifted by light id.
class TrafficLightProgram {
 public:
  struct Options {
    double red_s = 20.0;
    double green_s = 15.0;
    double yellow_s = 3.0;
  };

  explicit TrafficLightProgram(const Options& options)
      : options_(options) {}

  /// The true state of light `id` at time t.
  LightState StateAt(ElementId id, double t) const;

 private:
  Options options_;
};

/// One per-frame color detection from the camera stack.
struct LightDetection {
  Vec2 position_vehicle;
  LightState color = LightState::kUnknown;
  ElementId truth_id = kInvalidId;  ///< Scoring only.
  bool is_clutter = false;  ///< Brake light / billboard false positive.
};

/// Camera color-detection model: detects map traffic lights in range/FOV
/// with per-frame color-classification errors, plus clutter detections
/// (the false positives a map-less recognizer must swallow).
class CameraLightDetector {
 public:
  struct Options {
    double max_range = 70.0;
    double fov_rad = 1.4;
    double detection_prob = 0.95;
    double color_error_prob = 0.08;
    double position_noise = 0.5;
    double clutter_rate = 0.6;  ///< Expected clutter detections/frame.
  };

  explicit CameraLightDetector(const Options& options)
      : options_(options) {}

  std::vector<LightDetection> Detect(const HdMap& map,
                                     const TrafficLightProgram& program,
                                     const Pose2& vehicle_pose, double t,
                                     Rng& rng) const;

 private:
  Options options_;
};

/// A recognized light with its filtered state.
struct RecognizedLight {
  ElementId light_id = kInvalidId;
  LightState state = LightState::kUnknown;
  int votes = 0;
};

/// Map-gated traffic-light recognizer (Hirabayashi et al. [33]): the HD
/// map supplies the expected light positions (ROI gating — detections
/// away from mapped lights are discarded) and an inter-frame filter
/// smooths per-frame color flicker. Paper: 97% average precision.
class MapGatedLightRecognizer {
 public:
  struct Options {
    /// A detection must fall within this distance of a mapped light.
    double gate_radius = 2.5;
    /// Sliding vote window (frames) for the inter-frame filter.
    int filter_window = 5;
    /// Minimum votes for the winning color to report a state.
    int min_votes = 3;
    /// When false, gating is disabled (the map-less baseline) and every
    /// detection is attributed to its nearest mapped light regardless of
    /// distance.
    bool use_map_gate = true;
    /// When false, the inter-frame filter is disabled (single-frame).
    bool use_interframe_filter = true;
  };

  MapGatedLightRecognizer(const HdMap* map, const Options& options);

  /// Processes one camera frame; returns the current recognized states.
  std::vector<RecognizedLight> ProcessFrame(
      const Pose2& vehicle_pose,
      const std::vector<LightDetection>& detections);

 private:
  const HdMap* map_;
  Options options_;
  std::map<ElementId, std::deque<LightState>> history_;
};

}  // namespace hdmap

#endif  // HDMAP_PERCEPTION_TRAFFIC_LIGHT_RECOGNITION_H_
