// E7 — Zheng & Wang [49]: geometric analysis of map-feature influence on
// localization. Paper: position error is driven primarily by feature
// count and feature distance — abundant, close, well-spread features
// give the best estimates.

#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "localization/triangulation.h"

namespace hdmap {
namespace {

std::vector<Vec2> Ring(int count, double radius, Rng& rng) {
  std::vector<Vec2> lms;
  for (int i = 0; i < count; ++i) {
    double a = 2.0 * std::numbers::pi * i / count + rng.Uniform(-0.2, 0.2);
    double r = radius * rng.Uniform(0.85, 1.15);
    lms.push_back({r * std::cos(a), r * std::sin(a)});
  }
  return lms;
}

/// Monte-Carlo empirical fix error for the given layout.
double EmpiricalError(const std::vector<Vec2>& landmarks, double sigma0,
                      double growth, Rng& rng) {
  RunningStats err;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<RangeObservation> obs;
    for (const Vec2& lm : landmarks) {
      double dist = lm.Norm();
      double sigma = sigma0 * (1.0 + growth * dist);
      obs.push_back({lm, dist + rng.Normal(0.0, sigma)});
    }
    auto fix = TriangulatePosition(obs);
    if (fix.ok()) err.Add(fix->Norm());  // True position is the origin.
  }
  return err.mean();
}

int Run() {
  bench::PrintHeader(
      "E7", "Geometric analysis of feature influence on localization [49]",
      "error falls with feature count, rises with feature distance; "
      "spread features beat clustered ones");

  Rng rng(1201);
  const double kSigma = 0.3;
  const double kGrowth = 0.02;

  std::printf("  sweep 1 — feature count (ring at 25 m):\n");
  std::printf("    %-8s %-22s %-20s\n", "count", "predicted sigma (m)",
              "empirical error (m)");
  double prev_pred = 1e9;
  bool count_monotone = true;
  for (int count : {3, 4, 6, 9, 14, 20}) {
    auto lms = Ring(count, 25.0, rng);
    double pred = PredictedPositionSigma({0, 0}, lms, kSigma, kGrowth);
    double emp = EmpiricalError(lms, kSigma, kGrowth, rng);
    std::printf("    %-8d %-22.3f %-20.3f\n", count, pred, emp);
    if (pred > prev_pred) count_monotone = false;
    prev_pred = pred;
  }
  bench::PrintRow("error falls with feature count", "yes",
                  count_monotone ? "yes (monotone)" : "mostly");

  std::printf("\n  sweep 2 — feature distance (6 features):\n");
  std::printf("    %-10s %-22s %-20s\n", "radius", "predicted sigma (m)",
              "empirical error (m)");
  prev_pred = 0.0;
  bool dist_monotone = true;
  for (double radius : {10.0, 20.0, 40.0, 60.0, 80.0}) {
    auto lms = Ring(6, radius, rng);
    double pred = PredictedPositionSigma({0, 0}, lms, kSigma, kGrowth);
    double emp = EmpiricalError(lms, kSigma, kGrowth, rng);
    std::printf("    %-10.0f %-22.3f %-20.3f\n", radius, pred, emp);
    if (pred < prev_pred) dist_monotone = false;
    prev_pred = pred;
  }
  bench::PrintRow("error grows with feature distance", "yes",
                  dist_monotone ? "yes (monotone)" : "mostly");

  // Sweep 3: distribution — clustered vs spread at equal count/distance.
  std::vector<Vec2> clustered;
  for (int i = 0; i < 6; ++i) {
    double a = rng.Uniform(-0.3, 0.3);  // All in one narrow bearing cone.
    clustered.push_back({25.0 * std::cos(a), 25.0 * std::sin(a)});
  }
  auto spread = Ring(6, 25.0, rng);
  double pred_clustered =
      PredictedPositionSigma({0, 0}, clustered, kSigma, kGrowth);
  double pred_spread =
      PredictedPositionSigma({0, 0}, spread, kSigma, kGrowth);
  std::printf("\n");
  bench::PrintRow("clustered-bearing layout sigma (m)", "(worse)",
                  bench::Fmt("%.3f", pred_clustered));
  bench::PrintRow("spread (random) layout sigma (m)", "(better)",
                  bench::Fmt("%.3f", pred_spread));
  std::printf("\n");
  return (count_monotone && dist_monotone && pred_spread < pred_clustered)
             ? 0
             : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
