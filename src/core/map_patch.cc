#include "core/map_patch.h"

namespace hdmap {

Status ApplyPatch(const MapPatch& patch, HdMap* map) {
  for (const Landmark& lm : patch.added_landmarks) {
    HDMAP_RETURN_IF_ERROR(map->AddLandmark(lm));
  }
  for (ElementId id : patch.removed_landmarks) {
    HDMAP_RETURN_IF_ERROR(map->RemoveLandmark(id));
  }
  for (const MapPatch::Move& mv : patch.moved_landmarks) {
    HDMAP_RETURN_IF_ERROR(map->MoveLandmark(mv.id, mv.new_position));
  }
  for (const LineFeature& lf : patch.updated_line_features) {
    HDMAP_RETURN_IF_ERROR(map->ReplaceLineFeature(lf));
  }
  for (const Lanelet& ll : patch.updated_lanelets) {
    HDMAP_RETURN_IF_ERROR(map->ReplaceLanelet(ll));
  }
  for (ElementId id : patch.removed_lanelets) {
    HDMAP_RETURN_IF_ERROR(map->RemoveLanelet(id));
  }
  for (const RegulatoryElement& reg : patch.updated_regulatory_elements) {
    HDMAP_RETURN_IF_ERROR(map->ReplaceRegulatoryElement(reg));
  }
  for (ElementId id : patch.removed_regulatory_elements) {
    HDMAP_RETURN_IF_ERROR(map->RemoveRegulatoryElement(id));
  }
  return Status::Ok();
}

MapPatch DiffLandmarks(const HdMap& before, const HdMap& after,
                       double move_tolerance) {
  MapPatch patch;
  for (const auto& [id, lm] : after.landmarks()) {
    const Landmark* old = before.FindLandmark(id);
    if (old == nullptr) {
      patch.added_landmarks.push_back(lm);
    } else if (old->position.DistanceTo(lm.position) > move_tolerance) {
      patch.moved_landmarks.push_back({id, lm.position});
    }
  }
  for (const auto& [id, lm] : before.landmarks()) {
    if (after.FindLandmark(id) == nullptr) {
      patch.removed_landmarks.push_back(id);
    }
  }
  return patch;
}

}  // namespace hdmap
