#include "localization/cooperative_localization.h"

#include <algorithm>
#include <cmath>

namespace hdmap {

namespace {

/// Inverse of a 2x2 symmetric covariance; identity-scaled fallback for
/// near-singular inputs.
Cov2 Invert(const Cov2& c) {
  double det = c.xx * c.yy - c.xy * c.xy;
  if (std::abs(det) < 1e-12) {
    return {1e12, 0.0, 1e12};
  }
  return {c.yy / det, -c.xy / det, c.xx / det};
}

/// Information-form combination: inv(w*inv(A)) etc. handled by caller.
Cov2 Add(const Cov2& a, const Cov2& b) {
  return {a.xx + b.xx, a.xy + b.xy, a.yy + b.yy};
}

Vec2 Apply(const Cov2& m, const Vec2& v) {
  return {m.xx * v.x + m.xy * v.y, m.xy * v.x + m.yy * v.y};
}

}  // namespace

PositionBelief CovarianceIntersect(const PositionBelief& a,
                                   const PositionBelief& b) {
  // Line search over omega in (0, 1) minimizing the fused trace.
  PositionBelief best;
  double best_trace = 1e18;
  for (int i = 1; i < 20; ++i) {
    double w = static_cast<double>(i) / 20.0;
    Cov2 info = Add(Invert(a.cov).Scaled(w), Invert(b.cov).Scaled(1.0 - w));
    Cov2 fused_cov = Invert(info);
    if (fused_cov.Trace() < best_trace) {
      best_trace = fused_cov.Trace();
      Vec2 weighted = Apply(Invert(a.cov).Scaled(w), a.mean) +
                      Apply(Invert(b.cov).Scaled(1.0 - w), b.mean);
      best.cov = fused_cov;
      best.mean = Apply(fused_cov, weighted);
    }
  }
  return best;
}

CooperativeLocalizer::CooperativeLocalizer(const HdMap* map,
                                           const Options& options)
    : map_(map), options_(options) {
  belief_.cov = {100.0, 0.0, 100.0};
}

void CooperativeLocalizer::FuseIndependent(const Vec2& z, double sigma) {
  if (!initialized_) {
    belief_.mean = z;
    belief_.cov = {sigma * sigma, 0.0, sigma * sigma};
    initialized_ = true;
    return;
  }
  Cov2 r{sigma * sigma, 0.0, sigma * sigma};
  Cov2 info = Add(Invert(belief_.cov), Invert(r));
  Cov2 fused = Invert(info);
  Vec2 weighted =
      Apply(Invert(belief_.cov), belief_.mean) + Apply(Invert(r), z);
  belief_.cov = fused;
  belief_.mean = Apply(fused, weighted);
}

void CooperativeLocalizer::UpdateGnss(const Vec2& fix) {
  FuseIndependent(fix - gnss_bias_, options_.gnss_sigma);
}

void CooperativeLocalizer::UpdateMapFeature(
    ElementId landmark_id, const Vec2& measured_offset_from_landmark) {
  const Landmark* lm = map_->FindLandmark(landmark_id);
  if (lm == nullptr) return;
  Vec2 position = lm->position.xy() + measured_offset_from_landmark;
  // Bias estimator [55]: georeferenced features reveal the GNSS bias as
  // the persistent residual between raw fixes and feature-derived
  // positions. The belief mean already tracks the corrected position;
  // pull the bias toward the current (belief - feature) discrepancy.
  if (initialized_) {
    Vec2 residual = belief_.mean - position;
    gnss_bias_ += residual * options_.bias_gain;
  }
  FuseIndependent(position, options_.feature_sigma);
}

void CooperativeLocalizer::UpdatePartner(
    const PositionBelief& partner_belief, const Vec2& relative_position) {
  // Partner's belief transported into an estimate of our own position.
  PositionBelief transported;
  transported.mean = partner_belief.mean - relative_position;
  double r2 = options_.relative_sigma * options_.relative_sigma;
  transported.cov = {partner_belief.cov.xx + r2, partner_belief.cov.xy,
                     partner_belief.cov.yy + r2};
  if (!initialized_) {
    belief_ = transported;
    initialized_ = true;
    return;
  }
  // Unknown correlation (the partner may have fused OUR earlier belief):
  // covariance intersection keeps the result consistent.
  belief_ = CovarianceIntersect(belief_, transported);
}

double CooperativeLocalizer::MahalanobisSq(const Vec2& true_position) const {
  Vec2 e = belief_.mean - true_position;
  Cov2 info = Invert(belief_.cov);
  return e.x * (info.xx * e.x + info.xy * e.y) +
         e.y * (info.xy * e.x + info.yy * e.y);
}

}  // namespace hdmap
