file(REMOVE_RECURSE
  "CMakeFiles/capability_bundle_test.dir/capability_bundle_test.cc.o"
  "CMakeFiles/capability_bundle_test.dir/capability_bundle_test.cc.o.d"
  "capability_bundle_test"
  "capability_bundle_test.pdb"
  "capability_bundle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capability_bundle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
