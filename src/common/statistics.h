#ifndef HDMAP_COMMON_STATISTICS_H_
#define HDMAP_COMMON_STATISTICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace hdmap {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  /// Folds another accumulator into this one (Chan's parallel update), as
  /// if every sample fed to `other` had been fed here. Used to combine
  /// per-shard accumulators on read.
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample (Bessel-corrected) variance, m2/(n-1); 0 with fewer than 2
  /// samples. This is the right estimator when the samples are draws from
  /// a larger population (measurement error, benchmark timings).
  double variance() const;
  /// Population variance, m2/n; 0 with fewer than 2 samples. Use when the
  /// accumulator has seen the entire population.
  double population_variance() const;
  /// sqrt(variance()), i.e. the sample standard deviation.
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the p-th percentile (p in [0,100]) by linear interpolation.
/// Returns 0 for an empty input. Copies and sorts internally.
double Percentile(std::vector<double> values, double p);

/// Convenience: Percentile(values, 50).
double Median(std::vector<double> values);

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Root mean square; 0 for an empty input.
double Rmse(const std::vector<double>& errors);

/// Fixed-bin histogram over [lo, hi); samples outside the range are tallied
/// in underflow/overflow counters rather than polluting the edge bins.
/// Degenerate construction (hi <= lo, or num_bins < 1) falls back to a
/// single unit-width bin so Add never divides by zero. Used to regenerate
/// the paper's Fig. 2 error histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, int num_bins);

  void Add(double x);

  /// Adds another histogram's tallies (bins, under/overflow, total) into
  /// this one. Both histograms must have identical geometry (lo, width,
  /// bin count); mismatched geometries are ignored.
  void Merge(const Histogram& other);

  int num_bins() const { return static_cast<int>(counts_.size()); }
  /// All samples seen, including under/overflow.
  size_t total() const { return total_; }
  size_t bin_count(int bin) const { return counts_[bin]; }
  /// Samples below lo / at-or-above hi.
  size_t underflow() const { return underflow_; }
  size_t overflow() const { return overflow_; }
  double bin_lo(int bin) const { return lo_ + bin * width_; }
  double bin_hi(int bin) const { return lo_ + (bin + 1) * width_; }

  /// ASCII rendering, one row per bin: "[lo, hi)  count  ####", plus
  /// trailing "underflow"/"overflow" rows when nonzero.
  std::string ToAscii(int max_bar_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
  size_t underflow_ = 0;
  size_t overflow_ = 0;
};

/// Confusion-matrix tallies for binary classifiers (change detection,
/// sign updates, ...).
struct BinaryConfusion {
  size_t tp = 0;
  size_t fp = 0;
  size_t tn = 0;
  size_t fn = 0;

  void Add(bool predicted, bool actual);
  /// TPR = tp / (tp + fn); 0 when no positives.
  double Sensitivity() const;
  /// TNR = tn / (tn + fp); 0 when no negatives.
  double Specificity() const;
  double Precision() const;
  double Accuracy() const;
  double F1() const;
};

}  // namespace hdmap

#endif  // HDMAP_COMMON_STATISTICS_H_
