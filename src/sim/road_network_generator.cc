#include "sim/road_network_generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/ids.h"

namespace hdmap {

namespace {

/// Samples a straight centerline from a to b every `step` meters.
LineString StraightLine(const Vec2& a, const Vec2& b, double step) {
  double len = a.DistanceTo(b);
  int n = std::max(1, static_cast<int>(std::round(len / step)));
  std::vector<Vec2> pts;
  pts.reserve(static_cast<size_t>(n) + 1);
  for (int i = 0; i <= n; ++i) {
    pts.push_back(Lerp(a, b, static_cast<double>(i) / n));
  }
  return LineString(std::move(pts));
}

/// Quadratic Bezier through control point c (intersection connectors).
LineString BezierLine(const Vec2& a, const Vec2& c, const Vec2& b,
                      int samples) {
  std::vector<Vec2> pts;
  pts.reserve(static_cast<size_t>(samples) + 1);
  for (int i = 0; i <= samples; ++i) {
    double t = static_cast<double>(i) / samples;
    double u = 1.0 - t;
    pts.push_back(a * (u * u) + c * (2.0 * u * t) + b * (t * t));
  }
  return LineString(std::move(pts));
}

double TerrainElevation(const Vec2& p, double amplitude, double wavelength) {
  if (amplitude <= 0.0) return 0.0;
  double k = 2.0 * std::numbers::pi / wavelength;
  return amplitude * std::sin(p.x * k) * std::cos(p.y * k);
}

void FillElevationProfile(Lanelet* lanelet, double amplitude,
                          double wavelength) {
  if (amplitude <= 0.0) return;
  const int kStations = 16;
  lanelet->elevation_profile.resize(kStations);
  double len = lanelet->centerline.Length();
  for (int i = 0; i < kStations; ++i) {
    Vec2 p = lanelet->centerline.PointAt(len * i / (kStations - 1));
    lanelet->elevation_profile[static_cast<size_t>(i)] =
        TerrainElevation(p, amplitude, wavelength);
  }
}

/// Links `from` -> `to` with symmetric predecessor back-reference.
void LinkLanelets(HdMap* map, ElementId from, ElementId to) {
  Lanelet* a = map->FindMutableLanelet(from);
  Lanelet* b = map->FindMutableLanelet(to);
  if (a == nullptr || b == nullptr) return;
  a->successors.push_back(to);
  b->predecessors.push_back(from);
}

}  // namespace

Result<HdMap> GenerateTown(const TownOptions& opt, Rng& rng) {
  if (opt.grid_rows < 2 || opt.grid_cols < 2) {
    return Status::InvalidArgument("town grid must be at least 2x2");
  }
  if (opt.lanes_per_direction < 1 || opt.lane_width <= 0.0) {
    return Status::InvalidArgument("invalid lane configuration");
  }
  HdMap map;
  IdAllocator ids;
  const int n = opt.lanes_per_direction;
  const double w = opt.lane_width;
  const double road_half_width = n * w;
  // Keep lane geometry out of the intersection box.
  const double margin = road_half_width + 4.0;

  auto node_pos = [&](int r, int c) {
    return Vec2{c * opt.block_size, r * opt.block_size};
  };

  // Intersection nodes.
  std::vector<std::vector<ElementId>> node_id(
      static_cast<size_t>(opt.grid_rows),
      std::vector<ElementId>(static_cast<size_t>(opt.grid_cols)));
  for (int r = 0; r < opt.grid_rows; ++r) {
    for (int c = 0; c < opt.grid_cols; ++c) {
      MapNode node;
      node.id = ids.Next();
      node.position = node_pos(r, c);
      node_id[static_cast<size_t>(r)][static_cast<size_t>(c)] = node.id;
      HDMAP_RETURN_IF_ERROR(map.AddMapNode(std::move(node)));
    }
  }

  // Directed approach/departure lane bookkeeping per node, used to build
  // intersection connectors afterwards. Keyed by node id.
  struct DirectedLane {
    ElementId lanelet = kInvalidId;
    Vec2 endpoint;      // Entry (for approaches) / start (for departures).
    double heading = 0.0;
  };
  std::map<ElementId, std::vector<DirectedLane>> approaches;
  std::map<ElementId, std::vector<DirectedLane>> departures;

  // One road segment between two adjacent nodes.
  auto build_segment = [&](ElementId node_a, ElementId node_b,
                           const Vec2& a, const Vec2& b) -> Status {
    Vec2 dir = (b - a).Normalized();
    Vec2 perp = dir.Perp();
    Vec2 a_trim = a + dir * margin;
    Vec2 b_trim = b - dir * margin;

    LaneBundle bundle;
    bundle.id = ids.Next();
    bundle.from_node = node_a;
    bundle.to_node = node_b;

    // Physical boundaries for the whole road: edges, center divider, and
    // dashed separators between same-direction lanes.
    auto add_line = [&](double offset, LineType type,
                        double reflectivity) -> ElementId {
      LineFeature lf;
      lf.id = ids.Next();
      lf.type = type;
      lf.reflectivity = reflectivity;
      lf.geometry = StraightLine(a_trim + perp * offset,
                                 b_trim + perp * offset,
                                 opt.centerline_step);
      ElementId id = lf.id;
      Status s = map.AddLineFeature(std::move(lf));
      return s.ok() ? id : kInvalidId;
    };

    ElementId left_edge = add_line(road_half_width, LineType::kRoadEdge, 0.3);
    ElementId right_edge =
        add_line(-road_half_width, LineType::kRoadEdge, 0.3);
    ElementId divider = add_line(0.0, LineType::kSolidLaneMarking, 0.85);
    std::vector<ElementId> fwd_separators;  // Offsets -w, -2w, ...
    std::vector<ElementId> bwd_separators;  // Offsets +w, +2w, ...
    for (int i = 1; i < n; ++i) {
      fwd_separators.push_back(
          add_line(-i * w, LineType::kDashedLaneMarking, 0.8));
      bwd_separators.push_back(
          add_line(i * w, LineType::kDashedLaneMarking, 0.8));
    }

    // Forward lanes (a -> b) sit right of the divider; backward lanes
    // left (right-hand traffic).
    for (int i = 0; i < n; ++i) {
      double offset = -(i + 0.5) * w;
      Lanelet ll;
      ll.id = ids.Next();
      ll.centerline = StraightLine(a_trim + perp * offset,
                                   b_trim + perp * offset,
                                   opt.centerline_step);
      ll.left_boundary_id = i == 0 ? divider
                                   : fwd_separators[static_cast<size_t>(i - 1)];
      ll.right_boundary_id =
          i == n - 1 ? right_edge : fwd_separators[static_cast<size_t>(i)];
      ll.speed_limit_mps = opt.speed_limit_mps;
      ll.bundle_id = bundle.id;
      FillElevationProfile(&ll, opt.elevation_amplitude, opt.block_size);
      bundle.lanelet_ids.push_back(ll.id);
      approaches[node_b].push_back(
          {ll.id, ll.centerline.back(), dir.Angle()});
      departures[node_a].push_back(
          {ll.id, ll.centerline.front(), dir.Angle()});
      HDMAP_RETURN_IF_ERROR(map.AddLanelet(std::move(ll)));
    }
    for (int i = 0; i < n; ++i) {
      double offset = (i + 0.5) * w;
      Lanelet ll;
      ll.id = ids.Next();
      ll.centerline = StraightLine(b_trim + perp * offset,
                                   a_trim + perp * offset,
                                   opt.centerline_step);
      ll.left_boundary_id = i == 0 ? divider
                                   : bwd_separators[static_cast<size_t>(i - 1)];
      ll.right_boundary_id =
          i == n - 1 ? left_edge : bwd_separators[static_cast<size_t>(i)];
      ll.speed_limit_mps = opt.speed_limit_mps;
      ll.bundle_id = bundle.id;
      FillElevationProfile(&ll, opt.elevation_amplitude, opt.block_size);
      bundle.lanelet_ids.push_back(ll.id);
      approaches[node_a].push_back(
          {ll.id, ll.centerline.back(), (-dir).Angle()});
      departures[node_b].push_back(
          {ll.id, ll.centerline.front(), (-dir).Angle()});
      HDMAP_RETURN_IF_ERROR(map.AddLanelet(std::move(ll)));
    }

    // Same-direction lane-change neighbors. Forward lanes were added
    // first in bundle.lanelet_ids (indices 0..n-1), then backward.
    for (int i = 0; i + 1 < n; ++i) {
      ElementId inner = bundle.lanelet_ids[static_cast<size_t>(i)];
      ElementId outer = bundle.lanelet_ids[static_cast<size_t>(i + 1)];
      map.FindMutableLanelet(inner)->right_neighbor = outer;
      map.FindMutableLanelet(outer)->left_neighbor = inner;
      ElementId inner_b = bundle.lanelet_ids[static_cast<size_t>(n + i)];
      ElementId outer_b = bundle.lanelet_ids[static_cast<size_t>(n + i + 1)];
      map.FindMutableLanelet(inner_b)->right_neighbor = outer_b;
      map.FindMutableLanelet(outer_b)->left_neighbor = inner_b;
    }

    // Roadside speed-limit signs along both sides.
    double seg_len = a_trim.DistanceTo(b_trim);
    int speed_kph = static_cast<int>(std::round(MpsToKph(
        opt.speed_limit_mps)));
    for (double s = opt.sign_spacing / 2; s < seg_len;
         s += opt.sign_spacing) {
      Vec2 base = a_trim + dir * s;
      Landmark sign;
      sign.id = ids.Next();
      sign.type = LandmarkType::kTrafficSign;
      sign.subtype = "speed_limit_" + std::to_string(speed_kph);
      double side = rng.Bernoulli(0.5) ? 1.0 : -1.0;
      sign.position =
          Vec3(base + perp * (side * (road_half_width + 1.0)), 2.2);
      sign.reflectivity = 0.9;
      HDMAP_RETURN_IF_ERROR(map.AddLandmark(std::move(sign)));
    }

    MapNode* na = map.FindMutableMapNode(node_a);
    MapNode* nb = map.FindMutableMapNode(node_b);
    if (na != nullptr) na->bundle_ids.push_back(bundle.id);
    if (nb != nullptr) nb->bundle_ids.push_back(bundle.id);
    return map.AddLaneBundle(std::move(bundle));
  };

  for (int r = 0; r < opt.grid_rows; ++r) {
    for (int c = 0; c < opt.grid_cols; ++c) {
      ElementId here = node_id[static_cast<size_t>(r)][static_cast<size_t>(c)];
      if (c + 1 < opt.grid_cols) {
        HDMAP_RETURN_IF_ERROR(build_segment(
            here, node_id[static_cast<size_t>(r)][static_cast<size_t>(c + 1)],
            node_pos(r, c), node_pos(r, c + 1)));
      }
      if (r + 1 < opt.grid_rows) {
        HDMAP_RETURN_IF_ERROR(build_segment(
            here, node_id[static_cast<size_t>(r + 1)][static_cast<size_t>(c)],
            node_pos(r, c), node_pos(r + 1, c)));
      }
    }
  }

  // Intersection connectors: join every approach lane to every departure
  // lane except the U-turn back onto the reverse of the same street.
  for (const auto& [node, ins] : approaches) {
    const MapNode* nd = map.FindMapNode(node);
    if (nd == nullptr) continue;
    auto dep_it = departures.find(node);
    if (dep_it == departures.end()) continue;
    for (const DirectedLane& in : ins) {
      for (const DirectedLane& out : dep_it->second) {
        double turn = AngleDiff(out.heading, in.heading);
        if (std::abs(std::abs(turn) - std::numbers::pi) < 0.1) {
          continue;  // U-turn.
        }
        Lanelet conn;
        conn.id = ids.Next();
        ElementId conn_id = conn.id;
        conn.centerline =
            BezierLine(in.endpoint, nd->position, out.endpoint, 8);
        conn.speed_limit_mps = opt.speed_limit_mps * 0.6;
        HDMAP_RETURN_IF_ERROR(map.AddLanelet(std::move(conn)));
        LinkLanelets(&map, in.lanelet, conn_id);
        LinkLanelets(&map, conn_id, out.lanelet);
      }
    }

    // Stop lines, traffic lights and crosswalks per approach.
    for (const DirectedLane& in : ins) {
      Vec2 dir{std::cos(in.heading), std::sin(in.heading)};
      Vec2 perp = dir.Perp();
      if (opt.traffic_lights) {
        // Stop line across the approach half of the road.
        LineFeature stop;
        stop.id = ids.Next();
        stop.type = LineType::kStopLine;
        stop.reflectivity = 0.9;
        stop.geometry = LineString(
            {in.endpoint + perp * 0.2, in.endpoint - perp * (n * w - 0.2)});
        ElementId stop_id = stop.id;
        HDMAP_RETURN_IF_ERROR(map.AddLineFeature(std::move(stop)));

        Landmark light;
        light.id = ids.Next();
        light.type = LandmarkType::kTrafficLight;
        light.subtype = "3_state";
        light.position = Vec3(in.endpoint - perp * (n * w + 1.0), 5.0);
        light.reflectivity = 0.6;
        ElementId light_id = light.id;
        HDMAP_RETURN_IF_ERROR(map.AddLandmark(std::move(light)));

        RegulatoryElement reg;
        reg.id = ids.Next();
        reg.type = RegulatoryType::kTrafficLight;
        reg.anchor_id = light_id;
        reg.lanelet_ids.push_back(in.lanelet);
        (void)stop_id;
        ElementId reg_id = reg.id;
        HDMAP_RETURN_IF_ERROR(map.AddRegulatoryElement(std::move(reg)));
        map.FindMutableLanelet(in.lanelet)->regulatory_ids.push_back(reg_id);
      }
      if (opt.crosswalks) {
        // A 3 m-deep stripe across the full road just behind the stop
        // line.
        Vec2 near = in.endpoint + dir * 1.0;
        Vec2 far = in.endpoint + dir * 4.0;
        AreaFeature cw;
        cw.id = ids.Next();
        cw.type = AreaType::kCrosswalk;
        cw.geometry = Polygon({near + perp * road_half_width,
                               far + perp * road_half_width,
                               far - perp * road_half_width,
                               near - perp * road_half_width});
        HDMAP_RETURN_IF_ERROR(map.AddAreaFeature(std::move(cw)));
      }
    }
  }

  return map;
}

Result<HdMap> GenerateHighway(const HighwayOptions& opt, Rng& rng) {
  if (opt.length <= 0.0 || opt.lanes_per_direction < 1) {
    return Status::InvalidArgument("invalid highway options");
  }
  HdMap map;
  IdAllocator ids;
  const int n = opt.lanes_per_direction;
  const double w = opt.lane_width;
  const double median = 1.0;  // Half-width of the central median.

  // Integrate the reference axis with oscillating heading.
  std::vector<Vec2> axis;
  std::vector<double> axis_s;
  {
    Vec2 p{0.0, 0.0};
    double s = 0.0;
    axis.push_back(p);
    axis_s.push_back(0.0);
    while (s < opt.length) {
      double heading =
          opt.curve_amplitude *
          std::sin(2.0 * std::numbers::pi * s / opt.curve_wavelength);
      p += Vec2{std::cos(heading), std::sin(heading)} * opt.centerline_step;
      s += opt.centerline_step;
      axis.push_back(p);
      axis_s.push_back(s);
    }
  }
  LineString axis_line(axis);
  double total_len = axis_line.Length();

  auto elevation_at = [&](double s) {
    if (opt.hill_amplitude <= 0.0) return 0.0;
    return opt.hill_amplitude *
           std::sin(2.0 * std::numbers::pi * s / opt.hill_wavelength);
  };

  int num_segments = std::max(
      1, static_cast<int>(std::ceil(total_len / opt.segment_length)));

  // Per-direction, per-lane chain of lanelets.
  std::vector<std::vector<ElementId>> fwd_chain(
      static_cast<size_t>(n));
  std::vector<std::vector<ElementId>> bwd_chain(
      static_cast<size_t>(n));

  for (int seg = 0; seg < num_segments; ++seg) {
    double s0 = seg * opt.segment_length;
    double s1 = std::min(total_len, s0 + opt.segment_length);
    if (s1 - s0 < 1.0) break;

    // Sample the axis sub-polyline.
    std::vector<Vec2> sub;
    std::vector<double> sub_s;
    for (double s = s0; s < s1; s += opt.centerline_step) {
      sub.push_back(axis_line.PointAt(s));
      sub_s.push_back(s);
    }
    sub.push_back(axis_line.PointAt(s1));
    sub_s.push_back(s1);
    LineString sub_axis(sub);

    // Boundary features for this segment.
    auto add_offset_line = [&](double offset, LineType type,
                               double reflectivity) -> ElementId {
      LineFeature lf;
      lf.id = ids.Next();
      lf.type = type;
      lf.reflectivity = reflectivity;
      lf.geometry = sub_axis.Offset(offset);
      ElementId id = lf.id;
      Status st = map.AddLineFeature(std::move(lf));
      return st.ok() ? id : kInvalidId;
    };

    ElementId fwd_inner =
        add_offset_line(-median, LineType::kSolidLaneMarking, 0.85);
    ElementId bwd_inner =
        add_offset_line(median, LineType::kSolidLaneMarking, 0.85);
    ElementId fwd_edge = add_offset_line(-(median + n * w),
                                         LineType::kRoadEdge, 0.3);
    ElementId bwd_edge =
        add_offset_line(median + n * w, LineType::kRoadEdge, 0.3);
    std::vector<ElementId> fwd_sep, bwd_sep;
    for (int i = 1; i < n; ++i) {
      fwd_sep.push_back(add_offset_line(-(median + i * w),
                                        LineType::kDashedLaneMarking, 0.8));
      bwd_sep.push_back(add_offset_line(median + i * w,
                                        LineType::kDashedLaneMarking, 0.8));
    }

    auto fill_elevation = [&](Lanelet* ll) {
      const int kStations = 16;
      ll->elevation_profile.resize(kStations);
      for (int i = 0; i < kStations; ++i) {
        double s = s0 + (s1 - s0) * i / (kStations - 1);
        ll->elevation_profile[static_cast<size_t>(i)] = elevation_at(s);
      }
    };

    std::vector<ElementId> seg_fwd(static_cast<size_t>(n));
    std::vector<ElementId> seg_bwd(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Lanelet ll;
      ll.id = ids.Next();
      ll.centerline = sub_axis.Offset(-(median + (i + 0.5) * w));
      ll.left_boundary_id =
          i == 0 ? fwd_inner : fwd_sep[static_cast<size_t>(i - 1)];
      ll.right_boundary_id =
          i == n - 1 ? fwd_edge : fwd_sep[static_cast<size_t>(i)];
      ll.speed_limit_mps = opt.speed_limit_mps;
      fill_elevation(&ll);
      seg_fwd[static_cast<size_t>(i)] = ll.id;
      HDMAP_RETURN_IF_ERROR(map.AddLanelet(std::move(ll)));
    }
    for (int i = 0; i < n; ++i) {
      Lanelet ll;
      ll.id = ids.Next();
      ll.centerline = sub_axis.Offset(median + (i + 0.5) * w).Reversed();
      ll.left_boundary_id =
          i == 0 ? bwd_inner : bwd_sep[static_cast<size_t>(i - 1)];
      ll.right_boundary_id =
          i == n - 1 ? bwd_edge : bwd_sep[static_cast<size_t>(i)];
      ll.speed_limit_mps = opt.speed_limit_mps;
      fill_elevation(&ll);
      // Reverse direction: elevation profile must be reversed too.
      Lanelet* stored = nullptr;
      seg_bwd[static_cast<size_t>(i)] = ll.id;
      HDMAP_RETURN_IF_ERROR(map.AddLanelet(std::move(ll)));
      stored = map.FindMutableLanelet(seg_bwd[static_cast<size_t>(i)]);
      std::reverse(stored->elevation_profile.begin(),
                   stored->elevation_profile.end());
    }

    // Lane-change neighbors within the segment.
    for (int i = 0; i + 1 < n; ++i) {
      map.FindMutableLanelet(seg_fwd[static_cast<size_t>(i)])
          ->right_neighbor = seg_fwd[static_cast<size_t>(i + 1)];
      map.FindMutableLanelet(seg_fwd[static_cast<size_t>(i + 1)])
          ->left_neighbor = seg_fwd[static_cast<size_t>(i)];
      map.FindMutableLanelet(seg_bwd[static_cast<size_t>(i)])
          ->right_neighbor = seg_bwd[static_cast<size_t>(i + 1)];
      map.FindMutableLanelet(seg_bwd[static_cast<size_t>(i + 1)])
          ->left_neighbor = seg_bwd[static_cast<size_t>(i)];
    }

    // Chain with the previous segment.
    for (int i = 0; i < n; ++i) {
      if (!fwd_chain[static_cast<size_t>(i)].empty()) {
        LinkLanelets(&map, fwd_chain[static_cast<size_t>(i)].back(),
                     seg_fwd[static_cast<size_t>(i)]);
      }
      fwd_chain[static_cast<size_t>(i)].push_back(
          seg_fwd[static_cast<size_t>(i)]);
      if (!bwd_chain[static_cast<size_t>(i)].empty()) {
        // Backward lanes run end -> start, so the new segment precedes.
        LinkLanelets(&map, seg_bwd[static_cast<size_t>(i)],
                     bwd_chain[static_cast<size_t>(i)].back());
      }
      bwd_chain[static_cast<size_t>(i)].push_back(
          seg_bwd[static_cast<size_t>(i)]);
    }
  }

  // Roadside signs along the forward direction.
  int speed_kph =
      static_cast<int>(std::round(MpsToKph(opt.speed_limit_mps)));
  int sign_counter = 0;
  for (double s = opt.sign_spacing; s < total_len; s += opt.sign_spacing) {
    Vec2 base = axis_line.PointAt(s);
    Vec2 tangent = axis_line.TangentAt(s);
    Vec2 perp = tangent.Perp();
    Landmark sign;
    sign.id = ids.Next();
    sign.type = LandmarkType::kTrafficSign;
    ++sign_counter;
    sign.subtype = sign_counter % 5 == 0
                       ? "exit_info"
                       : "speed_limit_" + std::to_string(speed_kph);
    sign.position =
        Vec3(base - perp * (median + n * w + 1.5), 2.5 + elevation_at(s));
    sign.reflectivity = rng.Uniform(0.85, 0.95);
    HDMAP_RETURN_IF_ERROR(map.AddLandmark(std::move(sign)));
  }

  return map;
}

void AttachSurveyPayload(HdMap* map, double points_per_meter, Rng& rng) {
  std::vector<ElementId> ids;
  for (const auto& [id, lf] : map->line_features()) ids.push_back(id);
  for (ElementId id : ids) {
    const LineFeature* lf = map->FindLineFeature(id);
    LineFeature copy = *lf;
    double len = copy.geometry.Length();
    size_t count = static_cast<size_t>(len * points_per_meter);
    copy.survey_points.clear();
    copy.survey_points.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      Vec2 p = copy.geometry.PointAt(rng.Uniform(0.0, len));
      copy.survey_points.push_back(Vec3{p.x + rng.Normal(0.0, 0.05),
                                        p.y + rng.Normal(0.0, 0.05),
                                        rng.Normal(0.0, 0.02)});
    }
    (void)map->ReplaceLineFeature(std::move(copy));
  }
}

}  // namespace hdmap
