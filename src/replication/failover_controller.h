#ifndef HDMAP_REPLICATION_FAILOVER_CONTROLLER_H_
#define HDMAP_REPLICATION_FAILOVER_CONTROLLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/event_log.h"
#include "common/metrics.h"
#include "replication/node.h"

namespace hdmap {

/// Watches a cluster of ReplicationNodes and performs failover: when the
/// leader dies (process gone) or goes silent (every alive follower's
/// last leader contact is older than `leader_timeout_ms` — the
/// heartbeat-timeout detector), it promotes the most-caught-up reachable
/// follower (max contiguously applied record seq, ties to the lowest
/// node id) under a strictly increasing term. The term is the fence:
/// followers adopt it from the new leader's first batch, after which the
/// deposed leader's late records are rejected as stale.
///
/// Promoting the most-caught-up follower is what closes the loop with
/// semi-synchronous acks: an acked write was applied by at least
/// `min_ack_replicas` followers, so (within the designed tolerance of
/// one failure at a time) the maximum-applied candidate holds every
/// acked write.
///
/// Every decision is recorded: kFailoverDetected when the timeout
/// trips (the degraded window opens), kFailoverComplete when the new
/// leader is installed (detail carries the promoted node, term, and the
/// measured degraded-window duration, also exported as the
/// "repl.failover.last_degraded_window_ms" gauge). The (term -> leader)
/// history is queryable via LeadersByTerm for split-brain auditing, and
/// the monitor continuously cross-checks live roles, counting any
/// second leader observed for one term in `split_brain_observed`.
///
/// The controller also heals membership in steady state: restarted or
/// un-partitioned nodes are re-added to the current leader's follower
/// set, which re-ships (or snapshots) them back into sync.
class FailoverController {
 public:
  struct Options {
    uint32_t poll_interval_ms = 10;
    /// Leader silence (per the alive followers' contact clocks) that
    /// triggers failover.
    uint32_t leader_timeout_ms = 150;
    /// Registry for the "repl.failover.*" instruments; may be null.
    MetricsRegistry* metrics = nullptr;
    size_t event_log_capacity = 256;
  };

  explicit FailoverController(Options options);
  ~FailoverController();

  FailoverController(const FailoverController&) = delete;
  FailoverController& operator=(const FailoverController&) = delete;

  /// Registers a cluster member. All nodes must be added (and Started)
  /// before Start().
  void AddNode(ReplicationNode* node);

  /// Bootstraps the first leader (lowest-id alive node, term 1) and
  /// starts the monitor thread.
  Status Start();
  void Stop();

  ReplicationNode* leader() const;
  uint64_t term() const { return term_.load(); }
  size_t failover_count() const { return failover_count_.load(); }
  double last_degraded_window_ms() const;
  /// Times a live second leader was observed for an already-claimed
  /// term. Stays 0 when fencing works.
  size_t split_brain_observed() const { return split_brain_observed_.load(); }

  /// Complete promotion history: term -> node id. At most one entry can
  /// ever exist per term (the no-split-brain audit surface).
  std::map<uint64_t, int> LeadersByTerm() const;

  const EventLog& event_log() const { return events_; }
  std::vector<EventLog::Event> RecentEvents(size_t max_n = 64) const {
    return events_.Recent(max_n);
  }

 private:
  void MonitorLoop();
  /// One monitor evaluation: detect, fail over, heal membership.
  void Evaluate();
  void Promote(ReplicationNode* dead_leader, double silence_ms);
  std::vector<WalShipper::FollowerInfo> ReachablePeersOf(
      const ReplicationNode* leader) const;

  Options opts_;
  std::vector<ReplicationNode*> nodes_;
  EventLog events_;

  std::atomic<uint64_t> term_{0};
  std::atomic<size_t> failover_count_{0};
  std::atomic<size_t> split_brain_observed_{0};
  int leader_id_ = -1;  // monitor/Start only once running

  mutable std::mutex mu_;  // guards leaders_by_term_ and leader_id_ reads
  std::map<uint64_t, int> leaders_by_term_;

  std::thread monitor_;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  Counter* failovers_ = nullptr;
  Gauge* degraded_window_ms_ = nullptr;
  double last_degraded_window_ms_ = 0.0;  // under mu_
};

}  // namespace hdmap

#endif  // HDMAP_REPLICATION_FAILOVER_CONTROLLER_H_
