# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_index_test[1]_include.cmake")
include("/root/repo/build/tests/line_fitting_test[1]_include.cmake")
include("/root/repo/build/tests/core_map_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/localization_test[1]_include.cmake")
include("/root/repo/build/tests/planning_test[1]_include.cmake")
include("/root/repo/build/tests/creation_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_test[1]_include.cmake")
include("/root/repo/build/tests/perception_test[1]_include.cmake")
include("/root/repo/build/tests/pose_test[1]_include.cmake")
include("/root/repo/build/tests/atv_test[1]_include.cmake")
include("/root/repo/build/tests/raster_diff_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_light_test[1]_include.cmake")
include("/root/repo/build/tests/capability_bundle_test[1]_include.cmake")
include("/root/repo/build/tests/map_generator_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/cooperative_localization_test[1]_include.cmake")
include("/root/repo/build/tests/online_builder_filter_test[1]_include.cmake")
include("/root/repo/build/tests/relocalization_scan_matcher_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/binary_io_test[1]_include.cmake")
include("/root/repo/build/tests/raster_layer_test[1]_include.cmake")
include("/root/repo/build/tests/pure_pursuit_test[1]_include.cmake")
include("/root/repo/build/tests/speed_profile_test[1]_include.cmake")
