# Empty dependencies file for hdmap_localization.
# This may be replaced when dependencies are built.
