#include "core/tile_store.h"

#include <cmath>
#include <limits>
#include <mutex>
#include <set>
#include <shared_mutex>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/serialization.h"

namespace hdmap {

namespace {

uint64_t Part1By1(uint32_t x) {
  uint64_t v = x;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

}  // namespace

uint64_t TileId::Morton() const {
  // Bias to keep coordinates non-negative.
  uint32_t bx = static_cast<uint32_t>(static_cast<int64_t>(x) + (1 << 30));
  uint32_t by = static_cast<uint32_t>(static_cast<int64_t>(y) + (1 << 30));
  return Part1By1(bx) | (Part1By1(by) << 1);
}

TileStore::TileStore(const Options& options)
    : tile_size_(options.tile_size_m),
      format_(options.format),
      cache_capacity_(options.cache_capacity),
      faults_(options.fault_injector) {
  if (options.metrics != nullptr) {
    hits_exported_ = options.metrics->GetCounter("tile_store.cache_hits");
    misses_exported_ = options.metrics->GetCounter("tile_store.cache_misses");
    evictions_exported_ =
        options.metrics->GetCounter("tile_store.cache_evictions");
  }
}

TileStore::TileStore(const TileStore& other)
    : tile_size_(other.tile_size_),
      format_(other.format_),
      tiles_(other.tiles_),
      tile_ids_(other.tile_ids_),
      cache_capacity_(other.cache_capacity_),
      hits_exported_(other.hits_exported_),
      misses_exported_(other.misses_exported_),
      evictions_exported_(other.evictions_exported_),
      faults_(other.faults_) {}

TileStore& TileStore::operator=(const TileStore& other) {
  if (this == &other) return *this;
  tile_size_ = other.tile_size_;
  format_ = other.format_;
  tiles_ = other.tiles_;
  tile_ids_ = other.tile_ids_;
  cache_capacity_ = other.cache_capacity_;
  hits_exported_ = other.hits_exported_;
  misses_exported_ = other.misses_exported_;
  evictions_exported_ = other.evictions_exported_;
  faults_ = other.faults_;
  CacheClear();
  ResetStats();
  return *this;
}

size_t TileStore::TotalBytes() const {
  std::shared_lock<std::shared_mutex> lock(tiles_mu_);
  size_t total = 0;
  for (const auto& [key, blob] : tiles_) total += blob.size();
  return total;
}

TileId TileStore::TileAt(const Vec2& p) const {
  return TileId{static_cast<int32_t>(std::floor(p.x / tile_size_)),
                static_cast<int32_t>(std::floor(p.y / tile_size_))};
}

Result<std::pair<TileId, TileId>> TileStore::TileRangeForBox(
    const Aabb& box) const {
  // Tile indices stay in floating point until every check has passed:
  // casting a double outside int32 range (or NaN) to int32 is UB.
  constexpr double kMinIndex = std::numeric_limits<int32_t>::min();
  constexpr double kMaxIndex = std::numeric_limits<int32_t>::max();
  double lo_x = std::floor(box.min.x / tile_size_);
  double lo_y = std::floor(box.min.y / tile_size_);
  double hi_x = std::floor(box.max.x / tile_size_);
  double hi_y = std::floor(box.max.y / tile_size_);
  // Negated comparisons so NaN coordinates are rejected too.
  if (!(lo_x >= kMinIndex && hi_x <= kMaxIndex && lo_y >= kMinIndex &&
        hi_y <= kMaxIndex && lo_x <= hi_x && lo_y <= hi_y)) {
    return Status::InvalidArgument(
        "box coordinates outside the tileable range; likely a degenerate "
        "bounding box");
  }
  // Both indices fit in int32, so each span fits in int64 exactly. The
  // per-axis checks run before the multiplication, so the product is
  // only formed when both factors are <= kMaxTilesPerBox.
  int64_t span_x = static_cast<int64_t>(hi_x - lo_x) + 1;
  int64_t span_y = static_cast<int64_t>(hi_y - lo_y) + 1;
  if (span_x > kMaxTilesPerBox || span_y > kMaxTilesPerBox ||
      span_x * span_y > kMaxTilesPerBox) {
    return Status::InvalidArgument(
        "box covers " + std::to_string(span_x) + "x" +
        std::to_string(span_y) + " tiles (max " +
        std::to_string(kMaxTilesPerBox) +
        "); likely a degenerate bounding box");
  }
  return std::make_pair(
      TileId{static_cast<int32_t>(lo_x), static_cast<int32_t>(lo_y)},
      TileId{static_cast<int32_t>(hi_x), static_cast<int32_t>(hi_y)});
}

Status TileStore::AssignTiles(const HdMap& map,
                              const std::map<uint64_t, TileId>* only,
                              std::map<uint64_t, HdMap>* tile_maps,
                              std::map<uint64_t, TileId>* ids) const {
  Status box_error;  // First oversized-box failure, if any.
  auto tiles_for_box = [&](const Aabb& box) {
    std::vector<TileId> out;
    if (box.IsEmpty() || !box_error.ok()) return out;
    auto range = TileRangeForBox(box);
    if (!range.ok()) {
      box_error = Status::InvalidArgument("element " +
                                          range.status().message());
      return out;
    }
    const TileId lo = range->first;
    const TileId hi = range->second;
    for (int32_t ty = lo.y; ty <= hi.y; ++ty) {
      for (int32_t tx = lo.x; tx <= hi.x; ++tx) {
        TileId t{tx, ty};
        if (only != nullptr && only->count(t.Morton()) == 0) continue;
        out.push_back(t);
      }
    }
    return out;
  };

  for (const auto& [id, lm] : map.landmarks()) {
    for (const TileId& t : tiles_for_box(Aabb::FromPoint(lm.position.xy()))) {
      uint64_t key = t.Morton();
      ids->emplace(key, t);
      // Ignore AlreadyExists: an element can only land once per tile.
      (void)(*tile_maps)[key].AddLandmark(lm);
    }
  }
  for (const auto& [id, lf] : map.line_features()) {
    for (const TileId& t : tiles_for_box(lf.geometry.BoundingBox())) {
      uint64_t key = t.Morton();
      ids->emplace(key, t);
      (void)(*tile_maps)[key].AddLineFeature(lf);
    }
  }
  for (const auto& [id, af] : map.area_features()) {
    for (const TileId& t : tiles_for_box(af.geometry.BoundingBox())) {
      uint64_t key = t.Morton();
      ids->emplace(key, t);
      (void)(*tile_maps)[key].AddAreaFeature(af);
    }
  }
  for (const auto& [id, ll] : map.lanelets()) {
    for (const TileId& t : tiles_for_box(ll.centerline.BoundingBox())) {
      uint64_t key = t.Morton();
      ids->emplace(key, t);
      // Cross-tile references (successors, boundaries, regulatory ids) are
      // kept verbatim: a tile is self-contained for geometry but not for
      // topology, and LoadRegion reports any reference that stays
      // unresolved after stitching.
      (void)(*tile_maps)[key].AddLanelet(ll);
    }
  }
  for (const auto& [id, reg] : map.regulatory_elements()) {
    // A regulatory element rides with every lanelet it references, so any
    // region covering one of those lanelets sees the element (previously
    // only the first reference was tiled, and the element vanished from
    // regions covering the others).
    std::set<uint64_t> reg_keys;
    for (ElementId ll_id : reg.lanelet_ids) {
      const Lanelet* ll = map.FindLanelet(ll_id);
      if (ll == nullptr) continue;
      for (const TileId& t : tiles_for_box(ll->centerline.BoundingBox())) {
        reg_keys.insert(t.Morton());
      }
    }
    for (uint64_t key : reg_keys) {
      auto it = tile_maps->find(key);
      if (it == tile_maps->end()) continue;
      (void)it->second.AddRegulatoryElement(reg);
    }
  }
  return box_error;
}

Status TileStore::Build(const HdMap& map, size_t num_threads) {
  TraceSpan span("tile_store.build");
  {
    std::unique_lock<std::shared_mutex> lock(tiles_mu_);
    tiles_.clear();
    tile_ids_.clear();
  }
  CacheClear();

  // Phase 1 (sequential, deterministic): assign every element to the tiles
  // its bounding box intersects.
  std::map<uint64_t, HdMap> tile_maps;
  std::map<uint64_t, TileId> ids;
  Status assigned = AssignTiles(map, nullptr, &tile_maps, &ids);
  if (!assigned.ok()) return assigned;

  // Phase 2 (parallel): serialize each tile independently. Each task owns
  // one output slot, so the assembled result — and therefore the stored
  // bytes — do not depend on the thread count.
  std::vector<std::pair<uint64_t, const HdMap*>> work;
  work.reserve(tile_maps.size());
  for (const auto& [key, tile_map] : tile_maps) {
    work.emplace_back(key, &tile_map);
  }
  std::vector<std::string> blobs(work.size());
  ParallelFor(
      work.size(),
      [&](size_t i) { blobs[i] = EncodeBlob(*work[i].second); },
      num_threads);

  std::unique_lock<std::shared_mutex> lock(tiles_mu_);
  for (size_t i = 0; i < work.size(); ++i) {
    uint64_t key = work[i].first;
    tiles_[key] = PinnedBytes::FromString(std::move(blobs[i]));
    tile_ids_[key] = ids[key];
  }
  return Status::Ok();
}

Status TileStore::RebuildTiles(const HdMap& map,
                               const std::vector<TileId>& tiles,
                               size_t num_threads) {
  if (tiles.empty()) return Status::Ok();
  TraceSpan span("tile_store.rebuild");

  std::map<uint64_t, TileId> requested;
  for (const TileId& t : tiles) requested.emplace(t.Morton(), t);

  // Same deterministic assignment as Build, restricted to the requested
  // tiles; everything outside `requested` keeps its serialized bytes.
  std::map<uint64_t, HdMap> tile_maps;
  std::map<uint64_t, TileId> ids;
  HDMAP_RETURN_IF_ERROR(AssignTiles(map, &requested, &tile_maps, &ids));

  std::vector<std::pair<uint64_t, const HdMap*>> work;
  work.reserve(tile_maps.size());
  for (const auto& [key, tile_map] : tile_maps) {
    work.emplace_back(key, &tile_map);
  }
  std::vector<std::string> blobs(work.size());
  ParallelFor(
      work.size(),
      [&](size_t i) { blobs[i] = EncodeBlob(*work[i].second); },
      num_threads);

  {
    std::unique_lock<std::shared_mutex> lock(tiles_mu_);
    // Requested tiles with no remaining content disappear from the store
    // (exactly as a full Build would never have created them).
    for (const auto& [key, id] : requested) {
      (void)id;
      if (tile_maps.count(key) == 0) {
        tiles_.erase(key);
        tile_ids_.erase(key);
      }
    }
    for (size_t i = 0; i < work.size(); ++i) {
      uint64_t key = work[i].first;
      tiles_[key] = PinnedBytes::FromString(std::move(blobs[i]));
      tile_ids_[key] = ids[key];
    }
  }
  for (const auto& [key, id] : requested) {
    (void)id;
    CacheErase(key);
  }
  return Status::Ok();
}

void TileStore::PutTile(const TileId& id, const HdMap& tile_map) {
  PutRawTile(id, EncodeBlob(tile_map));
}

void TileStore::PutRawTile(const TileId& id, std::string bytes) {
  PutPinnedTile(id, PinnedBytes::FromString(std::move(bytes)));
}

void TileStore::PutPinnedTile(const TileId& id, PinnedBytes bytes) {
  {
    std::unique_lock<std::shared_mutex> lock(tiles_mu_);
    tiles_[id.Morton()] = std::move(bytes);
    tile_ids_[id.Morton()] = id;
  }
  // After the bytes, not before: CacheErase bumps the mutation
  // generation, so any reader still decoding the old payload has observed
  // an older generation and its verdict is dropped.
  CacheErase(id.Morton());
}

std::string TileStore::EncodeBlob(const HdMap& tile_map) const {
  return format_ == TileFormat::kFlatV3 ? EncodeTileV3(tile_map)
                                        : SerializeMap(tile_map);
}

Result<std::shared_ptr<const HdMap>> TileStore::LoadTileShared(
    uint64_t key) const {
  // Cache hits are deliberately span-free: they are the hot path of every
  // cached GetRegion (already counted by tile_store.cache_hits), and a
  // span's two clock reads would cost more than the lookup itself. Spans
  // cover the slow path only: miss -> raw load -> decode -> quarantine.
  if (auto cached = CacheLookup(key)) return cached;
  // Child span of whatever request is loading (GetRegion fans these out
  // across ParallelFor workers, so they nest under the request's root).
  TraceSpan span("tile_store.load");
  if (IsQuarantined(key)) {
    // Expected repeat of an already-discovered corruption: don't force it
    // into the ring on every request, or it evicts the decode span that
    // found the corrupt bytes in the first place.
    span.SetStatus(StatusCode::kDataLoss, /*force=*/false);
    return Status::DataLoss("tile key " + std::to_string(key) +
                            " quarantined after a failed decode");
  }
  // Generation first, blob second: if a Put* replaces the bytes after
  // this load, the verdict below is installed against a stale generation
  // and dropped (worst case a wasted decode, never a poisoned cache).
  uint64_t gen = mutation_gen_.load(std::memory_order_acquire);
  Result<HdMap> tile = Status::Internal("tile not decoded");
  {
    std::shared_lock<std::shared_mutex> lock(tiles_mu_);
    std::string_view blob;
    std::string corrupted;  // Owns injected mutations; empty otherwise.
    {
      TraceSpan raw_span("tile_store.raw_load");
      auto it = tiles_.find(key);
      if (it == tiles_.end()) {
        raw_span.SetStatus(StatusCode::kNotFound);
        span.SetStatus(StatusCode::kNotFound);
        return Status::NotFound("tile key " + std::to_string(key));
      }
      blob = it->second.view();
      if (faults_ != nullptr &&
          faults_->MaybeCorrupt(kLoadFaultSite, blob, &corrupted)) {
        blob = corrupted;
      }
    }
    TraceSpan decode_span("tile_store.decode");
    tile = DeserializeMap(blob);
    if (!tile.ok()) decode_span.SetStatus(tile.status().code());
  }
  if (!tile.ok()) {
    span.SetStatus(tile.status().code());
    // Corrupt bytes stay corrupt: remember the verdict so every later
    // load fails fast instead of re-running checksum/decode.
    if (tile.status().code() == StatusCode::kDataLoss) {
      TraceSpan quarantine_span("tile_store.quarantine");
      quarantine_span.SetStatus(StatusCode::kDataLoss);
      Quarantine(key, gen);
    }
    return tile.status();
  }
  auto shared = std::make_shared<const HdMap>(std::move(tile).value());
  CacheInsert(key, shared, gen);
  return shared;
}

Result<HdMap> TileStore::LoadTile(const TileId& id) const {
  auto tile = LoadTileShared(id.Morton());
  if (!tile.ok()) {
    if (tile.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("tile (" + std::to_string(id.x) + "," +
                              std::to_string(id.y) + ")");
    }
    return tile.status();
  }
  return HdMap(**tile);
}

Result<PinnedTileView> TileStore::GetTileView(const TileId& id) const {
  const uint64_t key = id.Morton();
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = view_cache_.find(key);
    if (it != view_cache_.end()) return it->second;
  }
  TraceSpan span("tile_store.view");
  if (IsQuarantined(key)) {
    span.SetStatus(StatusCode::kDataLoss, /*force=*/false);
    return Status::DataLoss("tile key " + std::to_string(key) +
                            " quarantined after a failed decode");
  }
  // Same staleness protocol as LoadTileShared: sample the generation
  // before the bytes, so a view validated against a replaced payload is
  // never installed over the new payload's state.
  uint64_t gen = mutation_gen_.load(std::memory_order_acquire);
  PinnedBytes bytes;
  {
    std::shared_lock<std::shared_mutex> lock(tiles_mu_);
    auto it = tiles_.find(key);
    if (it == tiles_.end()) {
      span.SetStatus(StatusCode::kNotFound);
      return Status::NotFound("tile (" + std::to_string(id.x) + "," +
                              std::to_string(id.y) + ")");
    }
    bytes = it->second;  // Pin: valid after the lock drops, forever.
  }
  if (!IsTileV3(bytes.view())) {
    // Not corruption — the tile is simply stored in the v1 format (frame
    // integrity is still checked by the decode path). No quarantine.
    span.SetStatus(StatusCode::kFailedPrecondition);
    return Status::FailedPrecondition(
        "tile (" + std::to_string(id.x) + "," + std::to_string(id.y) +
        ") is not in the v3 flat format; use LoadTile");
  }
  auto view = TileView::Create(bytes.span());
  if (!view.ok()) {
    span.SetStatus(view.status().code());
    if (view.status().code() == StatusCode::kDataLoss) {
      Quarantine(key, gen);
    }
    return view.status();
  }
  PinnedTileView pinned{std::move(bytes), *view};
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (mutation_gen_.load(std::memory_order_relaxed) == gen) {
    view_cache_.emplace(key, pinned);
  }
  return pinned;
}

Result<PinnedBytes> TileStore::RawTileBytes(const TileId& id) const {
  std::shared_lock<std::shared_mutex> lock(tiles_mu_);
  auto it = tiles_.find(id.Morton());
  if (it == tiles_.end()) {
    return Status::NotFound("tile (" + std::to_string(id.x) + "," +
                            std::to_string(id.y) + ")");
  }
  return it->second;
}

std::map<uint64_t, std::string> TileStore::RawTilesCopy() const {
  std::shared_lock<std::shared_mutex> lock(tiles_mu_);
  std::map<uint64_t, std::string> out;
  for (const auto& [key, blob] : tiles_) {
    out.emplace(key, std::string(blob.view()));
  }
  return out;
}

Result<std::vector<TileId>> TileStore::TileCoverage(const Aabb& box) const {
  std::vector<TileId> out;
  if (box.IsEmpty()) return out;
  auto range = TileRangeForBox(box);
  if (!range.ok()) {
    return Status::InvalidArgument("query " + range.status().message());
  }
  const TileId lo = range->first;
  const TileId hi = range->second;
  for (int32_t ty = lo.y; ty <= hi.y; ++ty) {
    for (int32_t tx = lo.x; tx <= hi.x; ++tx) {
      out.push_back(TileId{tx, ty});
    }
  }
  return out;
}

Result<std::vector<TileId>> TileStore::TilesInBox(const Aabb& box) const {
  std::vector<TileId> out;
  if (box.IsEmpty()) return out;
  auto range = TileRangeForBox(box);
  if (!range.ok()) {
    return Status::InvalidArgument("query " + range.status().message());
  }
  const TileId lo = range->first;
  const TileId hi = range->second;
  std::shared_lock<std::shared_mutex> lock(tiles_mu_);
  for (int32_t ty = lo.y; ty <= hi.y; ++ty) {
    for (int32_t tx = lo.x; tx <= hi.x; ++tx) {
      TileId t{tx, ty};
      if (tiles_.count(t.Morton()) > 0) out.push_back(t);
    }
  }
  return out;
}

std::vector<TileId> TileStore::AllTiles() const {
  std::shared_lock<std::shared_mutex> lock(tiles_mu_);
  std::vector<TileId> out;
  out.reserve(tile_ids_.size());
  for (const auto& [key, id] : tile_ids_) {
    (void)key;
    out.push_back(id);
  }
  return out;
}

Result<HdMap> TileStore::LoadRegion(const Aabb& box, RegionReport* report,
                                    size_t num_threads,
                                    RegionReadMode mode) const {
  HDMAP_ASSIGN_OR_RETURN(std::vector<TileId> tile_list, TilesInBox(box));
  return StitchTiles(tile_list, report, num_threads, mode);
}

Result<HdMap> TileStore::LoadAll(size_t num_threads) const {
  return StitchTiles(AllTiles(), nullptr, num_threads,
                     RegionReadMode::kStrict);
}

Result<HdMap> TileStore::StitchTiles(const std::vector<TileId>& tile_list,
                                     RegionReport* report,
                                     size_t num_threads,
                                     RegionReadMode mode) const {
  // Fan out: deserialize (or fetch from cache) every tile concurrently.
  // Each task writes its own slot; stitching below is sequential in tile
  // order, so the stitched map is independent of thread timing.
  std::vector<Result<std::shared_ptr<const HdMap>>> loaded(
      tile_list.size(), Status::Internal("tile not loaded"));
  ParallelFor(
      tile_list.size(),
      [&](size_t i) { loaded[i] = LoadTileShared(tile_list[i].Morton()); },
      num_threads);

  TraceSpan stitch_span("tile_store.stitch");
  std::vector<TileId> corrupt_tiles;
  HdMap region;
  for (size_t i = 0; i < loaded.size(); ++i) {
    Result<std::shared_ptr<const HdMap>>& tile_result = loaded[i];
    if (!tile_result.ok()) {
      if (mode == RegionReadMode::kStrict) return tile_result.status();
      // Degraded mode: the tile is already quarantined by LoadTileShared;
      // record it and keep stitching the survivors. (tile_list is in
      // Morton order, so this list is deterministic too.)
      corrupt_tiles.push_back(tile_list[i]);
      continue;
    }
    const HdMap& tile = **tile_result;
    for (const auto& [id, lm] : tile.landmarks()) {
      (void)region.AddLandmark(lm);  // Duplicates across tiles are fine.
    }
    for (const auto& [id, lf] : tile.line_features()) {
      (void)region.AddLineFeature(lf);
    }
    for (const auto& [id, af] : tile.area_features()) {
      (void)region.AddAreaFeature(af);
    }
    for (const auto& [id, ll] : tile.lanelets()) {
      (void)region.AddLanelet(ll);
    }
    for (const auto& [id, reg] : tile.regulatory_elements()) {
      (void)region.AddRegulatoryElement(reg);
    }
  }

  if (report != nullptr) {
    report->unresolved_regulatory_refs.clear();
    for (const auto& [id, reg] : region.regulatory_elements()) {
      for (ElementId ll_id : reg.lanelet_ids) {
        if (region.FindLanelet(ll_id) == nullptr) {
          report->unresolved_regulatory_refs.emplace_back(id, ll_id);
        }
      }
    }
    report->corrupt_tiles = std::move(corrupt_tiles);
  }
  return region;
}

size_t TileStore::NumQuarantined() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return quarantined_.size();
}

TileStoreStats TileStore::stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return stats_;
}

void TileStore::ResetStats() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  stats_ = TileStoreStats{};
}

std::shared_ptr<const HdMap> TileStore::CacheLookup(uint64_t key) const {
  // A capacity-0 store has no cache at all; counting its loads as misses
  // would make stats read as a malfunctioning cache rather than a
  // disabled one.
  if (cache_capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++stats_.cache_misses;
    if (misses_exported_ != nullptr) misses_exported_->Increment();
    return nullptr;
  }
  ++stats_.cache_hits;
  if (hits_exported_ != nullptr) hits_exported_->Increment();
  lru_.splice(lru_.begin(), lru_, it->second.second);  // Move to front.
  return it->second.first;
}

void TileStore::CacheInsert(uint64_t key, std::shared_ptr<const HdMap> map,
                            uint64_t gen) const {
  if (cache_capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(cache_mu_);
  // A Put* replaced some tile's bytes since this decode started; the
  // decoded map may be of the old payload, so don't cache it.
  if (mutation_gen_.load(std::memory_order_relaxed) != gen) return;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // Another thread deserialized the same tile first; keep its entry.
    return;
  }
  while (cache_.size() >= cache_capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.cache_evictions;
    if (evictions_exported_ != nullptr) evictions_exported_->Increment();
  }
  lru_.push_front(key);
  cache_.emplace(key, std::make_pair(std::move(map), lru_.begin()));
}

void TileStore::CacheErase(uint64_t key) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  // Invalidate any in-flight decode of the old bytes along with the
  // stored verdicts; new bytes get a fresh one.
  mutation_gen_.fetch_add(1, std::memory_order_release);
  quarantined_.erase(key);
  view_cache_.erase(key);
  auto it = cache_.find(key);
  if (it == cache_.end()) return;
  lru_.erase(it->second.second);
  cache_.erase(it);
}

void TileStore::CacheClear() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  mutation_gen_.fetch_add(1, std::memory_order_release);
  cache_.clear();
  lru_.clear();
  quarantined_.clear();
  view_cache_.clear();
}

bool TileStore::IsQuarantined(uint64_t key) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return quarantined_.count(key) > 0;
}

void TileStore::Quarantine(uint64_t key, uint64_t gen) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  // Same staleness rule as CacheInsert: never quarantine bytes that were
  // replaced while this (failed) decode was in flight.
  if (mutation_gen_.load(std::memory_order_relaxed) != gen) return;
  quarantined_.insert(key);
}

}  // namespace hdmap
