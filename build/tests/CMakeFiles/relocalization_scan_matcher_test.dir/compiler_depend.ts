# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for relocalization_scan_matcher_test.
