file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_lane_extraction.dir/bench_fig1_lane_extraction.cc.o"
  "CMakeFiles/bench_fig1_lane_extraction.dir/bench_fig1_lane_extraction.cc.o.d"
  "bench_fig1_lane_extraction"
  "bench_fig1_lane_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_lane_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
