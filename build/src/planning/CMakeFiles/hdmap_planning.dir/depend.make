# Empty dependencies file for hdmap_planning.
# This may be replaced when dependencies are built.
