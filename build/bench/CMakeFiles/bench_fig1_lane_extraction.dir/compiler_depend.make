# Empty compiler generated dependencies file for bench_fig1_lane_extraction.
# This may be replaced when dependencies are built.
