#include "localization/particle_filter.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace hdmap {

void ParticleFilter::Init(const Pose2& initial, double position_spread,
                          double heading_spread, Rng& rng) {
  particles_.clear();
  particles_.reserve(static_cast<size_t>(options_.num_particles));
  for (int i = 0; i < options_.num_particles; ++i) {
    Particle p;
    p.pose = Pose2(initial.translation.x + rng.Normal(0.0, position_spread),
                   initial.translation.y + rng.Normal(0.0, position_spread),
                   initial.heading + rng.Normal(0.0, heading_spread));
    p.weight = 1.0 / options_.num_particles;
    particles_.push_back(p);
  }
}

void ParticleFilter::Predict(double distance, double heading_change,
                             Rng& rng) {
  for (Particle& p : particles_) {
    double d = distance +
               rng.Normal(0.0, options_.position_noise *
                                   std::max(0.1, std::abs(distance)));
    double dh = heading_change + rng.Normal(0.0, options_.heading_noise);
    double mid_heading = p.pose.heading + dh / 2.0;
    p.pose = Pose2(p.pose.translation +
                       Vec2{std::cos(mid_heading), std::sin(mid_heading)} * d,
                   p.pose.heading + dh);
  }
}

void ParticleFilter::Update(
    const std::function<double(const Pose2&)>& likelihood, Rng& rng) {
  for (Particle& p : particles_) {
    p.weight *= std::max(1e-12, likelihood(p.pose));
  }
  Normalize();
  if (EffectiveSampleSize() <
      options_.resample_threshold * options_.num_particles) {
    Resample(rng);
  }
}

void ParticleFilter::Normalize() {
  double total = 0.0;
  for (const Particle& p : particles_) total += p.weight;
  if (total <= 0.0) {
    double uniform = 1.0 / static_cast<double>(particles_.size());
    for (Particle& p : particles_) p.weight = uniform;
    return;
  }
  for (Particle& p : particles_) p.weight /= total;
}

void ParticleFilter::Resample(Rng& rng) {
  // Low-variance (systematic) resampling.
  std::vector<Particle> next;
  next.reserve(particles_.size());
  size_t n = particles_.size();
  double step = 1.0 / static_cast<double>(n);
  double u = rng.Uniform() * step;
  double cum = particles_[0].weight;
  size_t i = 0;
  for (size_t m = 0; m < n; ++m) {
    double target = u + static_cast<double>(m) * step;
    while (cum < target && i + 1 < n) {
      ++i;
      cum += particles_[i].weight;
    }
    Particle p = particles_[i];
    p.weight = step;
    next.push_back(p);
  }
  particles_ = std::move(next);
}

Pose2 ParticleFilter::Estimate() const {
  if (particles_.empty()) return {};
  Vec2 mean;
  double sin_sum = 0.0, cos_sum = 0.0;
  for (const Particle& p : particles_) {
    mean += p.pose.translation * p.weight;
    sin_sum += std::sin(p.pose.heading) * p.weight;
    cos_sum += std::cos(p.pose.heading) * p.weight;
  }
  return Pose2(mean, std::atan2(sin_sum, cos_sum));
}

double ParticleFilter::PositionSpread() const {
  if (particles_.empty()) return 0.0;
  Pose2 mean = Estimate();
  double var = 0.0;
  for (const Particle& p : particles_) {
    var += p.weight *
           p.pose.translation.SquaredDistanceTo(mean.translation);
  }
  return std::sqrt(var);
}

double ParticleFilter::EffectiveSampleSize() const {
  double sum_sq = 0.0;
  for (const Particle& p : particles_) sum_sq += p.weight * p.weight;
  return sum_sq > 0.0 ? 1.0 / sum_sq : 0.0;
}

}  // namespace hdmap
