#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"
#include "core/bundle_graph.h"
#include "localization/ekf_localizer.h"
#include "localization/map_capability.h"
#include "sim/sensors.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

TEST(MapCapabilityTest, RichAreaScoresHigherThanEmpty) {
  HdMap map = StraightRoad(1000.0, 40.0);  // Dense signs + markings.
  MapCapability on_road = EvaluateMapCapability(map, {500.0, -1.75});
  MapCapability off_map = EvaluateMapCapability(map, {5000.0, 5000.0});
  EXPECT_GT(on_road.score, 0.5);
  EXPECT_EQ(off_map.landmark_count, 0);
  EXPECT_TRUE(std::isinf(off_map.predicted_sigma));
  EXPECT_EQ(off_map.score, 0.0);
  EXPECT_GT(on_road.landmark_count, 0);
  EXPECT_GT(on_road.marking_length, 50.0);
}

TEST(MapCapabilityTest, SparserSignsLowerTheScore) {
  HdMap dense = StraightRoad(1000.0, 30.0);
  HdMap sparse = StraightRoad(1000.0, 500.0);
  MapCapability c_dense = EvaluateMapCapability(dense, {500.0, -1.75});
  MapCapability c_sparse = EvaluateMapCapability(sparse, {500.0, -1.75});
  EXPECT_GT(c_dense.landmark_count, c_sparse.landmark_count);
  EXPECT_GE(c_dense.score, c_sparse.score);
}

TEST(MapCapabilityTest, RouteProfileCoversRoute) {
  HdMap map = SmallTownWorld(91, 3, 3);
  // Any lanelet with a successor forms a short route.
  std::vector<ElementId> route;
  for (const auto& [id, ll] : map.lanelets()) {
    if (!ll.successors.empty()) {
      route = {id, ll.successors.front()};
      break;
    }
  }
  ASSERT_EQ(route.size(), 2u);
  auto profile = RouteCapabilityProfile(map, route, 20.0);
  EXPECT_GE(profile.size(), 3u);
  for (const MapCapability& cap : profile) {
    EXPECT_GE(cap.score, 0.0);
    EXPECT_LE(cap.score, 1.0);
  }
}

TEST(MapCapabilityTest, ScorePredictsAchievedAccuracy) {
  // The premise of [64]: low-capability map sections really do localize
  // worse. Build a road whose first km has signs and whose second km has
  // none, drive it with a landmark EKF, and compare.
  HdMap map = StraightRoad(2000.0, 50.0);
  std::vector<ElementId> to_remove;
  for (const auto& [id, lm] : map.landmarks()) {
    if (lm.position.x > 1000.0) to_remove.push_back(id);
  }
  ASSERT_GT(to_remove.size(), 5u);
  for (ElementId id : to_remove) {
    ASSERT_TRUE(map.RemoveLandmark(id).ok());
  }

  MapCapability rich = EvaluateMapCapability(map, {500.0, -1.75});
  MapCapability poor = EvaluateMapCapability(map, {1700.0, -1.75});
  EXPECT_GT(rich.landmark_count, poor.landmark_count);

  Rng rng(201);
  OdometrySensor odo({});
  LandmarkDetector::Options det_opt;
  det_opt.clutter_rate = 0.0;
  LandmarkDetector detector(det_opt);
  EkfLocalizer ekf(&map, {});
  Pose2 truth(10.0, -1.75, 0.0);
  ekf.Init(truth, 0.3, 0.02);
  RunningStats rich_err, poor_err;
  for (int step = 0; step < 650; ++step) {
    Pose2 next(truth.translation + Vec2{3.0, 0.0}, 0.0);
    auto delta = odo.Measure(truth, next, rng);
    truth = next;
    ekf.Predict(delta.distance, delta.heading_change);
    ekf.UpdateLandmarks(detector.Detect(map, truth, rng));
    double err = ekf.estimate().translation.DistanceTo(truth.translation);
    if (truth.translation.x > 200.0 && truth.translation.x < 950.0) {
      rich_err.Add(err);
    } else if (truth.translation.x > 1200.0) {
      poor_err.Add(err);
    }
  }
  // Accuracy degrades exactly where the capability score said it would.
  EXPECT_LT(rich_err.mean(), poor_err.mean());
}

TEST(BundleGraphTest, BuildsNodeEdgeSkeleton) {
  HdMap map = SmallTownWorld(92, 3, 3);
  auto graph = BundleGraph::Build(map);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->NumNodes(), 9u);
  // 12 bidirectional street segments -> 24 directed edges.
  EXPECT_EQ(graph->NumEdges(), 24u);
  // Every edge carries lanes in its direction.
  for (const auto& [id, node] : map.map_nodes()) {
    for (const auto& edge : graph->OutEdges(id)) {
      EXPECT_GT(edge.forward_lanes, 0);
      EXPECT_GT(edge.length, 0.0);
    }
  }
}

TEST(BundleGraphTest, ShortestNodePathIsManhattan) {
  HdMap map = SmallTownWorld(93, 3, 3);
  auto graph = BundleGraph::Build(map);
  ASSERT_TRUE(graph.ok());
  // Corner to opposite corner of the 3x3 grid: 4 hops, 5 nodes.
  ElementId first = map.map_nodes().begin()->first;
  ElementId last = map.map_nodes().rbegin()->first;
  auto path = graph->ShortestNodePath(first, last);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path->size(), 5u);
  EXPECT_EQ(path->front(), first);
  EXPECT_EQ(path->back(), last);
}

TEST(BundleGraphTest, ErrorsOnBadInput) {
  HdMap empty;
  EXPECT_FALSE(BundleGraph::Build(empty).ok());
  HdMap map = SmallTownWorld(94, 2, 2);
  auto graph = BundleGraph::Build(map);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(graph->ShortestNodePath(999999, 1).ok());
}

TEST(BundleGraphTest, MultiLaneBundlesCountLanes) {
  HdMap map = SmallTownWorld(95, 2, 2);
  // Regenerate with 2 lanes per direction.
  Rng rng(95);
  TownOptions opt;
  opt.grid_rows = 2;
  opt.grid_cols = 2;
  opt.lanes_per_direction = 2;
  auto town = GenerateTown(opt, rng);
  ASSERT_TRUE(town.ok());
  auto graph = BundleGraph::Build(*town);
  ASSERT_TRUE(graph.ok());
  for (const auto& [id, node] : town->map_nodes()) {
    for (const auto& edge : graph->OutEdges(id)) {
      EXPECT_EQ(edge.forward_lanes, 2);
      EXPECT_EQ(edge.backward_lanes, 2);
    }
  }
}

}  // namespace
}  // namespace hdmap
