#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/segment.h"

namespace hdmap {

double Polygon::SignedArea() const {
  if (vertices_.size() < 3) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2& a = vertices_[i];
    const Vec2& b = vertices_[(i + 1) % vertices_.size()];
    acc += a.Cross(b);
  }
  return 0.5 * acc;
}

double Polygon::Area() const { return std::abs(SignedArea()); }

Vec2 Polygon::Centroid() const {
  if (vertices_.empty()) return {};
  double a = SignedArea();
  if (std::abs(a) < 1e-12) {
    // Degenerate: average the vertices.
    Vec2 sum;
    for (const Vec2& v : vertices_) sum += v;
    return sum / static_cast<double>(vertices_.size());
  }
  Vec2 c;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2& p = vertices_[i];
    const Vec2& q = vertices_[(i + 1) % vertices_.size()];
    double w = p.Cross(q);
    c += (p + q) * w;
  }
  return c / (6.0 * a);
}

bool Polygon::Contains(const Vec2& p) const {
  if (vertices_.size() < 3) return false;
  // Boundary counts as inside.
  if (BoundaryDistanceTo(p) < 1e-12) return true;
  bool inside = false;
  for (size_t i = 0, j = vertices_.size() - 1; i < vertices_.size();
       j = i++) {
    const Vec2& a = vertices_[i];
    const Vec2& b = vertices_[j];
    if ((a.y > p.y) != (b.y > p.y)) {
      double x_int = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < x_int) inside = !inside;
    }
  }
  return inside;
}

double Polygon::BoundaryDistanceTo(const Vec2& p) const {
  double best = std::numeric_limits<double>::max();
  for (size_t i = 0; i < vertices_.size(); ++i) {
    Segment s(vertices_[i], vertices_[(i + 1) % vertices_.size()]);
    best = std::min(best, s.DistanceTo(p));
  }
  return vertices_.empty() ? 0.0 : best;
}

Aabb Polygon::BoundingBox() const {
  Aabb box;
  for (const Vec2& v : vertices_) box.Extend(v);
  return box;
}

Polygon ConvexHull(std::vector<Vec2> points) {
  if (points.size() < 3) return Polygon(std::move(points));
  std::sort(points.begin(), points.end(), [](const Vec2& a, const Vec2& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  if (points.size() < 3) return Polygon(std::move(points));
  std::vector<Vec2> hull(2 * points.size());
  size_t k = 0;
  for (const Vec2& p : points) {  // Lower hull.
    while (k >= 2 &&
           (hull[k - 1] - hull[k - 2]).Cross(p - hull[k - 2]) <= 0) {
      --k;
    }
    hull[k++] = p;
  }
  size_t lower = k + 1;
  for (auto it = points.rbegin() + 1; it != points.rend(); ++it) {
    while (k >= lower &&
           (hull[k - 1] - hull[k - 2]).Cross(*it - hull[k - 2]) <= 0) {
      --k;
    }
    hull[k++] = *it;
  }
  hull.resize(k - 1);
  return Polygon(std::move(hull));
}

}  // namespace hdmap
