#include <gtest/gtest.h>

#include <limits>

#include "core/binary_io.h"

namespace hdmap {
namespace {

TEST(BinaryIoTest, RoundTripsEveryType) {
  BufferWriter w;
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x1122334455667788ULL);
  w.WriteI64(-42);
  w.WriteI32(-7);
  w.WriteI16(-300);
  w.WriteF64(3.14159265358979);
  w.WriteF32(2.5f);
  w.WriteString("hd map");

  BufferReader r(w.buffer());
  EXPECT_EQ(r.ReadU8(), 0xAB);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_EQ(r.ReadI32(), -7);
  EXPECT_EQ(r.ReadI16(), -300);
  EXPECT_DOUBLE_EQ(r.ReadF64(), 3.14159265358979);
  EXPECT_FLOAT_EQ(r.ReadF32(), 2.5f);
  EXPECT_EQ(r.ReadString(), "hd map");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, ExtremeValues) {
  BufferWriter w;
  w.WriteI64(std::numeric_limits<int64_t>::min());
  w.WriteI64(std::numeric_limits<int64_t>::max());
  w.WriteF64(std::numeric_limits<double>::max());
  w.WriteString("");
  BufferReader r(w.buffer());
  EXPECT_EQ(r.ReadI64(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(r.ReadI64(), std::numeric_limits<int64_t>::max());
  EXPECT_DOUBLE_EQ(r.ReadF64(), std::numeric_limits<double>::max());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_TRUE(r.ok());
}

TEST(BinaryIoTest, TruncatedReadLatchesError) {
  BufferWriter w;
  w.WriteU32(1);
  BufferReader r(w.buffer());
  EXPECT_EQ(r.ReadU32(), 1u);
  EXPECT_TRUE(r.ok());
  // Past the end: zero value and a latched DataLoss status.
  EXPECT_EQ(r.ReadU64(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  // Subsequent reads stay failed and keep returning zeros.
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_FALSE(r.ok());
}

TEST(BinaryIoTest, OversizedStringLengthIsRejected) {
  BufferWriter w;
  w.WriteU32(1000000);  // Claims a megabyte of string data...
  w.WriteU8('x');       // ...but only one byte follows.
  BufferReader r(w.buffer());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_FALSE(r.ok());
}

TEST(BinaryIoTest, PartialScalarAtEnd) {
  BufferWriter w;
  w.WriteU8(1);
  w.WriteU8(2);
  BufferReader r(w.buffer());
  // 2 bytes present, 4 requested.
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(BinaryIoTest, RemainingTracksCursorAndError) {
  BufferWriter w;
  w.WriteU32(7);
  w.WriteU64(9);
  BufferReader r(w.buffer());
  EXPECT_EQ(r.remaining(), 12u);
  r.ReadU32();
  EXPECT_EQ(r.remaining(), 8u);
  r.ReadU64();
  EXPECT_EQ(r.remaining(), 0u);
  // A failed reader reports nothing left, whatever the cursor says.
  r.ReadU8();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinaryIoTest, SkipAdvancesAndBoundsChecks) {
  BufferWriter w;
  w.WriteU32(0xAAAAAAAA);
  w.WriteU32(0xBBBBBBBB);
  BufferReader r(w.buffer());
  r.Skip(4);
  EXPECT_EQ(r.ReadU32(), 0xBBBBBBBBu);
  EXPECT_TRUE(r.ok());
  // Skipping past the end latches DataLoss like any other read.
  BufferReader r2(w.buffer());
  r2.Skip(9);
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kDataLoss);
  // Skip on an already-failed reader stays failed and moves nothing.
  r2.Skip(0);
  EXPECT_FALSE(r2.ok());
}

TEST(BinaryIoTest, ReadStringAfterLatchedErrorStaysFailed) {
  BufferWriter w;
  w.WriteU32(0);      // Padding consumed below.
  w.WriteString("abc");  // A perfectly valid string...
  BufferReader r(w.buffer());
  r.Skip(12);  // Past the end (buffer is 11 bytes): latches DataLoss.
  EXPECT_FALSE(r.ok());
  // ...that ReadString must not return once an error is latched.
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_FALSE(r.ok());
}

TEST(BinaryIoTest, CheckCountRejectsInflatedCounts) {
  BufferWriter w;
  w.WriteU32(10);  // 10 claimed elements, 8 bytes each = 80 > 4 remaining.
  w.WriteU32(0);
  BufferReader r(w.buffer());
  uint32_t claimed = r.ReadU32();
  EXPECT_FALSE(r.CheckCount(claimed, 8));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(BinaryIoTest, CheckCountAcceptsFeasibleCounts) {
  BufferWriter w;
  w.WriteU32(2);
  w.WriteU64(1);
  w.WriteU64(2);
  BufferReader r(w.buffer());
  uint32_t claimed = r.ReadU32();
  EXPECT_TRUE(r.CheckCount(claimed, 8));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.ReadU64(), 1u);
  EXPECT_EQ(r.ReadU64(), 2u);
}

TEST(BinaryIoTest, CheckCountIsOverflowProof) {
  BufferWriter w;
  w.WriteU32(1);
  BufferReader r(w.buffer());
  // claimed * element_size would wrap around u64; the division form must
  // still reject it.
  EXPECT_FALSE(
      r.CheckCount(std::numeric_limits<uint64_t>::max(), 16));
  EXPECT_FALSE(r.ok());
}

TEST(BinaryIoTest, WriterSizeTracksContent) {
  BufferWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.WriteU32(5);
  EXPECT_EQ(w.size(), 4u);
  w.WriteString("abc");
  EXPECT_EQ(w.size(), 4u + 4u + 3u);
  std::string released = w.Release();
  EXPECT_EQ(released.size(), 11u);
}

}  // namespace
}  // namespace hdmap
