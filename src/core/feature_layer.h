#ifndef HDMAP_CORE_FEATURE_LAYER_H_
#define HDMAP_CORE_FEATURE_LAYER_H_

#include <map>
#include <string>
#include <vector>

#include "core/elements.h"
#include "core/ids.h"
#include "geometry/vec3.h"

namespace hdmap {

/// One crowdsourced feature estimate inside a FeatureLayer.
struct LayerFeature {
  ElementId id = kInvalidId;
  LandmarkType type = LandmarkType::kTrafficSign;
  Vec3 position;
  /// Confidence in [0, 1]; grows with consistent observations.
  double confidence = 0.0;
  int observation_count = 0;
};

/// A decoupled map feature layer (Kim et al. [31]): new content is
/// crowdsourced into an independent layer so that human error is isolated
/// per layer, and layers can be enriched by separate applications before
/// being promoted into the base map.
class FeatureLayer {
 public:
  FeatureLayer() = default;
  explicit FeatureLayer(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return features_.size(); }
  const std::map<ElementId, LayerFeature>& features() const {
    return features_;
  }
  const LayerFeature* Find(ElementId id) const {
    auto it = features_.find(id);
    return it == features_.end() ? nullptr : &it->second;
  }

  /// Folds one observation of feature `id` into the layer: incremental
  /// position mean and a saturating confidence update.
  void AddObservation(ElementId id, LandmarkType type,
                      const Vec3& observed_position,
                      double observation_weight = 1.0);

  /// Merges another layer into this one, combining estimates of shared
  /// ids by observation-count weighting.
  void Merge(const FeatureLayer& other);

  /// Features whose confidence reached `min_confidence`, as landmarks
  /// ready to be promoted into the base HD map.
  std::vector<Landmark> Promotable(double min_confidence = 0.8) const;

 private:
  std::string name_;
  std::map<ElementId, LayerFeature> features_;
};

}  // namespace hdmap

#endif  // HDMAP_CORE_FEATURE_LAYER_H_
