#include <gtest/gtest.h>

#include <cmath>

#include "planning/speed_profile.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

TEST(SpeedProfileTest, ExtractsLimitsAndStopsFromTown) {
  HdMap map = SmallTownWorld(141, 3, 3);
  // Find a street lanelet with a traffic-light regulatory element.
  std::vector<ElementId> route;
  for (const auto& [id, ll] : map.lanelets()) {
    if (!ll.regulatory_ids.empty() && !ll.successors.empty()) {
      route = {id};
      break;
    }
  }
  ASSERT_EQ(route.size(), 1u);
  auto constraints = ExtractRouteConstraints(map, route);
  ASSERT_TRUE(constraints.ok());
  bool has_limit = false, has_light_stop = false, has_end = false;
  for (const auto& c : *constraints) {
    if (c.cause == SpeedConstraintCause::kSpeedLimit) {
      has_limit = true;
      EXPECT_GT(c.max_speed, 1.0);
    }
    if (c.cause == SpeedConstraintCause::kTrafficLight) {
      has_light_stop = true;
      EXPECT_EQ(c.max_speed, 0.0);
    }
    if (c.cause == SpeedConstraintCause::kRouteEnd) has_end = true;
  }
  EXPECT_TRUE(has_limit);
  EXPECT_TRUE(has_light_stop);
  EXPECT_TRUE(has_end);

  // Green-wave option drops the light stop.
  SpeedProfileOptions green;
  green.stop_at_lights = false;
  auto relaxed = ExtractRouteConstraints(map, route, green);
  ASSERT_TRUE(relaxed.ok());
  for (const auto& c : *relaxed) {
    EXPECT_NE(c.cause, SpeedConstraintCause::kTrafficLight);
  }
}

TEST(SpeedProfileTest, ExtractValidation) {
  HdMap map = StraightRoad();
  EXPECT_FALSE(ExtractRouteConstraints(map, {}).ok());
  EXPECT_FALSE(ExtractRouteConstraints(map, {999}).ok());
}

TEST(SpeedProfileTest, ProfileRespectsLimitsAndDynamics) {
  std::vector<SpeedConstraint> constraints = {
      {0.0, 14.0, SpeedConstraintCause::kSpeedLimit},
      {200.0, 8.0, SpeedConstraintCause::kSpeedLimit},
      {400.0, 0.0, SpeedConstraintCause::kStopSign},
      {600.0, 0.0, SpeedConstraintCause::kRouteEnd},
  };
  SpeedProfileOptions opt;
  opt.max_accel = 1.5;
  opt.max_decel = 2.5;
  auto profile = GenerateSpeedProfile(constraints, 600.0, opt);
  ASSERT_GT(profile.size(), 50u);

  for (size_t i = 0; i < profile.size(); ++i) {
    double s = profile[i].station;
    double v = profile[i].speed;
    // Limit envelope: later limits override earlier ones.
    if (s < 200.0 - 1e-9) {
      EXPECT_LE(v, 14.0 + 1e-6);
    } else {
      EXPECT_LE(v, 8.0 + 1e-6);
    }
    // Dynamics: v^2 changes bounded by 2*a*ds between samples.
    if (i > 0) {
      double dv2 = v * v - profile[i - 1].speed * profile[i - 1].speed;
      double ds = s - profile[i - 1].station;
      EXPECT_LE(dv2, 2.0 * opt.max_accel * ds + 1e-6);
      EXPECT_GE(dv2, -2.0 * opt.max_decel * ds - 1e-6);
    }
  }
  // Stops reached: speed ~0 at the stop sign and at the route end.
  auto speed_at = [&](double station) {
    double best = 1e9;
    double best_d = 1e18;
    for (const auto& sample : profile) {
      double d = std::abs(sample.station - station);
      if (d < best_d) {
        best_d = d;
        best = sample.speed;
      }
    }
    return best;
  };
  EXPECT_LT(speed_at(400.0), 0.5);
  EXPECT_LT(speed_at(600.0), 0.5);
  // The vehicle actually gets moving in between.
  EXPECT_GT(speed_at(100.0), 10.0);
  EXPECT_GT(speed_at(500.0), 3.0);
}

TEST(SpeedProfileTest, StartsFromInitialSpeed) {
  std::vector<SpeedConstraint> constraints = {
      {0.0, 20.0, SpeedConstraintCause::kSpeedLimit},
      {300.0, 0.0, SpeedConstraintCause::kRouteEnd},
  };
  SpeedProfileOptions opt;
  opt.initial_speed = 12.0;
  auto profile = GenerateSpeedProfile(constraints, 300.0, opt);
  ASSERT_FALSE(profile.empty());
  EXPECT_NEAR(profile[0].speed, 12.0, 1e-9);
}

TEST(SpeedProfileTest, EmptyInputsAreSafe) {
  EXPECT_TRUE(GenerateSpeedProfile({}, 0.0).empty());
  EXPECT_TRUE(GenerateSpeedProfile({}, -5.0).empty());
}

}  // namespace
}  // namespace hdmap
