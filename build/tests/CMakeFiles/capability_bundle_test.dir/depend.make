# Empty dependencies file for capability_bundle_test.
# This may be replaced when dependencies are built.
