# Empty compiler generated dependencies file for hdmap_geometry.
# This may be replaced when dependencies are built.
