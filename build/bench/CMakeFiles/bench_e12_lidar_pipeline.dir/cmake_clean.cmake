file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_lidar_pipeline.dir/bench_e12_lidar_pipeline.cc.o"
  "CMakeFiles/bench_e12_lidar_pipeline.dir/bench_e12_lidar_pipeline.cc.o.d"
  "bench_e12_lidar_pipeline"
  "bench_e12_lidar_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_lidar_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
