#include "maintenance/change_detector.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hdmap {

void BoostedStumpClassifier::Train(const std::vector<LabeledSection>& data,
                                   int num_rounds) {
  stumps_.clear();
  if (data.empty()) return;
  size_t n = data.size();
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));

  for (int round = 0; round < num_rounds; ++round) {
    // Find the best stump over all features / thresholds / polarities.
    Stump best;
    double best_error = std::numeric_limits<double>::max();
    for (int f = 0; f < 4; ++f) {
      // Candidate thresholds: sorted unique feature values (midpoints).
      std::vector<double> values;
      values.reserve(n);
      for (const auto& ex : data) {
        values.push_back(ex.features.AsArray()[static_cast<size_t>(f)]);
      }
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      for (size_t vi = 0; vi + 1 < values.size(); ++vi) {
        double thr = 0.5 * (values[vi] + values[vi + 1]);
        for (int polarity : {+1, -1}) {
          double error = 0.0;
          for (size_t i = 0; i < n; ++i) {
            double v = data[i].features.AsArray()[static_cast<size_t>(f)];
            bool predict_changed = polarity > 0 ? v > thr : v <= thr;
            if (predict_changed != data[i].changed) error += weights[i];
          }
          if (error < best_error) {
            best_error = error;
            best.feature = f;
            best.threshold = thr;
            best.polarity = polarity;
          }
        }
      }
    }
    best_error = std::clamp(best_error, 1e-10, 1.0 - 1e-10);
    if (best_error >= 0.5) break;  // No better than chance: stop.
    best.alpha = 0.5 * std::log((1.0 - best_error) / best_error);

    // Reweight.
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double v =
          data[i].features.AsArray()[static_cast<size_t>(best.feature)];
      bool predict_changed =
          best.polarity > 0 ? v > best.threshold : v <= best.threshold;
      double margin = (predict_changed == data[i].changed) ? 1.0 : -1.0;
      weights[i] *= std::exp(-best.alpha * margin);
      total += weights[i];
    }
    for (double& w : weights) w /= total;
    stumps_.push_back(best);
  }
}

double BoostedStumpClassifier::Score(const SectionFeatures& features) const {
  double score = 0.0;
  auto values = features.AsArray();
  for (const Stump& stump : stumps_) {
    double v = values[static_cast<size_t>(stump.feature)];
    bool predict_changed =
        stump.polarity > 0 ? v > stump.threshold : v <= stump.threshold;
    score += stump.alpha * (predict_changed ? 1.0 : -1.0);
  }
  return score;
}

bool ClassifySectionMultiTraversal(
    const BoostedStumpClassifier& classifier,
    const std::vector<SectionFeatures>& traversals,
    double decision_threshold) {
  if (traversals.empty()) return false;
  double total = 0.0;
  for (const SectionFeatures& f : traversals) {
    total += classifier.Score(f);
  }
  return total / static_cast<double>(traversals.size()) >
         decision_threshold;
}

}  // namespace hdmap
