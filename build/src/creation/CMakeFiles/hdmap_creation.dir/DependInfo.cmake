
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/creation/aerial_fusion.cc" "src/creation/CMakeFiles/hdmap_creation.dir/aerial_fusion.cc.o" "gcc" "src/creation/CMakeFiles/hdmap_creation.dir/aerial_fusion.cc.o.d"
  "/root/repo/src/creation/crowd_mapper.cc" "src/creation/CMakeFiles/hdmap_creation.dir/crowd_mapper.cc.o" "gcc" "src/creation/CMakeFiles/hdmap_creation.dir/crowd_mapper.cc.o.d"
  "/root/repo/src/creation/lane_learner.cc" "src/creation/CMakeFiles/hdmap_creation.dir/lane_learner.cc.o" "gcc" "src/creation/CMakeFiles/hdmap_creation.dir/lane_learner.cc.o.d"
  "/root/repo/src/creation/lidar_pipeline.cc" "src/creation/CMakeFiles/hdmap_creation.dir/lidar_pipeline.cc.o" "gcc" "src/creation/CMakeFiles/hdmap_creation.dir/lidar_pipeline.cc.o.d"
  "/root/repo/src/creation/map_generator.cc" "src/creation/CMakeFiles/hdmap_creation.dir/map_generator.cc.o" "gcc" "src/creation/CMakeFiles/hdmap_creation.dir/map_generator.cc.o.d"
  "/root/repo/src/creation/online_map_builder.cc" "src/creation/CMakeFiles/hdmap_creation.dir/online_map_builder.cc.o" "gcc" "src/creation/CMakeFiles/hdmap_creation.dir/online_map_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hdmap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hdmap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
