#ifndef HDMAP_STORAGE_MMAP_FILE_H_
#define HDMAP_STORAGE_MMAP_FILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "common/result.h"

namespace hdmap {

/// A read-only memory-mapped file. The mapping lives until the MmapFile
/// is destroyed; POSIX keeps it valid even after the file is unlinked
/// (retention-delete of a checkpoint directory), which is what lets
/// checkpoint readers hold zero-copy views with no coordination against
/// the writer — they pin the MmapFile via shared_ptr (PinnedBytes) and
/// the kernel keeps the pages alive.
///
/// Mapped MAP_PRIVATE: in-place writes by another process are not part
/// of the durability contract (checkpoints are only ever replaced by
/// atomic rename), so no effort is made to observe them.
class MmapFile {
 public:
  /// Maps `path` read-only. kNotFound when the file does not exist,
  /// kInternal for other open/map failures. An empty file maps to an
  /// empty (but valid) MmapFile.
  static Result<std::shared_ptr<MmapFile>> Open(const std::string& path);

  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  size_t size() const { return size_; }

  std::span<const uint8_t> span() const { return {data(), size_}; }
  std::string_view view() const {
    return {static_cast<const char*>(addr_), size_};
  }

 private:
  MmapFile(void* addr, size_t size) : addr_(addr), size_(size) {}

  void* addr_ = nullptr;  // nullptr for an empty file.
  size_t size_ = 0;
};

}  // namespace hdmap

#endif  // HDMAP_STORAGE_MMAP_FILE_H_
