// Property-based tests: invariants checked over randomized inputs via
// parameterized suites (seeds are the parameters, so failures reproduce).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/serialization.h"
#include "core/tile_store.h"
#include "localization/particle_filter.h"
#include "planning/route_planner.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

LineString RandomPolyline(Rng& rng, int min_points = 5,
                          int max_points = 40) {
  int n = rng.UniformInt(min_points, max_points);
  std::vector<Vec2> pts;
  Vec2 p{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
  double heading = rng.Uniform(-3.14, 3.14);
  for (int i = 0; i < n; ++i) {
    pts.push_back(p);
    heading += rng.Normal(0.0, 0.3);
    p += Vec2{std::cos(heading), std::sin(heading)} *
         rng.Uniform(2.0, 15.0);
  }
  return LineString(std::move(pts));
}

class LineStringPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LineStringPropertyTest, ProjectOfPointAtRecoversArcLength) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  LineString ls = RandomPolyline(rng);
  for (int trial = 0; trial < 20; ++trial) {
    double s = rng.Uniform(0.0, ls.Length());
    LineStringProjection proj = ls.Project(ls.PointAt(s));
    EXPECT_NEAR(proj.arc_length, s, 1e-6);
    EXPECT_NEAR(proj.distance, 0.0, 1e-9);
  }
}

TEST_P(LineStringPropertyTest, ReversePreservesLength) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  LineString ls = RandomPolyline(rng);
  EXPECT_NEAR(ls.Reversed().Length(), ls.Length(), 1e-9);
  EXPECT_NEAR(ls.Resampled(1.0).Length(), ls.Length(),
              0.02 * ls.Length() + 0.5);
}

TEST_P(LineStringPropertyTest, SimplifiedStaysWithinTolerance) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  LineString ls = RandomPolyline(rng);
  const double kTol = 0.5;
  LineString simple = ls.Simplified(kTol);
  EXPECT_LE(simple.size(), ls.size());
  // Every original vertex stays within the tolerance of the simplified
  // polyline.
  for (const Vec2& p : ls.points()) {
    EXPECT_LE(simple.DistanceTo(p), kTol + 1e-9);
  }
}

TEST_P(LineStringPropertyTest, OffsetDistanceApproximatesOffset) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 300);
  LineString ls = RandomPolyline(rng);
  double d = rng.Uniform(0.5, 2.0);
  LineString off = ls.Offset(d);
  // Interior points of the offset curve are ~d from the base curve for
  // gently curving polylines.
  for (size_t i = 1; i + 1 < off.size(); ++i) {
    double dist = ls.DistanceTo(off[i]);
    EXPECT_GT(dist, 0.3 * d);
    EXPECT_LT(dist, 2.5 * d);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineStringPropertyTest,
                         ::testing::Range(1, 9));

class SerializationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializationPropertyTest, RoundTripIsExact) {
  HdMap map = SmallTownWorld(static_cast<uint64_t>(GetParam()), 2, 3);
  std::string blob = SerializeMap(map);
  auto restored = DeserializeMap(blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->NumElements(), map.NumElements());
  for (const auto& [id, lm] : map.landmarks()) {
    ASSERT_NE(restored->FindLandmark(id), nullptr);
    EXPECT_EQ(restored->FindLandmark(id)->position, lm.position);
  }
  EXPECT_EQ(SerializeMap(*restored), blob);
}

TEST_P(SerializationPropertyTest, TruncationNeverCrashesAlwaysErrors) {
  HdMap map = SmallTownWorld(static_cast<uint64_t>(GetParam()) + 50, 2, 2);
  std::string blob = SerializeMap(map);
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 25; ++trial) {
    size_t cut = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(blob.size()) - 1));
    auto result = DeserializeMap(blob.substr(0, cut));
    EXPECT_FALSE(result.ok());
  }
}

TEST_P(SerializationPropertyTest, CorruptionIsDetectedOrBenign) {
  // Flipping bytes must never crash; it may decode to some map, but the
  // call always returns (no UB / unbounded allocation via size fields is
  // the property of interest — caught by sanitizer-like crashes).
  HdMap map = SmallTownWorld(static_cast<uint64_t>(GetParam()) + 80, 2, 2);
  std::string blob = SerializeMap(map);
  Rng rng(static_cast<uint64_t>(GetParam()) + 9);
  for (int trial = 0; trial < 10; ++trial) {
    std::string corrupted = blob;
    for (int flips = 0; flips < 4; ++flips) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(8, static_cast<int>(corrupted.size()) - 1));
      corrupted[pos] = static_cast<char>(rng.NextU32() & 0xff);
    }
    auto result = DeserializeMap(corrupted);
    (void)result;  // OK either way; must not crash.
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationPropertyTest,
                         ::testing::Range(1, 6));

class RoutingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RoutingPropertyTest, AllAlgorithmsAgreeOnCost) {
  HdMap map = SmallTownWorld(static_cast<uint64_t>(GetParam()) + 500, 3, 3);
  RoutingGraph graph = RoutingGraph::Build(map);
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<ElementId> ids;
  for (const auto& [id, ll] : map.lanelets()) ids.push_back(id);
  for (int trial = 0; trial < 10; ++trial) {
    ElementId from = ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(ids.size()) - 1))];
    ElementId to = ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(ids.size()) - 1))];
    auto dijkstra = PlanRoute(graph, from, to, RouteAlgorithm::kDijkstra);
    auto astar = PlanRoute(graph, from, to, RouteAlgorithm::kAStar);
    auto bhps = PlanRoute(graph, from, to, RouteAlgorithm::kBhps);
    EXPECT_EQ(dijkstra.ok(), astar.ok());
    EXPECT_EQ(dijkstra.ok(), bhps.ok());
    if (dijkstra.ok()) {
      EXPECT_NEAR(astar->cost_seconds, dijkstra->cost_seconds, 1e-6);
      EXPECT_NEAR(bhps->cost_seconds, dijkstra->cost_seconds, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingPropertyTest,
                         ::testing::Range(1, 5));

class TileStorePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TileStorePropertyTest, RegionLoadIsComplete) {
  HdMap map = SmallTownWorld(static_cast<uint64_t>(GetParam()) + 700, 2, 3);
  double tile_size = 50.0 * GetParam();
  TileStore store(TileStore::Options{.tile_size_m = tile_size});
  ASSERT_TRUE(store.Build(map).ok());
  auto region = store.LoadRegion(map.BoundingBox());
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->lanelets().size(), map.lanelets().size());
  EXPECT_EQ(region->landmarks().size(), map.landmarks().size());
  EXPECT_EQ(region->line_features().size(), map.line_features().size());
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TileStorePropertyTest,
                         ::testing::Values(1, 2, 4, 8));

class ParticleFilterPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ParticleFilterPropertyTest, WeightsStayNormalizedAndEssBounded) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  ParticleFilter::Options opt;
  opt.num_particles = 100;
  ParticleFilter pf(opt);
  pf.Init(Pose2(0, 0, 0), 1.0, 0.1, rng);
  for (int step = 0; step < 20; ++step) {
    pf.Predict(rng.Uniform(0.0, 2.0), rng.Normal(0.0, 0.05), rng);
    Vec2 target{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    pf.Update(
        [&](const Pose2& p) {
          return std::exp(-p.translation.SquaredDistanceTo(target));
        },
        rng);
    double total = 0.0;
    for (const auto& particle : pf.particles()) total += particle.weight;
    EXPECT_NEAR(total, 1.0, 1e-9);
    double ess = pf.EffectiveSampleSize();
    EXPECT_GE(ess, 1.0 - 1e-9);
    EXPECT_LE(ess, opt.num_particles + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParticleFilterPropertyTest,
                         ::testing::Range(1, 5));

}  // namespace
}  // namespace hdmap
