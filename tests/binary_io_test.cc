#include <gtest/gtest.h>

#include <limits>

#include "core/binary_io.h"

namespace hdmap {
namespace {

TEST(BinaryIoTest, RoundTripsEveryType) {
  BufferWriter w;
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x1122334455667788ULL);
  w.WriteI64(-42);
  w.WriteI32(-7);
  w.WriteI16(-300);
  w.WriteF64(3.14159265358979);
  w.WriteF32(2.5f);
  w.WriteString("hd map");

  BufferReader r(w.buffer());
  EXPECT_EQ(r.ReadU8(), 0xAB);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_EQ(r.ReadI32(), -7);
  EXPECT_EQ(r.ReadI16(), -300);
  EXPECT_DOUBLE_EQ(r.ReadF64(), 3.14159265358979);
  EXPECT_FLOAT_EQ(r.ReadF32(), 2.5f);
  EXPECT_EQ(r.ReadString(), "hd map");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, ExtremeValues) {
  BufferWriter w;
  w.WriteI64(std::numeric_limits<int64_t>::min());
  w.WriteI64(std::numeric_limits<int64_t>::max());
  w.WriteF64(std::numeric_limits<double>::max());
  w.WriteString("");
  BufferReader r(w.buffer());
  EXPECT_EQ(r.ReadI64(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(r.ReadI64(), std::numeric_limits<int64_t>::max());
  EXPECT_DOUBLE_EQ(r.ReadF64(), std::numeric_limits<double>::max());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_TRUE(r.ok());
}

TEST(BinaryIoTest, TruncatedReadLatchesError) {
  BufferWriter w;
  w.WriteU32(1);
  BufferReader r(w.buffer());
  EXPECT_EQ(r.ReadU32(), 1u);
  EXPECT_TRUE(r.ok());
  // Past the end: zero value and a latched DataLoss status.
  EXPECT_EQ(r.ReadU64(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  // Subsequent reads stay failed and keep returning zeros.
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_FALSE(r.ok());
}

TEST(BinaryIoTest, OversizedStringLengthIsRejected) {
  BufferWriter w;
  w.WriteU32(1000000);  // Claims a megabyte of string data...
  w.WriteU8('x');       // ...but only one byte follows.
  BufferReader r(w.buffer());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_FALSE(r.ok());
}

TEST(BinaryIoTest, PartialScalarAtEnd) {
  BufferWriter w;
  w.WriteU8(1);
  w.WriteU8(2);
  BufferReader r(w.buffer());
  // 2 bytes present, 4 requested.
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(BinaryIoTest, WriterSizeTracksContent) {
  BufferWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.WriteU32(5);
  EXPECT_EQ(w.size(), 4u);
  w.WriteString("abc");
  EXPECT_EQ(w.size(), 4u + 4u + 3u);
  std::string released = w.Release();
  EXPECT_EQ(released.size(), 11u);
}

}  // namespace
}  // namespace hdmap
