#ifndef HDMAP_STORAGE_PATCH_WAL_H_
#define HDMAP_STORAGE_PATCH_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "core/map_patch.h"
#include "storage/fs_util.h"

namespace hdmap {

/// Append-only write-ahead log of staged MapPatches: the bridge between
/// "patch acknowledged" and "patch covered by a checkpoint". Each record
/// is length-prefixed and CRC-protected, and its payload is the framed
/// SerializePatch wire format — so a torn append (crash mid-write) or a
/// scribbled tail is detected record-by-record at replay, and the intact
/// prefix is still recovered:
///
///   u32 magic | u32 payload_len | u32 crc32(version_hint || payload)
///   | u64 version_hint | payload
///
/// `version_hint` records the published snapshot version current when the
/// patch was staged, letting recovery order replayed patches relative to
/// a checkpoint it fell back to.
///
/// Thread safety: none. MapService serializes Append/Reset behind its
/// staged-queue lock (keeping WAL order identical to queue order).
class PatchWal {
 public:
  struct Options {
    /// Log file path; parent directories are created on first append.
    std::string path;
    FsyncMode fsync = FsyncMode::kAlways;
    /// Optional export of append/replay counters ("wal.*"). Must outlive
    /// the log.
    MetricsRegistry* metrics = nullptr;
    /// Optional fault seam (sites below). Must outlive the log.
    FaultInjector* fault_injector = nullptr;
  };

  /// Data-plane faults corrupt a record's bytes as they are appended
  /// (modelling a torn or scribbled append that was still acknowledged);
  /// kFailStatus fails the append before anything is written.
  static constexpr const char* kAppendFaultSite = "wal.append";
  /// Data-plane faults corrupt the log bytes as they are read back.
  static constexpr const char* kReplayFaultSite = "wal.replay";

  explicit PatchWal(Options options);
  ~PatchWal();

  PatchWal(const PatchWal&) = delete;
  PatchWal& operator=(const PatchWal&) = delete;

  /// Appends one record and fsyncs per FsyncMode before returning: once
  /// this is OK, the patch survives a crash (it will be replayed). On a
  /// failed write or fsync the log is truncated back to the record
  /// boundary it started at, so a mid-append I/O error never leaves torn
  /// bytes for later successful appends to land after.
  Status Append(const MapPatch& patch, uint64_t version_hint);

  /// Atomically replaces the whole log with one record per patch (all
  /// stamped `version_hint`): the new content is written to a temp file,
  /// fsynced per FsyncMode, renamed over the log, and the directory
  /// fsynced. Used after a checkpoint to trim the log down to the
  /// still-unpublished patches — a crash or I/O error at any point leaves
  /// the old log fully intact (a superset of what is needed), never a
  /// partial rewrite.
  Status Rewrite(const std::vector<MapPatch>& patches, uint64_t version_hint);

  /// Sets the log aside as "<path>.lost" (replacing any previous one) for
  /// offline salvage, leaving an empty log behind. Used when the log's
  /// records can no longer be applied (their base state is gone) but
  /// silently erasing acked bytes would be worse. No-op if the log does
  /// not exist.
  Status Archive();

  struct ReplayedRecord {
    MapPatch patch;
    uint64_t version_hint = 0;
  };
  struct ReplayResult {
    /// Intact records in append order.
    std::vector<ReplayedRecord> records;
    /// Torn/corrupt records detected and skipped (a torn tail counts as
    /// one however many bytes it garbled).
    size_t skipped_records = 0;
    size_t bytes_scanned = 0;
  };

  /// Scans the whole log, returning every intact record and counting the
  /// damaged ones (also into "wal.replay_skipped"). A missing log file is
  /// an empty result, not an error. Never fails on content — corruption
  /// is data to report, not an error to propagate.
  Result<ReplayResult> Replay() const;

  /// Truncates the log to empty (after a checkpoint covered its records)
  /// and fsyncs the truncation.
  Status Reset();

  /// Current log size on disk; 0 when the file does not exist.
  uint64_t SizeBytes() const;

  const Options& options() const { return options_; }

 private:
  Status EnsureOpen();

  /// One wire record (header + framed patch payload), with data-plane
  /// append faults already applied.
  std::string EncodeRecord(const MapPatch& patch, uint64_t version_hint) const;

  Options options_;
  int fd_ = -1;
  Counter* appends_ = nullptr;
  Counter* append_failures_ = nullptr;
  Counter* replay_skipped_ = nullptr;
  Counter* resets_ = nullptr;
  Gauge* bytes_gauge_ = nullptr;
  LatencyHistogram* lat_append_ = nullptr;
};

}  // namespace hdmap

#endif  // HDMAP_STORAGE_PATCH_WAL_H_
