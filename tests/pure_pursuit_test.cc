#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"
#include "planning/frenet_planner.h"
#include "planning/pure_pursuit.h"
#include "sim/vehicle.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

/// Drives the bicycle model along `path` under pure pursuit; returns the
/// mean cross-track error once up to speed.
double TrackPath(const LineString& path, Pose2 start, double target_speed,
                 double* final_progress = nullptr) {
  PurePursuitController controller({});
  BicycleModel model;
  BicycleModel::State state;
  state.pose = start;
  state.speed = 0.0;
  RunningStats cross_track;
  const double dt = 0.05;
  double progress = 0.0;
  for (int step = 0; step < 4000; ++step) {
    auto cmd = controller.Compute(path, state.pose, state.speed,
                                  target_speed);
    if (cmd.path_finished) break;
    state = model.Step(state, cmd.acceleration, cmd.steering, dt);
    LineStringProjection proj = path.Project(state.pose.translation);
    progress = proj.arc_length;
    if (step > 100) cross_track.Add(proj.distance);
  }
  if (final_progress != nullptr) *final_progress = progress;
  return cross_track.mean();
}

TEST(PurePursuitTest, TracksStraightPath) {
  LineString path({{0, 0}, {300, 0}});
  double progress = 0.0;
  double err = TrackPath(path, Pose2(0, 0.8, 0.1), 12.0, &progress);
  EXPECT_GT(progress, 295.0);  // Reached the end.
  EXPECT_LT(err, 0.3);         // Converged onto the line.
}

TEST(PurePursuitTest, TracksCurvedPath) {
  // Quarter circle of radius 60.
  std::vector<Vec2> pts;
  for (int i = 0; i <= 45; ++i) {
    double a = DegToRad(static_cast<double>(i) * 2.0);
    pts.push_back({60.0 * std::sin(a), 60.0 * (1.0 - std::cos(a))});
  }
  LineString path(pts);
  double progress = 0.0;
  double err = TrackPath(path, Pose2(0, 0, 0), 8.0, &progress);
  EXPECT_GT(progress, path.Length() - 5.0);
  EXPECT_LT(err, 0.8);
}

TEST(PurePursuitTest, SpeedConvergesToTarget) {
  LineString path({{0, 0}, {500, 0}});
  PurePursuitController controller({});
  BicycleModel model;
  BicycleModel::State state;
  state.pose = Pose2(0, 0, 0);
  for (int step = 0; step < 600; ++step) {
    auto cmd = controller.Compute(path, state.pose, state.speed, 15.0);
    state = model.Step(state, cmd.acceleration, cmd.steering, 0.05);
  }
  EXPECT_NEAR(state.speed, 15.0, 0.5);
}

TEST(PurePursuitTest, FinishesAtPathEnd) {
  LineString path({{0, 0}, {50, 0}});
  PurePursuitController controller({});
  auto cmd = controller.Compute(path, Pose2(49.8, 0.0, 0.0), 5.0, 5.0);
  EXPECT_TRUE(cmd.path_finished);
  EXPECT_FALSE(
      controller.Compute(path, Pose2(10, 0, 0), 5.0, 5.0).path_finished);
}

TEST(PurePursuitTest, DegeneratePathIsFinished) {
  PurePursuitController controller({});
  EXPECT_TRUE(controller.Compute(LineString(), Pose2(), 0.0, 5.0)
                  .path_finished);
}

TEST(PurePursuitTest, ExecutesFrenetAvoidancePath) {
  // Plan around an obstacle, then actually drive the selected path: the
  // closed planning->control loop.
  LineString ref({{0, 0}, {120, 0}});
  FrenetPlanner planner({});
  std::vector<Obstacle> obstacles = {{{30.0, 0.0}, 0.8}};
  auto paths = planner.Plan(ref, 0.0, 0.0, obstacles);
  ASSERT_TRUE(paths.has_value());
  const LineString& selected = (*paths)[0].geometry;

  PurePursuitController controller({});
  BicycleModel model;
  BicycleModel::State state;
  state.pose = Pose2(0, 0, 0);
  state.speed = 6.0;
  double min_clearance = 1e9;
  for (int step = 0; step < 2000; ++step) {
    auto cmd = controller.Compute(selected, state.pose, state.speed, 8.0);
    if (cmd.path_finished) break;
    state = model.Step(state, cmd.acceleration, cmd.steering, 0.05);
    min_clearance = std::min(
        min_clearance, state.pose.translation.DistanceTo({30.0, 0.0}));
  }
  // The executed trajectory clears the obstacle (radius 0.8).
  EXPECT_GT(min_clearance, 0.9);
}

}  // namespace
}  // namespace hdmap
