# Empty compiler generated dependencies file for hdmap_common.
# This may be replaced when dependencies are built.
