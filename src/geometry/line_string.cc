#include "geometry/line_string.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"
#include "geometry/segment.h"

namespace hdmap {

LineString::LineString(std::vector<Vec2> points)
    : points_(std::move(points)) {
  RebuildArcLengths();
}

void LineString::Append(const Vec2& p) {
  if (points_.empty()) {
    points_.push_back(p);
    cumulative_.push_back(0.0);
    return;
  }
  cumulative_.push_back(cumulative_.back() + points_.back().DistanceTo(p));
  points_.push_back(p);
}

void LineString::RebuildArcLengths() {
  cumulative_.resize(points_.size());
  if (points_.empty()) return;
  cumulative_[0] = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    cumulative_[i] =
        cumulative_[i - 1] + points_[i - 1].DistanceTo(points_[i]);
  }
}

double LineString::Length() const {
  return cumulative_.empty() ? 0.0 : cumulative_.back();
}

double LineString::ArcLengthAt(size_t i) const { return cumulative_[i]; }

size_t LineString::SegmentIndexAt(double s, double* remainder) const {
  if (points_.size() < 2) {
    *remainder = 0.0;
    return 0;
  }
  s = std::clamp(s, 0.0, Length());
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  size_t idx = static_cast<size_t>(it - cumulative_.begin());
  if (idx == 0) idx = 1;
  if (idx >= points_.size()) idx = points_.size() - 1;
  size_t seg = idx - 1;
  *remainder = s - cumulative_[seg];
  return seg;
}

Vec2 LineString::PointAt(double s) const {
  if (points_.empty()) return {};
  if (points_.size() == 1) return points_[0];
  double rem = 0.0;
  size_t seg = SegmentIndexAt(s, &rem);
  double seg_len = cumulative_[seg + 1] - cumulative_[seg];
  double t = seg_len > 0.0 ? rem / seg_len : 0.0;
  return Lerp(points_[seg], points_[seg + 1], t);
}

Vec2 LineString::TangentAt(double s) const {
  if (points_.size() < 2) return {1.0, 0.0};
  double rem = 0.0;
  size_t seg = SegmentIndexAt(s, &rem);
  return (points_[seg + 1] - points_[seg]).Normalized();
}

double LineString::HeadingAt(double s) const { return TangentAt(s).Angle(); }

double LineString::CurvatureAt(double s) const {
  if (points_.size() < 3) return 0.0;
  double rem = 0.0;
  size_t seg = SegmentIndexAt(s, &rem);
  // Use vertices around the segment: prev, current heading change.
  size_t i = std::clamp<size_t>(seg, 1, points_.size() - 2);
  Vec2 d0 = points_[i] - points_[i - 1];
  Vec2 d1 = points_[i + 1] - points_[i];
  double h0 = d0.Angle();
  double h1 = d1.Angle();
  double ds = 0.5 * (d0.Norm() + d1.Norm());
  if (ds <= 0.0) return 0.0;
  return AngleDiff(h1, h0) / ds;
}

LineStringProjection LineString::Project(const Vec2& p) const {
  LineStringProjection best;
  if (points_.empty()) return best;
  if (points_.size() == 1) {
    best.point = points_[0];
    best.distance = p.DistanceTo(points_[0]);
    best.signed_offset = best.distance;
    return best;
  }
  double best_dist2 = std::numeric_limits<double>::max();
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    Segment seg(points_[i], points_[i + 1]);
    double t = seg.ClosestParam(p);
    Vec2 foot = Lerp(seg.a, seg.b, t);
    double d2 = p.SquaredDistanceTo(foot);
    if (d2 < best_dist2) {
      best_dist2 = d2;
      best.point = foot;
      best.segment_index = i;
      best.arc_length = cumulative_[i] + t * (cumulative_[i + 1] - cumulative_[i]);
      Vec2 dir = seg.b - seg.a;
      double side = dir.Cross(p - foot);
      best.distance = std::sqrt(d2);
      best.signed_offset = side >= 0.0 ? best.distance : -best.distance;
    }
  }
  return best;
}

double LineString::DistanceTo(const Vec2& p) const {
  return Project(p).distance;
}

LineString LineString::Resampled(double spacing) const {
  if (points_.size() < 2 || spacing <= 0.0) return *this;
  double len = Length();
  int n = std::max(1, static_cast<int>(std::round(len / spacing)));
  std::vector<Vec2> out;
  out.reserve(static_cast<size_t>(n) + 1);
  for (int i = 0; i <= n; ++i) {
    out.push_back(PointAt(len * static_cast<double>(i) / n));
  }
  return LineString(std::move(out));
}

namespace {

void SimplifyRecursive(const std::vector<Vec2>& pts, size_t lo, size_t hi,
                       double tol, std::vector<bool>& keep) {
  if (hi <= lo + 1) return;
  Segment seg(pts[lo], pts[hi]);
  double max_d = -1.0;
  size_t max_i = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    double d = seg.DistanceTo(pts[i]);
    if (d > max_d) {
      max_d = d;
      max_i = i;
    }
  }
  if (max_d > tol) {
    keep[max_i] = true;
    SimplifyRecursive(pts, lo, max_i, tol, keep);
    SimplifyRecursive(pts, max_i, hi, tol, keep);
  }
}

}  // namespace

LineString LineString::Simplified(double tolerance) const {
  if (points_.size() < 3) return *this;
  std::vector<bool> keep(points_.size(), false);
  keep.front() = true;
  keep.back() = true;
  SimplifyRecursive(points_, 0, points_.size() - 1, tolerance, keep);
  std::vector<Vec2> out;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (keep[i]) out.push_back(points_[i]);
  }
  return LineString(std::move(out));
}

LineString LineString::Offset(double d) const {
  if (points_.size() < 2) return *this;
  std::vector<Vec2> out;
  out.reserve(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    Vec2 dir;
    if (i == 0) {
      dir = (points_[1] - points_[0]).Normalized();
    } else if (i + 1 == points_.size()) {
      dir = (points_[i] - points_[i - 1]).Normalized();
    } else {
      dir = ((points_[i + 1] - points_[i]).Normalized() +
             (points_[i] - points_[i - 1]).Normalized())
                .Normalized();
    }
    out.push_back(points_[i] + dir.Perp() * d);
  }
  return LineString(std::move(out));
}

LineString LineString::Reversed() const {
  std::vector<Vec2> out(points_.rbegin(), points_.rend());
  return LineString(std::move(out));
}

Aabb LineString::BoundingBox() const {
  Aabb box;
  for (const Vec2& p : points_) box.Extend(p);
  return box;
}

}  // namespace hdmap
