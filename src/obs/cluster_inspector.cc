#include "obs/cluster_inspector.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "net/protocol.h"
#include "net/tile_server.h"

namespace hdmap {

namespace {

/// Events worth placing on the cluster-wide failover timeline.
bool IsFailoverEvent(EventLog::Type type) {
  return type == EventLog::Type::kFailoverDetected ||
         type == EventLog::Type::kFailoverComplete ||
         type == EventLog::Type::kReplicaCatchUp;
}

}  // namespace

ClusterInspector::ClusterInspector(Options options)
    : opts_(std::move(options)) {
  if (opts_.metrics != nullptr) {
    polls_ = opts_.metrics->GetCounter("cluster.polls");
    reachable_gauge_ = opts_.metrics->GetGauge("cluster.nodes_reachable");
    max_lag_records_gauge_ =
        opts_.metrics->GetGauge("cluster.max_lag_records");
    max_lag_ms_gauge_ = opts_.metrics->GetGauge("cluster.max_lag_ms");
    split_brain_gauge_ = opts_.metrics->GetGauge("cluster.split_brain_terms");
    opts_.metrics->SetHelp("cluster.nodes_reachable",
                           "Nodes that answered the latest kStats poll");
    opts_.metrics->SetHelp(
        "cluster.max_lag_records",
        "Worst follower lag in records across all leaders, latest poll");
    opts_.metrics->SetHelp(
        "cluster.max_lag_ms",
        "Worst follower lag in leader-clock ms, latest poll");
    opts_.metrics->SetHelp(
        "cluster.split_brain_terms",
        "Terms ever observed with more than one leader (should stay 0)");
  }
}

ClusterInspector::~ClusterInspector() { Stop(); }

void ClusterInspector::Start() {
  if (running_.exchange(true)) return;
  poller_ = std::thread([this] {
    while (running_.load()) {
      PollOnce();
      // Sleep in small slices so Stop() is prompt even with a long
      // configured interval.
      uint32_t slept = 0;
      while (running_.load() && slept < opts_.poll_interval_ms) {
        uint32_t slice = std::min<uint32_t>(opts_.poll_interval_ms - slept, 10);
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        slept += slice;
      }
    }
  });
}

void ClusterInspector::Stop() {
  running_.store(false);
  if (poller_.joinable()) poller_.join();
}

ClusterInspector::NodeStats ClusterInspector::PollNode(
    const NodeTarget& target) const {
  NodeStats unreachable;
  unreachable.node_id = target.node_id;

  NetClient client;
  NetClient::RetryOptions retry;
  retry.max_attempts = 1;
  retry.deadline_ms = opts_.io_timeout_ms;
  client.set_retry_options(retry);
  if (!client.Connect(target.host, target.port).ok()) return unreachable;

  NetRequest request;
  request.type = NetRequestType::kStats;
  request.stats_format = NetStatsFormat::kJson;
  request.stats_max_events = opts_.max_events_per_node;
  Result<NetResponse> response = client.CallWithRetry(request);
  if (!response.ok() || response.value().code != NetResponseCode::kOk) {
    return unreachable;
  }
  Result<NodeStats> parsed =
      ParseNodeStats(target.node_id, response.value().payload);
  return parsed.ok() ? std::move(parsed).value() : unreachable;
}

Result<ClusterInspector::NodeStats> ClusterInspector::ParseNodeStats(
    int node_id, std::string_view json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& doc = parsed.value();
  if (!doc.is_object()) {
    return Status::InvalidArgument("kStats document is not an object");
  }

  NodeStats stats;
  stats.node_id = node_id;
  stats.reachable = true;
  if (const JsonValue* node = doc.Find("node")) {
    stats.label = node->GetString("label");
    stats.health = node->GetString("health");
    stats.version = node->GetU64("version");
    stats.unix_ms = node->GetI64("unix_ms");
  }
  const JsonValue* repl = doc.Find("replication");
  if (repl != nullptr && repl->is_object()) {
    stats.role = repl->GetString("role");
    stats.term = repl->GetU64("term");
    stats.applied_seq = repl->GetU64("applied_seq");
    stats.log_end_seq = repl->GetU64("log_end_seq");
    stats.ms_since_leader_contact =
        repl->GetNumber("ms_since_leader_contact");
    if (const JsonValue* followers = repl->Find("followers")) {
      for (const JsonValue& entry : followers->array) {
        FollowerLag lag;
        lag.node_id = static_cast<int>(entry.GetI64("node_id"));
        lag.acked_seq = entry.GetU64("acked_seq");
        lag.lag_records = entry.GetU64("lag_records");
        lag.lag_ms = entry.GetNumber("lag_ms");
        stats.followers.push_back(lag);
      }
    }
  }
  if (const JsonValue* events = doc.Find("events")) {
    for (const JsonValue& entry : events->array) {
      EventLog::Event event;
      event.seq = entry.GetU64("seq");
      event.unix_ms = entry.GetI64("unix_ms");
      if (!EventLog::TypeFromString(entry.GetString("type"), &event.type)) {
        continue;  // A newer node's event type; skip rather than mislabel.
      }
      // trace_id travels as a string: 64-bit ids do not survive a double.
      event.trace_id = std::strtoull(
          entry.GetString("trace_id", "0").c_str(), nullptr, 10);
      event.detail = entry.GetString("detail");
      stats.events.push_back(std::move(event));
    }
  }
  return stats;
}

void ClusterInspector::PollOnce() {
  std::vector<NodeStats> round;
  round.reserve(opts_.nodes.size());
  for (const NodeTarget& target : opts_.nodes) {
    round.push_back(PollNode(target));
  }
  Fold(std::move(round));
  if (polls_ != nullptr) polls_->Increment();
}

void ClusterInspector::Fold(std::vector<NodeStats> round) {
  std::lock_guard<std::mutex> lock(mu_);
  view_.poll_seq += 1;
  view_.nodes = std::move(round);
  view_.reachable_nodes = 0;
  view_.max_lag_records = 0;
  view_.max_lag_ms = 0.0;

  for (const NodeStats& node : view_.nodes) {
    if (!node.reachable) continue;
    view_.reachable_nodes += 1;
    for (const FollowerLag& lag : node.followers) {
      view_.max_lag_records = std::max(view_.max_lag_records, lag.lag_records);
      view_.max_lag_ms = std::max(view_.max_lag_ms, lag.lag_ms);
    }
    // Leadership claims accumulate across polls: a deposed leader's
    // reign stays on the record, which is exactly what makes a split
    // brain (two claimants for ONE term) distinguishable from an
    // ordinary succession (one claimant per term).
    if (node.role == "LEADER" && node.term != 0) {
      std::vector<int>& claimants = view_.leaders_by_term[node.term];
      if (std::find(claimants.begin(), claimants.end(), node.node_id) ==
          claimants.end()) {
        claimants.push_back(node.node_id);
        std::sort(claimants.begin(), claimants.end());
      }
    }
    // Failover timeline: join this node's FAILOVER_* events, deduplicated
    // by (node, seq) against what earlier polls already placed.
    for (const EventLog::Event& event : node.events) {
      if (!IsFailoverEvent(event.type)) continue;
      bool seen = false;
      for (const TimelineEvent& existing : view_.failover_timeline) {
        if (existing.node_id == node.node_id &&
            existing.event.seq == event.seq) {
          seen = true;
          break;
        }
      }
      if (!seen) view_.failover_timeline.push_back({node.node_id, event});
    }
  }

  std::sort(view_.failover_timeline.begin(), view_.failover_timeline.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              if (a.event.unix_ms != b.event.unix_ms) {
                return a.event.unix_ms < b.event.unix_ms;
              }
              if (a.node_id != b.node_id) return a.node_id < b.node_id;
              return a.event.seq < b.event.seq;
            });

  view_.split_brain_terms.clear();
  for (const auto& [term, claimants] : view_.leaders_by_term) {
    if (claimants.size() > 1) view_.split_brain_terms.push_back(term);
  }

  if (reachable_gauge_ != nullptr) {
    reachable_gauge_->Set(static_cast<double>(view_.reachable_nodes));
    max_lag_records_gauge_->Set(static_cast<double>(view_.max_lag_records));
    max_lag_ms_gauge_->Set(view_.max_lag_ms);
    split_brain_gauge_->Set(static_cast<double>(view_.split_brain_terms.size()));
  }
}

ClusterInspector::ClusterView ClusterInspector::View() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

std::string ClusterInspector::MergeChromeTraceJson(
    const std::vector<std::string>& exports) {
  static constexpr std::string_view kPrefix =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::string out(kPrefix);
  bool first = true;
  for (const std::string& doc : exports) {
    size_t open = doc.find(kPrefix);
    if (open == std::string::npos) continue;
    size_t close = doc.rfind(']');
    if (close == std::string::npos || close <= open + kPrefix.size()) continue;
    std::string_view inner(doc.data() + open + kPrefix.size(),
                           close - open - kPrefix.size());
    // Trim the emitter's trailing newline so joins stay tidy.
    while (!inner.empty() && (inner.back() == '\n' || inner.back() == ' ')) {
      inner.remove_suffix(1);
    }
    if (inner.empty()) continue;
    if (!first) out += ',';
    first = false;
    out += inner;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace hdmap
