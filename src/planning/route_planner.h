#ifndef HDMAP_PLANNING_ROUTE_PLANNER_H_
#define HDMAP_PLANNING_ROUTE_PLANNER_H_

#include <vector>

#include "common/result.h"
#include "core/routing_graph.h"

namespace hdmap {

/// A lane-level route with search instrumentation.
struct Route {
  std::vector<ElementId> lanelets;
  double cost_seconds = 0.0;
  int lane_changes = 0;
  /// Nodes settled by the search (the efficiency metric compared across
  /// algorithms in the BHPS experiment [62]).
  size_t nodes_expanded = 0;
};

/// Search algorithm selector.
enum class RouteAlgorithm {
  kDijkstra = 0,
  kAStar = 1,
  /// Bidirectional hybrid path search (Yang et al. [62]): a forward
  /// breadth-layered frontier and a reverse Dijkstra frontier expanded
  /// alternately until they meet.
  kBhps = 2,
};

/// Shortest (travel-time) lane-level route from `from` to `to`.
/// kNotFound when no route exists.
Result<Route> PlanRoute(const RoutingGraph& graph, ElementId from,
                        ElementId to,
                        RouteAlgorithm algorithm = RouteAlgorithm::kAStar);

}  // namespace hdmap

#endif  // HDMAP_PLANNING_ROUTE_PLANNER_H_
