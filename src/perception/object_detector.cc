#include "perception/object_detector.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <numbers>

namespace hdmap {

namespace {

/// Terrain elevation at p: taken from the nearest lanelet's profile
/// (0 when far from the road network).
double GroundElevationAt(const HdMap& map, const Vec2& p) {
  auto match = map.MatchToLane(p, 40.0);
  if (!match.ok()) return 0.0;
  const Lanelet* ll = map.FindLanelet(match->lanelet_id);
  return ll == nullptr ? 0.0 : ll->ElevationAt(match->arc_length);
}

}  // namespace

std::vector<ScenePoint> SimulateSceneScan(
    const HdMap& map, const std::vector<SimObject>& objects,
    const Pose2& sensor_pose, const SceneScanOptions& options, Rng& rng) {
  std::vector<ScenePoint> scan;

  // Object returns.
  for (size_t oi = 0; oi < objects.size(); ++oi) {
    const SimObject& obj = objects[oi];
    if (obj.position.DistanceTo(sensor_pose.translation) > options.range) {
      continue;
    }
    double ground = GroundElevationAt(map, obj.position);
    for (int i = 0; i < options.points_per_object; ++i) {
      Vec2 local{rng.Uniform(-obj.half_length, obj.half_length),
                 rng.Uniform(-obj.half_width, obj.half_width)};
      ScenePoint p;
      p.position = obj.position + local.Rotated(obj.heading);
      p.z = ground + rng.Uniform(0.2, obj.height);
      p.object_index = static_cast<int>(oi);
      scan.push_back(p);
    }
  }

  // Off-road clutter: placed just outside the road corridor.
  Aabb extent = map.BoundingBox();
  for (int i = 0; i < options.clutter_points; ++i) {
    // Rejection-sample a point near the sensor but off the road.
    for (int attempt = 0; attempt < 10; ++attempt) {
      double angle = rng.Uniform(-std::numbers::pi, std::numbers::pi);
      double radius = rng.Uniform(5.0, options.range);
      Vec2 p = sensor_pose.translation +
               Vec2{std::cos(angle), std::sin(angle)} * radius;
      if (!extent.Contains(p)) continue;
      auto match = map.MatchToLane(p, options.clutter_band);
      if (match.ok() && match->distance < 5.0) continue;  // On the road.
      ScenePoint sp;
      sp.position = p;
      sp.z = GroundElevationAt(map, p) +
             rng.Uniform(options.clutter_height_min,
                         options.clutter_height_max);
      scan.push_back(sp);
      break;
    }
  }

  // Ground returns.
  for (int i = 0; i < options.ground_points; ++i) {
    double angle = rng.Uniform(-std::numbers::pi, std::numbers::pi);
    double radius = rng.Uniform(2.0, options.range);
    Vec2 p = sensor_pose.translation +
             Vec2{std::cos(angle), std::sin(angle)} * radius;
    ScenePoint sp;
    sp.position = p;
    sp.z = GroundElevationAt(map, p) + rng.Normal(0.0, options.ground_noise);
    scan.push_back(sp);
  }
  return scan;
}

std::vector<ObjectDetection> DetectObjects(
    const HdMap& map, const std::vector<ScenePoint>& scan,
    MapPriorMode mode, const DetectorOptions& options) {
  // 1) Ground removal under the selected prior.
  double online_ground = 0.0;
  if (mode == MapPriorMode::kOnlineEstimated) {
    // Estimate a single ground plane height as the low percentile of z
    // (what a map-less detector can do from one scan [6]).
    std::vector<double> zs;
    zs.reserve(scan.size());
    for (const ScenePoint& p : scan) zs.push_back(p.z);
    std::sort(zs.begin(), zs.end());
    online_ground = zs.empty() ? 0.0 : zs[zs.size() / 5];  // 20th pct.
  }
  std::vector<const ScenePoint*> elevated;
  for (const ScenePoint& p : scan) {
    double ground = 0.0;
    switch (mode) {
      case MapPriorMode::kNone:
        ground = 0.0;  // Flat-world assumption.
        break;
      case MapPriorMode::kOnlineEstimated:
        ground = online_ground;
        break;
      case MapPriorMode::kFullMap: {
        auto match = map.MatchToLane(p.position, 60.0);
        const Lanelet* ll =
            match.ok() ? map.FindLanelet(match->lanelet_id) : nullptr;
        ground = ll != nullptr ? ll->ElevationAt(match->arc_length) : 0.0;
        break;
      }
    }
    if (p.z - ground > options.ground_band) elevated.push_back(&p);
  }

  // 2) Grid clustering of elevated points.
  std::map<std::pair<int, int>, std::vector<const ScenePoint*>> cells;
  for (const ScenePoint* p : elevated) {
    cells[{static_cast<int>(std::floor(p->position.x / options.cluster_cell)),
           static_cast<int>(
               std::floor(p->position.y / options.cluster_cell))}]
        .push_back(p);
  }
  // Merge 8-connected cells into clusters via union-find over cell keys.
  std::map<std::pair<int, int>, std::pair<int, int>> parent;
  std::function<std::pair<int, int>(std::pair<int, int>)> find =
      [&](std::pair<int, int> k) {
        while (parent[k] != k) {
          parent[k] = parent[parent[k]];
          k = parent[k];
        }
        return k;
      };
  for (const auto& [key, pts] : cells) parent[key] = key;
  for (const auto& [key, pts] : cells) {
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        std::pair<int, int> nb{key.first + dx, key.second + dy};
        if (cells.count(nb) > 0) {
          parent[find(key)] = find(nb);
        }
      }
    }
  }
  std::map<std::pair<int, int>, std::vector<const ScenePoint*>> clusters;
  for (const auto& [key, pts] : cells) {
    auto& cluster = clusters[find(key)];
    cluster.insert(cluster.end(), pts.begin(), pts.end());
  }

  // 3) Emit detections; apply the road-mask prior under kFullMap.
  std::vector<ObjectDetection> detections;
  for (const auto& [root, pts] : clusters) {
    if (static_cast<int>(pts.size()) < options.min_cluster_points) continue;
    Vec2 centroid;
    std::map<int, int> votes;
    for (const ScenePoint* p : pts) {
      centroid += p->position;
      ++votes[p->object_index];
    }
    centroid = centroid / static_cast<double>(pts.size());
    if (mode == MapPriorMode::kFullMap) {
      auto match = map.MatchToLane(centroid, options.road_margin);
      if (!match.ok()) continue;  // Off-road: semantic prior rejects.
    }
    ObjectDetection det;
    det.centroid = centroid;
    det.num_points = static_cast<int>(pts.size());
    int best_votes = 0;
    for (const auto& [obj, count] : votes) {
      if (count > best_votes) {
        best_votes = count;
        det.majority_object = obj;
      }
    }
    detections.push_back(det);
  }
  return detections;
}

BinaryConfusion ScoreDetections(
    const std::vector<ObjectDetection>& detections,
    const std::vector<SimObject>& objects, double match_radius) {
  BinaryConfusion confusion;
  std::vector<bool> matched(objects.size(), false);
  for (const ObjectDetection& det : detections) {
    bool hit = false;
    for (size_t i = 0; i < objects.size(); ++i) {
      if (det.centroid.DistanceTo(objects[i].position) <= match_radius) {
        matched[i] = true;
        hit = true;
      }
    }
    if (hit) {
      ++confusion.tp;
    } else {
      ++confusion.fp;
    }
  }
  for (bool m : matched) {
    if (!m) ++confusion.fn;
  }
  return confusion;
}

}  // namespace hdmap
