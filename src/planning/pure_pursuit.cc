#include "planning/pure_pursuit.h"

#include <algorithm>
#include <cmath>

namespace hdmap {

PurePursuitController::Command PurePursuitController::Compute(
    const LineString& path, const Pose2& pose, double speed,
    double target_speed) const {
  Command cmd;
  if (path.size() < 2) {
    cmd.path_finished = true;
    return cmd;
  }
  LineStringProjection proj = path.Project(pose.translation);
  double lookahead =
      options_.lookahead_base + options_.lookahead_gain * speed;
  cmd.lookahead_s = proj.arc_length + lookahead;
  if (cmd.lookahead_s >= path.Length()) {
    cmd.lookahead_s = path.Length();
    if (proj.arc_length >= path.Length() - 0.5) {
      cmd.path_finished = true;
    }
  }
  Vec2 target = path.PointAt(cmd.lookahead_s);
  Vec2 local = pose.InverseTransformPoint(target);
  double d2 = local.SquaredNorm();
  if (d2 < 1e-6) {
    return cmd;
  }
  // Pure-pursuit curvature: kappa = 2 * y_local / d^2.
  double curvature = 2.0 * local.y / d2;
  cmd.steering = std::clamp(std::atan(curvature * options_.wheelbase),
                            -options_.max_steering, options_.max_steering);
  cmd.acceleration =
      std::clamp(options_.accel_gain * (target_speed - speed),
                 -options_.max_decel, options_.max_accel);
  return cmd;
}

}  // namespace hdmap
