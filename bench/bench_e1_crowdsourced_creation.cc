// E1 — Dabeer et al. [29]: end-to-end crowdsourced 3D mapping with
// cost-effective sensors. Paper: mean absolute landmark accuracy below
// 20 cm after corrective-feedback refinement.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "creation/crowd_mapper.h"
#include "sim/road_network_generator.h"
#include "sim/sensors.h"

namespace hdmap {
namespace {

std::vector<CrowdTraversal> MakeTraversals(const HdMap& map,
                                           const Lanelet& lane, int count,
                                           Rng& rng) {
  // Cost-effective sensor suite: consumer GPS with per-drive bias, good
  // relative detections (triangulated from multiple camera frames).
  LandmarkDetector::Options det_opt;
  det_opt.detection_prob = 0.9;
  det_opt.clutter_rate = 0.03;
  det_opt.range_noise_frac = 0.008;
  det_opt.bearing_noise_sigma = 0.004;
  LandmarkDetector detector(det_opt);
  std::vector<CrowdTraversal> traversals;
  for (int t = 0; t < count; ++t) {
    GpsSensor gps({0.7, 0.6, 0.0}, rng);
    CrowdTraversal trav;
    for (double s = 0.0; s < lane.Length(); s += 8.0) {
      Pose2 truth(lane.centerline.PointAt(s), lane.centerline.HeadingAt(s));
      trav.estimated_poses.push_back(
          Pose2(gps.Measure(truth.translation, rng), truth.heading));
      trav.detections.push_back(detector.Detect(map, truth, rng));
    }
    traversals.push_back(std::move(trav));
  }
  return traversals;
}

int Run() {
  bench::PrintHeader("E1", "Crowdsourced HD map creation [29]",
                     "mean absolute accuracy < 20 cm via crowd capacity + "
                     "corrective feedback");

  Rng rng(301);
  HighwayOptions opt;
  opt.length = 4000.0;
  opt.sign_spacing = 80.0;
  auto hw = GenerateHighway(opt, rng);
  if (!hw.ok()) return 1;
  const Lanelet* lane = nullptr;
  for (const auto& [id, ll] : hw->lanelets()) {
    if (ll.predecessors.empty() && !ll.successors.empty()) {
      lane = &ll;
      break;
    }
  }
  if (lane == nullptr) return 1;

  std::printf("  crowd size sweep (corrective feedback ON):\n");
  std::printf("    %-12s %-18s %-18s\n", "traversals",
              "mean abs err (cm)", "landmarks mapped");
  double final_err_cm = 0.0;
  for (int count : {5, 15, 40}) {
    Rng crowd_rng(400 + count);
    // Reconstruct the full corridor: drive the whole forward chain.
    std::vector<CrowdTraversal> traversals;
    const Lanelet* cur = lane;
    // Build one long "virtual lane" by concatenating the chain per
    // traversal.
    LandmarkDetector::Options det_opt;
    (void)det_opt;
    traversals = MakeTraversals(*hw, *lane, count, crowd_rng);
    const Lanelet* next = lane->successors.empty()
                              ? nullptr
                              : hw->FindLanelet(lane->successors.front());
    while (next != nullptr) {
      auto more = MakeTraversals(*hw, *next, count, crowd_rng);
      for (int t = 0; t < count; ++t) {
        auto& dst = traversals[static_cast<size_t>(t)];
        auto& src = more[static_cast<size_t>(t)];
        dst.estimated_poses.insert(dst.estimated_poses.end(),
                                   src.estimated_poses.begin(),
                                   src.estimated_poses.end());
        dst.detections.insert(dst.detections.end(), src.detections.begin(),
                              src.detections.end());
      }
      next = next->successors.empty()
                 ? nullptr
                 : hw->FindLanelet(next->successors.front());
    }
    (void)cur;
    CrowdMapper mapper({});
    auto mapped = mapper.Map(traversals);
    auto errors = ScoreMappedLandmarks(mapped, *hw);
    double err_cm = Mean(errors) * 100.0;
    final_err_cm = err_cm;
    std::printf("    %-12d %-18.1f %zu\n", count, err_cm, mapped.size());
  }

  // Ablation: feedback off at the largest crowd size.
  {
    Rng crowd_rng(440);
    auto traversals = MakeTraversals(*hw, *lane, 40, crowd_rng);
    CrowdMapper::Options no_fb;
    no_fb.feedback_iterations = 0;
    auto raw = CrowdMapper(no_fb).Map(traversals);
    CrowdMapper::Options fb;
    auto refined = CrowdMapper(fb).Map(traversals);
    bench::PrintRow("error without corrective feedback (cm)",
                    "(worse)",
                    bench::Fmt("%.1f", Mean(ScoreMappedLandmarks(raw, *hw)) *
                                           100.0));
    bench::PrintRow(
        "error with corrective feedback (cm)", "< 20",
        bench::Fmt("%.1f", Mean(ScoreMappedLandmarks(refined, *hw)) * 100.0));
  }
  bench::PrintRow("full-corridor accuracy at crowd=40 (cm)", "< 20",
                  bench::Fmt("%.1f", final_err_cm));
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
