# Empty dependencies file for hdmap_sim.
# This may be replaced when dependencies are built.
