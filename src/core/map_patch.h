#ifndef HDMAP_CORE_MAP_PATCH_H_
#define HDMAP_CORE_MAP_PATCH_H_

#include <vector>

#include "common/status.h"
#include "core/hd_map.h"

namespace hdmap {

/// A changeset produced by maintenance pipelines and applied to an HdMap.
/// Covers the element classes that change at high rates in practice
/// (landmarks and line features: SLAMCU [41], Pannen [44], Tas [11] all
/// report sign/marking-level updates) plus the relational layer (lanelets,
/// regulatory elements) that rule-level rollouts touch.
struct MapPatch {
  std::vector<Landmark> added_landmarks;
  std::vector<ElementId> removed_landmarks;
  struct Move {
    ElementId id = kInvalidId;
    Vec3 new_position;
  };
  std::vector<Move> moved_landmarks;
  std::vector<LineFeature> updated_line_features;  // Replace-by-id.

  // Relational-layer changes (all replace-by-id / remove-by-id; adding a
  // lanelet or regulatory element goes through the construction pipeline,
  // not a patch).
  std::vector<Lanelet> updated_lanelets;
  std::vector<ElementId> removed_lanelets;
  std::vector<RegulatoryElement> updated_regulatory_elements;
  std::vector<ElementId> removed_regulatory_elements;

  bool IsEmpty() const { return NumChanges() == 0; }
  size_t NumChanges() const {
    return added_landmarks.size() + removed_landmarks.size() +
           moved_landmarks.size() + updated_line_features.size() +
           updated_lanelets.size() + removed_lanelets.size() +
           updated_regulatory_elements.size() +
           removed_regulatory_elements.size();
  }
};

/// Applies a patch in-place through HdMap's regular mutation surface
/// (Add*/Remove*/Move*/Replace*). Add of an existing id fails with
/// kAlreadyExists; removal/move/update of a missing id with kNotFound;
/// earlier entries stay applied (caller controls transactionality by
/// validating first or applying to a copy, as MapService::Publish does).
Status ApplyPatch(const MapPatch& patch, HdMap* map);

/// Landmark-level diff: the patch that transforms `before` into `after`.
/// Positions differing by more than `move_tolerance` meters become moves.
MapPatch DiffLandmarks(const HdMap& before, const HdMap& after,
                       double move_tolerance = 0.05);

}  // namespace hdmap

#endif  // HDMAP_CORE_MAP_PATCH_H_
