#ifndef HDMAP_NET_PROTOCOL_H_
#define HDMAP_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/tile_store.h"
#include "geometry/aabb.h"

namespace hdmap {

/// Wire protocol of the framed-TCP tile server (net/tile_server.h): a
/// length-prefixed request/response framing whose payloads are the
/// existing CRC32 wire-framed serializations (core/wire_frame.h) carried
/// verbatim — a tile fetched over this protocol is byte-identical to the
/// blob in the server's TileStore, and the reply path never re-encodes
/// map content.
///
/// Frame layout (all integers little-endian):
///
///   request   u32 magic 'HDMQ' | u32 body_len | u32 crc32(body) | body
///   response  u32 magic 'HDMS' | u32 body_len | u32 crc32(meta) | body
///
/// Request body:
///
///   u8 type | u64 request_id | u64 have_version | [trace block]
///     | type-specific args
///     kPing       (no args)
///     kGetTile    i32 x | i32 y
///     kGetRegion  f64 min_x | f64 min_y | f64 max_x | f64 max_y
///     kReplicate  opaque replication payload (rest of body)
///     kCatchUp    opaque replication payload (rest of body)
///     kStats      u8 format (NetStatsFormat) | u32 max_events
///
/// Trace propagation (protocol v2): when the high bit of the type byte
/// (kNetTraceFlag) is set, a 17-byte trace block follows have_version:
///
///   u64 trace_id | u64 parent_span_id | u8 flags (bit0 = sampled)
///
/// and the type-specific args follow the block. An encoder with no
/// active trace context leaves the flag clear, producing bytes identical
/// to protocol v1 — so a v2 client talking to a v1 server interoperates
/// whenever propagation is off, and a v1 client's requests decode
/// unchanged on a v2 server. A flagged request reaching a v1 decoder
/// fails as a typed kError (unknown type >= 0x80) without losing
/// framing: the connection survives, only that request is refused.
///
/// kReplicate/kCatchUp are the replication plane (replication/wire.h
/// defines their payloads): a leader's WalShipper pushes WAL record
/// batches and catch-up snapshots to a follower's TileServer, which
/// routes them to its ReplicationHandler and acks in the response
/// payload. They share the framing, CRC, and connection machinery with
/// the client plane, but a server only accepts them (and only then
/// accepts bodies larger than kMaxNetRequestBody) when a replication
/// handler is configured.
///
/// Response body = meta | payload:
///
///   meta: u8 code | u8 status | u64 request_id | u64 version
///   payload by code:
///     kOk           framed SerializeMap bytes (region or tile), or empty
///                   (Ping)
///     kNotModified  empty — the client's have_version is current
///     kBusy         empty — admission control shed the request; retry
///     kDelta        framed patch sequence (EncodeDeltaPayload): apply in
///                   order to locally reach `version`
///     kError        human-readable message (status carries the code)
///
/// Integrity: the request CRC covers the whole body (requests are small
/// and not otherwise protected). The response CRC covers only the
/// 18-byte meta — kOk/kDelta payloads already carry their own embedded
/// frame CRCs (that is the point of shipping them verbatim), so a second
/// whole-payload CRC would charge every response a full extra checksum
/// pass for bytes that are re-verified at decode anyway.
///
/// request_id is an opaque client token echoed in the response meta;
/// clients use it to pair pipelined responses with requests. Responses to
/// one connection may arrive in any order (the server coalesces and
/// schedules across worker threads).
enum class NetRequestType : uint8_t {
  kPing = 0,
  kGetTile = 1,
  kGetRegion = 2,
  /// Leader -> follower: a batch of replication log records (or an empty
  /// batch as a heartbeat). Only served with a replication handler.
  kReplicate = 3,
  /// Leader -> follower: a full catch-up snapshot for a follower whose
  /// position was trimmed from the leader's log.
  kCatchUp = 4,
  /// Remote introspection: the node's metrics (Prometheus or JSON),
  /// recent events, health, and replication status in one response.
  /// Exempt from admission shedding so a scrape still answers under
  /// overload (the kBusy storm is exactly when you need it).
  kStats = 5,
};

/// High bit of the request type byte: a 17-byte trace block
/// (u64 trace_id | u64 parent_span_id | u8 flags) follows have_version.
inline constexpr uint8_t kNetTraceFlag = 0x80;
/// Low bits of the type byte (the actual NetRequestType).
inline constexpr uint8_t kNetTypeMask = 0x7F;
/// Bit0 of the trace-block flags byte: the trace was head-sampled.
inline constexpr uint8_t kNetTraceSampledBit = 0x01;
/// Size of the optional trace block.
inline constexpr size_t kNetTraceBlockSize = 17;

/// Payload format of a kStats request.
enum class NetStatsFormat : uint8_t {
  kJson = 0,        ///< Node-status JSON document (see DESIGN.md §13).
  kPrometheus = 1,  ///< MetricsRegistry::RenderPrometheus() text only.
};

enum class NetResponseCode : uint8_t {
  kOk = 0,
  kNotModified = 1,
  kBusy = 2,
  kDelta = 3,
  kError = 4,
};

std::string_view NetResponseCodeToString(NetResponseCode code);

/// One decoded request.
struct NetRequest {
  NetRequestType type = NetRequestType::kPing;
  /// Opaque client token, echoed in the response meta.
  uint64_t request_id = 0;
  /// Conditional fetch: the snapshot version the client already holds;
  /// 0 requests an unconditional full fetch.
  uint64_t have_version = 0;
  TileId tile;  ///< kGetTile only.
  Aabb box;     ///< kGetRegion only.
  /// kReplicate/kCatchUp only: opaque replication-plane payload, carried
  /// verbatim after the fixed prefix (replication/wire.h encodes it).
  std::string payload;
  /// Propagated trace context (0 = none); the server adopts it so its
  /// spans parent under the client's trace across the process boundary.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool trace_sampled = false;
  /// kStats only.
  NetStatsFormat stats_format = NetStatsFormat::kJson;
  uint32_t stats_max_events = 32;
};

/// One decoded response (client side).
struct NetResponse {
  NetResponseCode code = NetResponseCode::kOk;
  /// Error detail for kError (kOk otherwise).
  StatusCode status = StatusCode::kOk;
  uint64_t request_id = 0;
  /// Server snapshot version the response reflects (the version a kDelta
  /// payload reaches; the version kNotModified confirms).
  uint64_t version = 0;
  /// Raw payload bytes (see the code table above). For kError this is the
  /// message text.
  std::string payload;
};

inline constexpr uint32_t kNetRequestMagic = 0x514D4448;   // "HDMQ"
inline constexpr uint32_t kNetResponseMagic = 0x534D4448;  // "HDMS"
/// magic + body_len + crc.
inline constexpr size_t kNetFrameHeaderSize = 12;
/// code + status + request_id + version.
inline constexpr size_t kNetResponseMetaSize = 18;
/// Largest legal request body. Client requests are fixed-shape and tiny;
/// a larger claim is a protocol violation (or garbage on the port), not a
/// big request.
inline constexpr size_t kMaxNetRequestBody = 256;
/// Largest legal request body on a server with a replication handler:
/// kReplicate batches and kCatchUp snapshots carry map content (256 MiB
/// still guards allocation against a corrupt length field).
inline constexpr size_t kMaxNetReplicationBody = static_cast<size_t>(256)
                                                 << 20;
/// Largest legal response body a client will accept (1 GiB guards the
/// client against allocating on a corrupt length field).
inline constexpr size_t kMaxNetResponseBody = static_cast<size_t>(1)
                                              << 30;

/// Encodes a complete request frame (header + CRC'd body). The trace
/// block is emitted only when request.trace_id != 0; otherwise the bytes
/// are identical to protocol v1.
std::string EncodeRequestFrame(const NetRequest& request);

/// Same, with `ctx` injected as the request's trace fields (the
/// NetClient's choke point: every wrapper, retry attempt, and
/// replication batch routes through here, so an active ambient context
/// rides along without the call sites copying fields). Avoids copying
/// large replication payloads into a patched NetRequest.
std::string EncodeRequestFrame(const NetRequest& request,
                               const TraceContext& ctx);

/// Encodes a complete response frame. `payload` is appended verbatim
/// after the meta (zero re-encode; one copy into the output buffer).
std::string EncodeResponseFrame(NetResponseCode code, StatusCode status,
                                uint64_t request_id, uint64_t version,
                                std::string_view payload);

/// Incremental frame extraction over a connection's receive buffer.
enum class FrameParse {
  /// The buffer holds a prefix of a valid frame; read more bytes.
  kNeedMore,
  /// A complete frame sits at the front of the buffer.
  kFrame,
  /// The bytes at the front cannot be a frame of the expected kind (bad
  /// magic or an oversized body length): framing is lost and the
  /// connection cannot be resynchronized — close it.
  kViolation,
};

/// Examines the front of `buffer` for a frame with `expected_magic` and a
/// body no larger than `max_body`. On kFrame, sets `*frame_size` to the
/// total frame length (header + body) and `*body` to a view of the body
/// bytes inside `buffer`; the caller consumes `*frame_size` bytes. The
/// header CRC field is NOT checked here (its coverage differs between
/// requests and responses); Decode*Frame does that.
FrameParse ExtractFrame(std::string_view buffer, uint32_t expected_magic,
                        size_t max_body, size_t* frame_size,
                        std::string_view* body);

/// Decodes a request body whose header claimed `header_crc`. kDataLoss
/// when the CRC mismatches the body bytes (bit damage in transit — the
/// connection is still framed, so the server answers kError and keeps
/// it); kInvalidArgument for an unknown type or malformed args.
Result<NetRequest> DecodeRequestBody(std::string_view body,
                                     uint32_t header_crc);

/// Decodes a response body whose header claimed `header_crc` (covering
/// the meta only). kDataLoss on meta CRC mismatch or truncated meta.
Result<NetResponse> DecodeResponseBody(std::string_view body,
                                       uint32_t header_crc);

/// Packs framed SerializePatch payloads (PatchesSince output, in apply
/// order) into one kDelta payload: u32 count | count x (u32 len | bytes).
std::string EncodeDeltaPayload(const std::vector<std::string>& patches);

/// Unpacks a kDelta payload into the framed patch payloads. Each entry
/// still carries its own frame CRC; decode with DeserializePatch.
Result<std::vector<std::string>> DecodeDeltaPayload(std::string_view payload);

}  // namespace hdmap

#endif  // HDMAP_NET_PROTOCOL_H_
