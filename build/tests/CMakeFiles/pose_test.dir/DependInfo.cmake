
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pose_test.cc" "tests/CMakeFiles/pose_test.dir/pose_test.cc.o" "gcc" "tests/CMakeFiles/pose_test.dir/pose_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pose/CMakeFiles/hdmap_pose.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hdmap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hdmap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
