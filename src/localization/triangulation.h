#ifndef HDMAP_LOCALIZATION_TRIANGULATION_H_
#define HDMAP_LOCALIZATION_TRIANGULATION_H_

#include <vector>

#include "common/result.h"
#include "geometry/vec2.h"

namespace hdmap {

/// One landmark observation with a known (map-resolved) world position.
struct RangeObservation {
  Vec2 landmark_world;
  double range = 0.0;
};

/// Position fix from range-only multilateration against pre-mapped
/// landmarks (Juang [72]: map-aided self-positioning from LiDAR landmark
/// ranges). Solves the linearized system via least squares; needs >= 3
/// non-collinear landmarks.
Result<Vec2> TriangulatePosition(
    const std::vector<RangeObservation>& observations);

/// Predicted 1-sigma position error of a range-based fix from the
/// landmark geometry (Zheng & Wang [49] geometric analysis): propagates
/// the per-landmark range noise sigma_i = range_sigma * (1 +
/// range_noise_growth * distance_i) through the weighted multilateration
/// normal equations. Captures both effects the paper reports: error
/// shrinks with feature count and grows with feature distance.
/// Degenerate geometry (collinear or < 3 landmarks) returns infinity.
double PredictedPositionSigma(const Vec2& vehicle,
                              const std::vector<Vec2>& landmarks,
                              double range_sigma,
                              double range_noise_growth = 0.02);

}  // namespace hdmap

#endif  // HDMAP_LOCALIZATION_TRIANGULATION_H_
