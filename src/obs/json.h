#ifndef HDMAP_OBS_JSON_H_
#define HDMAP_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace hdmap {

/// Minimal owned JSON document, just enough to consume the kStats node
/// document (node header, replication status, events, metrics) without an
/// external dependency. Objects preserve insertion order and are scanned
/// linearly on lookup — the documents are tens of keys, not thousands.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Member lookup; null when this is not an object or the key is absent.
  const JsonValue* Find(std::string_view key) const;

  /// Typed member accessors with fallbacks (missing key, wrong kind, or
  /// non-object receiver all yield the fallback — scraping must not
  /// crash on a node running an older payload shape).
  std::string GetString(std::string_view key,
                        const std::string& fallback = std::string()) const;
  double GetNumber(std::string_view key, double fallback = 0.0) const;
  uint64_t GetU64(std::string_view key, uint64_t fallback = 0) const;
  int64_t GetI64(std::string_view key, int64_t fallback = 0) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing junk is
/// an error). Depth-limited to keep hostile input from recursing the
/// stack away.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace hdmap

#endif  // HDMAP_OBS_JSON_H_
