file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_perception_priors.dir/bench_e9_perception_priors.cc.o"
  "CMakeFiles/bench_e9_perception_priors.dir/bench_e9_perception_priors.cc.o.d"
  "bench_e9_perception_priors"
  "bench_e9_perception_priors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_perception_priors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
