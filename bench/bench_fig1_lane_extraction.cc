// F1 — Fig. 1 (Matyus et al. [27]): image-based lane extraction fusing
// aerial and ground-level imagery. Paper: fused road extraction error
// 0.57 m vs 1.67 m for GPS+IMU alone; inference ~6 s/km.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "creation/aerial_fusion.h"
#include "sim/road_network_generator.h"
#include "sim/sensors.h"

namespace hdmap {
namespace {

int Run() {
  bench::PrintHeader(
      "F1 (Fig. 1)", "Aerial+ground cooperative lane extraction [27]",
      "fused 0.57 m vs GPS+IMU 1.67 m average error; ~6 s/km inference");

  Rng rng(101);
  HighwayOptions opt;
  opt.length = 8000.0;
  opt.curve_amplitude = 0.1;
  opt.sign_spacing = 1e9;  // No signs needed here.
  auto hw = GenerateHighway(opt, rng);
  if (!hw.ok()) return 1;

  RunningStats aerial_errs, poses_errs, fused_errs;
  double total_km = 0.0;
  bench::Timer timer;

  for (const auto& [id, lanelet] : hw->lanelets()) {
    if (lanelet.Length() < 300.0) continue;
    // Only forward-direction lanes (one side is enough for the figure).
    if (lanelet.centerline.front().x > lanelet.centerline.back().x) continue;
    total_km += lanelet.Length() / 1000.0;

    // Phase 1-2: aerial decoding with a per-image georeferencing error.
    AerialRoadEstimate aerial = DecodeAerialWithOffset(
        lanelet, 0.5,
        {rng.Normal(0.0, 1.2), rng.Normal(0.0, 1.2)});
    aerial_errs.Add(CenterlineError(aerial.centerline, lanelet.centerline));

    // Phase 3: ground-level lane detections from GPS+IMU vehicles.
    std::vector<GroundObservation> ground;
    for (int vehicle = 0; vehicle < 5; ++vehicle) {
      GpsSensor gps({1.3, 1.1, 0.0}, rng);
      for (double s = 0.0; s < lanelet.Length(); s += 10.0) {
        GroundObservation obs;
        Vec2 truth = lanelet.centerline.PointAt(s);
        obs.estimated_pose =
            Pose2(gps.Measure(truth, rng), lanelet.centerline.HeadingAt(s));
        obs.detected_center_offset = rng.Normal(0.0, 0.12);
        ground.push_back(obs);
      }
    }
    poses_errs.Add(
        CenterlineError(MapFromPosesOnly(ground), lanelet.centerline));

    // Phase 4: cooperative fusion on the common grid.
    fused_errs.Add(CenterlineError(FuseAerialAndGround(aerial, ground),
                                   lanelet.centerline));
  }

  double seconds_per_km = timer.Seconds() / std::max(0.1, total_km);
  bench::PrintRow("GPS+IMU-only mapping error (m)", "1.67",
                  bench::Fmt("%.2f", poses_errs.mean()));
  bench::PrintRow("aerial-only decoding error (m)", "(intermediate)",
                  bench::Fmt("%.2f", aerial_errs.mean()));
  bench::PrintRow("fused extraction error (m)", "0.57",
                  bench::Fmt("%.2f", fused_errs.mean()));
  bench::PrintRow("improvement factor fused vs GPS+IMU", "~2.9x",
                  bench::Fmt("%.1fx", poses_errs.mean() /
                                          std::max(1e-9, fused_errs.mean())));
  bench::PrintRow("inference time (s/km)", "6",
                  bench::Fmt("%.3f", seconds_per_km));
  std::printf("  segments evaluated: %zu over %.1f km\n\n",
              fused_errs.count(), total_km);
  return fused_errs.mean() < poses_errs.mean() ? 0 : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
