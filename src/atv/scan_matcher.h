#ifndef HDMAP_ATV_SCAN_MATCHER_H_
#define HDMAP_ATV_SCAN_MATCHER_H_

#include <vector>

#include "atv/occupancy_grid.h"
#include "geometry/pose2.h"

namespace hdmap {

/// Grid-based scan matching: corrects a predicted (odometry) pose by
/// maximizing the occupancy of the scan's hit endpoints in the map grid
/// — the pose-correction core of the ATV's visual SLAM (Tas et al.
/// [10, 11]). Hill climbing with step halving; adequate for the small
/// per-step drift of an indoor vehicle.
class GridScanMatcher {
 public:
  struct Options {
    double initial_step = 0.3;      ///< Meters.
    double initial_heading_step = 0.04;  ///< Radians.
    int halvings = 3;
    /// Occupancy below this contributes nothing (unknown space).
    double occupied_threshold = 0.55;
  };

  explicit GridScanMatcher(const Options& options) : options_(options) {}

  struct MatchResult {
    Pose2 pose;
    double score = 0.0;   ///< Mean endpoint occupancy in [0, 1].
  };

  /// Refines `predicted` so the vehicle-frame `hit_points` (range-scan
  /// endpoints that hit an obstacle) land on occupied grid cells.
  MatchResult Refine(const OccupancyGrid& grid, const Pose2& predicted,
                     const std::vector<Vec2>& hit_points) const;

 private:
  double Score(const OccupancyGrid& grid, const Pose2& pose,
               const std::vector<Vec2>& hit_points) const;

  Options options_;
};

}  // namespace hdmap

#endif  // HDMAP_ATV_SCAN_MATCHER_H_
