#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"
#include "maintenance/change_detector.h"
#include "maintenance/crowd_sensing.h"
#include "maintenance/incremental_fusion.h"
#include "maintenance/slamcu.h"
#include "sim/change_injector.h"
#include "sim/sensors.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

TEST(SlamcuTest, DetectsInjectedSignChanges) {
  HdMap mapped = StraightRoad(1000.0, 50.0);
  HdMap world = mapped;
  Rng rng(41);
  ChangeInjectorOptions copt;
  copt.landmark_add_prob = 0.15;
  copt.landmark_remove_prob = 0.15;
  copt.landmark_move_prob = 0.0;
  auto events = InjectChanges(copt, &world, rng);
  int true_adds = 0, true_removes = 0;
  for (const auto& ev : events) {
    if (ev.type == ChangeType::kLandmarkAdded) ++true_adds;
    if (ev.type == ChangeType::kLandmarkRemoved) ++true_removes;
  }
  ASSERT_GT(true_adds + true_removes, 0);

  LandmarkDetector::Options det_opt;
  det_opt.detection_prob = 0.95;
  det_opt.clutter_rate = 0.01;
  LandmarkDetector detector(det_opt);
  Slamcu slamcu(&mapped, {});
  // Several passes over the road with good localization.
  for (int pass = 0; pass < 4; ++pass) {
    for (double x = 0.0; x < 1000.0; x += 5.0) {
      Pose2 truth(x, -1.75, 0.0);
      Pose2 estimated(truth.translation + Vec2{rng.Normal(0.0, 0.1),
                                               rng.Normal(0.0, 0.1)},
                      rng.Normal(0.0, 0.005));
      slamcu.ProcessFrame(estimated, detector.Detect(world, truth, rng));
    }
  }

  auto additions = slamcu.ConfirmedAdditions();
  auto removals = slamcu.ConfirmedRemovals();
  // Recall: most injected adds/removes are found.
  int adds_found = 0;
  for (const auto& ev : events) {
    if (ev.type != ChangeType::kLandmarkAdded) continue;
    for (const auto& track : additions) {
      if (track.mean.DistanceTo(ev.new_position.xy()) < 2.0) {
        ++adds_found;
        break;
      }
    }
  }
  int removes_found = 0;
  for (const auto& ev : events) {
    if (ev.type != ChangeType::kLandmarkRemoved) continue;
    for (ElementId id : removals) {
      if (id == ev.element_id) {
        ++removes_found;
        break;
      }
    }
  }
  if (true_adds > 0) {
    EXPECT_GE(adds_found, (true_adds * 2) / 3);
  }
  if (true_removes > 0) {
    EXPECT_GE(removes_found, (true_removes * 2) / 3);
  }
  // Precision on additions: estimates lie near the injected positions.
  RunningStats err;
  for (const auto& track : additions) {
    double best = 5.0;
    for (const auto& ev : events) {
      if (ev.type != ChangeType::kLandmarkAdded) continue;
      best = std::min(best, track.mean.DistanceTo(ev.new_position.xy()));
    }
    err.Add(best);
  }
  if (err.count() > 0) {
    EXPECT_LT(err.mean(), 1.5);
  }
  // The patch applies cleanly to the mapped map.
  MapPatch patch = slamcu.BuildPatch();
  EXPECT_EQ(patch.NumChanges(),
            additions.size() + removals.size() +
                slamcu.ConfirmedMoves().size());
  HdMap updated = mapped;
  EXPECT_TRUE(ApplyPatch(patch, &updated).ok());
}

TEST(SlamcuTest, NoChangesNoReport) {
  HdMap mapped = StraightRoad();
  Rng rng(42);
  LandmarkDetector::Options det_opt;
  det_opt.detection_prob = 0.95;
  det_opt.clutter_rate = 0.0;
  LandmarkDetector detector(det_opt);
  Slamcu slamcu(&mapped, {});
  for (double x = 0.0; x < 1000.0; x += 5.0) {
    Pose2 truth(x, -1.75, 0.0);
    slamcu.ProcessFrame(truth, detector.Detect(mapped, truth, rng));
  }
  EXPECT_TRUE(slamcu.ConfirmedAdditions().empty());
  EXPECT_TRUE(slamcu.ConfirmedRemovals().empty());
  EXPECT_TRUE(slamcu.BuildPatch().IsEmpty());
}

SectionFeatures MakeFeatures(bool changed, Rng& rng) {
  SectionFeatures f;
  if (changed) {
    f.inlier_ratio = std::clamp(rng.Normal(0.55, 0.15), 0.0, 1.0);
    f.mean_residual = std::max(0.0, rng.Normal(0.8, 0.3));
    f.filter_spread = std::max(0.0, rng.Normal(1.2, 0.4));
    f.gps_disagreement = std::max(0.0, rng.Normal(1.5, 0.6));
  } else {
    f.inlier_ratio = std::clamp(rng.Normal(0.9, 0.08), 0.0, 1.0);
    f.mean_residual = std::max(0.0, rng.Normal(0.25, 0.12));
    f.filter_spread = std::max(0.0, rng.Normal(0.5, 0.2));
    f.gps_disagreement = std::max(0.0, rng.Normal(0.8, 0.4));
  }
  return f;
}

TEST(BoostedClassifierTest, LearnsSeparableProblem) {
  Rng rng(43);
  std::vector<LabeledSection> train;
  for (int i = 0; i < 400; ++i) {
    bool changed = i % 2 == 0;
    train.push_back({MakeFeatures(changed, rng), changed});
  }
  BoostedStumpClassifier classifier;
  classifier.Train(train, 25);
  EXPECT_GT(classifier.stumps().size(), 3u);

  BinaryConfusion confusion;
  for (int i = 0; i < 400; ++i) {
    bool changed = rng.Bernoulli(0.5);
    confusion.Add(classifier.Predict(MakeFeatures(changed, rng)), changed);
  }
  EXPECT_GT(confusion.Accuracy(), 0.8);
}

TEST(BoostedClassifierTest, MultiTraversalBeatsSingle) {
  Rng rng(44);
  std::vector<LabeledSection> train;
  for (int i = 0; i < 400; ++i) {
    bool changed = i % 2 == 0;
    train.push_back({MakeFeatures(changed, rng), changed});
  }
  BoostedStumpClassifier classifier;
  classifier.Train(train, 25);

  BinaryConfusion single, multi;
  for (int trial = 0; trial < 300; ++trial) {
    bool changed = rng.Bernoulli(0.5);
    std::vector<SectionFeatures> traversals;
    for (int t = 0; t < 15; ++t) {
      traversals.push_back(MakeFeatures(changed, rng));
    }
    single.Add(classifier.Predict(traversals[0]), changed);
    multi.Add(ClassifySectionMultiTraversal(classifier, traversals),
              changed);
  }
  EXPECT_GT(multi.Sensitivity(), single.Sensitivity() - 0.02);
  EXPECT_GT(multi.Accuracy(), single.Accuracy());
  EXPECT_GT(multi.Sensitivity(), 0.9);
}

TEST(BoostedClassifierTest, EmptyTrainingIsSafe) {
  BoostedStumpClassifier classifier;
  classifier.Train({}, 10);
  EXPECT_TRUE(classifier.stumps().empty());
  EXPECT_EQ(classifier.Score(SectionFeatures{}), 0.0);
}

TEST(IncrementalFuserTest, ConvergesToMeasurements) {
  IncrementalFuser fuser({});
  fuser.AddElement(1, {10.0, 10.0});
  Rng rng(45);
  for (int i = 0; i < 30; ++i) {
    fuser.Fuse({{10.5 + rng.Normal(0.0, 0.1), 10.5 + rng.Normal(0.0, 0.1)},
                true,
                static_cast<double>(i)});
  }
  const auto* e = fuser.Find(1);
  ASSERT_NE(e, nullptr);
  EXPECT_LT(e->position.DistanceTo({10.5, 10.5}), 0.15);
  EXPECT_GT(e->semantic_confidence, 0.9);
  // Steady-state variance is bounded by the decay/measurement balance.
  EXPECT_LT(e->variance, 0.2);
}

TEST(IncrementalFuserTest, TimeDecayAdaptsAfterChange) {
  // Two fusers: one with decay, one without. The element moved 2 m after
  // a long gap; the decayed estimate adapts faster.
  IncrementalFuser::Options with_decay;
  with_decay.decay_variance_per_day = 0.1;
  IncrementalFuser::Options no_decay;
  no_decay.decay_variance_per_day = 0.0;
  IncrementalFuser a(with_decay), b(no_decay);
  for (auto* fuser : {&a, &b}) {
    fuser->AddElement(1, {0.0, 0.0});
    for (int i = 0; i < 20; ++i) {
      fuser->Fuse({{0.0, 0.0}, true, static_cast<double>(i) * 0.1});
    }
  }
  // 100 days later, the world element sits at (2, 0).
  for (int i = 0; i < 3; ++i) {
    double day = 100.0 + i;
    a.Fuse({{2.0, 0.0}, true, day});
    b.Fuse({{2.0, 0.0}, true, day});
  }
  EXPECT_GT(a.Find(1)->position.x, b.Find(1)->position.x);
  EXPECT_GT(a.Find(1)->position.x, 1.0);
}

TEST(IncrementalFuserTest, SemanticMismatchLowersConfidence) {
  IncrementalFuser fuser({});
  fuser.AddElement(1, {0, 0});
  fuser.Fuse({{0, 0}, true, 0.0});
  double before = fuser.Find(1)->semantic_confidence;
  fuser.Fuse({{0, 0}, false, 1.0});
  EXPECT_LT(fuser.Find(1)->semantic_confidence, before);
}

TEST(IncrementalFuserTest, FeedbackQueueRetriesAndDrops) {
  IncrementalFuser::Options opt;
  opt.match_radius = 2.0;
  opt.max_feedback_attempts = 2;
  IncrementalFuser fuser(opt);
  fuser.AddElement(1, {0, 0});
  // Far measurement: unmatched, queued.
  fuser.Fuse({{50.0, 0.0}, true, 0.0});
  EXPECT_EQ(fuser.feedback_queue_size(), 1u);
  // A new element appears near the queued measurement: retry matches it.
  fuser.AddElement(2, {49.5, 0.0});
  fuser.RetryFeedbackQueue();
  EXPECT_EQ(fuser.feedback_queue_size(), 0u);
  EXPECT_LT(fuser.Find(2)->position.DistanceTo({50.0, 0.0}), 1.0);

  // A hopeless measurement is dropped after max attempts.
  fuser.Fuse({{500.0, 0.0}, true, 1.0});
  fuser.RetryFeedbackQueue();
  EXPECT_EQ(fuser.feedback_queue_size(), 1u);
  fuser.RetryFeedbackQueue();
  EXPECT_EQ(fuser.feedback_queue_size(), 0u);
}

TEST(CrowdSensingTest, DedupesAndThresholds) {
  CrowdSensingAggregator::Options opt;
  opt.min_reports = 3;
  CrowdSensingAggregator aggregator(opt);
  // 5 vehicles report the same new sign (slightly scattered).
  for (int i = 0; i < 5; ++i) {
    aggregator.Ingest({{100.0 + i * 0.3, 50.0}, true, kInvalidId, 64});
  }
  // A single spurious report elsewhere.
  aggregator.Ingest({{300.0, 70.0}, true, kInvalidId, 64});
  auto result = aggregator.Aggregate();
  ASSERT_EQ(result.confirmed.size(), 1u);
  EXPECT_NEAR(result.confirmed[0].position.x, 100.6, 0.5);
  EXPECT_EQ(result.raw_upload_bytes, 6u * 64u);
  EXPECT_LT(result.condensed_upload_bytes, result.raw_upload_bytes / 4);
}

TEST(CrowdSensingTest, RemovalEvidenceKeyedByMapId) {
  CrowdSensingAggregator aggregator({});
  for (int i = 0; i < 4; ++i) {
    aggregator.Ingest({{10.0, 10.0}, false, 77, 64});
  }
  for (int i = 0; i < 2; ++i) {
    aggregator.Ingest({{10.0, 10.0}, false, 88, 64});
  }
  auto result = aggregator.Aggregate();
  ASSERT_EQ(result.confirmed.size(), 1u);
  EXPECT_EQ(result.confirmed[0].map_id, 77);
  EXPECT_FALSE(result.confirmed[0].is_addition);
}

TEST(CrowdSensingTest, PartitionsAcrossRsus) {
  CrowdSensingAggregator::Options opt;
  opt.rsu_cell_size = 100.0;
  opt.min_reports = 2;
  CrowdSensingAggregator aggregator(opt);
  for (int i = 0; i < 3; ++i) {
    aggregator.Ingest({{50.0, 50.0}, true, kInvalidId, 64});
    aggregator.Ingest({{550.0, 50.0}, true, kInvalidId, 64});
  }
  auto result = aggregator.Aggregate();
  EXPECT_EQ(result.num_rsus, 2u);
  EXPECT_EQ(result.confirmed.size(), 2u);
}

}  // namespace
}  // namespace hdmap
