file(REMOVE_RECURSE
  "CMakeFiles/hdmap_sim.dir/change_injector.cc.o"
  "CMakeFiles/hdmap_sim.dir/change_injector.cc.o.d"
  "CMakeFiles/hdmap_sim.dir/road_network_generator.cc.o"
  "CMakeFiles/hdmap_sim.dir/road_network_generator.cc.o.d"
  "CMakeFiles/hdmap_sim.dir/sensors.cc.o"
  "CMakeFiles/hdmap_sim.dir/sensors.cc.o.d"
  "CMakeFiles/hdmap_sim.dir/trajectory.cc.o"
  "CMakeFiles/hdmap_sim.dir/trajectory.cc.o.d"
  "libhdmap_sim.a"
  "libhdmap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
