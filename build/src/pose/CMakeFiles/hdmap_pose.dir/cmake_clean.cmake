file(REMOVE_RECURSE
  "CMakeFiles/hdmap_pose.dir/factor_graph.cc.o"
  "CMakeFiles/hdmap_pose.dir/factor_graph.cc.o.d"
  "CMakeFiles/hdmap_pose.dir/pose_estimator.cc.o"
  "CMakeFiles/hdmap_pose.dir/pose_estimator.cc.o.d"
  "libhdmap_pose.a"
  "libhdmap_pose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmap_pose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
