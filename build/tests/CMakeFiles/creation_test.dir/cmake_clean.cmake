file(REMOVE_RECURSE
  "CMakeFiles/creation_test.dir/creation_test.cc.o"
  "CMakeFiles/creation_test.dir/creation_test.cc.o.d"
  "creation_test"
  "creation_test.pdb"
  "creation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/creation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
