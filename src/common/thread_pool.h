#ifndef HDMAP_COMMON_THREAD_POOL_H_
#define HDMAP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hdmap {

/// Fixed-size worker pool for fan-out/join parallelism on the map-serving
/// hot paths (tile serialization in TileStore::Build, tile deserialization
/// in TileStore::LoadRegion). Deliberately small: Submit + Wait, no
/// futures, no work stealing. Tasks must not throw.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Safe to call from any thread, including worker
  /// threads.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Must not be called
  /// from one of this pool's own workers: the waiter would occupy the
  /// worker slot that has to finish, deadlocking silently. That case is
  /// detected (thread-local worker marker) and aborts with a fatal
  /// message instead of hanging.
  void Wait();

  /// The pool whose worker thread is executing the caller, or null when
  /// the calling thread is not a pool worker. This is how ParallelFor
  /// avoids nested oversubscription (it runs serial inside any pool
  /// worker) and how Wait() detects the self-deadlock case.
  static ThreadPool* CurrentWorkerPool();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // Queued + currently executing tasks.
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [0, n), splitting the index range into contiguous
/// chunks across `num_threads` threads (0 = hardware concurrency). The
/// partition depends only on n and the thread count, never on timing, so
/// any order-independent use is deterministic. Falls back to a plain loop
/// when n is small or one thread is requested. Blocks until all iterations
/// complete. fn must not throw.
///
/// Scheduling: chunks run on one process-wide shared ThreadPool instead
/// of freshly spawned std::threads, so K concurrent callers (e.g. K
/// server handler threads each loading a region) share hardware_concurrency
/// workers rather than creating K x cores threads. A call made from
/// inside any ThreadPool worker runs serial on the calling thread — the
/// caller is already one lane of a parallel fan-out, and nesting would
/// both oversubscribe and risk waiting on the very pool the caller
/// occupies.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads = 0);

}  // namespace hdmap

#endif  // HDMAP_COMMON_THREAD_POOL_H_
