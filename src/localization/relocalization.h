#ifndef HDMAP_LOCALIZATION_RELOCALIZATION_H_
#define HDMAP_LOCALIZATION_RELOCALIZATION_H_

#include <optional>

#include "core/raster_layer.h"
#include "geometry/pose2.h"

namespace hdmap {

/// Coarse-to-fine semantic relocalization (Guo et al. [56]): a coarse
/// GPS fix initializes a pose search; the fine stage aligns the
/// vehicle's semantic observation against the HD map rendered as a
/// raster. Solves the (re)initialization problem a tracking filter
/// cannot: the kidnapped/startup case.
struct RelocalizationOptions {
  /// Search half-extent around the coarse fix, meters.
  double search_radius = 15.0;
  /// Coarse grid step of stage 1, meters.
  double coarse_step = 2.0;
  /// Heading search half-range (rad) and step for stage 1.
  double heading_range = 0.35;
  double heading_step = 0.07;
  /// Fine refinement step of stage 2, meters (two halvings follow).
  double fine_step = 0.5;
  /// Required score margin: best must beat the patch-cell count times
  /// this factor to be accepted (rejects featureless areas).
  double min_score_fraction = 0.25;
};

struct RelocalizationResult {
  Pose2 pose;
  double score = 0.0;
  int poses_evaluated = 0;
};

/// Runs the two-stage search. `observed` is the vehicle-frame semantic
/// patch (from perception); `coarse_fix` the GPS-grade prior with
/// heading `coarse_heading`. nullopt when no pose clears the acceptance
/// threshold.
std::optional<RelocalizationResult> CoarseToFineRelocalize(
    const SemanticRaster& map_raster, const SemanticRaster& observed,
    const Vec2& coarse_fix, double coarse_heading,
    const RelocalizationOptions& options = {});

}  // namespace hdmap

#endif  // HDMAP_LOCALIZATION_RELOCALIZATION_H_
