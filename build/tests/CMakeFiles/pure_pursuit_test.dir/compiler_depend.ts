# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pure_pursuit_test.
