// Replication and failover tests: N in-process MapService nodes wired
// into a cluster over loopback TCP (real sockets, real framing), a
// FailoverController watching them, and a deterministic chaos schedule
// driving kill-leader / restart / partition / torn-ship / apply-fault
// sequences through the seeded FaultInjector sites ("repl.ship",
// "repl.apply", "repl.heartbeat").
//
// The three invariants every scenario asserts:
//   1. No acked write is ever lost: a patch whose StagePatch AND Publish
//      returned OK on the leader is present in the final leader's map.
//   2. No split-brain: each term has exactly one leader, ever.
//   3. Convergence is byte-exact: after the dust settles, every live
//      follower's tile store is byte-identical to the leader's.
//
// The chaos action count comes from HDMAP_FUZZ_ITERS (the repo-wide
// convention); the default keeps tier-1 fast, the tier-2
// `replication_chaos` target runs >= 500.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/event_log.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/serialization.h"
#include "net/protocol.h"
#include "net/tile_server.h"
#include "replication/failover_controller.h"
#include "replication/node.h"
#include "replication/replica.h"
#include "replication/replication_log.h"
#include "replication/wal_shipper.h"
#include "replication/wire.h"
#include "service/map_service.h"
#include "storage/patch_wal.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

namespace fs = std::filesystem;

size_t ChaosActions() {
  if (const char* env = std::getenv("HDMAP_FUZZ_ITERS")) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return 40;  // Tier-1 smoke size.
}

MapService::Options SmallTileOptions() {
  MapService::Options opt;
  opt.tile_store.tile_size_m = 100.0;
  return opt;
}

MapPatch LandmarkPatch(uint64_t id) {
  MapPatch patch;
  Landmark lm;
  lm.id = id;
  lm.position = {static_cast<double>(id % 97), static_cast<double>(id % 89),
                 0.0};
  patch.added_landmarks.push_back(lm);
  return patch;
}

class ScopedDataDir {
 public:
  explicit ScopedDataDir(const std::string& tag) {
    path_ = fs::path(::testing::TempDir()) /
            ("hdmap_repl_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedDataDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

// ---------------------------------------------------------------------------
// Wire format

TEST(ReplicationWireTest, ShipBatchRoundTrip) {
  ReplShipBatch batch;
  batch.term = 7;
  batch.leader_end_seq = 42;
  ReplRecord patch_record;
  patch_record.seq = 41;
  patch_record.term = 6;
  patch_record.kind = ReplRecordKind::kPatch;
  patch_record.version = 12;
  patch_record.payload = SerializePatch(LandmarkPatch(900001));
  ReplRecord publish_record;
  publish_record.seq = 42;
  publish_record.term = 7;
  publish_record.kind = ReplRecordKind::kPublish;
  publish_record.version = 13;
  batch.records = {patch_record, publish_record};

  auto decoded = DecodeShipBatch(EncodeShipBatch(batch));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->term, 7u);
  EXPECT_EQ(decoded->leader_end_seq, 42u);
  ASSERT_EQ(decoded->records.size(), 2u);
  EXPECT_EQ(decoded->records[0].seq, 41u);
  EXPECT_EQ(decoded->records[0].kind, ReplRecordKind::kPatch);
  EXPECT_EQ(decoded->records[0].payload, patch_record.payload);
  EXPECT_EQ(decoded->records[1].kind, ReplRecordKind::kPublish);
  EXPECT_EQ(decoded->records[1].version, 13u);

  // A heartbeat is an empty batch.
  ReplShipBatch heartbeat;
  heartbeat.term = 9;
  heartbeat.leader_end_seq = 42;
  auto hb = DecodeShipBatch(EncodeShipBatch(heartbeat));
  ASSERT_TRUE(hb.ok());
  EXPECT_TRUE(hb->records.empty());
}

TEST(ReplicationWireTest, DecodersRejectDamage) {
  ReplShipBatch batch;
  batch.term = 1;
  ReplRecord record;
  record.seq = 1;
  record.payload = "abc";
  batch.records = {record};
  std::string bytes = EncodeShipBatch(batch);

  EXPECT_FALSE(DecodeShipBatch(bytes.substr(0, bytes.size() - 2)).ok());
  EXPECT_FALSE(DecodeShipBatch(bytes + "x").ok());
  std::string bad_kind = bytes;
  bad_kind[8 + 8 + 4 + 8 + 8] = 9;  // record's kind byte
  EXPECT_FALSE(DecodeShipBatch(bad_kind).ok());

  ReplAck ack;
  ack.term = 3;
  ack.next_seq = 17;
  ack.version = 4;
  ack.flags = kReplAckNeedCatchUp;
  auto ack_rt = DecodeAck(EncodeAck(ack));
  ASSERT_TRUE(ack_rt.ok());
  EXPECT_EQ(ack_rt->next_seq, 17u);
  EXPECT_EQ(ack_rt->flags, kReplAckNeedCatchUp);
  std::string bad_flags = EncodeAck(ack);
  bad_flags.back() = 0x40;
  EXPECT_FALSE(DecodeAck(bad_flags).ok());

  ReplCatchUp snapshot;
  snapshot.term = 2;
  snapshot.resume_seq = 5;
  snapshot.version = 6;
  snapshot.published_unix_ms = 1234;
  snapshot.tile_size_m = 100.0;
  snapshot.tiles.emplace_back(TileId{1, -2}, std::string("tilebytes"));
  auto cu = DecodeCatchUp(EncodeCatchUp(snapshot));
  ASSERT_TRUE(cu.ok());
  ASSERT_EQ(cu->tiles.size(), 1u);
  EXPECT_EQ(cu->tiles[0].first.x, 1);
  EXPECT_EQ(cu->tiles[0].first.y, -2);
  EXPECT_EQ(cu->tiles[0].second, "tilebytes");
  EXPECT_FALSE(DecodeCatchUp(EncodeCatchUp(snapshot).substr(4)).ok());
}

TEST(ReplicationWireTest, ReplicationRequestFrameRoundTrip) {
  NetRequest request;
  request.type = NetRequestType::kReplicate;
  request.request_id = 77;
  request.payload = EncodeShipBatch(ReplShipBatch{5, 10, {}});

  std::string frame = EncodeRequestFrame(request);
  size_t frame_size = 0;
  std::string_view body;
  ASSERT_EQ(ExtractFrame(frame, kNetRequestMagic, kMaxNetReplicationBody,
                         &frame_size, &body),
            FrameParse::kFrame);
  uint32_t crc = 0;
  std::memcpy(&crc, frame.data() + 8, sizeof(crc));
  auto decoded = DecodeRequestBody(body, crc);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, NetRequestType::kReplicate);
  EXPECT_EQ(decoded->request_id, 77u);
  EXPECT_EQ(decoded->payload, request.payload);
  auto batch = DecodeShipBatch(decoded->payload);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->term, 5u);
  EXPECT_EQ(batch->leader_end_seq, 10u);
}

// ---------------------------------------------------------------------------
// Replication log

TEST(ReplicationLogTest, AppendReadTrim) {
  ReplicationLog log(/*capacity=*/4);
  EXPECT_EQ(log.end_seq(), 0u);
  EXPECT_EQ(log.start_seq(), 1u);

  for (int i = 0; i < 6; ++i) {
    uint64_t seq = log.Append(ReplRecordKind::kPatch, 1, 10 + i,
                              "payload" + std::to_string(i));
    EXPECT_EQ(seq, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(log.end_seq(), 6u);

  auto all = log.ReadFrom(1, 100, 1 << 20);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 6u);
  auto tail = log.ReadFrom(5, 100, 1 << 20);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 2u);
  EXPECT_EQ(tail->front().seq, 5u);
  auto caught_up = log.ReadFrom(7, 100, 1 << 20);
  ASSERT_TRUE(caught_up.ok());
  EXPECT_TRUE(caught_up->empty());

  // max_records caps the batch but always yields at least one record.
  auto capped = log.ReadFrom(1, 2, 1 << 20);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->size(), 2u);
  auto tiny = log.ReadFrom(1, 100, 1);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->size(), 1u);

  // Trim respects both capacity and the keep floor.
  log.TrimToCapacity(/*keep_from_seq=*/3);
  EXPECT_EQ(log.start_seq(), 3u);  // would trim to 3 by capacity, floor=3
  EXPECT_EQ(log.size(), 4u);
  EXPECT_FALSE(log.ReadFrom(2, 100, 1 << 20).ok());  // trimmed -> catch-up

  log.ResetTo(10);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.start_seq(), 10u);
  EXPECT_EQ(log.end_seq(), 9u);
  EXPECT_EQ(log.Append(ReplRecordKind::kPublish, 2, 9, ""), 10u);
}

TEST(ReplicationLogTest, MirrorAppendRequiresContiguity) {
  ReplicationLog log;
  ReplRecord record;
  record.seq = 2;
  EXPECT_FALSE(log.AppendReplicated(record).ok());
  record.seq = 1;
  EXPECT_TRUE(log.AppendReplicated(record).ok());
  record.seq = 2;
  EXPECT_TRUE(log.AppendReplicated(record).ok());
  EXPECT_EQ(log.end_seq(), 2u);
}

TEST(ReplicationLogTest, InitFromWalTailsThePatchLog) {
  ScopedDataDir dir("initfromwal");
  PatchWal::Options wal_options;
  wal_options.path = dir.str() + "/patches.wal";
  wal_options.fsync = FsyncMode::kNever;
  PatchWal wal(wal_options);
  MapPatch a = LandmarkPatch(700001);
  MapPatch b = LandmarkPatch(700002);
  ASSERT_TRUE(wal.Append(a, 3).ok());
  ASSERT_TRUE(wal.Append(b, 3).ok());

  ReplicationLog log;
  auto loaded = log.InitFromWal(wal, /*term=*/4, /*first_seq=*/9);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), 2u);
  EXPECT_EQ(log.start_seq(), 9u);
  EXPECT_EQ(log.end_seq(), 10u);
  auto records = log.ReadFrom(9, 10, 1 << 20);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ(records->at(0).term, 4u);
  EXPECT_EQ(records->at(0).kind, ReplRecordKind::kPatch);
  EXPECT_EQ(records->at(0).version, 3u);
  EXPECT_EQ(records->at(0).payload, SerializePatch(a));
  EXPECT_EQ(records->at(1).payload, SerializePatch(b));

  // Non-empty log refuses a second bootstrap.
  EXPECT_FALSE(log.InitFromWal(wal, 4, 1).ok());
}

// ---------------------------------------------------------------------------
// Satellite 1: NetClient retry/backoff/deadline

TEST(NetClientRetryTest, RetriesTransientFailuresAndExportsMetrics) {
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
  auto server = std::make_unique<TileServer>(service, TileServer::Options{});
  ASSERT_TRUE(server->Start().ok());
  uint16_t port = server->port();

  MetricsRegistry metrics;
  NetClient client;
  NetClient::RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 5;
  retry.max_backoff_ms = 20;
  retry.deadline_ms = 2000;
  retry.metrics = &metrics;
  client.set_retry_options(retry);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());

  NetRequest ping;
  ping.type = NetRequestType::kPing;
  auto ok = client.CallWithRetry(ping);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(metrics.GetCounter("net_client.attempts")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("net_client.retries")->value(), 0u);

  // Kill the server: every attempt now fails, the client backs off
  // between tries and reconnect attempts are refused.
  server->Stop();
  auto failed = client.CallWithRetry(ping);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(metrics.GetCounter("net_client.attempts")->value(), 4u);
  EXPECT_EQ(metrics.GetCounter("net_client.retries")->value(), 2u);
  EXPECT_GT(metrics.GetCounter("net_client.backoff_ms_total")->value(), 0u);

  // Bring a fresh server up on some port and point a client at it, then
  // verify the deadline cuts a long retry loop short.
  NetClient deadline_client;
  NetClient::RetryOptions tight = retry;
  tight.max_attempts = 1000;
  tight.deadline_ms = 80;
  tight.metrics = &metrics;
  deadline_client.set_retry_options(tight);
  // Never connected and no endpoint: fails fast with attempts bounded by
  // the deadline, not the huge attempt budget.
  auto start = std::chrono::steady_clock::now();
  auto dead = deadline_client.CallWithRetry(ping);
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_FALSE(dead.ok());
  EXPECT_LT(elapsed_ms, 1500.0);
}

// ---------------------------------------------------------------------------
// Satellite 2: idle connection reaping

TEST(TileServerTest, ReapsIdleConnections) {
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
  TileServer::Options options;
  options.idle_timeout_s = 0.05;
  TileServer server(service, options);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  NetRequest ping;
  ping.type = NetRequestType::kPing;
  ASSERT_TRUE(client.Call(ping).ok());
  EXPECT_EQ(server.NumConnections(), 1u);

  // Go idle past the timeout: the server reaps the connection, emits a
  // typed event, and counts it.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.NumConnections() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.NumConnections(), 0u);
  EXPECT_GE(server.metrics().GetCounter("net.connections_reaped")->value(),
            1u);
  bool saw_event = false;
  for (const auto& event : server.RecentEvents()) {
    if (event.type == EventLog::Type::kConnectionReaped) saw_event = true;
  }
  EXPECT_TRUE(saw_event);

  // The reaped client notices on next use; a fresh connection works.
  NetClient fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(fresh.Call(ping).ok());
}

// ---------------------------------------------------------------------------
// Cluster harness

struct ClusterTimings {
  uint32_t heartbeat_interval_ms = 10;
  uint32_t io_timeout_ms = 150;
  uint32_t ack_timeout_ms = 1500;
  uint32_t poll_interval_ms = 10;
  uint32_t leader_timeout_ms = 100;
};

class TestCluster {
 public:
  TestCluster(int n, uint64_t fault_seed, ClusterTimings timings = {},
              size_t log_capacity = 4096,
              std::vector<std::string> data_dirs = {})
      : faults_(fault_seed),
        controller_([&] {
          FailoverController::Options co;
          co.poll_interval_ms = timings.poll_interval_ms;
          co.leader_timeout_ms = timings.leader_timeout_ms;
          return co;
        }()) {
    HdMap world = StraightRoad(300.0);
    for (int i = 0; i < n; ++i) {
      ReplicationNode::Options no;
      no.node_id = i;
      no.service = SmallTileOptions();
      if (static_cast<size_t>(i) < data_dirs.size() &&
          !data_dirs[i].empty()) {
        no.service.durability.data_dir = data_dirs[i];
        no.service.durability.fsync = FsyncMode::kNever;  // Speed.
      }
      no.log_capacity = log_capacity;
      no.heartbeat_interval_ms = timings.heartbeat_interval_ms;
      no.io_timeout_ms = timings.io_timeout_ms;
      no.min_ack_replicas = 1;
      no.ack_timeout_ms = timings.ack_timeout_ms;
      no.faults = &faults_;
      nodes_.push_back(std::make_unique<ReplicationNode>(no));
      EXPECT_TRUE(nodes_.back()->Start(world).ok());
      controller_.AddNode(nodes_.back().get());
    }
    EXPECT_TRUE(controller_.Start().ok());
  }

  ~TestCluster() {
    controller_.Stop();
    for (auto& node : nodes_) node->Halt();
  }

  ReplicationNode* node(int i) { return nodes_[i].get(); }
  ReplicationNode* leader() { return controller_.leader(); }
  FailoverController& controller() { return controller_; }
  FaultInjector& faults() { return faults_; }

  /// Stage + publish one landmark on the current leader. True only when
  /// BOTH calls acked — the definition of an acked write.
  bool WriteAcked(uint64_t landmark_id) {
    ReplicationNode* l = leader();
    if (l == nullptr || !l->alive()) return false;
    if (!l->StagePatch(LandmarkPatch(landmark_id)).ok()) return false;
    return l->Publish().ok();
  }

  /// Waits until the leader and every alive, unpartitioned node serve
  /// byte-identical tiles at the same version.
  bool WaitConverged(uint32_t timeout_ms = 15000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (Converged()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return Converged();
  }

  bool Converged() {
    ReplicationNode* l = leader();
    if (l == nullptr || !l->alive() ||
        l->role() != ReplicationNode::Role::kLeader) {
      return false;
    }
    auto leader_tiles = l->service().snapshot()->tiles.RawTilesCopy();
    uint64_t version = l->service().version();
    for (auto& node : nodes_) {
      if (node.get() == l || !node->alive() || node->partitioned()) continue;
      if (node->service().version() != version) return false;
      if (node->service().snapshot()->tiles.RawTilesCopy() != leader_tiles) {
        return false;
      }
    }
    return true;
  }

  /// Brings every node back (restart the dead, heal partitions) and
  /// clears fault policies, so convergence can complete.
  void HealAll() {
    faults_.ClearPolicies();
    for (auto& node : nodes_) {
      node->SetPartitioned(false);
      if (!node->alive()) {
        EXPECT_TRUE(node->Restart().ok());
      }
    }
  }

  void ExpectInvariants(const std::set<uint64_t>& acked) {
    EXPECT_EQ(controller_.split_brain_observed(), 0u);
    ReplicationNode* l = leader();
    ASSERT_NE(l, nullptr);
    const HdMap& map = l->service().snapshot()->map;
    for (uint64_t id : acked) {
      EXPECT_NE(map.FindLandmark(id), nullptr)
          << "acked landmark " << id << " lost after failover";
    }
  }

 private:
  FaultInjector faults_;
  std::vector<std::unique_ptr<ReplicationNode>> nodes_;
  FailoverController controller_;
};

// ---------------------------------------------------------------------------
// Deterministic cluster scenarios

TEST(ReplicationClusterTest, FollowersConvergeByteExact) {
  TestCluster cluster(3, /*fault_seed=*/11);
  ASSERT_NE(cluster.leader(), nullptr);
  EXPECT_EQ(cluster.leader()->node_id(), 0);

  std::set<uint64_t> acked;
  for (uint64_t i = 0; i < 5; ++i) {
    uint64_t id = 800000 + i;
    ASSERT_TRUE(cluster.WriteAcked(id));
    acked.insert(id);
  }
  ASSERT_TRUE(cluster.WaitConverged());
  cluster.ExpectInvariants(acked);
  // Followers applied through the normal StagePatch/Publish path, so
  // their landmark view matches too, not just the raw bytes.
  EXPECT_NE(cluster.node(1)->service().snapshot()->map.FindLandmark(800004),
            nullptr);
  EXPECT_NE(cluster.node(2)->service().snapshot()->map.FindLandmark(800004),
            nullptr);
}

TEST(ReplicationClusterTest, LeaderDeathPromotesMostCaughtUpFollower) {
  TestCluster cluster(3, /*fault_seed=*/13);
  std::set<uint64_t> acked;
  for (uint64_t i = 0; i < 3; ++i) {
    uint64_t id = 810000 + i;
    ASSERT_TRUE(cluster.WriteAcked(id));
    acked.insert(id);
  }
  ASSERT_TRUE(cluster.WaitConverged());

  ReplicationNode* old_leader = cluster.leader();
  old_leader->Halt();
  // Failover: a new leader appears within the detection window.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((cluster.leader() == old_leader ||
          cluster.leader()->role() != ReplicationNode::Role::kLeader) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_NE(cluster.leader(), old_leader);
  EXPECT_EQ(cluster.controller().failover_count(), 1u);
  EXPECT_GT(cluster.controller().last_degraded_window_ms(), 0.0);

  // The degraded window is visible in the controller's event log.
  bool detected = false, completed = false;
  for (const auto& event : cluster.controller().RecentEvents()) {
    if (event.type == EventLog::Type::kFailoverDetected) detected = true;
    if (event.type == EventLog::Type::kFailoverComplete &&
        event.detail.find("degraded window") != std::string::npos) {
      completed = true;
    }
  }
  EXPECT_TRUE(detected);
  EXPECT_TRUE(completed);

  // Writes keep working on the new leader; the restarted old leader
  // rejoins as a follower and re-converges byte-exact.
  uint64_t id = 810100;
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!cluster.WriteAcked(id) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  acked.insert(id);
  ASSERT_TRUE(old_leader->Restart().ok());
  ASSERT_TRUE(cluster.WaitConverged());
  EXPECT_EQ(old_leader->role(), ReplicationNode::Role::kFollower);
  cluster.ExpectInvariants(acked);
}

TEST(ReplicationClusterTest, FencingRejectsDeposedLeader) {
  TestCluster cluster(3, /*fault_seed=*/17);
  std::set<uint64_t> acked;
  ASSERT_TRUE(cluster.WriteAcked(820000));
  acked.insert(820000);
  ASSERT_TRUE(cluster.WaitConverged());

  // Partition the leader: to the cluster it goes silent; to itself it is
  // still "leader" and keeps accepting local writes (which cannot ack —
  // its followers are unreachable).
  ReplicationNode* old_leader = cluster.leader();
  old_leader->SetPartitioned(true);
  EXPECT_FALSE(cluster.WriteAcked(820001));  // unacked: partitioned leader

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (cluster.leader() == old_leader &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ReplicationNode* new_leader = cluster.leader();
  ASSERT_NE(new_leader, old_leader);
  uint64_t promoted_term = new_leader->term();
  EXPECT_GT(promoted_term, 1u);

  uint64_t id = 820002;
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!cluster.WriteAcked(id) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  acked.insert(id);

  // Heal: the deposed leader's own shipping gets stale-term acks, it
  // steps down, and its diverged history (the unacked local write) is
  // repaired wholesale by catch-up — landmark 820001 must be GONE.
  old_leader->SetPartitioned(false);
  ASSERT_TRUE(cluster.WaitConverged());
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (old_leader->role() == ReplicationNode::Role::kLeader &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(old_leader->role(), ReplicationNode::Role::kFollower);
  EXPECT_EQ(old_leader->service().snapshot()->map.FindLandmark(820001),
            nullptr);
  cluster.ExpectInvariants(acked);

  // One leader per term, before and after.
  std::map<uint64_t, int> by_term = cluster.controller().LeadersByTerm();
  EXPECT_GE(by_term.size(), 2u);
  EXPECT_EQ(cluster.controller().split_brain_observed(), 0u);
}

// Satellite 3: a follower that fell behind a trimmed log catches up by
// snapshot instead of records.
TEST(ReplicationClusterTest, CatchUpAfterLogTrim) {
  ClusterTimings timings;
  TestCluster cluster(3, /*fault_seed=*/19, timings, /*log_capacity=*/4);
  std::set<uint64_t> acked;

  // Take one follower down, then write far past the tiny log capacity.
  cluster.node(2)->Halt();
  for (uint64_t i = 0; i < 8; ++i) {
    uint64_t id = 830000 + i;
    ASSERT_TRUE(cluster.WriteAcked(id));  // node 1 still acks
    acked.insert(id);
  }
  EXPECT_GT(cluster.leader()->log().start_seq(), 1u);  // trimmed

  // The restarted follower's position predates the log: the shipper must
  // serve a snapshot, and the follower must land byte-exact.
  uint64_t installed_before = cluster.node(2)
                                  ->service()
                                  .metrics()
                                  .GetCounter("repl.catchups_installed")
                                  ->value();
  ASSERT_TRUE(cluster.node(2)->Restart().ok());
  ASSERT_TRUE(cluster.WaitConverged());
  EXPECT_GT(cluster.node(2)
                ->service()
                .metrics()
                .GetCounter("repl.catchups_installed")
                ->value(),
            installed_before);
  bool caught_up_event = false;
  for (const auto& event : cluster.node(2)->service().RecentEvents()) {
    if (event.type == EventLog::Type::kReplicaCatchUp) caught_up_event = true;
  }
  EXPECT_TRUE(caught_up_event);
  cluster.ExpectInvariants(acked);
}

// Satellite 3 (durable flavor): the leader's durable state — recovered
// from a SnapshotStore checkpoint after a crash — is what catch-up ships
// to a follower whose WAL position no longer exists.
TEST(ReplicationClusterTest, DurableLeaderServesCatchUpFromRecoveredState) {
  ScopedDataDir dir("durable_leader");
  ClusterTimings timings;
  TestCluster cluster(3, /*fault_seed=*/23, timings, /*log_capacity=*/4,
                      {dir.str(), "", ""});
  std::set<uint64_t> acked;
  for (uint64_t i = 0; i < 6; ++i) {
    uint64_t id = 840000 + i;
    ASSERT_TRUE(cluster.WriteAcked(id));
    acked.insert(id);
  }
  ASSERT_TRUE(cluster.WaitConverged());
  uint64_t version_before = cluster.node(0)->service().version();

  // Crash the durable leader AND a follower; promote the survivor.
  cluster.node(0)->Halt();
  cluster.node(2)->Halt();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (cluster.leader() != cluster.node(1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(cluster.leader(), cluster.node(1));

  // The durable ex-leader restarts: MapService::Init recovers its state
  // from the newest checkpoint (SnapshotStore), then the node rejoins by
  // catch-up under the new term. The blind follower comes back too.
  ASSERT_TRUE(cluster.node(0)->Restart().ok());
  ASSERT_TRUE(cluster.node(2)->Restart().ok());
  EXPECT_GE(cluster.node(0)->service().version(), version_before);
  ASSERT_TRUE(cluster.WaitConverged());
  cluster.ExpectInvariants(acked);
  EXPECT_EQ(cluster.node(0)->role(), ReplicationNode::Role::kFollower);
}

// ---------------------------------------------------------------------------
// The chaos harness

TEST(ReplicationChaosTest, SeededKillPartitionCorruptSchedule) {
  const size_t actions = ChaosActions();
  Rng rng(0xC0FFEE123u);
  ClusterTimings timings;
  timings.ack_timeout_ms = 800;
  TestCluster cluster(3, /*fault_seed=*/0xBADF00Du, timings);

  std::set<uint64_t> acked;
  uint64_t next_landmark = 900000;
  size_t burst_left = 0;  // actions until armed fault policies clear

  auto all_alive_and_connected = [&] {
    for (int i = 0; i < 3; ++i) {
      if (!cluster.node(i)->alive() || cluster.node(i)->partitioned()) {
        return false;
      }
    }
    return true;
  };

  for (size_t action = 0; action < actions; ++action) {
    if (burst_left > 0 && --burst_left == 0) cluster.faults().ClearPolicies();

    int pick = rng.UniformInt(0, 9);
    switch (pick) {
      case 0:
      case 1:
      case 2:
      case 3:
      case 4: {  // Write (half the schedule): acked only when fully acked.
        uint64_t id = next_landmark++;
        if (cluster.WriteAcked(id)) acked.insert(id);
        break;
      }
      case 5: {  // Kill the leader — only within the designed tolerance
                 // (one failure at a time; see DESIGN.md crash matrix).
        if (all_alive_and_connected()) {
          ReplicationNode* l = cluster.leader();
          if (l != nullptr) l->Halt();
        }
        break;
      }
      case 6: {  // Partition a random node (leader or follower).
        if (all_alive_and_connected()) {
          cluster.node(rng.UniformInt(0, 2))->SetPartitioned(true);
        }
        break;
      }
      case 7: {  // Heal: restart the dead, reconnect the partitioned.
        for (int i = 0; i < 3; ++i) {
          cluster.node(i)->SetPartitioned(false);
          if (!cluster.node(i)->alive()) {
            ASSERT_TRUE(cluster.node(i)->Restart().ok());
          }
        }
        break;
      }
      case 8: {  // Fault burst on the replication sites.
        if (burst_left == 0) {
          int site = rng.UniformInt(0, 2);
          FaultPolicy policy;
          if (site == 0) {
            policy.site = WalShipper::kShipFaultSite;
            policy.kind = rng.Bernoulli(0.5) ? FaultKind::kBitFlip
                                             : FaultKind::kTornWrite;
            policy.probability = 0.4;
          } else if (site == 1) {
            policy.site = Replica::kApplyFaultSite;
            policy.kind = FaultKind::kFailStatus;
            policy.fail_code = StatusCode::kInternal;
            policy.probability = 0.3;
          } else {
            policy.site = WalShipper::kHeartbeatFaultSite;
            policy.kind = FaultKind::kFailStatus;
            policy.probability = 0.5;
          }
          cluster.faults().AddPolicy(policy);
          burst_left = static_cast<size_t>(rng.UniformInt(3, 8));
        }
        break;
      }
      default: {  // Let timers run: heartbeats, failover, catch-up.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(rng.UniformInt(5, 40)));
        break;
      }
    }

    // Periodic checkpoint: heal everything, converge, check invariants.
    if ((action + 1) % 25 == 0 || action + 1 == actions) {
      cluster.HealAll();
      burst_left = 0;
      ASSERT_TRUE(cluster.WaitConverged(20000))
          << "cluster failed to re-converge after action " << action;
      cluster.ExpectInvariants(acked);
    }
  }

  // Final quiesce: everything healed, every acked write present, every
  // follower byte-identical, one leader per term for the whole run.
  cluster.HealAll();
  ASSERT_TRUE(cluster.WaitConverged(20000));
  cluster.ExpectInvariants(acked);
  EXPECT_EQ(cluster.controller().split_brain_observed(), 0u);
  std::map<uint64_t, int> by_term = cluster.controller().LeadersByTerm();
  EXPECT_GE(by_term.size(), 1u);
  SUCCEED() << "chaos: " << actions << " actions, " << acked.size()
            << " acked writes, " << by_term.size() << " terms, "
            << cluster.controller().failover_count() << " failovers";
}

}  // namespace
}  // namespace hdmap
