#ifndef HDMAP_POSE_FACTOR_GRAPH_H_
#define HDMAP_POSE_FACTOR_GRAPH_H_

#include <deque>
#include <vector>

#include "core/hd_map.h"
#include "geometry/pose2.h"
#include "sim/sensors.h"

namespace hdmap {

/// Sliding-window max-mixture factor-graph localizer (Stannartz et al.
/// [58]): a window of recent SE(2) poses is optimized with Gauss-Newton
/// over odometry factors and semantic landmark factors. Each landmark
/// factor is a max-mixture of an inlier Gaussian and a broad outlier
/// Gaussian, which resolves wrong data associations: factors whose
/// residual is better explained by the outlier mode are effectively
/// down-weighted.
class SlidingWindowEstimator {
 public:
  struct Options {
    int window_size = 8;
    int gauss_newton_iterations = 5;
    /// Odometry factor noise.
    double odom_trans_sigma = 0.08;
    double odom_rot_sigma = 0.01;
    /// Landmark (range, bearing) factor noise — the inlier mixture mode.
    double landmark_range_sigma = 0.4;
    double landmark_bearing_sigma = 0.01;
    /// Outlier mode: the inlier sigma scaled by this factor; the
    /// max-mixture picks whichever mode scores higher.
    double outlier_scale = 10.0;
    /// Association radius for semantic landmark matching.
    double association_radius = 6.0;
  };

  SlidingWindowEstimator(const HdMap* map, const Options& options);

  /// Seeds the window with an initial pose.
  void Init(const Pose2& initial);

  /// Adds one frame: the odometry delta since the previous frame and the
  /// landmark detections of this frame; re-optimizes the window.
  void AddFrame(double odom_distance, double odom_heading_change,
                const std::vector<LandmarkDetection>& detections);

  /// The optimized current pose.
  Pose2 Estimate() const;

  /// Fraction of landmark factors resolved to the inlier mode in the
  /// last optimization (association health).
  double inlier_fraction() const { return inlier_fraction_; }

  size_t window_size() const { return window_.size(); }

 private:
  struct Frame {
    Pose2 pose;  ///< Current estimate (optimized in place).
    double odom_distance = 0.0;       ///< From the previous frame.
    double odom_heading_change = 0.0;
    /// Associated landmark observations: vehicle-frame detection plus
    /// the matched map landmark position.
    struct Observation {
      Vec2 detection_vehicle;
      Vec2 landmark_world;
    };
    std::vector<Observation> observations;
  };

  void Optimize();
  void AssociateDetections(Frame* frame,
                           const std::vector<LandmarkDetection>& detections);

  const HdMap* map_;
  Options options_;
  std::deque<Frame> window_;
  double inlier_fraction_ = 1.0;
};

}  // namespace hdmap

#endif  // HDMAP_POSE_FACTOR_GRAPH_H_
