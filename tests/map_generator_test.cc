#include <gtest/gtest.h>

#include <cmath>

#include "core/routing_graph.h"
#include "creation/map_generator.h"
#include "planning/route_planner.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

TEST(TopologyStatsTest, ExtractsFromTown) {
  HdMap town = SmallTownWorld(101, 4, 4);
  auto stats = ExtractTopologyStats(town);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->num_nodes, 16u);
  EXPECT_EQ(stats->num_segments, 24u);
  EXPECT_NEAR(stats->mean_segment_length, 150.0, 1.0);
  EXPECT_NEAR(stats->mean_lanes_per_direction, 1.0, 1e-9);
  // PMF sums to 1; town corner nodes have degree 2, edges 3, interior 4.
  double total = 0.0;
  for (double p : stats->node_degree_pmf) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(stats->node_degree_pmf[2], 0.0);
  EXPECT_GT(stats->node_degree_pmf[4], 0.0);
  // Straight streets: near-zero curvature.
  EXPECT_LT(stats->heading_change_stddev, 0.05);
}

TEST(TopologyStatsTest, FailsWithoutBundleLayer) {
  HdMap bare = StraightRoad();
  EXPECT_FALSE(ExtractTopologyStats(bare).ok());
}

TEST(MapGeneratorTest, GeneratedMapValidates) {
  HdMap town = SmallTownWorld(102, 4, 4);
  auto stats = ExtractTopologyStats(town);
  ASSERT_TRUE(stats.ok());
  Rng rng(5);
  auto generated = GenerateFromStats(*stats, {}, rng);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  EXPECT_TRUE(generated->Validate().ok())
      << generated->Validate().ToString();
  EXPECT_GT(generated->lanelets().size(), 20u);
  EXPECT_GT(generated->lane_bundles().size(), 10u);
  EXPECT_EQ(generated->map_nodes().size(), 25u);
}

TEST(MapGeneratorTest, PreservesScaleStatistics) {
  HdMap town = SmallTownWorld(103, 4, 4);
  auto stats = ExtractTopologyStats(town);
  ASSERT_TRUE(stats.ok());
  Rng rng(6);
  auto generated = GenerateFromStats(*stats, {}, rng);
  ASSERT_TRUE(generated.ok());
  auto regenerated_stats = ExtractTopologyStats(*generated);
  ASSERT_TRUE(regenerated_stats.ok());
  // Segment length scale is preserved within the jitter budget.
  EXPECT_NEAR(regenerated_stats->mean_segment_length,
              stats->mean_segment_length,
              0.25 * stats->mean_segment_length);
  EXPECT_NEAR(regenerated_stats->mean_lanes_per_direction,
              stats->mean_lanes_per_direction, 0.01);
  // Mean degree within one unit of the example.
  auto mean_degree = [](const MapTopologyStats& s) {
    double m = 0.0;
    for (size_t i = 0; i < s.node_degree_pmf.size(); ++i) {
      m += static_cast<double>(i) * s.node_degree_pmf[i];
    }
    return m;
  };
  EXPECT_NEAR(mean_degree(*regenerated_stats), mean_degree(*stats), 1.0);
}

TEST(MapGeneratorTest, GeneratedMapIsRoutable) {
  HdMap town = SmallTownWorld(104, 3, 3);
  auto stats = ExtractTopologyStats(town);
  ASSERT_TRUE(stats.ok());
  Rng rng(7);
  GeneratedMapOptions opt;
  opt.grid_rows = 4;
  opt.grid_cols = 4;
  auto generated = GenerateFromStats(*stats, opt, rng);
  ASSERT_TRUE(generated.ok());
  RoutingGraph graph = RoutingGraph::Build(*generated);
  // Many random pairs should route (spanning tree guarantees the global
  // graph is connected; one-way lane topology may exclude a few).
  std::vector<ElementId> ids;
  for (const auto& [id, ll] : generated->lanelets()) {
    if (ll.bundle_id != kInvalidId) ids.push_back(id);
  }
  ASSERT_GT(ids.size(), 10u);
  int routable = 0, tried = 0;
  for (int trial = 0; trial < 20; ++trial) {
    ElementId from = ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(ids.size()) - 1))];
    ElementId to = ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(ids.size()) - 1))];
    if (from == to) continue;
    ++tried;
    if (PlanRoute(RoutingGraph::Build(*generated), from, to).ok()) {
      ++routable;
    }
  }
  EXPECT_GT(routable, tried / 2);
}

TEST(MapGeneratorTest, CurvyExampleYieldsCurvyOutput) {
  HdMap town = SmallTownWorld(105, 3, 3);
  auto stats = ExtractTopologyStats(town);
  ASSERT_TRUE(stats.ok());
  MapTopologyStats curvy = *stats;
  curvy.heading_change_stddev = 0.06;
  Rng rng(8);
  auto straight = GenerateFromStats(*stats, {}, rng);
  Rng rng2(8);
  auto curved = GenerateFromStats(curvy, {}, rng2);
  ASSERT_TRUE(straight.ok());
  ASSERT_TRUE(curved.ok());
  auto s1 = ExtractTopologyStats(*straight);
  auto s2 = ExtractTopologyStats(*curved);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_GT(s2->heading_change_stddev, s1->heading_change_stddev);
}

TEST(MapGeneratorTest, RejectsDegenerateInputs) {
  MapTopologyStats stats;
  stats.mean_segment_length = 5.0;  // Too small.
  Rng rng(9);
  EXPECT_FALSE(GenerateFromStats(stats, {}, rng).ok());
  stats.mean_segment_length = 150.0;
  GeneratedMapOptions opt;
  opt.grid_rows = 1;
  EXPECT_FALSE(GenerateFromStats(stats, opt, rng).ok());
}

}  // namespace
}  // namespace hdmap
