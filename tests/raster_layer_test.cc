#include <gtest/gtest.h>

#include "core/raster_layer.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

TEST(SemanticRasterTest, CellWorldRoundTrip) {
  SemanticRaster raster(Aabb({-10, -10}, {10, 10}), 0.5);
  EXPECT_EQ(raster.width(), 40);
  EXPECT_EQ(raster.height(), 40);
  for (int cy : {0, 7, 39}) {
    for (int cx : {0, 13, 39}) {
      Vec2 center = raster.CellCenter(cx, cy);
      int rx = 0, ry = 0;
      raster.WorldToCell(center, &rx, &ry);
      EXPECT_EQ(rx, cx);
      EXPECT_EQ(ry, cy);
    }
  }
}

TEST(SemanticRasterTest, SetAndSampleOrBits) {
  SemanticRaster raster(Aabb({0, 0}, {10, 10}), 1.0);
  raster.Set(3, 4, kRasterLaneMarking);
  raster.Set(3, 4, kRasterSign);
  EXPECT_EQ(raster.At(3, 4), kRasterLaneMarking | kRasterSign);
  EXPECT_EQ(raster.Sample({3.5, 4.5}), kRasterLaneMarking | kRasterSign);
  // Out of bounds: silent no-op / zero.
  raster.Set(-1, 0, kRasterSign);
  raster.Set(100, 100, kRasterSign);
  EXPECT_EQ(raster.At(-1, 0), 0);
  EXPECT_EQ(raster.Sample({-50.0, -50.0}), 0);
}

TEST(SemanticRasterTest, DashedLineHasGaps) {
  SemanticRaster raster(Aabb({0, -2}, {60, 2}), 0.25);
  LineString line({{0, 0}, {60, 0}});
  raster.DrawDashedLineString(line, kRasterLaneMarking, 3.0, 3.0);
  // Mid-dash cells set; mid-gap cells clear.
  EXPECT_NE(raster.Sample({1.5, 0.0}) & kRasterLaneMarking, 0);
  EXPECT_EQ(raster.Sample({4.5, 0.0}) & kRasterLaneMarking, 0);
  EXPECT_NE(raster.Sample({7.5, 0.0}) & kRasterLaneMarking, 0);
  // A solid draw fills everything.
  SemanticRaster solid(Aabb({0, -2}, {60, 2}), 0.25);
  solid.DrawLineString(line, kRasterLaneMarking);
  EXPECT_NE(solid.Sample({4.5, 0.0}) & kRasterLaneMarking, 0);
  EXPECT_GT(solid.NumOccupied(), raster.NumOccupied());
}

TEST(SemanticRasterTest, SparseAndDenseScoresAgree) {
  HdMap map = SmallTownWorld(61, 2, 2);
  SemanticRaster raster = RasterizeMap(map, 0.5);
  const Lanelet& lane = map.lanelets().begin()->second;
  Pose2 pose(lane.centerline.PointAt(15.0), lane.centerline.HeadingAt(15.0));

  SemanticRaster patch(Aabb({-8, -8}, {8, 8}), 0.5);
  for (int cy = 0; cy < patch.height(); ++cy) {
    for (int cx = 0; cx < patch.width(); ++cx) {
      uint8_t bits = raster.Sample(pose.TransformPoint(
          patch.CellCenter(cx, cy)));
      if (bits != 0) patch.Set(cx, cy, bits);
    }
  }
  auto cells = patch.OccupiedCells();
  ASSERT_GT(cells.size(), 10u);
  for (const Vec2& offset : {Vec2{0, 0}, Vec2{1.5, -0.5}, Vec2{-3, 2}}) {
    Pose2 candidate(pose.translation + offset, pose.heading);
    EXPECT_DOUBLE_EQ(raster.MatchScore(patch, candidate),
                     raster.MatchScoreSparse(cells, candidate));
  }
}

TEST(SemanticRasterTest, RasterizeInExtentMatchesAutoExtentContent) {
  HdMap map = SmallTownWorld(62, 2, 2);
  Aabb extent = map.BoundingBox().Expanded(5.0);
  SemanticRaster a = RasterizeMap(map, 0.5, 5.0);
  SemanticRaster b = RasterizeMapInExtent(map, 0.5, extent);
  EXPECT_EQ(a.width(), b.width());
  EXPECT_EQ(a.height(), b.height());
  EXPECT_EQ(a.NumOccupied(), b.NumOccupied());
  EXPECT_DOUBLE_EQ(a.DiffFraction(b), 0.0);
}

TEST(SemanticRasterTest, DrawDiscCoversRadius) {
  SemanticRaster raster(Aabb({0, 0}, {10, 10}), 0.25);
  raster.DrawDisc({5.0, 5.0}, 1.0, kRasterLight);
  EXPECT_NE(raster.Sample({5.0, 5.0}) & kRasterLight, 0);
  EXPECT_NE(raster.Sample({5.8, 5.0}) & kRasterLight, 0);
  EXPECT_EQ(raster.Sample({7.0, 5.0}) & kRasterLight, 0);
}

TEST(SemanticRasterTest, DrawPolygonFillsInterior) {
  SemanticRaster raster(Aabb({0, 0}, {10, 10}), 0.25);
  Polygon square({{2, 2}, {8, 2}, {8, 8}, {2, 8}});
  raster.DrawPolygon(square, kRasterCrosswalk);
  EXPECT_NE(raster.Sample({5.0, 5.0}) & kRasterCrosswalk, 0);
  EXPECT_NE(raster.Sample({2.2, 2.2}) & kRasterCrosswalk, 0);
  EXPECT_EQ(raster.Sample({1.0, 1.0}) & kRasterCrosswalk, 0);
}

TEST(SemanticRasterTest, RleRoundTripSizeSanity) {
  // RLE of a sparse raster is far smaller than raw; of a dense raster it
  // degrades gracefully (bounded overhead).
  SemanticRaster sparse(Aabb({0, 0}, {100, 100}), 0.5);
  sparse.DrawLineString(LineString({{0, 50}, {100, 50}}),
                        kRasterLaneMarking);
  EXPECT_LT(sparse.SerializeRle().size(), sparse.SizeBytes() / 10);

  SemanticRaster dense(Aabb({0, 0}, {10, 10}), 0.5);
  for (int cy = 0; cy < dense.height(); ++cy) {
    for (int cx = 0; cx < dense.width(); ++cx) {
      dense.Set(cx, cy, static_cast<uint8_t>(1 + ((cx + cy) % 7)));
    }
  }
  EXPECT_LT(dense.SerializeRle().size(), dense.SizeBytes() * 3 + 64);
}

}  // namespace
}  // namespace hdmap
