#include "replication/node.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "core/serialization.h"

namespace hdmap {

ReplicationNode::ReplicationNode(Options options)
    : opts_(std::move(options)),
      service_(opts_.service),
      log_(opts_.log_capacity),
      events_(128),
      replica_([this] {
        Replica::Options ro;
        ro.service = &service_;
        ro.log = &log_;
        ro.term = &term_;
        ro.faults = opts_.faults;
        ro.metrics = &service_.metrics();
        ro.on_higher_term = [this](uint64_t new_term) { StepDown(new_term); };
        ro.on_publish_applied = [this](uint64_t seq) {
          std::lock_guard<std::mutex> lock(write_mu_);
          last_publish_seq_ = seq;
          log_.TrimToCapacity(last_publish_seq_ + 1);
        };
        ro.on_catchup_installed = [this](uint64_t resume_seq) {
          std::lock_guard<std::mutex> lock(write_mu_);
          last_publish_seq_ = resume_seq;
          resync_needed_.store(false);
        };
        ro.consume_resync = [this] { return resync_needed_.exchange(false); };
        return ro;
      }()) {
  ack_wait_ = service_.metrics().GetLatency("replication.ack_wait");
  service_.metrics().SetHelp(
      "replication.ack_wait",
      "Time the leader write path blocked in the semi-synchronous ack gate");
}

ReplicationNode::~ReplicationNode() {
  Halt();
}

TileServer::Options ReplicationNode::ServerOptions() {
  TileServer::Options server_options = opts_.server;
  server_options.replication = &replica_;
  if (server_options.fault_injector == nullptr) {
    server_options.fault_injector = opts_.faults;
  }
  // kStats introspection: label the node, expose replication progress,
  // and merge the node's failover events into the served event list.
  if (server_options.stats_label.empty()) {
    server_options.stats_label = "node-" + std::to_string(opts_.node_id);
  }
  server_options.replication_status_json = [this] {
    return ReplicationStatusJson();
  };
  server_options.extra_events = [this](size_t n) { return events_.Recent(n); };
  return server_options;
}

Status ReplicationNode::Start(const HdMap& initial_map) {
  HDMAP_RETURN_IF_ERROR(service_.Init(initial_map));
  server_ = std::make_unique<TileServer>(service_, ServerOptions());
  HDMAP_RETURN_IF_ERROR(server_->Start());
  opts_.server.port = server_->port();  // keep the resolved port on restart
  role_.store(Role::kFollower);
  replica_.ResetContact();
  alive_.store(true);
  return Status::Ok();
}

void ReplicationNode::Halt() {
  alive_.store(false);
  // Stop the server before taking write_mu_: a worker applying a publish
  // marker re-enters the node (on_publish_applied takes write_mu_), so
  // holding it across Stop() would deadlock the drain.
  if (server_ != nullptr) server_->Stop();
  std::shared_ptr<WalShipper> shipper;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    shipper = std::move(shipper_);
    role_.store(Role::kFollower);
  }
  if (shipper != nullptr) {
    shipper->RequestStop();
    shipper->Join();
  }
}

Status ReplicationNode::Restart() {
  if (alive_.load()) return Status::Ok();
  server_ = std::make_unique<TileServer>(service_, ServerOptions());
  HDMAP_RETURN_IF_ERROR(server_->Start());
  opts_.server.port = server_->port();
  role_.store(Role::kFollower);
  // A restarted node cannot prove its history still matches the current
  // leader's (it may have been a leader with never-replicated writes),
  // so it rejoins via catch-up snapshot instead of trusting its log
  // position — the in-process analogue of pg_rewind.
  resync_needed_.store(true);
  replica_.ResetContact();
  events_.Append(EventLog::Type::kReplicaCatchUp, 0,
                 "node " + std::to_string(opts_.node_id) +
                     " restarted as follower; resync scheduled");
  alive_.store(true);
  return Status::Ok();
}

void ReplicationNode::BecomeLeader(
    uint64_t term, const std::vector<WalShipper::FollowerInfo>& followers) {
  std::shared_ptr<WalShipper> old;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    old = std::move(shipper_);
    if (old != nullptr) old->RequestStop();

    // Fencing state moves forward only.
    uint64_t observed = term_.load();
    while (observed < term && !term_.compare_exchange_weak(observed, term)) {
    }
    leader_term_ = term;
    role_.store(Role::kLeader);

    WalShipper::Options so;
    so.log = &log_;
    so.term = &term_;
    so.catchup_source = [this] { return BuildCatchUpPayload(); };
    so.on_stale_term = [this](uint64_t new_term) { StepDown(new_term); };
    so.partitioned = [this] { return partitioned_.load(); };
    so.metrics = &service_.metrics();
    so.faults = opts_.faults;
    so.trace = opts_.server.trace;
    so.heartbeat_interval_ms = opts_.heartbeat_interval_ms;
    so.io_timeout_ms = opts_.io_timeout_ms;
    shipper_ = std::make_shared<WalShipper>(so);
    for (const WalShipper::FollowerInfo& follower : followers) {
      shipper_->AddFollower(follower);
    }
  }
  // Join the deposed shipper outside write_mu_: one of its sessions may
  // be inside StepDown (which takes write_mu_) right now.
  if (old != nullptr) old->Join();
  events_.Append(EventLog::Type::kFailoverComplete, 0,
                 "node " + std::to_string(opts_.node_id) +
                     " is leader for term " + std::to_string(term));
}

void ReplicationNode::StepDown(uint64_t term) {
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    uint64_t observed = term_.load();
    while (observed < term && !term_.compare_exchange_weak(observed, term)) {
    }
    if (role_.load() != Role::kLeader || term <= leader_term_) return;
    role_.store(Role::kFollower);
    if (shipper_ != nullptr) shipper_->RequestStop();
    // Local writes from the deposed reign may never have replicated; the
    // next leader repairs us wholesale by snapshot.
    resync_needed_.store(true);
  }
  events_.Append(EventLog::Type::kFailoverDetected, 0,
                 "node " + std::to_string(opts_.node_id) +
                     " deposed: observed term " + std::to_string(term));
}

void ReplicationNode::FenceTerm(uint64_t term) {
  replica_.FenceTerm(term);
}

void ReplicationNode::AddFollower(const WalShipper::FollowerInfo& follower) {
  std::shared_ptr<WalShipper> shipper;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    shipper = shipper_;
  }
  if (shipper != nullptr) shipper->AddFollower(follower);
}

bool ReplicationNode::HasFollower(int node_id) const {
  std::shared_ptr<WalShipper> shipper;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    shipper = shipper_;
  }
  return shipper != nullptr && shipper->HasFollower(node_id);
}

Status ReplicationNode::StagePatch(const MapPatch& patch) {
  if (role_.load() != Role::kLeader) {
    return Status::FailedPrecondition("not the leader");
  }
  uint64_t seq = 0;
  std::shared_ptr<WalShipper> shipper;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (role_.load() != Role::kLeader) {
      return Status::FailedPrecondition("not the leader");
    }
    MapPatch copy = patch;
    HDMAP_RETURN_IF_ERROR(service_.StagePatch(std::move(copy)));
    seq = log_.Append(ReplRecordKind::kPatch, term_.load(),
                      service_.version(), SerializePatch(patch));
    log_.TrimToCapacity(last_publish_seq_ + 1);
    shipper = shipper_;
  }
  return AwaitAcks(shipper, seq);
}

Status ReplicationNode::Publish() {
  if (role_.load() != Role::kLeader) {
    return Status::FailedPrecondition("not the leader");
  }
  uint64_t seq = 0;
  std::shared_ptr<WalShipper> shipper;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (role_.load() != Role::kLeader) {
      return Status::FailedPrecondition("not the leader");
    }
    HDMAP_RETURN_IF_ERROR(service_.Publish());
    seq = log_.Append(ReplRecordKind::kPublish, term_.load(),
                      service_.version(), std::string());
    last_publish_seq_ = seq;
    log_.TrimToCapacity(last_publish_seq_ + 1);
    shipper = shipper_;
  }
  return AwaitAcks(shipper, seq);
}

Status ReplicationNode::AwaitAcks(const std::shared_ptr<WalShipper>& shipper,
                                  uint64_t seq) {
  if (opts_.min_ack_replicas == 0) return Status::Ok();
  if (shipper == nullptr) {
    return Status::Internal("write staged locally but no shipper is running");
  }
  shipper->NotifyAppend();
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();
  // Deliberately NOT capped at the live follower count: a leader that
  // lost every follower must not self-ack, or "acked" would stop meaning
  // "survives this node's death".
  bool acked = shipper->WaitForAcks(seq, opts_.min_ack_replicas,
                                    opts_.ack_timeout_ms);
  ack_wait_->Record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count());
  if (!acked) {
    return Status::Internal(
        "write staged locally but not acked by " +
        std::to_string(opts_.min_ack_replicas) + " replica(s) within " +
        std::to_string(opts_.ack_timeout_ms) + "ms");
  }
  return Status::Ok();
}

void ReplicationNode::SetPartitioned(bool on) {
  partitioned_.store(on);
  replica_.set_partitioned(on);
}

uint16_t ReplicationNode::port() const {
  return server_ != nullptr ? server_->port() : opts_.server.port;
}

uint64_t ReplicationNode::applied_seq() const {
  // The mirror log tracks applies for followers too, and a deposed
  // leader's data lives only in its log (its replica position is stale
  // from before its reign) — so the max is the node's true position.
  // The controller ranks promotion candidates with this; under-reporting
  // a deposed-but-alive leader would elect a behind follower and
  // truncate acked writes.
  return std::max(log_.end_seq(), replica_.applied_seq());
}

std::string ReplicationNode::ReplicationStatusJson() const {
  std::shared_ptr<WalShipper> shipper;
  uint64_t last_publish = 0;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    shipper = shipper_;
    last_publish = last_publish_seq_;
  }
  char buf[256];
  std::string out;
  out.reserve(512);
  std::snprintf(buf, sizeof(buf),
                "{\"node_id\":%d,\"role\":\"%s\",\"term\":%" PRIu64
                ",\"applied_seq\":%" PRIu64 ",\"last_publish_seq\":%" PRIu64
                ",\"log_start_seq\":%" PRIu64 ",\"log_end_seq\":%" PRIu64
                ",\"ms_since_leader_contact\":%.1f,\"followers\":[",
                opts_.node_id,
                role_.load() == Role::kLeader ? "LEADER" : "FOLLOWER",
                term_.load(), applied_seq(), last_publish, log_.start_seq(),
                log_.end_seq(), MsSinceLeaderContact());
  out += buf;
  if (shipper != nullptr) {
    // Progress() takes the shipper's own mutex (then the log's); both sit
    // below write_mu_ in the lock order, and neither is held here.
    bool first = true;
    for (const WalShipper::FollowerProgress& p : shipper->Progress()) {
      if (!first) out += ',';
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"node_id\":%d,\"acked_seq\":%" PRIu64
                    ",\"lag_records\":%" PRIu64 ",\"lag_ms\":%.1f}",
                    p.node_id, p.acked_seq, p.lag_records, p.lag_ms);
      out += buf;
    }
  }
  out += "]}";
  return out;
}

std::string ReplicationNode::BuildCatchUpPayload() {
  ReplCatchUp snapshot;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (role_.load() != Role::kLeader) return std::string();
    std::shared_ptr<const MapSnapshot> snap = service_.snapshot();
    if (snap == nullptr) return std::string();
    snapshot.term = term_.load();
    snapshot.resume_seq = last_publish_seq_;
    snapshot.version = snap->version;
    snapshot.published_unix_ms = snap->published_unix_ms;
    snapshot.tile_size_m = snap->tiles.tile_size();
    for (const TileId& id : snap->tiles.AllTiles()) {
      Result<PinnedBytes> bytes = snap->tiles.RawTileBytes(id);
      if (!bytes.ok()) return std::string();
      snapshot.tiles.emplace_back(id, std::string(bytes.value().view()));
    }
  }
  return EncodeCatchUp(snapshot);
}

}  // namespace hdmap
