#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace hdmap {
namespace {

TEST(CounterTest, IncrementIsMonotonic) {
  // Counters have no Reset(): exported snapshots must stay monotonic, so
  // assertions work on deltas from a captured baseline.
  Counter c;
  uint64_t base = c.value();
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value() - base, 42u);
  base = c.value();
  c.Increment(8);
  EXPECT_EQ(c.value() - base, 8u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetOverwrites) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(LatencyHistogramTest, ExactStatsMatchSamples) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ApproxPercentileSeconds(50), 0.0);
  h.Record(0.001);
  h.Record(0.003);
  h.Record(0.002);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.mean_seconds(), 0.002, 1e-12);
  EXPECT_NEAR(h.min_seconds(), 0.001, 1e-12);
  EXPECT_NEAR(h.max_seconds(), 0.003, 1e-12);
  EXPECT_NEAR(h.sum_seconds(), 0.006, 1e-12);
}

TEST(LatencyHistogramTest, PercentilesApproximateTheDistribution) {
  LatencyHistogram h;
  // 1000 samples spread uniformly over [1 ms, 100 ms].
  for (int i = 0; i < 1000; ++i) h.Record(0.001 + 0.099 * i / 999.0);
  double p50 = h.ApproxPercentileSeconds(50);
  double p99 = h.ApproxPercentileSeconds(99);
  EXPECT_GT(p50, 0.035);
  EXPECT_LT(p50, 0.065);
  EXPECT_GT(p99, 0.090);
  EXPECT_LT(p99, 0.110);
  EXPECT_LE(h.ApproxPercentileSeconds(0), p50);
  EXPECT_LE(p99, h.ApproxPercentileSeconds(100) + 1e-12);
}

TEST(LatencyHistogramTest, IgnoresNegativeAndNan) {
  LatencyHistogram h;
  h.Record(-1.0);
  h.Record(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
  h.Record(0.0);  // Valid: lands in the underflow bucket.
  EXPECT_EQ(h.count(), 1u);
}

TEST(LatencyHistogramTest, PercentileClampsAtUnderflowBucket) {
  LatencyHistogram h;
  // All samples below the 1 us histogram floor: every percentile clamps
  // to the range edge rather than extrapolating below it.
  for (int i = 0; i < 16; ++i) h.Record(1e-9);
  EXPECT_NEAR(h.ApproxPercentileSeconds(0), 1e-6, 1e-12);
  EXPECT_NEAR(h.ApproxPercentileSeconds(50), 1e-6, 1e-12);
  EXPECT_NEAR(h.ApproxPercentileSeconds(100), 1e-6, 1e-12);
  // Exact stats still see the true values.
  EXPECT_NEAR(h.max_seconds(), 1e-9, 1e-15);
}

TEST(LatencyHistogramTest, PercentileClampsAtOverflowBucket) {
  LatencyHistogram h;
  // All samples above the 10 s histogram ceiling.
  for (int i = 0; i < 16; ++i) h.Record(100.0);
  EXPECT_NEAR(h.ApproxPercentileSeconds(50), 10.0, 1e-9);
  EXPECT_NEAR(h.ApproxPercentileSeconds(100), 10.0, 1e-9);
  EXPECT_NEAR(h.max_seconds(), 100.0, 1e-9);
}

TEST(LatencyHistogramTest, MixedUnderOverflowClampsBothEdges) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(1e-8);
  for (int i = 0; i < 10; ++i) h.Record(50.0);
  EXPECT_NEAR(h.ApproxPercentileSeconds(1), 1e-6, 1e-12);
  EXPECT_NEAR(h.ApproxPercentileSeconds(99), 10.0, 1e-9);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllLandAcrossShards) {
  // The hot path is lock-striped per thread; every sample must still be
  // visible in the merged read-side view.
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(0.001 * static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_NEAR(h.min_seconds(), 0.001, 1e-12);
  EXPECT_NEAR(h.max_seconds(), 0.008, 1e-12);
  // Mean of 1..8 ms = 4.5 ms, via the merged Welford accumulators.
  EXPECT_NEAR(h.mean_seconds(), 0.0045, 1e-9);
  auto buckets = h.CumulativeBuckets();
  ASSERT_FALSE(buckets.empty());
  EXPECT_EQ(buckets.back().cumulative_count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogramTest, CumulativeBucketsMonotonicAndInfTerminated) {
  LatencyHistogram h;
  h.Record(1e-9);   // Underflow: counted from the first bucket up.
  h.Record(0.001);
  h.Record(0.5);
  h.Record(100.0);  // Overflow: only in the +Inf bucket.
  auto buckets = h.CumulativeBuckets();
  ASSERT_GE(buckets.size(), 2u);
  EXPECT_TRUE(std::isinf(buckets.back().le_seconds));
  EXPECT_EQ(buckets.back().cumulative_count, 4u);
  EXPECT_GE(buckets.front().cumulative_count, 1u);  // The underflow sample.
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1].le_seconds, buckets[i].le_seconds);
    EXPECT_LE(buckets[i - 1].cumulative_count, buckets[i].cumulative_count);
  }
  // The finite buckets cannot contain the 100 s overflow sample.
  EXPECT_EQ(buckets[buckets.size() - 2].cumulative_count, 3u);
}

TEST(RunningStatsTest, MergeMatchesSequentialFeed) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    double x = 0.5 + 0.01 * i;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  RunningStats merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-12);
  EXPECT_NEAR(merged.min(), all.min(), 1e-12);
  EXPECT_NEAR(merged.max(), all.max(), 1e-12);
}

TEST(MetricsRegistryTest, GetReturnsStablePointerPerName) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("requests");
  Counter* b = reg.GetCounter("requests");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("errors"), a);
  // Same name in different instrument families is distinct storage.
  reg.GetGauge("requests")->Set(7.0);
  EXPECT_EQ(a->value(), 0u);
}

TEST(MetricsRegistryTest, SnapshotExportsEveryInstrument) {
  MetricsRegistry reg;
  reg.GetCounter("hits")->Increment(3);
  reg.GetGauge("version")->Set(2.0);
  LatencyHistogram* lat = reg.GetLatency("get_region");
  lat->Record(0.010);
  lat->Record(0.020);

  auto samples = reg.Snapshot();
  auto find = [&](const std::string& name) -> const double* {
    for (const auto& s : samples) {
      if (s.name == name) return &s.value;
    }
    return nullptr;
  };
  ASSERT_NE(find("hits"), nullptr);
  EXPECT_EQ(*find("hits"), 3.0);
  ASSERT_NE(find("version"), nullptr);
  EXPECT_EQ(*find("version"), 2.0);
  ASSERT_NE(find("get_region.count"), nullptr);
  EXPECT_EQ(*find("get_region.count"), 2.0);
  ASSERT_NE(find("get_region.mean_ms"), nullptr);
  EXPECT_NEAR(*find("get_region.mean_ms"), 15.0, 1e-9);
  EXPECT_NE(find("get_region.p50_ms"), nullptr);
  EXPECT_NE(find("get_region.p99_ms"), nullptr);
  EXPECT_NE(find("get_region.max_ms"), nullptr);

  std::string rendered = reg.Render();
  EXPECT_NE(rendered.find("hits"), std::string::npos);
  EXPECT_NE(rendered.find("get_region.p99_ms"), std::string::npos);
}

TEST(ScopedTimerTest, RecordsOnDestructionAndNullDisables) {
  LatencyHistogram h;
  { ScopedTimer t(&h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max_seconds(), 0.0);
  { ScopedTimer t(nullptr); }  // Must not crash.
}

// ---------------------------------------------------------------------------
// Prometheus exposition: a strict line parser validating the full contract
// (family headers, label escaping, cumulative +Inf-terminated buckets).
// ---------------------------------------------------------------------------

struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

struct PromParse {
  std::map<std::string, std::string> types;  // family -> counter/gauge/...
  std::set<std::string> helped;
  std::vector<PromSample> samples;
  std::vector<std::string> errors;
};

bool ParseLabels(const std::string& block, PromSample* out,
                 std::string* error) {
  // block is the text between '{' and '}'.
  size_t i = 0;
  while (i < block.size()) {
    size_t eq = block.find('=', i);
    if (eq == std::string::npos || block[eq + 1] != '"') {
      *error = "bad label syntax: " + block;
      return false;
    }
    std::string key = block.substr(i, eq - i);
    std::string value;
    size_t j = eq + 2;
    for (; j < block.size() && block[j] != '"'; ++j) {
      if (block[j] == '\\') {
        if (j + 1 >= block.size()) {
          *error = "dangling escape in: " + block;
          return false;
        }
        char next = block[j + 1];
        if (next == '\\') {
          value += '\\';
        } else if (next == '"') {
          value += '"';
        } else if (next == 'n') {
          value += '\n';
        } else {
          *error = "unknown escape in: " + block;
          return false;
        }
        ++j;
      } else {
        value += block[j];
      }
    }
    if (j >= block.size()) {
      *error = "unterminated label value: " + block;
      return false;
    }
    out->labels[key] = value;
    i = j + 1;
    if (i < block.size()) {
      if (block[i] != ',') {
        *error = "expected ',' between labels: " + block;
        return false;
      }
      ++i;
    }
  }
  return true;
}

PromParse ParsePrometheus(const std::string& text) {
  PromParse out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      size_t sp = line.find(' ', 7);
      if (sp == std::string::npos) {
        out.errors.push_back("HELP without text: " + line);
        continue;
      }
      out.helped.insert(line.substr(7, sp - 7));
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      size_t sp = line.find(' ', 7);
      if (sp == std::string::npos) {
        out.errors.push_back("TYPE without kind: " + line);
        continue;
      }
      std::string fam = line.substr(7, sp - 7);
      std::string kind = line.substr(sp + 1);
      if (out.types.count(fam) > 0) {
        out.errors.push_back("duplicate TYPE for family " + fam);
      }
      if (kind != "counter" && kind != "gauge" && kind != "histogram") {
        out.errors.push_back("unknown type: " + line);
      }
      out.types[fam] = kind;
      continue;
    }
    if (line[0] == '#') {
      out.errors.push_back("unknown comment: " + line);
      continue;
    }
    PromSample sample;
    size_t brace = line.find('{');
    size_t value_start;
    if (brace != std::string::npos) {
      size_t close = line.rfind('}');
      if (close == std::string::npos || close < brace) {
        out.errors.push_back("unbalanced braces: " + line);
        continue;
      }
      sample.name = line.substr(0, brace);
      std::string err;
      if (!ParseLabels(line.substr(brace + 1, close - brace - 1), &sample,
                       &err)) {
        out.errors.push_back(err);
        continue;
      }
      value_start = close + 1;
    } else {
      size_t sp = line.find(' ');
      if (sp == std::string::npos) {
        out.errors.push_back("sample without value: " + line);
        continue;
      }
      sample.name = line.substr(0, sp);
      value_start = sp;
    }
    std::string value_text = line.substr(value_start);
    size_t pos = value_text.find_first_not_of(' ');
    if (pos == std::string::npos) {
      out.errors.push_back("sample without value: " + line);
      continue;
    }
    value_text = value_text.substr(pos);
    if (value_text == "+Inf") {
      sample.value = std::numeric_limits<double>::infinity();
    } else {
      try {
        sample.value = std::stod(value_text);
      } catch (...) {
        out.errors.push_back("unparseable value: " + line);
        continue;
      }
    }
    for (char c : sample.name) {
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_' || c == ':';
      if (!ok) {
        out.errors.push_back("invalid metric name char: " + line);
        break;
      }
    }
    out.samples.push_back(std::move(sample));
  }
  return out;
}

/// Family a sample belongs to: strips the histogram series suffix.
std::string FamilyOf(const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    std::string s = suffix;
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return name.substr(0, name.size() - s.size());
    }
  }
  return name;
}

TEST(PrometheusRenderTest, StrictParserAcceptsFullOutput) {
  MetricsRegistry reg;
  reg.GetCounter("map_service.requests")->Increment(5);
  reg.GetCounter("map_service.errors")->Increment(3);
  reg.GetCounter("map_service.errors{DATA_LOSS}")->Increment(2);
  // Sorts between "errors" and "errors{...}": must not split the family.
  reg.GetCounter("map_service.errors2")->Increment(1);
  reg.GetGauge("map_service.snapshot_version")->Set(4.0);
  reg.SetHelp("map_service.requests", "Requests served");
  LatencyHistogram* lat = reg.GetLatency("map_service.get_region");
  lat->Record(1e-9);  // Underflow sample.
  for (int i = 0; i < 100; ++i) lat->Record(0.001 + 0.0001 * i);
  lat->Record(99.0);  // Overflow sample.
  LatencyHistogram* tagged = reg.GetLatency("wal.append{replica}");
  tagged->Record(0.002);

  std::string text = reg.RenderPrometheus();
  PromParse parsed = ParsePrometheus(text);
  for (const std::string& e : parsed.errors) ADD_FAILURE() << e;

  // Every sample family has exactly one TYPE (checked in the parser) and
  // a HELP line.
  for (const PromSample& s : parsed.samples) {
    std::string fam = FamilyOf(s.name);
    EXPECT_EQ(parsed.types.count(fam), 1u) << "no TYPE for " << s.name;
    EXPECT_EQ(parsed.helped.count(fam), 1u) << "no HELP for " << s.name;
  }

  // Counter semantics: _total suffix, tags as labels, same family.
  EXPECT_EQ(parsed.types.at("hdmap_map_service_errors_total"), "counter");
  EXPECT_EQ(parsed.types.at("hdmap_map_service_errors2_total"), "counter");
  uint64_t plain = 0;
  uint64_t tagged_errors = 0;
  for (const PromSample& s : parsed.samples) {
    if (s.name != "hdmap_map_service_errors_total") continue;
    if (s.labels.empty()) {
      plain = static_cast<uint64_t>(s.value);
    } else {
      EXPECT_EQ(s.labels.at("tag"), "DATA_LOSS");
      tagged_errors = static_cast<uint64_t>(s.value);
    }
  }
  EXPECT_EQ(plain, 3u);
  EXPECT_EQ(tagged_errors, 2u);

  // Histogram semantics for every histogram family: per-tag bucket series
  // cumulative, +Inf-terminated, consistent with _count.
  std::string hist_fam = "hdmap_map_service_get_region_seconds";
  EXPECT_EQ(parsed.types.at(hist_fam), "histogram");
  std::vector<std::pair<double, double>> buckets;  // (le, count) in order.
  double count_series = -1.0;
  bool sum_seen = false;
  for (const PromSample& s : parsed.samples) {
    if (s.name == hist_fam + "_bucket") {
      ASSERT_EQ(s.labels.count("le"), 1u);
      // Re-parse le from the label (the parser stored raw text? no — the
      // exporter writes it; parse here).
      double le = s.labels.at("le") == "+Inf"
                      ? std::numeric_limits<double>::infinity()
                      : std::stod(s.labels.at("le"));
      buckets.emplace_back(le, s.value);
    } else if (s.name == hist_fam + "_count") {
      count_series = s.value;
    } else if (s.name == hist_fam + "_sum") {
      sum_seen = true;
      EXPECT_GT(s.value, 0.0);
    }
  }
  ASSERT_GE(buckets.size(), 2u);
  EXPECT_TRUE(std::isinf(buckets.back().first)) << "buckets not +Inf-terminated";
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1].first, buckets[i].first);
    EXPECT_LE(buckets[i - 1].second, buckets[i].second)
        << "bucket counts not cumulative at le=" << buckets[i].first;
  }
  EXPECT_EQ(count_series, 102.0);
  EXPECT_EQ(buckets.back().second, count_series)
      << "+Inf bucket must equal _count";
  // The 99 s overflow sample is beyond every finite bound.
  EXPECT_EQ(buckets[buckets.size() - 2].second, 101.0);
  EXPECT_TRUE(sum_seen);

  // The tagged histogram renders with its tag label on every series.
  bool tagged_bucket_seen = false;
  for (const PromSample& s : parsed.samples) {
    if (s.name == "hdmap_wal_append_seconds_bucket") {
      EXPECT_EQ(s.labels.at("tag"), "replica");
      tagged_bucket_seen = true;
    }
  }
  EXPECT_TRUE(tagged_bucket_seen);
}

TEST(PrometheusRenderTest, LabelEscapingRoundTrips) {
  MetricsRegistry reg;
  // Tag with a backslash, a double quote, and a newline.
  std::string tag = "a\"b\\c\nd";
  reg.GetCounter("weird.series{" + tag + "}")->Increment();
  PromParse parsed = ParsePrometheus(reg.RenderPrometheus());
  for (const std::string& e : parsed.errors) ADD_FAILURE() << e;
  bool found = false;
  for (const PromSample& s : parsed.samples) {
    if (s.name == "hdmap_weird_series_total" && !s.labels.empty()) {
      EXPECT_EQ(s.labels.at("tag"), tag);  // Unescaped round trip.
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(JsonRenderTest, SnapshotCarriesTypesAndUnits) {
  MetricsRegistry reg;
  reg.GetCounter("a.count")->Increment(7);
  reg.GetGauge("b.gauge")->Set(1.5);
  LatencyHistogram* lat = reg.GetLatency("c.lat");
  lat->Record(0.004);
  lat->Record(0.006);
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"a.count\", \"type\": \"counter\", "
                      "\"unit\": \"1\", \"value\": 7}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"c.lat\", \"type\": \"histogram\", "
                      "\"unit\": \"seconds\", \"count\": 2"),
            std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Escaping: quotes/newlines in names cannot break the document.
  reg.GetCounter("bad\"name\nx");
  std::string json2 = reg.RenderJson();
  EXPECT_NE(json2.find("bad\\\"name\\nx"), std::string::npos);
}

TEST(MetricsRegistryTest, NamesReturnsSortedRawKeys) {
  MetricsRegistry reg;
  reg.GetCounter("zeta.count");
  reg.GetGauge("replication.lag_records{FOLLOWER1}");
  reg.GetLatency("alpha.latency");
  std::vector<std::string> names = reg.Names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(names[0], "alpha.latency");
  EXPECT_EQ(names[1], "replication.lag_records{FOLLOWER1}");
  EXPECT_EQ(names[2], "zeta.count");
}

TEST(MetricsRegistryTest, ReplicationLagFamiliesRenderWithFollowerLabels) {
  MetricsRegistry reg;
  reg.GetGauge("replication.lag_records{FOLLOWER1}")->Set(3);
  reg.GetGauge("replication.lag_records{FOLLOWER2}")->Set(0);
  reg.GetGauge("replication.lag_ms{FOLLOWER1}")->Set(12.5);
  reg.GetLatency("replication.ack_wait")->Record(0.004);
  std::string prom = reg.RenderPrometheus();
  // One family header, one series per follower tag.
  EXPECT_NE(prom.find("# TYPE hdmap_replication_lag_records gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("hdmap_replication_lag_records{tag=\"FOLLOWER1\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("hdmap_replication_lag_records{tag=\"FOLLOWER2\"} 0"),
            std::string::npos);
  EXPECT_NE(prom.find("hdmap_replication_lag_ms{tag=\"FOLLOWER1\"} 12.5"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE hdmap_replication_ack_wait_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("hdmap_replication_ack_wait_seconds_count 1"),
            std::string::npos);
}

}  // namespace
}  // namespace hdmap
