file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_bhps.dir/bench_e8_bhps.cc.o"
  "CMakeFiles/bench_e8_bhps.dir/bench_e8_bhps.cc.o.d"
  "bench_e8_bhps"
  "bench_e8_bhps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_bhps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
