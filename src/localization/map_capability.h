#ifndef HDMAP_LOCALIZATION_MAP_CAPABILITY_H_
#define HDMAP_LOCALIZATION_MAP_CAPABILITY_H_

#include <vector>

#include "core/hd_map.h"

namespace hdmap {

/// The per-location factors that determine how well a map supports
/// vehicle localization (Javanmardi et al. [64]: feature sufficiency,
/// geometric layout, and representation quality all gate the achievable
/// accuracy).
struct MapCapability {
  int landmark_count = 0;        ///< Landmarks within sensing range.
  double predicted_sigma = 0.0;  ///< Geometric dilution (m, inf if none).
  double marking_length = 0.0;   ///< Meters of visible lane marking.
  /// 0 (unusable) .. 1 (excellent): combined capability score.
  double score = 0.0;
};

struct MapCapabilityOptions {
  double sensing_range = 50.0;
  double range_sigma = 0.3;
  /// Marking length that saturates the marking term.
  double marking_saturation = 120.0;
  /// Predicted sigma that zeroes the geometry term.
  double sigma_ceiling = 2.0;
};

/// Evaluates the map's localization capability at one position.
MapCapability EvaluateMapCapability(const HdMap& map, const Vec2& position,
                                    const MapCapabilityOptions& options = {});

/// Capability profile along a lanelet route, one sample per
/// `station_step` meters. Weak sections (low score) are where a
/// localization stack should expect degraded accuracy — the map-quality
/// audit of [64].
std::vector<MapCapability> RouteCapabilityProfile(
    const HdMap& map, const std::vector<ElementId>& route,
    double station_step = 25.0, const MapCapabilityOptions& options = {});

}  // namespace hdmap

#endif  // HDMAP_LOCALIZATION_MAP_CAPABILITY_H_
