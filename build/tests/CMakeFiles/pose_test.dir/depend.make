# Empty dependencies file for pose_test.
# This may be replaced when dependencies are built.
