#ifndef HDMAP_MAINTENANCE_CROWD_SENSING_H_
#define HDMAP_MAINTENANCE_CROWD_SENSING_H_

#include <map>
#include <vector>

#include "core/hd_map.h"
#include "core/map_patch.h"
#include "geometry/vec2.h"

namespace hdmap {

/// One raw change observation uploaded by a vehicle (position + kind).
struct ChangeObservation {
  Vec2 position;
  /// True = element present in world but not map (addition evidence);
  /// false = element in map but missing in world (removal evidence).
  bool is_addition = true;
  ElementId map_id = kInvalidId;  ///< For removal evidence.
  size_t payload_bytes = 64;      ///< Upload cost of this observation.
};

/// Distributed crowd-sensing map update (Qi et al. [47]): roadside units
/// with MEC servers pre-aggregate the observations of vehicles in their
/// cell — deduplicating and thresholding locally — and forward only the
/// condensed change summaries to the central map service.
class CrowdSensingAggregator {
 public:
  struct Options {
    double rsu_cell_size = 500.0;   ///< RSU coverage cell, meters.
    double dedupe_radius = 3.0;
    int min_reports = 3;            ///< Evidence threshold per change.
    size_t summary_bytes = 48;      ///< Bytes per condensed change.
  };

  explicit CrowdSensingAggregator(const Options& options)
      : options_(options) {}

  /// MEC stage: ingest one observation at its RSU.
  void Ingest(const ChangeObservation& observation);

  struct AggregateResult {
    /// Changes confirmed by enough deduplicated reports, per kind.
    std::vector<ChangeObservation> confirmed;
    size_t raw_upload_bytes = 0;       ///< Centralized-baseline cost.
    size_t condensed_upload_bytes = 0; ///< MEC -> center cost.
    size_t num_rsus = 0;
  };

  /// Central stage: aggregates all RSU summaries.
  AggregateResult Aggregate() const;

 private:
  struct RsuCell {
    std::vector<ChangeObservation> observations;
  };
  Options options_;
  std::map<std::pair<int, int>, RsuCell> cells_;
  size_t total_raw_bytes_ = 0;
};

}  // namespace hdmap

#endif  // HDMAP_MAINTENANCE_CROWD_SENSING_H_
