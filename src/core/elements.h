#ifndef HDMAP_CORE_ELEMENTS_H_
#define HDMAP_CORE_ELEMENTS_H_

#include <algorithm>
#include <string>
#include <vector>

#include "core/ids.h"
#include "geometry/line_string.h"
#include "geometry/polygon.h"
#include "geometry/vec3.h"

namespace hdmap {

// ---------------------------------------------------------------------------
// Physical layer (Lanelet2 [20] layer 1): directly observable elements.
// ---------------------------------------------------------------------------

/// Kind of a point landmark.
enum class LandmarkType {
  kTrafficSign = 0,
  kTrafficLight = 1,
  kPole = 2,
  kHighReflectiveLandmark = 3,  // HRL [53]: uniquely reflective marker.
};

/// A point landmark (sign face, light housing, pole) with 3-D position.
struct Landmark {
  ElementId id = kInvalidId;
  LandmarkType type = LandmarkType::kTrafficSign;
  Vec3 position;
  /// LiDAR reflectivity in [0, 1]; HRLs are near 1.
  double reflectivity = 0.5;
  /// Free-form subtype, e.g. "stop", "yield", "speed_limit_50".
  std::string subtype;
};

/// Kind of a physical linear feature.
enum class LineType {
  kSolidLaneMarking = 0,
  kDashedLaneMarking = 1,
  kRoadEdge = 2,   // Curb / pavement edge.
  kStopLine = 3,
  kVirtual = 4,    // Non-observable boundary (e.g. across intersections).
};

/// A polyline feature: lane boundary, curb, stop line.
struct LineFeature {
  ElementId id = kInvalidId;
  LineType type = LineType::kSolidLaneMarking;
  LineString geometry;
  /// LiDAR reflectivity of the paint/material in [0, 1].
  double reflectivity = 0.8;
  /// Dense survey point cloud captured by mapping vehicles (the payload
  /// that makes conventional HD maps heavy, Pannen et al. [44]). Carried
  /// by the full serialization, dropped by the compact encoding [60].
  std::vector<Vec3> survey_points;
};

/// Kind of a mapped area.
enum class AreaType {
  kCrosswalk = 0,
  kParking = 1,
  kIntersection = 2,
  kKeepout = 3,
};

/// A polygonal feature.
struct AreaFeature {
  ElementId id = kInvalidId;
  AreaType type = AreaType::kCrosswalk;
  Polygon geometry;
};

// ---------------------------------------------------------------------------
// Relational layer (Lanelet2 layer 2): lanes, rules, and their links to the
// physical layer.
// ---------------------------------------------------------------------------

enum class RegulatoryType {
  kSpeedLimit = 0,
  kStop = 1,
  kYield = 2,
  kTrafficLight = 3,
  kCrosswalk = 4,
};

/// A traffic rule attached to one or more lanelets, optionally anchored to
/// a physical landmark or area.
struct RegulatoryElement {
  ElementId id = kInvalidId;
  RegulatoryType type = RegulatoryType::kSpeedLimit;
  /// For kSpeedLimit: the limit in m/s; otherwise unused.
  double speed_limit_mps = 0.0;
  /// Physical anchor (landmark or area id), kInvalidId if none.
  ElementId anchor_id = kInvalidId;
  /// Lanelets this rule applies to.
  std::vector<ElementId> lanelet_ids;
};

/// An atomic lane section: the fundamental relational unit (Lanelet2 [20]).
/// Geometry is referenced from the physical layer; the centerline is stored
/// denormalized for fast queries.
struct Lanelet {
  ElementId id = kInvalidId;
  ElementId left_boundary_id = kInvalidId;
  ElementId right_boundary_id = kInvalidId;
  LineString centerline;
  /// Elevation (m) at evenly spaced stations along the centerline; empty
  /// means flat. Used by PCC [61] slope-aware planning.
  std::vector<double> elevation_profile;
  double speed_limit_mps = 13.89;  // 50 km/h default.
  /// Topology (topological layer, Lanelet2 layer 3, stored explicitly).
  std::vector<ElementId> successors;
  std::vector<ElementId> predecessors;
  ElementId left_neighbor = kInvalidId;   // Same direction, lane change OK.
  ElementId right_neighbor = kInvalidId;
  std::vector<ElementId> regulatory_ids;
  /// HiDAM [21]: id of the road-segment bundle this lane belongs to.
  ElementId bundle_id = kInvalidId;

  double Length() const { return centerline.Length(); }

  /// Linearly interpolated elevation at arc length s (0 if no profile).
  double ElevationAt(double s) const {
    if (elevation_profile.empty()) return 0.0;
    if (elevation_profile.size() == 1) return elevation_profile.front();
    double len = centerline.Length();
    if (len <= 0.0) return elevation_profile.front();
    double u = s / len * static_cast<double>(elevation_profile.size() - 1);
    size_t i = static_cast<size_t>(u);
    if (i + 1 >= elevation_profile.size()) return elevation_profile.back();
    double frac = u - static_cast<double>(i);
    return elevation_profile[i] * (1.0 - frac) +
           elevation_profile[i + 1] * frac;
  }

  /// Grade (dz/ds) at arc length s via finite differences.
  double GradeAt(double s) const {
    const double kStep = 5.0;
    double len = centerline.Length();
    double s0 = std::max(0.0, s - kStep / 2);
    double s1 = std::min(len, s + kStep / 2);
    if (s1 <= s0) return 0.0;
    return (ElevationAt(s1) - ElevationAt(s0)) / (s1 - s0);
  }
};

/// HiDAM [21]: a road segment modeled as a multi-directional bundle of
/// parallel lanes between two node points, preserving compatibility with
/// node-edge road networks.
struct LaneBundle {
  ElementId id = kInvalidId;
  ElementId from_node = kInvalidId;
  ElementId to_node = kInvalidId;
  /// Lanelets in the bundle, ordered left-to-right in `forward` direction;
  /// both travel directions may be present.
  std::vector<ElementId> lanelet_ids;
};

/// Node of the HiDAM node-edge skeleton (intersection or dead end).
struct MapNode {
  ElementId id = kInvalidId;
  Vec2 position;
  std::vector<ElementId> bundle_ids;
};

}  // namespace hdmap

#endif  // HDMAP_CORE_ELEMENTS_H_
