# Empty dependencies file for hdmap_core.
# This may be replaced when dependencies are built.
