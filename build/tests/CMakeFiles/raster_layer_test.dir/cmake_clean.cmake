file(REMOVE_RECURSE
  "CMakeFiles/raster_layer_test.dir/raster_layer_test.cc.o"
  "CMakeFiles/raster_layer_test.dir/raster_layer_test.cc.o.d"
  "raster_layer_test"
  "raster_layer_test.pdb"
  "raster_layer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raster_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
