#include "localization/map_capability.h"

#include <algorithm>
#include <cmath>

#include "localization/triangulation.h"

namespace hdmap {

MapCapability EvaluateMapCapability(const HdMap& map, const Vec2& position,
                                    const MapCapabilityOptions& options) {
  MapCapability cap;

  std::vector<Vec2> landmark_positions;
  for (ElementId id : map.LandmarksNear(position, options.sensing_range)) {
    const Landmark* lm = map.FindLandmark(id);
    if (lm == nullptr) continue;
    landmark_positions.push_back(lm->position.xy());
  }
  cap.landmark_count = static_cast<int>(landmark_positions.size());
  cap.predicted_sigma =
      PredictedPositionSigma(position, landmark_positions,
                             options.range_sigma);

  for (ElementId id : map.LineFeaturesInBox(
           Aabb::FromPoint(position, options.sensing_range))) {
    const LineFeature* lf = map.FindLineFeature(id);
    if (lf == nullptr) continue;
    if (lf->type != LineType::kSolidLaneMarking &&
        lf->type != LineType::kDashedLaneMarking &&
        lf->type != LineType::kStopLine) {
      continue;
    }
    // Approximate visible length: the portion of the feature whose
    // sampled points fall inside the sensing disc.
    double len = lf->geometry.Length();
    double visible = 0.0;
    double step = 10.0;
    for (double s = 0.0; s < len; s += step) {
      if (lf->geometry.PointAt(s).DistanceTo(position) <=
          options.sensing_range) {
        visible += std::min(step, len - s);
      }
    }
    cap.marking_length += visible;
  }

  double geometry_term =
      std::isinf(cap.predicted_sigma)
          ? 0.0
          : std::clamp(1.0 - cap.predicted_sigma / options.sigma_ceiling,
                       0.0, 1.0);
  double marking_term = std::clamp(
      cap.marking_length / options.marking_saturation, 0.0, 1.0);
  // Either information source alone supports localization; both together
  // are best. Weighted soft-OR.
  cap.score = 1.0 - (1.0 - 0.7 * geometry_term) * (1.0 - 0.7 * marking_term);
  return cap;
}

std::vector<MapCapability> RouteCapabilityProfile(
    const HdMap& map, const std::vector<ElementId>& route,
    double station_step, const MapCapabilityOptions& options) {
  std::vector<MapCapability> profile;
  for (ElementId id : route) {
    const Lanelet* ll = map.FindLanelet(id);
    if (ll == nullptr) continue;
    double len = ll->Length();
    for (double s = 0.0; s < len; s += station_step) {
      profile.push_back(EvaluateMapCapability(
          map, ll->centerline.PointAt(s), options));
    }
  }
  return profile;
}

}  // namespace hdmap
