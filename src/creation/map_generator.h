#ifndef HDMAP_CREATION_MAP_GENERATOR_H_
#define HDMAP_CREATION_MAP_GENERATOR_H_

#include <array>

#include "common/result.h"
#include "common/rng.h"
#include "core/hd_map.h"

namespace hdmap {

/// Statistics of an HD map's two-level structure (HDMapGen [24]): the
/// global graph — nodes at intersections, edges as lane connections —
/// plus local geometry statistics (curvature) for each lane.
struct MapTopologyStats {
  /// Global graph.
  double mean_segment_length = 0.0;
  double segment_length_stddev = 0.0;
  /// P(node degree == i) for i in 0..5+ (clamped).
  std::array<double, 6> node_degree_pmf{};
  double mean_lanes_per_direction = 1.0;
  /// Local geometry: stddev of per-25m heading change along centerlines.
  double heading_change_stddev = 0.0;
  double mean_speed_limit = 13.89;

  size_t num_nodes = 0;
  size_t num_segments = 0;
};

/// Extracts the two-level statistics from an example map. Requires the
/// bundle/node layer (maps from GenerateTown or hand-built HiDAM maps).
Result<MapTopologyStats> ExtractTopologyStats(const HdMap& map);

struct GeneratedMapOptions {
  int grid_rows = 5;
  int grid_cols = 5;
  /// Node placement jitter as a fraction of the segment length.
  double jitter_frac = 0.15;
  double centerline_step = 10.0;
};

/// Generates a new HD map whose global-graph and local-geometry
/// statistics match `stats` (the HDMapGen [24] generative direction,
/// realized with an explicit statistical model instead of a learned
/// autoregressive one): nodes are placed on a jittered lattice at the
/// example's segment-length scale, edges are dropped to match the degree
/// distribution, and lane centerlines get heading noise matching the
/// example's curvature. The result carries full topology and validates.
Result<HdMap> GenerateFromStats(const MapTopologyStats& stats,
                                const GeneratedMapOptions& options,
                                Rng& rng);

}  // namespace hdmap

#endif  // HDMAP_CREATION_MAP_GENERATOR_H_
