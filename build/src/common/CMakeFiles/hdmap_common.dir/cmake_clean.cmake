file(REMOVE_RECURSE
  "CMakeFiles/hdmap_common.dir/statistics.cc.o"
  "CMakeFiles/hdmap_common.dir/statistics.cc.o.d"
  "CMakeFiles/hdmap_common.dir/status.cc.o"
  "CMakeFiles/hdmap_common.dir/status.cc.o.d"
  "libhdmap_common.a"
  "libhdmap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
