#ifndef HDMAP_SERVICE_MAP_SERVICE_H_
#define HDMAP_SERVICE_MAP_SERVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/event_log.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/hd_map.h"
#include "core/map_patch.h"
#include "core/routing_graph.h"
#include "core/tile_store.h"
#include "planning/route_planner.h"
#include "storage/patch_wal.h"
#include "storage/snapshot_store.h"

namespace hdmap {

/// One immutable published version of the map: the unit a fleet consumes.
/// Everything inside is fully built before the snapshot becomes visible
/// (spatial indexes warm, routing graph materialized), so any number of
/// threads may query it concurrently through const access with no
/// synchronization. Snapshots are only ever handed out as
/// std::shared_ptr<const MapSnapshot>; a reader holding one keeps its
/// version alive no matter how many newer versions publish.
struct MapSnapshot {
  /// Monotonic publish sequence number, starting at 1 for the initial map.
  uint64_t version = 0;
  /// Steady-clock publish instant: the basis for in-process age math
  /// (SnapshotAgeSeconds), immune to wall-clock steps. Meaningless across
  /// restarts — a recovered snapshot back-dates it from
  /// `published_unix_ms` so age stays continuous.
  std::chrono::steady_clock::time_point publish_time;
  /// Wall-clock publish stamp (Unix epoch, milliseconds). Persisted in
  /// the checkpoint manifest, so it is the one publish time that survives
  /// a restart.
  int64_t published_unix_ms = 0;
  /// The stitched, query-ready map (indexes pre-built; see
  /// HdMap::BuildIndexes).
  HdMap map;
  /// The map split into serialized tiles (the distribution format).
  TileStore tiles;
  /// Shared with the previous snapshot when a publish did not touch the
  /// relational layer (lanelets/regulatory elements) — landmark- and
  /// marking-level patches reuse the graph instead of rebuilding it.
  std::shared_ptr<const RoutingGraph> routing;
};

/// A zero-copy tile view stamped with the snapshot version it was read
/// from (the version a client caches or advertises for deltas).
struct VersionedTileView {
  uint64_t version = 0;
  PinnedTileView tile;
};

/// Coarse serving-health signal derived from the error-code counters.
enum class ServiceHealth {
  /// No data-loss events observed since the current snapshot published.
  kServing,
  /// At least one corrupt tile was served around (degraded region) or
  /// surfaced as a kDataLoss reader error since the current snapshot
  /// published. Clears on the next successful Publish/Init — the only
  /// paths that can replace the corrupt bytes.
  kDegraded,
};

/// "SERVING" / "DEGRADED" — the wire spelling kStats responses and the
/// ClusterInspector's cluster view use.
std::string_view ServiceHealthToString(ServiceHealth health);

/// The serving front door of the map ecosystem (the workload of Pannen et
/// al. [44] / Qi et al. [47]: fleets read regions and patches land
/// concurrently). One writer stages MapPatches and publishes; any number
/// of reader threads query, each request served against exactly one
/// version:
///
///   readers                 writer
///   -------                 ------
///   GetRegion / GetTile     StagePatch (cheap, any thread)
///   MatchToLane / Route     Publish: copy map, apply patches,
///   snapshot()                re-derive only the touched tiles
///                             (copy-on-write; untouched tiles keep
///                             their serialized bytes), rebuild what
///                             depends on the change, then swap one
///                             atomic pointer
///
/// Thread safety: all reader endpoints and StagePatch may be called
/// concurrently from any thread. Publish/ApplyPatch/Init are serialized
/// internally (multiple writers queue on a mutex). A reader never blocks
/// on a publish and never observes a partially applied patch set: it
/// either sees the whole previous version or the whole new one.
///
/// Observability: every endpoint records latency into a MetricsRegistry
/// ("map_service.*" latency histograms, request/error counters,
/// snapshot version/age gauges), and the tile cache exports its counters
/// ("tile_store.cache_*") through the same registry.
class MapService {
 public:
  /// Construction knobs (same pattern as TileStore::Options: new knobs
  /// land here, signatures don't churn).
  struct Options {
    /// Tiling of the published snapshots. When `tile_store.metrics` is
    /// null it is wired to the service registry automatically.
    TileStore::Options tile_store;
    /// Seconds added per lane-change edge in the routing graph.
    double lane_change_penalty_s = 2.0;
    /// Threads for publish-side tile (re)serialization; 0 = hardware
    /// concurrency.
    size_t publish_threads = 0;
    /// Threads one GetRegion stitch may use. Default 1: region requests
    /// already run on many reader threads, so per-request fan-out would
    /// oversubscribe the serving host.
    size_t read_threads = 1;
    /// External metrics registry; null means the service owns one
    /// (accessible via metrics()). Must outlive the service when set.
    MetricsRegistry* metrics = nullptr;
    /// Fault-injection seam for tests/benches (must outlive the service;
    /// null disables). Publish consults site "map_service.publish"; it is
    /// also wired into `tile_store.fault_injector` (site
    /// "tile_store.load") unless that is already set.
    FaultInjector* fault_injector = nullptr;
    /// When true, GetRegion fails whole requests with kDataLoss instead
    /// of serving degraded regions (RegionReadMode::kStrict). Default off:
    /// one corrupt tile should not take down a whole region read.
    bool strict_reads = false;
    /// Reader requests slower than this (seconds) land in the event log
    /// as kSlowRequest records; <= 0 disables slow-request events.
    double slow_request_threshold_s = 0.25;
    /// Capacity of the structured event ring served by RecentEvents().
    size_t event_log_capacity = 256;
    /// How many recent publishes keep their applied patches (serialized)
    /// for PatchesSince — the delta chain a network edge serves to
    /// clients asking "I have version V, send what changed". 0 disables
    /// history (every conditional fetch beyond NOT_MODIFIED goes full).
    size_t publish_history = 32;

    /// Crash-safe durability. Disabled (empty data_dir) by default, with
    /// zero overhead on the serving hot path when disabled.
    struct Durability {
      /// Root directory for checkpoints and the patch WAL; empty turns
      /// the durability layer off entirely.
      std::string data_dir;
      /// fsync policy for checkpoint files and WAL appends.
      FsyncMode fsync = FsyncMode::kAlways;
      /// Write a snapshot checkpoint every N successful publishes (1 =
      /// every publish). Publishes between checkpoints survive crashes
      /// through the WAL alone.
      uint32_t checkpoint_every_n_publishes = 1;
      /// Checkpoint versions kept on disk; older ones are pruned after
      /// each checkpoint. The extras are the fallbacks recovery degrades
      /// to when the newest checkpoint is torn or corrupt.
      size_t retention = 2;
    };
    Durability durability;
  };

  /// FaultInjector site name instrumenting Publish.
  static constexpr const char* kPublishFaultSite = "map_service.publish";

  MapService() : MapService(Options{}) {}
  explicit MapService(Options options);

  MapService(const MapService&) = delete;
  MapService& operator=(const MapService&) = delete;

  /// Publishes `initial_map` as version 1. Every reader endpoint fails
  /// with kFailedPrecondition until this succeeds. Re-initializing an
  /// already-serving service replaces the map wholesale (full tile build)
  /// and keeps the version sequence monotonic.
  ///
  /// With durability enabled and existing state under data_dir, Init
  /// recovers from disk instead (see Recover) and `initial_map` is
  /// ignored: the durable map outranks the bootstrap map after a restart.
  /// A fresh data_dir is bootstrapped by checkpointing `initial_map` as
  /// version 1 before Init returns. If durable state exists but no
  /// checkpoint validates (total loss), Init falls back to bootstrapping
  /// from `initial_map` and records the loss (Health() == kDegraded);
  /// WAL records orphaned by the loss (their base state is gone) are
  /// each counted as a kDataLoss event and the log is set aside as
  /// `patches.wal.lost` for offline salvage instead of being erased.
  Status Init(HdMap initial_map);

  /// Restores serving state from Options::durability.data_dir: loads the
  /// newest checkpoint that validates end-to-end (torn or corrupt newer
  /// ones are skipped, counted in "storage.checkpoints_invalid" and the
  /// kDataLoss error counter), replays every intact WAL record past it
  /// (torn/corrupt tail records are skipped and counted in
  /// "wal.replay_skipped"), and resumes serving at the recovered version.
  /// When anything was skipped, Health() reports kDegraded until the next
  /// successful Publish. When WAL records were replayed, the recovered
  /// state is immediately re-checkpointed so the next crash is covered.
  /// kNotFound when no valid checkpoint exists; kFailedPrecondition when
  /// durability is disabled.
  Status Recover();

  /// True when Options::durability.data_dir is set.
  bool durable() const { return snapshot_store_ != nullptr; }

  /// Installs a snapshot shipped from a replication leader (the
  /// follower-side catch-up path): the given serialized tiles replace
  /// the served state wholesale at exactly `version`, with the staged
  /// queue and delta history cleared (they described state this install
  /// discards). Every tile must pass its frame CRC and decode (strict
  /// stitch) before anything becomes visible — a corrupt shipment is
  /// rejected with kDataLoss and the previous snapshot keeps serving.
  /// `tile_size_m` must match this service's tiling (byte-identity with
  /// the leader is meaningless across tilings). With durability enabled
  /// the installed snapshot is checkpointed and the WAL trimmed, so a
  /// restarted follower recovers to it.
  Status InstallReplicatedSnapshot(
      uint64_t version, int64_t published_unix_ms, double tile_size_m,
      std::vector<std::pair<TileId, std::string>> tiles);

  // --- Writer side ---

  /// Queues a patch for the next Publish. Cheap and callable from any
  /// thread; nothing becomes visible to readers until Publish. With
  /// durability enabled the patch is appended to the write-ahead log and
  /// fsynced *before* it is queued — an OK return means the patch
  /// survives a crash. On a WAL append failure the patch is not staged.
  /// Concurrent StagePatch calls commit as a group: the WAL batches
  /// records sharing one fsync (PatchWal group commit), so K concurrent
  /// acks cost ~1 fsync rather than K serialized ones.
  Status StagePatch(MapPatch patch);

  /// Patches staged and not yet published.
  size_t NumStagedPatches() const;

  /// Drops all staged patches (e.g. after a failed Publish whose patches
  /// the caller chooses to abandon).
  void DiscardStagedPatches();

  /// Applies every staged patch to a copy of the current snapshot and
  /// publishes the result as one new version with a single atomic pointer
  /// swap. Copy-on-write: only tiles whose content the patches touched
  /// are re-serialized; every other tile keeps its bytes. All-or-nothing:
  /// on any failure (unknown id in a patch, degenerate geometry) nothing
  /// is published, no version is consumed, and the staged queue is left
  /// intact for inspection. A Publish with nothing staged is a no-op.
  ///
  /// With durability enabled, every Nth successful publish (N =
  /// checkpoint_every_n_publishes) also writes a checkpoint and then
  /// rewrites the WAL down to the still-unpublished staged patches. A
  /// checkpoint failure never fails the publish — the new version serves
  /// from memory, the WAL keeps its records, and
  /// "storage.checkpoint_failures" counts the miss.
  Status Publish();

  /// StagePatch + Publish in one call.
  Status ApplyPatch(MapPatch patch);

  // --- Reader side (all safe from any thread, lock-free pointer load) ---

  /// The current snapshot. Hold the pointer to keep reading one
  /// consistent version across multiple queries; re-call to observe
  /// newer versions. Null before Init.
  std::shared_ptr<const MapSnapshot> snapshot() const;

  /// Version of the current snapshot; 0 before Init.
  uint64_t version() const;

  /// Seconds since the current snapshot was published (0 before Init).
  /// Also refreshes the "map_service.snapshot_age_seconds" gauge. Age is
  /// continuous across restarts: recovery back-dates the steady-clock
  /// publish instant from the persisted wall-clock stamp
  /// (MapSnapshot::published_unix_ms, also exported as the
  /// "map_service.published_unix_ms" gauge).
  double SnapshotAgeSeconds() const;

  /// Serving health, derived from the per-code error counters
  /// ("map_service.errors{CODE}") and the degraded-region counter:
  /// kDegraded once any data-loss event lands on the current snapshot,
  /// kServing again after the next successful publish. kServing before
  /// Init (nothing corrupt has been served).
  ServiceHealth Health() const;

  /// Loads and stitches every tile intersecting `box` from the current
  /// snapshot (see TileStore::LoadRegion). By default a tile that fails
  /// checksum/decode is skipped and reported (via `report` and the
  /// "map_service.regions_degraded" counter) instead of failing the
  /// request; Options::strict_reads opts out.
  Result<HdMap> GetRegion(const Aabb& box,
                          RegionReport* report = nullptr) const;

  /// One tile of the current snapshot (see TileStore::LoadTile).
  Result<HdMap> GetTile(const TileId& id) const;

  /// Zero-copy read of one tile of the current snapshot (see
  /// TileStore::GetTileView): in-place accessors over the tile's framed
  /// v3 bytes, no decode. The view pins its bytes, so it stays valid
  /// across snapshot swaps and store teardown — a caller may hold it for
  /// as long as it reads, with no coordination against publishes.
  /// `version` reports the snapshot the view came from.
  /// kFailedPrecondition before Init or for tiles stored in the legacy
  /// v1 format (fall back to GetTile).
  Result<VersionedTileView> GetTileView(const TileId& id) const;

  /// Lane-level match against the current snapshot's stitched map.
  Result<LaneMatch> MatchToLane(const Vec2& position,
                                double max_distance = 10.0) const;

  /// Lane-level route on the current snapshot's routing graph.
  Result<::hdmap::Route> Route(
      ElementId from, ElementId to,
      RouteAlgorithm algorithm = RouteAlgorithm::kAStar) const;

  /// The serialized patches (framed SerializePatch payloads, in apply
  /// order) that transform snapshot version `from_version` into the
  /// current version — the delta a client holding `from_version` applies
  /// instead of refetching whole regions. Empty when `from_version` is
  /// already current. kNotFound when the retained history
  /// (Options::publish_history publishes; cleared by Init/Recover, whose
  /// rebuilds break the delta chain) no longer reaches back that far, or
  /// when `from_version` is ahead of the server — callers fall back to a
  /// full fetch. kFailedPrecondition before Init. On success
  /// `reached_version` (when non-null) receives the version the chain
  /// transforms `from_version` into — the version a publish-racing caller
  /// must advertise with the delta, which may trail version() by the time
  /// this returns.
  Result<std::vector<std::string>> PatchesSince(
      uint64_t from_version, uint64_t* reached_version = nullptr) const;

  /// The newest structured events, newest first: why Health() is
  /// degraded, which requests were slow, what a recovery skipped — each
  /// record carries the trace id of the request that observed it, so a
  /// metric increment joins back to its flame graph. See EventLog::Type
  /// for the record taxonomy.
  std::vector<EventLog::Event> RecentEvents(size_t max_n = 64) const {
    return events_.Recent(max_n);
  }

  /// The event ring itself (e.g. for total_appended()).
  const EventLog& event_log() const { return events_; }

  /// The registry all service and tile-cache metrics land in (the
  /// external one when Options::metrics was set, else the internal one).
  MetricsRegistry& metrics() const { return *metrics_; }

  const Options& options() const { return options_; }

 private:
  /// Tiles whose serialized content `patch` changes, evaluated against
  /// `map` in its pre-patch state (old positions/geometry come from the
  /// map, new ones from the patch itself).
  Result<std::vector<TileId>> TouchedTiles(const MapPatch& patch,
                                           const HdMap& map,
                                           const TileStore& tiles) const;

  /// Swaps in a fully built snapshot and updates version/age gauges.
  /// Also re-baselines Health(): data-loss events before this publish no
  /// longer count as degradation.
  void Install(std::shared_ptr<const MapSnapshot> snap);

  /// Recover() body; caller holds publish_mu_.
  Status RecoverLocked();

  /// Checkpoints `snap` and, on success, atomically rewrites the WAL
  /// down to the still-staged (unpublished) patches (temp-file + rename:
  /// a failed or interrupted trim leaves the old log intact). Caller
  /// holds publish_mu_.
  Status CheckpointLocked(const MapSnapshot& snap);

  /// Bumps the total error counter plus the per-code one
  /// ("map_service.errors{CODE}").
  void RecordError(StatusCode code) const;

  /// Closes out one reader request: annotates the span with `code` and
  /// emits a kSlowRequest event when the elapsed time crossed
  /// Options::slow_request_threshold_s.
  void FinishRequest(TraceSpan& span, const char* endpoint,
                     std::chrono::steady_clock::time_point start,
                     StatusCode code) const;

  /// Sum of the counters Health() watches (data-loss errors + degraded
  /// regions served).
  uint64_t DegradationEvents() const;

  Options options_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // Null when external.
  MetricsRegistry* metrics_ = nullptr;

  // Hot-path instruments, resolved once at construction.
  LatencyHistogram* lat_get_region_ = nullptr;
  LatencyHistogram* lat_get_tile_ = nullptr;
  LatencyHistogram* lat_match_ = nullptr;
  LatencyHistogram* lat_route_ = nullptr;
  LatencyHistogram* lat_publish_ = nullptr;
  Counter* requests_ = nullptr;
  Counter* errors_ = nullptr;
  // Per-code breakdown of errors_, indexed by StatusCode; entry 0 (kOk)
  // stays unused.
  std::array<Counter*, 9> errors_by_code_{};
  // GetRegion calls that succeeded by skipping corrupt tiles.
  Counter* regions_degraded_ = nullptr;
  Counter* patches_published_ = nullptr;
  Counter* changes_published_ = nullptr;
  Gauge* version_gauge_ = nullptr;
  Gauge* age_gauge_ = nullptr;
  Gauge* staged_gauge_ = nullptr;

  // The one pointer readers touch. libstdc++'s atomic<shared_ptr> may
  // guard the refcount bump with a spinlock pool, but readers never wait
  // on the writer's publish work — the swap itself is a pointer store.
  std::atomic<std::shared_ptr<const MapSnapshot>> snapshot_;

  // Stage-vs-trim fence. StagePatch holds it shared for its whole
  // [WAL append -> queue push] window (concurrent stagers proceed in
  // parallel, which is what lets the WAL group-commit their fsyncs);
  // CheckpointLocked holds it exclusive across the WAL trim, so a trim
  // can never run between a patch's WAL append and its queue insertion —
  // the window where the record is durable but invisible to the trim's
  // staged_ snapshot, and would otherwise be erased while acked.
  mutable std::shared_mutex stage_flow_mu_;
  mutable std::mutex staged_mu_;  // Guards staged_ (the queue itself).
  std::vector<MapPatch> staged_;

  // Recent publishes' applied patches (serialized), newest at the back:
  // the delta chain behind PatchesSince. Entry for version v holds the
  // patches that turned v-1 into v. Guarded by history_mu_; bounded by
  // Options::publish_history.
  mutable std::mutex history_mu_;
  struct PublishRecord {
    uint64_t version = 0;
    std::vector<std::string> patches;
  };
  std::deque<PublishRecord> history_;

  // Serializes Init/Publish/Recover (one writer at a time).
  std::mutex publish_mu_;

  // Durability layer; both null when Options::durability.data_dir is
  // empty. WAL appends ride under staged_mu_ (append order == queue
  // order); checkpoint writes ride under publish_mu_.
  std::unique_ptr<SnapshotStore> snapshot_store_;
  std::unique_ptr<PatchWal> wal_;
  // Publishes since the last successful checkpoint; guarded by
  // publish_mu_.
  uint32_t publishes_since_checkpoint_ = 0;

  // Recovery/durability instruments (null when metrics registry absent —
  // never: the service always has a registry; resolved at construction).
  Counter* recoveries_ = nullptr;
  Counter* wal_replayed_ = nullptr;
  Counter* wal_replay_apply_failures_ = nullptr;
  LatencyHistogram* lat_recover_ = nullptr;
  Gauge* published_unix_ms_gauge_ = nullptr;

  // Structured event ring behind RecentEvents(). mutable: const reader
  // endpoints append degradation/slow-request records.
  mutable EventLog events_;

  // DegradationEvents() as of the last Install; Health() compares the
  // live counters against it.
  std::atomic<uint64_t> health_baseline_{0};
  FaultInjector* faults_ = nullptr;  // Aliases options_.fault_injector.
};

}  // namespace hdmap

#endif  // HDMAP_SERVICE_MAP_SERVICE_H_
