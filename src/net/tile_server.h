#ifndef HDMAP_NET_TILE_SERVER_H_
#define HDMAP_NET_TILE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/event_log.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "net/protocol.h"
#include "service/map_service.h"

namespace hdmap {

/// Server-side hook for the replication plane: kReplicate/kCatchUp
/// requests decoded by a TileServer are handed here (on a worker thread)
/// instead of the tile-serving paths. The returned payload rides back in
/// the response body (replication/wire.h defines both directions).
/// Implementations must be thread-safe — requests from several
/// connections may arrive concurrently.
class ReplicationHandler {
 public:
  virtual ~ReplicationHandler() = default;

  struct Reply {
    NetResponseCode code = NetResponseCode::kOk;
    StatusCode status = StatusCode::kOk;
    std::string payload;
  };
  virtual Reply HandleReplication(const NetRequest& request) = 0;
};

/// Framed-TCP serving edge in front of a MapService: the process boundary
/// of the HD-map ecosystem, where fleet clients fetch tiles/regions and
/// poll for version deltas (net/protocol.h describes the wire format).
///
/// Architecture: one epoll IO thread owns accept + all socket reads and
/// the connection table; decoded requests are admitted (or shed with a
/// typed BUSY) and dispatched to a worker ThreadPool that computes and
/// writes responses. Tile payloads are served verbatim from the
/// snapshot's TileStore blobs — the reply path never re-serializes a
/// tile.
///
/// Request coalescing: concurrent identical GetRegion/GetTile full
/// fetches (same args, both unconditional) collapse into one
/// computation; late arrivals park as waiters on the in-flight entry and
/// every caller receives byte-identical payload bytes. This is the
/// thundering-herd defence for fleet rollouts where thousands of
/// vehicles cross the same map area after a publish.
///
/// Admission control: a global pending-request cap and a per-connection
/// in-flight cap bound queueing. Beyond either cap the server answers
/// immediately with kBusy (and a kBusyRejected event) instead of
/// queueing without bound — clients see explicit backpressure with
/// bounded latency rather than a growing silent queue.
///
/// Conditional fetch: a request carrying have_version == current is
/// answered kNotModified; an older have_version within the service's
/// publish history gets a kDelta payload (the PatchesSince chain) that
/// is typically orders of magnitude smaller than the full region; a
/// version outside the history falls back to a full fetch.
///
/// Observability: every admitted request runs under a root "net.request"
/// TraceSpan (service-endpoint spans nest beneath it), latencies land in
/// "net.request_seconds" with "net.*" counters alongside
/// (requests/busy_rejected/coalesced/computations/bytes/...), and
/// BUSY/slow events are appended to the server's EventLog.
///
/// Thread safety: Start/Stop from one thread. Everything else here is
/// internal; the public read accessors are safe while serving.
class TileServer {
 public:
  struct Options {
    /// Listen address; the default loopback serves tests/benches.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    uint16_t port = 0;
    /// Worker threads computing responses; 0 = hardware concurrency.
    size_t worker_threads = 0;
    /// Accepted connections beyond this are closed immediately.
    size_t max_connections = 1024;
    /// Global cap on admitted-but-unfinished requests; beyond it new
    /// requests are shed with kBusy.
    size_t max_pending_requests = 256;
    /// Per-connection cap on admitted-but-unfinished requests (bounds
    /// how much of the global budget one pipelining client can take).
    uint32_t max_inflight_per_connection = 64;
    /// Requests slower than this (admission to response write, seconds)
    /// log a kSlowRequest event; <= 0 disables.
    double slow_request_threshold_s = 0.25;
    size_t event_log_capacity = 256;
    /// Registry for "net.*" instruments; null uses the service registry.
    MetricsRegistry* metrics = nullptr;
    /// Fault seam at site "net.recv" (request-body corruption after
    /// framing, so CRC rejection paths are testable); null disables.
    FaultInjector* fault_injector = nullptr;
    /// Test hook: sleep this long inside every GetTile/GetRegion
    /// computation, widening the coalescing/admission windows so tests
    /// can deterministically pile up concurrent requests. 0 in
    /// production.
    uint32_t handler_delay_ms_for_test = 0;
    /// Connections with no received bytes and no in-flight requests for
    /// this long are reaped (closed, with a kConnectionReaped event and
    /// a "net.connections_reaped" increment), so dead clients and
    /// followers cannot pin epoll slots and fds forever. <= 0 disables.
    double idle_timeout_s = 0.0;
    /// Replication plane: when set, kReplicate/kCatchUp requests are
    /// routed to this handler (and request bodies up to
    /// kMaxNetReplicationBody are accepted). Must outlive the server;
    /// null rejects replication requests with kUnimplemented.
    ReplicationHandler* replication = nullptr;
    /// Node label reported in the kStats "node" block (empty = "hdmap").
    std::string stats_label;
    /// When set, the kStats JSON response embeds this callback's output
    /// as its "replication" value (ReplicationNode wires its status
    /// document here); unset reports null.
    std::function<std::string()> replication_status_json;
    /// Extra event source merged into the kStats "events" array beside
    /// the server's and service's own logs (ReplicationNode wires its
    /// failover/catch-up events here). Called with the max event count.
    std::function<std::vector<EventLog::Event>(size_t)> extra_events;
    /// Recorder for the server's spans ("net.request" roots, inbound
    /// trace adoption, serialization children); null uses
    /// TraceRecorder::Global(). Tests hosting several "processes" in one
    /// address space give each server its own recorder so per-node
    /// exports stay disjoint.
    TraceRecorder* trace = nullptr;
  };

  /// FaultInjector site name for received request bodies.
  static constexpr const char* kRecvFaultSite = "net.recv";

  /// `service` must be Init'ed before requests arrive and must outlive
  /// the server.
  TileServer(const MapService& service, Options options);
  ~TileServer();

  TileServer(const TileServer&) = delete;
  TileServer& operator=(const TileServer&) = delete;

  /// Binds, listens, and starts the IO thread + worker pool.
  Status Start();

  /// Drains workers and closes every connection. Idempotent.
  void Stop();

  /// The bound port (resolves port 0 after Start).
  uint16_t port() const { return port_; }

  const EventLog& event_log() const { return events_; }
  std::vector<EventLog::Event> RecentEvents(size_t max_n = 64) const {
    return events_.Recent(max_n);
  }
  MetricsRegistry& metrics() const { return *metrics_; }

  /// Live connection count (for tests).
  size_t NumConnections() const;

 private:
  struct Connection {
    explicit Connection(int fd_in) : fd(fd_in) {}
    ~Connection();

    int fd = -1;
    /// IO-thread-only receive buffer.
    std::string read_buffer;
    /// IO-thread-only: last instant bytes arrived (or the accept), the
    /// clock the idle reaper sweeps against.
    std::chrono::steady_clock::time_point last_activity =
        std::chrono::steady_clock::now();
    /// Serializes response writes from worker threads.
    std::mutex write_mu;
    /// Admitted-but-unfinished requests on this connection.
    std::atomic<uint32_t> inflight{0};
    /// Set on EOF/write failure; suppresses further writes. The fd stays
    /// open until the last holder drops the Connection (workers may
    /// still be writing), so the descriptor can never be reused under a
    /// concurrent write.
    std::atomic<bool> closed{false};
  };

  /// One parked duplicate of an in-flight computation.
  struct Waiter {
    std::shared_ptr<Connection> conn;
    uint64_t request_id = 0;
    std::chrono::steady_clock::time_point admitted;
  };

  /// One in-flight GetRegion/GetTile computation; duplicates attach as
  /// waiters. Guarded by coalesce_mu_.
  struct Computation {
    std::vector<Waiter> waiters;
  };

  void IoLoop();
  void HandleAccept();
  /// IO-thread sweep closing connections idle past Options::idle_timeout_s
  /// (skipping any with in-flight requests).
  void ReapIdleConnections();
  /// Reads, frames, admits, dispatches; returns false when the
  /// connection must be dropped.
  bool HandleReadable(const std::shared_ptr<Connection>& conn);
  /// Admission + dispatch of one decoded frame body.
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   std::string_view body, uint32_t header_crc);
  /// Worker-side request execution (everything after admission).
  void ExecuteRequest(std::shared_ptr<Connection> conn, NetRequest request,
                      std::chrono::steady_clock::time_point admitted);
  /// Computes the full-fetch payload for a GetTile/GetRegion request.
  /// Returns (code, status, payload).
  std::tuple<NetResponseCode, StatusCode, std::string> ComputeFull(
      const NetRequest& request, uint64_t* version);

  /// Assembles the kStats response payload (Prometheus text or the
  /// node-status JSON document, per the request's format).
  std::string BuildStatsPayload(const NetRequest& request) const;

  /// Writes one response frame and closes out the request's accounting
  /// (latency, slow event, pending/inflight decrements).
  void FinishRequest(const std::shared_ptr<Connection>& conn,
                     NetResponseCode code, StatusCode status,
                     uint64_t request_id, uint64_t version,
                     std::string_view payload,
                     std::chrono::steady_clock::time_point admitted);
  /// Blocking-ish write of `frame` to `conn` (short poll on EAGAIN; a
  /// persistently stalled peer gets the connection marked closed).
  void WriteFrame(const std::shared_ptr<Connection>& conn,
                  std::string_view frame);
  void RemoveConnection(int fd);

  const MapService& service_;
  Options options_;
  MetricsRegistry* metrics_ = nullptr;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Stop() wakes the IO thread.
  std::atomic<uint16_t> port_{0};
  std::atomic<bool> running_{false};
  std::thread io_thread_;
  std::unique_ptr<ThreadPool> workers_;

  /// IO-thread-only connection table (plus post-join cleanup in Stop).
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  mutable std::mutex connections_mu_;  // Only for NumConnections().
  size_t num_connections_ = 0;

  /// Admitted-but-unfinished requests across all connections.
  std::atomic<size_t> pending_{0};

  /// In-flight full-fetch computations, keyed by serialized request args
  /// (type + coordinates). Guarded by coalesce_mu_; an entry's waiters
  /// are joined and drained under the same lock, so no waiter can attach
  /// after its owner picked up the list.
  std::mutex coalesce_mu_;
  std::unordered_map<std::string, std::shared_ptr<Computation>> inflight_;

  mutable EventLog events_;

  // "net.*" instruments, resolved once at construction.
  Counter* requests_ = nullptr;
  Counter* busy_rejected_ = nullptr;
  Counter* coalesced_ = nullptr;
  Counter* computations_ = nullptr;
  Counter* not_modified_ = nullptr;
  Counter* deltas_ = nullptr;
  Counter* malformed_ = nullptr;
  Counter* accepted_ = nullptr;
  Counter* conn_rejected_ = nullptr;
  Counter* bytes_in_ = nullptr;
  Counter* bytes_out_ = nullptr;
  Counter* reaped_ = nullptr;
  Gauge* connections_gauge_ = nullptr;
  LatencyHistogram* latency_ = nullptr;
};

/// Minimal blocking client for the TileServer protocol: the loopback
/// harness tests and benches drive the full server path with, and a
/// reference implementation for real consumers. One connection; not
/// thread-safe (use one client per thread).
class NetClient {
 public:
  /// Retry policy for CallWithRetry: capped exponential backoff with
  /// deterministic jitter on kBusy responses and transient connect/IO
  /// failures, all bounded by one overall deadline.
  struct RetryOptions {
    /// Total tries (first call + retries). 1 disables retrying.
    int max_attempts = 4;
    /// Backoff before retry k is min(initial << (k-1), max), scaled by a
    /// jitter factor in [0.5, 1.0) so synchronized clients desynchronize.
    uint32_t initial_backoff_ms = 10;
    uint32_t max_backoff_ms = 1000;
    /// Overall deadline across all attempts, including each attempt's
    /// response wait; 0 disables (waits are then unbounded, as before).
    uint32_t deadline_ms = 0;
    /// Seed of the jitter sequence (deterministic per client).
    uint64_t jitter_seed = 1;
    /// When set, exports "net_client.*" counters (attempts, retries,
    /// backoff_ms_total, deadline_exceeded). Must outlive the client.
    MetricsRegistry* metrics = nullptr;
  };

  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }
  /// The socket (e.g. for a bench's poll loop). -1 when disconnected.
  int fd() const { return fd_; }

  void set_retry_options(RetryOptions options);
  const RetryOptions& retry_options() const { return retry_; }

  /// Trace propagation (default on): every Send injects the thread's
  /// ambient TraceContext into the request's trace block, so server-side
  /// spans parent under the caller's trace across the process boundary.
  /// With no active context (or tracing disabled) the encoding stays
  /// byte-identical to protocol v1.
  void set_propagate_trace(bool on) { propagate_trace_ = on; }
  bool propagate_trace() const { return propagate_trace_; }

  /// Slow-RPC watchdog: a Call/CallWithRetry slower than `budget_s`
  /// end-to-end force-records its "net_client.call" span (so the full
  /// cross-node trace id survives even unsampled) and appends a
  /// kSlowRequest event carrying that trace id to `events`. budget_s
  /// <= 0 or a null log disables. `events` must outlive the client.
  void set_slow_rpc_watchdog(double budget_s, EventLog* events) {
    slow_rpc_budget_s_ = budget_s;
    watchdog_events_ = events;
  }

  /// Sends one request frame (blocking write).
  Status Send(const NetRequest& request);
  /// Sends pre-encoded bytes verbatim — the malformed-input seam for
  /// tests.
  Status SendRaw(std::string_view bytes);
  /// Blocks until one complete response frame arrives and decodes it.
  /// Responses to pipelined requests may arrive in any order; match via
  /// NetResponse::request_id. `timeout_ms` > 0 bounds the wait
  /// (kOutOfRange on expiry, with the connection left in an undefined
  /// framing state — Close it); 0 waits forever.
  Result<NetResponse> ReadResponse(uint32_t timeout_ms = 0);

  /// Send + ReadResponse for one request (no pipelining).
  Result<NetResponse> Call(const NetRequest& request);

  /// Call under RetryOptions: kBusy responses and transient connect/IO
  /// failures are retried with capped exponential backoff + jitter
  /// (reconnecting to the last Connect endpoint after an IO failure)
  /// until an attempt settles, attempts run out, or the deadline passes.
  /// The last response/error is returned either way.
  Result<NetResponse> CallWithRetry(const NetRequest& request);

  /// Convenience wrappers around Call().
  Result<NetResponse> Ping();
  Result<NetResponse> GetTile(const TileId& id, uint64_t have_version = 0);
  Result<NetResponse> GetRegion(const Aabb& box, uint64_t have_version = 0);

  /// Remote introspection: fetches the server's kStats document
  /// (metrics + events + health + replication status as JSON, or the
  /// Prometheus exposition text). The response payload is the document.
  Result<NetResponse> FetchStats(NetStatsFormat format = NetStatsFormat::kJson,
                                 uint32_t max_events = 32);

 private:
  /// Milliseconds left until `deadline` (minimum 1), or 0 for "no
  /// deadline"; sets *expired when the deadline has passed.
  uint32_t RemainingMs(std::chrono::steady_clock::time_point deadline,
                       bool* expired) const;

  /// Watchdog check at the end of Call/CallWithRetry (see
  /// set_slow_rpc_watchdog).
  void CheckRpcBudget(TraceSpan* span, const char* what,
                      std::chrono::steady_clock::time_point started);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::string read_buffer_;
  std::string host_;  // Last Connect endpoint (for retry reconnects).
  uint16_t port_ = 0;
  RetryOptions retry_;
  uint64_t jitter_state_ = 1;
  bool propagate_trace_ = true;
  double slow_rpc_budget_s_ = 0.0;
  EventLog* watchdog_events_ = nullptr;
  Counter* attempts_counter_ = nullptr;
  Counter* retries_counter_ = nullptr;
  Counter* backoff_ms_counter_ = nullptr;
  Counter* deadline_exceeded_counter_ = nullptr;
};

}  // namespace hdmap

#endif  // HDMAP_NET_TILE_SERVER_H_
