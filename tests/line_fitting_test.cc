#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geometry/line_fitting.h"

namespace hdmap {
namespace {

TEST(LeastSquaresTest, ExactHorizontalLine) {
  std::vector<Vec2> pts = {{0, 2}, {1, 2}, {2, 2}, {5, 2}};
  auto line = FitLineLeastSquares(pts);
  ASSERT_TRUE(line.has_value());
  EXPECT_NEAR(std::abs(line->normal.y), 1.0, 1e-9);
  EXPECT_NEAR(line->DistanceTo({3.0, 2.0}), 0.0, 1e-9);
  EXPECT_NEAR(line->DistanceTo({3.0, 5.0}), 3.0, 1e-9);
}

TEST(LeastSquaresTest, ExactVerticalLine) {
  std::vector<Vec2> pts = {{4, 0}, {4, 1}, {4, -3}};
  auto line = FitLineLeastSquares(pts);
  ASSERT_TRUE(line.has_value());
  EXPECT_NEAR(std::abs(line->normal.x), 1.0, 1e-9);
  EXPECT_NEAR(line->DistanceTo({4.0, 100.0}), 0.0, 1e-9);
}

TEST(LeastSquaresTest, DiagonalWithNoise) {
  Rng rng(1);
  std::vector<Vec2> pts;
  for (int i = 0; i < 200; ++i) {
    double t = rng.Uniform(0, 10);
    Vec2 on_line{t, t};  // y = x.
    Vec2 normal{-std::numbers::sqrt2 / 2, std::numbers::sqrt2 / 2};
    pts.push_back(on_line + normal * rng.Normal(0.0, 0.05));
  }
  auto line = FitLineLeastSquares(pts);
  ASSERT_TRUE(line.has_value());
  EXPECT_NEAR(line->DistanceTo({5.0, 5.0}), 0.0, 0.05);
  EXPECT_NEAR(line->DistanceTo({0.0, 0.0}), 0.0, 0.05);
}

TEST(LeastSquaresTest, TooFewPoints) {
  EXPECT_FALSE(FitLineLeastSquares({{1, 1}}).has_value());
  EXPECT_FALSE(FitLineLeastSquares({}).has_value());
}

TEST(RansacTest, RobustToOutliers) {
  Rng rng(2);
  std::vector<Vec2> pts;
  // 60 inliers on y = 1.
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.Uniform(0, 20), 1.0 + rng.Normal(0.0, 0.03)});
  }
  // 40 gross outliers.
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.Uniform(0, 20), rng.Uniform(3, 20)});
  }
  RansacOptions opt;
  opt.max_iterations = 200;
  opt.inlier_threshold = 0.12;
  opt.min_inliers = 20;
  auto result = FitLineRansac(pts, opt, rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->inliers.size(), 50u);
  EXPECT_NEAR(result->line.DistanceTo({10.0, 1.0}), 0.0, 0.08);
  // A least-squares fit over everything would be pulled far off.
  auto naive = FitLineLeastSquares(pts);
  ASSERT_TRUE(naive.has_value());
  EXPECT_GT(naive->DistanceTo({10.0, 1.0}),
            result->line.DistanceTo({10.0, 1.0}));
}

TEST(RansacTest, FailsBelowMinInliers) {
  Rng rng(3);
  std::vector<Vec2> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  RansacOptions opt;
  opt.inlier_threshold = 0.01;
  opt.min_inliers = 25;
  EXPECT_FALSE(FitLineRansac(pts, opt, rng).has_value());
}

TEST(HoughTest, FindsTwoParallelLines) {
  Rng rng(4);
  std::vector<Vec2> pts;
  // Two lane markings: y = -1.75 and y = 1.75, x in [-10, 10].
  for (int i = 0; i < 80; ++i) {
    pts.push_back({rng.Uniform(-10, 10), -1.75 + rng.Normal(0.0, 0.03)});
    pts.push_back({rng.Uniform(-10, 10), 1.75 + rng.Normal(0.0, 0.03)});
  }
  HoughOptions opt;
  opt.min_votes = 30;
  opt.max_peaks = 4;
  auto peaks = HoughLines(pts, opt);
  ASSERT_GE(peaks.size(), 2u);
  // The two strongest peaks should be the markings at |rho| ~ 1.75 with
  // near-vertical normals (theta ~ pi/2).
  double rho0 = peaks[0].rho;
  double rho1 = peaks[1].rho;
  EXPECT_NEAR(std::abs(rho0), 1.75, 0.3);
  EXPECT_NEAR(std::abs(rho1), 1.75, 0.3);
  EXPECT_GT(std::abs(rho0 - rho1), 2.0);  // Distinct lines.
}

TEST(HoughTest, EmptyInput) {
  EXPECT_TRUE(HoughLines({}, HoughOptions{}).empty());
}

TEST(HoughTest, PeakToLineConsistency) {
  HoughPeak peak;
  peak.rho = 2.0;
  peak.theta = std::numbers::pi / 2;  // Normal points +y: line y = 2.
  Line l = peak.ToLine();
  EXPECT_NEAR(l.DistanceTo({5.0, 2.0}), 0.0, 1e-9);
  EXPECT_NEAR(l.DistanceTo({5.0, 0.0}), 2.0, 1e-9);
}

}  // namespace
}  // namespace hdmap
