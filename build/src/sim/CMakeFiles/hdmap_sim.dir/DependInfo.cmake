
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/change_injector.cc" "src/sim/CMakeFiles/hdmap_sim.dir/change_injector.cc.o" "gcc" "src/sim/CMakeFiles/hdmap_sim.dir/change_injector.cc.o.d"
  "/root/repo/src/sim/road_network_generator.cc" "src/sim/CMakeFiles/hdmap_sim.dir/road_network_generator.cc.o" "gcc" "src/sim/CMakeFiles/hdmap_sim.dir/road_network_generator.cc.o.d"
  "/root/repo/src/sim/sensors.cc" "src/sim/CMakeFiles/hdmap_sim.dir/sensors.cc.o" "gcc" "src/sim/CMakeFiles/hdmap_sim.dir/sensors.cc.o.d"
  "/root/repo/src/sim/trajectory.cc" "src/sim/CMakeFiles/hdmap_sim.dir/trajectory.cc.o" "gcc" "src/sim/CMakeFiles/hdmap_sim.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hdmap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
