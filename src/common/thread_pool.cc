#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/trace.h"

namespace hdmap {

namespace {

// Set for the lifetime of WorkerLoop: which pool (if any) owns the
// calling thread. Read by Wait() (self-deadlock detection) and
// ParallelFor (nested calls run serial).
thread_local ThreadPool* t_current_worker_pool = nullptr;

}  // namespace

ThreadPool* ThreadPool::CurrentWorkerPool() { return t_current_worker_pool; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Carry the submitting thread's trace context into the worker so spans
  // opened inside the task nest under the submitting span.
  TraceContext ctx = CurrentTraceContext();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back([ctx, task = std::move(task)] {
      TraceContextScope scope(ctx);
      task();
    });
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  if (t_current_worker_pool == this) {
    // The waiter occupies one of the worker slots whose drain it is
    // waiting for; with the rest of the pool busy (or this the only
    // worker) that never completes. Failing loudly here turns a silent
    // production hang into an immediately debuggable crash.
    std::fprintf(stderr,
                 "FATAL: ThreadPool::Wait() called from a worker thread of "
                 "the same pool; this deadlocks (the waiting task occupies "
                 "the worker that would have to finish). Restructure the "
                 "caller to wait from outside the pool.\n");
    std::fflush(stderr);
    std::abort();
  }
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  t_current_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, n);
  // Below this, fan-out overhead dominates any win.
  constexpr size_t kSerialCutoff = 2;
  if (num_threads <= 1 || n < kSerialCutoff ||
      ThreadPool::CurrentWorkerPool() != nullptr) {
    // Already inside a pool worker: this call is one lane of an enclosing
    // fan-out. Running serial keeps total threads bounded by the
    // enclosing pool and cannot deadlock against a saturated shared pool.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One process-wide pool serves every ParallelFor call site, so K
  // concurrent callers share hardware_concurrency workers instead of
  // spawning K x cores fresh threads. Leaked deliberately: workers may
  // outlive any static destruction order, and the pointer keeps the pool
  // reachable (no leak-sanitizer report).
  static ThreadPool* shared_pool = new ThreadPool(0);
  // The chunk partition is unchanged from the thread-spawning
  // implementation: it depends only on n and num_threads, so callers
  // relying on deterministic chunking (TileStore::Build) see identical
  // index ranges.
  size_t chunk = (n + num_threads - 1) / num_threads;
  size_t num_chunks = (n + chunk - 1) / chunk;
  // Latch shared by the chunks and the waiting caller. Heap-owned so the
  // last worker's notify never races the caller's stack unwinding.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = num_chunks;
  for (size_t t = 0; t < num_chunks; ++t) {
    size_t begin = t * chunk;
    size_t end = std::min(begin + chunk, n);
    // Submit captures the caller's trace context, so spans opened inside
    // the loop body still nest under the caller's span.
    shared_pool->Submit([begin, end, &fn, latch] {
      for (size_t i = begin; i < end; ++i) fn(i);
      std::lock_guard<std::mutex> lock(latch->mu);
      if (--latch->remaining == 0) latch->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->remaining == 0; });
}

}  // namespace hdmap
