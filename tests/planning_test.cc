#include <gtest/gtest.h>

#include <algorithm>

#include "planning/frenet_planner.h"
#include "planning/pcc.h"
#include "planning/route_planner.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

class RoutePlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    map_ = SmallTownWorld(21, 4, 4);
    ASSERT_GT(map_.lanelets().size(), 0u);
    graph_ = RoutingGraph::Build(map_);
    // Pick two far-apart lanelets that are both on streets (long ones).
    for (const auto& [id, ll] : map_.lanelets()) {
      if (ll.Length() < 50.0) continue;
      if (from_ == kInvalidId) {
        from_ = id;
        from_pos_ = ll.centerline.front();
      } else {
        double d = ll.centerline.front().DistanceTo(from_pos_);
        if (d > best_dist_) {
          best_dist_ = d;
          to_ = id;
        }
      }
    }
    ASSERT_NE(from_, kInvalidId);
    ASSERT_NE(to_, kInvalidId);
  }

  HdMap map_;
  RoutingGraph graph_;
  ElementId from_ = kInvalidId;
  ElementId to_ = kInvalidId;
  Vec2 from_pos_;
  double best_dist_ = 0.0;
};

TEST_F(RoutePlannerTest, AllAlgorithmsFindEquallyGoodRoutes) {
  auto dijkstra = PlanRoute(graph_, from_, to_, RouteAlgorithm::kDijkstra);
  auto astar = PlanRoute(graph_, from_, to_, RouteAlgorithm::kAStar);
  auto bhps = PlanRoute(graph_, from_, to_, RouteAlgorithm::kBhps);
  ASSERT_TRUE(dijkstra.ok()) << dijkstra.status().ToString();
  ASSERT_TRUE(astar.ok());
  ASSERT_TRUE(bhps.ok());
  EXPECT_NEAR(astar->cost_seconds, dijkstra->cost_seconds, 1e-6);
  EXPECT_NEAR(bhps->cost_seconds, dijkstra->cost_seconds, 1e-6);
}

TEST_F(RoutePlannerTest, RoutesAreTopologicallyConnected) {
  auto route = PlanRoute(graph_, from_, to_, RouteAlgorithm::kAStar);
  ASSERT_TRUE(route.ok());
  ASSERT_GE(route->lanelets.size(), 2u);
  EXPECT_EQ(route->lanelets.front(), from_);
  EXPECT_EQ(route->lanelets.back(), to_);
  for (size_t i = 1; i < route->lanelets.size(); ++i) {
    const Lanelet* prev = map_.FindLanelet(route->lanelets[i - 1]);
    ASSERT_NE(prev, nullptr);
    ElementId cur = route->lanelets[i];
    bool connected =
        std::find(prev->successors.begin(), prev->successors.end(), cur) !=
            prev->successors.end() ||
        prev->left_neighbor == cur || prev->right_neighbor == cur;
    EXPECT_TRUE(connected) << "hop " << i;
  }
}

TEST_F(RoutePlannerTest, InformedSearchesExpandFewerNodes) {
  auto dijkstra = PlanRoute(graph_, from_, to_, RouteAlgorithm::kDijkstra);
  auto astar = PlanRoute(graph_, from_, to_, RouteAlgorithm::kAStar);
  auto bhps = PlanRoute(graph_, from_, to_, RouteAlgorithm::kBhps);
  ASSERT_TRUE(dijkstra.ok());
  ASSERT_TRUE(astar.ok());
  ASSERT_TRUE(bhps.ok());
  EXPECT_LT(astar->nodes_expanded, dijkstra->nodes_expanded);
  EXPECT_LT(bhps->nodes_expanded, dijkstra->nodes_expanded);
}

TEST_F(RoutePlannerTest, TrivialAndInvalidCases) {
  auto self = PlanRoute(graph_, from_, from_);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->lanelets.size(), 1u);
  EXPECT_EQ(self->cost_seconds, 0.0);
  EXPECT_FALSE(PlanRoute(graph_, from_, 999999).ok());
  EXPECT_FALSE(PlanRoute(graph_, 999999, to_).ok());
}

TEST(FrenetPlannerTest, PrefersCenterWithoutObstacles) {
  LineString ref({{0, 0}, {100, 0}});
  FrenetPlanner planner({});
  auto paths = planner.Plan(ref, 0.0, 0.0, {});
  ASSERT_TRUE(paths.has_value());
  EXPECT_NEAR((*paths)[0].end_offset, 0.0, 1e-9);
  EXPECT_TRUE((*paths)[0].collision_free);
}

TEST(FrenetPlannerTest, AvoidsObstacleAhead) {
  LineString ref({{0, 0}, {100, 0}});
  FrenetPlanner planner({});
  // Obstacle late in the horizon so lateral transitions can develop.
  std::vector<Obstacle> obstacles = {{{30.0, 0.0}, 0.8}};
  auto paths = planner.Plan(ref, 0.0, 0.0, obstacles);
  ASSERT_TRUE(paths.has_value());
  const CandidatePath& selected = (*paths)[0];
  EXPECT_TRUE(selected.collision_free);
  EXPECT_GT(std::abs(selected.end_offset), 0.5);
  // The geometry truly clears the obstacle (radius + margin).
  EXPECT_GT(selected.geometry.DistanceTo({30.0, 0.0}), 1.3);
}

TEST(FrenetPlannerTest, InertiaStabilizesSelection) {
  LineString ref({{0, 0}, {200, 0}});
  FrenetPlanner::Options opt;
  FrenetPlanner planner(opt);
  std::vector<Obstacle> obstacles = {{{30.0, 0.0}, 1.0}};
  auto first = planner.Plan(ref, 0.0, 0.0, obstacles);
  ASSERT_TRUE(first.has_value());
  double offset1 = (*first)[0].end_offset;
  // Replan a bit later with the obstacle slightly moved: the inertia
  // term should keep the same side.
  obstacles[0].position = {32.0, 0.2};
  auto second = planner.Plan(ref, 5.0, offset1 * 0.3, obstacles);
  ASSERT_TRUE(second.has_value());
  EXPECT_GT((*second)[0].end_offset * offset1, 0.0);  // Same sign.
}

TEST(FrenetPlannerTest, AllBlockedReturnsNullopt) {
  LineString ref({{0, 0}, {60, 0}});
  FrenetPlanner::Options opt;
  opt.lateral_span = 2.0;
  FrenetPlanner planner(opt);
  // Wall of obstacles across the whole corridor.
  std::vector<Obstacle> obstacles;
  for (double y = -3.0; y <= 3.0; y += 1.0) {
    obstacles.push_back({{25.0, y}, 1.0});
  }
  EXPECT_FALSE(planner.Plan(ref, 0.0, 0.0, obstacles).has_value());
}

TEST(FrenetPlannerTest, RejectsDegenerateInput) {
  FrenetPlanner planner({});
  EXPECT_FALSE(planner.Plan(LineString(), 0.0, 0.0, {}).has_value());
  LineString tiny({{0, 0}, {1, 0}});
  EXPECT_FALSE(planner.Plan(tiny, 0.0, 0.0, {}).has_value());
}

TEST(PccTest, SlopeProfileFromHillyHighway) {
  Rng rng(11);
  HighwayOptions opt;
  opt.length = 10000.0;
  opt.hill_amplitude = 25.0;
  opt.hill_wavelength = 2000.0;
  auto hw = GenerateHighway(opt, rng);
  ASSERT_TRUE(hw.ok());
  // Collect the forward chain of lanelets.
  std::vector<ElementId> route;
  for (const auto& [id, ll] : hw->lanelets()) {
    if (ll.predecessors.empty() && !ll.successors.empty()) {
      ElementId cur = id;
      while (cur != kInvalidId) {
        route.push_back(cur);
        const Lanelet* l = hw->FindLanelet(cur);
        cur = l->successors.empty() ? kInvalidId : l->successors.front();
      }
      break;
    }
  }
  ASSERT_GT(route.size(), 5u);
  auto profile = BuildSlopeProfile(*hw, route, 50.0);
  ASSERT_TRUE(profile.ok());
  double max_grade = 0.0;
  for (double g : profile->grades) {
    max_grade = std::max(max_grade, std::abs(g));
  }
  EXPECT_GT(max_grade, 0.02);  // Hills are visible in the profile.
  EXPECT_LT(max_grade, 0.15);
}

TEST(PccTest, FuelModelPhysics) {
  FuelModel model;
  // Climbing needs more force than flat; descending less.
  EXPECT_GT(model.TractionForce(20.0, 0.0, 0.05),
            model.TractionForce(20.0, 0.0, 0.0));
  EXPECT_LT(model.TractionForce(20.0, 0.0, -0.05),
            model.TractionForce(20.0, 0.0, 0.0));
  // Faster costs more fuel per second on flat ground.
  EXPECT_GT(model.FuelRate(30.0, 0.0, 0.0), model.FuelRate(15.0, 0.0, 0.0));
  // Engine braking downhill costs only idle.
  EXPECT_NEAR(model.FuelRate(20.0, 0.0, -0.08), model.idle_grams_per_s,
              1e-9);
}

TEST(PccTest, NoSavingsOnFlatRoad) {
  SlopeProfile flat;
  flat.station_step = 50.0;
  flat.grades.assign(100, 0.0);
  FuelModel model;
  PccOptions opt;
  auto acc = SimulateConstantSpeed(flat, model, opt.set_speed);
  auto pcc = OptimizePcc(flat, model, opt);
  // On a flat road PCC cannot do much better than constant speed.
  EXPECT_LT(acc.total_fuel_g - pcc.total_fuel_g,
            0.02 * acc.total_fuel_g + 1.0);
}

TEST(PccTest, SavesFuelOnRollingHills) {
  SlopeProfile hilly;
  hilly.station_step = 50.0;
  for (int i = 0; i < 200; ++i) {
    hilly.grades.push_back(
        0.05 * std::sin(2.0 * std::numbers::pi * i / 40.0));
  }
  FuelModel model;
  PccOptions opt;
  auto acc = SimulateConstantSpeed(hilly, model, opt.set_speed);
  auto pcc = OptimizePcc(hilly, model, opt);
  EXPECT_LT(pcc.total_fuel_g, acc.total_fuel_g);
  double saving = (acc.total_fuel_g - pcc.total_fuel_g) / acc.total_fuel_g;
  EXPECT_GT(saving, 0.02);
  // Trip time stays comparable (within the speed band).
  EXPECT_LT(pcc.total_time_s, acc.total_time_s * 1.15);
  // The plan respects the speed band.
  for (const SpeedPlanStep& step : pcc.plan) {
    EXPECT_GE(step.speed, opt.set_speed * (1 - opt.speed_band) - 1e-9);
    EXPECT_LE(step.speed, opt.set_speed * (1 + opt.speed_band) + 1e-9);
  }
}

TEST(PccTest, BuildSlopeProfileValidation) {
  HdMap map = StraightRoad();
  EXPECT_FALSE(BuildSlopeProfile(map, {}).ok());
  EXPECT_FALSE(BuildSlopeProfile(map, {999}).ok());
  std::vector<ElementId> route{map.lanelets().begin()->first};
  EXPECT_FALSE(BuildSlopeProfile(map, route, -5.0).ok());
  EXPECT_TRUE(BuildSlopeProfile(map, route, 50.0).ok());
}

}  // namespace
}  // namespace hdmap
