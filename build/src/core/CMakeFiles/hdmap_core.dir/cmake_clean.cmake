file(REMOVE_RECURSE
  "CMakeFiles/hdmap_core.dir/bundle_graph.cc.o"
  "CMakeFiles/hdmap_core.dir/bundle_graph.cc.o.d"
  "CMakeFiles/hdmap_core.dir/feature_layer.cc.o"
  "CMakeFiles/hdmap_core.dir/feature_layer.cc.o.d"
  "CMakeFiles/hdmap_core.dir/hd_map.cc.o"
  "CMakeFiles/hdmap_core.dir/hd_map.cc.o.d"
  "CMakeFiles/hdmap_core.dir/map_patch.cc.o"
  "CMakeFiles/hdmap_core.dir/map_patch.cc.o.d"
  "CMakeFiles/hdmap_core.dir/raster_filter.cc.o"
  "CMakeFiles/hdmap_core.dir/raster_filter.cc.o.d"
  "CMakeFiles/hdmap_core.dir/raster_layer.cc.o"
  "CMakeFiles/hdmap_core.dir/raster_layer.cc.o.d"
  "CMakeFiles/hdmap_core.dir/routing_graph.cc.o"
  "CMakeFiles/hdmap_core.dir/routing_graph.cc.o.d"
  "CMakeFiles/hdmap_core.dir/serialization.cc.o"
  "CMakeFiles/hdmap_core.dir/serialization.cc.o.d"
  "CMakeFiles/hdmap_core.dir/tile_store.cc.o"
  "CMakeFiles/hdmap_core.dir/tile_store.cc.o.d"
  "libhdmap_core.a"
  "libhdmap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
