file(REMOVE_RECURSE
  "CMakeFiles/smart_factory_atv.dir/smart_factory_atv.cpp.o"
  "CMakeFiles/smart_factory_atv.dir/smart_factory_atv.cpp.o.d"
  "smart_factory_atv"
  "smart_factory_atv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_factory_atv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
