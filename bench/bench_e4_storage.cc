// E4 — Li et al. [60] vs Pannen et al. [44]: HD-map storage.
// Paper: conventional HD maps cost ~10 MB/mile (200 GB / 20,000 miles);
// the compact vector map reaches ~100 KB/mile (300 KB / 3 miles) — a
// two-order-of-magnitude reduction — while preserving navigation.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/units.h"
#include "core/serialization.h"
#include "core/tile_store.h"
#include "planning/route_planner.h"
#include "sim/road_network_generator.h"

namespace hdmap {
namespace {

int Run() {
  bench::PrintHeader(
      "E4", "Conventional vs compact vector map storage [44, 60]",
      "~10 MB/mile full HD map vs ~100 KB/mile vector map (~100x), with "
      "navigation preserved");

  Rng rng(901);
  HighwayOptions opt;
  opt.length = 10000.0;  // ~6.2 miles.
  opt.sign_spacing = 150.0;
  auto hw = GenerateHighway(opt, rng);
  if (!hw.ok()) return 1;
  HdMap map = std::move(hw).value();

  // Conventional HD map: vector content + the dense survey payload that
  // production maps carry (calibrated to the paper's ~10 MB/mile).
  AttachSurveyPayload(&map, 88.0, rng);

  double miles = opt.length / kMetersPerMile;
  std::string full = SerializeMap(map);
  std::string compact = SerializeCompactMap(map);

  double full_mb_per_mile = full.size() / 1e6 / miles;
  double compact_kb_per_mile = compact.size() / 1e3 / miles;
  bench::PrintRow("conventional HD map (MB/mile)", "10",
                  bench::Fmt("%.1f", full_mb_per_mile));
  bench::PrintRow("compact vector map (KB/mile)", "100",
                  bench::Fmt("%.1f", compact_kb_per_mile));
  bench::PrintRow("reduction factor", "~100x",
                  bench::Fmt("%.0fx", static_cast<double>(full.size()) /
                                          compact.size()));

  // Navigation preserved: the compact map still routes end to end.
  auto restored = DeserializeCompactMap(compact);
  if (!restored.ok()) return 1;
  RoutingGraph graph = RoutingGraph::Build(*restored);
  // Route endpoints: start of one forward chain and that chain's end.
  ElementId from = kInvalidId, to = kInvalidId;
  for (const auto& [id, ll] : restored->lanelets()) {
    if (ll.predecessors.empty() && !ll.successors.empty()) {
      from = id;
      const Lanelet* cur = &ll;
      while (!cur->successors.empty()) {
        cur = restored->FindLanelet(cur->successors.front());
      }
      to = cur->id;
      break;
    }
  }
  bool routed = false;
  double route_len = 0.0;
  if (from != kInvalidId && to != kInvalidId) {
    auto route = PlanRoute(graph, from, to);
    routed = route.ok();
    if (routed) {
      for (ElementId id : route->lanelets) {
        route_len += restored->FindLanelet(id)->Length();
      }
    }
  }
  bench::PrintRow("routing on the compact map",
                  "navigation accuracy maintained",
                  routed ? bench::Fmt("OK, %.1f km route",
                                      route_len / 1000.0)
                         : "FAILED");

  // Tiled distribution of the conventional map (production layout).
  TileStore store(512.0);
  store.Build(map);
  std::printf("  conventional map tiled: %zu tiles, %.1f MB total\n\n",
              store.NumTiles(), store.TotalBytes() / 1e6);
  return routed ? 0 : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
