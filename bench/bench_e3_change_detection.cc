// E3 — Pannen et al. [42, 44]: keeping HD maps up to date with a boosted
// change classifier over fleet (FCD) localization-health data.
// Paper: multi-traversal classification reaches 98.7% sensitivity /
// 81.2% specificity, far beyond single-traversal methods
// (evaluated on 300 traversals over 7 construction sites).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "maintenance/change_detector.h"
#include "sim/sensors.h"

namespace hdmap {
namespace {

/// A 200 m straight road section with center marking and road edges.
HdMap MakeSection() {
  HdMap map;
  ElementId next = 1;
  auto line = [&](double y, LineType type, double refl) {
    LineFeature lf;
    lf.id = next++;
    lf.type = type;
    lf.reflectivity = refl;
    std::vector<Vec2> pts;
    for (double x = 0.0; x <= 200.0; x += 5.0) pts.push_back({x, y});
    lf.geometry = LineString(std::move(pts));
    (void)map.AddLineFeature(std::move(lf));
    return next - 1;
  };
  line(3.5, LineType::kRoadEdge, 0.3);
  line(0.0, LineType::kSolidLaneMarking, 0.85);
  line(-3.5, LineType::kRoadEdge, 0.3);
  Lanelet ll;
  ll.id = next++;
  ll.centerline = LineString({{0, -1.75}, {200, -1.75}});
  (void)map.AddLanelet(std::move(ll));
  return map;
}

/// Applies a construction-site repaint: the center marking shifts
/// laterally inside [60 m, 140 m].
void ApplyConstruction(HdMap* world, double shift) {
  for (const auto& [id, lf] : world->line_features()) {
    if (lf.type != LineType::kSolidLaneMarking) continue;
    LineFeature moved = lf;
    std::vector<Vec2> pts;
    for (const Vec2& p : lf.geometry.points()) {
      double s = p.x;
      double f = 0.0;
      if (s >= 60.0 && s <= 140.0) {
        double rel = (s - 60.0) / 80.0;
        f = std::min({rel * 4.0, (1.0 - rel) * 4.0, 1.0});
      }
      pts.push_back({p.x, p.y + shift * f});
    }
    moved.geometry = LineString(std::move(pts));
    (void)world->ReplaceLineFeature(std::move(moved));
    return;
  }
}

/// Extracts the FCD localization-health features of one traversal of a
/// section: scan-to-map residual statistics at GPS-grade pose estimates.
SectionFeatures Traverse(const HdMap& world, const HdMap& map, Rng& rng) {
  MarkingScanner::Options sopt;
  sopt.road_surface_points = 40;
  sopt.max_range = 20.0;
  MarkingScanner scanner(sopt);

  int inliers = 0, total = 0;
  RunningStats residuals;
  std::vector<double> corrections;
  for (double x = 20.0; x <= 180.0; x += 20.0) {
    Pose2 truth(x, -1.75, 0.0);
    Pose2 estimated(truth.translation + Vec2{rng.Normal(0.0, 0.4),
                                             rng.Normal(0.0, 0.4)},
                    rng.Normal(0.0, 0.004));
    auto scan = scanner.Scan(world, truth, rng);
    RunningStats signed_lat;
    for (const MarkingPoint& p : scan) {
      if (p.intensity < 0.5) continue;
      Vec2 w = estimated.TransformPoint(p.position_vehicle);
      double best = 2.0;
      double best_signed = 0.0;
      for (ElementId id : map.LineFeaturesInBox(Aabb::FromPoint(w, 3.0))) {
        const LineFeature* lf = map.FindLineFeature(id);
        if (lf == nullptr) continue;
        auto proj = lf->geometry.Project(w);
        if (proj.distance < best) {
          best = proj.distance;
          best_signed = proj.signed_offset;
        }
      }
      ++total;
      residuals.Add(best);
      if (best <= 0.4) ++inliers;
      signed_lat.Add(best_signed);
    }
    corrections.push_back(signed_lat.count() > 0 ? signed_lat.mean() : 0.0);
  }
  SectionFeatures f;
  f.inlier_ratio =
      total > 0 ? static_cast<double>(inliers) / total : 1.0;
  f.mean_residual = residuals.mean();
  RunningStats corr;
  for (double c : corrections) corr.Add(c);
  f.filter_spread = corr.stddev();
  f.gps_disagreement = std::abs(corr.mean());
  return f;
}

int Run() {
  bench::PrintHeader(
      "E3", "Boosted HD-map change detection from FCD [42,44]",
      "multi-traversal: 98.7% sensitivity / 81.2% specificity; "
      "single-traversal clearly worse (300 traversals, 7 sites)");

  Rng rng(801);
  HdMap map = MakeSection();

  // Training set: 40 labeled sections x 4 traversals each.
  std::vector<LabeledSection> train;
  for (int sec = 0; sec < 40; ++sec) {
    bool changed = sec % 2 == 0;
    HdMap world = map;
    if (changed) ApplyConstruction(&world, rng.Uniform(0.8, 1.5));
    for (int t = 0; t < 4; ++t) {
      train.push_back({Traverse(world, map, rng), changed});
    }
  }
  BoostedStumpClassifier classifier;
  classifier.Train(train, 25);

  // Evaluation: 7 construction sites + 21 stable sections, ~300 total
  // traversals (as in the paper's setup).
  BinaryConfusion single, multi;
  int total_traversals = 0;
  for (int sec = 0; sec < 28; ++sec) {
    bool changed = sec < 7;
    HdMap world = map;
    if (changed) ApplyConstruction(&world, rng.Uniform(0.8, 1.5));
    std::vector<SectionFeatures> traversals;
    for (int t = 0; t < 11; ++t) {
      traversals.push_back(Traverse(world, map, rng));
      ++total_traversals;
    }
    for (const SectionFeatures& f : traversals) {
      single.Add(classifier.Predict(f), changed);
    }
    multi.Add(ClassifySectionMultiTraversal(classifier, traversals),
              changed);
  }

  bench::PrintRow("single-traversal sensitivity", "(lower)",
                  bench::Fmt("%.1f%%", 100.0 * single.Sensitivity()));
  bench::PrintRow("single-traversal specificity", "(lower)",
                  bench::Fmt("%.1f%%", 100.0 * single.Specificity()));
  bench::PrintRow("multi-traversal sensitivity", "98.7%",
                  bench::Fmt("%.1f%%", 100.0 * multi.Sensitivity()));
  bench::PrintRow("multi-traversal specificity", "81.2%",
                  bench::Fmt("%.1f%%", 100.0 * multi.Specificity()));
  std::printf("  evaluation: %d traversals over 7 changed + 21 stable "
              "sections; %zu boosted stumps\n\n",
              total_traversals, classifier.stumps().size());
  return 0;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
