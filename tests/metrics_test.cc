#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace hdmap {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetOverwrites) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(LatencyHistogramTest, ExactStatsMatchSamples) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ApproxPercentileSeconds(50), 0.0);
  h.Record(0.001);
  h.Record(0.003);
  h.Record(0.002);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.mean_seconds(), 0.002, 1e-12);
  EXPECT_NEAR(h.min_seconds(), 0.001, 1e-12);
  EXPECT_NEAR(h.max_seconds(), 0.003, 1e-12);
}

TEST(LatencyHistogramTest, PercentilesApproximateTheDistribution) {
  LatencyHistogram h;
  // 1000 samples spread uniformly over [1 ms, 100 ms].
  for (int i = 0; i < 1000; ++i) h.Record(0.001 + 0.099 * i / 999.0);
  double p50 = h.ApproxPercentileSeconds(50);
  double p99 = h.ApproxPercentileSeconds(99);
  EXPECT_GT(p50, 0.035);
  EXPECT_LT(p50, 0.065);
  EXPECT_GT(p99, 0.090);
  EXPECT_LT(p99, 0.110);
  EXPECT_LE(h.ApproxPercentileSeconds(0), p50);
  EXPECT_LE(p99, h.ApproxPercentileSeconds(100) + 1e-12);
}

TEST(LatencyHistogramTest, IgnoresNegativeAndNan) {
  LatencyHistogram h;
  h.Record(-1.0);
  h.Record(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
  h.Record(0.0);  // Valid: lands in the underflow bucket.
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsRegistryTest, GetReturnsStablePointerPerName) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("requests");
  Counter* b = reg.GetCounter("requests");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("errors"), a);
  // Same name in different instrument families is distinct storage.
  reg.GetGauge("requests")->Set(7.0);
  EXPECT_EQ(a->value(), 0u);
}

TEST(MetricsRegistryTest, SnapshotExportsEveryInstrument) {
  MetricsRegistry reg;
  reg.GetCounter("hits")->Increment(3);
  reg.GetGauge("version")->Set(2.0);
  LatencyHistogram* lat = reg.GetLatency("get_region");
  lat->Record(0.010);
  lat->Record(0.020);

  auto samples = reg.Snapshot();
  auto find = [&](const std::string& name) -> const double* {
    for (const auto& s : samples) {
      if (s.name == name) return &s.value;
    }
    return nullptr;
  };
  ASSERT_NE(find("hits"), nullptr);
  EXPECT_EQ(*find("hits"), 3.0);
  ASSERT_NE(find("version"), nullptr);
  EXPECT_EQ(*find("version"), 2.0);
  ASSERT_NE(find("get_region.count"), nullptr);
  EXPECT_EQ(*find("get_region.count"), 2.0);
  ASSERT_NE(find("get_region.mean_ms"), nullptr);
  EXPECT_NEAR(*find("get_region.mean_ms"), 15.0, 1e-9);
  EXPECT_NE(find("get_region.p50_ms"), nullptr);
  EXPECT_NE(find("get_region.p99_ms"), nullptr);
  EXPECT_NE(find("get_region.max_ms"), nullptr);

  std::string rendered = reg.Render();
  EXPECT_NE(rendered.find("hits"), std::string::npos);
  EXPECT_NE(rendered.find("get_region.p99_ms"), std::string::npos);
}

TEST(ScopedTimerTest, RecordsOnDestructionAndNullDisables) {
  LatencyHistogram h;
  { ScopedTimer t(&h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max_seconds(), 0.0);
  { ScopedTimer t(nullptr); }  // Must not crash.
}

}  // namespace
}  // namespace hdmap
