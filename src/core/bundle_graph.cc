#include "core/bundle_graph.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>

namespace hdmap {

const std::vector<BundleGraph::Edge> BundleGraph::kNoEdges;

Result<BundleGraph> BundleGraph::Build(const HdMap& map) {
  if (map.lane_bundles().empty()) {
    return Status::FailedPrecondition("map has no lane bundles");
  }
  BundleGraph graph;
  for (const auto& [node_id, node] : map.map_nodes()) {
    graph.edges_[node_id];  // Ensure every node exists.
  }
  for (const auto& [bundle_id, bundle] : map.lane_bundles()) {
    const MapNode* from = map.FindMapNode(bundle.from_node);
    const MapNode* to = map.FindMapNode(bundle.to_node);
    if (from == nullptr || to == nullptr) continue;

    double length = from->position.DistanceTo(to->position);
    int forward = 0;
    int backward = 0;
    for (ElementId lanelet_id : bundle.lanelet_ids) {
      const Lanelet* ll = map.FindLanelet(lanelet_id);
      if (ll == nullptr || ll->centerline.size() < 2) continue;
      // A lane is "forward" when its travel direction points from
      // from_node toward to_node.
      Vec2 axis = (to->position - from->position).Normalized();
      Vec2 dir = (ll->centerline.back() - ll->centerline.front())
                     .Normalized();
      if (axis.Dot(dir) >= 0.0) {
        ++forward;
      } else {
        ++backward;
      }
    }
    if (forward > 0) {
      graph.edges_[bundle.from_node].push_back(
          {bundle_id, bundle.to_node, length, forward, backward});
      ++graph.num_edges_;
    }
    if (backward > 0) {
      graph.edges_[bundle.to_node].push_back(
          {bundle_id, bundle.from_node, length, backward, forward});
      ++graph.num_edges_;
    }
  }
  return graph;
}

const std::vector<BundleGraph::Edge>& BundleGraph::OutEdges(
    ElementId node_id) const {
  auto it = edges_.find(node_id);
  return it == edges_.end() ? kNoEdges : it->second;
}

Result<std::vector<ElementId>> BundleGraph::ShortestNodePath(
    ElementId from, ElementId to) const {
  if (edges_.count(from) == 0 || edges_.count(to) == 0) {
    return Status::InvalidArgument("endpoint node not in the graph");
  }
  struct Item {
    double dist;
    ElementId node;
    bool operator>(const Item& o) const { return dist > o.dist; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue;
  std::unordered_map<ElementId, double> dist;
  std::unordered_map<ElementId, ElementId> parent;
  std::unordered_set<ElementId> settled;
  dist[from] = 0.0;
  queue.push({0.0, from});
  while (!queue.empty()) {
    auto [d, node] = queue.top();
    queue.pop();
    if (settled.count(node) > 0) continue;
    settled.insert(node);
    if (node == to) {
      std::vector<ElementId> path;
      ElementId cur = to;
      while (cur != from) {
        path.push_back(cur);
        cur = parent.at(cur);
      }
      path.push_back(from);
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const Edge& e : OutEdges(node)) {
      double candidate = d + e.length;
      auto it = dist.find(e.to_node);
      if (it == dist.end() || candidate < it->second) {
        dist[e.to_node] = candidate;
        parent[e.to_node] = node;
        queue.push({candidate, e.to_node});
      }
    }
  }
  return Status::NotFound("nodes are not connected");
}

}  // namespace hdmap
