// Seeded corruption fuzzing over every wire decoder. The contract under
// test: NO mutated input may crash, hang, or trigger a huge speculative
// allocation — every outcome is either a clean decode or a Status.
//
// Iteration count per (decoder, corruption family) pair comes from the
// HDMAP_FUZZ_ITERS environment variable; the default keeps the tier-1 run
// fast, and the tier-2 registration re-runs the binary at full size (see
// tests/CMakeLists.txt). The whole harness is deterministic from kSeed.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "core/serialization.h"
#include "core/tile_store.h"
#include "core/tile_view.h"
#include "core/wire_frame.h"
#include "sim/road_network_generator.h"

namespace hdmap {
namespace {

constexpr uint64_t kSeed = 0xC0FFEE;

size_t FuzzIters() {
  const char* env = std::getenv("HDMAP_FUZZ_ITERS");
  if (env != nullptr) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 300;  // Tier-1 smoke size.
}

HdMap SmallTown() {
  Rng rng(11);
  TownOptions opt;
  opt.grid_rows = 2;
  opt.grid_cols = 2;
  opt.block_size = 120.0;
  auto town = GenerateTown(opt, rng);
  EXPECT_TRUE(town.ok()) << town.status().ToString();
  return std::move(town).value();
}

MapPatch SamplePatch(const HdMap& map) {
  MapPatch patch;
  Landmark lm;
  lm.id = 777001;
  lm.position = {5.0, 6.0, 7.0};
  patch.added_landmarks.push_back(lm);
  for (const auto& [id, ll] : map.lanelets()) {
    patch.updated_lanelets.push_back(ll);
    if (patch.updated_lanelets.size() >= 4) break;
  }
  for (const auto& [id, lmk] : map.landmarks()) {
    patch.removed_landmarks.push_back(id);
    if (patch.removed_landmarks.size() >= 4) break;
  }
  return patch;
}

/// One random structure-aware mutation of `blob`. Families:
///   0: flip 1-8 random bits
///   1: truncate to a random prefix
///   2: stamp 0xFFFFFFFF at a random 4-byte offset (count inflation)
///   3: splice the head of one random offset onto the tail of another
///   4: replace a run of bytes with random garbage
std::string Mutate(std::string_view blob, Rng& rng) {
  std::string m(blob);
  if (m.empty()) return m;
  switch (rng.UniformInt(0, 4)) {
    case 0: {
      int flips = rng.UniformInt(1, 8);
      for (int i = 0; i < flips; ++i) {
        size_t pos = rng.NextU32() % m.size();
        m[pos] = static_cast<char>(m[pos] ^ (1u << rng.UniformInt(0, 7)));
      }
      break;
    }
    case 1:
      m.resize(rng.NextU32() % m.size());
      break;
    case 2: {
      if (m.size() >= 4) {
        size_t pos = rng.NextU32() % (m.size() - 3);
        m[pos] = m[pos + 1] = m[pos + 2] = m[pos + 3] =
            static_cast<char>(0xFF);
      }
      break;
    }
    case 3: {
      size_t cut_a = rng.NextU32() % m.size();
      size_t cut_b = rng.NextU32() % m.size();
      m = m.substr(0, cut_a) + m.substr(cut_b);
      break;
    }
    default: {
      size_t pos = rng.NextU32() % m.size();
      size_t len = 1 + rng.NextU32() % 64;
      for (size_t i = pos; i < m.size() && i < pos + len; ++i) {
        m[i] = static_cast<char>(rng.NextU32());
      }
      break;
    }
  }
  return m;
}

/// Runs the mutation loop against one decoder over both the framed blob
/// and its bare legacy payload (the bytes after the frame header, which
/// have no CRC and exercise the in-decoder count guards directly).
template <typename Decoder>
void FuzzDecoder(std::string_view framed, Decoder decode,
                 const char* what) {
  ASSERT_TRUE(IsFramed(framed));
  std::string_view legacy = framed.substr(kWireFrameHeaderSize);
  Rng rng(kSeed);
  size_t iters = FuzzIters();
  size_t framed_survivals = 0;
  for (size_t i = 0; i < iters; ++i) {
    // The decoder either succeeds (mutation hit dead bytes — possible
    // only on the legacy path or an unluckily-patched CRC) or returns a
    // Status. Anything else (crash, sanitizer report, OOM) fails the
    // whole binary, which is the point.
    std::string bad_framed = Mutate(framed, rng);
    if (decode(bad_framed).ok()) ++framed_survivals;
    std::string bad_legacy = Mutate(legacy, rng);
    (void)decode(bad_legacy).ok();
  }
  // On the framed path a mutation can only survive by leaving the bytes
  // equivalent or forging a 32-bit CRC; at fuzz scale that means
  // essentially never. A rash of survivals here would mean the frame
  // check is not actually running.
  EXPECT_LE(framed_survivals, iters / 100 + 1) << what;
}

TEST(CorruptionFuzzTest, DeserializeMapNeverCrashes) {
  HdMap map = SmallTown();
  std::string blob = SerializeMap(map);
  FuzzDecoder(blob, [](std::string_view d) { return DeserializeMap(d); },
              "DeserializeMap");
}

TEST(CorruptionFuzzTest, DeserializeCompactMapNeverCrashes) {
  HdMap map = SmallTown();
  std::string blob = SerializeCompactMap(map);
  FuzzDecoder(blob,
              [](std::string_view d) { return DeserializeCompactMap(d); },
              "DeserializeCompactMap");
}

TEST(CorruptionFuzzTest, DeserializePatchNeverCrashes) {
  HdMap map = SmallTown();
  std::string blob = SerializePatch(SamplePatch(map));
  FuzzDecoder(blob, [](std::string_view d) { return DeserializePatch(d); },
              "DeserializePatch");
}

TEST(CorruptionFuzzTest, TileViewCreateNeverCrashes) {
  HdMap map = SmallTown();
  std::string blob = EncodeTileV3(map);
  FuzzDecoder(blob, [](std::string_view d) { return TileView::Create(d); },
              "TileView::Create");
}

// The offset-table family: mutate the BARE v3 payload and re-frame it
// with a freshly computed (valid) CRC, so every mutation reaches the
// structural validator — out-of-range offsets, overlapping slots,
// truncated tables — instead of dying at the frame checksum. Survivors
// must stay fully traversable (Materialize walks every record).
TEST(CorruptionFuzzTest, ReframedV3OffsetTablesNeverCrash) {
  HdMap map = SmallTown();
  std::string framed = EncodeTileV3(map);
  std::string payload(std::string_view(framed).substr(kWireFrameHeaderSize));
  Rng rng(kSeed ^ 0x33);
  size_t iters = FuzzIters();
  for (size_t i = 0; i < iters; ++i) {
    std::string bad = WrapFrame(Mutate(payload, rng));
    auto view = TileView::Create(std::string_view(bad));
    if (view.ok()) (void)view->Materialize();
  }
}

TEST(CorruptionFuzzTest, RawGarbageNeverCrashesAnyDecoder) {
  Rng rng(kSeed ^ 0x9999);
  size_t iters = FuzzIters();
  for (size_t i = 0; i < iters; ++i) {
    std::string garbage(rng.NextU32() % 256, '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextU32());
    EXPECT_FALSE(DeserializeMap(garbage).ok() &&
                 DeserializeCompactMap(garbage).ok());
    (void)DeserializePatch(garbage);
  }
}

TEST(CorruptionFuzzTest, LoadRegionServesAroundMutatedTiles) {
  HdMap map = SmallTown();
  Aabb box = map.BoundingBox();
  TileStore pristine(TileStore::Options{.tile_size_m = 128.0});
  ASSERT_TRUE(pristine.Build(map).ok());
  auto present = pristine.TilesInBox(box);
  ASSERT_TRUE(present.ok());
  ASSERT_GT(present->size(), 1u);

  Rng rng(kSeed ^ 0x1234);
  // Tile count stays fixed per iteration, so scale the loop down.
  size_t iters = FuzzIters() / 10 + 10;
  for (size_t i = 0; i < iters; ++i) {
    TileStore store = pristine;  // Fresh cache + quarantine each round.
    // Mutate a random subset of tiles in place.
    size_t mutated = 0;
    for (const TileId& id : *present) {
      if (!rng.Bernoulli(0.5)) continue;
      store.PutRawTile(
          id, Mutate(pristine.RawTilesCopy().at(id.Morton()), rng));
      ++mutated;
    }
    RegionReport report;
    auto region = store.LoadRegion(box, &report);
    // Partial mode must always produce a stitched map; a mutation can at
    // worst empty it. Corrupt-tile count never exceeds what we touched
    // (a mutation may decode clean, never the other way around).
    ASSERT_TRUE(region.ok()) << region.status().ToString();
    EXPECT_LE(report.corrupt_tiles.size(), mutated);
    EXPECT_EQ(store.NumQuarantined(), report.corrupt_tiles.size());

    // Strict mode: fails iff something was corrupt.
    TileStore strict_store = store;
    auto strict = strict_store.LoadRegion(box, nullptr, 0,
                                          RegionReadMode::kStrict);
    EXPECT_EQ(strict.ok(), report.corrupt_tiles.empty());
  }
}

}  // namespace
}  // namespace hdmap
