#include "maintenance/crowd_sensing.h"

#include <cmath>

namespace hdmap {

void CrowdSensingAggregator::Ingest(const ChangeObservation& observation) {
  int cx = static_cast<int>(
      std::floor(observation.position.x / options_.rsu_cell_size));
  int cy = static_cast<int>(
      std::floor(observation.position.y / options_.rsu_cell_size));
  cells_[{cx, cy}].observations.push_back(observation);
  total_raw_bytes_ += observation.payload_bytes;
}

CrowdSensingAggregator::AggregateResult
CrowdSensingAggregator::Aggregate() const {
  AggregateResult result;
  result.raw_upload_bytes = total_raw_bytes_;
  result.num_rsus = cells_.size();

  for (const auto& [key, cell] : cells_) {
    // MEC-local dedupe: greedy clustering by proximity and kind.
    std::vector<bool> used(cell.observations.size(), false);
    for (size_t i = 0; i < cell.observations.size(); ++i) {
      if (used[i]) continue;
      const ChangeObservation& seed = cell.observations[i];
      int support = 0;
      Vec2 mean_sum;
      for (size_t j = i; j < cell.observations.size(); ++j) {
        if (used[j]) continue;
        const ChangeObservation& other = cell.observations[j];
        if (other.is_addition != seed.is_addition) continue;
        if (seed.is_addition) {
          if (other.position.DistanceTo(seed.position) >
              options_.dedupe_radius) {
            continue;
          }
        } else if (other.map_id != seed.map_id) {
          continue;
        }
        used[j] = true;
        ++support;
        mean_sum += other.position;
      }
      if (support >= options_.min_reports) {
        ChangeObservation confirmed = seed;
        confirmed.position = mean_sum / static_cast<double>(support);
        confirmed.payload_bytes = options_.summary_bytes;
        result.confirmed.push_back(confirmed);
        result.condensed_upload_bytes += options_.summary_bytes;
      }
    }
  }
  return result;
}

}  // namespace hdmap
