file(REMOVE_RECURSE
  "CMakeFiles/cooperative_localization_test.dir/cooperative_localization_test.cc.o"
  "CMakeFiles/cooperative_localization_test.dir/cooperative_localization_test.cc.o.d"
  "cooperative_localization_test"
  "cooperative_localization_test.pdb"
  "cooperative_localization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooperative_localization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
