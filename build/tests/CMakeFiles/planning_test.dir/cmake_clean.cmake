file(REMOVE_RECURSE
  "CMakeFiles/planning_test.dir/planning_test.cc.o"
  "CMakeFiles/planning_test.dir/planning_test.cc.o.d"
  "planning_test"
  "planning_test.pdb"
  "planning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
