#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "atv/factory_world.h"
#include "atv/occupancy_grid.h"
#include "atv/sign_update.h"
#include "common/statistics.h"
#include "sim/sensors.h"

namespace hdmap {
namespace {

TEST(FactoryWorldTest, GeneratesRacksAislesAndSigns) {
  Rng rng(71);
  FactoryOptions opt;
  auto factory = GenerateFactory(opt, rng);
  ASSERT_TRUE(factory.ok()) << factory.status().ToString();
  EXPECT_EQ(factory->walls.size(), 4u + 4u * opt.rack_rows);
  EXPECT_EQ(factory->aisles.size(),
            static_cast<size_t>(opt.rack_rows) + 1);
  EXPECT_GT(factory->sign_map.landmarks().size(), 10u);
  // Signs lie inside the factory extent.
  for (const auto& [id, lm] : factory->sign_map.landmarks()) {
    EXPECT_TRUE(factory->extent.Contains(lm.position.xy()));
  }
}

TEST(FactoryWorldTest, RejectsOverfullLayout) {
  Rng rng(72);
  FactoryOptions opt;
  opt.depth = 10.0;
  opt.rack_rows = 5;
  EXPECT_FALSE(GenerateFactory(opt, rng).ok());
}

TEST(CastRayTest, HitsNearestWall) {
  std::vector<Segment> walls = {{{10, -5}, {10, 5}}, {{20, -5}, {20, 5}}};
  EXPECT_NEAR(CastRay(walls, {0, 0}, {1, 0}, 100.0), 10.0, 1e-9);
  EXPECT_NEAR(CastRay(walls, {15, 0}, {1, 0}, 100.0), 5.0, 1e-9);
  // Miss: ray goes the other way.
  EXPECT_NEAR(CastRay(walls, {0, 0}, {-1, 0}, 100.0), 100.0, 1e-9);
}

TEST(OccupancyGridTest, RayIntegrationMarksFreeAndOccupied) {
  OccupancyGrid grid(Aabb({0, 0}, {20, 20}), 0.25);
  Vec2 origin{2, 10};
  Vec2 wall{12, 10};
  for (int i = 0; i < 10; ++i) grid.IntegrateRay(origin, wall, true);
  EXPECT_GT(grid.OccupancyAt(wall), 0.8);
  EXPECT_LT(grid.OccupancyAt({7, 10}), 0.2);   // Along the beam: free.
  EXPECT_NEAR(grid.OccupancyAt({7, 15}), 0.5, 0.01);  // Unseen: unknown.
  EXPECT_GT(grid.NumOccupied(), 0u);
}

TEST(OccupancyGridTest, MapsFactoryFromScans) {
  Rng rng(73);
  auto factory = GenerateFactory({}, rng);
  ASSERT_TRUE(factory.ok());
  OccupancyGrid grid(factory->extent, 0.25);

  // Scan from points along every aisle.
  for (const LineString& aisle : factory->aisles) {
    for (double s = 0.0; s < aisle.Length(); s += 2.0) {
      Vec2 origin = aisle.PointAt(s);
      for (int beam = 0; beam < 72; ++beam) {
        double angle = 2.0 * std::numbers::pi * beam / 72;
        Vec2 dir{std::cos(angle), std::sin(angle)};
        double range = CastRay(factory->walls, origin, dir, 30.0);
        bool hit = range < 30.0;
        grid.IntegrateRay(origin, origin + dir * range, hit);
      }
    }
  }
  // Rack faces should be occupied, aisle centers free.
  EXPECT_GT(grid.NumOccupied(), 200u);
  for (const LineString& aisle : factory->aisles) {
    EXPECT_LT(grid.OccupancyAt(aisle.PointAt(aisle.Length() / 2)), 0.2);
  }
}

TEST(AtvSignUpdaterTest, DetectsNewAndMissingSigns) {
  Rng rng(74);
  auto factory = GenerateFactory({}, rng);
  ASSERT_TRUE(factory.ok());
  HdMap valid_map = factory->sign_map;  // ATV's on-board HD map.
  HdMap world = factory->sign_map;      // The real factory floor...

  // ...which has drifted: remove 2 signs, add 2 new ones.
  std::vector<ElementId> ids;
  for (const auto& [id, lm] : world.landmarks()) ids.push_back(id);
  ASSERT_GE(ids.size(), 4u);
  ASSERT_TRUE(world.RemoveLandmark(ids[0]).ok());
  ASSERT_TRUE(world.RemoveLandmark(ids[3]).ok());
  Landmark new1;
  new1.id = 9001;
  new1.type = LandmarkType::kTrafficSign;
  new1.position = {30.0, 4.0, 2.0};
  Landmark new2;
  new2.id = 9002;
  new2.type = LandmarkType::kTrafficSign;
  new2.position = {50.0, 15.0, 2.0};
  ASSERT_TRUE(world.AddLandmark(new1).ok());
  ASSERT_TRUE(world.AddLandmark(new2).ok());

  LandmarkDetector::Options det_opt;
  det_opt.max_range = 15.0;
  det_opt.fov_rad = 2.0 * std::numbers::pi;  // Omnidirectional RGB-D rig.
  det_opt.detection_prob = 0.9;
  det_opt.clutter_rate = 0.02;
  LandmarkDetector detector(det_opt);

  AtvSignUpdater updater(&valid_map, {});
  // Patrol every aisle several times.
  for (int pass = 0; pass < 4; ++pass) {
    for (const LineString& aisle : factory->aisles) {
      for (double s = 0.0; s < aisle.Length(); s += 3.0) {
        Pose2 pose(aisle.PointAt(s), aisle.HeadingAt(s));
        updater.ProcessFrame(pose, detector.Detect(world, pose, rng));
      }
    }
  }

  auto report = updater.BuildReport();
  // Both new signs found, near their true positions.
  int new_found = 0;
  for (const Landmark& lm : report.new_signs) {
    for (const Landmark* truth : {&new1, &new2}) {
      if (lm.position.xy().DistanceTo(truth->position.xy()) < 1.5) {
        ++new_found;
      }
    }
  }
  EXPECT_GE(new_found, 1);
  EXPECT_LE(report.new_signs.size(), 4u);  // No clutter explosion.

  // Both removed signs reported missing; no false missing.
  EXPECT_GE(report.missing_signs.size(), 2u);
  int correct_missing = 0;
  for (ElementId id : report.missing_signs) {
    if (id == ids[0] || id == ids[3]) ++correct_missing;
  }
  EXPECT_EQ(correct_missing, 2);
  EXPECT_LE(report.missing_signs.size(), 3u);

  // The batched patch applies to the valid map.
  MapPatch patch = report.AsPatch();
  EXPECT_TRUE(ApplyPatch(patch, &valid_map).ok());
}

TEST(AtvSignUpdaterTest, StableWorldProducesEmptyReport) {
  Rng rng(75);
  auto factory = GenerateFactory({}, rng);
  ASSERT_TRUE(factory.ok());
  HdMap valid_map = factory->sign_map;

  LandmarkDetector::Options det_opt;
  det_opt.max_range = 15.0;
  det_opt.fov_rad = 2.0 * std::numbers::pi;
  det_opt.detection_prob = 0.9;
  det_opt.clutter_rate = 0.0;
  LandmarkDetector detector(det_opt);

  AtvSignUpdater updater(&valid_map, {});
  for (int pass = 0; pass < 4; ++pass) {
    for (const LineString& aisle : factory->aisles) {
      for (double s = 0.0; s < aisle.Length(); s += 3.0) {
        Pose2 pose(aisle.PointAt(s), aisle.HeadingAt(s));
        updater.ProcessFrame(pose, detector.Detect(valid_map, pose, rng));
      }
    }
  }
  auto report = updater.BuildReport();
  EXPECT_TRUE(report.new_signs.empty());
  EXPECT_TRUE(report.missing_signs.empty());
}

}  // namespace
}  // namespace hdmap
