#ifndef HDMAP_COMMON_ARENA_H_
#define HDMAP_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace hdmap {

/// Bump allocator for short-lived scratch memory on decode/encode hot
/// paths: allocation is a pointer increment, deallocation is free (the
/// arena releases everything at once). Used where a codec would
/// otherwise malloc/free many small temporary buffers per tile — e.g.
/// the v3 encoder's per-section offset tables — so the residual
/// serialize/materialize work stops exercising the global allocator.
///
/// Not thread-safe: one arena per worker (they are cheap to construct).
/// Individual objects are never destroyed — allocate only trivially
/// destructible scratch here, or run destructors yourself.
class Arena {
 public:
  explicit Arena(size_t block_bytes = 64 * 1024)
      : block_bytes_(block_bytes < 256 ? 256 : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Aligned bump allocation. Falls back to a dedicated block for
  /// requests larger than the block size. `align` must be a power of 2.
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t)) {
    if (size == 0) size = 1;
    uintptr_t cur = reinterpret_cast<uintptr_t>(cursor_);
    uintptr_t aligned = (cur + (align - 1)) & ~(uintptr_t(align) - 1);
    size_t padding = aligned - cur;
    if (cursor_ == nullptr || padding + size > remaining_) {
      NewBlock(size + align);
      cur = reinterpret_cast<uintptr_t>(cursor_);
      aligned = (cur + (align - 1)) & ~(uintptr_t(align) - 1);
      padding = aligned - cur;
    }
    cursor_ += padding + size;
    remaining_ -= padding + size;
    bytes_allocated_ += size;
    return reinterpret_cast<void*>(aligned);
  }

  /// Resets the arena for reuse: keeps the blocks already acquired (the
  /// next round allocates from them without touching malloc), discards
  /// their contents.
  void Reset() {
    if (blocks_.empty()) return;
    // Keep only the first (largest-lived) block hot; the rest return to
    // the allocator so a one-off spike does not pin memory forever.
    blocks_.resize(1);
    cursor_ = blocks_.front().data.get();
    remaining_ = blocks_.front().size;
    bytes_allocated_ = 0;
  }

  /// Total bytes handed out since construction/Reset (excludes padding).
  size_t bytes_allocated() const { return bytes_allocated_; }
  size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  void NewBlock(size_t min_size) {
    size_t size = min_size > block_bytes_ ? min_size : block_bytes_;
    blocks_.push_back(Block{std::make_unique<char[]>(size), size});
    cursor_ = blocks_.back().data.get();
    remaining_ = size;
  }

  size_t block_bytes_;
  std::vector<Block> blocks_;
  char* cursor_ = nullptr;
  size_t remaining_ = 0;
  size_t bytes_allocated_ = 0;
};

/// std::allocator-compatible adapter so standard containers can live on
/// an Arena (scratch vectors in codecs). The arena must outlive the
/// container; `deallocate` is a no-op.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}  // Freed wholesale by the arena.

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace hdmap

#endif  // HDMAP_COMMON_ARENA_H_
