
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/kd_tree.cc" "src/geometry/CMakeFiles/hdmap_geometry.dir/kd_tree.cc.o" "gcc" "src/geometry/CMakeFiles/hdmap_geometry.dir/kd_tree.cc.o.d"
  "/root/repo/src/geometry/line_fitting.cc" "src/geometry/CMakeFiles/hdmap_geometry.dir/line_fitting.cc.o" "gcc" "src/geometry/CMakeFiles/hdmap_geometry.dir/line_fitting.cc.o.d"
  "/root/repo/src/geometry/line_string.cc" "src/geometry/CMakeFiles/hdmap_geometry.dir/line_string.cc.o" "gcc" "src/geometry/CMakeFiles/hdmap_geometry.dir/line_string.cc.o.d"
  "/root/repo/src/geometry/polygon.cc" "src/geometry/CMakeFiles/hdmap_geometry.dir/polygon.cc.o" "gcc" "src/geometry/CMakeFiles/hdmap_geometry.dir/polygon.cc.o.d"
  "/root/repo/src/geometry/r_tree.cc" "src/geometry/CMakeFiles/hdmap_geometry.dir/r_tree.cc.o" "gcc" "src/geometry/CMakeFiles/hdmap_geometry.dir/r_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
