# Empty dependencies file for bench_e12_lidar_pipeline.
# This may be replaced when dependencies are built.
