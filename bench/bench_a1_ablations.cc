// A1 — ablations of the design choices DESIGN.md calls out:
//   (a) raster resolution: localization accuracy vs storage (E6 axis);
//   (b) particle count: marking-localizer accuracy vs update cost;
//   (c) tile size: tile count vs duplicated-border overhead (E4 axis).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "core/serialization.h"
#include "core/tile_store.h"
#include "localization/marking_localizer.h"
#include "localization/raster_localizer.h"
#include "sim/road_network_generator.h"
#include "sim/sensors.h"

namespace hdmap {
namespace {

int Run() {
  bench::PrintHeader("A1", "Design-choice ablations",
                     "raster resolution, particle count, tile size");

  Rng rng(2301);
  HighwayOptions hopt;
  hopt.length = 2500.0;
  hopt.curve_amplitude = 0.0;
  hopt.sign_spacing = 100.0;
  auto hw = GenerateHighway(hopt, rng);
  if (!hw.ok()) return 1;
  const Lanelet* lane = nullptr;
  for (const auto& [id, ll] : hw->lanelets()) {
    if (ll.predecessors.empty() && !ll.successors.empty()) {
      lane = &ll;
      break;
    }
  }
  if (lane == nullptr) return 1;

  // (a) Raster resolution ablation.
  std::printf("  (a) raster resolution (drive on 2.5 km corridor):\n");
  std::printf("      %-12s %-16s %-16s %-12s\n", "res (m)",
              "median err (m)", "RLE size (KB)", "time (s)");
  for (double res : {0.1, 0.25, 0.5, 1.0}) {
    SemanticRaster raster = RasterizeMap(*hw, res);
    RasterLocalizer::Options lopt;
    lopt.filter.num_particles = 150;
    lopt.patch_half_extent = 12.0;
    RasterLocalizer loc(&raster, lopt);
    Rng drive_rng(2400);
    Pose2 truth(lane->centerline.PointAt(0.0),
                lane->centerline.HeadingAt(0.0));
    loc.Init(truth, 0.8, 0.03, drive_rng);
    std::vector<double> errors;
    bench::Timer timer;
    const Lanelet* cur = lane;
    while (cur != nullptr) {
      for (double s = 10.0; s < cur->Length(); s += 10.0) {
        Pose2 next(cur->centerline.PointAt(s),
                   cur->centerline.HeadingAt(s));
        double dist = next.translation.DistanceTo(truth.translation);
        loc.Predict(dist, AngleDiff(next.heading, truth.heading),
                    drive_rng);
        truth = next;
        loc.Update(BuildObservedPatch(raster, truth, 12.0, res, 0.15,
                                      0.002, drive_rng),
                   drive_rng);
        errors.push_back(
            loc.Estimate().translation.DistanceTo(truth.translation));
      }
      cur = cur->successors.empty()
                ? nullptr
                : hw->FindLanelet(cur->successors.front());
    }
    std::printf("      %-12.2f %-16.2f %-16.1f %-12.2f\n", res,
                Median(errors), raster.SerializeRle().size() / 1024.0,
                timer.Seconds());
  }

  // (b) Particle-count ablation for the marking localizer.
  std::printf("\n  (b) particle count (marking localizer, 0.8 km):\n");
  std::printf("      %-12s %-18s %-12s\n", "particles",
              "mean lat err (m)", "time (s)");
  MarkingScanner scanner({});
  for (int particles : {50, 150, 400}) {
    MarkingLocalizer::Options mopt;
    mopt.filter.num_particles = particles;
    MarkingLocalizer localizer(&*hw, mopt);
    Rng drive_rng(2500);
    Pose2 truth(lane->centerline.PointAt(0.0),
                lane->centerline.HeadingAt(0.0));
    localizer.Init(truth, 0.8, 0.03, drive_rng);
    RunningStats lat_err;
    bench::Timer timer;
    for (double s = 5.0; s < std::min(800.0, lane->Length()); s += 5.0) {
      Pose2 next(lane->centerline.PointAt(s),
                 lane->centerline.HeadingAt(s));
      double dist = next.translation.DistanceTo(truth.translation);
      localizer.Predict(dist, AngleDiff(next.heading, truth.heading),
                        drive_rng);
      truth = next;
      localizer.Update(scanner.Scan(*hw, truth, drive_rng), drive_rng);
      LineStringProjection proj =
          lane->centerline.Project(localizer.Estimate().translation);
      LineStringProjection truth_proj =
          lane->centerline.Project(truth.translation);
      lat_err.Add(std::abs(proj.signed_offset - truth_proj.signed_offset));
    }
    std::printf("      %-12d %-18.3f %-12.2f\n", particles, lat_err.mean(),
                timer.Seconds());
  }

  // (c) Tile-size ablation: smaller tiles mean finer update granularity
  // but more duplicated border elements.
  std::printf("\n  (c) tile size (town map):\n");
  std::printf("      %-12s %-10s %-16s %-18s\n", "tile (m)", "tiles",
              "total bytes (KB)", "duplication factor");
  Rng town_rng(2601);
  TownOptions topt;
  topt.grid_rows = 4;
  topt.grid_cols = 4;
  auto town = GenerateTown(topt, town_rng);
  if (!town.ok()) return 1;
  size_t base_bytes = SerializeMap(*town).size();
  for (double tile : {64.0, 128.0, 256.0, 512.0}) {
    TileStore store(TileStore::Options{.tile_size_m = tile});
    if (!store.Build(*town).ok()) return 1;
    std::printf("      %-12.0f %-10zu %-16.1f %-18.2f\n", tile,
                store.NumTiles(), store.TotalBytes() / 1024.0,
                static_cast<double>(store.TotalBytes()) / base_bytes);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
