# Empty dependencies file for bench_fig2_slamcu.
# This may be replaced when dependencies are built.
