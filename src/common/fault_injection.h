#ifndef HDMAP_COMMON_FAULT_INJECTION_H_
#define HDMAP_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hdmap {

class MetricsRegistry;

/// What a fault policy does when it fires.
enum class FaultKind : uint8_t {
  kBitFlip,   ///< Flip one pseudo-random bit of the payload.
  kTruncate,  ///< Cut the payload at a pseudo-random offset.
  kDrop,      ///< Replace the payload with an empty buffer.
  kFailStatus,  ///< Make the instrumented call return a Status failure.
  /// Keep a pseudo-random prefix and overwrite the rest with garbage,
  /// preserving the payload's length. Models a torn write: a crash after
  /// the head of a buffer reached disk but before the tail did, where the
  /// tail reads back as stale or scribbled sectors rather than a short
  /// file (that is kTruncate).
  kTornWrite,
};

/// One armed fault: at `site`, with probability `probability` per call,
/// apply `kind`. Data-plane kinds (kBitFlip/kTruncate/kDrop) apply to
/// MaybeCorrupt; kFailStatus applies to MaybeFail with `fail_code`.
struct FaultPolicy {
  std::string site;
  FaultKind kind = FaultKind::kBitFlip;
  double probability = 0.0;
  StatusCode fail_code = StatusCode::kInternal;
};

/// Deterministic fault injector for corruption and failure testing: the
/// seams TileStore and MapService expose so tests and benches can corrupt
/// tile loads and fail publishes on demand, reproducibly.
///
/// Determinism: data-plane decisions (and the mutation itself) are a pure
/// function of (seed, site, payload bytes) — not of call order — so the
/// same store corrupts the same tiles no matter how many threads load
/// them or in what order. Control-plane decisions (MaybeFail) hash
/// (seed, site, per-site call index); call sites like Publish are
/// serialized by their caller, so the index is deterministic there.
///
/// Thread safety: every method is safe from any thread. AddPolicy/Clear
/// take the policy lock exclusively, so a chaos harness can arm and
/// disarm fault bursts while instrumented threads (WAL shippers, server
/// workers) keep calling Maybe* concurrently.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void AddPolicy(FaultPolicy policy);
  void ClearPolicies();

  /// Exports per-site injected counts as gauges named
  /// "fault_injector.injected{SITE}" through `metrics`, so a bench or
  /// test reading a service's registry can report injected-vs-detected
  /// without holding the injector itself. The registry must outlive the
  /// injector; null unbinds. Like AddPolicy, must not race Maybe* calls.
  void BindMetrics(MetricsRegistry* metrics);

  /// Data-plane hook. When a data-plane policy for `site` fires on this
  /// payload, writes the corrupted payload to `*corrupted` and returns
  /// true; otherwise returns false and leaves `*corrupted` untouched.
  bool MaybeCorrupt(std::string_view site, std::string_view payload,
                    std::string* corrupted);

  /// Control-plane hook. Returns a failure with the policy's fail_code
  /// when a kFailStatus policy for `site` fires, else OK.
  Status MaybeFail(std::string_view site);

  /// Faults injected so far at `site` (both planes).
  uint64_t InjectedCount(std::string_view site) const;

  /// Faults injected so far across all sites.
  uint64_t TotalInjected() const;

  uint64_t seed() const { return seed_; }

 private:
  uint64_t Mix(uint64_t h) const;
  void CountInjection(std::string_view site);

  uint64_t seed_;
  mutable std::shared_mutex policy_mu_;  // Guards policies_.
  std::vector<FaultPolicy> policies_;
  MetricsRegistry* metrics_ = nullptr;  // Optional gauge export.

  mutable std::mutex mu_;  // Guards injected_ and fail_calls_.
  std::map<std::string, uint64_t, std::less<>> injected_;
  std::map<std::string, uint64_t, std::less<>> fail_calls_;
};

}  // namespace hdmap

#endif  // HDMAP_COMMON_FAULT_INJECTION_H_
