// smart_factory_atv: the §III-5 indoor scenario. An autonomous transfer
// vehicle patrols a smart factory, maintains an occupancy grid with its
// range scanner, detects safety signs, and keeps the indoor HD map up to
// date by comparing its virtual map against the valid one (Tas et al.).

#include <cmath>
#include <cstdio>
#include <numbers>

#include "atv/factory_world.h"
#include "atv/occupancy_grid.h"
#include "atv/sign_update.h"
#include "sim/sensors.h"

int main() {
  using namespace hdmap;
  Rng rng(123);

  FactoryOptions fopt;
  fopt.width = 90.0;
  fopt.depth = 55.0;
  fopt.rack_rows = 3;
  auto factory = GenerateFactory(fopt, rng);
  if (!factory.ok()) {
    std::printf("factory generation failed: %s\n",
                factory.status().ToString().c_str());
    return 1;
  }
  std::printf("factory: %.0fx%.0f m, %zu walls, %zu aisles, %zu signs in "
              "the valid HD map\n",
              fopt.width, fopt.depth, factory->walls.size(),
              factory->aisles.size(),
              factory->sign_map.landmarks().size());

  // The floor changed overnight: one sign removed, one added.
  HdMap valid_map = factory->sign_map;
  HdMap world = factory->sign_map;
  ElementId removed_id = world.landmarks().begin()->first;
  (void)world.RemoveLandmark(removed_id);
  Landmark fresh;
  fresh.id = 777;
  fresh.type = LandmarkType::kTrafficSign;
  fresh.subtype = "wet_floor";
  fresh.position = {45.0, 4.0, 1.8};
  (void)world.AddLandmark(fresh);

  // Patrol: occupancy mapping + sign detection on every aisle.
  OccupancyGrid grid(factory->extent, 0.25);
  LandmarkDetector::Options det_opt;
  det_opt.max_range = 14.0;
  det_opt.fov_rad = 2.0 * std::numbers::pi;
  det_opt.detection_prob = 0.85;
  LandmarkDetector detector(det_opt);
  AtvSignUpdater updater(&valid_map, {});

  int frames = 0;
  for (int pass = 0; pass < 4; ++pass) {
    for (const LineString& aisle : factory->aisles) {
      for (double s = 0.0; s < aisle.Length(); s += 2.5) {
        Pose2 pose(aisle.PointAt(s), aisle.HeadingAt(s));
        // 36-beam scan into the occupancy grid.
        for (int beam = 0; beam < 36; ++beam) {
          double angle = 2.0 * std::numbers::pi * beam / 36;
          Vec2 dir{std::cos(angle), std::sin(angle)};
          double range =
              CastRay(factory->walls, pose.translation, dir, 25.0);
          grid.IntegrateRay(pose.translation,
                            pose.translation + dir * range, range < 25.0);
        }
        updater.ProcessFrame(pose, detector.Detect(world, pose, rng));
        ++frames;
      }
    }
  }
  std::printf("patrolled %d frames over 4 passes; occupancy grid has %zu "
              "occupied cells\n",
              frames, grid.NumOccupied());

  auto report = updater.BuildReport();
  std::printf("change report: %zu new sign(s), %zu missing sign(s)\n",
              report.new_signs.size(), report.missing_signs.size());
  for (const Landmark& lm : report.new_signs) {
    std::printf("  new sign near (%.1f, %.1f)%s\n", lm.position.x,
                lm.position.y,
                lm.position.xy().DistanceTo(fresh.position.xy()) < 1.5
                    ? "  <- matches the injected wet_floor sign"
                    : "");
  }
  for (ElementId id : report.missing_signs) {
    std::printf("  missing sign id %lld%s\n", static_cast<long long>(id),
                id == removed_id ? "  <- matches the removed sign" : "");
  }

  Status applied = ApplyPatch(report.AsPatch(), &valid_map);
  std::printf("batched update applied to the valid HD map: %s (%zu signs "
              "now mapped)\n",
              applied.ToString().c_str(), valid_map.landmarks().size());
  return 0;
}
