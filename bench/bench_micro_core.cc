// Micro-benchmarks of the core data structures (google-benchmark):
// spatial indexes, lane matching, serialization, rasterization and
// routing. These quantify the engineering costs behind the experiment
// harness ("efficient data management" — the paper's §IV discussion).

#include <benchmark/benchmark.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/raster_layer.h"
#include "core/serialization.h"
#include "core/tile_view.h"
#include "core/wire_frame.h"
#include "geometry/kd_tree.h"
#include "geometry/r_tree.h"
#include "planning/route_planner.h"
#include "sim/road_network_generator.h"

namespace hdmap {
namespace {

const HdMap& BenchTown() {
  static const HdMap* map = [] {
    Rng rng(7);
    TownOptions opt;
    opt.grid_rows = 6;
    opt.grid_cols = 6;
    opt.lanes_per_direction = 2;
    return new HdMap(std::move(GenerateTown(opt, rng)).value());
  }();
  return *map;
}

void BM_KdTreeBuild(benchmark::State& state) {
  Rng rng(1);
  std::vector<KdTree::Entry> entries;
  for (int i = 0; i < state.range(0); ++i) {
    entries.push_back({{rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, i});
  }
  for (auto _ : state) {
    KdTree tree(entries);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_KdTreeNearest(benchmark::State& state) {
  Rng rng(2);
  std::vector<KdTree::Entry> entries;
  for (int i = 0; i < state.range(0); ++i) {
    entries.push_back({{rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, i});
  }
  KdTree tree(entries);
  for (auto _ : state) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    benchmark::DoNotOptimize(tree.Nearest(q));
  }
}
BENCHMARK(BM_KdTreeNearest)->Arg(1000)->Arg(100000);

void BM_RTreeQuery(benchmark::State& state) {
  Rng rng(3);
  std::vector<RTree::Entry> entries;
  for (int i = 0; i < state.range(0); ++i) {
    Vec2 c{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    entries.push_back({Aabb(c, c + Vec2{5, 5}), i});
  }
  RTree tree(entries);
  for (auto _ : state) {
    Vec2 c{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    benchmark::DoNotOptimize(tree.Query(Aabb(c, c + Vec2{50, 50})));
  }
}
BENCHMARK(BM_RTreeQuery)->Arg(1000)->Arg(100000);

void BM_MatchToLane(benchmark::State& state) {
  const HdMap& map = BenchTown();
  Rng rng(4);
  Aabb box = map.BoundingBox();
  for (auto _ : state) {
    Vec2 q{rng.Uniform(box.min.x, box.max.x),
           rng.Uniform(box.min.y, box.max.y)};
    auto match = map.MatchToLane(q, 20.0);
    benchmark::DoNotOptimize(match.ok());
  }
}
BENCHMARK(BM_MatchToLane);

void BM_SerializeMap(benchmark::State& state) {
  const HdMap& map = BenchTown();
  for (auto _ : state) {
    std::string blob = SerializeMap(map);
    benchmark::DoNotOptimize(blob.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(SerializeMap(map).size()));
}
BENCHMARK(BM_SerializeMap);

void BM_DeserializeMap(benchmark::State& state) {
  std::string blob = SerializeMap(BenchTown());
  for (auto _ : state) {
    auto map = DeserializeMap(blob);
    benchmark::DoNotOptimize(map.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_DeserializeMap);

void BM_SerializeCompact(benchmark::State& state) {
  const HdMap& map = BenchTown();
  for (auto _ : state) {
    std::string blob = SerializeCompactMap(map);
    benchmark::DoNotOptimize(blob.size());
  }
}
BENCHMARK(BM_SerializeCompact);

void BM_RasterizeMap(benchmark::State& state) {
  const HdMap& map = BenchTown();
  double resolution = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    SemanticRaster raster = RasterizeMap(map, resolution);
    benchmark::DoNotOptimize(raster.NumOccupied());
  }
}
BENCHMARK(BM_RasterizeMap)->Arg(1)->Arg(2)->Arg(4);

void BM_PlanRoute(benchmark::State& state) {
  const HdMap& map = BenchTown();
  static RoutingGraph graph = RoutingGraph::Build(map);
  Rng rng(5);
  std::vector<ElementId> ids;
  for (const auto& [id, ll] : map.lanelets()) ids.push_back(id);
  RouteAlgorithm algo = static_cast<RouteAlgorithm>(state.range(0));
  for (auto _ : state) {
    ElementId from = ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(ids.size()) - 1))];
    ElementId to = ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(ids.size()) - 1))];
    auto route = PlanRoute(graph, from, to, algo);
    benchmark::DoNotOptimize(route.ok());
  }
}
BENCHMARK(BM_PlanRoute)
    ->Arg(static_cast<int>(RouteAlgorithm::kDijkstra))
    ->Arg(static_cast<int>(RouteAlgorithm::kAStar))
    ->Arg(static_cast<int>(RouteAlgorithm::kBhps));

void BM_RasterMatchScore(benchmark::State& state) {
  const HdMap& map = BenchTown();
  static SemanticRaster raster = RasterizeMap(map, 0.25);
  Rng rng(6);
  const Lanelet& lane = map.lanelets().begin()->second;
  Pose2 pose(lane.centerline.PointAt(10.0), lane.centerline.HeadingAt(10.0));
  SemanticRaster patch(Aabb({-12, -12}, {12, 12}), 0.25);
  for (int cy = 0; cy < patch.height(); ++cy) {
    for (int cx = 0; cx < patch.width(); ++cx) {
      uint8_t bits = raster.Sample(pose.TransformPoint(
          patch.CellCenter(cx, cy)));
      if (bits != 0) patch.Set(cx, cy, bits);
    }
  }
  auto cells = patch.OccupiedCells();
  for (auto _ : state) {
    Pose2 candidate(pose.translation + Vec2{rng.Normal(0, 1),
                                            rng.Normal(0, 1)},
                    pose.heading);
    benchmark::DoNotOptimize(raster.MatchScoreSparse(cells, candidate));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cells.size()));
}
BENCHMARK(BM_RasterMatchScore);

void BM_LatencyHistogramRecord(benchmark::State& state) {
  // Contended hot path: every thread records into one shared histogram.
  // Before sharding this serialized on a single mutex; the multi-thread
  // variants are the regression guard for that contention fix.
  static LatencyHistogram histogram;
  double sample = 1e-3 * (1 + state.thread_index());
  for (auto _ : state) {
    histogram.Record(sample);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencyHistogramRecord)->Threads(1)->Threads(4)->Threads(8);

std::string RandomBuffer(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::string buf(size, '\0');
  for (char& c : buf) c = static_cast<char>(rng.NextU32());
  return buf;
}

void BM_Crc32SliceBy8(benchmark::State& state) {
  std::string buf = RandomBuffer(static_cast<size_t>(state.range(0)), 0xCC);
  // Correctness gate, not just a timer: the slice-by-8 kernel must agree
  // with the byte-at-a-time oracle on every buffer it is measured on
  // (plus split-checksum continuation). Abort so the tier-2 ctest run
  // fails loudly on any divergence.
  uint32_t fast = Crc32(buf);
  uint32_t slow = Crc32Bytewise(buf);
  uint32_t split = Crc32(std::string_view(buf).substr(buf.size() / 3),
                         Crc32(std::string_view(buf).substr(0, buf.size() / 3)));
  if (fast != slow || fast != split) {
    std::fprintf(stderr,
                 "FATAL: Crc32 slice-by-8 diverges from bytewise oracle "
                 "(%08x vs %08x, split %08x) on %zu bytes\n",
                 fast, slow, split, buf.size());
    std::abort();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(buf));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_Crc32SliceBy8)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_Crc32Bytewise(benchmark::State& state) {
  std::string buf = RandomBuffer(static_cast<size_t>(state.range(0)), 0xCC);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32Bytewise(buf));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_Crc32Bytewise)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_TileViewCreate(benchmark::State& state) {
  // Validate-only cost of the v3 read path (structure pass, no CRC): what
  // a view-cache miss pays before in-place reads begin.
  static const std::string* blob = new std::string(EncodeTileV3(BenchTown()));
  for (auto _ : state) {
    auto view = TileView::Create(std::string_view(*blob),
                                 FrameChecksum::kTrust);
    if (!view.ok()) std::abort();
    benchmark::DoNotOptimize(view->NumElements());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob->size()));
}
BENCHMARK(BM_TileViewCreate);

void BM_DeserializeMapV1(benchmark::State& state) {
  // The full-decode path BM_TileViewCreate replaces on reads.
  static const std::string* blob = new std::string(SerializeMap(BenchTown()));
  for (auto _ : state) {
    auto map = DeserializeMap(*blob);
    if (!map.ok()) std::abort();
    benchmark::DoNotOptimize(map->lanelets().size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob->size()));
}
BENCHMARK(BM_DeserializeMapV1);

void BM_TraceSpanDisabled(benchmark::State& state) {
  // The cost every request pays when tracing is off: must stay a few ns.
  static TraceRecorder recorder;  // Default options: disabled.
  for (auto _ : state) {
    TraceSpan span("bench.request", TraceSpan::kRoot, &recorder);
    benchmark::DoNotOptimize(span.active());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanUnsampled(benchmark::State& state) {
  // Enabled recorder, head sampling off: spans do their clock/bookkeeping
  // work but never touch the ring. This is the "sampling off" overhead
  // the serving bench compares against baseline.
  static TraceRecorder* recorder = [] {
    TraceRecorder::Options opts;
    opts.enabled = true;
    opts.sample_every_n = 0;
    opts.slow_threshold_s = 0.0;
    return new TraceRecorder(opts);
  }();
  for (auto _ : state) {
    TraceSpan span("bench.request", TraceSpan::kRoot, recorder);
    benchmark::DoNotOptimize(span.trace_id());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanUnsampled)->Threads(1)->Threads(8);

}  // namespace
}  // namespace hdmap

BENCHMARK_MAIN();
