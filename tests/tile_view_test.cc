// Tests for tile format v3 and the span-based view API: in-place
// accessors must agree element-for-element with the source map,
// Materialize must be equivalent to a v1 round trip, and TileView::Create
// must fail closed on every structural violation of the offset-table
// layout — targeted corruptions are re-framed with a VALID CRC so the
// structural validator (not the frame checksum) is what rejects them.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/serialization.h"
#include "core/tile_view.h"
#include "core/wire_frame.h"
#include "sim/road_network_generator.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

/// A small hand-built map exercising every section and every
/// variable-length field of the v3 format.
HdMap RichMap() {
  HdMap map;

  Landmark sign;
  sign.id = 10;
  sign.type = LandmarkType::kTrafficSign;
  sign.position = {1.0, 2.0, 3.5};
  sign.reflectivity = 0.7;
  sign.subtype = "speed_limit_50";
  EXPECT_TRUE(map.AddLandmark(sign).ok());
  Landmark hrl;
  hrl.id = 11;
  hrl.type = LandmarkType::kHighReflectiveLandmark;
  hrl.position = {-4.0, 9.0, 1.0};
  hrl.reflectivity = 0.99;
  EXPECT_TRUE(map.AddLandmark(hrl).ok());

  LineFeature left;
  left.id = 20;
  left.type = LineType::kSolidLaneMarking;
  left.reflectivity = 0.85;
  left.geometry = LineString({{0, 1}, {10, 1}, {20, 1.5}});
  left.survey_points = {{0.0, 1.0, 0.1}, {5.0, 1.0, 0.2}, {10.0, 1.1, 0.3}};
  EXPECT_TRUE(map.AddLineFeature(left).ok());
  LineFeature right;
  right.id = 21;
  right.type = LineType::kRoadEdge;
  right.reflectivity = 0.3;
  right.geometry = LineString({{0, -1}, {20, -1}});
  EXPECT_TRUE(map.AddLineFeature(right).ok());

  AreaFeature walk;
  walk.id = 30;
  walk.type = AreaType::kCrosswalk;
  walk.geometry = Polygon({{5, -2}, {6, -2}, {6, 2}, {5, 2}});
  EXPECT_TRUE(map.AddAreaFeature(walk).ok());

  Lanelet lane;
  lane.id = 40;
  lane.left_boundary_id = 20;
  lane.right_boundary_id = 21;
  lane.centerline = LineString({{0, 0}, {10, 0}, {20, 0.25}});
  lane.elevation_profile = {0.0, 0.5, 1.25};
  lane.speed_limit_mps = 13.89;
  lane.successors = {41};
  lane.regulatory_ids = {50};
  lane.bundle_id = 60;
  EXPECT_TRUE(map.AddLanelet(lane).ok());
  Lanelet next;
  next.id = 41;
  next.centerline = LineString({{20, 0.25}, {30, 0.5}});
  next.predecessors = {40};
  next.left_neighbor = 40;
  EXPECT_TRUE(map.AddLanelet(next).ok());

  RegulatoryElement limit;
  limit.id = 50;
  limit.type = RegulatoryType::kSpeedLimit;
  limit.speed_limit_mps = 13.89;
  limit.anchor_id = 10;
  limit.lanelet_ids = {40, 41};
  EXPECT_TRUE(map.AddRegulatoryElement(limit).ok());

  LaneBundle bundle;
  bundle.id = 60;
  bundle.from_node = 70;
  bundle.to_node = 71;
  bundle.lanelet_ids = {40, 41};
  EXPECT_TRUE(map.AddLaneBundle(bundle).ok());

  MapNode a;
  a.id = 70;
  a.position = {0, 0};
  a.bundle_ids = {60};
  EXPECT_TRUE(map.AddMapNode(a).ok());
  MapNode b;
  b.id = 71;
  b.position = {30, 0.5};
  b.bundle_ids = {60};
  EXPECT_TRUE(map.AddMapNode(b).ok());

  return map;
}

HdMap SmallTown() {
  Rng rng(17);
  TownOptions opt;
  opt.grid_rows = 2;
  opt.grid_cols = 2;
  opt.block_size = 120.0;
  auto town = GenerateTown(opt, rng);
  EXPECT_TRUE(town.ok()) << town.status().ToString();
  return std::move(town).value();
}

uint32_t ReadU32(const std::string& s, size_t off) {
  uint32_t v = 0;
  std::memcpy(&v, s.data() + off, sizeof(v));
  return v;
}

void WriteU32(std::string* s, size_t off, uint32_t v) {
  std::memcpy(s->data() + off, &v, sizeof(v));
}

/// The bare v3 payload (bytes after the 16-byte frame header).
std::string PayloadOf(std::string_view framed) {
  EXPECT_TRUE(IsFramed(framed));
  return std::string(framed.substr(kWireFrameHeaderSize));
}

// Payload header layout (see tile_view.h): magic, version, num_sections,
// reserved, then 7 x {count, offset, length} directory entries.
constexpr size_t kDirBase = 16;
constexpr size_t kDirStride = 12;
size_t DirCountOff(size_t section) { return kDirBase + section * kDirStride; }
size_t DirOffsetOff(size_t section) {
  return kDirBase + section * kDirStride + 4;
}

/// Re-frames a (mutated) payload with a freshly computed, VALID CRC and
/// expects TileView::Create to reject it structurally.
void ExpectRejected(const std::string& payload, const char* what) {
  std::string framed = WrapFrame(payload);
  auto view = TileView::Create(std::string_view(framed));
  ASSERT_FALSE(view.ok()) << what;
  EXPECT_EQ(view.status().code(), StatusCode::kDataLoss) << what;
  // kTrust skips only the checksum — structural validation still runs.
  auto trusted =
      TileView::Create(std::string_view(framed), FrameChecksum::kTrust);
  EXPECT_FALSE(trusted.ok()) << what << " (kTrust)";
}

TEST(TileViewTest, ViewsMatchSourceMapElementForElement) {
  HdMap map = RichMap();
  std::string blob = EncodeTileV3(map);
  ASSERT_TRUE(IsTileV3(blob));
  auto view = TileView::Create(std::string_view(blob));
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  ASSERT_EQ(view->num_landmarks(), map.landmarks().size());
  ASSERT_EQ(view->num_line_features(), map.line_features().size());
  ASSERT_EQ(view->num_area_features(), map.area_features().size());
  ASSERT_EQ(view->num_lanelets(), map.lanelets().size());
  ASSERT_EQ(view->num_regulatory_elements(),
            map.regulatory_elements().size());
  ASSERT_EQ(view->num_lane_bundles(), map.lane_bundles().size());
  ASSERT_EQ(view->num_map_nodes(), map.map_nodes().size());

  LandmarkView sign = *view->FindLandmark(10);
  EXPECT_EQ(sign.type(), LandmarkType::kTrafficSign);
  EXPECT_EQ(sign.position(), (Vec3{1.0, 2.0, 3.5}));
  EXPECT_EQ(sign.reflectivity(), 0.7);
  EXPECT_EQ(sign.subtype(), "speed_limit_50");
  EXPECT_EQ(view->FindLandmark(11)->subtype(), "");

  LineFeatureView lf = *view->FindLineFeature(20);
  EXPECT_EQ(lf.type(), LineType::kSolidLaneMarking);
  EXPECT_EQ(lf.reflectivity(), 0.85);
  ASSERT_EQ(lf.geometry().size(), 3u);
  EXPECT_EQ(lf.geometry()[2], (Vec2{20, 1.5}));
  ASSERT_EQ(lf.num_survey_points(), 3u);
  // Survey points are stored as 3 x f32 (like v1), so compare after the
  // same narrowing.
  EXPECT_EQ(lf.survey_point(1).x, static_cast<double>(5.0f));
  EXPECT_EQ(lf.survey_point(2).z, static_cast<double>(0.3f));

  LaneletView lane = *view->FindLanelet(40);
  EXPECT_EQ(lane.left_boundary_id(), 20u);
  EXPECT_EQ(lane.right_boundary_id(), 21u);
  EXPECT_EQ(lane.bundle_id(), 60u);
  EXPECT_EQ(lane.speed_limit_mps(), 13.89);
  ASSERT_EQ(lane.centerline().size(), 3u);
  EXPECT_EQ(lane.centerline().back(), (Vec2{20, 0.25}));
  EXPECT_EQ(lane.elevation_profile().ToVector(),
            (std::vector<double>{0.0, 0.5, 1.25}));
  EXPECT_EQ(lane.successors().ToVector(), (std::vector<ElementId>{41}));
  EXPECT_TRUE(lane.predecessors().empty());
  EXPECT_EQ(lane.regulatory_ids().ToVector(),
            (std::vector<ElementId>{50}));

  RegulatoryElementView reg = view->regulatory_element(0);
  EXPECT_EQ(reg.id(), 50u);
  EXPECT_EQ(reg.anchor_id(), 10u);
  EXPECT_EQ(reg.lanelet_ids().ToVector(),
            (std::vector<ElementId>{40, 41}));

  LaneBundleView bundle = view->lane_bundle(0);
  EXPECT_EQ(bundle.from_node(), 70u);
  EXPECT_EQ(bundle.to_node(), 71u);
  EXPECT_EQ(bundle.lanelet_ids().ToVector(),
            (std::vector<ElementId>{40, 41}));

  MapNodeView node = view->map_node(1);
  EXPECT_EQ(node.id(), 71u);
  EXPECT_EQ(node.position(), (Vec2{30, 0.5}));
  EXPECT_EQ(node.bundle_ids().ToVector(), (std::vector<ElementId>{60}));
}

TEST(TileViewTest, FindByIdHitsAndMisses) {
  HdMap map = SmallTown();
  std::string blob = EncodeTileV3(map);
  auto view = TileView::Create(std::string_view(blob));
  ASSERT_TRUE(view.ok());
  for (const auto& [id, ll] : map.lanelets()) {
    auto found = view->FindLanelet(id);
    ASSERT_TRUE(found.has_value()) << id;
    EXPECT_EQ(found->id(), id);
    EXPECT_EQ(found->centerline().size(), ll.centerline.size());
  }
  EXPECT_FALSE(view->FindLanelet(0).has_value());
  EXPECT_FALSE(view->FindLanelet(~0ull - 1).has_value());
  EXPECT_FALSE(view->FindLandmark(~0ull - 1).has_value());
  EXPECT_FALSE(view->FindLineFeature(~0ull - 1).has_value());
}

TEST(TileViewTest, MaterializeEquivalentToV1RoundTrip) {
  for (const HdMap& map : {RichMap(), SmallTown()}) {
    std::string blob = EncodeTileV3(map);
    auto view = TileView::Create(std::string_view(blob));
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    auto mat = view->Materialize();
    ASSERT_TRUE(mat.ok()) << mat.status().ToString();
    // v1 bytes are a canonical fingerprint: Materialize must reproduce
    // exactly what a v1 round trip of the same map produces.
    EXPECT_EQ(SerializeMap(*mat), SerializeMap(map));
    // And re-encoding the materialized map reproduces the v3 bytes.
    EXPECT_EQ(EncodeTileV3(*mat), blob);
  }
}

TEST(TileViewTest, DeserializeMapDispatchesOnV3Magic) {
  HdMap map = RichMap();
  std::string blob = EncodeTileV3(map);
  auto decoded = DeserializeMap(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(SerializeMap(*decoded), SerializeMap(map));
}

TEST(TileViewTest, EncodeIsByteDeterministic) {
  HdMap a = SmallTown();
  HdMap b = SmallTown();
  EXPECT_EQ(EncodeTileV3(a), EncodeTileV3(b));
}

TEST(TileViewTest, EmptyMapEncodesAndViews) {
  HdMap empty;
  std::string blob = EncodeTileV3(empty);
  auto view = TileView::Create(std::string_view(blob));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->NumElements(), 0u);
  auto mat = view->Materialize();
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(SerializeMap(*mat), SerializeMap(empty));
}

TEST(TileViewTest, TrustSkipsChecksumVerifyDoesNot) {
  std::string blob = EncodeTileV3(RichMap());
  // Scribble the stored CRC in the frame header (bytes 12..16): the
  // payload itself stays pristine.
  blob[13] = static_cast<char>(blob[13] ^ 0x5a);
  EXPECT_EQ(TileView::Create(std::string_view(blob)).status().code(),
            StatusCode::kDataLoss);
  auto trusted =
      TileView::Create(std::string_view(blob), FrameChecksum::kTrust);
  ASSERT_TRUE(trusted.ok()) << trusted.status().ToString();
  EXPECT_GT(trusted->NumElements(), 0u);
}

// --- Targeted offset-table corruptions (valid frame CRC each time) ---

TEST(TileViewCorruptionTest, WrongMagicOrVersionRejected) {
  std::string payload = PayloadOf(EncodeTileV3(RichMap()));
  std::string bad = payload;
  WriteU32(&bad, 0, 0xDEADBEEF);
  ExpectRejected(bad, "wrong magic");
  bad = payload;
  WriteU32(&bad, 4, 4);
  ExpectRejected(bad, "wrong version");
  bad = payload;
  WriteU32(&bad, 8, 8);
  ExpectRejected(bad, "wrong section count");
  bad = payload;
  WriteU32(&bad, 12, 1);
  ExpectRejected(bad, "nonzero reserved word");
}

TEST(TileViewCorruptionTest, TruncatedHeaderAndTablesRejected) {
  std::string payload = PayloadOf(EncodeTileV3(RichMap()));
  // Shorter than the fixed header.
  ExpectRejected(payload.substr(0, 64), "truncated header");
  // Cut inside the lanelet section's slot table: every later section
  // (and the table itself) now runs past the end of the payload.
  size_t lanelet_off = ReadU32(payload, DirOffsetOff(3));
  ExpectRejected(payload.substr(0, lanelet_off + 4),
                 "truncated slot table");
  // Drop the final 8 bytes: the last section no longer ends at the
  // payload end.
  ExpectRejected(payload.substr(0, payload.size() - 8),
                 "truncated final section");
}

TEST(TileViewCorruptionTest, CountInflationRejected) {
  std::string payload = PayloadOf(EncodeTileV3(RichMap()));
  for (size_t section = 0; section < 7; ++section) {
    std::string bad = payload;
    WriteU32(&bad, DirCountOff(section), 0x00FFFFFF);
    ExpectRejected(bad, "directory count inflated");
  }
}

TEST(TileViewCorruptionTest, OutOfRangeSlotOffsetsRejected) {
  std::string payload = PayloadOf(EncodeTileV3(RichMap()));
  size_t table = ReadU32(payload, DirOffsetOff(3));  // Lanelets.
  uint32_t count = ReadU32(payload, DirCountOff(3));
  ASSERT_GE(count, 2u);

  // off[0] must be exactly 0.
  std::string bad = payload;
  WriteU32(&bad, table, 8);
  ExpectRejected(bad, "first slot not at 0");

  // A slot pointing far past the section data.
  bad = payload;
  WriteU32(&bad, table + 4, 0xFFFFFFF0);
  ExpectRejected(bad, "slot offset out of range");

  // The terminator slot must land exactly on the section data length.
  bad = payload;
  WriteU32(&bad, table + 4 * count,
           ReadU32(payload, table + 4 * count) + 8);
  ExpectRejected(bad, "terminator past data end");
}

TEST(TileViewCorruptionTest, OverlappingSlotsRejected) {
  std::string payload = PayloadOf(EncodeTileV3(RichMap()));
  size_t table = ReadU32(payload, DirOffsetOff(3));
  uint32_t count = ReadU32(payload, DirCountOff(3));
  ASSERT_GE(count, 2u);
  // Make record 0 "end" after record 1 begins (off[1] > off[2]): the
  // slots now overlap / decrease.
  std::string bad = payload;
  WriteU32(&bad, table + 4, ReadU32(payload, table + 8) + 16);
  ExpectRejected(bad, "overlapping slots");
}

TEST(TileViewCorruptionTest, NonContiguousSectionsRejected) {
  std::string payload = PayloadOf(EncodeTileV3(RichMap()));
  // Shift section 1's recorded offset: sections must tile the payload
  // exactly, so any gap or overlap is rejected.
  std::string bad = payload;
  WriteU32(&bad, DirOffsetOff(1), ReadU32(payload, DirOffsetOff(1)) + 8);
  ExpectRejected(bad, "section gap");
  bad = payload;
  WriteU32(&bad, DirOffsetOff(1), ReadU32(payload, DirOffsetOff(1)) - 8);
  ExpectRejected(bad, "section overlap");
}

TEST(TileViewCorruptionTest, IdOrderViolationRejected) {
  HdMap map = RichMap();
  std::string payload = PayloadOf(EncodeTileV3(map));
  // Swap the two landmark ids in place (records are fixed-offset i64 at
  // the record head): ids are no longer strictly ascending.
  size_t table = ReadU32(payload, DirOffsetOff(0));
  uint32_t count = ReadU32(payload, DirCountOff(0));
  ASSERT_EQ(count, 2u);
  size_t data = table + ((4 * (count + 1) + 7) / 8) * 8;
  uint32_t off0 = ReadU32(payload, table);
  uint32_t off1 = ReadU32(payload, table + 4);
  std::string bad = payload;
  char tmp[8];
  std::memcpy(tmp, bad.data() + data + off0, 8);
  std::memcpy(bad.data() + data + off0, bad.data() + data + off1, 8);
  std::memcpy(bad.data() + data + off1, tmp, 8);
  ExpectRejected(bad, "ids out of order");
}

/// Randomized structural fuzz: mutate the BARE payload, then re-frame it
/// with a valid CRC, so every mutation reaches the offset-table
/// validator instead of dying at the frame check. Nothing may crash or
/// read out of bounds (run under the `sanitize` preset for teeth);
/// survivors must also Materialize cleanly.
TEST(TileViewCorruptionTest, ReframedPayloadFuzzNeverCrashes) {
  std::string payload = PayloadOf(EncodeTileV3(SmallTown()));
  Rng rng(0xF1A7);
  size_t iters = 300;
  if (const char* env = std::getenv("HDMAP_FUZZ_ITERS")) {
    long v = std::atol(env);
    if (v > 0) iters = static_cast<size_t>(v);
  }
  for (size_t i = 0; i < iters; ++i) {
    std::string bad = payload;
    int edits = rng.UniformInt(1, 6);
    for (int e = 0; e < edits; ++e) {
      switch (rng.UniformInt(0, 2)) {
        case 0: {  // Stamp a random u32 at a random 4-aligned offset.
          size_t pos = (rng.NextU32() % (bad.size() / 4)) * 4;
          WriteU32(&bad, pos, rng.NextU32());
          break;
        }
        case 1:  // Truncate.
          bad.resize(rng.NextU32() % bad.size());
          break;
        default: {  // Flip bits.
          size_t pos = rng.NextU32() % bad.size();
          bad[pos] = static_cast<char>(bad[pos] ^ (1u << (rng.NextU32() % 8)));
          break;
        }
      }
      if (bad.empty()) break;
    }
    auto view = TileView::Create(std::string_view(WrapFrame(bad)));
    if (view.ok()) {
      // A mutation that only hit dead bytes (padding) may survive; the
      // surviving view must still be fully traversable.
      (void)view->Materialize();
    }
  }
}

}  // namespace
}  // namespace hdmap
