#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hdmap {

Result<std::shared_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(path + " does not exist");
    }
    return Status::Internal("open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal("fstat " + path + ": " + std::strerror(err));
  }
  size_t size = static_cast<size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      return Status::Internal("mmap " + path + ": " + std::strerror(err));
    }
  }
  // The mapping holds its own reference to the file; the descriptor is
  // no longer needed (and closing it keeps fd usage flat however many
  // checkpoint generations are pinned).
  ::close(fd);
  return std::shared_ptr<MmapFile>(new MmapFile(addr, size));
}

MmapFile::~MmapFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

}  // namespace hdmap
