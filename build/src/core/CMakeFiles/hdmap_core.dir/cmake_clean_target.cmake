file(REMOVE_RECURSE
  "libhdmap_core.a"
)
