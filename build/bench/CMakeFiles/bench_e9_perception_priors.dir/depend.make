# Empty dependencies file for bench_e9_perception_priors.
# This may be replaced when dependencies are built.
