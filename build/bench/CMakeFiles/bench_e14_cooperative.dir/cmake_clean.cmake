file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_cooperative.dir/bench_e14_cooperative.cc.o"
  "CMakeFiles/bench_e14_cooperative.dir/bench_e14_cooperative.cc.o.d"
  "bench_e14_cooperative"
  "bench_e14_cooperative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_cooperative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
