#include "sim/sensors.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/units.h"

namespace hdmap {

GpsSensor::GpsSensor(const Options& options, Rng& rng) : options_(options) {
  bias_ = Vec2{rng.Normal(0.0, options_.bias_sigma),
               rng.Normal(0.0, options_.bias_sigma)};
}

Vec2 GpsSensor::Measure(const Vec2& true_position, Rng& rng) {
  bias_ += Vec2{rng.Normal(0.0, options_.bias_walk_sigma),
                rng.Normal(0.0, options_.bias_walk_sigma)};
  return true_position + bias_ +
         Vec2{rng.Normal(0.0, options_.noise_sigma),
              rng.Normal(0.0, options_.noise_sigma)};
}

OdometrySensor::Delta OdometrySensor::Measure(const Pose2& from,
                                              const Pose2& to,
                                              Rng& rng) const {
  double true_distance = from.translation.DistanceTo(to.translation);
  double true_heading_change = AngleDiff(to.heading, from.heading);
  Delta d;
  d.distance = true_distance *
               (1.0 + rng.Normal(0.0, options_.distance_noise_frac));
  d.heading_change =
      true_heading_change + rng.Normal(0.0, options_.heading_noise_sigma);
  return d;
}

std::vector<LandmarkDetection> LandmarkDetector::Detect(
    const HdMap& map, const Pose2& vehicle_pose, Rng& rng) const {
  std::vector<LandmarkDetection> detections;
  for (ElementId id :
       map.LandmarksNear(vehicle_pose.translation, options_.max_range)) {
    const Landmark* lm = map.FindLandmark(id);
    if (lm == nullptr) continue;
    if (lm->reflectivity < options_.min_reflectivity) continue;
    Vec2 local = vehicle_pose.InverseTransformPoint(lm->position.xy());
    double range = local.Norm();
    if (range > options_.max_range || range < 0.5) continue;
    double bearing = local.Angle();
    if (std::abs(bearing) > options_.fov_rad / 2.0) continue;
    if (!rng.Bernoulli(options_.detection_prob)) continue;

    double noisy_range =
        range * (1.0 + rng.Normal(0.0, options_.range_noise_frac));
    double noisy_bearing =
        bearing + rng.Normal(0.0, options_.bearing_noise_sigma);
    LandmarkDetection det;
    det.position_vehicle = Vec2{noisy_range * std::cos(noisy_bearing),
                                noisy_range * std::sin(noisy_bearing)};
    det.range = noisy_range;
    det.type = lm->type;
    det.reflectivity =
        std::clamp(lm->reflectivity + rng.Normal(0.0, 0.03), 0.0, 1.0);
    det.truth_id = id;
    detections.push_back(det);
  }
  // Poisson-ish clutter: one draw per expected false positive.
  int clutter = 0;
  double lambda = options_.clutter_rate;
  while (lambda > 0.0) {
    if (rng.Bernoulli(std::min(1.0, lambda))) ++clutter;
    lambda -= 1.0;
  }
  for (int i = 0; i < clutter; ++i) {
    double range = rng.Uniform(2.0, options_.max_range);
    double bearing =
        rng.Uniform(-options_.fov_rad / 2.0, options_.fov_rad / 2.0);
    LandmarkDetection det;
    det.position_vehicle =
        Vec2{range * std::cos(bearing), range * std::sin(bearing)};
    det.range = range;
    det.type = LandmarkType::kTrafficSign;
    det.reflectivity = rng.Uniform(0.2, 0.9);
    det.is_clutter = true;
    detections.push_back(det);
  }
  return detections;
}

std::vector<MarkingPoint> MarkingScanner::Scan(const HdMap& map,
                                               const Pose2& vehicle_pose,
                                               Rng& rng) const {
  std::vector<MarkingPoint> points;
  Aabb query = Aabb::FromPoint(vehicle_pose.translation, options_.max_range);
  for (ElementId id : map.LineFeaturesInBox(query)) {
    const LineFeature* lf = map.FindLineFeature(id);
    if (lf == nullptr || lf->type == LineType::kVirtual) continue;
    bool is_marking = lf->type == LineType::kSolidLaneMarking ||
                      lf->type == LineType::kDashedLaneMarking ||
                      lf->type == LineType::kStopLine;
    double len = lf->geometry.Length();
    for (double s = 0.0; s < len; s += options_.point_spacing) {
      // Dashed markings: skip the gaps (3 m dash, 3 m gap pattern).
      if (lf->type == LineType::kDashedLaneMarking &&
          std::fmod(s, 6.0) >= 3.0) {
        continue;
      }
      Vec2 world = lf->geometry.PointAt(s);
      if (world.DistanceTo(vehicle_pose.translation) > options_.max_range) {
        continue;
      }
      Vec2 normal = lf->geometry.TangentAt(s).Perp();
      Vec2 noisy = world + normal * rng.Normal(0.0, options_.lateral_noise_sigma);
      MarkingPoint mp;
      mp.position_vehicle = vehicle_pose.InverseTransformPoint(noisy);
      mp.intensity = std::clamp(
          lf->reflectivity + rng.Normal(0.0, options_.intensity_noise_sigma),
          0.0, 1.0);
      mp.on_marking = is_marking;
      points.push_back(mp);
    }
  }
  // Low-intensity road-surface returns scattered around the vehicle.
  for (int i = 0; i < options_.road_surface_points; ++i) {
    double range = rng.Uniform(1.0, options_.max_range);
    double angle = rng.Uniform(-std::numbers::pi, std::numbers::pi);
    MarkingPoint mp;
    mp.position_vehicle = Vec2{range * std::cos(angle),
                               range * std::sin(angle)};
    mp.intensity = std::clamp(rng.Normal(0.15, 0.08), 0.0, 1.0);
    mp.on_marking = false;
    points.push_back(mp);
  }
  return points;
}

}  // namespace hdmap
