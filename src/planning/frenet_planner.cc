#include "planning/frenet_planner.h"

#include <algorithm>
#include <cmath>

namespace hdmap {

namespace {

/// Quintic ease: f(0)=0, f(1)=1, zero first/second derivatives at both
/// ends — the standard smooth lateral transition profile.
double QuinticBlend(double u) {
  return u * u * u * (10.0 - 15.0 * u + 6.0 * u * u);
}

}  // namespace

std::optional<std::vector<CandidatePath>> FrenetPlanner::Plan(
    const LineString& reference, double s0, double d0,
    const std::vector<Obstacle>& obstacles) {
  if (reference.size() < 2 || options_.num_candidates < 1) {
    return std::nullopt;
  }
  double s_end = std::min(reference.Length(), s0 + options_.horizon);
  if (s_end - s0 < 2.0 * options_.step) return std::nullopt;

  std::vector<CandidatePath> paths;
  paths.reserve(static_cast<size_t>(options_.num_candidates));
  for (int i = 0; i < options_.num_candidates; ++i) {
    double frac = options_.num_candidates == 1
                      ? 0.5
                      : static_cast<double>(i) /
                            (options_.num_candidates - 1);
    double end_offset = -options_.lateral_span +
                        2.0 * options_.lateral_span * frac;
    CandidatePath path;
    path.end_offset = end_offset;

    std::vector<Vec2> pts;
    for (double s = s0; s <= s_end; s += options_.step) {
      double u = (s - s0) / (s_end - s0);
      double d = d0 + (end_offset - d0) * QuinticBlend(u);
      Vec2 base = reference.PointAt(s);
      Vec2 normal = reference.TangentAt(s).Perp();
      pts.push_back(base + normal * d);
    }
    path.geometry = LineString(std::move(pts));

    // Kinematic feasibility: curvature bound.
    double len = path.geometry.Length();
    for (double s = 0.0; s < len; s += 2.0 * options_.step) {
      path.max_curvature = std::max(
          path.max_curvature, std::abs(path.geometry.CurvatureAt(s)));
    }
    if (path.max_curvature > options_.max_feasible_curvature) {
      path.collision_free = false;  // Treated as invalid.
    }

    // Collision check against disc obstacles.
    if (path.collision_free) {
      for (const Obstacle& ob : obstacles) {
        if (path.geometry.DistanceTo(ob.position) <=
            ob.radius + options_.obstacle_margin) {
          path.collision_free = false;
          break;
        }
      }
    }

    path.cost = options_.offset_weight * std::abs(end_offset) +
                options_.inertia_weight *
                    std::abs(end_offset - last_selected_offset_) +
                options_.curvature_weight * path.max_curvature;
    paths.push_back(std::move(path));
  }

  // Select: cheapest collision-free candidate.
  int best = -1;
  for (size_t i = 0; i < paths.size(); ++i) {
    if (!paths[i].collision_free) continue;
    if (best < 0 || paths[i].cost < paths[static_cast<size_t>(best)].cost) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return std::nullopt;
  last_selected_offset_ = paths[static_cast<size_t>(best)].end_offset;
  std::swap(paths[0], paths[static_cast<size_t>(best)]);
  return paths;
}

}  // namespace hdmap
