// E8 — Yang et al. [62]: lane-level bidirectional hybrid path search
// (BHPS) on HD maps. Paper: the bidirectional hybrid search explores the
// lane graph more efficiently than unidirectional search at equal route
// quality.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "planning/route_planner.h"
#include "sim/road_network_generator.h"

namespace hdmap {
namespace {

int Run() {
  bench::PrintHeader("E8", "Bidirectional hybrid path search (BHPS) [62]",
                     "fewer node expansions than unidirectional search at "
                     "equal route cost");

  Rng rng(1301);
  TownOptions opt;
  opt.grid_rows = 10;
  opt.grid_cols = 10;
  opt.lanes_per_direction = 2;
  opt.block_size = 120.0;
  opt.traffic_lights = false;  // Pure routing benchmark.
  opt.crosswalks = false;
  auto town = GenerateTown(opt, rng);
  if (!town.ok()) return 1;
  RoutingGraph graph = RoutingGraph::Build(*town);
  std::printf("  lane graph: %zu nodes, %zu edges\n", graph.NumNodes(),
              graph.NumEdges());

  std::vector<ElementId> lanelet_ids;
  for (const auto& [id, ll] : town->lanelets()) {
    if (ll.Length() > 40.0) lanelet_ids.push_back(id);
  }

  struct Algo {
    RouteAlgorithm algorithm;
    const char* name;
    RunningStats expansions;
    RunningStats cost;
    RunningStats micros;
    int failures = 0;
  };
  std::vector<Algo> algos = {{RouteAlgorithm::kDijkstra, "Dijkstra", {}, {}, {}, 0},
                             {RouteAlgorithm::kAStar, "A*", {}, {}, {}, 0},
                             {RouteAlgorithm::kBhps, "BHPS", {}, {}, {}, 0}};

  const int kQueries = 120;
  for (int q = 0; q < kQueries; ++q) {
    ElementId from = lanelet_ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(lanelet_ids.size()) - 1))];
    ElementId to = lanelet_ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(lanelet_ids.size()) - 1))];
    if (from == to) continue;
    // Skip unroutable pairs (opposite one-way dead ends).
    auto probe = PlanRoute(graph, from, to, RouteAlgorithm::kDijkstra);
    if (!probe.ok()) continue;
    for (Algo& algo : algos) {
      bench::Timer timer;
      auto route = PlanRoute(graph, from, to, algo.algorithm);
      double us = timer.Seconds() * 1e6;
      if (!route.ok()) {
        ++algo.failures;
        continue;
      }
      algo.expansions.Add(static_cast<double>(route->nodes_expanded));
      algo.cost.Add(route->cost_seconds);
      algo.micros.Add(us);
    }
  }

  std::printf("\n  %-10s %-18s %-16s %-14s %s\n", "algorithm",
              "mean expansions", "mean cost (s)", "mean time (us)",
              "failures");
  for (const Algo& algo : algos) {
    std::printf("  %-10s %-18.1f %-16.2f %-14.1f %d\n", algo.name,
                algo.expansions.mean(), algo.cost.mean(),
                algo.micros.mean(), algo.failures);
  }
  double dijkstra_exp = algos[0].expansions.mean();
  bench::PrintRow("BHPS expansions vs Dijkstra", "fewer",
                  bench::Fmt("%.2fx", algos[2].expansions.mean() /
                                          dijkstra_exp));
  bench::PrintRow("BHPS route cost vs Dijkstra", "equal",
                  bench::Fmt("%+.3f%%", (algos[2].cost.mean() /
                                             algos[0].cost.mean() -
                                         1.0) *
                                            100.0));
  std::printf("\n");
  return algos[2].expansions.mean() < dijkstra_exp ? 0 : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
