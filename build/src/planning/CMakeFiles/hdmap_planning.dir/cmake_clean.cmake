file(REMOVE_RECURSE
  "CMakeFiles/hdmap_planning.dir/frenet_planner.cc.o"
  "CMakeFiles/hdmap_planning.dir/frenet_planner.cc.o.d"
  "CMakeFiles/hdmap_planning.dir/pcc.cc.o"
  "CMakeFiles/hdmap_planning.dir/pcc.cc.o.d"
  "CMakeFiles/hdmap_planning.dir/pure_pursuit.cc.o"
  "CMakeFiles/hdmap_planning.dir/pure_pursuit.cc.o.d"
  "CMakeFiles/hdmap_planning.dir/route_planner.cc.o"
  "CMakeFiles/hdmap_planning.dir/route_planner.cc.o.d"
  "CMakeFiles/hdmap_planning.dir/speed_profile.cc.o"
  "CMakeFiles/hdmap_planning.dir/speed_profile.cc.o.d"
  "libhdmap_planning.a"
  "libhdmap_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmap_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
