#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "common/rng.h"
#include "geometry/grid_index.h"
#include "geometry/kd_tree.h"
#include "geometry/r_tree.h"

namespace hdmap {
namespace {

std::vector<KdTree::Entry> RandomPoints(int n, Rng& rng) {
  std::vector<KdTree::Entry> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    entries.push_back(
        {{rng.Uniform(-100, 100), rng.Uniform(-100, 100)}, i + 1});
  }
  return entries;
}

int64_t BruteNearest(const std::vector<KdTree::Entry>& entries,
                     const Vec2& q) {
  double best = std::numeric_limits<double>::max();
  int64_t id = 0;
  for (const auto& e : entries) {
    double d = e.point.SquaredDistanceTo(q);
    if (d < best) {
      best = d;
      id = e.id;
    }
  }
  return id;
}

class KdTreeParamTest : public ::testing::TestWithParam<int> {};

TEST_P(KdTreeParamTest, NearestMatchesBruteForce) {
  Rng rng(GetParam());
  auto entries = RandomPoints(GetParam() * 50 + 1, rng);
  KdTree tree(entries);
  for (int trial = 0; trial < 50; ++trial) {
    Vec2 q{rng.Uniform(-120, 120), rng.Uniform(-120, 120)};
    const KdTree::Entry* got = tree.Nearest(q);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->id, BruteNearest(entries, q));
  }
}

TEST_P(KdTreeParamTest, RadiusMatchesBruteForce) {
  Rng rng(GetParam() + 1000);
  auto entries = RandomPoints(GetParam() * 50 + 1, rng);
  KdTree tree(entries);
  for (int trial = 0; trial < 20; ++trial) {
    Vec2 q{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    double r = rng.Uniform(5, 40);
    auto got = tree.RadiusSearch(q, r);
    std::set<int64_t> got_ids;
    for (const auto& e : got) got_ids.insert(e.id);
    std::set<int64_t> want_ids;
    for (const auto& e : entries) {
      if (e.point.DistanceTo(q) <= r) want_ids.insert(e.id);
    }
    EXPECT_EQ(got_ids, want_ids);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdTreeParamTest,
                         ::testing::Values(1, 2, 5, 10, 20));

TEST(KdTreeTest, EmptyTree) {
  KdTree tree;
  EXPECT_EQ(tree.Nearest({0, 0}), nullptr);
  EXPECT_TRUE(tree.RadiusSearch({0, 0}, 10).empty());
  EXPECT_TRUE(tree.KNearest({0, 0}, 3).empty());
}

TEST(KdTreeTest, KNearestOrderedByDistance) {
  std::vector<KdTree::Entry> entries = {
      {{0, 0}, 1}, {{1, 0}, 2}, {{2, 0}, 3}, {{3, 0}, 4}, {{10, 0}, 5}};
  KdTree tree(entries);
  auto knn = tree.KNearest({0.1, 0}, 3);
  ASSERT_EQ(knn.size(), 3u);
  EXPECT_EQ(knn[0].id, 1);
  EXPECT_EQ(knn[1].id, 2);
  EXPECT_EQ(knn[2].id, 3);
}

TEST(KdTreeTest, KNearestWithKLargerThanSize) {
  std::vector<KdTree::Entry> entries = {{{0, 0}, 1}, {{1, 0}, 2}};
  KdTree tree(entries);
  EXPECT_EQ(tree.KNearest({0, 0}, 10).size(), 2u);
}

class RTreeParamTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeParamTest, QueryMatchesBruteForce) {
  Rng rng(GetParam());
  std::vector<RTree::Entry> entries;
  int n = GetParam() * 40 + 1;
  for (int i = 0; i < n; ++i) {
    Vec2 c{rng.Uniform(-200, 200), rng.Uniform(-200, 200)};
    Vec2 half{rng.Uniform(0.5, 10), rng.Uniform(0.5, 10)};
    entries.push_back({Aabb(c - half, c + half), i + 1});
  }
  RTree tree(entries);
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  for (int trial = 0; trial < 30; ++trial) {
    Vec2 c{rng.Uniform(-200, 200), rng.Uniform(-200, 200)};
    Vec2 half{rng.Uniform(1, 50), rng.Uniform(1, 50)};
    Aabb q(c - half, c + half);
    auto got = tree.Query(q);
    std::set<int64_t> got_ids(got.begin(), got.end());
    std::set<int64_t> want_ids;
    for (const auto& e : entries) {
      if (e.box.Intersects(q)) want_ids.insert(e.id);
    }
    EXPECT_EQ(got_ids, want_ids);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeParamTest,
                         ::testing::Values(1, 3, 8, 25));

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.Query(Aabb({-1, -1}, {1, 1})).empty());
  EXPECT_TRUE(tree.empty());
}

TEST(RTreeTest, QueryPoint) {
  std::vector<RTree::Entry> entries = {{Aabb({0, 0}, {10, 10}), 1},
                                       {Aabb({20, 20}, {30, 30}), 2}};
  RTree tree(entries);
  auto hits = tree.QueryPoint({5, 5});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1);
  EXPECT_TRUE(tree.QueryPoint({15, 15}).empty());
}

TEST(GridIndexTest, InsertQueryRemove) {
  GridIndex index(5.0);
  index.Insert({1, 1}, 10);
  index.Insert({2, 2}, 20);
  index.Insert({50, 50}, 30);
  EXPECT_EQ(index.size(), 3u);
  auto near = index.RadiusSearch({0, 0}, 5.0);
  EXPECT_EQ(near.size(), 2u);
  EXPECT_TRUE(index.Remove({1, 1}, 10));
  EXPECT_FALSE(index.Remove({1, 1}, 10));
  EXPECT_EQ(index.RadiusSearch({0, 0}, 5.0).size(), 1u);
}

TEST(GridIndexTest, RadiusBoundaryExact) {
  GridIndex index(10.0);
  index.Insert({3, 4}, 1);  // Distance 5 from origin.
  EXPECT_EQ(index.RadiusSearch({0, 0}, 5.0).size(), 1u);
  EXPECT_EQ(index.RadiusSearch({0, 0}, 4.99).size(), 0u);
}

TEST(GridIndexTest, NegativeCoordinates) {
  GridIndex index(10.0);
  index.Insert({-95, -95}, 7);
  auto got = index.RadiusSearch({-94, -94}, 3.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 7);
}

}  // namespace
}  // namespace hdmap
