# Empty compiler generated dependencies file for bench_e10_incremental_fusion.
# This may be replaced when dependencies are built.
