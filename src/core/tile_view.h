#ifndef HDMAP_CORE_TILE_VIEW_H_
#define HDMAP_CORE_TILE_VIEW_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/elements.h"
#include "core/hd_map.h"
#include "core/ids.h"
#include "core/pinned_bytes.h"
#include "geometry/line_string.h"
#include "geometry/vec2.h"
#include "geometry/vec3.h"

namespace hdmap {

// ---------------------------------------------------------------------------
// Tile format v3: an offset-table layout where the wire-framed bytes ARE
// the queryable representation. The payload (inside the standard CRC32
// wire frame) is:
//
//   header   u32 magic "HDM3" | u32 version=3 | u32 num_sections=7 |
//            u32 reserved | 7 x {u32 count, u32 offset, u32 length} |
//            4 pad bytes  -> 104 bytes, 8-aligned end
//   sections landmarks, line_features, area_features, lanelets,
//            regulatory_elements, lane_bundles, map_nodes — strictly
//            contiguous, in that order, covering the rest of the payload
//
// Each section is a slot table of (count+1) u32 element-start offsets
// (off[0] == 0, strictly non-decreasing, relative to the section's data
// base) padded to an 8-byte boundary, followed by the element records.
// Every record size is a multiple of 8, so all fixed-width fields inside
// records sit at their natural alignment (loads still go through memcpy:
// the payload itself — e.g. an mmap'd checkpoint at an arbitrary file
// offset — is only guaranteed 8-aligned relative to the payload start).
//
// TileView::Create validates the whole structure in one O(elements)
// header pass — section contiguity, offset monotonicity, exact record
// sizes against the counts in each record's fixed header, strictly
// ascending ids per section — and fails closed (kDataLoss) on any
// violation. After Create succeeds, every accessor is a bounds-safe
// pointer offset: no per-read validation, no allocation, no copy.
// ---------------------------------------------------------------------------

/// Payload magic "HDM3" (little-endian), distinct from the v1 full
/// ("HDMF") and compact ("HDMC") magics so DeserializeMap can dispatch.
inline constexpr uint32_t kTileV3Magic = 0x334D4448;
inline constexpr uint32_t kTileV3Version = 3;

/// True when `bytes` carries a v3 payload — either bare or inside a wire
/// frame. Says nothing about integrity (use TileView::Create for that).
bool IsTileV3(std::string_view bytes);

/// Encodes `map` as a framed v3 tile. Byte-deterministic: output is a
/// pure function of the map contents (elements iterate in id order).
std::string EncodeTileV3(const HdMap& map);

/// Whether TileView::Create re-verifies the frame CRC32. kTrust skips the
/// checksum (structural validation still runs) — only for bytes verified
/// once per generation and immutable since, e.g. an mmap'd checkpoint
/// that was CRC-checked when the generation was opened.
enum class FrameChecksum { kVerify, kTrust };

/// In-place view of a packed little-endian array (i64 ids, f64 scalars).
/// Reads go through memcpy — safe at any alignment, UBSan-clean.
template <typename T>
class PackedView {
 public:
  PackedView() = default;
  PackedView(const uint8_t* data, size_t count) : data_(data), count_(count) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  T operator[](size_t i) const {
    T v;
    std::memcpy(&v, data_ + i * sizeof(T), sizeof(T));
    return v;
  }

  std::vector<T> ToVector() const {
    std::vector<T> out;
    out.reserve(count_);
    for (size_t i = 0; i < count_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  const uint8_t* data_ = nullptr;
  size_t count_ = 0;
};

/// In-place view of a packed polyline: `count` (f64 x, f64 y) pairs.
class PolylineView {
 public:
  PolylineView() = default;
  PolylineView(const uint8_t* data, size_t count) : data_(data), count_(count) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  Vec2 operator[](size_t i) const {
    double x, y;
    std::memcpy(&x, data_ + i * 16, sizeof(x));
    std::memcpy(&y, data_ + i * 16 + 8, sizeof(y));
    return {x, y};
  }

  Vec2 front() const { return (*this)[0]; }
  Vec2 back() const { return (*this)[count_ - 1]; }

  std::vector<Vec2> ToPoints() const;
  LineString ToLineString() const { return LineString(ToPoints()); }

 private:
  const uint8_t* data_ = nullptr;
  size_t count_ = 0;
};

// Element views: zero-size-state accessors over one validated record.
// Field offsets are fixed by the format (see tile_view.cc layout notes).

class LandmarkView {
 public:
  ElementId id() const;
  LandmarkType type() const;
  Vec3 position() const;
  double reflectivity() const;
  std::string_view subtype() const;
  Landmark Materialize() const;

 private:
  friend class TileView;
  explicit LandmarkView(const uint8_t* rec) : rec_(rec) {}
  const uint8_t* rec_;
};

class LineFeatureView {
 public:
  ElementId id() const;
  LineType type() const;
  double reflectivity() const;
  PolylineView geometry() const;
  size_t num_survey_points() const;
  Vec3 survey_point(size_t i) const;  // Stored as 3 x f32, like v1.
  LineFeature Materialize() const;

 private:
  friend class TileView;
  explicit LineFeatureView(const uint8_t* rec) : rec_(rec) {}
  const uint8_t* rec_;
};

class AreaFeatureView {
 public:
  ElementId id() const;
  AreaType type() const;
  PolylineView vertices() const;
  AreaFeature Materialize() const;

 private:
  friend class TileView;
  explicit AreaFeatureView(const uint8_t* rec) : rec_(rec) {}
  const uint8_t* rec_;
};

class LaneletView {
 public:
  ElementId id() const;
  ElementId left_boundary_id() const;
  ElementId right_boundary_id() const;
  ElementId left_neighbor() const;
  ElementId right_neighbor() const;
  ElementId bundle_id() const;
  double speed_limit_mps() const;
  PolylineView centerline() const;
  PackedView<double> elevation_profile() const;
  PackedView<ElementId> successors() const;
  PackedView<ElementId> predecessors() const;
  PackedView<ElementId> regulatory_ids() const;
  Lanelet Materialize() const;

 private:
  friend class TileView;
  explicit LaneletView(const uint8_t* rec) : rec_(rec) {}
  const uint8_t* rec_;
};

class RegulatoryElementView {
 public:
  ElementId id() const;
  RegulatoryType type() const;
  double speed_limit_mps() const;
  ElementId anchor_id() const;
  PackedView<ElementId> lanelet_ids() const;
  RegulatoryElement Materialize() const;

 private:
  friend class TileView;
  explicit RegulatoryElementView(const uint8_t* rec) : rec_(rec) {}
  const uint8_t* rec_;
};

class LaneBundleView {
 public:
  ElementId id() const;
  ElementId from_node() const;
  ElementId to_node() const;
  PackedView<ElementId> lanelet_ids() const;
  LaneBundle Materialize() const;

 private:
  friend class TileView;
  explicit LaneBundleView(const uint8_t* rec) : rec_(rec) {}
  const uint8_t* rec_;
};

class MapNodeView {
 public:
  ElementId id() const;
  Vec2 position() const;
  PackedView<ElementId> bundle_ids() const;
  MapNode Materialize() const;

 private:
  friend class TileView;
  explicit MapNodeView(const uint8_t* rec) : rec_(rec) {}
  const uint8_t* rec_;
};

/// Read API over one v3 tile. A TileView does NOT own the bytes it
/// reads: the caller keeps the backing buffer alive for the view's
/// lifetime (pair with PinnedBytes — see PinnedTileView — when the
/// buffer's lifetime is shared). Copying a TileView is free.
class TileView {
 public:
  /// Empty view (all counts 0). Useful as a member default; Create is
  /// the only way to get a view over actual bytes.
  TileView() = default;

  /// Validates `bytes` — a wire-framed v3 tile or a bare v3 payload —
  /// and returns a view over it. kDataLoss on any structural violation
  /// (fail closed: a successful Create guarantees every subsequent
  /// accessor stays in bounds). With FrameChecksum::kVerify (default)
  /// the frame CRC is checked too; kTrust skips only the checksum.
  static Result<TileView> Create(std::span<const uint8_t> bytes,
                                 FrameChecksum checksum = FrameChecksum::kVerify);
  static Result<TileView> Create(std::string_view bytes,
                                 FrameChecksum checksum = FrameChecksum::kVerify);

  size_t num_landmarks() const { return sections_[0].count; }
  size_t num_line_features() const { return sections_[1].count; }
  size_t num_area_features() const { return sections_[2].count; }
  size_t num_lanelets() const { return sections_[3].count; }
  size_t num_regulatory_elements() const { return sections_[4].count; }
  size_t num_lane_bundles() const { return sections_[5].count; }
  size_t num_map_nodes() const { return sections_[6].count; }
  size_t NumElements() const;

  LandmarkView landmark(size_t i) const { return LandmarkView(Slot(0, i)); }
  LineFeatureView line_feature(size_t i) const {
    return LineFeatureView(Slot(1, i));
  }
  AreaFeatureView area_feature(size_t i) const {
    return AreaFeatureView(Slot(2, i));
  }
  LaneletView lanelet(size_t i) const { return LaneletView(Slot(3, i)); }
  RegulatoryElementView regulatory_element(size_t i) const {
    return RegulatoryElementView(Slot(4, i));
  }
  LaneBundleView lane_bundle(size_t i) const {
    return LaneBundleView(Slot(5, i));
  }
  MapNodeView map_node(size_t i) const { return MapNodeView(Slot(6, i)); }

  /// Binary search by id (records are validated strictly ascending).
  std::optional<LaneletView> FindLanelet(ElementId id) const;
  std::optional<LandmarkView> FindLandmark(ElementId id) const;
  std::optional<LineFeatureView> FindLineFeature(ElementId id) const;

  /// Full decode into a heap HdMap — the residual path for callers that
  /// need mutation or spatial indexes. Equivalent to DeserializeMap on
  /// the v1 encoding of the same map.
  Result<HdMap> Materialize() const;

 private:
  struct Section {
    uint32_t count = 0;
    const uint8_t* table = nullptr;  // (count+1) u32 slot offsets.
    const uint8_t* data = nullptr;   // Element records.
  };

  const uint8_t* Slot(size_t section, size_t i) const {
    const Section& s = sections_[section];
    uint32_t off;
    std::memcpy(&off, s.table + i * 4, sizeof(off));
    return s.data + off;
  }

  Section sections_[7];
};

/// A TileView bundled with the pin that keeps its bytes alive. This is
/// what the zero-copy read paths hand out: hold the PinnedTileView and
/// the view stays valid across tile replaces, snapshot swaps, and
/// checkpoint retention-deletes (see PinnedBytes).
struct PinnedTileView {
  PinnedBytes bytes;
  TileView view;
};

}  // namespace hdmap

#endif  // HDMAP_CORE_TILE_VIEW_H_
