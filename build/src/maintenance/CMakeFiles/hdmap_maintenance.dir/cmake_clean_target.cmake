file(REMOVE_RECURSE
  "libhdmap_maintenance.a"
)
