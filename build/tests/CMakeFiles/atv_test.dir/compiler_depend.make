# Empty compiler generated dependencies file for atv_test.
# This may be replaced when dependencies are built.
