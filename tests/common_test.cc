#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace hdmap {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("lanelet 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "lanelet 42");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: lanelet 42");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

Status FailsInner() { return Status::Internal("inner"); }

Status PropagatesViaMacro() {
  HDMAP_RETURN_IF_ERROR(FailsInner());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(PropagatesViaMacro().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("none"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  HDMAP_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(QuarterViaMacro(7).ok());
  EXPECT_FALSE(QuarterViaMacro(6).ok());  // 6/2 = 3 is odd.
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(RngTest, NormalMoments) {
  Rng rng(42);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(42);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(42);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Categorical(weights) == 1) ++ones;
  }
  EXPECT_NEAR(ones / 10000.0, 0.75, 0.03);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(9);
  Rng child = parent.Fork();
  // Child stream does not simply mirror the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextU32() == child.NextU32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  // Sum of squared deviations from the mean (5.0) is 32.
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 32.0 / 7.0);          // Bessel-corrected.
  EXPECT_DOUBLE_EQ(s.population_variance(), 32.0 / 8.0);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(32.0 / 7.0));
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStatsTest, SampleVarianceExceedsPopulationVariance) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.population_variance(), 2.0 / 3.0);
  EXPECT_GT(s.variance(), s.population_variance());
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.population_variance(), 0.0);
}

TEST(RunningStatsTest, SingleSampleVarianceIsZero) {
  RunningStats s;
  s.Add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.population_variance(), 0.0);
}

TEST(StatisticsTest, PercentileAndMedian) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Median(v), 5.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_NEAR(Percentile(v, 90), 9.1, 1e-9);
  EXPECT_EQ(Percentile({}, 50), 0.0);
}

TEST(StatisticsTest, MeanAndRmse) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Rmse({3.0, 4.0}), std::sqrt(12.5));
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Rmse({}), 0.0);
}

TEST(HistogramTest, BinsAndOutOfRangeCounters) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  h.Add(-5.0);  // Below range: underflow, not bin 0.
  h.Add(50.0);  // Above range: overflow, not bin 9.
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 0u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  std::string ascii = h.ToAscii();
  EXPECT_NE(ascii.find("underflow"), std::string::npos);
  EXPECT_NE(ascii.find("overflow"), std::string::npos);
}

TEST(HistogramTest, HugeAndNanSamplesCountAsOverflow) {
  // Offsets past INT_MAX (and NaN) used to hit a UB double->int cast that
  // in practice produced a negative bin and wrote far out of bounds.
  Histogram h(0.0, 1.0, 4);
  h.Add(3e9);
  h.Add(std::numeric_limits<double>::infinity());
  h.Add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.overflow(), 3u);
  EXPECT_EQ(h.underflow(), 0u);
  for (int b = 0; b < h.num_bins(); ++b) EXPECT_EQ(h.bin_count(b), 0u);
}

TEST(HistogramTest, InRangeOnlyHistogramHasNoOverflowRows) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);
  h.Add(0.9);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  std::string ascii = h.ToAscii();
  EXPECT_EQ(ascii.find("underflow"), std::string::npos);
  EXPECT_EQ(ascii.find("overflow"), std::string::npos);
}

TEST(HistogramTest, DegenerateRangeDoesNotDivideByZero) {
  Histogram h(5.0, 5.0, 4);  // hi <= lo: falls back to unit-width bins.
  h.Add(5.0);
  h.Add(4.0);
  h.Add(100.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);

  Histogram no_bins(0.0, 1.0, 0);  // num_bins < 1: one bin.
  no_bins.Add(0.5);
  EXPECT_EQ(no_bins.num_bins(), 1);
  EXPECT_EQ(no_bins.bin_count(0), 1u);
}

TEST(BinaryConfusionTest, Rates) {
  BinaryConfusion c;
  // 8 actual positives: 7 detected; 12 actual negatives: 9 rejected.
  for (int i = 0; i < 7; ++i) c.Add(true, true);
  c.Add(false, true);
  for (int i = 0; i < 9; ++i) c.Add(false, false);
  for (int i = 0; i < 3; ++i) c.Add(true, false);
  EXPECT_DOUBLE_EQ(c.Sensitivity(), 7.0 / 8.0);
  EXPECT_DOUBLE_EQ(c.Specificity(), 9.0 / 12.0);
  EXPECT_DOUBLE_EQ(c.Precision(), 7.0 / 10.0);
  EXPECT_DOUBLE_EQ(c.Accuracy(), 16.0 / 20.0);
  EXPECT_GT(c.F1(), 0.7);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}, size_t{0}}) {
    std::vector<std::atomic<int>> touched(257);
    ParallelFor(
        touched.size(),
        [&](size_t i) { touched[i].fetch_add(1); }, threads);
    for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
  }
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  int calls = 0;
  ParallelFor(0, [&](size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
  ParallelFor(1, [&](size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, CurrentWorkerPoolIdentifiesOwningPool) {
  ThreadPool pool(2);
  EXPECT_EQ(ThreadPool::CurrentWorkerPool(), nullptr);
  std::atomic<ThreadPool*> seen{nullptr};
  pool.Submit([&seen] { seen.store(ThreadPool::CurrentWorkerPool()); });
  pool.Wait();
  EXPECT_EQ(seen.load(), &pool);
  EXPECT_EQ(ThreadPool::CurrentWorkerPool(), nullptr);
}

TEST(ThreadPoolDeathTest, WaitFromOwnWorkerAbortsWithDiagnostic) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // Before the worker-marker check this silently deadlocked: the waiting
  // task occupies the only worker that could drain the queue. It must
  // now fail fast with an actionable message instead.
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.Submit([&pool] { pool.Wait(); });
        pool.Wait();
      },
      "Wait\\(\\) called from a worker thread of the same pool");
}

TEST(ParallelForTest, RunsSerialInsidePoolWorker) {
  // A ParallelFor issued from inside any pool worker is one lane of an
  // enclosing fan-out: it must run inline on the calling thread (bounded
  // threads, no shared-pool deadlock), not fan out again.
  ThreadPool pool(2);
  std::atomic<int> on_calling_pool{0};
  std::atomic<int> total{0};
  pool.Submit([&] {
    ParallelFor(
        64,
        [&](size_t) {
          total.fetch_add(1);
          if (ThreadPool::CurrentWorkerPool() == &pool) {
            on_calling_pool.fetch_add(1);
          }
        },
        8);
  });
  pool.Wait();
  EXPECT_EQ(total.load(), 64);
  // Every iteration ran on the submitting pool's own worker thread —
  // none escaped to the shared ParallelFor pool or fresh threads.
  EXPECT_EQ(on_calling_pool.load(), 64);
}

TEST(ParallelForTest, NestedCallsCompleteWithBoundedThreads) {
  // Regression for nested oversubscription: the old implementation
  // spawned fresh std::threads per call and per nesting level (outer x
  // inner threads); the shared-pool implementation keeps every fn
  // execution on the one process-wide pool, whose size is fixed. A
  // saturated outer fan-out plus nested inner calls must also not
  // deadlock (inner calls run serial on their worker).
  std::set<std::thread::id> fn_threads;
  std::mutex mu;
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 32;
  std::atomic<size_t> total{0};
  ParallelFor(
      kOuter,
      [&](size_t) {
        ParallelFor(
            kInner,
            [&](size_t) {
              total.fetch_add(1);
              std::lock_guard<std::mutex> lock(mu);
              fn_threads.insert(std::this_thread::get_id());
            },
            8);
      },
      8);
  EXPECT_EQ(total.load(), kOuter * kInner);
  // All iterations ran on shared-pool workers (at most
  // hardware_concurrency of them), not on kOuter * kInner / chunk fresh
  // threads. The caller thread may appear once via the serial fallback.
  size_t hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_LE(fn_threads.size(), hw + 1);
}

TEST(ParallelForTest, ConcurrentCallersShareOnePool) {
  // K threads each issuing ParallelFor concurrently must share the one
  // process-wide pool instead of spawning K x num_threads workers.
  constexpr size_t kCallers = 8;
  std::set<std::thread::id> fn_threads;
  std::mutex mu;
  std::atomic<size_t> total{0};
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      ParallelFor(
          128,
          [&](size_t) {
            total.fetch_add(1);
            std::lock_guard<std::mutex> lock(mu);
            fn_threads.insert(std::this_thread::get_id());
          },
          8);
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * 128);
  size_t hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_LE(fn_threads.size(), hw);
}

TEST(ParallelForTest, ResultIndependentOfThreadCount) {
  std::vector<double> in(1000);
  std::iota(in.begin(), in.end(), 0.0);
  auto run = [&](size_t threads) {
    std::vector<double> out(in.size());
    ParallelFor(
        in.size(), [&](size_t i) { out[i] = std::sqrt(in[i]) * 3.0; },
        threads);
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(UnitsTest, Conversions) {
  EXPECT_NEAR(DegToRad(180.0), std::numbers::pi, 1e-12);
  EXPECT_NEAR(RadToDeg(std::numbers::pi / 2), 90.0, 1e-12);
  EXPECT_NEAR(KphToMps(36.0), 10.0, 1e-12);
  EXPECT_NEAR(MpsToKph(10.0), 36.0, 1e-12);
}

TEST(UnitsTest, WrapAngle) {
  EXPECT_NEAR(WrapAngle(3 * std::numbers::pi), std::numbers::pi, 1e-9);
  EXPECT_NEAR(WrapAngle(-3 * std::numbers::pi), std::numbers::pi, 1e-9);
  EXPECT_NEAR(WrapAngle(0.5), 0.5, 1e-12);
  EXPECT_NEAR(AngleDiff(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(AngleDiff(-3.0, 3.0), 2 * std::numbers::pi - 6.0, 1e-9);
}

}  // namespace
}  // namespace hdmap
