#include "perception/cooperative.h"

#include <algorithm>
#include <cmath>

namespace hdmap {

void ObjectTracker::PredictTo(double t) {
  for (auto& [id, track] : tracks_) {
    double dt = t - track.last_t;
    if (dt <= 0.0) continue;
    track.position += track.velocity * dt;
    double q = options_.process_accel_sigma * options_.process_accel_sigma;
    // CV-model covariance growth (per-axis, isotropic approximation).
    track.pos_variance += track.vel_variance * dt * dt +
                          0.25 * q * dt * dt * dt * dt;
    track.vel_variance += q * dt * dt;
    track.last_t = t;
  }
}

void ObjectTracker::Fuse(const ObjectMeasurement& measurement, double t) {
  auto it = tracks_.find(measurement.object_id);
  if (it == tracks_.end()) {
    TrackState track;
    track.position = measurement.position;
    track.velocity = {0.0, 0.0};
    track.pos_variance = measurement.noise_sigma * measurement.noise_sigma;
    track.vel_variance = 4.0;
    track.last_t = t;
    tracks_[measurement.object_id] = track;
    return;
  }
  TrackState& track = it->second;
  double dt = t - track.last_t;
  if (dt > 0.0) {
    track.position += track.velocity * dt;
    double q = options_.process_accel_sigma * options_.process_accel_sigma;
    track.pos_variance += track.vel_variance * dt * dt +
                          0.25 * q * dt * dt * dt * dt;
    track.vel_variance += q * dt * dt;
    track.last_t = t;
  }
  double r2 = measurement.noise_sigma * measurement.noise_sigma;
  double k = track.pos_variance / (track.pos_variance + r2);
  Vec2 innovation = measurement.position - track.position;
  track.position += innovation * k;
  // Velocity pseudo-update: innovation over the prediction interval
  // informs velocity (simplified cross-covariance gain).
  if (dt > 1e-3) {
    double kv = std::min(0.5, k / dt);
    track.velocity += innovation * kv;
  }
  track.pos_variance *= (1.0 - k);
}

const ObjectTracker::TrackState* ObjectTracker::Find(int object_id) const {
  auto it = tracks_.find(object_id);
  return it == tracks_.end() ? nullptr : &it->second;
}

}  // namespace hdmap
