# Empty compiler generated dependencies file for autonomous_drive.
# This may be replaced when dependencies are built.
