# Empty dependencies file for hdmap_atv.
# This may be replaced when dependencies are built.
