#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"
#include "pose/factor_graph.h"
#include "pose/pose_estimator.h"
#include "sim/road_network_generator.h"
#include "sim/sensors.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

TEST(PoseEstimatorTest, FlatRoadGivesFlatPose) {
  HdMap map = StraightRoad();
  Pose3 pose = CompleteTo6Dof(map, Pose2(100.0, -1.75, 0.0));
  EXPECT_NEAR(pose.pitch, 0.0, 1e-6);
  EXPECT_NEAR(pose.roll, 0.0, 1e-6);
  EXPECT_NEAR(pose.translation.z, 0.0, 1e-6);
  EXPECT_NEAR(pose.yaw, 0.0, 1e-9);
}

TEST(PoseEstimatorTest, OffMapFallsBackToFlat) {
  HdMap map = StraightRoad();
  Pose3 pose = CompleteTo6Dof(map, Pose2(5000.0, 5000.0, 0.5));
  EXPECT_EQ(pose.pitch, 0.0);
  EXPECT_EQ(pose.translation.z, 0.0);
  EXPECT_NEAR(pose.yaw, 0.5, 1e-9);
}

TEST(PoseEstimatorTest, HillyHighwayGivesPitchAndElevation) {
  Rng rng(61);
  HighwayOptions opt;
  opt.length = 4000.0;
  opt.hill_amplitude = 30.0;
  opt.hill_wavelength = 1500.0;
  auto hw = GenerateHighway(opt, rng);
  ASSERT_TRUE(hw.ok());

  // Find a climbing station on a forward lanelet.
  const Lanelet* lane = nullptr;
  double climb_s = 0.0;
  for (const auto& [id, ll] : hw->lanelets()) {
    for (double s = 10.0; s < ll.Length() - 10.0; s += 20.0) {
      if (ll.GradeAt(s) > 0.03) {
        lane = &ll;
        climb_s = s;
        break;
      }
    }
    if (lane != nullptr) break;
  }
  ASSERT_NE(lane, nullptr);
  Pose2 planar(lane->centerline.PointAt(climb_s),
               lane->centerline.HeadingAt(climb_s));
  Pose3 pose = CompleteTo6Dof(*hw, planar);
  // Climbing: nose up = negative pitch in the Z-Y-X convention used.
  EXPECT_LT(pose.pitch, -0.01);
  EXPECT_NEAR(pose.translation.z, lane->ElevationAt(climb_s), 0.8);

  // Driving the opposite direction at the same spot pitches the other
  // way.
  Pose2 reversed(planar.translation, planar.heading + std::numbers::pi);
  Pose3 back = CompleteTo6Dof(*hw, reversed);
  EXPECT_GT(back.pitch, 0.01);
}

TEST(SlidingWindowTest, BeatsDeadReckoningOnStraightRoad) {
  HdMap map = StraightRoad(600.0, 40.0);
  Rng rng(62);
  OdometrySensor odo({});
  LandmarkDetector::Options det_opt;
  det_opt.clutter_rate = 0.05;
  LandmarkDetector detector(det_opt);

  SlidingWindowEstimator estimator(&map, {});
  Pose2 truth(10.0, -1.75, 0.0);
  estimator.Init(truth);
  Pose2 dead_reckon = truth;
  RunningStats est_err, dr_err;
  for (int step = 0; step < 200; ++step) {
    Pose2 next(truth.translation + Vec2{1.5, 0.0}, 0.0);
    auto delta = odo.Measure(truth, next, rng);
    truth = next;
    double mid = dead_reckon.heading + delta.heading_change / 2;
    dead_reckon =
        Pose2(dead_reckon.translation +
                  Vec2{std::cos(mid), std::sin(mid)} * delta.distance,
              dead_reckon.heading + delta.heading_change);
    estimator.AddFrame(delta.distance, delta.heading_change,
                       detector.Detect(map, truth, rng));
    if (step > 60) {
      est_err.Add(
          estimator.Estimate().translation.DistanceTo(truth.translation));
      dr_err.Add(dead_reckon.translation.DistanceTo(truth.translation));
    }
  }
  EXPECT_LT(est_err.mean(), dr_err.mean());
  EXPECT_LT(est_err.mean(), 1.0);
  EXPECT_GT(estimator.inlier_fraction(), 0.5);
}

TEST(SlidingWindowTest, MaxMixtureShrugsOffClutter) {
  HdMap map = StraightRoad(600.0, 40.0);
  Rng rng(63);
  OdometrySensor odo({});
  LandmarkDetector::Options det_opt;
  det_opt.clutter_rate = 0.0;
  LandmarkDetector detector(det_opt);

  SlidingWindowEstimator estimator(&map, {});
  Pose2 truth(10.0, -1.75, 0.0);
  estimator.Init(truth);
  RunningStats est_err;
  bool saw_outlier_rejection = false;
  for (int step = 0; step < 150; ++step) {
    Pose2 next(truth.translation + Vec2{1.5, 0.0}, 0.0);
    auto delta = odo.Measure(truth, next, rng);
    truth = next;
    auto detections = detector.Detect(map, truth, rng);
    // Adversarial clutter: every real detection gains a corrupted twin
    // displaced a few meters — close enough to pass the association
    // gate, wrong enough that accepting it would bias the solution.
    std::vector<LandmarkDetection> corrupted = detections;
    for (const auto& det : detections) {
      LandmarkDetection ghost = det;
      ghost.position_vehicle += Vec2{2.5, -2.0};
      ghost.is_clutter = true;
      corrupted.push_back(ghost);
    }
    estimator.AddFrame(delta.distance, delta.heading_change, corrupted);
    if (estimator.inlier_fraction() < 1.0) saw_outlier_rejection = true;
    if (step > 50) {
      est_err.Add(
          estimator.Estimate().translation.DistanceTo(truth.translation));
    }
  }
  // The ghosts must not blow up the estimate...
  EXPECT_LT(est_err.mean(), 1.5);
  // ...and the max-mixture actually resolved factors to the outlier mode.
  EXPECT_TRUE(saw_outlier_rejection);
}

TEST(SlidingWindowTest, WindowSizeIsBounded) {
  HdMap map = StraightRoad();
  SlidingWindowEstimator::Options opt;
  opt.window_size = 5;
  SlidingWindowEstimator estimator(&map, opt);
  estimator.Init(Pose2(0, -1.75, 0));
  for (int i = 0; i < 20; ++i) {
    estimator.AddFrame(1.0, 0.0, {});
  }
  EXPECT_LE(estimator.window_size(), 5u);
}

}  // namespace
}  // namespace hdmap
