#include "replication/failover_controller.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace hdmap {

FailoverController::FailoverController(Options options)
    : opts_(options), events_(opts_.event_log_capacity) {
  if (opts_.metrics != nullptr) {
    failovers_ = opts_.metrics->GetCounter("repl.failovers");
    degraded_window_ms_ =
        opts_.metrics->GetGauge("repl.failover.last_degraded_window_ms");
  }
}

FailoverController::~FailoverController() { Stop(); }

void FailoverController::AddNode(ReplicationNode* node) {
  nodes_.push_back(node);
}

Status FailoverController::Start() {
  if (nodes_.empty()) {
    return Status::InvalidArgument("no nodes registered");
  }
  ReplicationNode* first = nullptr;
  for (ReplicationNode* node : nodes_) {
    if (node->alive() && (first == nullptr ||
                          node->node_id() < first->node_id())) {
      first = node;
    }
  }
  if (first == nullptr) {
    return Status::FailedPrecondition("no alive node to bootstrap from");
  }
  term_.store(1);
  first->BecomeLeader(1, ReachablePeersOf(first));
  {
    std::lock_guard<std::mutex> lock(mu_);
    leader_id_ = first->node_id();
    leaders_by_term_[1] = first->node_id();
  }
  events_.Append(EventLog::Type::kFailoverComplete, 0,
                 "bootstrap: node " + std::to_string(first->node_id()) +
                     " is leader for term 1");
  stopping_.store(false);
  monitor_ = std::thread([this] { MonitorLoop(); });
  return Status::Ok();
}

void FailoverController::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_.store(true);
  }
  stop_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

ReplicationNode* FailoverController::leader() const {
  int id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = leader_id_;
  }
  for (ReplicationNode* node : nodes_) {
    if (node->node_id() == id) return node;
  }
  return nullptr;
}

double FailoverController::last_degraded_window_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_degraded_window_ms_;
}

std::map<uint64_t, int> FailoverController::LeadersByTerm() const {
  std::lock_guard<std::mutex> lock(mu_);
  return leaders_by_term_;
}

std::vector<WalShipper::FollowerInfo> FailoverController::ReachablePeersOf(
    const ReplicationNode* leader) const {
  std::vector<WalShipper::FollowerInfo> peers;
  for (ReplicationNode* node : nodes_) {
    if (node == leader || !node->alive() || node->partitioned()) continue;
    WalShipper::FollowerInfo info;
    info.node_id = node->node_id();
    info.host = node->host();
    info.port = node->port();
    peers.push_back(info);
  }
  return peers;
}

void FailoverController::MonitorLoop() {
  while (!stopping_.load()) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      stop_cv_.wait_for(lock,
                        std::chrono::milliseconds(opts_.poll_interval_ms),
                        [this] { return stopping_.load(); });
    }
    if (stopping_.load()) break;
    Evaluate();
  }
}

void FailoverController::Evaluate() {
  ReplicationNode* current = leader();
  if (current == nullptr) return;

  // Split-brain audit: a second live leader for a claimed term would mean
  // fencing failed. (A deposed leader still on an OLD term is expected
  // until it hears the new one; each term has exactly one rightful
  // holder, which is what we check.)
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ReplicationNode* node : nodes_) {
      if (!node->alive() || node->role() != ReplicationNode::Role::kLeader) {
        continue;
      }
      auto it = leaders_by_term_.find(node->term());
      if (it != leaders_by_term_.end() && it->second != node->node_id()) {
        split_brain_observed_.fetch_add(1);
      }
    }
  }

  // Detection: the leader process is gone, or every alive follower has
  // been without leader contact for longer than the timeout (the
  // heartbeat-silence signal — covers a partitioned or wedged leader).
  bool dead = !current->alive();
  double silence_ms = 0.0;
  if (!dead) {
    double min_staleness = -1.0;
    size_t alive_followers = 0;
    for (ReplicationNode* node : nodes_) {
      if (node == current || !node->alive()) continue;
      ++alive_followers;
      double staleness = node->MsSinceLeaderContact();
      if (min_staleness < 0.0 || staleness < min_staleness) {
        min_staleness = staleness;
      }
    }
    if (alive_followers > 0 && min_staleness > opts_.leader_timeout_ms) {
      dead = true;
      silence_ms = min_staleness;
    }
  }

  if (dead) {
    Promote(current, silence_ms);
    return;
  }

  // Steady state: heal membership — restarted or un-partitioned nodes
  // rejoin the leader's follower set (and get re-shipped or snapshotted
  // back into sync).
  for (const WalShipper::FollowerInfo& peer : ReachablePeersOf(current)) {
    if (!current->HasFollower(peer.node_id)) current->AddFollower(peer);
  }
}

void FailoverController::Promote(ReplicationNode* dead_leader,
                                 double silence_ms) {
  auto detected = std::chrono::steady_clock::now();

  // Nothing to do unless some follower is reachable (don't burn a term
  // or depose a live leader when there is no one to promote).
  bool have_candidate = false;
  for (ReplicationNode* node : nodes_) {
    if (node != dead_leader && node->alive() && !node->partitioned()) {
      have_candidate = true;
      break;
    }
  }
  if (!have_candidate) return;  // keep watching

  uint64_t new_term = 0;
  for (ReplicationNode* node : nodes_) {
    new_term = std::max(new_term, node->term());
  }
  new_term = std::max(new_term, term_.load()) + 1;

  // Fence FIRST, then choose. A falsely-dead leader (silent heartbeats,
  // live write path) keeps acking writes while this promotion runs; if
  // the candidate were chosen before every reachable node rejects the
  // old term, records acked during the promote window could land only
  // on a non-candidate and be truncated by the new leader's history —
  // acked-write loss. After the fence, applied seqs are final for the
  // old term, so the max-applied candidate provably holds every acked
  // write.
  if (dead_leader->alive() && !dead_leader->partitioned()) {
    dead_leader->StepDown(new_term);
  }
  for (ReplicationNode* node : nodes_) {
    if (node == dead_leader || !node->alive() || node->partitioned()) continue;
    node->FenceTerm(new_term);
  }

  // Candidates: every reachable node — including the deposed leader
  // when it is alive and unpartitioned (heartbeats lost, node fine).
  // An alive old leader holds every acked write by definition, so
  // excluding it would let a behind follower win the election and
  // truncate acked records out of the only node that has them.
  // Most-caught-up wins; ties go to the lowest node id so the choice
  // is deterministic.
  ReplicationNode* best = nullptr;
  uint64_t best_seq = 0;
  for (ReplicationNode* node : nodes_) {
    if (!node->alive() || node->partitioned()) continue;
    uint64_t seq = node->applied_seq();
    if (best == nullptr || seq > best_seq ||
        (seq == best_seq && node->node_id() < best->node_id())) {
      best = node;
      best_seq = seq;
    }
  }
  if (best == nullptr) return;  // raced a kill/partition; keep watching

  events_.Append(
      EventLog::Type::kFailoverDetected, 0,
      "leader node " + std::to_string(dead_leader->node_id()) +
          (dead_leader->alive()
               ? " silent for " + std::to_string(silence_ms) + "ms"
               : " is down") +
          "; promoting node " + std::to_string(best->node_id()) +
          " at term " + std::to_string(new_term));

  best->BecomeLeader(new_term, ReachablePeersOf(best));
  if (best != dead_leader && dead_leader->alive() &&
      !dead_leader->partitioned()) {
    // Already stepped down by the fence above; rejoin as a follower (it
    // will be repaired by snapshot before applying anything).
    best->AddFollower({dead_leader->node_id(), dead_leader->host(),
                       dead_leader->port()});
  }

  term_.store(new_term);
  double window_ms =
      silence_ms + std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - detected)
                       .count();
  {
    std::lock_guard<std::mutex> lock(mu_);
    leader_id_ = best->node_id();
    leaders_by_term_[new_term] = best->node_id();
    last_degraded_window_ms_ = window_ms;
  }
  failover_count_.fetch_add(1);
  if (failovers_ != nullptr) failovers_->Increment();
  if (degraded_window_ms_ != nullptr) degraded_window_ms_->Set(window_ms);
  events_.Append(EventLog::Type::kFailoverComplete, 0,
                 "node " + std::to_string(best->node_id()) +
                     " is leader for term " + std::to_string(new_term) +
                     "; degraded window " + std::to_string(window_ms) + "ms");
}

}  // namespace hdmap
