// Unit tests for the durability layer: SnapshotStore checkpoints (atomic
// write, validation at load, fallback, retention) and the PatchWal
// (append/replay, torn tails, corrupt records, reset).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "core/serialization.h"
#include "core/tile_store.h"
#include "storage/fs_util.h"
#include "storage/patch_wal.h"
#include "storage/snapshot_store.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

namespace fs = std::filesystem;

/// A fresh empty directory under the test temp root, removed on scope
/// exit. Each test gets its own so runs never see each other's state.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag) {
    path_ = fs::path(::testing::TempDir()) /
            ("hdmap_storage_test_" + tag + "_" +
             std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

TileStore BuildTiles(const HdMap& map, double tile_size = 100.0,
                     TileFormat format = TileStore::Options{}.format) {
  TileStore store(
      TileStore::Options{.tile_size_m = tile_size, .format = format});
  EXPECT_TRUE(store.Build(map).ok());
  return store;
}

MapPatch MovePatch(ElementId id, const Vec3& to) {
  MapPatch patch;
  patch.moved_landmarks.push_back({id, to});
  return patch;
}

/// Flips one byte in the middle of `file`.
void CorruptFile(const fs::path& file) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << file;
  f.seekg(0, std::ios::end);
  auto size = static_cast<std::streamoff>(f.tellg());
  ASSERT_GT(size, 0);
  f.seekg(size / 2);
  char c = 0;
  f.read(&c, 1);
  f.seekp(size / 2);
  c = static_cast<char>(c ^ 0x5a);
  f.write(&c, 1);
}

void TruncateFile(const fs::path& file, uint64_t drop_bytes) {
  auto size = fs::file_size(file);
  ASSERT_GT(size, drop_bytes);
  fs::resize_file(file, size - drop_bytes);
}

// --- SnapshotStore ---

TEST(SnapshotStoreTest, WriteAndLoadRoundtrip) {
  ScopedTempDir dir("roundtrip");
  HdMap world = StraightRoad(500.0);
  TileStore tiles = BuildTiles(world);

  SnapshotStore store({.data_dir = dir.str(), .fsync = FsyncMode::kNever});
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 7, 123456789).ok());
  EXPECT_EQ(store.ListCheckpoints(), std::vector<uint64_t>{7});

  auto rec = store.LoadCheckpoint(7, TileStore::Options{});
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->version, 7u);
  EXPECT_EQ(rec->published_unix_ms, 123456789);
  // Bit-exact restore: the recovered store serves the same bytes, with
  // the tile size coming from the manifest, not the caller's options.
  EXPECT_EQ(rec->tiles.tile_size(), tiles.tile_size());
  EXPECT_EQ(rec->tiles.RawTilesCopy(), tiles.RawTilesCopy());
  // And the stitched map is query-able.
  EXPECT_EQ(rec->map.landmarks().size(), world.landmarks().size());
  EXPECT_EQ(rec->map.lanelets().size(), world.lanelets().size());
}

TEST(SnapshotStoreTest, CheckpointBytesAreDeterministic) {
  HdMap world = StraightRoad(400.0);
  TileStore tiles = BuildTiles(world);

  auto checkpoint_bytes = [&](const std::string& root) {
    SnapshotStore store({.data_dir = root, .fsync = FsyncMode::kNever});
    EXPECT_TRUE(store.WriteCheckpoint(tiles, 3, 42).ok());
    std::map<std::string, std::string> files;
    for (const auto& entry :
         fs::recursive_directory_iterator(store.CheckpointDir(3))) {
      if (!entry.is_regular_file()) continue;
      auto bytes = ReadFileRaw(entry.path().string());
      EXPECT_TRUE(bytes.ok());
      files[entry.path().filename().string()] = std::move(bytes).value();
    }
    return files;
  };

  ScopedTempDir a("determinism_a");
  ScopedTempDir b("determinism_b");
  auto files_a = checkpoint_bytes(a.str());
  auto files_b = checkpoint_bytes(b.str());
  ASSERT_GT(files_a.size(), 1u);  // Tiles + manifest.
  EXPECT_EQ(files_a, files_b);
}

TEST(SnapshotStoreTest, RetentionKeepsNewestK) {
  ScopedTempDir dir("retention");
  TileStore tiles = BuildTiles(StraightRoad(300.0));
  SnapshotStore store(
      {.data_dir = dir.str(), .fsync = FsyncMode::kNever, .retention = 2});
  for (uint64_t v = 1; v <= 4; ++v) {
    ASSERT_TRUE(store.WriteCheckpoint(tiles, v, 1000 + v).ok());
  }
  EXPECT_EQ(store.ListCheckpoints(), (std::vector<uint64_t>{3, 4}));
}

TEST(SnapshotStoreTest, TornManifestFallsBackToOlderCheckpoint) {
  ScopedTempDir dir("torn_manifest");
  HdMap world = StraightRoad(300.0);
  TileStore tiles = BuildTiles(world);
  MetricsRegistry metrics;
  SnapshotStore store({.data_dir = dir.str(),
                       .fsync = FsyncMode::kNever,
                       .metrics = &metrics});
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 1, 10).ok());
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 2, 20).ok());
  TruncateFile(fs::path(store.CheckpointDir(2)) / "manifest.bin", 8);

  size_t skipped = 0;
  auto rec = store.LoadNewestValid(TileStore::Options{}, &skipped);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->version, 1u);
  EXPECT_EQ(skipped, 1u);
  EXPECT_EQ(metrics.GetCounter("storage.checkpoints_invalid")->value(), 1u);
}

TEST(SnapshotStoreTest, CorruptOrMissingTileInvalidatesCheckpoint) {
  ScopedTempDir dir("bad_tile");
  TileStore tiles = BuildTiles(StraightRoad(300.0));
  SnapshotStore store(
      {.data_dir = dir.str(), .fsync = FsyncMode::kNever, .retention = 3});
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 1, 10).ok());
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 2, 20).ok());
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 3, 30).ok());

  // v3: flip a byte inside a tile payload (frame CRC catches it).
  // v2: delete a tile file outright (manifest inventory catches it).
  fs::path first_tile;
  for (const auto& entry : fs::directory_iterator(store.CheckpointDir(3))) {
    if (entry.path().extension() == ".tile") {
      first_tile = entry.path();
      break;
    }
  }
  ASSERT_FALSE(first_tile.empty());
  CorruptFile(first_tile);
  for (const auto& entry : fs::directory_iterator(store.CheckpointDir(2))) {
    if (entry.path().extension() == ".tile") {
      fs::remove(entry.path());
      break;
    }
  }

  size_t skipped = 0;
  auto rec = store.LoadNewestValid(TileStore::Options{}, &skipped);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->version, 1u);
  EXPECT_EQ(skipped, 2u);
}

TEST(SnapshotStoreTest, NoValidCheckpointIsNotFound) {
  ScopedTempDir dir("none_valid");
  SnapshotStore store({.data_dir = dir.str(), .fsync = FsyncMode::kNever});
  size_t skipped = 0;
  EXPECT_EQ(store.LoadNewestValid(TileStore::Options{}, &skipped)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(SnapshotStoreTest, TmpLeftoverFromCrashedWriteIsIgnoredAndSwept) {
  ScopedTempDir dir("tmp_sweep");
  TileStore tiles = BuildTiles(StraightRoad(300.0));
  SnapshotStore store({.data_dir = dir.str(), .fsync = FsyncMode::kNever});
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 1, 10).ok());

  // Simulate a crash mid-checkpoint: a .tmp sibling left behind.
  fs::path leftover =
      fs::path(dir.str()) / "checkpoints" / ".tmp-v00000000000000000002";
  fs::create_directories(leftover);
  ASSERT_TRUE(
      WriteFileRaw((leftover / "junk").string(), "x", FsyncMode::kNever)
          .ok());

  EXPECT_EQ(store.ListCheckpoints(), std::vector<uint64_t>{1});
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 2, 20).ok());
  EXPECT_FALSE(fs::exists(leftover));  // Next write sweeps the leftover.
}

TEST(SnapshotStoreTest, InjectedTornManifestDetectedAtLoad) {
  ScopedTempDir dir("fault_manifest");
  TileStore tiles = BuildTiles(StraightRoad(300.0));
  FaultInjector faults(99);
  SnapshotStore store({.data_dir = dir.str(),
                       .fsync = FsyncMode::kNever,
                       .retention = 2,
                       .fault_injector = &faults});
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 1, 10).ok());
  faults.AddPolicy({SnapshotStore::kManifestFaultSite, FaultKind::kTornWrite,
                    1.0});
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 2, 20).ok());
  EXPECT_GE(faults.InjectedCount(SnapshotStore::kManifestFaultSite), 1u);

  size_t skipped = 0;
  auto rec = store.LoadNewestValid(TileStore::Options{}, &skipped);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->version, 1u);
  EXPECT_EQ(skipped, 1u);
}

TEST(SnapshotStoreTest, WriteFailureLeavesPreviousStateServable) {
  ScopedTempDir dir("fail_write");
  TileStore tiles = BuildTiles(StraightRoad(300.0));
  FaultInjector faults(5);
  SnapshotStore store({.data_dir = dir.str(),
                       .fsync = FsyncMode::kNever,
                       .fault_injector = &faults});
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 1, 10).ok());
  faults.AddPolicy({SnapshotStore::kWriteFaultSite, FaultKind::kFailStatus,
                    1.0, StatusCode::kInternal});
  EXPECT_FALSE(store.WriteCheckpoint(tiles, 2, 20).ok());
  EXPECT_EQ(store.ListCheckpoints(), std::vector<uint64_t>{1});
  size_t skipped = 0;
  auto rec = store.LoadNewestValid(TileStore::Options{}, &skipped);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->version, 1u);
  EXPECT_EQ(skipped, 0u);
}

// --- Mmap checkpoint read path ---

TEST(SnapshotStoreTest, OpenMappedServesViewsZeroCopy) {
  ScopedTempDir dir("mmap_open");
  HdMap world = StraightRoad(500.0);
  TileStore tiles = BuildTiles(world, 100.0, TileFormat::kFlatV3);
  SnapshotStore store({.data_dir = dir.str(), .fsync = FsyncMode::kNever});
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 7, 123).ok());

  auto mapped = store.OpenMapped(7);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->version, 7u);
  EXPECT_EQ(mapped->published_unix_ms, 123);
  EXPECT_EQ(mapped->tile_size_m, tiles.tile_size());
  ASSERT_EQ(mapped->tiles.size(), tiles.NumTiles());

  // Every mapped tile is byte-identical to the store's and serves views.
  size_t lanelets_seen = 0;
  for (const auto& [morton, bytes] : mapped->tiles) {
    EXPECT_EQ(std::string(bytes.view()),
              tiles.RawTilesCopy().at(morton));
    auto view = mapped->View(morton);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    lanelets_seen += view->view.num_lanelets();
  }
  // A lanelet rides in every tile it overlaps, so the per-tile sum is a
  // lower-bounded over-count.
  EXPECT_GE(lanelets_seen, world.lanelets().size());
  EXPECT_EQ(mapped->View(0xDEAD).status().code(), StatusCode::kNotFound);
}

TEST(SnapshotStoreTest, OpenMappedDetectsCorruptionAtOpen) {
  ScopedTempDir dir("mmap_corrupt");
  TileStore tiles = BuildTiles(StraightRoad(300.0));
  SnapshotStore store({.data_dir = dir.str(), .fsync = FsyncMode::kNever});
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 1, 10).ok());
  for (const auto& entry : fs::directory_iterator(store.CheckpointDir(1))) {
    if (entry.path().extension() == ".tile") {
      CorruptFile(entry.path());
      break;
    }
  }
  // The once-per-generation CRC pass runs at open, so corruption is
  // caught here — views later skip the checksum (FrameChecksum::kTrust).
  EXPECT_EQ(store.OpenMapped(1).status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotStoreTest, MappedViewsSurviveRetentionDelete) {
  ScopedTempDir dir("mmap_retention");
  HdMap world = StraightRoad(500.0);
  TileStore tiles = BuildTiles(world, 100.0, TileFormat::kFlatV3);
  SnapshotStore store(
      {.data_dir = dir.str(), .fsync = FsyncMode::kNever, .retention = 1});
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 1, 10).ok());

  auto mapped = store.OpenMapped(1);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_FALSE(mapped->tiles.empty());
  uint64_t first = mapped->tiles.begin()->first;
  auto held = mapped->View(first);
  ASSERT_TRUE(held.ok());

  // Two more checkpoints: retention=1 unlinks v1's directory from disk
  // while `mapped` still pins its pages.
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 2, 20).ok());
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 3, 30).ok());
  ASSERT_FALSE(fs::exists(store.CheckpointDir(1)));
  ASSERT_FALSE(fs::exists(store.CheckpointDir(2)));

  // POSIX keeps unlinked-but-mapped pages alive: the held view and the
  // whole generation stay readable after the delete.
  auto materialized = held->view.Materialize();
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  size_t lanelets_seen = 0;
  for (const auto& [morton, bytes] : mapped->tiles) {
    auto view = mapped->View(morton);
    ASSERT_TRUE(view.ok());
    lanelets_seen += view->view.num_lanelets();
  }
  EXPECT_GE(lanelets_seen, world.lanelets().size());
}

TEST(SnapshotStoreTest, OpenMappedLegacyV1TilesRefuseViews) {
  ScopedTempDir dir("mmap_v1");
  HdMap world = StraightRoad(300.0);
  TileStore tiles(TileStore::Options{.tile_size_m = 100.0,
                                     .format = TileFormat::kLegacyV1});
  ASSERT_TRUE(tiles.Build(world).ok());
  SnapshotStore store({.data_dir = dir.str(), .fsync = FsyncMode::kNever});
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 1, 10).ok());

  // The generation opens (frames are intact) but v1 blobs can't be
  // viewed in place — materialize them via DeserializeMap instead.
  auto mapped = store.OpenMapped(1);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  uint64_t first = mapped->tiles.begin()->first;
  EXPECT_EQ(mapped->View(first).status().code(),
            StatusCode::kFailedPrecondition);
  auto decoded = DeserializeMap(mapped->tiles.at(first).view());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
}

TEST(SnapshotStoreConcurrencyTest, ConcurrentMappedReadersSurviveSwaps) {
  // Readers walk a pinned checkpoint generation while the writer keeps
  // publishing new checkpoints and retention keeps deleting old ones —
  // including the generation being read. Under TSan this is the proof
  // that the mmap read path needs no reader/writer synchronization
  // (generation pinning); in any build it verifies reads stay valid
  // through swap + unlink.
  ScopedTempDir dir("mmap_concurrent");
  HdMap world = StraightRoad(400.0);
  TileStore tiles = BuildTiles(world, 100.0, TileFormat::kFlatV3);
  SnapshotStore store(
      {.data_dir = dir.str(), .fsync = FsyncMode::kNever, .retention = 1});
  ASSERT_TRUE(store.WriteCheckpoint(tiles, 1, 10).ok());
  auto mapped = store.OpenMapped(1);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> bad_reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&mapped, &bad_reads, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const auto& [morton, bytes] : mapped->tiles) {
          auto view = mapped->View(morton);
          if (!view.ok() || !view->view.Materialize().ok()) {
            bad_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (uint64_t v = 2; v <= 8; ++v) {
    ASSERT_TRUE(store.WriteCheckpoint(tiles, v, 10 * v).ok());
  }
  EXPECT_FALSE(fs::exists(store.CheckpointDir(1)));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad_reads.load(), 0);
}

// --- PatchWal ---

TEST(PatchWalTest, AppendReplayRoundtripInOrder) {
  ScopedTempDir dir("wal_roundtrip");
  PatchWal wal({.path = dir.str() + "/patches.wal",
                .fsync = FsyncMode::kNever});
  std::vector<MapPatch> patches;
  for (int i = 0; i < 3; ++i) {
    MapPatch p = MovePatch(100 + i, {1.0 * i, 2.0, 3.0});
    ASSERT_TRUE(wal.Append(p, 10 + i).ok());
    patches.push_back(std::move(p));
  }
  EXPECT_GT(wal.SizeBytes(), 0u);

  auto replay = wal.Replay();
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->skipped_records, 0u);
  ASSERT_EQ(replay->records.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(replay->records[i].version_hint, 10u + i);
    // Wire-format equality is patch equality.
    EXPECT_EQ(SerializePatch(replay->records[i].patch),
              SerializePatch(patches[i]));
  }
}

TEST(PatchWalTest, MissingFileReplaysEmpty) {
  ScopedTempDir dir("wal_missing");
  PatchWal wal({.path = dir.str() + "/nope/patches.wal"});
  auto replay = wal.Replay();
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
  EXPECT_EQ(replay->skipped_records, 0u);
  EXPECT_EQ(wal.SizeBytes(), 0u);
}

TEST(PatchWalTest, TornTailKeepsIntactPrefix) {
  ScopedTempDir dir("wal_torn");
  std::string path = dir.str() + "/patches.wal";
  PatchWal wal({.path = path, .fsync = FsyncMode::kNever});
  ASSERT_TRUE(wal.Append(MovePatch(1, {1, 1, 1}), 1).ok());
  ASSERT_TRUE(wal.Append(MovePatch(2, {2, 2, 2}), 2).ok());
  TruncateFile(path, 5);  // Crash mid-append of record 2.

  auto replay = wal.Replay();
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].version_hint, 1u);
  EXPECT_EQ(replay->skipped_records, 1u);
}

TEST(PatchWalTest, CorruptMiddleRecordIsSkippedNotFatal) {
  ScopedTempDir dir("wal_corrupt_mid");
  std::string path = dir.str() + "/patches.wal";
  PatchWal wal({.path = path, .fsync = FsyncMode::kNever});
  ASSERT_TRUE(wal.Append(MovePatch(1, {1, 1, 1}), 1).ok());
  uint64_t first_end = wal.SizeBytes();
  ASSERT_TRUE(wal.Append(MovePatch(2, {2, 2, 2}), 2).ok());
  ASSERT_TRUE(wal.Append(MovePatch(3, {3, 3, 3}), 3).ok());

  // Flip a byte inside record 2's payload (past its 20-byte header), so
  // the record header still carries a trustworthy length to resync with.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(first_end) + 24);
    char c = 0x7f;
    f.write(&c, 1);
  }

  auto replay = wal.Replay();
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].version_hint, 1u);
  EXPECT_EQ(replay->records[1].version_hint, 3u);
  EXPECT_EQ(replay->skipped_records, 1u);
}

TEST(PatchWalTest, ResetTruncatesAndLogStaysUsable) {
  ScopedTempDir dir("wal_reset");
  MetricsRegistry metrics;
  PatchWal wal({.path = dir.str() + "/patches.wal",
                .fsync = FsyncMode::kNever,
                .metrics = &metrics});
  ASSERT_TRUE(wal.Append(MovePatch(1, {1, 1, 1}), 1).ok());
  ASSERT_TRUE(wal.Reset().ok());
  EXPECT_EQ(wal.SizeBytes(), 0u);
  EXPECT_EQ(metrics.GetGauge("wal.size_bytes")->value(), 0.0);

  auto empty = wal.Replay();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->records.empty());

  // The log keeps working after a reset.
  ASSERT_TRUE(wal.Append(MovePatch(2, {2, 2, 2}), 5).ok());
  auto replay = wal.Replay();
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].version_hint, 5u);
}

TEST(PatchWalTest, RewriteReplacesLogAtomically) {
  ScopedTempDir dir("wal_rewrite");
  std::string path = dir.str() + "/patches.wal";
  MetricsRegistry metrics;
  PatchWal wal({.path = path,
                .fsync = FsyncMode::kNever,
                .metrics = &metrics});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal.Append(MovePatch(1 + i, {1.0 * i, 0, 0}), 1 + i).ok());
  }

  std::vector<MapPatch> still_staged = {MovePatch(9, {9, 9, 9})};
  ASSERT_TRUE(wal.Rewrite(still_staged, 7).ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // No temp-file leftover.
  EXPECT_EQ(metrics.GetGauge("wal.size_bytes")->value(),
            static_cast<double>(wal.SizeBytes()));

  auto replay = wal.Replay();
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->skipped_records, 0u);
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].version_hint, 7u);
  EXPECT_EQ(SerializePatch(replay->records[0].patch),
            SerializePatch(still_staged[0]));

  // The log keeps working after a rewrite (appends land after the
  // rewritten content).
  ASSERT_TRUE(wal.Append(MovePatch(2, {2, 2, 2}), 8).ok());
  auto replay2 = wal.Replay();
  ASSERT_TRUE(replay2.ok());
  ASSERT_EQ(replay2->records.size(), 2u);
  EXPECT_EQ(replay2->records[1].version_hint, 8u);
}

TEST(PatchWalTest, ConcurrentAppendsGroupCommitDurableBeforeAck) {
  ScopedTempDir dir("wal_group_commit");
  PatchWal wal({.path = dir.str() + "/patches.wal",
                .fsync = FsyncMode::kAlways});

  // N stagers hammer Append concurrently. Group commit means a follower's
  // record can be fsynced by another thread's batch, but every ack must
  // still imply the record is on disk and replayable.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::atomic<int> acked{0};
  std::vector<std::thread> stagers;
  stagers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    stagers.emplace_back([&wal, &acked, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t hint = static_cast<uint64_t>(t) * 1000 + i;
        ElementId id = static_cast<ElementId>(hint + 1);
        if (wal.Append(MovePatch(id, {1.0 * t, 1.0 * i, 0}), hint).ok()) {
          acked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& s : stagers) s.join();
  EXPECT_EQ(acked.load(), kThreads * kPerThread);

  // All acked records replay intact — no interleaved/torn writes.
  auto replay = wal.Replay();
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->skipped_records, 0u);
  ASSERT_EQ(replay->records.size(),
            static_cast<size_t>(kThreads * kPerThread));
  std::set<uint64_t> hints;
  for (const auto& rec : replay->records) {
    hints.insert(rec.version_hint);
    // Payload matches the hint it was written with: record bodies never
    // mixed across concurrent appenders.
    EXPECT_EQ(SerializePatch(rec.patch),
              SerializePatch(MovePatch(
                  static_cast<ElementId>(rec.version_hint + 1),
                  {1.0 * (rec.version_hint / 1000),
                   1.0 * (rec.version_hint % 1000), 0})));
  }
  EXPECT_EQ(hints.size(), static_cast<size_t>(kThreads * kPerThread));

  // Group commit actually batched: never more fsyncs than appends, and at
  // least one batch happened.
  EXPECT_GE(wal.FsyncBatches(), 1u);
  EXPECT_LE(wal.FsyncBatches(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(PatchWalTest, FailedRewriteLeavesOldLogIntact) {
  ScopedTempDir dir("wal_rewrite_fail");
  FaultInjector faults(17);
  PatchWal wal({.path = dir.str() + "/patches.wal",
                .fsync = FsyncMode::kNever,
                .fault_injector = &faults});
  ASSERT_TRUE(wal.Append(MovePatch(1, {1, 1, 1}), 1).ok());
  ASSERT_TRUE(wal.Append(MovePatch(2, {2, 2, 2}), 2).ok());

  faults.AddPolicy({PatchWal::kAppendFaultSite, FaultKind::kFailStatus, 1.0,
                    StatusCode::kInternal});
  EXPECT_EQ(wal.Rewrite({MovePatch(3, {3, 3, 3})}, 5).code(),
            StatusCode::kInternal);
  faults.ClearPolicies();

  // The failed trim lost nothing: both old records still replay.
  auto replay = wal.Replay();
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->skipped_records, 0u);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].version_hint, 1u);
  EXPECT_EQ(replay->records[1].version_hint, 2u);
}

TEST(PatchWalTest, ArchiveSetsLogAsideAndLogRestartsEmpty) {
  ScopedTempDir dir("wal_archive");
  std::string path = dir.str() + "/patches.wal";
  PatchWal wal({.path = path, .fsync = FsyncMode::kNever});
  ASSERT_TRUE(wal.Append(MovePatch(1, {1, 1, 1}), 4).ok());
  ASSERT_TRUE(wal.Archive().ok());

  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".lost"));
  // The set-aside bytes are a readable log: salvage can replay them.
  PatchWal lost({.path = path + ".lost", .fsync = FsyncMode::kNever});
  auto salvage = lost.Replay();
  ASSERT_TRUE(salvage.ok());
  ASSERT_EQ(salvage->records.size(), 1u);
  EXPECT_EQ(salvage->records[0].version_hint, 4u);

  // The live log restarts empty and usable.
  auto empty = wal.Replay();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->records.empty());
  ASSERT_TRUE(wal.Append(MovePatch(2, {2, 2, 2}), 5).ok());
  auto replay = wal.Replay();
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
}

TEST(PatchWalTest, InjectedTornAppendAcksButReplaySkips) {
  ScopedTempDir dir("wal_fault");
  MetricsRegistry metrics;
  FaultInjector faults(123);
  faults.BindMetrics(&metrics);
  PatchWal wal({.path = dir.str() + "/patches.wal",
                .fsync = FsyncMode::kNever,
                .metrics = &metrics,
                .fault_injector = &faults});
  faults.AddPolicy({PatchWal::kAppendFaultSite, FaultKind::kTornWrite, 1.0});
  // A torn append models bytes scribbled on their way to disk: the write
  // itself still acks.
  ASSERT_TRUE(wal.Append(MovePatch(1, {1, 1, 1}), 1).ok());
  EXPECT_GE(faults.InjectedCount(PatchWal::kAppendFaultSite), 1u);
  EXPECT_GE(
      metrics.GetGauge("fault_injector.injected{wal.append}")->value(), 1.0);
  faults.ClearPolicies();

  auto replay = wal.Replay();
  ASSERT_TRUE(replay.ok());
  EXPECT_GE(replay->skipped_records, 1u);
  EXPECT_EQ(metrics.GetCounter("wal.replay_skipped")->value(),
            replay->skipped_records);
}

TEST(PatchWalTest, FailStatusAppendDoesNotAck) {
  ScopedTempDir dir("wal_fail");
  FaultInjector faults(7);
  faults.AddPolicy({PatchWal::kAppendFaultSite, FaultKind::kFailStatus, 1.0,
                    StatusCode::kInternal});
  PatchWal wal({.path = dir.str() + "/patches.wal",
                .fsync = FsyncMode::kNever,
                .fault_injector = &faults});
  EXPECT_EQ(wal.Append(MovePatch(1, {1, 1, 1}), 1).code(),
            StatusCode::kInternal);
  EXPECT_EQ(wal.SizeBytes(), 0u);
}

}  // namespace
}  // namespace hdmap
