#ifndef HDMAP_PLANNING_FRENET_PLANNER_H_
#define HDMAP_PLANNING_FRENET_PLANNER_H_

#include <optional>
#include <vector>

#include "geometry/line_string.h"
#include "geometry/vec2.h"

namespace hdmap {

/// A static obstacle on the road (disc model).
struct Obstacle {
  Vec2 position;
  double radius = 1.0;
};

/// One candidate local path in the lane (Frenet) coordinate system.
struct CandidatePath {
  double end_offset = 0.0;        ///< Lateral offset at the horizon.
  LineString geometry;            ///< Cartesian realization.
  bool collision_free = true;
  double max_curvature = 0.0;
  double cost = 0.0;
};

/// Local motion planner over HD-map lane geometry (Jian et al. [52]):
/// generates a lateral-offset path set in the lane coordinate system via
/// quintic lateral polynomials, prunes colliding/kinematically infeasible
/// candidates, and selects with an inertia-like rule that prefers paths
/// close to the previously selected offset to avoid oscillation.
class FrenetPlanner {
 public:
  struct Options {
    double horizon = 40.0;          ///< Planning distance along the lane.
    double lateral_span = 3.0;      ///< Max |offset| explored, meters.
    int num_candidates = 13;        ///< Path-set size (odd: includes 0).
    double step = 1.0;              ///< Longitudinal sampling, meters.
    double obstacle_margin = 0.5;   ///< Clearance added to obstacle radii.
    double max_feasible_curvature = 0.2;  ///< 1/m.
    /// Inertia weight: cost per meter of deviation from the previous
    /// selection (the "inertia-like path selection" of [52]).
    double inertia_weight = 0.6;
    double offset_weight = 0.4;     ///< Cost per meter of |end offset|.
    double curvature_weight = 5.0;
  };

  explicit FrenetPlanner(const Options& options) : options_(options) {}

  /// Plans from arc length `s0` on the reference centerline with current
  /// lateral offset `d0`. Returns the full evaluated path set (for
  /// introspection) with the selected path first, or nullopt when every
  /// candidate collides.
  std::optional<std::vector<CandidatePath>> Plan(
      const LineString& reference, double s0, double d0,
      const std::vector<Obstacle>& obstacles);

  /// The lateral offset selected by the last Plan call (inertia state).
  double last_selected_offset() const { return last_selected_offset_; }
  void ResetInertia() { last_selected_offset_ = 0.0; }

 private:
  Options options_;
  double last_selected_offset_ = 0.0;
};

}  // namespace hdmap

#endif  // HDMAP_PLANNING_FRENET_PLANNER_H_
