file(REMOVE_RECURSE
  "CMakeFiles/pose_test.dir/pose_test.cc.o"
  "CMakeFiles/pose_test.dir/pose_test.cc.o.d"
  "pose_test"
  "pose_test.pdb"
  "pose_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
