#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"
#include "localization/ekf_localizer.h"
#include "localization/lane_matcher.h"
#include "localization/marking_localizer.h"
#include "localization/particle_filter.h"
#include "localization/raster_localizer.h"
#include "localization/triangulation.h"
#include "sim/sensors.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

TEST(ParticleFilterTest, InitCentersOnPrior) {
  Rng rng(1);
  ParticleFilter pf;
  pf.Init(Pose2(10, 5, 0.3), 0.5, 0.05, rng);
  Pose2 est = pf.Estimate();
  EXPECT_NEAR(est.translation.x, 10.0, 0.2);
  EXPECT_NEAR(est.translation.y, 5.0, 0.2);
  EXPECT_NEAR(est.heading, 0.3, 0.05);
  EXPECT_GT(pf.EffectiveSampleSize(), 100.0);
}

TEST(ParticleFilterTest, PredictTranslatesBelief) {
  Rng rng(2);
  ParticleFilter pf;
  pf.Init(Pose2(0, 0, 0), 0.1, 0.01, rng);
  for (int i = 0; i < 10; ++i) pf.Predict(1.0, 0.0, rng);
  EXPECT_NEAR(pf.Estimate().translation.x, 10.0, 0.5);
  // Dead reckoning grows the spread.
  EXPECT_GT(pf.PositionSpread(), 0.05);
}

TEST(ParticleFilterTest, UpdateConcentratesOnLikelihoodPeak) {
  Rng rng(3);
  ParticleFilter pf;
  pf.Init(Pose2(0, 0, 0), 2.0, 0.1, rng);
  Vec2 target{1.0, -0.5};
  for (int i = 0; i < 5; ++i) {
    pf.Update(
        [&](const Pose2& p) {
          double d2 = p.translation.SquaredDistanceTo(target);
          return std::exp(-d2 / 0.08);
        },
        rng);
  }
  EXPECT_LT(pf.Estimate().translation.DistanceTo(target), 0.5);
  EXPECT_LT(pf.PositionSpread(), 0.5);
}

TEST(MarkingLocalizerTest, TracksDriveBetterThanDeadReckoning) {
  HdMap map = StraightRoad();
  Rng rng(4);
  MarkingScanner scanner({});
  OdometrySensor odo({});

  MarkingLocalizer::Options opt;
  opt.filter.num_particles = 200;
  MarkingLocalizer localizer(&map, opt);

  Pose2 truth(20.0, -1.75, 0.0);
  localizer.Init(Pose2(truth.translation + Vec2{1.0, 0.8}, 0.02), 1.0, 0.05,
                 rng);

  Pose2 dead_reckon = truth;  // Perfect start, odometry only.
  RunningStats loc_err, dr_err;
  Pose2 prev_truth = truth;
  for (int step = 0; step < 120; ++step) {
    Pose2 next_truth(truth.translation + Vec2{1.0, 0.0}, 0.0);
    auto delta = odo.Measure(truth, next_truth, rng);
    truth = next_truth;
    localizer.Predict(delta.distance, delta.heading_change, rng);
    double mid = dead_reckon.heading + delta.heading_change / 2;
    dead_reckon =
        Pose2(dead_reckon.translation +
                  Vec2{std::cos(mid), std::sin(mid)} * delta.distance,
              dead_reckon.heading + delta.heading_change);
    auto scan = scanner.Scan(map, truth, rng);
    localizer.Update(scan, rng);
    if (step > 20) {
      loc_err.Add(
          localizer.Estimate().translation.DistanceTo(truth.translation));
      dr_err.Add(dead_reckon.translation.DistanceTo(truth.translation));
    }
    prev_truth = truth;
  }
  (void)prev_truth;
  // Lateral correction is strong (markings constrain y); overall error
  // must be clearly bounded and the initial offset corrected.
  EXPECT_LT(loc_err.mean(), 1.0);
  EXPECT_GT(localizer.last_inlier_ratio(), 0.6);
}

TEST(MarkingLocalizerTest, LateralErrorIsLaneLevel) {
  HdMap map = StraightRoad();
  Rng rng(5);
  MarkingScanner scanner({});
  MarkingLocalizer::Options opt;
  opt.filter.num_particles = 200;
  MarkingLocalizer localizer(&map, opt);
  Pose2 truth(50.0, -1.75, 0.0);
  localizer.Init(Pose2(truth.translation + Vec2{0.5, 1.2}, 0.0), 1.0, 0.03,
                 rng);
  RunningStats lat_err;
  for (int step = 0; step < 60; ++step) {
    Pose2 next(truth.translation + Vec2{1.0, 0.0}, 0.0);
    localizer.Predict(1.0, 0.0, rng);
    truth = next;
    localizer.Update(scanner.Scan(map, truth, rng), rng);
    if (step > 15) {
      lat_err.Add(std::abs(localizer.Estimate().translation.y -
                           truth.translation.y));
    }
  }
  EXPECT_LT(lat_err.mean(), 0.35);  // Sub-lane-width accuracy.
}

TEST(EkfLocalizerTest, CovarianceGrowsOnPredictShrinksOnUpdate) {
  HdMap map = StraightRoad();
  EkfLocalizer ekf(&map, {});
  ekf.Init(Pose2(10, -1.75, 0), 0.5, 0.05);
  double sigma0 = ekf.PositionSigma();
  for (int i = 0; i < 20; ++i) ekf.Predict(1.0, 0.0);
  double sigma_pred = ekf.PositionSigma();
  EXPECT_GT(sigma_pred, sigma0);
  ASSERT_TRUE(ekf.UpdateGps(ekf.estimate().translation + Vec2{0.3, -0.2}));
  EXPECT_LT(ekf.PositionSigma(), sigma_pred);
}

TEST(EkfLocalizerTest, GateRejectsGrossOutlierFix) {
  HdMap map = StraightRoad();
  EkfLocalizer ekf(&map, {});
  ekf.Init(Pose2(10, -1.75, 0), 0.5, 0.05);
  EXPECT_FALSE(ekf.UpdateGps({200.0, 100.0}));
  // Estimate unchanged by the rejected fix.
  EXPECT_NEAR(ekf.estimate().translation.x, 10.0, 1e-9);
}

TEST(EkfLocalizerTest, FullFusionTracksDrive) {
  HdMap map = StraightRoad();
  Rng rng(6);
  GpsSensor gps({1.5, 0.8, 0.0}, rng);
  OdometrySensor odo({});
  LandmarkDetector detector({});
  EkfLocalizer ekf(&map, {});
  Pose2 truth(10.0, -1.75, 0.0);
  ekf.Init(truth, 0.5, 0.02);
  RunningStats err, gps_err;
  for (int step = 0; step < 150; ++step) {
    Pose2 next(truth.translation + Vec2{1.0, 0.0}, 0.0);
    auto delta = odo.Measure(truth, next, rng);
    truth = next;
    ekf.Predict(delta.distance, delta.heading_change);
    Vec2 fix = gps.Measure(truth.translation, rng);
    ekf.UpdateGps(fix);
    ekf.UpdateLandmarks(detector.Detect(map, truth, rng));
    if (step > 30) {
      err.Add(ekf.estimate().translation.DistanceTo(truth.translation));
      gps_err.Add(fix.DistanceTo(truth.translation));
    }
  }
  EXPECT_LT(err.mean(), gps_err.mean());
  EXPECT_LT(err.mean(), 1.0);
}

TEST(EkfLocalizerTest, BearingOnlyUpdatesBoundDrift) {
  // MLVHM-style monocular mode: bearings to mapped signs, no ranges.
  HdMap map = StraightRoad(800.0, 40.0);
  Rng rng(66);
  OdometrySensor odo({});
  LandmarkDetector::Options det_opt;
  det_opt.clutter_rate = 0.0;
  LandmarkDetector detector(det_opt);
  EkfLocalizer with_bearings(&map, {});
  EkfLocalizer odom_only(&map, {});
  Pose2 truth(10.0, -1.75, 0.0);
  with_bearings.Init(truth, 0.3, 0.02);
  odom_only.Init(truth, 0.3, 0.02);
  RunningStats bearing_err, odom_err;
  for (int step = 0; step < 300; ++step) {
    Pose2 next(truth.translation + Vec2{1.5, 0.0}, 0.0);
    auto delta = odo.Measure(truth, next, rng);
    truth = next;
    with_bearings.Predict(delta.distance, delta.heading_change);
    odom_only.Predict(delta.distance, delta.heading_change);
    with_bearings.UpdateLandmarkBearings(detector.Detect(map, truth, rng));
    if (step > 100) {
      bearing_err.Add(with_bearings.estimate().translation.DistanceTo(
          truth.translation));
      odom_err.Add(
          odom_only.estimate().translation.DistanceTo(truth.translation));
    }
  }
  // Bearings alone (no range) still bound the drift that pure odometry
  // accumulates.
  EXPECT_LT(bearing_err.mean(), odom_err.mean());
  EXPECT_LT(bearing_err.mean(), 2.0);
}

TEST(TriangulationTest, ExactRangesRecoverPosition) {
  Vec2 truth{5.0, 7.0};
  std::vector<RangeObservation> obs;
  for (Vec2 lm : {Vec2{0, 0}, Vec2{10, 0}, Vec2{0, 12}, Vec2{14, 9}}) {
    obs.push_back({lm, truth.DistanceTo(lm)});
  }
  auto fix = TriangulatePosition(obs);
  ASSERT_TRUE(fix.ok());
  EXPECT_NEAR(fix->x, truth.x, 1e-6);
  EXPECT_NEAR(fix->y, truth.y, 1e-6);
}

TEST(TriangulationTest, NoisyRangesStayClose) {
  Rng rng(7);
  Vec2 truth{3.0, -2.0};
  RunningStats err;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<RangeObservation> obs;
    for (Vec2 lm : {Vec2{-10, 0}, Vec2{10, 3}, Vec2{0, 12}, Vec2{5, -9}}) {
      obs.push_back({lm, truth.DistanceTo(lm) + rng.Normal(0.0, 0.1)});
    }
    auto fix = TriangulatePosition(obs);
    ASSERT_TRUE(fix.ok());
    err.Add(fix->DistanceTo(truth));
  }
  EXPECT_LT(err.mean(), 0.25);
}

TEST(TriangulationTest, RejectsDegenerateInput) {
  EXPECT_FALSE(TriangulatePosition({}).ok());
  EXPECT_FALSE(
      TriangulatePosition({{{0, 0}, 1.0}, {{1, 0}, 1.0}}).ok());
  // Collinear landmarks.
  auto result = TriangulatePosition(
      {{{0, 0}, 5.0}, {{1, 0}, 4.0}, {{2, 0}, 3.0}});
  EXPECT_FALSE(result.ok());
}

TEST(GeometricAnalysisTest, MoreFeaturesReduceError) {
  Vec2 vehicle{0, 0};
  std::vector<Vec2> few = {{20, 0}, {0, 20}, {-20, -5}};
  std::vector<Vec2> many = few;
  many.push_back({15, 15});
  many.push_back({-10, 18});
  many.push_back({18, -12});
  double sigma_few = PredictedPositionSigma(vehicle, few, 0.3);
  double sigma_many = PredictedPositionSigma(vehicle, many, 0.3);
  EXPECT_LT(sigma_many, sigma_few);
}

TEST(GeometricAnalysisTest, CloserFeaturesReduceError) {
  Vec2 vehicle{0, 0};
  auto ring = [&](double radius) {
    std::vector<Vec2> lms;
    for (int i = 0; i < 5; ++i) {
      double a = 2.0 * std::numbers::pi * i / 5;
      lms.push_back({radius * std::cos(a), radius * std::sin(a)});
    }
    return lms;
  };
  double near_sigma = PredictedPositionSigma(vehicle, ring(10.0), 0.3);
  double far_sigma = PredictedPositionSigma(vehicle, ring(60.0), 0.3);
  EXPECT_LT(near_sigma, far_sigma);
}

TEST(GeometricAnalysisTest, DegenerateGeometryIsInfinite) {
  EXPECT_TRUE(std::isinf(
      PredictedPositionSigma({0, 0}, {{1, 0}, {2, 0}}, 0.3)));
  // Vehicle collinear with all landmarks: ranges only constrain one axis.
  EXPECT_TRUE(std::isinf(
      PredictedPositionSigma({0, 0}, {{1, 0}, {2, 0}, {3, 0}}, 0.3)));
}

TEST(LaneMatcherTest, IdentifiesCorrectLaneWithIntegrity) {
  HdMap map = StraightRoad();
  LaneMatcher matcher(&map, {});
  // Drive in the forward lane (y = -1.75).
  LaneMatcher::MatchResult result;
  for (int i = 0; i < 20; ++i) {
    result = matcher.Step({10.0 + i * 2.0, -1.75}, 0.0, 2.0);
  }
  const Lanelet* ll = map.FindLanelet(result.lanelet_id);
  ASSERT_NE(ll, nullptr);
  EXPECT_NEAR(ll->centerline.front().y, -1.75, 0.1);
  EXPECT_TRUE(result.has_integrity);
  EXPECT_GT(result.probability, 0.8);
}

TEST(LaneMatcherTest, HeadingDisambiguatesDirection) {
  HdMap map = StraightRoad();
  LaneMatcher matcher(&map, {});
  // Fix exactly between the two lanes but heading along -x: the backward
  // lane (y=+1.75, heading pi) must win.
  LaneMatcher::MatchResult result;
  for (int i = 0; i < 15; ++i) {
    result = matcher.Step({500.0 - i * 2.0, 0.0}, std::numbers::pi, 2.0);
  }
  const Lanelet* ll = map.FindLanelet(result.lanelet_id);
  ASSERT_NE(ll, nullptr);
  EXPECT_NEAR(ll->centerline.front().y, 1.75, 0.1);
}

TEST(LaneMatcherTest, NoIntegrityWhenLost) {
  HdMap map = StraightRoad();
  LaneMatcher matcher(&map, {});
  auto result = matcher.Step({5000.0, 5000.0}, 0.0, 0.0);
  EXPECT_FALSE(result.has_integrity);
  EXPECT_EQ(result.lanelet_id, kInvalidId);
}

TEST(RasterLocalizerTest, TracksDriveOnTownRaster) {
  HdMap map = SmallTownWorld(8, 2, 2);
  ASSERT_GT(map.lanelets().size(), 0u);
  SemanticRaster raster = RasterizeMap(map, 0.25);
  Rng rng(9);

  // Drive along a lanelet.
  const Lanelet* lane = nullptr;
  for (const auto& [id, ll] : map.lanelets()) {
    if (ll.Length() > 80.0) {
      lane = &ll;
      break;
    }
  }
  ASSERT_NE(lane, nullptr);

  RasterLocalizer::Options opt;
  opt.filter.num_particles = 250;
  RasterLocalizer localizer(&raster, opt);
  Pose2 truth(lane->centerline.PointAt(5.0),
              lane->centerline.HeadingAt(5.0));
  localizer.Init(Pose2(truth.translation + Vec2{0.8, -0.6}, truth.heading),
                 1.0, 0.05, rng);
  RunningStats err;
  for (int step = 0; step < 50; ++step) {
    double s = 5.0 + step * 1.5;
    if (s > lane->Length() - 2.0) break;
    Pose2 next(lane->centerline.PointAt(s), lane->centerline.HeadingAt(s));
    double dist = next.translation.DistanceTo(truth.translation);
    double dh = AngleDiff(next.heading, truth.heading);
    localizer.Predict(dist, dh, rng);
    truth = next;
    SemanticRaster patch =
        BuildObservedPatch(raster, truth, 10.0, 0.25, 0.2, 0.002, rng);
    localizer.Update(patch, rng);
    if (step > 10) {
      err.Add(localizer.Estimate().translation.DistanceTo(truth.translation));
    }
  }
  EXPECT_GT(err.count(), 10u);
  EXPECT_LT(Median({err.mean()}), 1.0);
  EXPECT_LT(err.mean(), 1.0);
}

}  // namespace
}  // namespace hdmap
