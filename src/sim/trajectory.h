#ifndef HDMAP_SIM_TRAJECTORY_H_
#define HDMAP_SIM_TRAJECTORY_H_

#include <vector>

#include "common/result.h"
#include "core/hd_map.h"
#include "geometry/pose2.h"

namespace hdmap {

/// A ground-truth vehicle state at time t.
struct TimedPose {
  double t = 0.0;
  Pose2 pose;
  double speed = 0.0;
  /// Lanelet being traversed and arc length along it.
  ElementId lanelet_id = kInvalidId;
  double arc_length = 0.0;
};

struct TrajectoryOptions {
  double dt = 0.1;            ///< Sampling period, seconds.
  double speed_factor = 1.0;  ///< Fraction of the speed limit driven.
  /// Lateral offset from the centerline (driver imperfection), meters.
  double lateral_offset = 0.0;
};

/// Drives the centerline of a lanelet route at (speed_factor x speed
/// limit), sampling poses every dt. The route must be topologically
/// connected (each lanelet a successor of the previous); otherwise
/// kInvalidArgument.
Result<std::vector<TimedPose>> DriveRoute(
    const HdMap& map, const std::vector<ElementId>& route,
    const TrajectoryOptions& options = {});

}  // namespace hdmap

#endif  // HDMAP_SIM_TRAJECTORY_H_
