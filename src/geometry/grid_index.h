#ifndef HDMAP_GEOMETRY_GRID_INDEX_H_
#define HDMAP_GEOMETRY_GRID_INDEX_H_

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geometry/aabb.h"
#include "geometry/vec2.h"

namespace hdmap {

/// Uniform-grid spatial hash over (point, id) pairs. Supports incremental
/// insertion (unlike the static KdTree/RTree), which map-update pipelines
/// need.
class GridIndex {
 public:
  explicit GridIndex(double cell_size = 10.0) : cell_size_(cell_size) {}

  void Insert(const Vec2& p, int64_t id) {
    cells_[KeyFor(p)].push_back({p, id});
    ++size_;
  }

  /// Removes the first element with this id in the cell containing p.
  /// Returns true if removed.
  bool Remove(const Vec2& p, int64_t id) {
    auto it = cells_.find(KeyFor(p));
    if (it == cells_.end()) return false;
    auto& vec = it->second;
    for (size_t i = 0; i < vec.size(); ++i) {
      if (vec[i].id == id) {
        vec[i] = vec.back();
        vec.pop_back();
        --size_;
        return true;
      }
    }
    return false;
  }

  size_t size() const { return size_; }

  struct Item {
    Vec2 point;
    int64_t id;
  };

  /// All items within `radius` of `query`.
  std::vector<Item> RadiusSearch(const Vec2& query, double radius) const {
    std::vector<Item> out;
    double r2 = radius * radius;
    int cx_lo = CellCoord(query.x - radius);
    int cx_hi = CellCoord(query.x + radius);
    int cy_lo = CellCoord(query.y - radius);
    int cy_hi = CellCoord(query.y + radius);
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      for (int cy = cy_lo; cy <= cy_hi; ++cy) {
        auto it = cells_.find(Key(cx, cy));
        if (it == cells_.end()) continue;
        for (const Item& item : it->second) {
          if (item.point.SquaredDistanceTo(query) <= r2) {
            out.push_back(item);
          }
        }
      }
    }
    return out;
  }

 private:
  int CellCoord(double v) const {
    return static_cast<int>(std::floor(v / cell_size_));
  }
  static uint64_t Key(int cx, int cy) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
           static_cast<uint32_t>(cy);
  }
  uint64_t KeyFor(const Vec2& p) const {
    return Key(CellCoord(p.x), CellCoord(p.y));
  }

  double cell_size_;
  std::unordered_map<uint64_t, std::vector<Item>> cells_;
  size_t size_ = 0;
};

}  // namespace hdmap

#endif  // HDMAP_GEOMETRY_GRID_INDEX_H_
