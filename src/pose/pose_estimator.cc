#include "pose/pose_estimator.h"

#include <cmath>

namespace hdmap {

Pose3 CompleteTo6Dof(const HdMap& map, const Pose2& planar_pose) {
  auto match = map.MatchToLane(planar_pose.translation, 15.0);
  if (!match.ok()) {
    return Pose3::FromPose2(planar_pose, 0.0);
  }
  const Lanelet* ll = map.FindLanelet(match->lanelet_id);
  if (ll == nullptr) return Pose3::FromPose2(planar_pose, 0.0);

  double z = ll->ElevationAt(match->arc_length);
  double grade = ll->GradeAt(match->arc_length);

  // Pitch: positive grade (climbing) pitches the nose up. In the Z-Y-X
  // convention of Pose3, positive pitch maps +x toward -z, so climbing
  // corresponds to negative pitch.
  double lane_heading = ll->centerline.HeadingAt(match->arc_length);
  double along = std::cos(AngleDiff(planar_pose.heading, lane_heading));
  double pitch = -std::atan(grade * along);

  // Roll: lateral surface slope across the vehicle, from the elevation of
  // the adjacent lanelet stations of the neighbors (flat roads and
  // single-lane maps give ~0). Estimated by probing elevation slightly
  // left/right along the lane normal through neighboring lanelets.
  double roll = 0.0;
  const double kProbe = 1.5;
  Vec2 normal =
      ll->centerline.TangentAt(match->arc_length).Perp();
  auto left = map.MatchToLane(planar_pose.translation + normal * kProbe,
                              15.0);
  auto right = map.MatchToLane(planar_pose.translation - normal * kProbe,
                               15.0);
  if (left.ok() && right.ok()) {
    const Lanelet* lll = map.FindLanelet(left->lanelet_id);
    const Lanelet* llr = map.FindLanelet(right->lanelet_id);
    if (lll != nullptr && llr != nullptr) {
      double zl = lll->ElevationAt(left->arc_length);
      double zr = llr->ElevationAt(right->arc_length);
      roll = std::atan2(zl - zr, 2.0 * kProbe);
    }
  }

  return Pose3(Vec3(planar_pose.translation, z), roll, pitch,
               planar_pose.heading);
}

}  // namespace hdmap
