#include "storage/fs_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hdmap {

namespace {

std::string ErrnoMessage(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Status WriteFileRaw(const std::string& path, std::string_view bytes,
                    FsyncMode mode) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal(ErrnoMessage("open", path));
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status err = Status::Internal(ErrnoMessage("write", path));
      ::close(fd);
      return err;
    }
    off += static_cast<size_t>(n);
  }
  if (mode == FsyncMode::kAlways && ::fsync(fd) != 0) {
    Status err = Status::Internal(ErrnoMessage("fsync", path));
    ::close(fd);
    return err;
  }
  if (::close(fd) != 0) return Status::Internal(ErrnoMessage("close", path));
  return Status::Ok();
}

Result<std::string> ReadFileRaw(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::Internal(ErrnoMessage("open", path));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status err = Status::Internal(ErrnoMessage("read", path));
      ::close(fd);
      return err;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status FsyncDir(const std::string& path, FsyncMode mode) {
  if (mode == FsyncMode::kNever) return Status::Ok();
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::Internal(ErrnoMessage("open dir", path));
  if (::fsync(fd) != 0) {
    Status err = Status::Internal(ErrnoMessage("fsync dir", path));
    ::close(fd);
    return err;
  }
  ::close(fd);
  return Status::Ok();
}

}  // namespace hdmap
