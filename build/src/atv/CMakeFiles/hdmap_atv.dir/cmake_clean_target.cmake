file(REMOVE_RECURSE
  "libhdmap_atv.a"
)
