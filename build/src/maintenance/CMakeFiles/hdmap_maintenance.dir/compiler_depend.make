# Empty compiler generated dependencies file for hdmap_maintenance.
# This may be replaced when dependencies are built.
