#ifndef HDMAP_PERCEPTION_OBJECT_DETECTOR_H_
#define HDMAP_PERCEPTION_OBJECT_DETECTOR_H_

#include <vector>

#include "common/rng.h"
#include "common/statistics.h"
#include "core/hd_map.h"
#include "geometry/pose2.h"

namespace hdmap {

/// A simulated on-road object (vehicle/pedestrian) for perception scenes.
struct SimObject {
  Vec2 position;
  double heading = 0.0;
  double half_length = 2.2;
  double half_width = 0.9;
  double height = 1.5;
};

/// One LiDAR return in a perception scene (world frame, 2.5-D).
struct ScenePoint {
  Vec2 position;
  double z = 0.0;          ///< Height above the local ground surface... or
                           ///< absolute elevation when terrain is hilly.
  int object_index = -1;   ///< Ground truth: which object, -1 = none.
};

struct SceneScanOptions {
  double range = 70.0;
  int points_per_object = 40;
  /// Off-road clutter (vegetation, poles, fences) per scan.
  int clutter_points = 120;
  double clutter_height_min = 0.3;
  double clutter_height_max = 2.5;
  /// Ground returns per scan (z ~ terrain elevation + noise).
  int ground_points = 200;
  double ground_noise = 0.05;
  /// Clutter is scattered within this band outside the road.
  double clutter_band = 18.0;
};

/// Simulates a LiDAR sweep over the scene: returns on objects, off-road
/// clutter and the ground surface. `z` is absolute elevation: on hilly
/// maps a detector without the map's ground prior misjudges what is
/// "above ground" (the HDNET [6] effect).
std::vector<ScenePoint> SimulateSceneScan(
    const HdMap& map, const std::vector<SimObject>& objects,
    const Pose2& sensor_pose, const SceneScanOptions& options, Rng& rng);

/// A detected object cluster.
struct ObjectDetection {
  Vec2 centroid;
  int num_points = 0;
  int majority_object = -1;  ///< Ground-truth majority label (scoring).
};

/// How much HD-map knowledge the detector uses (HDNET's ablation axis).
enum class MapPriorMode {
  kNone = 0,       ///< Flat-ground assumption, no road mask.
  kOnlineEstimated = 1,  ///< Ground estimated from the scan itself.
  kFullMap = 2,    ///< Map elevation + road-mask priors.
};

struct DetectorOptions {
  double cluster_cell = 1.2;     ///< Clustering grid, meters.
  int min_cluster_points = 6;
  /// Points below this height above (assumed) ground are discarded.
  double ground_band = 0.25;
  /// Road-mask prior: clusters farther than this from any lanelet
  /// centerline are discarded under kFullMap.
  double road_margin = 6.0;
};

/// Clustering object detector with optional HD-map priors (HDNET [6]:
/// geometric ground prior + semantic road-mask prior).
std::vector<ObjectDetection> DetectObjects(
    const HdMap& map, const std::vector<ScenePoint>& scan,
    MapPriorMode mode, const DetectorOptions& options);

/// Precision/recall of detections against the true object list.
BinaryConfusion ScoreDetections(const std::vector<ObjectDetection>& detections,
                                const std::vector<SimObject>& objects,
                                double match_radius = 3.0);

}  // namespace hdmap

#endif  // HDMAP_PERCEPTION_OBJECT_DETECTOR_H_
