# Empty dependencies file for pure_pursuit_test.
# This may be replaced when dependencies are built.
