// E14 — Masi et al. [63]: augmented perception with cooperative roadside
// vision. Paper: fusing an HD-map-registered roadside camera with the
// ego vehicle's sensors improves the estimated state of perceived
// objects, including through ego-occlusions.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "perception/cooperative.h"

namespace hdmap {
namespace {

int Run() {
  bench::PrintHeader("E14", "Cooperative roadside perception [63]",
                     "object state error improves with roadside fusion; "
                     "tracks survive ego occlusions");

  Rng rng(2001);
  RunningStats ego_err, fused_err;
  RunningStats ego_occl_err, fused_occl_err;
  int ego_lost = 0;

  const int kRuns = 20;
  for (int run = 0; run < kRuns; ++run) {
    ObjectTracker ego({}), fused({});
    Vec2 velocity{rng.Uniform(6.0, 12.0), rng.Uniform(-1.0, 1.0)};
    // The object crosses an ego-occluded zone in the middle of the run.
    auto occluded = [](int step) { return step >= 30 && step < 55; };
    for (int step = 0; step < 90; ++step) {
      double t = step * 0.1;
      Vec2 truth = velocity * t;
      if (!occluded(step) && step % 3 == 0) {
        ObjectMeasurement m;
        m.object_id = 1;
        m.position = truth + Vec2{rng.Normal(0.0, 0.7),
                                  rng.Normal(0.0, 0.7)};
        m.noise_sigma = 0.7;
        ego.Fuse(m, t);
        fused.Fuse(m, t);
      }
      // Roadside camera covers the whole zone, every other frame.
      if (step % 2 == 0) {
        ObjectMeasurement r;
        r.object_id = 1;
        r.position = truth + Vec2{rng.Normal(0.0, 0.45),
                                  rng.Normal(0.0, 0.45)};
        r.noise_sigma = 0.45;
        fused.Fuse(r, t);
      }
      if (step > 10) {
        ego.PredictTo(t);
        fused.PredictTo(t);
        if (ego.Find(1) != nullptr) {
          double e = ego.Find(1)->position.DistanceTo(truth);
          ego_err.Add(e);
          if (occluded(step)) {
            ego_occl_err.Add(e);
            if (e > 3.0) ++ego_lost;
          }
        }
        double f = fused.Find(1)->position.DistanceTo(truth);
        fused_err.Add(f);
        if (occluded(step)) fused_occl_err.Add(f);
      }
    }
  }

  bench::PrintRow("ego-only mean state error (m)", "(baseline)",
                  bench::Fmt("%.2f", ego_err.mean()));
  bench::PrintRow("cooperative mean state error (m)", "improved",
                  bench::Fmt("%.2f", fused_err.mean()));
  bench::PrintRow("error during ego occlusion: ego-only (m)",
                  "(degrades badly)",
                  bench::Fmt("%.2f", ego_occl_err.mean()));
  bench::PrintRow("error during ego occlusion: cooperative (m)",
                  "(held by roadside)",
                  bench::Fmt("%.2f", fused_occl_err.mean()));
  bench::PrintRow("improvement factor overall", ">1x",
                  bench::Fmt("%.2fx", ego_err.mean() /
                                          std::max(1e-9,
                                                   fused_err.mean())));
  std::printf("  runs: %d; ego track diverged (>3 m) in %d occluded "
              "samples\n\n",
              kRuns, ego_lost);
  return fused_err.mean() < ego_err.mean() ? 0 : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
