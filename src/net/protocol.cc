#include "net/protocol.h"

#include <cstring>

#include "core/binary_io.h"
#include "core/wire_frame.h"

namespace hdmap {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

uint32_t ReadU32At(std::string_view data, size_t offset) {
  uint32_t v = 0;
  std::memcpy(&v, data.data() + offset, sizeof(v));
  return v;
}

std::string WrapBody(uint32_t magic, std::string_view body, uint32_t crc) {
  std::string out;
  out.reserve(kNetFrameHeaderSize + body.size());
  AppendU32(&out, magic);
  AppendU32(&out, static_cast<uint32_t>(body.size()));
  AppendU32(&out, crc);
  out.append(body.data(), body.size());
  return out;
}

}  // namespace

std::string_view NetResponseCodeToString(NetResponseCode code) {
  switch (code) {
    case NetResponseCode::kOk:
      return "OK";
    case NetResponseCode::kNotModified:
      return "NOT_MODIFIED";
    case NetResponseCode::kBusy:
      return "BUSY";
    case NetResponseCode::kDelta:
      return "DELTA";
    case NetResponseCode::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

std::string EncodeRequestFrame(const NetRequest& request) {
  TraceContext ctx;
  ctx.trace_id = request.trace_id;
  ctx.parent_span_id = request.parent_span_id;
  ctx.sampled = request.trace_sampled;
  return EncodeRequestFrame(request, ctx);
}

std::string EncodeRequestFrame(const NetRequest& request,
                               const TraceContext& ctx) {
  BufferWriter body;
  uint8_t type = static_cast<uint8_t>(request.type);
  if (ctx.active()) type |= kNetTraceFlag;
  body.WriteU8(type);
  body.WriteU64(request.request_id);
  body.WriteU64(request.have_version);
  if (ctx.active()) {
    body.WriteU64(ctx.trace_id);
    body.WriteU64(ctx.parent_span_id);
    body.WriteU8(ctx.sampled ? kNetTraceSampledBit : 0);
  }
  switch (request.type) {
    case NetRequestType::kPing:
      break;
    case NetRequestType::kGetTile:
      body.WriteI32(request.tile.x);
      body.WriteI32(request.tile.y);
      break;
    case NetRequestType::kGetRegion:
      body.WriteF64(request.box.min.x);
      body.WriteF64(request.box.min.y);
      body.WriteF64(request.box.max.x);
      body.WriteF64(request.box.max.y);
      break;
    case NetRequestType::kReplicate:
    case NetRequestType::kCatchUp:
      break;  // Opaque payload appended below (raw, not length-prefixed).
    case NetRequestType::kStats:
      body.WriteU8(static_cast<uint8_t>(request.stats_format));
      body.WriteU32(request.stats_max_events);
      break;
  }
  std::string bytes = body.Release();
  if (request.type == NetRequestType::kReplicate ||
      request.type == NetRequestType::kCatchUp) {
    bytes.append(request.payload);
  }
  return WrapBody(kNetRequestMagic, bytes, Crc32(bytes));
}

std::string EncodeResponseFrame(NetResponseCode code, StatusCode status,
                                uint64_t request_id, uint64_t version,
                                std::string_view payload) {
  BufferWriter meta;
  meta.WriteU8(static_cast<uint8_t>(code));
  meta.WriteU8(static_cast<uint8_t>(status));
  meta.WriteU64(request_id);
  meta.WriteU64(version);
  std::string out;
  out.reserve(kNetFrameHeaderSize + meta.size() + payload.size());
  AppendU32(&out, kNetResponseMagic);
  AppendU32(&out, static_cast<uint32_t>(meta.size() + payload.size()));
  AppendU32(&out, Crc32(meta.buffer()));
  out.append(meta.buffer());
  out.append(payload.data(), payload.size());
  return out;
}

FrameParse ExtractFrame(std::string_view buffer, uint32_t expected_magic,
                        size_t max_body, size_t* frame_size,
                        std::string_view* body) {
  if (buffer.size() < sizeof(uint32_t)) return FrameParse::kNeedMore;
  if (ReadU32At(buffer, 0) != expected_magic) return FrameParse::kViolation;
  if (buffer.size() < kNetFrameHeaderSize) return FrameParse::kNeedMore;
  uint32_t body_len = ReadU32At(buffer, 4);
  if (body_len > max_body) return FrameParse::kViolation;
  size_t total = kNetFrameHeaderSize + body_len;
  if (buffer.size() < total) return FrameParse::kNeedMore;
  *frame_size = total;
  *body = buffer.substr(kNetFrameHeaderSize, body_len);
  return FrameParse::kFrame;
}

Result<NetRequest> DecodeRequestBody(std::string_view body,
                                     uint32_t header_crc) {
  if (Crc32(body) != header_crc) {
    return Status::DataLoss("request body CRC mismatch");
  }
  BufferReader reader(body);
  NetRequest request;
  uint8_t raw_type = reader.ReadU8();
  bool traced = (raw_type & kNetTraceFlag) != 0;
  uint8_t type = raw_type & kNetTypeMask;
  request.request_id = reader.ReadU64();
  request.have_version = reader.ReadU64();
  if (traced) {
    request.trace_id = reader.ReadU64();
    request.parent_span_id = reader.ReadU64();
    request.trace_sampled = (reader.ReadU8() & kNetTraceSampledBit) != 0;
  }
  switch (type) {
    case static_cast<uint8_t>(NetRequestType::kPing):
      request.type = NetRequestType::kPing;
      break;
    case static_cast<uint8_t>(NetRequestType::kGetTile):
      request.type = NetRequestType::kGetTile;
      request.tile.x = reader.ReadI32();
      request.tile.y = reader.ReadI32();
      break;
    case static_cast<uint8_t>(NetRequestType::kGetRegion):
      request.type = NetRequestType::kGetRegion;
      request.box.min.x = reader.ReadF64();
      request.box.min.y = reader.ReadF64();
      request.box.max.x = reader.ReadF64();
      request.box.max.y = reader.ReadF64();
      break;
    case static_cast<uint8_t>(NetRequestType::kReplicate):
    case static_cast<uint8_t>(NetRequestType::kCatchUp): {
      // The rest of the body is the opaque replication payload; the
      // frame's body CRC (checked above) already covers it.
      request.type = static_cast<NetRequestType>(type);
      if (!reader.ok()) return reader.status();
      size_t prefix = 1 + sizeof(uint64_t) + sizeof(uint64_t) +
                      (traced ? kNetTraceBlockSize : 0);
      request.payload = std::string(body.substr(prefix));
      return request;
    }
    case static_cast<uint8_t>(NetRequestType::kStats): {
      request.type = NetRequestType::kStats;
      uint8_t format = reader.ReadU8();
      request.stats_max_events = reader.ReadU32();
      if (format > static_cast<uint8_t>(NetStatsFormat::kPrometheus)) {
        return Status::InvalidArgument("unknown stats format " +
                                       std::to_string(format));
      }
      request.stats_format = static_cast<NetStatsFormat>(format);
      break;
    }
    default:
      return Status::InvalidArgument("unknown request type " +
                                     std::to_string(type));
  }
  if (!reader.ok()) return reader.status();
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after request args");
  }
  return request;
}

Result<NetResponse> DecodeResponseBody(std::string_view body,
                                       uint32_t header_crc) {
  if (body.size() < kNetResponseMetaSize) {
    return Status::DataLoss("response meta truncated");
  }
  if (Crc32(body.substr(0, kNetResponseMetaSize)) != header_crc) {
    return Status::DataLoss("response meta CRC mismatch");
  }
  BufferReader reader(body);
  NetResponse response;
  uint8_t code = reader.ReadU8();
  uint8_t status = reader.ReadU8();
  response.request_id = reader.ReadU64();
  response.version = reader.ReadU64();
  if (code > static_cast<uint8_t>(NetResponseCode::kError)) {
    return Status::DataLoss("unknown response code " + std::to_string(code));
  }
  if (status > static_cast<uint8_t>(StatusCode::kDataLoss)) {
    return Status::DataLoss("unknown status code " + std::to_string(status));
  }
  response.code = static_cast<NetResponseCode>(code);
  response.status = static_cast<StatusCode>(status);
  response.payload = std::string(body.substr(kNetResponseMetaSize));
  return response;
}

std::string EncodeDeltaPayload(const std::vector<std::string>& patches) {
  BufferWriter writer;
  writer.WriteU32(static_cast<uint32_t>(patches.size()));
  for (const std::string& patch : patches) writer.WriteString(patch);
  return writer.Release();
}

Result<std::vector<std::string>> DecodeDeltaPayload(
    std::string_view payload) {
  BufferReader reader(payload);
  uint32_t count = reader.ReadU32();
  if (!reader.CheckCount(count, sizeof(uint32_t))) return reader.status();
  std::vector<std::string> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) out.push_back(reader.ReadString());
  if (!reader.ok()) return reader.status();
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes after delta payload");
  }
  return out;
}

}  // namespace hdmap
