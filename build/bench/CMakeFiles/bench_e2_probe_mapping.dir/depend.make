# Empty dependencies file for bench_e2_probe_mapping.
# This may be replaced when dependencies are built.
