#include "creation/map_generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/statistics.h"
#include "common/units.h"
#include "core/ids.h"

namespace hdmap {

Result<MapTopologyStats> ExtractTopologyStats(const HdMap& map) {
  if (map.lane_bundles().empty() || map.map_nodes().empty()) {
    return Status::FailedPrecondition(
        "stats extraction needs the bundle/node layer");
  }
  MapTopologyStats stats;
  stats.num_nodes = map.map_nodes().size();
  stats.num_segments = map.lane_bundles().size();

  RunningStats lengths, lanes;
  for (const auto& [id, bundle] : map.lane_bundles()) {
    const MapNode* a = map.FindMapNode(bundle.from_node);
    const MapNode* b = map.FindMapNode(bundle.to_node);
    if (a == nullptr || b == nullptr) continue;
    lengths.Add(a->position.DistanceTo(b->position));
    lanes.Add(static_cast<double>(bundle.lanelet_ids.size()) / 2.0);
  }
  stats.mean_segment_length = lengths.mean();
  stats.segment_length_stddev = lengths.stddev();
  stats.mean_lanes_per_direction = std::max(1.0, lanes.mean());

  size_t degree_total = 0;
  std::array<size_t, 6> degree_counts{};
  for (const auto& [id, node] : map.map_nodes()) {
    size_t d = std::min<size_t>(5, node.bundle_ids.size());
    ++degree_counts[d];
    ++degree_total;
  }
  for (size_t i = 0; i < 6; ++i) {
    stats.node_degree_pmf[i] =
        static_cast<double>(degree_counts[i]) /
        static_cast<double>(std::max<size_t>(1, degree_total));
  }

  // Local geometry: heading change per 25 m along bundle lanelets.
  RunningStats heading_changes, speed;
  for (const auto& [id, ll] : map.lanelets()) {
    if (ll.bundle_id == kInvalidId) continue;  // Skip connectors.
    speed.Add(ll.speed_limit_mps);
    double len = ll.centerline.Length();
    for (double s = 25.0; s < len; s += 25.0) {
      heading_changes.Add(AngleDiff(ll.centerline.HeadingAt(s),
                                    ll.centerline.HeadingAt(s - 25.0)));
    }
  }
  stats.heading_change_stddev = heading_changes.stddev();
  if (speed.count() > 0) stats.mean_speed_limit = speed.mean();
  return stats;
}

namespace {

/// Axis polyline from a to b with a sinusoidal lateral bow whose
/// amplitude realizes the requested per-25m heading-change scale.
LineString BowedAxis(const Vec2& a, const Vec2& b, double heading_sigma,
                     double step, Rng& rng) {
  double length = a.DistanceTo(b);
  // Peak heading deviation of o(s) = A sin(pi s / L) is A*pi/L; per-25m
  // heading change scales similarly, so A ~ sigma * L / pi gives the
  // right order.
  double amplitude = heading_sigma * length / std::numbers::pi *
                     rng.Normal(0.0, 1.0);
  amplitude = std::clamp(amplitude, -0.06 * length, 0.06 * length);
  Vec2 dir = (b - a).Normalized();
  Vec2 perp = dir.Perp();
  int n = std::max(2, static_cast<int>(length / step));
  std::vector<Vec2> pts;
  pts.reserve(static_cast<size_t>(n) + 1);
  for (int i = 0; i <= n; ++i) {
    double t = static_cast<double>(i) / n;
    double o = amplitude * std::sin(std::numbers::pi * t);
    pts.push_back(a + dir * (t * length) + perp * o);
  }
  return LineString(std::move(pts));
}

LineString BezierLine(const Vec2& a, const Vec2& c, const Vec2& b,
                      int samples) {
  std::vector<Vec2> pts;
  pts.reserve(static_cast<size_t>(samples) + 1);
  for (int i = 0; i <= samples; ++i) {
    double t = static_cast<double>(i) / samples;
    double u = 1.0 - t;
    pts.push_back(a * (u * u) + c * (2.0 * u * t) + b * (t * t));
  }
  return LineString(std::move(pts));
}

int FindRoot(std::vector<int>& parent, int x) {
  while (parent[static_cast<size_t>(x)] != x) {
    parent[static_cast<size_t>(x)] =
        parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
    x = parent[static_cast<size_t>(x)];
  }
  return x;
}

}  // namespace

Result<HdMap> GenerateFromStats(const MapTopologyStats& stats,
                                const GeneratedMapOptions& options,
                                Rng& rng) {
  if (options.grid_rows < 2 || options.grid_cols < 2) {
    return Status::InvalidArgument("generated lattice must be >= 2x2");
  }
  if (stats.mean_segment_length <= 10.0) {
    return Status::InvalidArgument("segment length too small");
  }
  HdMap map;
  IdAllocator ids;
  int rows = options.grid_rows;
  int cols = options.grid_cols;
  double spacing = stats.mean_segment_length;
  int lanes = std::max(1, static_cast<int>(std::round(
                              stats.mean_lanes_per_direction)));
  double lane_width = 3.5;
  double margin = lanes * lane_width + 4.0;

  // 1. Global graph nodes: jittered lattice.
  std::vector<ElementId> node_ids(static_cast<size_t>(rows * cols));
  std::vector<Vec2> node_pos(static_cast<size_t>(rows * cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      size_t idx = static_cast<size_t>(r * cols + c);
      double jitter = options.jitter_frac * spacing;
      node_pos[idx] = Vec2{c * spacing + rng.Uniform(-jitter, jitter),
                           r * spacing + rng.Uniform(-jitter, jitter)};
      MapNode node;
      node.id = ids.Next();
      node.position = node_pos[idx];
      node_ids[idx] = node.id;
      HDMAP_RETURN_IF_ERROR(map.AddMapNode(std::move(node)));
    }
  }

  // 2. Edge selection: all lattice-neighbor candidates, a spanning tree
  // first (connectivity), then extras sampled to hit the target segment
  // count implied by the degree distribution.
  struct Candidate {
    int a;
    int b;
  };
  std::vector<Candidate> candidates;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      int idx = r * cols + c;
      if (c + 1 < cols) candidates.push_back({idx, idx + 1});
      if (r + 1 < rows) candidates.push_back({idx, idx + cols});
    }
  }
  // Shuffle deterministically.
  for (size_t i = candidates.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.UniformInt(0, static_cast<int>(i) - 1));
    std::swap(candidates[i - 1], candidates[j]);
  }
  double mean_degree = 0.0;
  for (size_t i = 0; i < stats.node_degree_pmf.size(); ++i) {
    mean_degree += static_cast<double>(i) * stats.node_degree_pmf[i];
  }
  if (mean_degree <= 0.0) mean_degree = 3.0;
  size_t target_edges = static_cast<size_t>(
      std::round(mean_degree * static_cast<double>(rows * cols) / 2.0));
  target_edges = std::min(target_edges, candidates.size());

  std::vector<int> parent(static_cast<size_t>(rows * cols));
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  std::vector<Candidate> kept;
  std::vector<Candidate> extras;
  for (const Candidate& cand : candidates) {
    int ra = FindRoot(parent, cand.a);
    int rb = FindRoot(parent, cand.b);
    if (ra != rb) {
      parent[static_cast<size_t>(ra)] = rb;
      kept.push_back(cand);
    } else {
      extras.push_back(cand);
    }
  }
  for (const Candidate& cand : extras) {
    if (kept.size() >= target_edges) break;
    kept.push_back(cand);
  }

  // 3. Realize each edge as a lane bundle with bowed local geometry.
  struct DirectedLane {
    ElementId lanelet;
    Vec2 endpoint;
    double heading;
  };
  std::map<ElementId, std::vector<DirectedLane>> approaches, departures;

  for (const Candidate& cand : kept) {
    Vec2 a = node_pos[static_cast<size_t>(cand.a)];
    Vec2 b = node_pos[static_cast<size_t>(cand.b)];
    Vec2 dir = (b - a).Normalized();
    Vec2 a_trim = a + dir * margin;
    Vec2 b_trim = b - dir * margin;
    if (a_trim.DistanceTo(b_trim) < 20.0) continue;

    LineString axis = BowedAxis(a_trim, b_trim, stats.heading_change_stddev,
                                options.centerline_step, rng);
    LaneBundle bundle;
    bundle.id = ids.Next();
    bundle.from_node = node_ids[static_cast<size_t>(cand.a)];
    bundle.to_node = node_ids[static_cast<size_t>(cand.b)];

    auto add_line = [&](double offset, LineType type) -> ElementId {
      LineFeature lf;
      lf.id = ids.Next();
      lf.type = type;
      lf.reflectivity = type == LineType::kRoadEdge ? 0.3 : 0.85;
      lf.geometry = axis.Offset(offset);
      ElementId id = lf.id;
      (void)map.AddLineFeature(std::move(lf));
      return id;
    };
    ElementId left_edge =
        add_line(lanes * lane_width, LineType::kRoadEdge);
    ElementId right_edge =
        add_line(-lanes * lane_width, LineType::kRoadEdge);
    ElementId divider = add_line(0.0, LineType::kSolidLaneMarking);
    std::vector<ElementId> fwd_sep, bwd_sep;
    for (int i = 1; i < lanes; ++i) {
      fwd_sep.push_back(
          add_line(-i * lane_width, LineType::kDashedLaneMarking));
      bwd_sep.push_back(
          add_line(i * lane_width, LineType::kDashedLaneMarking));
    }

    for (int direction = 0; direction < 2; ++direction) {
      for (int i = 0; i < lanes; ++i) {
        double side = direction == 0 ? -1.0 : 1.0;
        Lanelet ll;
        ll.id = ids.Next();
        LineString center = axis.Offset(side * (i + 0.5) * lane_width);
        if (direction == 1) center = center.Reversed();
        ll.centerline = std::move(center);
        if (direction == 0) {
          ll.left_boundary_id =
              i == 0 ? divider : fwd_sep[static_cast<size_t>(i - 1)];
          ll.right_boundary_id =
              i == lanes - 1 ? right_edge : fwd_sep[static_cast<size_t>(i)];
        } else {
          ll.left_boundary_id =
              i == 0 ? divider : bwd_sep[static_cast<size_t>(i - 1)];
          ll.right_boundary_id =
              i == lanes - 1 ? left_edge : bwd_sep[static_cast<size_t>(i)];
        }
        ll.speed_limit_mps = stats.mean_speed_limit;
        ll.bundle_id = bundle.id;
        bundle.lanelet_ids.push_back(ll.id);
        ElementId in_node = direction == 0 ? bundle.to_node
                                           : bundle.from_node;
        ElementId out_node = direction == 0 ? bundle.from_node
                                            : bundle.to_node;
        approaches[in_node].push_back(
            {ll.id, ll.centerline.back(),
             ll.centerline.HeadingAt(ll.centerline.Length())});
        departures[out_node].push_back(
            {ll.id, ll.centerline.front(), ll.centerline.HeadingAt(0.0)});
        HDMAP_RETURN_IF_ERROR(map.AddLanelet(std::move(ll)));
      }
    }
    MapNode* na = map.FindMutableMapNode(bundle.from_node);
    MapNode* nb = map.FindMutableMapNode(bundle.to_node);
    if (na != nullptr) na->bundle_ids.push_back(bundle.id);
    if (nb != nullptr) nb->bundle_ids.push_back(bundle.id);
    HDMAP_RETURN_IF_ERROR(map.AddLaneBundle(std::move(bundle)));
  }

  // 4. Intersection connectors (topology).
  for (const auto& [node_id, ins] : approaches) {
    const MapNode* node = map.FindMapNode(node_id);
    auto dep_it = departures.find(node_id);
    if (node == nullptr || dep_it == departures.end()) continue;
    for (const DirectedLane& in : ins) {
      for (const DirectedLane& out : dep_it->second) {
        double turn = AngleDiff(out.heading, in.heading);
        if (std::abs(std::abs(turn) - std::numbers::pi) < 0.15) continue;
        Lanelet conn;
        conn.id = ids.Next();
        ElementId conn_id = conn.id;
        conn.centerline =
            BezierLine(in.endpoint, node->position, out.endpoint, 8);
        conn.speed_limit_mps = stats.mean_speed_limit * 0.6;
        HDMAP_RETURN_IF_ERROR(map.AddLanelet(std::move(conn)));
        Lanelet* from_ll = map.FindMutableLanelet(in.lanelet);
        Lanelet* conn_ll = map.FindMutableLanelet(conn_id);
        Lanelet* to_ll = map.FindMutableLanelet(out.lanelet);
        from_ll->successors.push_back(conn_id);
        conn_ll->predecessors.push_back(in.lanelet);
        conn_ll->successors.push_back(out.lanelet);
        to_ll->predecessors.push_back(conn_id);
      }
    }
  }
  return map;
}

}  // namespace hdmap
