#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "atv/factory_world.h"
#include "atv/scan_matcher.h"
#include "localization/raster_localizer.h"
#include "localization/relocalization.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

TEST(RelocalizationTest, RecoversFromLargeCoarseError) {
  HdMap map = SmallTownWorld(121, 3, 3);
  SemanticRaster raster = RasterizeMap(map, 0.25);
  Rng rng(122);
  // True pose on a lane; coarse fix 8 m off with 0.2 rad heading error.
  const Lanelet* lane = nullptr;
  for (const auto& [id, ll] : map.lanelets()) {
    if (ll.Length() > 80.0) {
      lane = &ll;
      break;
    }
  }
  ASSERT_NE(lane, nullptr);
  Pose2 truth(lane->centerline.PointAt(30.0),
              lane->centerline.HeadingAt(30.0));
  SemanticRaster patch =
      BuildObservedPatch(raster, truth, 12.0, 0.25, 0.1, 0.001, rng);

  auto result = CoarseToFineRelocalize(
      raster, patch, truth.translation + Vec2{6.0, -5.0},
      truth.heading + 0.2);
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(result->pose.translation.DistanceTo(truth.translation), 1.0);
  EXPECT_LT(std::abs(AngleDiff(result->pose.heading, truth.heading)), 0.1);
  EXPECT_GT(result->poses_evaluated, 100);
}

TEST(RelocalizationTest, RejectsFeaturelessArea) {
  HdMap map = SmallTownWorld(123, 2, 2);
  SemanticRaster raster = RasterizeMap(map, 0.25);
  Rng rng(124);
  // Observation built far outside the map content: empty patch.
  SemanticRaster empty_patch(Aabb({-10, -10}, {10, 10}), 0.25);
  EXPECT_FALSE(CoarseToFineRelocalize(raster, empty_patch, {5000, 5000},
                                      0.0)
                   .has_value());
}

TEST(RelocalizationTest, RejectsWhenCoarseFixIsHopeless) {
  HdMap map = SmallTownWorld(125, 2, 2);
  SemanticRaster raster = RasterizeMap(map, 0.25);
  Rng rng(126);
  const Lanelet& lane = map.lanelets().begin()->second;
  Pose2 truth(lane.centerline.PointAt(20.0), lane.centerline.HeadingAt(20.0));
  SemanticRaster patch =
      BuildObservedPatch(raster, truth, 10.0, 0.25, 0.1, 0.001, rng);
  // Coarse fix 10 km away: the search window contains no map content.
  auto result =
      CoarseToFineRelocalize(raster, patch, {10000.0, 10000.0}, 0.0);
  EXPECT_FALSE(result.has_value());
}

TEST(GridScanMatcherTest, CorrectsInjectedOffset) {
  Rng rng(127);
  auto factory = GenerateFactory({}, rng);
  ASSERT_TRUE(factory.ok());
  OccupancyGrid grid(factory->extent, 0.2);

  // Map the factory from the true aisle poses.
  auto scan_from = [&](const Pose2& pose) {
    std::vector<Vec2> hits;
    for (int beam = 0; beam < 90; ++beam) {
      double angle = 2.0 * std::numbers::pi * beam / 90;
      Vec2 dir{std::cos(angle), std::sin(angle)};
      double range = CastRay(factory->walls, pose.translation, dir, 30.0);
      if (range < 30.0) {
        hits.push_back(
            pose.InverseTransformPoint(pose.translation + dir * range));
      }
      grid.IntegrateRay(pose.translation,
                        pose.translation + dir * std::min(range, 30.0),
                        range < 30.0);
    }
    return hits;
  };
  for (const LineString& aisle : factory->aisles) {
    for (double s = 0.0; s < aisle.Length(); s += 2.0) {
      (void)scan_from(Pose2(aisle.PointAt(s), 0.0));
    }
  }

  // Now take a fresh scan at a known pose and perturb the prediction.
  // Near the aisle end the rack corners are in range, so both axes are
  // observable (mid-corridor, the along-aisle direction is inherently
  // ambiguous — a property, not a bug).
  const LineString& aisle = factory->aisles[1];
  Pose2 truth(aisle.PointAt(6.0), 0.3);
  std::vector<Vec2> hits;
  for (int beam = 0; beam < 90; ++beam) {
    double angle = truth.heading + 2.0 * std::numbers::pi * beam / 90;
    Vec2 dir{std::cos(angle), std::sin(angle)};
    double range = CastRay(factory->walls, truth.translation, dir, 30.0);
    if (range < 30.0) {
      hits.push_back(truth.InverseTransformPoint(
          truth.translation + dir * range));
    }
  }
  ASSERT_GT(hits.size(), 20u);

  Pose2 predicted(truth.translation + Vec2{0.5, -0.4}, truth.heading + 0.05);
  GridScanMatcher matcher({});
  auto refined = matcher.Refine(grid, predicted, hits);
  double before = predicted.translation.DistanceTo(truth.translation);
  double after = refined.pose.translation.DistanceTo(truth.translation);
  EXPECT_LT(after, before);
  EXPECT_LT(after, 0.25);
  EXPECT_LT(std::abs(AngleDiff(refined.pose.heading, truth.heading)), 0.04);
  EXPECT_GT(refined.score, 0.3);
}

TEST(GridScanMatcherTest, EmptyScanIsNoOp) {
  OccupancyGrid grid(Aabb({0, 0}, {10, 10}), 0.2);
  GridScanMatcher matcher({});
  Pose2 predicted(5, 5, 0);
  auto result = matcher.Refine(grid, predicted, {});
  EXPECT_EQ(result.pose.translation, predicted.translation);
  EXPECT_EQ(result.score, 0.0);
}

}  // namespace
}  // namespace hdmap
