#include "creation/aerial_fusion.h"

#include <algorithm>
#include <cmath>

#include "common/statistics.h"

namespace hdmap {

AerialRoadEstimate DecodeAerial(const Lanelet& lanelet, double pixel_size,
                                double geo_error_sigma, Rng& rng) {
  return DecodeAerialWithOffset(lanelet, pixel_size,
                                {rng.Normal(0.0, geo_error_sigma),
                                 rng.Normal(0.0, geo_error_sigma)});
}

AerialRoadEstimate DecodeAerialWithOffset(const Lanelet& lanelet,
                                          double pixel_size,
                                          const Vec2& geo_offset) {
  AerialRoadEstimate estimate;
  estimate.pixel_size = pixel_size;
  std::vector<Vec2> pts;
  const LineString& truth = lanelet.centerline;
  double len = truth.Length();
  for (double s = 0.0; s <= len; s += std::max(1.0, pixel_size * 4)) {
    Vec2 p = truth.PointAt(s) + geo_offset;
    // Quantize to the image grid.
    pts.push_back({std::round(p.x / pixel_size) * pixel_size,
                   std::round(p.y / pixel_size) * pixel_size});
  }
  estimate.centerline = LineString(std::move(pts));
  return estimate;
}

LineString FuseAerialAndGround(const AerialRoadEstimate& aerial,
                               const std::vector<GroundObservation>& ground,
                               double station_step) {
  const LineString& ref = aerial.centerline;
  if (ref.size() < 2) return ref;
  double len = ref.Length();
  size_t num_stations =
      static_cast<size_t>(len / station_step) + 1;

  // Project every ground detection of the lane center onto the aerial
  // centerline: its lateral residual votes for a correction at that
  // station.
  std::vector<double> residual_sum(num_stations, 0.0);
  std::vector<int> residual_count(num_stations, 0);
  for (const GroundObservation& obs : ground) {
    Vec2 detected_center = obs.estimated_pose.TransformPoint(
        {0.0, obs.detected_center_offset});
    LineStringProjection proj = ref.Project(detected_center);
    size_t station = std::min(
        num_stations - 1,
        static_cast<size_t>(proj.arc_length / station_step));
    residual_sum[station] += proj.signed_offset;
    ++residual_count[station];
  }

  // Smooth the correction over neighboring stations and apply.
  std::vector<Vec2> fused;
  for (size_t i = 0; i < num_stations; ++i) {
    double s = std::min(len, static_cast<double>(i) * station_step);
    double corr_sum = 0.0;
    int corr_n = 0;
    for (size_t j = (i >= 2 ? i - 2 : 0);
         j < std::min(num_stations, i + 3); ++j) {
      corr_sum += residual_sum[j];
      corr_n += residual_count[j];
    }
    double correction = corr_n > 0 ? corr_sum / corr_n : 0.0;
    Vec2 base = ref.PointAt(s);
    Vec2 normal = ref.TangentAt(s).Perp();
    fused.push_back(base + normal * correction);
  }
  return LineString(std::move(fused));
}

LineString MapFromPosesOnly(const std::vector<GroundObservation>& ground) {
  std::vector<Vec2> pts;
  pts.reserve(ground.size());
  for (const GroundObservation& obs : ground) {
    pts.push_back(obs.estimated_pose.TransformPoint(
        {0.0, obs.detected_center_offset}));
  }
  return LineString(std::move(pts));
}

double CenterlineError(const LineString& estimate,
                       const LineString& truth) {
  if (estimate.size() < 2) return 10.0;
  RunningStats stats;
  double len = estimate.Length();
  for (double s = 0.0; s <= len; s += 2.0) {
    stats.Add(truth.DistanceTo(estimate.PointAt(s)));
  }
  return stats.mean();
}

}  // namespace hdmap
