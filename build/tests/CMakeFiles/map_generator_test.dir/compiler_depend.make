# Empty compiler generated dependencies file for map_generator_test.
# This may be replaced when dependencies are built.
