// E15 — Hirabayashi et al. [33]: traffic-light recognition using HD-map
// features. Paper: 97% average precision from (1) map-supplied light
// positions (ROI gating), (2) the color classifier, and (3) an
// inter-frame filter.

#include <cstdio>

#include "bench/bench_util.h"
#include "perception/traffic_light_recognition.h"
#include "sim/road_network_generator.h"

namespace hdmap {
namespace {

struct Config {
  const char* name;
  bool map_gate;
  bool interframe;
};

int Run() {
  bench::PrintHeader("E15", "Traffic-light recognition with map features "
                            "[33]",
                     "97% average precision via map ROI gating + "
                     "inter-frame filtering");

  Rng rng(2101);
  TownOptions topt;
  topt.grid_rows = 3;
  topt.grid_cols = 3;
  auto town = GenerateTown(topt, rng);
  if (!town.ok()) return 1;
  const HdMap& map = *town;

  TrafficLightProgram program({});
  CameraLightDetector detector({});

  Config configs[] = {
      {"no map, no filter (baseline)", false, false},
      {"map gate only", true, false},
      {"map gate + inter-frame filter", true, true},
  };
  std::printf("  ablation over approach drives in a town with %zu "
              "lights:\n",
              [&] {
                size_t n = 0;
                for (const auto& [id, lm] : map.landmarks()) {
                  if (lm.type == LandmarkType::kTrafficLight) ++n;
                }
                return n;
              }());
  std::printf("    %-34s %-12s %-12s\n", "configuration", "precision",
              "recognitions");

  double final_precision = 0.0;
  for (const Config& config : configs) {
    MapGatedLightRecognizer::Options ropt;
    ropt.use_map_gate = config.map_gate;
    ropt.use_interframe_filter = config.interframe;
    Rng run_rng(2200);
    int correct = 0, total = 0;

    // Drive toward every traffic light in the town.
    for (const auto& [id, lm] : map.landmarks()) {
      if (lm.type != LandmarkType::kTrafficLight) continue;
      MapGatedLightRecognizer recognizer(&map, ropt);
      // Approach from 60 m out along -x of the light.
      for (int frame = 0; frame < 25; ++frame) {
        double t = frame * 0.2;
        Pose2 pose(lm.position.x - 60.0 + frame * 2.0, lm.position.y - 4.0,
                   0.0);
        auto dets = detector.Detect(map, program, pose, t, run_rng);
        for (const auto& rec : recognizer.ProcessFrame(pose, dets)) {
          ++total;
          if (rec.state == program.StateAt(rec.light_id, t)) ++correct;
        }
      }
    }
    double precision =
        total > 0 ? static_cast<double>(correct) / total : 0.0;
    final_precision = precision;
    std::printf("    %-34s %-12.1f %d\n", config.name, precision * 100.0,
                total);
  }
  bench::PrintRow("full-system average precision", "97%",
                  bench::Fmt("%.1f%%", final_precision * 100.0));
  std::printf("\n");
  return final_precision > 0.9 ? 0 : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
