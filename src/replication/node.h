#ifndef HDMAP_REPLICATION_NODE_H_
#define HDMAP_REPLICATION_NODE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/event_log.h"
#include "common/fault_injection.h"
#include "net/tile_server.h"
#include "replication/replica.h"
#include "replication/replication_log.h"
#include "replication/wal_shipper.h"
#include "service/map_service.h"

namespace hdmap {

/// One member of a replicated map-serving cluster: a MapService, its
/// TileServer (which serves both the read plane and — via the node's
/// Replica — the replication plane on the same port), the node's
/// ReplicationLog, and, while leader, a WalShipper streaming that log to
/// every follower.
///
/// Write path (leader only): StagePatch/Publish apply locally first
/// (WAL-append-before-ack still holds — the service's own durability is
/// untouched), append a record to the replication log, then block until
/// `min_ack_replicas` followers acked it (semi-synchronous commit). A
/// write that returns OK therefore survives leader death: the failover
/// controller promotes the most-caught-up follower, which holds every
/// acked record.
///
/// Role changes: BecomeLeader starts a shipper at the new term;
/// StepDown stops shipping and force-marks the replica diverged (a
/// deposed leader may hold never-replicated local patches, so it rejoins
/// via catch-up snapshot rather than trusting its own history).
///
/// Halt/Restart simulate a crash: Halt stops the server and shipper
/// (in-memory state stays, as a chaos stand-in for the disk); Restart
/// rejoins as a follower.
class ReplicationNode {
 public:
  enum class Role { kFollower, kLeader };

  struct Options {
    int node_id = 0;
    MapService::Options service;
    TileServer::Options server;
    size_t log_capacity = 4096;
    uint32_t heartbeat_interval_ms = 20;
    uint32_t io_timeout_ms = 250;
    /// Followers that must ack a write before it returns OK (capped at
    /// the follower count; 0 = fully asynchronous).
    size_t min_ack_replicas = 1;
    uint32_t ack_timeout_ms = 2000;
    /// Chaos seam shared by the replication sites ("repl.ship",
    /// "repl.apply", "repl.heartbeat"); may be null.
    FaultInjector* faults = nullptr;
  };

  explicit ReplicationNode(Options options);
  ~ReplicationNode();

  ReplicationNode(const ReplicationNode&) = delete;
  ReplicationNode& operator=(const ReplicationNode&) = delete;

  /// Initializes the service (recovering durable state when present) and
  /// starts serving as a follower.
  Status Start(const HdMap& initial_map);

  /// Simulated crash: stops the server and any shipper. In-memory state
  /// is retained (the chaos stand-in for the disk surviving the crash).
  void Halt();

  /// Rejoins the cluster as a follower after Halt.
  Status Restart();

  bool alive() const { return alive_.load(); }

  /// Cluster administration (normally driven by FailoverController).
  void BecomeLeader(uint64_t term,
                    const std::vector<WalShipper::FollowerInfo>& followers);
  void StepDown(uint64_t term);
  /// Failover fencing: raises this node's term under the replica lock
  /// so batches from any older term are rejected from here on. Called
  /// on every reachable node before the controller picks a promotion
  /// candidate (see Replica::FenceTerm).
  void FenceTerm(uint64_t term);
  void AddFollower(const WalShipper::FollowerInfo& follower);
  bool HasFollower(int node_id) const;

  /// Client write path; kFailedPrecondition when not leader, kInternal
  /// when the ack quorum was not reached in time (the write is staged
  /// locally and will still replicate, but it is NOT acked).
  Status StagePatch(const MapPatch& patch);
  Status Publish();

  /// Simulated symmetric network partition: inbound replication requests
  /// are rejected and (as leader) nothing is shipped.
  void SetPartitioned(bool on);
  bool partitioned() const { return partitioned_.load(); }

  Role role() const { return role_.load(); }
  uint64_t term() const { return term_.load(); }
  int node_id() const { return opts_.node_id; }
  uint16_t port() const;
  const std::string& host() const { return opts_.server.bind_address; }

  /// Highest contiguously applied record seq (replica position as a
  /// follower; log end as a leader).
  uint64_t applied_seq() const;
  double MsSinceLeaderContact() const { return replica_.MsSinceLeaderContact(); }

  MapService& service() { return service_; }
  const MapService& service() const { return service_; }
  ReplicationLog& log() { return log_; }
  WalShipper* shipper() { return shipper_.get(); }
  const EventLog& events() const { return events_; }

  /// Replication status document served as the kStats "replication"
  /// value: role, term, log positions, leader-contact age, and (as
  /// leader) per-follower acked seq + lag in records and milliseconds.
  /// Safe from any thread; never blocks on the write path's ack wait.
  std::string ReplicationStatusJson() const;

 private:
  /// Server options for Start/Restart: the configured template plus the
  /// replication handler, fault fallback, and the kStats introspection
  /// hooks (label, replication status, node events).
  TileServer::Options ServerOptions();
  /// Captures a catch-up snapshot of the current state (consistent with
  /// the last publish marker); empty string when not leader.
  std::string BuildCatchUpPayload();
  /// Wakes the shipper for `seq` and blocks for the ack quorum.
  Status AwaitAcks(const std::shared_ptr<WalShipper>& shipper, uint64_t seq);

  Options opts_;
  MapService service_;
  ReplicationLog log_;
  std::atomic<uint64_t> term_{0};
  std::atomic<Role> role_{Role::kFollower};
  std::atomic<bool> alive_{false};
  std::atomic<bool> partitioned_{false};
  /// Set when this node's history may have diverged from the cluster's
  /// (it was deposed or restarted); the replica consumes it and demands a
  /// catch-up snapshot before applying anything else.
  std::atomic<bool> resync_needed_{false};
  EventLog events_;
  Replica replica_;
  std::unique_ptr<TileServer> server_;

  /// Serializes the write path and role changes so log appends stay
  /// consistent with service state (never held while waiting for acks,
  /// and replica-internal locks are never taken under it).
  mutable std::mutex write_mu_;
  std::shared_ptr<WalShipper> shipper_;  // under write_mu_; live as leader
  uint64_t last_publish_seq_ = 0;        // under write_mu_
  uint64_t leader_term_ = 0;             // term of our last election

  /// "replication.ack_wait" — time the write path spent blocked in the
  /// semi-synchronous ack gate (exported as a _seconds histogram).
  LatencyHistogram* ack_wait_ = nullptr;
};

}  // namespace hdmap

#endif  // HDMAP_REPLICATION_NODE_H_
