#include "localization/ekf_localizer.h"

#include <cmath>

#include "common/units.h"

namespace hdmap {

namespace {

/// In-place 2x2 inverse; returns false when singular.
bool Invert2x2(const double m[2][2], double out[2][2]) {
  double det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
  if (std::abs(det) < 1e-12) return false;
  double inv_det = 1.0 / det;
  out[0][0] = m[1][1] * inv_det;
  out[0][1] = -m[0][1] * inv_det;
  out[1][0] = -m[1][0] * inv_det;
  out[1][1] = m[0][0] * inv_det;
  return true;
}

}  // namespace

EkfLocalizer::EkfLocalizer(const HdMap* map, const Options& options)
    : map_(map), options_(options) {}

void EkfLocalizer::Init(const Pose2& initial, double position_sigma,
                        double heading_sigma) {
  state_ = initial;
  cov_ = {};
  cov_[0][0] = position_sigma * position_sigma;
  cov_[1][1] = position_sigma * position_sigma;
  cov_[2][2] = heading_sigma * heading_sigma;
}

void EkfLocalizer::Predict(double distance, double heading_change) {
  double h_mid = state_.heading + heading_change / 2.0;
  double c = std::cos(h_mid), s = std::sin(h_mid);
  state_ = Pose2(state_.translation + Vec2{c, s} * distance,
                 state_.heading + heading_change);

  // Jacobian F = d(state')/d(state).
  double F[3][3] = {{1, 0, -distance * s},
                    {0, 1, distance * c},
                    {0, 0, 1}};
  // Process noise mapped through motion direction.
  double qd = options_.odom_distance_noise_frac *
              std::max(0.05, std::abs(distance));
  double qh = options_.odom_heading_noise;
  double Q[3][3] = {{qd * qd * c * c, qd * qd * c * s, 0},
                    {qd * qd * c * s, qd * qd * s * s, 0},
                    {0, 0, qh * qh}};

  Cov3 next{};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double acc = 0.0;
      for (int k = 0; k < 3; ++k) {
        for (int l = 0; l < 3; ++l) {
          acc += F[i][k] * cov_[static_cast<size_t>(k)][static_cast<size_t>(l)] * F[j][l];
        }
      }
      next[static_cast<size_t>(i)][static_cast<size_t>(j)] = acc + Q[i][j];
    }
  }
  cov_ = next;
}

bool EkfLocalizer::UpdateGps(const Vec2& fix) {
  // H = [I2 | 0]; R = sigma^2 I.
  double r2 = options_.gps_noise_sigma * options_.gps_noise_sigma;
  double S[2][2] = {{cov_[0][0] + r2, cov_[0][1]},
                    {cov_[1][0], cov_[1][1] + r2}};
  double S_inv[2][2];
  if (!Invert2x2(S, S_inv)) return false;
  Vec2 innov = fix - state_.translation;
  double chi2 = innov.x * (S_inv[0][0] * innov.x + S_inv[0][1] * innov.y) +
                innov.y * (S_inv[1][0] * innov.x + S_inv[1][1] * innov.y);
  if (chi2 > options_.gate_chi2) return false;  // Verification gate.

  // K = P H^T S^-1  (3x2).
  double K[3][2];
  for (int i = 0; i < 3; ++i) {
    double p0 = cov_[static_cast<size_t>(i)][0];
    double p1 = cov_[static_cast<size_t>(i)][1];
    K[i][0] = p0 * S_inv[0][0] + p1 * S_inv[1][0];
    K[i][1] = p0 * S_inv[0][1] + p1 * S_inv[1][1];
  }
  state_ = Pose2(state_.translation +
                     Vec2{K[0][0] * innov.x + K[0][1] * innov.y,
                          K[1][0] * innov.x + K[1][1] * innov.y},
                 state_.heading + K[2][0] * innov.x + K[2][1] * innov.y);
  // P = (I - K H) P ; H selects rows 0..1.
  Cov3 next{};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double ikh0 = (i == 0 ? 1.0 : 0.0) - K[i][0] * (0 == 0 ? 1.0 : 0.0);
      (void)ikh0;
      double acc = cov_[static_cast<size_t>(i)][static_cast<size_t>(j)];
      acc -= K[i][0] * cov_[0][static_cast<size_t>(j)] +
             K[i][1] * cov_[1][static_cast<size_t>(j)];
      next[static_cast<size_t>(i)][static_cast<size_t>(j)] = acc;
    }
  }
  cov_ = next;
  return true;
}

int EkfLocalizer::UpdateLandmarks(
    const std::vector<LandmarkDetection>& detections) {
  int accepted = 0;
  for (const LandmarkDetection& det : detections) {
    // Predicted world position of the detection under the current state.
    Vec2 world = state_.TransformPoint(det.position_vehicle);
    // Associate: nearest map landmark of the same type.
    const Landmark* best = nullptr;
    double best_d = options_.association_radius;
    for (ElementId id :
         map_->LandmarksNear(world, options_.association_radius)) {
      const Landmark* lm = map_->FindLandmark(id);
      if (lm == nullptr || lm->type != det.type) continue;
      double d = lm->position.xy().DistanceTo(world);
      if (d < best_d) {
        best_d = d;
        best = lm;
      }
    }
    if (best == nullptr) continue;

    // Range/bearing measurement model.
    Vec2 delta = best->position.xy() - state_.translation;
    double range_pred = delta.Norm();
    if (range_pred < 1.0) continue;
    double bearing_pred = AngleDiff(delta.Angle(), state_.heading);
    double range_meas = det.position_vehicle.Norm();
    double bearing_meas = det.position_vehicle.Angle();
    double innov[2] = {range_meas - range_pred,
                       AngleDiff(bearing_meas, bearing_pred)};

    // H (2x3): d[range, bearing]/d[x, y, heading].
    double inv_r = 1.0 / range_pred;
    double H[2][3] = {
        {-delta.x * inv_r, -delta.y * inv_r, 0.0},
        {delta.y * inv_r * inv_r, -delta.x * inv_r * inv_r, -1.0}};
    double R[2] = {options_.landmark_range_sigma *
                       options_.landmark_range_sigma,
                   options_.landmark_bearing_sigma *
                       options_.landmark_bearing_sigma};
    // S = H P H^T + R.
    double S[2][2] = {{R[0], 0}, {0, R[1]}};
    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 2; ++j) {
        for (int k = 0; k < 3; ++k) {
          for (int l = 0; l < 3; ++l) {
            S[i][j] += H[i][k] *
                       cov_[static_cast<size_t>(k)][static_cast<size_t>(l)] *
                       H[j][l];
          }
        }
      }
    }
    double S_inv[2][2];
    if (!Invert2x2(S, S_inv)) continue;
    double chi2 =
        innov[0] * (S_inv[0][0] * innov[0] + S_inv[0][1] * innov[1]) +
        innov[1] * (S_inv[1][0] * innov[0] + S_inv[1][1] * innov[1]);
    if (chi2 > options_.gate_chi2) continue;  // Gate: clutter/mismatch.

    // K = P H^T S^-1 (3x2).
    double PHt[3][2] = {};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 2; ++j) {
        for (int k = 0; k < 3; ++k) {
          PHt[i][j] +=
              cov_[static_cast<size_t>(i)][static_cast<size_t>(k)] * H[j][k];
        }
      }
    }
    double K[3][2];
    for (int i = 0; i < 3; ++i) {
      K[i][0] = PHt[i][0] * S_inv[0][0] + PHt[i][1] * S_inv[1][0];
      K[i][1] = PHt[i][0] * S_inv[0][1] + PHt[i][1] * S_inv[1][1];
    }
    state_ = Pose2(
        state_.translation + Vec2{K[0][0] * innov[0] + K[0][1] * innov[1],
                                  K[1][0] * innov[0] + K[1][1] * innov[1]},
        state_.heading + K[2][0] * innov[0] + K[2][1] * innov[1]);
    // P = P - K S K^T.
    Cov3 next = cov_;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        double acc = 0.0;
        for (int a = 0; a < 2; ++a) {
          for (int b = 0; b < 2; ++b) {
            acc += K[i][a] * S[a][b] * K[j][b];
          }
        }
        next[static_cast<size_t>(i)][static_cast<size_t>(j)] -= acc;
      }
    }
    cov_ = next;
    ++accepted;
  }
  return accepted;
}

int EkfLocalizer::UpdateLandmarkBearings(
    const std::vector<LandmarkDetection>& detections) {
  int accepted = 0;
  for (const LandmarkDetection& det : detections) {
    Vec2 world = state_.TransformPoint(det.position_vehicle);
    const Landmark* best = nullptr;
    double best_d = options_.association_radius;
    for (ElementId id :
         map_->LandmarksNear(world, options_.association_radius)) {
      const Landmark* lm = map_->FindLandmark(id);
      if (lm == nullptr || lm->type != det.type) continue;
      double d = lm->position.xy().DistanceTo(world);
      if (d < best_d) {
        best_d = d;
        best = lm;
      }
    }
    if (best == nullptr) continue;

    Vec2 delta = best->position.xy() - state_.translation;
    double range_pred = delta.Norm();
    if (range_pred < 1.0) continue;
    double bearing_pred = AngleDiff(delta.Angle(), state_.heading);
    double innov = AngleDiff(det.position_vehicle.Angle(), bearing_pred);

    // Scalar measurement: H = d bearing / d [x, y, heading].
    double inv_r2 = 1.0 / (range_pred * range_pred);
    double H[3] = {delta.y * inv_r2, -delta.x * inv_r2, -1.0};
    double r = options_.landmark_bearing_sigma *
               options_.landmark_bearing_sigma;
    double s = r;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        s += H[i] * cov_[static_cast<size_t>(i)][static_cast<size_t>(j)] *
             H[j];
      }
    }
    if (s <= 0.0) continue;
    double chi2 = innov * innov / s;
    // Scalar gate: 1-dof chi-square ~99% is 6.63.
    if (chi2 > 6.63) continue;

    double K[3];
    for (int i = 0; i < 3; ++i) {
      double ph = 0.0;
      for (int j = 0; j < 3; ++j) {
        ph += cov_[static_cast<size_t>(i)][static_cast<size_t>(j)] * H[j];
      }
      K[i] = ph / s;
    }
    state_ = Pose2(state_.translation + Vec2{K[0] * innov, K[1] * innov},
                   state_.heading + K[2] * innov);
    Cov3 next = cov_;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        next[static_cast<size_t>(i)][static_cast<size_t>(j)] -=
            K[i] * s * K[j];
      }
    }
    cov_ = next;
    ++accepted;
  }
  return accepted;
}

double EkfLocalizer::PositionSigma() const {
  return std::sqrt(std::max(0.0, cov_[0][0] + cov_[1][1]));
}

}  // namespace hdmap
