#include "core/tile_store.h"

#include <cmath>

#include "core/serialization.h"

namespace hdmap {

namespace {

uint64_t Part1By1(uint32_t x) {
  uint64_t v = x;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

}  // namespace

uint64_t TileId::Morton() const {
  // Bias to keep coordinates non-negative.
  uint32_t bx = static_cast<uint32_t>(static_cast<int64_t>(x) + (1 << 30));
  uint32_t by = static_cast<uint32_t>(static_cast<int64_t>(y) + (1 << 30));
  return Part1By1(bx) | (Part1By1(by) << 1);
}

size_t TileStore::TotalBytes() const {
  size_t total = 0;
  for (const auto& [key, blob] : tiles_) total += blob.size();
  return total;
}

TileId TileStore::TileAt(const Vec2& p) const {
  return TileId{static_cast<int32_t>(std::floor(p.x / tile_size_)),
                static_cast<int32_t>(std::floor(p.y / tile_size_))};
}

void TileStore::Build(const HdMap& map) {
  tiles_.clear();
  tile_ids_.clear();

  // Collect the per-tile element sets, then serialize each tile map.
  std::map<uint64_t, HdMap> tile_maps;
  std::map<uint64_t, TileId> ids;

  auto tiles_for_box = [&](const Aabb& box) {
    std::vector<TileId> out;
    if (box.IsEmpty()) return out;
    TileId lo = TileAt(box.min);
    TileId hi = TileAt(box.max);
    for (int32_t ty = lo.y; ty <= hi.y; ++ty) {
      for (int32_t tx = lo.x; tx <= hi.x; ++tx) {
        out.push_back(TileId{tx, ty});
      }
    }
    return out;
  };

  for (const auto& [id, lm] : map.landmarks()) {
    for (const TileId& t : tiles_for_box(Aabb::FromPoint(lm.position.xy()))) {
      uint64_t key = t.Morton();
      ids.emplace(key, t);
      // Ignore AlreadyExists: an element can only land once per tile.
      (void)tile_maps[key].AddLandmark(lm);
    }
  }
  for (const auto& [id, lf] : map.line_features()) {
    for (const TileId& t : tiles_for_box(lf.geometry.BoundingBox())) {
      uint64_t key = t.Morton();
      ids.emplace(key, t);
      (void)tile_maps[key].AddLineFeature(lf);
    }
  }
  for (const auto& [id, af] : map.area_features()) {
    for (const TileId& t : tiles_for_box(af.geometry.BoundingBox())) {
      uint64_t key = t.Morton();
      ids.emplace(key, t);
      (void)tile_maps[key].AddAreaFeature(af);
    }
  }
  for (const auto& [id, ll] : map.lanelets()) {
    for (const TileId& t : tiles_for_box(ll.centerline.BoundingBox())) {
      uint64_t key = t.Morton();
      ids.emplace(key, t);
      // Strip cross-tile references that may not resolve within the tile;
      // region stitching restores them from the authoritative source.
      Lanelet copy = ll;
      (void)tile_maps[key].AddLanelet(std::move(copy));
    }
  }
  for (const auto& [id, reg] : map.regulatory_elements()) {
    // Regulatory elements ride with their first referenced lanelet.
    if (reg.lanelet_ids.empty()) continue;
    const Lanelet* ll = map.FindLanelet(reg.lanelet_ids.front());
    if (ll == nullptr) continue;
    for (const TileId& t : tiles_for_box(ll->centerline.BoundingBox())) {
      uint64_t key = t.Morton();
      if (tile_maps.find(key) == tile_maps.end()) continue;
      (void)tile_maps[key].AddRegulatoryElement(reg);
    }
  }

  for (auto& [key, tile_map] : tile_maps) {
    tiles_[key] = SerializeMap(tile_map);
    tile_ids_[key] = ids[key];
  }
}

void TileStore::PutTile(const TileId& id, const HdMap& tile_map) {
  tiles_[id.Morton()] = SerializeMap(tile_map);
  tile_ids_[id.Morton()] = id;
}

Result<HdMap> TileStore::LoadTile(const TileId& id) const {
  auto it = tiles_.find(id.Morton());
  if (it == tiles_.end()) {
    return Status::NotFound("tile (" + std::to_string(id.x) + "," +
                            std::to_string(id.y) + ")");
  }
  return DeserializeMap(it->second);
}

std::vector<TileId> TileStore::TilesInBox(const Aabb& box) const {
  std::vector<TileId> out;
  if (box.IsEmpty()) return out;
  TileId lo = TileAt(box.min);
  TileId hi = TileAt(box.max);
  for (int32_t ty = lo.y; ty <= hi.y; ++ty) {
    for (int32_t tx = lo.x; tx <= hi.x; ++tx) {
      TileId t{tx, ty};
      if (tiles_.count(t.Morton()) > 0) out.push_back(t);
    }
  }
  return out;
}

Result<HdMap> TileStore::LoadRegion(const Aabb& box) const {
  HdMap region;
  for (const TileId& t : TilesInBox(box)) {
    HDMAP_ASSIGN_OR_RETURN(HdMap tile, LoadTile(t));
    for (const auto& [id, lm] : tile.landmarks()) {
      (void)region.AddLandmark(lm);  // Duplicates across tiles are fine.
    }
    for (const auto& [id, lf] : tile.line_features()) {
      (void)region.AddLineFeature(lf);
    }
    for (const auto& [id, af] : tile.area_features()) {
      (void)region.AddAreaFeature(af);
    }
    for (const auto& [id, ll] : tile.lanelets()) {
      (void)region.AddLanelet(ll);
    }
    for (const auto& [id, reg] : tile.regulatory_elements()) {
      (void)region.AddRegulatoryElement(reg);
    }
  }
  return region;
}

}  // namespace hdmap
