
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maintenance/change_detector.cc" "src/maintenance/CMakeFiles/hdmap_maintenance.dir/change_detector.cc.o" "gcc" "src/maintenance/CMakeFiles/hdmap_maintenance.dir/change_detector.cc.o.d"
  "/root/repo/src/maintenance/crowd_sensing.cc" "src/maintenance/CMakeFiles/hdmap_maintenance.dir/crowd_sensing.cc.o" "gcc" "src/maintenance/CMakeFiles/hdmap_maintenance.dir/crowd_sensing.cc.o.d"
  "/root/repo/src/maintenance/incremental_fusion.cc" "src/maintenance/CMakeFiles/hdmap_maintenance.dir/incremental_fusion.cc.o" "gcc" "src/maintenance/CMakeFiles/hdmap_maintenance.dir/incremental_fusion.cc.o.d"
  "/root/repo/src/maintenance/raster_diff.cc" "src/maintenance/CMakeFiles/hdmap_maintenance.dir/raster_diff.cc.o" "gcc" "src/maintenance/CMakeFiles/hdmap_maintenance.dir/raster_diff.cc.o.d"
  "/root/repo/src/maintenance/slamcu.cc" "src/maintenance/CMakeFiles/hdmap_maintenance.dir/slamcu.cc.o" "gcc" "src/maintenance/CMakeFiles/hdmap_maintenance.dir/slamcu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hdmap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hdmap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
