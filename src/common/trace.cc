#include "common/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace hdmap {

namespace {

thread_local TraceContext g_trace_context;

/// Small dense thread ordinal (stable for the thread's lifetime): keys
/// the ring stripe and labels the Perfetto track.
uint32_t ThisThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Offset (µs) from the steady clock to the unix epoch, sampled now.
/// Spans store steady timestamps (immune to NTP steps mid-span); adding
/// this anchor at export time puts them on the shared wall clock so two
/// processes' timelines align.
int64_t WallAnchorUsNow() {
  int64_t wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  int64_t steady_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  return wall_us - steady_us;
}

}  // namespace

TraceContext CurrentTraceContext() { return g_trace_context; }

TraceContextScope::TraceContextScope(const TraceContext& ctx)
    : saved_(g_trace_context) {
  g_trace_context = ctx;
}

TraceContextScope::~TraceContextScope() { g_trace_context = saved_; }

TraceRecorder::TraceRecorder() : wall_anchor_us_(WallAnchorUsNow()) {
  Configure(Options{});
}

TraceRecorder::TraceRecorder(const Options& options)
    : wall_anchor_us_(WallAnchorUsNow()) {
  Configure(options);
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Configure(const Options& options) {
  enabled_.store(options.enabled, std::memory_order_relaxed);
  sample_every_n_.store(options.sample_every_n, std::memory_order_relaxed);
  slow_threshold_ns_.store(
      options.slow_threshold_s > 0.0
          ? static_cast<uint64_t>(options.slow_threshold_s * 1e9)
          : 0,
      std::memory_order_relaxed);
  stripe_capacity_ = std::max<size_t>(1, options.capacity / kStripes);
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.ring.assign(stripe_capacity_, TraceEvent{});
    stripe.next = 0;
    stripe.size = 0;
  }
}

TraceRecorder::Options TraceRecorder::options() const {
  Options out;
  out.enabled = enabled_.load(std::memory_order_relaxed);
  out.capacity = stripe_capacity_ * kStripes;
  out.sample_every_n = sample_every_n_.load(std::memory_order_relaxed);
  out.slow_threshold_s = slow_threshold_s();
  return out;
}

bool TraceRecorder::SampleNextTrace() {
  uint32_t n = sample_every_n_.load(std::memory_order_relaxed);
  if (n == 0) return false;
  return sample_counter_.fetch_add(1, std::memory_order_relaxed) % n == 0;
}

void TraceRecorder::Record(const TraceEvent& event) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripes_[ThisThreadOrdinal() % kStripes];
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.ring.empty()) return;
  if (stripe.size == stripe.ring.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++stripe.size;
  }
  stripe.ring[stripe.next] = event;
  stripe.next = (stripe.next + 1) % stripe.ring.size();
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    // Oldest-first within the stripe: the ring's next write position is
    // also its oldest entry once it has wrapped.
    size_t start = stripe.size == stripe.ring.size()
                       ? stripe.next
                       : (stripe.next + stripe.ring.size() - stripe.size) %
                             stripe.ring.size();
    for (size_t i = 0; i < stripe.size; ++i) {
      out.push_back(stripe.ring[(start + i) % stripe.ring.size()]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span_id < b.span_id;
            });
  return out;
}

void TraceRecorder::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.next = 0;
    stripe.size = 0;
  }
}

std::string TraceRecorder::ExportChromeTraceJson() const {
  return ExportChromeTraceJson(1, "hdmap");
}

std::string TraceRecorder::ExportChromeTraceJson(
    uint32_t process_id, const std::string& process_label) const {
  std::vector<TraceEvent> events = Snapshot();
  std::string out;
  out.reserve(events.size() * 220 + 192);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[448];
  // Perfetto names the process track from this metadata record, which
  // is what makes a merged multi-node export readable.
  std::snprintf(buf, sizeof(buf),
                "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                "\"args\":{\"name\":\"%s\"}}",
                process_id, process_label.c_str());
  out += buf;
  for (const TraceEvent& e : events) {
    std::snprintf(
        buf, sizeof(buf),
        ",\n{\"name\":\"%s\",\"cat\":\"hdmap\",\"ph\":\"X\","
        "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%u,"
        "\"args\":{\"trace_id\":\"%" PRIu64 "\",\"span_id\":\"%" PRIu64
        "\",\"parent_span_id\":\"%" PRIu64
        "\",\"status\":\"%.*s\",\"slow\":%s,\"sampled\":%s}}",
        e.name,
        static_cast<double>(e.start_ns) / 1e3 +
            static_cast<double>(wall_anchor_us_),
        static_cast<double>(e.duration_ns) / 1e3, process_id, e.thread_id,
        e.trace_id, e.span_id, e.parent_span_id,
        static_cast<int>(StatusCodeToString(e.status).size()),
        StatusCodeToString(e.status).data(), e.slow ? "true" : "false",
        e.sampled ? "true" : "false");
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

TraceSpan::TraceSpan(const char* name, TraceRecorder* recorder) {
  event_.name = name;
  const TraceContext& ctx = g_trace_context;
  if (!ctx.active()) return;  // No enclosing trace: stay inert.
  Open(recorder != nullptr ? recorder : &TraceRecorder::Global(), ctx);
}

TraceSpan::TraceSpan(const char* name, RootTag, TraceRecorder* recorder) {
  event_.name = name;
  TraceRecorder* rec =
      recorder != nullptr ? recorder : &TraceRecorder::Global();
  const TraceContext& ambient = g_trace_context;
  if (ambient.active()) {
    // Already inside a trace: a layered entry point (e.g. a MapService
    // endpoint called by the network edge, whose per-request span is the
    // real root) joins the enclosing trace as a child, so one request
    // yields one trace instead of two disconnected ones.
    Open(rec, ambient);
    return;
  }
  if (!rec->enabled()) return;
  TraceContext ctx;
  ctx.trace_id = rec->NextTraceId();
  ctx.parent_span_id = 0;
  ctx.sampled = rec->SampleNextTrace();
  Open(rec, ctx);
}

void TraceSpan::Open(TraceRecorder* recorder, const TraceContext& ctx) {
  recorder_ = recorder;
  event_.trace_id = ctx.trace_id;
  event_.parent_span_id = ctx.parent_span_id;
  event_.span_id = recorder->NextSpanId();
  event_.sampled = ctx.sampled;
  event_.thread_id = ThisThreadOrdinal();
  event_.start_ns = NowNs();
  saved_ = g_trace_context;
  g_trace_context =
      TraceContext{event_.trace_id, event_.span_id, ctx.sampled};
  active_ = true;
}

void TraceSpan::End() {
  if (ended_) return;
  ended_ = true;
  if (!active_) return;
  g_trace_context = saved_;
  event_.duration_ns = NowNs() - event_.start_ns;
  uint64_t slow_ns = recorder_->slow_threshold_ns();
  event_.slow = slow_ns != 0 && event_.duration_ns > slow_ns;
  if (record_always_ || event_.sampled || event_.slow ||
      (event_.status != StatusCode::kOk && force_record_)) {
    recorder_->Record(event_);
  }
}

}  // namespace hdmap
