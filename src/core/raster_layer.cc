#include "core/raster_layer.h"

#include <algorithm>
#include <cmath>

#include "core/binary_io.h"

namespace hdmap {

SemanticRaster::SemanticRaster(const Aabb& extent, double resolution)
    : origin_(extent.min),
      resolution_(resolution),
      width_(std::max(1, static_cast<int>(std::ceil(extent.Width() /
                                                    resolution)))),
      height_(std::max(1, static_cast<int>(std::ceil(extent.Height() /
                                                     resolution)))),
      cells_(static_cast<size_t>(width_) * static_cast<size_t>(height_), 0) {}

void SemanticRaster::DrawLineString(const LineString& ls, uint8_t bits) {
  if (ls.size() < 2) return;
  double step = resolution_ * 0.5;
  double len = ls.Length();
  for (double s = 0.0; s <= len; s += step) {
    Vec2 p = ls.PointAt(s);
    int cx = 0, cy = 0;
    WorldToCell(p, &cx, &cy);
    Set(cx, cy, bits);
  }
}

void SemanticRaster::DrawDashedLineString(const LineString& ls,
                                          uint8_t bits, double dash_len,
                                          double gap_len) {
  if (ls.size() < 2) return;
  double step = resolution_ * 0.5;
  double len = ls.Length();
  double period = dash_len + gap_len;
  for (double s = 0.0; s <= len; s += step) {
    if (std::fmod(s, period) >= dash_len) continue;  // In a gap.
    Vec2 p = ls.PointAt(s);
    int cx = 0, cy = 0;
    WorldToCell(p, &cx, &cy);
    Set(cx, cy, bits);
  }
}

void SemanticRaster::DrawPolygon(const Polygon& poly, uint8_t bits) {
  if (poly.size() < 3) return;
  Aabb box = poly.BoundingBox();
  int cx_lo = 0, cy_lo = 0, cx_hi = 0, cy_hi = 0;
  WorldToCell(box.min, &cx_lo, &cy_lo);
  WorldToCell(box.max, &cx_hi, &cy_hi);
  for (int cy = std::max(0, cy_lo); cy <= std::min(height_ - 1, cy_hi);
       ++cy) {
    for (int cx = std::max(0, cx_lo); cx <= std::min(width_ - 1, cx_hi);
         ++cx) {
      if (poly.Contains(CellCenter(cx, cy))) Set(cx, cy, bits);
    }
  }
}

void SemanticRaster::DrawDisc(const Vec2& center, double radius,
                              uint8_t bits) {
  int cx0 = 0, cy0 = 0;
  WorldToCell(center, &cx0, &cy0);
  int r_cells = std::max(1, static_cast<int>(std::ceil(radius / resolution_)));
  for (int dy = -r_cells; dy <= r_cells; ++dy) {
    for (int dx = -r_cells; dx <= r_cells; ++dx) {
      if (CellCenter(cx0 + dx, cy0 + dy).DistanceTo(center) <= radius) {
        Set(cx0 + dx, cy0 + dy, bits);
      }
    }
  }
}

std::vector<SemanticRaster::OccupiedCell> SemanticRaster::OccupiedCells()
    const {
  std::vector<OccupiedCell> out;
  for (int cy = 0; cy < height_; ++cy) {
    for (int cx = 0; cx < width_; ++cx) {
      uint8_t bits = At(cx, cy);
      if (bits != 0) out.push_back({CellCenter(cx, cy), bits});
    }
  }
  return out;
}

double SemanticRaster::MatchScoreSparse(
    const std::vector<OccupiedCell>& observed,
    const Pose2& patch_origin_pose) const {
  double score = 0.0;
  for (const OccupiedCell& cell : observed) {
    uint8_t map_bits =
        Sample(patch_origin_pose.TransformPoint(cell.center));
    if ((cell.bits & map_bits) != 0) {
      score += 1.0;
    } else {
      score -= 0.2;
    }
  }
  return score;
}

double SemanticRaster::MatchScore(const SemanticRaster& patch,
                                  const Pose2& patch_origin_pose) const {
  double score = 0.0;
  for (int cy = 0; cy < patch.height(); ++cy) {
    for (int cx = 0; cx < patch.width(); ++cx) {
      uint8_t observed = patch.At(cx, cy);
      if (observed == 0) continue;
      Vec2 local = patch.CellCenter(cx, cy);
      Vec2 world = patch_origin_pose.TransformPoint(local);
      uint8_t map_bits = Sample(world);
      if ((observed & map_bits) != 0) {
        score += 1.0;
      } else {
        score -= 0.2;  // Observed class absent from the map.
      }
    }
  }
  return score;
}

double SemanticRaster::DiffFraction(const SemanticRaster& other) const {
  if (other.width() != width_ || other.height() != height_) return 1.0;
  size_t differing = 0;
  size_t considered = 0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    uint8_t a = cells_[i];
    uint8_t b = other.cells_[i];
    if (a == 0 && b == 0) continue;
    ++considered;
    if (a != b) ++differing;
  }
  return considered == 0
             ? 0.0
             : static_cast<double>(differing) /
                   static_cast<double>(considered);
}

std::string SemanticRaster::SerializeRle() const {
  BufferWriter w;
  w.WriteF64(origin_.x);
  w.WriteF64(origin_.y);
  w.WriteF64(resolution_);
  w.WriteI32(width_);
  w.WriteI32(height_);
  // RLE: (count, value) pairs with 16-bit counts.
  size_t i = 0;
  while (i < cells_.size()) {
    uint8_t v = cells_[i];
    size_t run = 1;
    while (i + run < cells_.size() && cells_[i + run] == v &&
           run < 0xffff) {
      ++run;
    }
    w.WriteI16(static_cast<int16_t>(run));
    w.WriteU8(v);
    i += run;
  }
  return w.Release();
}

size_t SemanticRaster::NumOccupied() const {
  size_t n = 0;
  for (uint8_t c : cells_) {
    if (c != 0) ++n;
  }
  return n;
}

SemanticRaster RasterizeMap(const HdMap& map, double resolution,
                            double margin) {
  return RasterizeMapInExtent(map, resolution,
                              map.BoundingBox().Expanded(margin));
}

SemanticRaster RasterizeMapInExtent(const HdMap& map, double resolution,
                                    const Aabb& extent) {
  SemanticRaster raster(extent, resolution);
  for (const auto& [id, lf] : map.line_features()) {
    switch (lf.type) {
      case LineType::kSolidLaneMarking:
        raster.DrawLineString(lf.geometry, kRasterLaneMarking);
        break;
      case LineType::kDashedLaneMarking:
        raster.DrawDashedLineString(lf.geometry, kRasterLaneMarking);
        break;
      case LineType::kRoadEdge:
        raster.DrawLineString(lf.geometry, kRasterRoadEdge);
        break;
      case LineType::kStopLine:
        raster.DrawLineString(lf.geometry, kRasterStopLine);
        break;
      case LineType::kVirtual:
        break;
    }
  }
  for (const auto& [id, af] : map.area_features()) {
    uint8_t bits = 0;
    switch (af.type) {
      case AreaType::kCrosswalk:
        bits = kRasterCrosswalk;
        break;
      case AreaType::kIntersection:
        bits = kRasterIntersection;
        break;
      default:
        bits = 0;
        break;
    }
    if (bits != 0) raster.DrawPolygon(af.geometry, bits);
  }
  for (const auto& [id, lm] : map.landmarks()) {
    uint8_t bits = lm.type == LandmarkType::kTrafficLight ? kRasterLight
                                                          : kRasterSign;
    raster.DrawDisc(lm.position.xy(), 0.4, bits);
  }
  for (const auto& [id, ll] : map.lanelets()) {
    raster.DrawLineString(ll.centerline, kRasterCenterline);
  }
  return raster;
}

}  // namespace hdmap
