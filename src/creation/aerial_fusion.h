#ifndef HDMAP_CREATION_AERIAL_FUSION_H_
#define HDMAP_CREATION_AERIAL_FUSION_H_

#include <vector>

#include "common/rng.h"
#include "core/hd_map.h"
#include "geometry/line_string.h"
#include "geometry/pose2.h"

namespace hdmap {

/// Simulated aerial-image road decoding (Matyus et al. [27], Fig. 1,
/// phase 1-2): the true road centerline as seen from orthophoto parsing —
/// quantized to the image grid and systematically offset by the
/// georeferencing error of the imagery.
struct AerialRoadEstimate {
  LineString centerline;
  double pixel_size = 0.5;  ///< Ground sampling distance, m.
};

/// Decodes an "aerial image" of a lanelet: ground-truth centerline,
/// quantized to pixel_size, plus a constant georeferencing offset drawn
/// from `geo_error_sigma`.
AerialRoadEstimate DecodeAerial(const Lanelet& lanelet, double pixel_size,
                                double geo_error_sigma, Rng& rng);

/// Deterministic variant with an explicit georeferencing offset (tests,
/// controlled sweeps).
AerialRoadEstimate DecodeAerialWithOffset(const Lanelet& lanelet,
                                          double pixel_size,
                                          const Vec2& geo_offset);

/// A ground-level lane observation: the vehicle's estimated pose and the
/// lateral offset of the detected lane center (phase 3 of Fig. 1).
struct GroundObservation {
  Pose2 estimated_pose;
  double detected_center_offset = 0.0;  ///< Vehicle-frame lateral offset.
};

/// Phase 4: cooperative fusion of the aerial estimate with ground-level
/// detections on a common grid. Ground detections correct the aerial
/// georeferencing bias station-wise; the result is the fused high-
/// resolution centerline.
LineString FuseAerialAndGround(const AerialRoadEstimate& aerial,
                               const std::vector<GroundObservation>& ground,
                               double station_step = 5.0);

/// Baseline for the Fig. 1 comparison: map the centerline purely from
/// the (GPS+IMU) estimated poses of the ground vehicle, no aerial input.
LineString MapFromPosesOnly(const std::vector<GroundObservation>& ground);

/// Mean distance from `estimate` samples to the true centerline.
double CenterlineError(const LineString& estimate, const LineString& truth);

}  // namespace hdmap

#endif  // HDMAP_CREATION_AERIAL_FUSION_H_
