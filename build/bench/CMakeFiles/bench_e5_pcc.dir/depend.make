# Empty dependencies file for bench_e5_pcc.
# This may be replaced when dependencies are built.
