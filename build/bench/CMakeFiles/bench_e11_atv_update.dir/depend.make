# Empty dependencies file for bench_e11_atv_update.
# This may be replaced when dependencies are built.
