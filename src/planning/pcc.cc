#include "planning/pcc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/units.h"

namespace hdmap {

Result<SlopeProfile> BuildSlopeProfile(const HdMap& map,
                                       const std::vector<ElementId>& route,
                                       double station_step) {
  if (route.empty()) return Status::InvalidArgument("empty route");
  if (station_step <= 0.0) {
    return Status::InvalidArgument("station_step must be positive");
  }
  SlopeProfile profile;
  profile.station_step = station_step;
  for (ElementId id : route) {
    const Lanelet* ll = map.FindLanelet(id);
    if (ll == nullptr) {
      return Status::NotFound("route lanelet " + std::to_string(id));
    }
    double len = ll->Length();
    for (double s = 0.0; s < len; s += station_step) {
      profile.grades.push_back(ll->GradeAt(s));
    }
  }
  if (profile.grades.empty()) {
    return Status::InvalidArgument("route too short for the station step");
  }
  return profile;
}

double FuelModel::TractionForce(double v, double a, double grade) const {
  double slope_angle = std::atan(grade);
  double rolling = mass_kg * kGravity * rolling_coeff *
                   std::cos(slope_angle);
  double climb = mass_kg * kGravity * std::sin(slope_angle);
  double aero = 0.5 * air_density * drag_area * v * v;
  double inertia = mass_kg * a;
  return rolling + climb + aero + inertia;
}

double FuelModel::FuelRate(double v, double a, double grade) const {
  double force = TractionForce(v, a, grade);
  double power = force * v;  // W at the wheels.
  if (power <= 0.0) {
    // Coasting / braking: engine idles; regen (if any) credits nothing in
    // a conventional car.
    return idle_grams_per_s - regen_fraction * power * grams_per_joule;
  }
  return idle_grams_per_s + power * grams_per_joule;
}

PccResult SimulateConstantSpeed(const SlopeProfile& profile,
                                const FuelModel& model, double set_speed) {
  PccResult result;
  double ds = profile.station_step;
  for (size_t i = 0; i < profile.grades.size(); ++i) {
    double grade = profile.grades[i];
    double dt = ds / set_speed;
    double fuel = model.FuelRate(set_speed, 0.0, grade) * dt;
    result.plan.push_back(
        {static_cast<double>(i) * ds, set_speed, fuel, dt});
    result.total_fuel_g += fuel;
    result.total_time_s += dt;
  }
  return result;
}

PccResult OptimizePcc(const SlopeProfile& profile, const FuelModel& model,
                      const PccOptions& options) {
  PccResult result;
  size_t n = profile.grades.size();
  int levels = std::max(3, options.speed_levels);
  double v_min = options.set_speed * (1.0 - options.speed_band);
  double v_max = options.set_speed * (1.0 + options.speed_band);
  double dv = (v_max - v_min) / (levels - 1);
  double ds = profile.station_step;

  auto speed_at = [&](int level) { return v_min + level * dv; };

  // DP backward over stations. cost[k][v] = min fuel from station k to the
  // end, entering station k at speed v. A mild time penalty keeps total
  // trip time comparable to the ACC baseline.
  const double kInf = std::numeric_limits<double>::max() / 4;
  // Time value calibrated so that on FLAT ground the per-meter cost
  // (idle + tw)/v + resistive_power_fuel(v) is stationary exactly at the
  // set speed: tw = rho*CdA*v^3*gpj - idle. The optimizer then has no
  // incentive to simply drive slower; savings can only come from using
  // the slope profile (the trip-time constraint of [61]).
  // The 1.5 factor biases the optimum slightly above neutral so the DP
  // cannot "save" fuel by merely dawdling at the low edge of the band;
  // any reported saving must come from the slope profile.
  const double set3 = options.set_speed * options.set_speed *
                      options.set_speed;
  const double time_weight =
      1.5 * std::max(0.0, model.air_density * model.drag_area * set3 *
                                  model.grams_per_joule -
                              model.idle_grams_per_s);

  std::vector<std::vector<double>> cost(
      n + 1, std::vector<double>(static_cast<size_t>(levels), 0.0));
  std::vector<std::vector<int>> choice(
      n, std::vector<int>(static_cast<size_t>(levels), 0));

  for (size_t kk = n; kk-- > 0;) {
    double grade = profile.grades[kk];
    for (int vi = 0; vi < levels; ++vi) {
      double v0 = speed_at(vi);
      double best = kInf;
      int best_next = vi;
      for (int vj = 0; vj < levels; ++vj) {
        double v1 = speed_at(vj);
        double v_avg = 0.5 * (v0 + v1);
        double dt = ds / std::max(1.0, v_avg);
        double a = (v1 - v0) / dt;
        if (a > options.max_accel || a < -options.max_decel) continue;
        double fuel = model.FuelRate(v_avg, a, grade) * dt;
        double c = fuel + time_weight * dt +
                   cost[kk + 1][static_cast<size_t>(vj)];
        if (c < best) {
          best = c;
          best_next = vj;
        }
      }
      cost[kk][static_cast<size_t>(vi)] = best;
      choice[kk][static_cast<size_t>(vi)] = best_next;
    }
  }

  // Roll forward from the set speed (nearest level).
  int vi = static_cast<int>(
      std::round((options.set_speed - v_min) / dv));
  vi = std::clamp(vi, 0, levels - 1);
  for (size_t kk = 0; kk < n; ++kk) {
    int vj = choice[kk][static_cast<size_t>(vi)];
    double v0 = speed_at(vi);
    double v1 = speed_at(vj);
    double v_avg = 0.5 * (v0 + v1);
    double dt = ds / std::max(1.0, v_avg);
    double a = (v1 - v0) / dt;
    double fuel = model.FuelRate(v_avg, a, profile.grades[kk]) * dt;
    result.plan.push_back({static_cast<double>(kk) * ds, v0, fuel, dt});
    result.total_fuel_g += fuel;
    result.total_time_s += dt;
    vi = vj;
  }
  return result;
}

}  // namespace hdmap
