# Empty compiler generated dependencies file for smart_factory_atv.
# This may be replaced when dependencies are built.
