// End-to-end integration tests over the umbrella header: the full
// pipelines the examples demonstrate, with assertions.

#include <gtest/gtest.h>

#include "hdmap.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

TEST(IntegrationTest, UmbrellaHeaderCompilesAndLinks) {
  // Touch one symbol from several modules to keep the include honest.
  Rng rng(1);
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Vec2(1, 2).x, 1.0);
  HdMap map;
  EXPECT_EQ(map.NumElements(), 0u);
}

TEST(IntegrationTest, PlanDriveLocalizeLoop) {
  Rng rng(51);
  TownOptions topt;
  topt.grid_rows = 3;
  topt.grid_cols = 3;
  auto town = GenerateTown(topt, rng);
  ASSERT_TRUE(town.ok());
  const HdMap& map = *town;

  // Plan.
  RoutingGraph graph = RoutingGraph::Build(map);
  ElementId from = kInvalidId, to = kInvalidId;
  double best_d = 0.0;
  Vec2 from_pos;
  for (const auto& [id, ll] : map.lanelets()) {
    if (ll.Length() < 50.0) continue;
    if (from == kInvalidId) {
      from = id;
      from_pos = ll.centerline.front();
    } else if (ll.centerline.front().DistanceTo(from_pos) > best_d) {
      best_d = ll.centerline.front().DistanceTo(from_pos);
      to = id;
    }
  }
  auto route = PlanRoute(graph, from, to, RouteAlgorithm::kBhps);
  ASSERT_TRUE(route.ok());

  // Drive + localize.
  auto trajectory = DriveRoute(map, route->lanelets, {});
  ASSERT_TRUE(trajectory.ok());
  ASSERT_GT(trajectory->size(), 50u);
  GpsSensor gps({1.5, 1.0, 0.0}, rng);
  OdometrySensor odo({});
  LandmarkDetector detector({});
  EkfLocalizer ekf(&map, {});
  ekf.Init((*trajectory)[0].pose, 0.5, 0.02);
  RunningStats gps_err, ekf_err;
  for (size_t i = 1; i < trajectory->size(); ++i) {
    auto delta = odo.Measure((*trajectory)[i - 1].pose,
                             (*trajectory)[i].pose, rng);
    ekf.Predict(delta.distance, delta.heading_change);
    Vec2 fix = gps.Measure((*trajectory)[i].pose.translation, rng);
    ekf.UpdateGps(fix);
    ekf.UpdateLandmarks(detector.Detect(map, (*trajectory)[i].pose, rng));
    if (i > 30) {
      gps_err.Add(fix.DistanceTo((*trajectory)[i].pose.translation));
      ekf_err.Add(ekf.estimate().translation.DistanceTo(
          (*trajectory)[i].pose.translation));
    }
  }
  EXPECT_LT(ekf_err.mean(), gps_err.mean());
  EXPECT_LT(ekf_err.mean(), 1.0);

  // 6-DoF completion works wherever the drive ended.
  Pose3 full = CompleteTo6Dof(map, ekf.estimate());
  EXPECT_NEAR(full.yaw, ekf.estimate().heading, 1e-9);
}

TEST(IntegrationTest, DetectPatchBroadcastApplyLoop) {
  Rng rng(52);
  HdMap published = StraightRoad(1200.0, 60.0);
  HdMap world = published;
  ChangeInjectorOptions copt;
  copt.landmark_add_prob = 0.15;
  copt.landmark_remove_prob = 0.15;
  auto events = InjectChanges(copt, &world, rng);
  ASSERT_GT(events.size(), 0u);

  // Detect with SLAMCU.
  LandmarkDetector::Options det_opt;
  det_opt.detection_prob = 0.95;
  det_opt.clutter_rate = 0.01;
  LandmarkDetector detector(det_opt);
  Slamcu slamcu(&published, {});
  for (int pass = 0; pass < 4; ++pass) {
    for (double x = 0.0; x < 1200.0; x += 5.0) {
      Pose2 truth(x, -1.75, 0.0);
      slamcu.ProcessFrame(truth, detector.Detect(world, truth, rng));
    }
  }
  MapPatch patch = slamcu.BuildPatch();
  ASSERT_FALSE(patch.IsEmpty());

  // Broadcast: serialize, transmit, decode, apply.
  std::string wire = SerializePatch(patch);
  EXPECT_GT(wire.size(), 10u);
  auto decoded = DeserializePatch(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->NumChanges(), patch.NumChanges());
  ASSERT_TRUE(ApplyPatch(*decoded, &published).ok());

  // The published map now reflects most injected changes.
  int captured = 0, total = 0;
  for (const auto& ev : events) {
    if (ev.type == ChangeType::kLandmarkAdded) {
      ++total;
      if (!published.LandmarksNear(ev.new_position.xy(), 2.0).empty()) {
        ++captured;
      }
    } else if (ev.type == ChangeType::kLandmarkRemoved) {
      ++total;
      if (published.FindLandmark(ev.element_id) == nullptr) ++captured;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GE(captured, (total * 2) / 3);
}

TEST(IntegrationTest, PatchSerializationRoundTrip) {
  MapPatch patch;
  Landmark lm;
  lm.id = 42;
  lm.type = LandmarkType::kTrafficLight;
  lm.position = {1.5, -2.5, 5.0};
  lm.subtype = "3_state";
  patch.added_landmarks.push_back(lm);
  patch.removed_landmarks = {7, 9};
  patch.moved_landmarks.push_back({11, {3.0, 4.0, 2.0}});
  LineFeature lf;
  lf.id = 100;
  lf.type = LineType::kDashedLaneMarking;
  lf.geometry = LineString({{0, 0}, {10, 0}, {20, 1}});
  patch.updated_line_features.push_back(lf);

  auto decoded = DeserializePatch(SerializePatch(patch));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->added_landmarks.size(), 1u);
  EXPECT_EQ(decoded->added_landmarks[0].position, lm.position);
  EXPECT_EQ(decoded->added_landmarks[0].subtype, "3_state");
  EXPECT_EQ(decoded->removed_landmarks, patch.removed_landmarks);
  ASSERT_EQ(decoded->moved_landmarks.size(), 1u);
  EXPECT_EQ(decoded->moved_landmarks[0].id, 11);
  ASSERT_EQ(decoded->updated_line_features.size(), 1u);
  EXPECT_EQ(decoded->updated_line_features[0].geometry.size(), 3u);

  EXPECT_FALSE(DeserializePatch("garbage").ok());
  std::string wire = SerializePatch(patch);
  EXPECT_FALSE(DeserializePatch(wire.substr(0, wire.size() / 2)).ok());
}

TEST(IntegrationTest, GenerativeModelRoundTrip) {
  // Extract stats from a town, generate a new map, and run the full
  // query/route/serialize stack on the generated map.
  HdMap example = SmallTownWorld(53, 3, 3);
  auto stats = ExtractTopologyStats(example);
  ASSERT_TRUE(stats.ok());
  Rng rng(54);
  auto generated = GenerateFromStats(*stats, {}, rng);
  ASSERT_TRUE(generated.ok());
  EXPECT_TRUE(generated->Validate().ok());

  auto match = generated->MatchToLane(
      generated->lanelets().begin()->second.centerline.PointAt(5.0));
  EXPECT_TRUE(match.ok());

  std::string blob = SerializeMap(*generated);
  auto restored = DeserializeMap(blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->NumElements(), generated->NumElements());
}

}  // namespace
}  // namespace hdmap
