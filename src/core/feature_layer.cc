#include "core/feature_layer.h"

#include <algorithm>

namespace hdmap {

void FeatureLayer::AddObservation(ElementId id, LandmarkType type,
                                  const Vec3& observed_position,
                                  double observation_weight) {
  LayerFeature& f = features_[id];
  if (f.observation_count == 0) {
    f.id = id;
    f.type = type;
    f.position = observed_position;
  } else {
    double n = static_cast<double>(f.observation_count);
    f.position = (f.position * n + observed_position) / (n + 1.0);
  }
  ++f.observation_count;
  // Saturating confidence: each consistent observation closes a fraction
  // of the remaining gap, scaled by the observation weight.
  f.confidence += (1.0 - f.confidence) * 0.25 *
                  std::clamp(observation_weight, 0.0, 1.0);
}

void FeatureLayer::Merge(const FeatureLayer& other) {
  for (const auto& [id, theirs] : other.features_) {
    auto it = features_.find(id);
    if (it == features_.end()) {
      features_[id] = theirs;
      continue;
    }
    LayerFeature& ours = it->second;
    double wa = static_cast<double>(ours.observation_count);
    double wb = static_cast<double>(theirs.observation_count);
    if (wa + wb > 0.0) {
      ours.position =
          (ours.position * wa + theirs.position * wb) / (wa + wb);
    }
    ours.observation_count += theirs.observation_count;
    ours.confidence = std::max(ours.confidence, theirs.confidence);
  }
}

std::vector<Landmark> FeatureLayer::Promotable(double min_confidence) const {
  std::vector<Landmark> out;
  for (const auto& [id, f] : features_) {
    if (f.confidence >= min_confidence) {
      Landmark lm;
      lm.id = f.id;
      lm.type = f.type;
      lm.position = f.position;
      out.push_back(std::move(lm));
    }
  }
  return out;
}

}  // namespace hdmap
