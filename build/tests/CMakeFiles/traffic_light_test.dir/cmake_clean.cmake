file(REMOVE_RECURSE
  "CMakeFiles/traffic_light_test.dir/traffic_light_test.cc.o"
  "CMakeFiles/traffic_light_test.dir/traffic_light_test.cc.o.d"
  "traffic_light_test"
  "traffic_light_test.pdb"
  "traffic_light_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_light_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
