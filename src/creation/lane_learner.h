#ifndef HDMAP_CREATION_LANE_LEARNER_H_
#define HDMAP_CREATION_LANE_LEARNER_H_

#include <vector>

#include "geometry/line_string.h"

namespace hdmap {

/// One traversal's lane-boundary detections: noisy lateral offsets of the
/// detected marking, sampled at stations along a common reference line
/// (what a camera lane-detection stack outputs; Szabó [34], Maeda [37],
/// Kim [45]).
struct LaneObservationTrack {
  double station_step = 5.0;
  /// offsets[i] = detected lateral offset at station i; NaN = no
  /// detection at that station.
  std::vector<double> offsets;
};

/// Crowdsourced lane geometry learner (Kim et al. [45]): Kalman-smooths
/// each low-quality track, then aggregates tracks station-wise with a
/// robust (median) estimator to learn the lane-marking geometry.
class LaneLearner {
 public:
  struct Options {
    /// Kalman smoothing parameters for a single track: random-walk lane
    /// model with measurement noise.
    double process_sigma = 0.05;      ///< Offset drift per station.
    double measurement_sigma = 0.5;   ///< Per-detection noise.
    /// Minimum tracks covering a station for it to be learned.
    int min_tracks = 3;
  };

  explicit LaneLearner(const Options& options) : options_(options) {}

  /// Kalman forward filter + RTS backward smoother over one track.
  /// Missing detections (NaN) are predicted through.
  std::vector<double> SmoothTrack(const LaneObservationTrack& track) const;

  /// Learns the per-station lane offset from all tracks. Stations with
  /// insufficient coverage get NaN.
  std::vector<double> LearnOffsets(
      const std::vector<LaneObservationTrack>& tracks) const;

  /// Realizes learned offsets as a polyline along `reference`.
  LineString RealizeGeometry(const LineString& reference,
                             const std::vector<double>& offsets,
                             double station_step) const;

 private:
  Options options_;
};

}  // namespace hdmap

#endif  // HDMAP_CREATION_LANE_LEARNER_H_
