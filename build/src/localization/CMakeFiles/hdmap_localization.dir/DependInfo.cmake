
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/localization/cooperative_localization.cc" "src/localization/CMakeFiles/hdmap_localization.dir/cooperative_localization.cc.o" "gcc" "src/localization/CMakeFiles/hdmap_localization.dir/cooperative_localization.cc.o.d"
  "/root/repo/src/localization/ekf_localizer.cc" "src/localization/CMakeFiles/hdmap_localization.dir/ekf_localizer.cc.o" "gcc" "src/localization/CMakeFiles/hdmap_localization.dir/ekf_localizer.cc.o.d"
  "/root/repo/src/localization/lane_matcher.cc" "src/localization/CMakeFiles/hdmap_localization.dir/lane_matcher.cc.o" "gcc" "src/localization/CMakeFiles/hdmap_localization.dir/lane_matcher.cc.o.d"
  "/root/repo/src/localization/map_capability.cc" "src/localization/CMakeFiles/hdmap_localization.dir/map_capability.cc.o" "gcc" "src/localization/CMakeFiles/hdmap_localization.dir/map_capability.cc.o.d"
  "/root/repo/src/localization/marking_localizer.cc" "src/localization/CMakeFiles/hdmap_localization.dir/marking_localizer.cc.o" "gcc" "src/localization/CMakeFiles/hdmap_localization.dir/marking_localizer.cc.o.d"
  "/root/repo/src/localization/particle_filter.cc" "src/localization/CMakeFiles/hdmap_localization.dir/particle_filter.cc.o" "gcc" "src/localization/CMakeFiles/hdmap_localization.dir/particle_filter.cc.o.d"
  "/root/repo/src/localization/raster_localizer.cc" "src/localization/CMakeFiles/hdmap_localization.dir/raster_localizer.cc.o" "gcc" "src/localization/CMakeFiles/hdmap_localization.dir/raster_localizer.cc.o.d"
  "/root/repo/src/localization/relocalization.cc" "src/localization/CMakeFiles/hdmap_localization.dir/relocalization.cc.o" "gcc" "src/localization/CMakeFiles/hdmap_localization.dir/relocalization.cc.o.d"
  "/root/repo/src/localization/triangulation.cc" "src/localization/CMakeFiles/hdmap_localization.dir/triangulation.cc.o" "gcc" "src/localization/CMakeFiles/hdmap_localization.dir/triangulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hdmap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hdmap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
