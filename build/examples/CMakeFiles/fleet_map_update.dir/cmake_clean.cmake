file(REMOVE_RECURSE
  "CMakeFiles/fleet_map_update.dir/fleet_map_update.cpp.o"
  "CMakeFiles/fleet_map_update.dir/fleet_map_update.cpp.o.d"
  "fleet_map_update"
  "fleet_map_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_map_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
