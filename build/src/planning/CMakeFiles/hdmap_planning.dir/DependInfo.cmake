
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planning/frenet_planner.cc" "src/planning/CMakeFiles/hdmap_planning.dir/frenet_planner.cc.o" "gcc" "src/planning/CMakeFiles/hdmap_planning.dir/frenet_planner.cc.o.d"
  "/root/repo/src/planning/pcc.cc" "src/planning/CMakeFiles/hdmap_planning.dir/pcc.cc.o" "gcc" "src/planning/CMakeFiles/hdmap_planning.dir/pcc.cc.o.d"
  "/root/repo/src/planning/pure_pursuit.cc" "src/planning/CMakeFiles/hdmap_planning.dir/pure_pursuit.cc.o" "gcc" "src/planning/CMakeFiles/hdmap_planning.dir/pure_pursuit.cc.o.d"
  "/root/repo/src/planning/route_planner.cc" "src/planning/CMakeFiles/hdmap_planning.dir/route_planner.cc.o" "gcc" "src/planning/CMakeFiles/hdmap_planning.dir/route_planner.cc.o.d"
  "/root/repo/src/planning/speed_profile.cc" "src/planning/CMakeFiles/hdmap_planning.dir/speed_profile.cc.o" "gcc" "src/planning/CMakeFiles/hdmap_planning.dir/speed_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hdmap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
