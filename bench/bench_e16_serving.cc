// E16: versioned snapshot serving under a concurrent reader/writer load.
//
// N reader threads hammer MapService::GetRegion while one writer thread
// publishes patches at a fixed rate. Each patch moves a set of version
// markers (landmarks whose z coordinate encodes the snapshot version), so
// a reader can detect a torn read — a region stitched from tiles of two
// different versions — by checking that every marker in the loaded region
// carries the same z. The run fails (nonzero exit) on any torn read or
// version rollback; latency percentiles and service metrics are reported
// from the MetricsRegistry that instruments the service.
//
// With --fault-pct=K a deterministic FaultInjector bit-flips serialized
// tiles at load time (site "tile_store.load"); the service keeps serving
// in degraded mode, and the run additionally reports the degraded-region
// rate and final Health() alongside the latency percentiles. Injection is
// content-hash deterministic, so K% is the fraction of distinct tile
// blobs that corrupt (not of individual loads): a firing tile fires on
// every load until a publish replaces its bytes.
//
// Observability hooks:
//   --trace-out=FILE      enables the global TraceRecorder (1-in-8 head
//                         sampling plus always-on error/slow capture) and
//                         writes a Chrome trace_event JSON to FILE — load
//                         it in https://ui.perfetto.dev. Degraded reads
//                         appear as GetRegion roots nesting the failing
//                         tile_store.decode span.
//   --metrics-format=F    final metrics dump format: text (default),
//                         prom (Prometheus exposition), or json.
// The run always reports the service's recent structured events (with
// trace ids) and a tracing-overhead probe: single-threaded GetRegion p50
// with the recorder fully off vs enabled-but-unsampled.
//
// Usage: bench_e16_serving [--smoke] [--readers=N] [--seconds=S]
//                          [--rate-hz=R] [--fault-pct=K]
//                          [--trace-out=FILE] [--metrics-format=F]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "common/trace.h"
#include "service/map_service.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

constexpr ElementId kFirstMarkerId = 900001;
constexpr int kNumMarkers = 6;

/// Markers straddle several 100 m tiles so a region load crosses tile
/// boundaries — the only way a torn stitch could manifest.
Vec2 MarkerXy(int i) { return {40.0 + 55.0 * i, 6.0}; }

struct ReaderResult {
  std::vector<double> latencies_s;
  uint64_t reads = 0;
  uint64_t degraded = 0;
  uint64_t torn = 0;
  uint64_t rollbacks = 0;
  uint64_t errors = 0;
};

ReaderResult ReaderLoop(const MapService& service, const Aabb& box,
                        const std::atomic<bool>& stop) {
  ReaderResult out;
  uint64_t last_version = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    bench::Timer t;
    RegionReport report;
    auto region = service.GetRegion(box, &report);
    out.latencies_s.push_back(t.Seconds());
    ++out.reads;
    if (!region.ok()) {
      ++out.errors;
      continue;
    }
    if (!report.corrupt_tiles.empty()) {
      // Degraded read: markers may live in the quarantined tiles, so the
      // torn-read check is meaningless for this response.
      ++out.degraded;
      continue;
    }
    const Landmark* first = region->FindLandmark(kFirstMarkerId);
    if (first == nullptr) {
      ++out.errors;
      continue;
    }
    uint64_t version = static_cast<uint64_t>(first->position.z);
    bool torn = false;
    for (int i = 1; i < kNumMarkers; ++i) {
      const Landmark* lm = region->FindLandmark(kFirstMarkerId + i);
      if (lm == nullptr ||
          static_cast<uint64_t>(lm->position.z) != version) {
        torn = true;
      }
    }
    if (torn) ++out.torn;
    if (version < last_version) ++out.rollbacks;
    last_version = version;
  }
  return out;
}

}  // namespace
}  // namespace hdmap

int main(int argc, char** argv) {
  using namespace hdmap;

  size_t readers = 4;
  double seconds = 3.0;
  double rate_hz = 100.0;
  double fault_pct = 0.0;
  std::string trace_out;
  std::string metrics_format = "text";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      readers = 2;
      seconds = 0.4;
      smoke = true;
    } else if (std::strncmp(argv[i], "--readers=", 10) == 0) {
      readers = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--rate-hz=", 10) == 0) {
      rate_hz = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--fault-pct=", 12) == 0) {
      fault_pct = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-format=", 17) == 0) {
      metrics_format = argv[i] + 17;
    }
  }
  const bool fault_mode = fault_pct > 0.0;
  if (metrics_format != "text" && metrics_format != "prom" &&
      metrics_format != "json") {
    std::fprintf(stderr, "unknown --metrics-format=%s (text|prom|json)\n",
                 metrics_format.c_str());
    return 1;
  }

  bench::PrintHeader(
      "E16", "snapshot serving under concurrent patch publishing",
      "fleet map services serve consistent versions while updates land "
      "continuously (II-B.2 / III serving workloads)");

  MetricsRegistry registry;
  FaultInjector faults(20260807);
  if (fault_mode) {
    faults.AddPolicy({TileStore::kLoadFaultSite, FaultKind::kBitFlip,
                      fault_pct / 100.0});
  }
  MapService::Options opt;
  opt.tile_store.tile_size_m = 100.0;
  opt.metrics = &registry;
  if (fault_mode) opt.fault_injector = &faults;
  MapService service(opt);

  HdMap world = StraightRoad(400.0);
  for (int i = 0; i < kNumMarkers; ++i) {
    Landmark marker;
    marker.id = kFirstMarkerId + i;
    marker.type = LandmarkType::kTrafficSign;
    marker.subtype = "version_marker";
    marker.position = {MarkerXy(i).x, MarkerXy(i).y, 1.0};  // z = version.
    if (!world.AddLandmark(marker).ok()) return 1;
  }
  if (!service.Init(std::move(world)).ok()) {
    std::fprintf(stderr, "Init failed\n");
    return 1;
  }

  // The query box spans every marker (and several tile boundaries).
  Aabb box{{0.0, -10.0}, {400.0, 12.0}};

  // Tracing-overhead probe: single-threaded GetRegion p50 with the
  // recorder fully disabled (baseline) vs enabled with head sampling off
  // (spans pay their clock/bookkeeping cost but record nothing). The
  // acceptance bar is p50 within ~5% of baseline.
  const int probe_iters = smoke ? 150 : 600;
  auto probe_p50 = [&](int iters) {
    std::vector<double> lat;
    lat.reserve(static_cast<size_t>(iters));
    for (int i = 0; i < iters; ++i) {
      bench::Timer t;
      (void)service.GetRegion(box);
      lat.push_back(t.Seconds());
    }
    return Percentile(std::move(lat), 50);
  };
  TraceRecorder::Global().Configure(TraceRecorder::Options{});
  (void)probe_p50(probe_iters / 3);  // Warm caches.
  double p50_tracing_off = probe_p50(probe_iters);
  {
    TraceRecorder::Options probe_opts;
    probe_opts.enabled = true;
    probe_opts.sample_every_n = 0;  // Head sampling off.
    probe_opts.slow_threshold_s = 0.0;
    TraceRecorder::Global().Configure(probe_opts);
  }
  double p50_sampling_off = probe_p50(probe_iters);

  // Main-load tracing: only when a trace file was requested. 1-in-8 head
  // sampling keeps the ring representative without distorting latency;
  // error and slow spans always record on top.
  if (!trace_out.empty()) {
    TraceRecorder::Options trace_opts;
    trace_opts.enabled = true;
    trace_opts.capacity = 16384;
    trace_opts.sample_every_n = 8;
    trace_opts.slow_threshold_s = 0.25;
    TraceRecorder::Global().Configure(trace_opts);
  } else {
    TraceRecorder::Global().Configure(TraceRecorder::Options{});
  }

  std::atomic<bool> stop{false};
  std::vector<ReaderResult> results(readers);
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] { results[r] = ReaderLoop(service, box, stop); });
  }

  // Writer: publish version v with every marker's z set to v, at rate_hz.
  uint64_t publishes = 0;
  uint64_t publish_failures = 0;
  bench::Timer run;
  auto period =
      std::chrono::duration<double>(rate_hz > 0.0 ? 1.0 / rate_hz : 0.01);
  while (run.Seconds() < seconds) {
    uint64_t next_version = service.version() + 1;
    MapPatch patch;
    for (int i = 0; i < kNumMarkers; ++i) {
      patch.moved_landmarks.push_back(
          {kFirstMarkerId + i,
           {MarkerXy(i).x, MarkerXy(i).y, static_cast<double>(next_version)}});
    }
    if (service.ApplyPatch(std::move(patch)).ok()) {
      ++publishes;
    } else {
      ++publish_failures;
      service.DiscardStagedPatches();
    }
    std::this_thread::sleep_for(period);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  std::vector<double> latencies;
  uint64_t reads = 0, degraded = 0, torn = 0, rollbacks = 0, errors = 0;
  for (const ReaderResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_s.begin(),
                     r.latencies_s.end());
    reads += r.reads;
    degraded += r.degraded;
    torn += r.torn;
    rollbacks += r.rollbacks;
    errors += r.errors;
  }

  std::printf("\nload: %zu readers x GetRegion, 1 writer @ %.0f Hz, %.1f s",
              readers, rate_hz, seconds);
  if (fault_mode) {
    std::printf(", %.1f%% tile blobs corrupted at load", fault_pct);
  }
  std::printf("\n");
  bench::PrintRow("reads served", "(consistent)",
                  bench::Fmt("%.0f", static_cast<double>(reads)));
  bench::PrintRow("versions published", "fixed rate",
                  bench::Fmt("%.0f", static_cast<double>(publishes)));
  bench::PrintRow("torn reads", "0",
                  bench::Fmt("%.0f", static_cast<double>(torn)));
  bench::PrintRow("version rollbacks", "0",
                  bench::Fmt("%.0f", static_cast<double>(rollbacks)));
  bench::PrintRow("read errors", "0",
                  bench::Fmt("%.0f", static_cast<double>(errors)));
  if (fault_mode) {
    double rate = reads > 0 ? 100.0 * static_cast<double>(degraded) /
                                  static_cast<double>(reads)
                            : 0.0;
    bench::PrintRow("degraded regions", "served, not failed",
                    bench::Fmt("%.0f", static_cast<double>(degraded)));
    bench::PrintRow("degraded-region rate", "tracks --fault-pct",
                    bench::Fmt("%.1f %%", rate));
    bench::PrintRow("health", "DEGRADED under faults",
                    service.Health() == ServiceHealth::kDegraded
                        ? "DEGRADED"
                        : "SERVING");
  }
  bench::PrintRow("GetRegion p50", "low ms",
                  bench::Fmt("%.3f ms", Percentile(latencies, 50) * 1e3));
  bench::PrintRow("GetRegion p99", "low ms",
                  bench::Fmt("%.3f ms", Percentile(latencies, 99) * 1e3));

  double overhead_pct =
      p50_tracing_off > 0.0
          ? 100.0 * (p50_sampling_off - p50_tracing_off) / p50_tracing_off
          : 0.0;
  bench::PrintRow("p50 tracing disabled", "baseline",
                  bench::Fmt("%.3f ms", p50_tracing_off * 1e3));
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f ms (%+.1f %%)",
                  p50_sampling_off * 1e3, overhead_pct);
    bench::PrintRow("p50 enabled, sampling off", "within 5% of baseline",
                    buf);
  }

  if (!trace_out.empty()) {
    std::string json = TraceRecorder::Global().ExportChromeTraceJson();
    FILE* f = std::fopen(trace_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%zu (of %llu recorded)",
                  TraceRecorder::Global().Snapshot().size(),
                  static_cast<unsigned long long>(
                      TraceRecorder::Global().recorded()));
    bench::PrintRow("trace spans buffered", "ring-bounded", buf);
    std::printf("\ntrace written to %s (open in https://ui.perfetto.dev)\n",
                trace_out.c_str());
  }

  uint64_t total_events = service.event_log().total_appended();
  std::vector<EventLog::Event> events = service.RecentEvents(16);
  std::printf("\nrecent events (newest first, %llu total):\n",
              static_cast<unsigned long long>(total_events));
  if (events.empty()) std::printf("  (none)\n");
  for (const EventLog::Event& e : events) {
    std::string_view type = EventLog::TypeToString(e.type);
    std::string_view code = StatusCodeToString(e.code);
    std::printf("  #%llu %.*s code=%.*s trace=%llu %s\n",
                static_cast<unsigned long long>(e.seq),
                static_cast<int>(type.size()), type.data(),
                static_cast<int>(code.size()), code.data(),
                static_cast<unsigned long long>(e.trace_id),
                e.detail.c_str());
  }

  if (metrics_format == "prom") {
    std::printf("\nmetrics (prometheus):\n%s",
                registry.RenderPrometheus().c_str());
  } else if (metrics_format == "json") {
    std::printf("\nmetrics (json):\n%s", registry.RenderJson().c_str());
  } else {
    std::printf("\nmetrics registry:\n%s", registry.Render().c_str());
  }

  // Consistency must hold with or without faults; under injection the
  // degraded path must additionally have absorbed the corruption (no
  // reader-visible errors — the whole point of partial-mode serving).
  bool ok = torn == 0 && rollbacks == 0 && errors == 0 &&
            publish_failures == 0 && publishes > 0 && reads > 0;
  std::printf("\nE16 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
