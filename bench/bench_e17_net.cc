// E17: framed-TCP tile serving under open-loop network load.
//
// Drives the TileServer (src/net/) over real loopback sockets with an
// open-loop generator: request send times are scheduled up front at a
// fixed rate, independent of response arrival, so queueing delay shows
// up as latency instead of silently throttling the offered load (the
// closed-loop coordination-omission trap). Five phases:
//
//   1. Calibrate — one closed-loop connection measures the peak
//      back-to-back GetTile throughput R_max.
//   2. Load ladder — open-loop runs at 0.5x / 1x / 2x R_max across C
//      pipelined connections. Per step: offered vs achieved send rate,
//      served goodput, BUSY shed rate, and p50/p99/p999 of served
//      latencies. The 2x step is the admission-control story: the
//      server must shed with typed BUSY while goodput for admitted
//      requests stays near the pre-saturation peak, rather than letting
//      an unbounded queue grow until every response is late.
//   3. Coalescing — K clients fire the identical GetRegion at a server
//      whose handler is artificially slowed (the test hook widens the
//      in-flight window); the computations counter shows K requests
//      collapsing into 1 region serialization.
//   4. Failover — a 1-leader/2-follower replication cluster takes a
//      closed-loop write load; the leader is killed mid-run. Reports
//      time-to-promotion (the degraded window the FailoverController
//      measured between heartbeat-timeout detection and the new leader
//      installing), write attempts lost while leaderless, and the
//      FAILOVER_* records from the controller's event log.
//   5. Observability overhead — closed-loop GetTile p50/p99 with trace
//      propagation off, on with an unsampled recorder (trace ids ride
//      the wire, nothing records), and on with every request sampled;
//      the budget for either "on" mode is < 5% on p50. Then kStats is
//      scraped continuously while a 2x open-loop overload runs: the
//      introspection plane is exempt from admission shedding, so the
//      scrape must keep answering while GetTiles are shed with BUSY.
//
// The run fails (nonzero exit) if coalescing does not collapse
// duplicates, if the 2x overload step sheds nothing, if goodput
// under 2x overload falls below half the 1x goodput (the report prints
// the within-20% check; the exit gate is looser so CI boxes with one
// core don't flake), if no failover completes after the leader kill,
// if trace propagation costs more than 50% on p50 (the report prints
// the 5% budget; microsecond RTTs on shared boxes are too noisy for a
// tight exit gate), or if the kStats scrape stops answering under
// overload.
//
// Usage: bench_e17_net [--smoke] [--seconds=S] [--connections=C]
//                      [--coalesce-clients=K]

#include <atomic>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/event_log.h"
#include "common/statistics.h"
#include "common/trace.h"
#include "core/tile_store.h"
#include "net/tile_server.h"
#include "replication/failover_controller.h"
#include "replication/node.h"
#include "service/map_service.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

struct LoadResult {
  double offered_hz = 0;
  double achieved_hz = 0;   // What the senders actually put on the wire.
  double goodput_hz = 0;    // kOk responses per second.
  uint64_t sent = 0;
  uint64_t served = 0;
  uint64_t busy = 0;
  uint64_t errors = 0;
  uint64_t overflow = 0;    // Scheduled sends dropped at the client.
  double p50_ms = 0, p99_ms = 0, p999_ms = 0;
};

/// Client-side cap on outstanding (sent, unanswered) requests per
/// connection — the "partly open" load model. Past it, scheduled sends
/// are dropped at the client and counted, instead of wedging the socket
/// until the server's write-stall guard kills the connection. The cap is
/// far above the server's admission window, so it only binds when the
/// generator machine itself can no longer drain responses.
constexpr uint64_t kMaxOutstandingPerConn = 256;

double PercentileMs(std::vector<double>& lat_s, double q) {
  if (lat_s.empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(lat_s.size() - 1));
  std::nth_element(lat_s.begin(), lat_s.begin() + static_cast<long>(idx),
                   lat_s.end());
  return lat_s[idx] * 1e3;
}

/// Closed-loop calibration at the same concurrency as the load phase:
/// C connections round-trip back-to-back, and the summed served rate is
/// the sustainable peak the open-loop factors scale from. Using the
/// same client thread count matters on small boxes — the generator
/// competes with the server for cores, and a single-connection RTT peak
/// would overstate what open-loop clients can actually sustain.
double CalibratePeakHz(uint16_t port, const std::vector<TileId>& tiles,
                       double seconds, size_t connections) {
  std::atomic<uint64_t> done{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      NetClient client;
      if (!client.Connect("127.0.0.1", port).ok()) return;
      bench::Timer t;
      uint64_t mine = 0;
      while (t.Seconds() < seconds) {
        auto resp = client.GetTile(tiles[(c + mine) % tiles.size()]);
        if (!resp.ok()) break;
        if (resp->code == NetResponseCode::kOk) ++mine;
      }
      done.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  bench::Timer wall;
  for (auto& th : threads) th.join();
  double elapsed = wall.Seconds();
  return elapsed > 0 ? static_cast<double>(done.load()) / elapsed : 0;
}

/// One open-loop step: C connections, each with a sender thread walking
/// a precomputed schedule (send immediately when behind — lateness
/// becomes queueing, never a lower offered rate) and a reader thread
/// draining responses. Requests pipeline on each connection; the server
/// sheds with BUSY past its admission caps.
LoadResult RunOpenLoopStep(uint16_t port, const std::vector<TileId>& tiles,
                           double rate_hz, double seconds,
                           size_t connections) {
  LoadResult out;
  out.offered_hz = rate_hz;
  const uint64_t per_conn =
      std::max<uint64_t>(1, static_cast<uint64_t>(
                                rate_hz * seconds /
                                static_cast<double>(connections)));
  const double interval_s =
      seconds / static_cast<double>(per_conn);  // Per-connection spacing.

  struct ConnStats {
    uint64_t served = 0, busy = 0, errors = 0, overflow = 0;
    std::atomic<uint64_t> outstanding{0};
    std::atomic<bool> dead{false};
    std::vector<double> lat_s;
  };
  std::vector<std::unique_ptr<NetClient>> clients;
  std::vector<ConnStats> stats(connections);
  for (size_t c = 0; c < connections; ++c) {
    auto client = std::make_unique<NetClient>();
    if (!client->Connect("127.0.0.1", port).ok()) {
      std::fprintf(stderr, "connect failed\n");
      std::exit(1);
    }
    clients.push_back(std::move(client));
  }

  bench::Timer wall;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> total_sent{0};
  for (size_t c = 0; c < connections; ++c) {
    NetClient* client = clients[c].get();
    ConnStats* st = &stats[c];
    // Reader: every request (served, BUSY, or error) gets exactly one
    // response, so draining per_conn responses is a complete join.
    // Reader: drains until the sender reports how many responses are
    // actually owed (every sent request gets exactly one response).
    threads.emplace_back([client, st] {
      // Blocks in ReadResponse only while a response is owed
      // (outstanding > 0), so it can never hang after the sender ends.
      for (;;) {
        if (st->dead.load(std::memory_order_acquire) &&
            st->outstanding.load(std::memory_order_acquire) == 0) {
          break;
        }
        if (st->outstanding.load(std::memory_order_acquire) == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        auto resp = client->ReadResponse();
        if (!resp.ok()) {
          st->errors += st->outstanding.exchange(0);
          break;
        }
        st->outstanding.fetch_sub(1, std::memory_order_release);
        switch (resp->code) {
          case NetResponseCode::kOk:
            ++st->served;
            break;
          case NetResponseCode::kBusy:
            ++st->busy;
            break;
          default:
            ++st->errors;
        }
      }
    });
    // Sender: fixed schedule anchored at the step start; drops a
    // scheduled send when the outstanding window is full.
    threads.emplace_back([client, st, &tiles, &total_sent, per_conn,
                          interval_s, c] {
      bench::Timer t0;
      for (uint64_t i = 0; i < per_conn; ++i) {
        double due = static_cast<double>(i) * interval_s;
        double now = t0.Seconds();
        if (now < due) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(due - now));
        }
        if (st->outstanding.load(std::memory_order_acquire) >=
            kMaxOutstandingPerConn) {
          ++st->overflow;
          continue;
        }
        NetRequest req;
        req.type = NetRequestType::kGetTile;
        req.request_id = i + 1;
        req.tile = tiles[(c + i) % tiles.size()];
        st->outstanding.fetch_add(1, std::memory_order_release);
        if (!client->Send(req).ok()) {
          st->outstanding.fetch_sub(1, std::memory_order_release);
          break;
        }
        total_sent.fetch_add(1, std::memory_order_relaxed);
      }
      st->dead.store(true, std::memory_order_release);
    });
  }
  for (auto& th : threads) th.join();
  double elapsed = wall.Seconds();

  out.sent = total_sent.load();
  for (auto& st : stats) {
    out.served += st.served;
    out.busy += st.busy;
    out.errors += st.errors;
    out.overflow += st.overflow;
  }
  out.achieved_hz = static_cast<double>(out.sent) / elapsed;
  out.goodput_hz = static_cast<double>(out.served) / elapsed;
  return out;
}

/// Latency-measuring variant: single closed-loop probe connection runs
/// alongside the open-loop load and samples round-trip latency, so
/// percentiles reflect what an admitted request experiences at this
/// load level.
LoadResult RunStepWithLatency(uint16_t port, const std::vector<TileId>& tiles,
                              double rate_hz, double seconds,
                              size_t connections) {
  std::atomic<bool> stop{false};
  std::vector<double> lat_s;
  uint64_t probe_busy = 0;
  std::thread probe([&] {
    NetClient client;
    if (!client.Connect("127.0.0.1", port).ok()) return;
    while (!stop.load(std::memory_order_relaxed)) {
      bench::Timer t;
      auto resp = client.GetTile(tiles[lat_s.size() % tiles.size()]);
      if (!resp.ok()) break;
      if (resp->code == NetResponseCode::kOk) {
        lat_s.push_back(t.Seconds());
      } else if (resp->code == NetResponseCode::kBusy) {
        ++probe_busy;
        // Back off briefly so the probe itself doesn't camp the queue.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  LoadResult out =
      RunOpenLoopStep(port, tiles, rate_hz, seconds, connections);
  stop.store(true);
  probe.join();
  out.busy += probe_busy;
  out.p50_ms = PercentileMs(lat_s, 0.50);
  out.p99_ms = PercentileMs(lat_s, 0.99);
  out.p999_ms = PercentileMs(lat_s, 0.999);
  return out;
}

/// Phase 5 helper: closed-loop GetTile RTTs on one connection with the
/// client's trace propagation toggled. The Global recorder's
/// configuration (enabled / sample rate) is the caller's business —
/// this only drives requests and collects percentiles.
struct LatencyPair {
  double p50_ms = 0, p99_ms = 0;
  uint64_t served = 0;
};

LatencyPair MeasureGetTileLatency(uint16_t port,
                                  const std::vector<TileId>& tiles,
                                  double seconds, bool propagate) {
  LatencyPair out;
  NetClient client;
  client.set_propagate_trace(propagate);
  if (!client.Connect("127.0.0.1", port).ok()) return out;
  std::vector<double> lat_s;
  lat_s.reserve(1u << 16);
  bench::Timer t;
  uint64_t i = 0;
  while (t.Seconds() < seconds) {
    bench::Timer rt;
    auto resp = client.GetTile(tiles[i++ % tiles.size()]);
    if (!resp.ok() || resp->code != NetResponseCode::kOk) break;
    lat_s.push_back(rt.Seconds());
  }
  out.served = lat_s.size();
  out.p50_ms = PercentileMs(lat_s, 0.50);
  out.p99_ms = PercentileMs(lat_s, 0.99);
  return out;
}

/// Coalescing demo on a dedicated slow-handler server: K concurrent
/// identical GetRegions must collapse into one computation.
bool RunCoalesceDemo(const MapService& service, size_t k,
                     uint64_t* computations_delta, uint64_t* coalesced) {
  TileServer::Options opt;
  opt.worker_threads = 4;
  opt.handler_delay_ms_for_test = 100;  // Widens the in-flight window.
  TileServer server(service, opt);
  if (!server.Start().ok()) return false;
  // The server shares the service's registry, so read deltas — the load
  // phases already bumped these counters.
  double comp_before =
      server.metrics().GetCounter("net.computations")->value();
  double coal_before =
      server.metrics().GetCounter("net.coalesced")->value();

  Aabb box = service.snapshot()->map.BoundingBox();
  std::vector<std::unique_ptr<NetClient>> clients;
  for (size_t i = 0; i < k; ++i) {
    auto c = std::make_unique<NetClient>();
    if (!c->Connect("127.0.0.1", server.port()).ok()) return false;
    NetRequest req;
    req.type = NetRequestType::kGetRegion;
    req.request_id = i + 1;
    req.box = box;
    if (!c->Send(req).ok()) return false;
    clients.push_back(std::move(c));
  }
  size_t ok = 0;
  for (auto& c : clients) {
    auto resp = c->ReadResponse();
    if (resp.ok() && resp->code == NetResponseCode::kOk) ++ok;
  }
  *computations_delta = static_cast<uint64_t>(
      server.metrics().GetCounter("net.computations")->value() -
      comp_before);
  *coalesced = static_cast<uint64_t>(
      server.metrics().GetCounter("net.coalesced")->value() - coal_before);
  server.Stop();
  return ok == k;
}

struct FailoverResult {
  bool promoted = false;
  double time_to_promotion_ms = 0;  // Controller-measured degraded window.
  double detection_ms = 0;          // Kill -> kFailoverDetected wall time.
  uint64_t writes_acked_before = 0;
  uint64_t writes_acked_after = 0;
  uint64_t writes_lost_at_kill = 0;  // Attempts failed while leaderless.
  std::vector<EventLog::Event> events;
};

/// Phase 4: kill the leader of a live 3-node cluster under closed-loop
/// write load and measure the promotion. The writer keeps hammering
/// through the outage, so "writes lost at kill" is the count of attempts
/// that failed between the kill and the first ack from the new leader —
/// the client-visible cost of the degraded window.
FailoverResult RunFailoverDemo(double seconds) {
  FailoverResult out;
  FaultInjector faults(0xE17);
  std::vector<std::unique_ptr<ReplicationNode>> nodes;
  HdMap world = StraightRoad(300.0);
  for (int i = 0; i < 3; ++i) {
    ReplicationNode::Options no;
    no.node_id = i;
    no.service.tile_store.tile_size_m = 100.0;
    no.heartbeat_interval_ms = 10;
    no.io_timeout_ms = 150;
    no.min_ack_replicas = 1;
    no.ack_timeout_ms = 2000;
    no.faults = &faults;
    nodes.push_back(std::make_unique<ReplicationNode>(no));
    if (!nodes.back()->Start(world).ok()) return out;
  }
  FailoverController::Options co;
  co.poll_interval_ms = 10;
  co.leader_timeout_ms = 100;
  FailoverController controller(co);
  for (auto& node : nodes) controller.AddNode(node.get());
  if (!controller.Start().ok()) return out;

  // Closed-loop writer against whichever node the controller calls
  // leader; counts acked writes and failed attempts.
  std::atomic<bool> stop{false};
  std::atomic<bool> killed{false};
  std::atomic<uint64_t> acked_before{0}, acked_after{0}, lost{0};
  std::thread writer([&] {
    uint64_t id = 17000000;
    bool recovered = false;
    while (!stop.load(std::memory_order_relaxed)) {
      ReplicationNode* leader = controller.leader();
      bool ok = false;
      if (leader != nullptr && leader->alive()) {
        MapPatch patch;
        Landmark lm;
        lm.id = id++;
        lm.position = {static_cast<double>(id % 97), 0.0, 0.0};
        patch.added_landmarks.push_back(lm);
        ok = leader->StagePatch(patch).ok() && leader->Publish().ok();
      }
      if (!killed.load(std::memory_order_acquire)) {
        if (ok) acked_before.fetch_add(1, std::memory_order_relaxed);
      } else if (!recovered) {
        if (ok) {
          recovered = true;  // First ack from the promoted leader.
          acked_after.fetch_add(1, std::memory_order_relaxed);
        } else {
          lost.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (ok) {
        acked_after.fetch_add(1, std::memory_order_relaxed);
      }
      if (!ok) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Warm up, then kill.
  std::this_thread::sleep_for(
      std::chrono::duration<double>(std::max(0.2, seconds / 4)));
  ReplicationNode* old_leader = controller.leader();
  size_t failovers_before = controller.failover_count();
  bench::Timer kill_timer;
  old_leader->Halt();
  killed.store(true, std::memory_order_release);

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(5000);
  while (controller.failover_count() == failovers_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  out.detection_ms = kill_timer.Seconds() * 1e3;
  out.promoted = controller.failover_count() > failovers_before;

  // Let the new leader take writes for the back half, then quiesce.
  std::this_thread::sleep_for(
      std::chrono::duration<double>(std::max(0.2, seconds / 4)));
  stop.store(true);
  writer.join();
  out.time_to_promotion_ms = controller.last_degraded_window_ms();
  out.writes_acked_before = acked_before.load();
  out.writes_acked_after = acked_after.load();
  out.writes_lost_at_kill = lost.load();
  for (const auto& event : controller.RecentEvents()) {
    if (event.type == EventLog::Type::kFailoverDetected ||
        event.type == EventLog::Type::kFailoverComplete) {
      out.events.push_back(event);
    }
  }
  controller.Stop();
  for (auto& node : nodes) node->Halt();
  return out;
}

int Run(int argc, char** argv) {
  bool smoke = false;
  double seconds = 3.0;
  size_t connections = 4;
  size_t coalesce_clients = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strncmp(argv[i], "--seconds=", 10) == 0)
      seconds = std::atof(argv[i] + 10);
    else if (std::strncmp(argv[i], "--connections=", 14) == 0)
      connections = static_cast<size_t>(std::atoi(argv[i] + 14));
    else if (std::strncmp(argv[i], "--coalesce-clients=", 19) == 0)
      coalesce_clients = static_cast<size_t>(std::atoi(argv[i] + 19));
  }
  if (smoke) seconds = std::min(seconds, 1.0);

  bench::PrintHeader(
      "E17", "framed-TCP tile serving under open-loop load",
      "serving edge must shed with typed BUSY, not queue without bound");

  MapService::Options opt;
  opt.tile_store.tile_size_m = 100.0;
  MapService service(opt);
  if (!service.Init(StraightRoad(2000.0)).ok()) {
    std::fprintf(stderr, "service init failed\n");
    return 1;
  }
  std::vector<TileId> tiles = service.snapshot()->tiles.AllTiles();
  std::printf("world: straight road 2 km, %zu tiles of 100 m\n",
              tiles.size());

  TileServer::Options server_opt;
  server_opt.worker_threads = 2;
  server_opt.max_pending_requests = 64;
  server_opt.max_inflight_per_connection = 32;
  TileServer server(service, server_opt);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }

  // Phase 1: closed-loop calibration.
  double calib_s = smoke ? 0.3 : 1.0;
  double peak_hz =
      CalibratePeakHz(server.port(), tiles, calib_s, connections);
  std::printf("calibration: closed-loop peak %.0f req/s over %zu conns\n",
              peak_hz, connections);
  if (peak_hz <= 0) return 1;

  // Phase 2: open-loop ladder.
  const double factors[] = {0.5, 1.0, 2.0};
  LoadResult results[3];
  for (int i = 0; i < 3; ++i) {
    results[i] = RunStepWithLatency(server.port(), tiles,
                                    factors[i] * peak_hz, seconds,
                                    connections);
    const LoadResult& r = results[i];
    std::printf(
        "load %.1fx | offered %6.0f/s sent %6llu drop %5llu | "
        "goodput %6.0f/s busy %6llu err %3llu | "
        "p50 %.2f ms p99 %.2f ms p999 %.2f ms\n",
        factors[i], r.offered_hz, (unsigned long long)r.sent,
        (unsigned long long)r.overflow, r.goodput_hz,
        (unsigned long long)r.busy, (unsigned long long)r.errors, r.p50_ms,
        r.p99_ms, r.p999_ms);
  }
  double busy_total =
      server.metrics().GetCounter("net.busy_rejected")->value();
  std::printf("server: %llu requests, %.0f busy-rejected total\n",
              (unsigned long long)server.metrics()
                  .GetCounter("net.requests")
                  ->value(),
              busy_total);
  server.Stop();

  // Phase 3: coalescing collapse.
  uint64_t comp_delta = 0, coalesced = 0;
  bool coalesce_ok =
      RunCoalesceDemo(service, coalesce_clients, &comp_delta, &coalesced);
  std::printf(
      "coalescing: %zu identical GetRegions -> %llu computation(s), "
      "%llu coalesced\n",
      coalesce_clients, (unsigned long long)comp_delta,
      (unsigned long long)coalesced);

  // Phase 4: failover under write load.
  FailoverResult fo = RunFailoverDemo(seconds);
  std::printf(
      "failover: promotion %s | degraded window %.1f ms "
      "(kill->promote wall %.1f ms) | acked %llu before, %llu after | "
      "%llu write attempt(s) lost at kill\n",
      fo.promoted ? "OK" : "MISSING", fo.time_to_promotion_ms,
      fo.detection_ms, (unsigned long long)fo.writes_acked_before,
      (unsigned long long)fo.writes_acked_after,
      (unsigned long long)fo.writes_lost_at_kill);
  for (const auto& event : fo.events) {
    std::printf("  event %-18s %s\n",
                std::string(EventLog::TypeToString(event.type)).c_str(),
                event.detail.c_str());
  }

  // Phase 5: observability overhead. Fresh server on the same world; the
  // closed-loop RTT is compared with propagation off, on-but-unsampled
  // (trace ids ride the wire, nothing records), and on with every
  // request head-sampled. Then kStats is scraped while a 2x open-loop
  // overload runs — the introspection plane is exempt from admission
  // shedding, so it must keep answering while GetTiles are shed.
  TileServer::Options obs_opt;
  obs_opt.worker_threads = 2;
  obs_opt.max_pending_requests = 64;
  obs_opt.max_inflight_per_connection = 32;
  obs_opt.stats_label = "bench-e17";
  TileServer obs_server(service, obs_opt);
  if (!obs_server.Start().ok()) {
    std::fprintf(stderr, "phase-5 server start failed\n");
    return 1;
  }
  const double obs_s = smoke ? 0.3 : std::min(seconds, 2.0);
  TraceRecorder::Options rec_off;  // enabled = false
  TraceRecorder::Global().Configure(rec_off);
  LatencyPair lat_off =
      MeasureGetTileLatency(obs_server.port(), tiles, obs_s, false);
  TraceRecorder::Options rec_on;
  rec_on.enabled = true;
  rec_on.sample_every_n = 0;    // Ids propagate; no span records.
  rec_on.slow_threshold_s = 0;  // Keep the slow path out of the numbers.
  TraceRecorder::Global().Configure(rec_on);
  LatencyPair lat_on =
      MeasureGetTileLatency(obs_server.port(), tiles, obs_s, true);
  rec_on.sample_every_n = 1;    // Client + server spans on every request.
  TraceRecorder::Global().Configure(rec_on);
  LatencyPair lat_sampled =
      MeasureGetTileLatency(obs_server.port(), tiles, obs_s, true);
  TraceRecorder::Global().Configure(rec_off);
  double ovh_on = lat_off.p50_ms > 0
                      ? (lat_on.p50_ms - lat_off.p50_ms) / lat_off.p50_ms
                      : 0;
  double ovh_sampled =
      lat_off.p50_ms > 0
          ? (lat_sampled.p50_ms - lat_off.p50_ms) / lat_off.p50_ms
          : 0;
  std::printf(
      "observability: GetTile p50/p99 %.3f/%.3f ms off | "
      "%.3f/%.3f ms on (%+.1f%%) | %.3f/%.3f ms on+sampled (%+.1f%%)\n",
      lat_off.p50_ms, lat_off.p99_ms, lat_on.p50_ms, lat_on.p99_ms,
      ovh_on * 100, lat_sampled.p50_ms, lat_sampled.p99_ms,
      ovh_sampled * 100);

  std::vector<double> scrape_s;
  uint64_t scrape_fail = 0;
  std::atomic<bool> scrape_stop{false};
  std::thread scraper([&] {
    NetClient client;
    if (!client.Connect("127.0.0.1", obs_server.port()).ok()) {
      ++scrape_fail;
      return;
    }
    while (!scrape_stop.load(std::memory_order_relaxed)) {
      bench::Timer t;
      auto resp = client.FetchStats(NetStatsFormat::kJson, 16);
      if (!resp.ok()) {
        ++scrape_fail;
        break;
      }
      if (resp->code == NetResponseCode::kOk) {
        scrape_s.push_back(t.Seconds());
      } else {
        ++scrape_fail;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  LoadResult obs_overload = RunOpenLoopStep(
      obs_server.port(), tiles, 2.0 * peak_hz, obs_s, connections);
  scrape_stop.store(true);
  scraper.join();
  obs_server.Stop();
  double scrape_p50 = PercentileMs(scrape_s, 0.50);
  double scrape_p99 = PercentileMs(scrape_s, 0.99);
  std::printf(
      "observability: kStats scrape p50 %.2f ms p99 %.2f ms over %zu "
      "scrape(s) at 2x overload (%llu GetTile(s) shed BUSY meanwhile, "
      "%llu scrape failure(s))\n",
      scrape_p50, scrape_p99, scrape_s.size(),
      (unsigned long long)obs_overload.busy,
      (unsigned long long)scrape_fail);

  // Report card. Pre-saturation peak = best goodput of the non-overload
  // steps; the 2x step must retain most of it while shedding.
  const LoadResult& r2 = results[2];
  double peak_goodput =
      std::max(results[0].goodput_hz, results[1].goodput_hz);
  double retention =
      peak_goodput > 0 ? r2.goodput_hz / peak_goodput : 0;
  bench::PrintRow("coalescing collapse (K identical -> 1)", "1 computation",
                  bench::Fmt("%.0f", (double)comp_delta) + " computation(s)");
  bench::PrintRow("2x overload sheds with typed BUSY", "> 0 BUSY",
                  bench::Fmt("%.0f", (double)r2.busy) + " BUSY");
  bench::PrintRow("goodput retention at 2x overload", ">= 80% of peak",
                  bench::Fmt("%.0f%%", retention * 100));
  bench::PrintRow("failover time-to-promotion", "< 1000 ms",
                  bench::Fmt("%.1f ms", fo.time_to_promotion_ms));
  bench::PrintRow("writes acked by promoted leader", "> 0",
                  bench::Fmt("%.0f", (double)fo.writes_acked_after));
  bench::PrintRow("trace propagation p50 overhead", "< 5%",
                  bench::Fmt("%+.1f%%", ovh_on * 100));
  bench::PrintRow("propagation + sampling p50 overhead", "< 5%",
                  bench::Fmt("%+.1f%%", ovh_sampled * 100));
  bench::PrintRow("kStats scrape p99 at 2x overload", "< 100 ms",
                  bench::Fmt("%.1f ms", scrape_p99));

  int rc = 0;
  if (!coalesce_ok || comp_delta != 1) {
    std::fprintf(stderr, "FAIL: coalescing did not collapse duplicates\n");
    rc = 1;
  }
  if (r2.busy == 0) {
    std::fprintf(stderr, "FAIL: no BUSY shedding at 2x overload\n");
    rc = 1;
  }
  // Exit gate at 50% so one-core CI smoke runs don't flake; the printed
  // report carries the 80% acceptance check for real runs.
  if (retention < 0.5) {
    std::fprintf(stderr,
                 "FAIL: 2x-overload goodput %.0f/s < 50%% of peak %.0f/s\n",
                 r2.goodput_hz, peak_goodput);
    rc = 1;
  }
  if (!fo.promoted || fo.writes_acked_after == 0) {
    std::fprintf(stderr, "FAIL: leader kill did not end in a working "
                         "promotion\n");
    rc = 1;
  }
  // Exit gate at 50% so shared one-core boxes don't flake on
  // microsecond RTT deltas; the printed report carries the 5% budget
  // for real runs.
  if (lat_off.served > 0 &&
      (ovh_on > 0.5 || ovh_sampled > 0.5)) {
    std::fprintf(stderr,
                 "FAIL: trace propagation overhead %+.1f%% / %+.1f%% "
                 "exceeds 50%% on p50\n",
                 ovh_on * 100, ovh_sampled * 100);
    rc = 1;
  }
  if (scrape_s.empty() || scrape_p99 > 1000.0) {
    std::fprintf(stderr,
                 "FAIL: kStats scrape did not keep answering under 2x "
                 "overload (%zu ok, p99 %.1f ms)\n",
                 scrape_s.size(), scrape_p99);
    rc = 1;
  }
  std::printf("%s\n", rc == 0 ? "OK" : "FAILED");
  return rc;
}

}  // namespace
}  // namespace hdmap

int main(int argc, char** argv) { return hdmap::Run(argc, argv); }
