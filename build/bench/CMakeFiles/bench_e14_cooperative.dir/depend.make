# Empty dependencies file for bench_e14_cooperative.
# This may be replaced when dependencies are built.
