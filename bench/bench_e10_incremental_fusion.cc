// E10 — Liu et al. [43]: incremental HD-map fusing with a time-decay
// term. Paper: fusing historical data with new measurements improves
// element position/semantic confidence, and the time-decay term lets the
// map adapt quickly to slight environmental changes.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "maintenance/incremental_fusion.h"

namespace hdmap {
namespace {

int Run() {
  bench::PrintHeader("E10", "Incremental map fusing with time decay [43]",
                     "position error and semantic confidence improve with "
                     "updates; decay speeds up post-change adaptation");

  Rng rng(1501);

  // Phase 1: convergence with update count.
  std::printf("  convergence (element truth at (10, 10), measurement "
              "sigma 0.6 m):\n");
  std::printf("    %-10s %-20s %-20s\n", "updates", "position error (m)",
              "semantic confidence");
  IncrementalFuser fuser({});
  fuser.AddElement(1, {10.0 + rng.Normal(0.0, 1.0),
                       10.0 + rng.Normal(0.0, 1.0)});
  for (int updates : {1, 3, 10, 30}) {
    static int done = 0;
    while (done < updates) {
      fuser.Fuse({{10.0 + rng.Normal(0.0, 0.6),
                   10.0 + rng.Normal(0.0, 0.6)},
                  true,
                  done * 0.2});
      ++done;
    }
    const auto* e = fuser.Find(1);
    std::printf("    %-10d %-20.3f %-20.3f\n", updates,
                e->position.DistanceTo({10.0, 10.0}),
                e->semantic_confidence);
  }

  // Phase 2: adaptation after an environmental change, with vs without
  // decay. Element shifts by 2 m after a 90-day observation gap.
  std::printf("\n  post-change adaptation (element moved 2.0 m after a "
              "90-day gap):\n");
  std::printf("    %-22s %-26s\n", "measurements after",
              "remaining error (m): decay / no-decay");
  IncrementalFuser::Options with_decay;
  with_decay.decay_variance_per_day = 0.05;
  IncrementalFuser::Options no_decay;
  no_decay.decay_variance_per_day = 0.0;
  IncrementalFuser a(with_decay), b(no_decay);
  for (auto* f : {&a, &b}) {
    f->AddElement(1, {0.0, 0.0});
    for (int i = 0; i < 25; ++i) {
      f->Fuse({{rng.Normal(0.0, 0.3), rng.Normal(0.0, 0.3)}, true,
               i * 0.2});
    }
  }
  Vec2 moved{2.0, 0.0};
  double adv_sum = 0.0;
  for (int i = 1; i <= 8; ++i) {
    double day = 95.0 + i;
    Vec2 z = moved + Vec2{rng.Normal(0.0, 0.3), rng.Normal(0.0, 0.3)};
    a.Fuse({z, true, day});
    b.Fuse({z, true, day});
    double ea = a.Find(1)->position.DistanceTo(moved);
    double eb = b.Find(1)->position.DistanceTo(moved);
    std::printf("    %-22d %.3f / %.3f\n", i, ea, eb);
    adv_sum += eb - ea;
  }
  bench::PrintRow("decay adapts faster than no-decay", "yes",
                  adv_sum > 0.0 ? "yes" : "NO");

  // Phase 3: feedback queue effectiveness.
  IncrementalFuser f3({});
  f3.AddElement(1, {0, 0});
  int rescued = 0;
  for (int i = 0; i < 10; ++i) {
    f3.Fuse({{40.0 + rng.Normal(0.0, 0.4), rng.Normal(0.0, 0.4)}, true,
             static_cast<double>(i)});
  }
  size_t queued = f3.feedback_queue_size();
  f3.AddElement(2, {40.0, 0.0});  // The element is finally mapped.
  f3.RetryFeedbackQueue();
  rescued = static_cast<int>(queued - f3.feedback_queue_size());
  bench::PrintRow("unmatched measurements rescued by feedback", "reused",
                  bench::Fmt("%.0f", static_cast<double>(rescued)));
  std::printf("\n");
  return adv_sum > 0.0 ? 0 : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
