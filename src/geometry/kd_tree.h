#ifndef HDMAP_GEOMETRY_KD_TREE_H_
#define HDMAP_GEOMETRY_KD_TREE_H_

#include <cstdint>
#include <vector>

#include "geometry/vec2.h"

namespace hdmap {

/// Static 2-D k-d tree over (point, id) pairs. Build once, query many
/// times; used for nearest-landmark lookup, marking association, etc.
class KdTree {
 public:
  struct Entry {
    Vec2 point;
    int64_t id = 0;
  };

  KdTree() = default;
  explicit KdTree(std::vector<Entry> entries);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Nearest entry to `query`; nullptr when empty.
  const Entry* Nearest(const Vec2& query) const;

  /// K nearest entries, closest first.
  std::vector<Entry> KNearest(const Vec2& query, size_t k) const;

  /// All entries within `radius` of `query` (unordered).
  std::vector<Entry> RadiusSearch(const Vec2& query, double radius) const;

 private:
  struct Node {
    int entry = -1;       // Index into entries_.
    int left = -1;
    int right = -1;
    int axis = 0;         // 0 = x, 1 = y.
  };

  int Build(int lo, int hi, int depth, std::vector<int>& order);
  void NearestImpl(int node, const Vec2& q, double& best_d2,
                   int& best) const;
  void KNearestImpl(int node, const Vec2& q, size_t k,
                    std::vector<std::pair<double, int>>& heap) const;
  void RadiusImpl(int node, const Vec2& q, double r2,
                  std::vector<Entry>& out) const;

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace hdmap

#endif  // HDMAP_GEOMETRY_KD_TREE_H_
