#ifndef HDMAP_CREATION_CROWD_MAPPER_H_
#define HDMAP_CREATION_CROWD_MAPPER_H_

#include <vector>

#include "core/hd_map.h"
#include "geometry/pose2.h"
#include "sim/sensors.h"

namespace hdmap {

/// One crowd traversal: the estimated vehicle track (from the vehicle's
/// own cheap localization) with the landmark detections made at each
/// sample. This is what a connected vehicle uploads (Dabeer et al. [29],
/// Massow et al. [28]).
struct CrowdTraversal {
  std::vector<Pose2> estimated_poses;
  /// detections[i] were taken at estimated_poses[i].
  std::vector<std::vector<LandmarkDetection>> detections;
};

/// A landmark reconstructed by the crowd pipeline.
struct MappedLandmark {
  Vec2 position;
  LandmarkType type = LandmarkType::kTrafficSign;
  int support = 0;  ///< Number of contributing observations.
};

/// Crowdsourced landmark mapping with corrective feedback:
///   1. project every detection into the world through the (noisy)
///      uploaded poses;
///   2. cluster the projected observations (grid DBSCAN);
///   3. triangulate each cluster to an initial landmark estimate;
///   4. corrective feedback: re-estimate each traversal's systematic pose
///      bias by aligning its observations to the current landmark
///      estimates, then re-project and re-cluster.
/// Iterating 3-4 drives the mean absolute error below the single-shot
/// level (the <20 cm headline of [29]).
class CrowdMapper {
 public:
  struct Options {
    double cluster_radius = 2.5;     ///< Observations within this merge.
    int min_cluster_size = 3;
    int feedback_iterations = 3;
    /// Observations farther than this from their landmark estimate are
    /// dropped as outliers during feedback.
    double outlier_distance = 4.0;
  };

  explicit CrowdMapper(const Options& options) : options_(options) {}

  /// Runs the full pipeline over the uploaded traversals.
  std::vector<MappedLandmark> Map(
      const std::vector<CrowdTraversal>& traversals) const;

 private:
  Options options_;
};

/// Scores a reconstructed landmark set against ground truth: for each
/// mapped landmark, the distance to the nearest true landmark. Returns
/// the per-landmark absolute errors (unmatched mapped landmarks count as
/// `unmatched_penalty`).
std::vector<double> ScoreMappedLandmarks(
    const std::vector<MappedLandmark>& mapped, const HdMap& truth,
    double match_radius = 5.0, double unmatched_penalty = 5.0);

}  // namespace hdmap

#endif  // HDMAP_CREATION_CROWD_MAPPER_H_
