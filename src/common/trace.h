#ifndef HDMAP_COMMON_TRACE_H_
#define HDMAP_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace hdmap {

/// One finished span, as stored in the TraceRecorder's ring buffer.
/// `name` must be a string literal (or otherwise outlive the recorder):
/// the hot path stores the pointer, never a copy.
struct TraceEvent {
  const char* name = "";
  uint64_t trace_id = 0;        ///< Request the span belongs to.
  uint64_t span_id = 0;         ///< Unique per span within the process.
  uint64_t parent_span_id = 0;  ///< 0 for a request's root span.
  uint32_t thread_id = 0;       ///< Small process-local thread ordinal.
  uint64_t start_ns = 0;        ///< steady_clock, nanoseconds.
  uint64_t duration_ns = 0;
  /// StatusCode observed by the span (kOk when nothing went wrong). A
  /// degraded-but-served request annotates kDataLoss here even though the
  /// caller saw OK — the span status is observability metadata, not the
  /// API result.
  StatusCode status = StatusCode::kOk;
  bool slow = false;     ///< Exceeded the recorder's slow threshold.
  bool sampled = false;  ///< Trace was head-sampled (vs forced by error/slow).
};

/// Ambient per-thread trace context: which trace/span encloses the code
/// currently executing on this thread. trace_id == 0 means no active
/// trace (child spans constructed then are inert).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool sampled = false;

  bool active() const { return trace_id != 0; }
};

/// The calling thread's current context (zeroed when no span is open).
TraceContext CurrentTraceContext();

/// Installs `ctx` as the calling thread's context for the scope's
/// lifetime, restoring the previous one on destruction. This is how a
/// trace crosses threads: ThreadPool::Submit and ParallelFor capture the
/// submitting thread's context and wrap each task in one of these, so
/// spans opened inside parallel work nest under the submitting span.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// Low-overhead span tracer: a bounded, lock-striped ring buffer of
/// TraceEvents with head sampling plus always-record-on-error/slow, and
/// export to Chrome trace_event JSON (loadable in Perfetto / chrome://
/// tracing).
///
/// Sampling model: each *root* span (one per request) draws a 1-in-N
/// head-sampling decision that its children inherit through the ambient
/// TraceContext. Spans of sampled traces always record; spans of
/// unsampled traces still record individually when they end with a
/// non-OK status or exceed the slow threshold — so a corrupt-tile decode
/// or a slow request leaves evidence even at low sampling rates.
///
/// Overhead: with the recorder disabled, root spans are inert after one
/// relaxed atomic load and child spans after one thread-local read — no
/// clock reads, no allocation. With the recorder enabled but a trace
/// unsampled, a span costs two steady_clock reads and two atomic
/// increments; the ring is only touched on error/slow.
///
/// Thread safety: Record/span construction are safe from any thread
/// (stripes are keyed by thread ordinal, so contention stays local).
/// Configure must not race active spans — call it during setup, between
/// requests, or in tests.
class TraceRecorder {
 public:
  struct Options {
    /// Master switch; false (the default) makes every span inert.
    bool enabled = false;
    /// Total ring capacity in events, split evenly across the stripes.
    /// When a stripe fills, its oldest events are overwritten (and
    /// counted in dropped()).
    size_t capacity = 8192;
    /// Head-sample one request in N (1 = every request, 0 = none: only
    /// error/slow spans record).
    uint32_t sample_every_n = 1;
    /// Spans longer than this record even in unsampled traces and are
    /// flagged slow; <= 0 disables the slow path.
    double slow_threshold_s = 0.25;
  };

  TraceRecorder();  // Default Options (disabled).
  explicit TraceRecorder(const Options& options);

  /// The process-wide recorder every instrumentation site uses by
  /// default. Disabled until Configure({.enabled = true, ...}).
  static TraceRecorder& Global();

  /// Replaces the configuration and clears the ring. Must not race
  /// in-flight spans.
  void Configure(const Options& options);

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  Options options() const;

  /// Appends one finished span to the ring (overwriting the oldest event
  /// in the stripe when full). Safe from any thread.
  void Record(const TraceEvent& event);

  /// Every event currently in the ring, sorted by start time.
  std::vector<TraceEvent> Snapshot() const;

  /// Drops all buffered events (keeps the configuration and counters).
  void Clear();

  /// Events ever passed to Record() / overwritten before Snapshot could
  /// see them.
  uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Chrome trace_event JSON ("X" complete events, microsecond
  /// timestamps) of Snapshot(); open the file in Perfetto
  /// (https://ui.perfetto.dev) or chrome://tracing. Span args carry
  /// trace/span/parent ids and the span status, so a degraded request's
  /// corrupt-tile decode is one click away from its GetRegion root.
  std::string ExportChromeTraceJson() const;

  /// Multi-process variant: events carry `process_id` as their Perfetto
  /// pid (with a process_name metadata record naming the track
  /// `process_label`), and timestamps are shifted by the recorder's
  /// wall-clock anchor so exports from different processes share one
  /// timeline. Concatenate per-node exports with MergeChromeTraceJson
  /// (src/obs) and spans line up across the process boundary.
  std::string ExportChromeTraceJson(uint32_t process_id,
                                    const std::string& process_label) const;

  /// Microseconds to add to a steady_clock microsecond reading to place
  /// it on the unix epoch: captured once at construction, so every span
  /// in this process shares the same offset and cross-process exports
  /// align to within clock-sync error.
  int64_t wall_anchor_us() const { return wall_anchor_us_; }

  // --- Span support (used by TraceSpan; rarely called directly) ---

  uint64_t NextTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Draws the 1-in-N head-sampling decision for a new trace.
  bool SampleNextTrace();
  double slow_threshold_s() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed) * 1e-9;
  }
  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kStripes = 8;

  struct Stripe {
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;  // Fixed size once configured.
    size_t next = 0;               // Next write position.
    size_t size = 0;               // Events currently held.
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint32_t> sample_every_n_{1};
  std::atomic<uint64_t> slow_threshold_ns_{0};
  size_t stripe_capacity_ = 0;  // Set by Configure; fixed while tracing.

  int64_t wall_anchor_us_ = 0;  // Set once at construction.

  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> sample_counter_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};

  Stripe stripes_[kStripes];
};

/// RAII span. Construction opens the span and makes it the calling
/// thread's current context; destruction (or End()) closes it, restores
/// the previous context, and hands the event to the recorder when the
/// trace is sampled or the span ended non-OK/slow.
///
/// Two forms:
///   TraceSpan span("map_service.get_region", TraceSpan::kRoot);
///     starts a new trace (fresh trace id + sampling decision) — one per
///     request, at the serving endpoint.
///   TraceSpan span("tile_store.decode");
///     child of the thread's current context; inert when no trace is
///     active, so library code can instrument unconditionally.
class TraceSpan {
 public:
  enum RootTag { kRoot };

  /// Child span of the current ambient context (inert without one).
  /// `name` must outlive the recorder (use string literals).
  explicit TraceSpan(const char* name, TraceRecorder* recorder = nullptr);

  /// Root span: starts a new trace when the recorder is enabled. If an
  /// ambient trace is already active on this thread (a layered entry
  /// point — e.g. a MapService endpoint invoked by the network edge,
  /// whose per-request span is the true root), joins it as a child
  /// instead, so one request yields one trace.
  TraceSpan(const char* name, RootTag, TraceRecorder* recorder = nullptr);

  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Annotates the span with a status. By default any non-OK code forces
  /// the span into the ring even when its trace is unsampled. Pass
  /// force=false for expected, repetitive failures (e.g. the per-request
  /// quarantine fast-fail) whose evidence is already carried by rarer
  /// spans — the status still shows when the trace is sampled, but the
  /// span doesn't flood the ring and evict the span that discovered the
  /// problem.
  void SetStatus(StatusCode code, bool force = true) {
    event_.status = code;
    force_record_ = force;
  }

  /// Closes the span early (the destructor then does nothing).
  void End();

  /// Forces this span into the ring regardless of sampling — the
  /// slow-RPC watchdog uses it so a budget-violating request leaves its
  /// full cross-node trace id in the export even at sample_every_n = 0.
  void ForceRecord() { record_always_ = true; }

  /// 0 when inert (no recorder / no active trace).
  uint64_t trace_id() const { return event_.trace_id; }
  uint64_t span_id() const { return event_.span_id; }
  bool active() const { return active_; }
  bool sampled() const { return event_.sampled; }

 private:
  void Open(TraceRecorder* recorder, const TraceContext& ctx);

  TraceRecorder* recorder_ = nullptr;
  TraceEvent event_;
  TraceContext saved_;
  bool active_ = false;
  bool ended_ = false;
  bool force_record_ = true;
  bool record_always_ = false;
};

/// The calling thread's current trace id (0 when no span is open): the
/// handle event logs and error reports attach so a metric increment or
/// logged degradation can be joined back to its flame graph.
inline uint64_t CurrentTraceId() { return CurrentTraceContext().trace_id; }

}  // namespace hdmap

#endif  // HDMAP_COMMON_TRACE_H_
