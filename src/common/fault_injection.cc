#include "common/fault_injection.h"

#include "common/metrics.h"

namespace hdmap {

namespace {

/// FNV-1a over arbitrary bytes; the building block for the deterministic
/// per-(seed, site, payload) fault decisions.
uint64_t HashBytes(uint64_t h, std::string_view bytes) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;

/// Maps a hash to [0, 1) for the probability check.
double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^53
}

}  // namespace

uint64_t FaultInjector::Mix(uint64_t h) const {
  // splitmix64 finalizer: decorrelates the FNV chain from the seed.
  h += 0x9e3779b97f4a7c15ull + seed_;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

void FaultInjector::AddPolicy(FaultPolicy policy) {
  std::unique_lock<std::shared_mutex> lock(policy_mu_);
  policies_.push_back(std::move(policy));
}

void FaultInjector::ClearPolicies() {
  std::unique_lock<std::shared_mutex> lock(policy_mu_);
  policies_.clear();
}

void FaultInjector::BindMetrics(MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  // Sites that already injected show up immediately, not on next fire.
  if (metrics_ != nullptr) {
    for (const auto& [site, n] : injected_) {
      metrics_->GetGauge("fault_injector.injected{" + site + "}")
          ->Set(static_cast<double>(n));
    }
  }
}

void FaultInjector::CountInjection(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = injected_.find(site);
  if (it == injected_.end()) {
    it = injected_.emplace(std::string(site), 1).first;
  } else {
    ++it->second;
  }
  if (metrics_ != nullptr) {
    metrics_->GetGauge("fault_injector.injected{" + it->first + "}")
        ->Set(static_cast<double>(it->second));
  }
}

bool FaultInjector::MaybeCorrupt(std::string_view site,
                                 std::string_view payload,
                                 std::string* corrupted) {
  std::shared_lock<std::shared_mutex> policy_lock(policy_mu_);
  for (size_t pi = 0; pi < policies_.size(); ++pi) {
    const FaultPolicy& policy = policies_[pi];
    if (policy.kind == FaultKind::kFailStatus || policy.site != site) {
      continue;
    }
    uint64_t h = Mix(HashBytes(HashBytes(kFnvOffset + pi, site), payload));
    if (HashToUnit(h) >= policy.probability) continue;
    // Fired: derive the mutation from an independent remix of the same
    // hash so "fires" and "where" are uncorrelated.
    uint64_t m = Mix(h ^ 0xa5a5a5a5a5a5a5a5ull);
    *corrupted = std::string(payload);
    switch (policy.kind) {
      case FaultKind::kBitFlip:
        if (!corrupted->empty()) {
          size_t bit = static_cast<size_t>(m % (corrupted->size() * 8));
          (*corrupted)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        }
        break;
      case FaultKind::kTruncate:
        if (!corrupted->empty()) {
          corrupted->resize(static_cast<size_t>(m % corrupted->size()));
        }
        break;
      case FaultKind::kDrop:
        corrupted->clear();
        break;
      case FaultKind::kTornWrite:
        if (!corrupted->empty()) {
          // Same length as the payload: the head landed, the tail reads
          // back as scribble. A fresh splitmix chain per byte keeps the
          // garbage deterministic in payload content alone.
          size_t prefix = static_cast<size_t>(m % corrupted->size());
          uint64_t g = m;
          for (size_t i = prefix; i < corrupted->size(); ++i) {
            g = Mix(g + i);
            (*corrupted)[i] = static_cast<char>(g & 0xff);
          }
        }
        break;
      case FaultKind::kFailStatus:
        break;  // Unreachable; filtered above.
    }
    CountInjection(site);
    return true;
  }
  return false;
}

Status FaultInjector::MaybeFail(std::string_view site) {
  std::shared_lock<std::shared_mutex> policy_lock(policy_mu_);
  for (size_t pi = 0; pi < policies_.size(); ++pi) {
    const FaultPolicy& policy = policies_[pi];
    if (policy.kind != FaultKind::kFailStatus || policy.site != site) {
      continue;
    }
    uint64_t call_index;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = fail_calls_.find(site);
      if (it == fail_calls_.end()) {
        it = fail_calls_.emplace(std::string(site), 0).first;
      }
      call_index = it->second++;
    }
    uint64_t h = Mix(HashBytes(kFnvOffset + pi, site) ^
                     (call_index * 0x9e3779b97f4a7c15ull));
    if (HashToUnit(h) >= policy.probability) continue;
    CountInjection(site);
    return Status(policy.fail_code,
                  "injected fault at " + std::string(site) + " (call " +
                      std::to_string(call_index) + ")");
  }
  return Status::Ok();
}

uint64_t FaultInjector::InjectedCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = injected_.find(site);
  return it == injected_.end() ? 0 : it->second;
}

uint64_t FaultInjector::TotalInjected() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [site, n] : injected_) total += n;
  return total;
}

}  // namespace hdmap
